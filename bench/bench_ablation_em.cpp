// Ablations beyond the paper's tables (DESIGN.md §3): which design choices
// carry the system?
//   1. EM refinement of P(p|t) vs the Eq. 23 initialization alone.
//   2. Entity-value refinement (UIUC answer-type filter) on vs off.
//   3. Predicate expansion length k = 1 vs 2 vs 3 (k=1 cannot reach CVT
//      intents like spouse/ceo/members at all).
// Each variant retrains the full system and is evaluated on the same
// BFQ-only benchmark.

#include <iostream>
#include <memory>

#include "bench/bench_common.h"
#include "eval/runner.h"
#include "util/table_printer.h"

namespace {

using namespace kbqa;

struct Variant {
  std::string name;
  core::KbqaOptions options;
};

}  // namespace

int main() {
  corpus::WorldConfig world_config;
  world_config.schema.scale = 0.5;
  std::printf("[setup] generating ablation world...\n");
  corpus::World world = corpus::GenerateWorld(world_config);
  corpus::QaGenConfig corpus_config;
  corpus_config.num_pairs = 30000;
  corpus::QaCorpus corpus = corpus::GenerateTrainingCorpus(world, corpus_config);

  corpus::BenchmarkConfig bench_config;
  bench_config.num_questions = 300;
  bench_config.bfq_ratio = 1.0;
  bench_config.seed = 999;
  corpus::BenchmarkSet bfqs = corpus::GenerateBenchmark(world, bench_config);

  std::vector<Variant> variants;
  {
    Variant full{"full system (EM + refine + k=3)", core::KbqaOptions()};
    variants.push_back(full);

    Variant no_em = full;
    no_em.name = "init-only (no EM iterations)";
    no_em.options.em.run_em = false;
    variants.push_back(no_em);

    Variant no_refine = full;
    no_refine.name = "no answer-type refinement";
    no_refine.options.ev.refine_by_question_class = false;
    variants.push_back(no_refine);

    Variant k1 = full;
    k1.name = "expansion k=1 (direct predicates only)";
    k1.options.expansion.max_length = 1;
    variants.push_back(k1);

    Variant k2 = full;
    k2.name = "expansion k=2";
    k2.options.expansion.max_length = 2;
    variants.push_back(k2);
  }

  TablePrinter table("Ablation: contribution of each design choice (BFQ-only benchmark)");
  table.SetHeader({"variant", "#templates", "R_BFQ", "P", "P*"});
  for (const Variant& variant : variants) {
    Timer timer;
    core::KbqaSystem kbqa(&world, variant.options);
    Status status = kbqa.Train(corpus);
    if (!status.ok()) {
      std::fprintf(stderr, "%s: training failed: %s\n", variant.name.c_str(),
                   status.ToString().c_str());
      return 1;
    }
    eval::RunResult run = eval::RunBenchmark(kbqa, bfqs);
    table.AddRow({variant.name,
                  TablePrinter::Int(kbqa.template_store().num_templates()),
                  TablePrinter::Num(run.counts.RBfq(), 2),
                  TablePrinter::Num(run.counts.P(), 2),
                  TablePrinter::Num(run.counts.PStar(), 2)});
    std::printf("[run] %-40s trained+evaluated in %.1fs\n",
                variant.name.c_str(), timer.ElapsedSeconds());
  }

  table.Print(std::cout);
  bench::PrintPaperNote(
      "expected shape: k=1 loses every CVT intent (spouse/capital/ceo/"
      "members) -> large recall drop; k=2 recovers direct-relation intents "
      "(capital) but not CVT chains; dropping refinement admits noisy "
      "(entity, value) pairs -> precision dip; init-only theta leaves "
      "ambiguous templates unresolved -> precision dip on shared "
      "phrasings.");
  return 0;
}
