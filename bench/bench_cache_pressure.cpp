// Serving-cache pressure benchmark: proves the memory-budgeted sharded LRU
// value cache (PR 4) holds its byte accounting under a 64 MiB budget while
// losing little hit rate on a realistic (Zipfian) stream, and that the
// worst case — a uniform stream over a keyspace much larger than the
// budget — completes with flat RSS instead of growing until the OOM killer
// fires (the failure mode of the former append-only cache). A final
// end-to-end section runs a budgeted OnlineInference engine against an
// unbounded one on the same questions and checks identical answers. Emits
// BENCH_cache.json.

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "util/lru_cache.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace kbqa;

void Check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAILED: %s\n", what);
    std::exit(1);
  }
}

/// Current resident set in MiB from /proc/self/status (0 off-Linux).
double RssMib() {
#ifdef __linux__
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  long kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmRSS: %ld kB", &kb) == 1) break;
  }
  std::fclose(f);
  return static_cast<double>(kb) / 1024.0;
#else
  return 0;
#endif
}

using Cache = ShardedLruCache<uint64_t, std::vector<uint32_t>>;

constexpr uint64_t kBudgetBytes = 64ull << 20;  // 64 MiB
constexpr uint64_t kKeyspace = 1'000'000;
constexpr size_t kOps = 3'000'000;

/// Payload length for a key: 8..71 uint32s, ~160 B average charge, so the
/// full keyspace is ~150 MiB — 2.4x the budget.
size_t PayloadLen(uint64_t key) { return 8 + key % 64; }

std::vector<uint32_t> MakePayload(uint64_t key) {
  std::vector<uint32_t> payload(PayloadLen(key));
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint32_t>(key + i);
  }
  return payload;
}

struct StreamResult {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t peak_bytes = 0;
  uint64_t final_bytes = 0;
  uint64_t final_entries = 0;
  double hit_rate = 0;
  double seconds = 0;
  double rss_before_mib = 0;
  double rss_after_mib = 0;
};

/// Drives `ops` Get-or-Insert operations against a fresh cache, sampling
/// the byte accounting every 64K ops and asserting it never exceeds the
/// budget (when one is set).
template <typename NextKey>
StreamResult DriveStream(uint64_t budget_bytes, size_t ops, NextKey&& next) {
  Cache cache(budget_bytes);
  StreamResult r;
  r.rss_before_mib = RssMib();
  Timer timer;
  std::vector<uint32_t> out;
  for (size_t i = 0; i < ops; ++i) {
    const uint64_t key = next();
    if (cache.Get(key, &out)) {
      ++r.hits;
    } else {
      ++r.misses;
      cache.Insert(key, MakePayload(key),
                   PayloadLen(key) * sizeof(uint32_t));
    }
    if ((i & 0xFFFF) == 0) {
      const uint64_t bytes = cache.GetStats().bytes;
      r.peak_bytes = std::max(r.peak_bytes, bytes);
      if (budget_bytes != 0) {
        Check(bytes <= budget_bytes, "byte accounting within budget");
      }
    }
  }
  r.seconds = timer.ElapsedSeconds();
  const Cache::Stats stats = cache.GetStats();
  r.peak_bytes = std::max(r.peak_bytes, stats.bytes);
  r.final_bytes = stats.bytes;
  r.final_entries = stats.entries;
  r.evictions = stats.evictions;
  r.hit_rate = static_cast<double>(r.hits) / static_cast<double>(ops);
  r.rss_after_mib = RssMib();
  return r;
}

void PrintStream(const char* name, const StreamResult& r) {
  std::printf(
      "[%s] %.2fM ops in %.2fs: hit rate %.3f, %" PRIu64
      " evictions, peak %.1f MiB accounted, %" PRIu64
      " entries resident, RSS %.0f -> %.0f MiB\n",
      name, static_cast<double>(kOps) / 1e6, r.seconds, r.hit_rate,
      r.evictions, static_cast<double>(r.peak_bytes) / (1 << 20),
      r.final_entries, r.rss_before_mib, r.rss_after_mib);
}

void EmitJson(std::FILE* out, const char* name, const StreamResult& bounded,
              const StreamResult& unbounded, const char* trailing) {
  std::fprintf(out,
               "  \"%s\": {\n"
               "    \"ops\": %zu, \"keyspace\": %" PRIu64 ",\n"
               "    \"budgeted\": {\"hit_rate\": %.4f, \"evictions\": %" PRIu64
               ", \"peak_accounted_bytes\": %" PRIu64
               ", \"entries\": %" PRIu64 ", \"rss_delta_mib\": %.1f},\n"
               "    \"unbounded\": {\"hit_rate\": %.4f, \"final_bytes\": %" PRIu64
               ", \"rss_delta_mib\": %.1f},\n"
               "    \"hit_rate_loss\": %.4f\n  }%s\n",
               name, kOps, kKeyspace, bounded.hit_rate, bounded.evictions,
               bounded.peak_bytes, bounded.final_entries,
               bounded.rss_after_mib - bounded.rss_before_mib,
               unbounded.hit_rate, unbounded.final_bytes,
               unbounded.rss_after_mib - unbounded.rss_before_mib,
               unbounded.hit_rate - bounded.hit_rate, trailing);
}

}  // namespace

int main() {
  std::printf(
      "[config] budget %.0f MiB, keyspace %.1fM keys (~150 MiB of values), "
      "%.1fM ops per stream\n",
      static_cast<double>(kBudgetBytes) / (1 << 20),
      static_cast<double>(kKeyspace) / 1e6, static_cast<double>(kOps) / 1e6);

  // ---- Budgeted arms first, so their RSS readings are not inflated by
  // the unbounded comparison arms' retained heap. ----
  Rng zipf_rng(17);
  ZipfianGenerator zipf(kKeyspace, 0.99);
  StreamResult zipf_bounded = DriveStream(
      kBudgetBytes, kOps, [&] { return zipf.Sample(zipf_rng); });
  PrintStream("zipfian/64MiB", zipf_bounded);

  Rng uni_rng(18);
  StreamResult uni_bounded =
      DriveStream(kBudgetBytes, kOps, [&] { return uni_rng.Uniform(kKeyspace); });
  PrintStream("uniform/64MiB", uni_bounded);

  // The worst-case stream must hold the accounting under budget and keep
  // RSS flat-ish: the resident footprint is the budget plus per-entry
  // index/list overhead, not a function of how many misses streamed by.
  Check(uni_bounded.peak_bytes <= kBudgetBytes, "uniform peak within budget");
  Check(uni_bounded.evictions > 0, "uniform stream evicted");
  Check(uni_bounded.rss_after_mib - uni_bounded.rss_before_mib < 512,
        "uniform stream RSS stayed bounded");

  // ---- Unbounded comparison arms (the pre-budget behavior). ----
  Rng zipf_rng2(17);
  ZipfianGenerator zipf2(kKeyspace, 0.99);
  StreamResult zipf_unbounded = DriveStream(
      0, kOps, [&] { return zipf2.Sample(zipf_rng2); });
  PrintStream("zipfian/unbounded", zipf_unbounded);

  Rng uni_rng2(18);
  StreamResult uni_unbounded =
      DriveStream(0, kOps, [&] { return uni_rng2.Uniform(kKeyspace); });
  PrintStream("uniform/unbounded", uni_unbounded);

  Check(zipf_unbounded.evictions == 0, "unbounded never evicts");
  // A skewed stream keeps its hot head resident under the budget, so the
  // hit-rate loss vs. infinite memory must stay small.
  const double zipf_loss = zipf_unbounded.hit_rate - zipf_bounded.hit_rate;
  std::printf("[zipfian] hit-rate loss vs unbounded: %.4f\n", zipf_loss);
  Check(zipf_loss < 0.10, "zipfian hit-rate loss under 10 points");

  // ---- End-to-end: budgeted vs unbounded OnlineInference. ----
  auto experiment = bench::BuildStandardExperiment();
  const core::KbqaSystem& kbqa = experiment->kbqa();
  core::OnlineInference::Options unbounded_opts = kbqa.options().online;
  unbounded_opts.value_cache_budget_bytes = 0;
  core::OnlineInference::Options budgeted_opts = unbounded_opts;
  budgeted_opts.value_cache_budget_bytes = 256 * 1024;
  core::OnlineInference engine_unbounded(
      &experiment->world().kb, &experiment->world().taxonomy, &kbqa.ner(),
      &kbqa.template_store(), &kbqa.expanded_kb().paths(), unbounded_opts);
  core::OnlineInference engine_budgeted(
      &experiment->world().kb, &experiment->world().taxonomy, &kbqa.ner(),
      &kbqa.template_store(), &kbqa.expanded_kb().paths(), budgeted_opts);

  corpus::BenchmarkSet set = experiment->MakeQald1();
  size_t mismatches = 0, answered = 0;
  for (int pass = 0; pass < 3; ++pass) {
    for (const corpus::QaPair& pair : set.questions.pairs) {
      core::AnswerResult a = engine_budgeted.Answer(pair.question);
      core::AnswerResult b = engine_unbounded.Answer(pair.question);
      answered += a.answered;
      if (a.value != b.value || a.answered != b.answered ||
          a.score != b.score) {
        ++mismatches;
      }
    }
  }
  const core::ValueCacheStats capped = engine_budgeted.value_cache_stats();
  const core::ValueCacheStats full = engine_unbounded.value_cache_stats();
  std::printf(
      "[end-to-end] 3 passes x %zu questions: %zu answered, %zu mismatches; "
      "budgeted cache %" PRIu64 "/%" PRIu64 " bytes, %" PRIu64
      " evictions, hit rate %.3f (unbounded %.3f)\n",
      set.questions.pairs.size(), answered, mismatches, capped.bytes,
      capped.budget_bytes, capped.evictions,
      static_cast<double>(capped.hits) /
          static_cast<double>(capped.hits + capped.misses),
      static_cast<double>(full.hits) /
          static_cast<double>(full.hits + full.misses));
  Check(mismatches == 0, "budgeted engine answers identical to unbounded");
  Check(capped.bytes <= capped.budget_bytes, "engine cache within budget");

  // ---- JSON ----
  std::FILE* out = std::fopen("BENCH_cache.json", "w");
  Check(out != nullptr, "open BENCH_cache.json");
  std::fprintf(out, "{\n  \"budget_bytes\": %" PRIu64 ",\n", kBudgetBytes);
  EmitJson(out, "zipfian", zipf_bounded, zipf_unbounded, ",");
  EmitJson(out, "uniform", uni_bounded, uni_unbounded, ",");
  std::fprintf(out,
               "  \"end_to_end\": {\"questions\": %zu, \"passes\": 3, "
               "\"mismatches\": %zu, \"budget_bytes\": %" PRIu64
               ", \"accounted_bytes\": %" PRIu64 ", \"evictions\": %" PRIu64
               ", \"budgeted_hit_rate\": %.4f, \"unbounded_hit_rate\": %.4f}\n"
               "}\n",
               set.questions.pairs.size(), mismatches, capped.budget_bytes,
               capped.bytes, capped.evictions,
               static_cast<double>(capped.hits) /
                   static_cast<double>(capped.hits + capped.misses),
               static_cast<double>(full.hits) /
                   static_cast<double>(full.hits + full.misses));
  std::fclose(out);
  std::printf("[done] wrote BENCH_cache.json\n");
  return 0;
}
