#ifndef KBQA_BENCH_BENCH_COMMON_H_
#define KBQA_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "eval/experiment.h"
#include "eval/runner.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace kbqa::bench {

/// Builds the standard experiment used by every table bench, printing
/// setup progress. Terminates the process on failure (benches have no
/// recovery path).
inline std::unique_ptr<eval::Experiment> BuildStandardExperiment() {
  std::printf("[setup] generating world + corpus and training KBQA...\n");
  // Setup time also lands in the registry, so a post-run metrics dump
  // shows how long the world build took relative to the measured phase.
  ScopedTimer timer("bench.setup.build_experiment_ns");
  auto built = eval::Experiment::Build(eval::ExperimentConfig::Standard());
  if (!built.ok()) {
    std::fprintf(stderr, "experiment build failed: %s\n",
                 built.status().ToString().c_str());
    std::exit(1);
  }
  auto experiment = std::move(built).value();
  std::printf(
      "[setup] done in %.1fs: %zu KB triples, %zu QA pairs, %zu templates, "
      "%zu predicates\n",
      timer.ElapsedSeconds(), experiment->world().kb.num_triples(),
      experiment->train_corpus().size(),
      experiment->kbqa().template_store().num_templates(),
      experiment->kbqa().em_stats().num_predicates);
  return experiment;
}

/// Prints the paper's reported numbers as context above a measured table.
inline void PrintPaperNote(const char* note) {
  std::printf("\n[paper] %s\n", note);
}

/// One row of a QALD-style effectiveness table.
struct QaldRow {
  std::string system;
  eval::RunResult run;
};

/// Prints a QALD-style table (Tables 7/8/9 columns): #pro #ri #par R R*
/// R_BFQ R*_BFQ P P*. `paper_rows` are literal reference rows from the
/// paper, rendered above the measured ones.
inline void PrintQaldTable(const std::string& title,
                           const std::vector<std::vector<std::string>>&
                               paper_rows,
                           const std::vector<QaldRow>& rows,
                           std::ostream& os) {
  TablePrinter table(title);
  table.SetHeader({"system", "#pro", "#ri", "#par", "R", "R*", "R_BFQ",
                   "R*_BFQ", "P", "P*"});
  for (const auto& row : paper_rows) table.AddRow(row);
  for (const QaldRow& row : rows) {
    const eval::QaldCounts& c = row.run.counts;
    const eval::QaldCounts& b = row.run.bfq_only;
    table.AddRow({row.system, TablePrinter::Int(c.pro),
                  TablePrinter::Int(c.ri), TablePrinter::Int(c.par),
                  TablePrinter::Num(c.R(), 2), TablePrinter::Num(c.RStar(), 2),
                  TablePrinter::Num(b.R(), 2),
                  TablePrinter::Num(b.RStar(), 2),
                  TablePrinter::Num(c.P(), 2),
                  TablePrinter::Num(c.PStar(), 2)});
  }
  table.Print(os);
}

}  // namespace kbqa::bench

#endif  // KBQA_BENCH_BENCH_COMMON_H_
