#ifndef KBQA_BENCH_BENCH_COMMON_H_
#define KBQA_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "eval/experiment.h"
#include "eval/runner.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace kbqa::bench {

/// Exact-percentile latency reservoir: keeps every sample and sorts once at
/// read time. Benches record at most a few million samples, so the memory
/// cost is trivial and the percentiles are exact — the ground truth the
/// log-bucketed obs histograms (MetricsSnapshot::ValueAtQuantile) are
/// validated against. Not thread-safe; give each load thread its own and
/// Merge at the end.
class LatencyReservoir {
 public:
  void Record(uint64_t nanos) {
    sorted_ = sorted_ && (samples_.empty() || nanos >= samples_.back());
    samples_.push_back(nanos);
  }

  void Merge(const LatencyReservoir& other) {
    sorted_ = false;
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
  }

  size_t count() const { return samples_.size(); }

  /// Nearest-rank percentile of recorded samples; q in [0, 1]. 0 when
  /// empty.
  uint64_t ValueAtQuantile(double q) const {
    if (samples_.empty()) return 0;
    Sort();
    q = std::min(std::max(q, 0.0), 1.0);
    size_t rank = static_cast<size_t>(
        std::ceil(q * static_cast<double>(samples_.size())));
    if (rank > 0) --rank;
    return samples_[std::min(rank, samples_.size() - 1)];
  }

  double MeanNanos() const {
    if (samples_.empty()) return 0;
    double sum = 0;
    for (uint64_t s : samples_) sum += static_cast<double>(s);
    return sum / static_cast<double>(samples_.size());
  }

 private:
  void Sort() const {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  mutable std::vector<uint64_t> samples_;
  mutable bool sorted_ = true;
};

/// Builds the standard experiment used by every table bench, printing
/// setup progress. Terminates the process on failure (benches have no
/// recovery path).
inline std::unique_ptr<eval::Experiment> BuildStandardExperiment() {
  std::printf("[setup] generating world + corpus and training KBQA...\n");
  // Setup time also lands in the registry, so a post-run metrics dump
  // shows how long the world build took relative to the measured phase.
  ScopedTimer timer("bench.setup.build_experiment_ns");
  auto built = eval::Experiment::Build(eval::ExperimentConfig::Standard());
  if (!built.ok()) {
    std::fprintf(stderr, "experiment build failed: %s\n",
                 built.status().ToString().c_str());
    std::exit(1);
  }
  auto experiment = std::move(built).value();
  std::printf(
      "[setup] done in %.1fs: %zu KB triples, %zu QA pairs, %zu templates, "
      "%zu predicates\n",
      timer.ElapsedSeconds(), experiment->world().kb.num_triples(),
      experiment->train_corpus().size(),
      experiment->kbqa().template_store().num_templates(),
      experiment->kbqa().em_stats().num_predicates);
  return experiment;
}

/// Prints the paper's reported numbers as context above a measured table.
inline void PrintPaperNote(const char* note) {
  std::printf("\n[paper] %s\n", note);
}

/// One row of a QALD-style effectiveness table.
struct QaldRow {
  std::string system;
  eval::RunResult run;
};

/// Prints a QALD-style table (Tables 7/8/9 columns): #pro #ri #par R R*
/// R_BFQ R*_BFQ P P*. `paper_rows` are literal reference rows from the
/// paper, rendered above the measured ones.
inline void PrintQaldTable(const std::string& title,
                           const std::vector<std::vector<std::string>>&
                               paper_rows,
                           const std::vector<QaldRow>& rows,
                           std::ostream& os) {
  TablePrinter table(title);
  table.SetHeader({"system", "#pro", "#ri", "#par", "R", "R*", "R_BFQ",
                   "R*_BFQ", "P", "P*"});
  for (const auto& row : paper_rows) table.AddRow(row);
  for (const QaldRow& row : rows) {
    const eval::QaldCounts& c = row.run.counts;
    const eval::QaldCounts& b = row.run.bfq_only;
    table.AddRow({row.system, TablePrinter::Int(c.pro),
                  TablePrinter::Int(c.ri), TablePrinter::Int(c.par),
                  TablePrinter::Num(c.R(), 2), TablePrinter::Num(c.RStar(), 2),
                  TablePrinter::Num(b.R(), 2),
                  TablePrinter::Num(b.RStar(), 2),
                  TablePrinter::Num(c.P(), 2),
                  TablePrinter::Num(c.PStar(), 2)});
  }
  table.Print(os);
}

}  // namespace kbqa::bench

#endif  // KBQA_BENCH_BENCH_COMMON_H_
