// Figure-style extension (DESIGN.md §3 ablations): precision–recall
// trade-off of the online procedure as the answer-confidence threshold
// sweeps. The paper fixes one operating point (answer whenever a predicate
// is found); this bench shows the whole curve, which is what a production
// deployment would tune. Also sweeps the predicate-probability floor
// P(p|t) >= tau — the knob behind the paper's "relatively strict rule for
// template matching" remark.

#include <iostream>

#include "bench/bench_common.h"
#include "core/kbqa_system.h"
#include "eval/runner.h"
#include "util/table_printer.h"

int main() {
  using namespace kbqa;
  auto experiment = bench::BuildStandardExperiment();
  const corpus::World& world = experiment->world();

  corpus::BenchmarkConfig config;
  config.num_questions = 400;
  config.bfq_ratio = 1.0;
  config.seed = 4242;
  corpus::BenchmarkSet bfqs = corpus::GenerateBenchmark(world, config);

  // Retrain once; sweep only the online thresholds (cheap).
  TablePrinter score_table(
      "PR trade-off: minimum posterior score to answer (min_answer_score)");
  score_table.SetHeader({"threshold", "#pro", "#ri", "P", "R_BFQ"});
  for (double threshold : {0.0, 0.01, 0.05, 0.1, 0.2, 0.4, 0.6}) {
    core::KbqaOptions options;
    options.online.min_answer_score = threshold;
    core::KbqaSystem kbqa(&world, options);
    Status status = kbqa.Train(experiment->train_corpus());
    if (!status.ok()) {
      std::fprintf(stderr, "training failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    eval::RunResult run = eval::RunBenchmark(kbqa, bfqs);
    score_table.AddRow({TablePrinter::Num(threshold, 2),
                        TablePrinter::Int(run.counts.pro),
                        TablePrinter::Int(run.counts.ri),
                        TablePrinter::Num(run.counts.P(), 2),
                        TablePrinter::Num(run.bfq_only.R(), 2)});
  }
  score_table.Print(std::cout);

  TablePrinter tau_table(
      "PR trade-off: P(p|t) floor for predicate enumeration "
      "(min_predicate_prob)");
  tau_table.SetHeader({"tau", "#pro", "#ri", "P", "R_BFQ"});
  for (double tau : {0.001, 0.05, 0.2, 0.5, 0.8}) {
    core::KbqaOptions options;
    options.online.min_predicate_prob = tau;
    core::KbqaSystem kbqa(&world, options);
    Status status = kbqa.Train(experiment->train_corpus());
    if (!status.ok()) {
      std::fprintf(stderr, "training failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    eval::RunResult run = eval::RunBenchmark(kbqa, bfqs);
    tau_table.AddRow({TablePrinter::Num(tau, 3),
                      TablePrinter::Int(run.counts.pro),
                      TablePrinter::Int(run.counts.ri),
                      TablePrinter::Num(run.counts.P(), 2),
                      TablePrinter::Num(run.bfq_only.R(), 2)});
  }
  tau_table.Print(std::cout);

  bench::PrintPaperNote(
      "expected shape: both knobs trade recall for precision "
      "monotonically; a high P(p|t) floor approaches the paper's "
      "strict-matching operating point (high precision, recall capped by "
      "rare templates).");
  return 0;
}
