// Memory-budget bench for the compressed expanded-KB substrate.
//
// Measures (1) compressed-vs-raw resident bytes of the expanded KB at full
// residency and (2) the hit-rate / latency curve of the paged substrate as
// the decoded-block budget sweeps 100% -> 5% of the compressed size, with
// a Zipfian subject stream driving the decoded-block cache. At every swept
// budget point the bench also re-answers a benchmark question set through
// an engine wired to the paged substrate and demands bit-identical answers
// against an engine running on the raw base-KB walk — compression and
// paging change where the bytes live, never what the system says.
//
// Emits BENCH_memory.json (validated by scripts/validate_bench.py).
// --smoke runs the Small experiment with a short stream for CI.

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/kbqa_system.h"
#include "core/online.h"
#include "corpus/qa_corpus.h"
#include "rdf/compressed_expanded.h"
#include "rdf/expanded_predicate.h"
#include "util/rng.h"
#include "util/timer.h"

namespace kbqa::bench {
namespace {

void Check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FATAL: %s\n", what);
    std::exit(1);
  }
}

struct Args {
  bool smoke = false;
  size_t lookups = 200000;
  size_t block_edges = 4096;
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--smoke") == 0) {
      args.smoke = true;
    } else if (std::strncmp(arg, "--lookups=", 10) == 0) {
      args.lookups = static_cast<size_t>(std::strtoull(arg + 10, nullptr, 10));
    } else if (std::strncmp(arg, "--block-edges=", 14) == 0) {
      args.block_edges =
          static_cast<size_t>(std::strtoull(arg + 14, nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: bench_memory_budget [--smoke] [--lookups=N] "
                   "[--block-edges=N]\n");
      std::exit(2);
    }
  }
  if (args.smoke) {
    args.lookups = std::min<size_t>(args.lookups, 20000);
    args.block_edges = std::min<size_t>(args.block_edges, 512);
  }
  return args;
}

/// One swept budget point: paged substrate driven by a Zipfian subject
/// stream, then an engine-equality pass.
struct SweepPoint {
  double fraction = 0;
  uint64_t budget_bytes = 0;
  uint64_t resident_bytes = 0;
  double hit_rate = 0;
  uint64_t evictions = 0;
  uint64_t p50_ns = 0;
  uint64_t p99_ns = 0;
  double lookups_per_s = 0;
  bool answers_identical = false;
  size_t questions_compared = 0;
};

bool SameAnswer(const core::AnswerResult& a, const core::AnswerResult& b) {
  if (a.answered != b.answered || a.value != b.value || a.score != b.score ||
      a.predicate != b.predicate || a.sparql != b.sparql ||
      a.values != b.values || a.ranked.size() != b.ranked.size()) {
    return false;
  }
  for (size_t i = 0; i < a.ranked.size(); ++i) {
    if (a.ranked[i].value != b.ranked[i].value ||
        a.ranked[i].score != b.ranked[i].score) {
      return false;
    }
  }
  return true;
}

int Run(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);
  std::printf("[mode] %s, %zu lookups/point, %zu edges/block\n",
              args.smoke ? "smoke (Small world)" : "full (Standard world)",
              args.lookups, args.block_edges);

  auto experiment = [&] {
    std::printf("[setup] building %s experiment...\n",
                args.smoke ? "Small" : "Standard");
    auto built = eval::Experiment::Build(args.smoke
                                             ? eval::ExperimentConfig::Small()
                                             : eval::ExperimentConfig::Standard());
    if (!built.ok()) {
      std::fprintf(stderr, "experiment build failed: %s\n",
                   built.status().ToString().c_str());
      std::exit(1);
    }
    return std::move(built).value();
  }();
  const corpus::World& world = experiment->world();
  const core::KbqaSystem& kbqa = experiment->kbqa();
  const rdf::ExpandedKb& ekb = kbqa.expanded_kb();

  // ---- Full-residency compression ratio ----
  const uint64_t raw_bytes = ekb.ApproxResidentBytes();
  rdf::CompressedExpandedKb::Options copt;
  copt.target_block_edges = args.block_edges;
  auto compressed = rdf::CompressedExpandedKb::FromExpanded(ekb, copt);
  Check(compressed.ok(), "FromExpanded failed");
  const rdf::CompressedExpandedKb::MemoryStats full_stats =
      compressed.value().memory_stats();
  const double ratio = static_cast<double>(full_stats.ResidentBytes()) /
                       static_cast<double>(raw_bytes);
  std::printf(
      "[compress] raw %.2f MiB -> resident %.2f MiB (payload %.2f MiB, "
      "index %.2f MiB, paths %.2f MiB), ratio %.3f, %zu blocks, "
      "%zu triples\n",
      raw_bytes / 1048576.0, full_stats.ResidentBytes() / 1048576.0,
      full_stats.compressed_bytes / 1048576.0,
      full_stats.index_bytes / 1048576.0, full_stats.paths_bytes / 1048576.0,
      ratio, compressed.value().num_blocks(),
      compressed.value().num_triples());
  Check(ratio <= 0.5,
        "compressed substrate must be <= 50% of raw resident bytes");

  // ---- Snapshot for the paged sweep ----
  const std::string snapshot_path = "bench_memory_budget.cekb";
  Check(compressed.value().Save(snapshot_path).ok(), "snapshot save failed");

  // Question set + reference answers from an engine with no substrate
  // (pure base-KB walks): the equality baseline for every budget point.
  corpus::BenchmarkConfig bench_config;
  bench_config.num_questions = args.smoke ? 40 : 120;
  bench_config.seed = 4242;
  std::vector<std::string> questions;
  for (const corpus::QaPair& pair :
       corpus::GenerateBenchmark(world, bench_config).questions.pairs) {
    questions.push_back(pair.question);
  }
  core::OnlineInference::Options engine_options = kbqa.options().online;
  core::OnlineInference baseline_engine(
      &world.kb, &world.taxonomy, &kbqa.ner(), &kbqa.template_store(),
      &ekb.paths(), engine_options);
  std::vector<core::AnswerResult> reference;
  reference.reserve(questions.size());
  for (const std::string& q : questions) {
    reference.push_back(baseline_engine.Answer(q));
  }

  const std::vector<rdf::TermId> subjects = ekb.Subjects();
  Check(!subjects.empty(), "expansion produced no subjects");

  const double fractions[] = {1.0, 0.5, 0.25, 0.10, 0.05};
  std::vector<SweepPoint> sweep;
  for (double fraction : fractions) {
    rdf::CompressedExpandedKb::Options paged = copt;
    paged.blocks_resident = false;
    paged.decoded_cache_budget_bytes = static_cast<uint64_t>(
        static_cast<double>(full_stats.compressed_bytes) * fraction) + 1;
    auto opened = rdf::CompressedExpandedKb::Open(snapshot_path, paged);
    Check(opened.ok(), "snapshot open failed");
    const rdf::CompressedExpandedKb& cekb = opened.value();

    // Zipfian subject stream (head-heavy, like serving traffic); every
    // lookup's result is checked against the uncompressed substrate.
    Rng rng(99);
    ZipfianGenerator zipf(subjects.size(), 0.99);
    LatencyReservoir latencies;
    std::vector<std::pair<rdf::PathId, rdf::TermId>> run;
    Timer wall;
    for (size_t i = 0; i < args.lookups; ++i) {
      const rdf::TermId s = subjects[zipf.Sample(rng)];
      Timer op;
      const bool found = cekb.CopyOut(s, &run);
      latencies.Record(static_cast<uint64_t>(op.ElapsedSeconds() * 1e9));
      Check(found, "materialized subject missing from paged substrate");
      const auto expected = ekb.Out(s);
      Check(run.size() == expected.size() &&
                std::equal(run.begin(), run.end(), expected.begin()),
            "paged lookup diverged from uncompressed substrate");
    }
    const double elapsed = wall.ElapsedSeconds();

    // Engine equality at this budget point.
    core::OnlineInference engine(&world.kb, &world.taxonomy, &kbqa.ner(),
                                 &kbqa.template_store(), &ekb.paths(),
                                 engine_options, &cekb);
    bool identical = true;
    for (size_t i = 0; i < questions.size(); ++i) {
      if (!SameAnswer(engine.Answer(questions[i]), reference[i])) {
        identical = false;
        std::fprintf(stderr, "answer diverged at budget %.2f: %s\n", fraction,
                     questions[i].c_str());
      }
    }
    Check(identical, "engine answers must be bit-identical at every budget");

    const rdf::CompressedExpandedKb::MemoryStats stats = cekb.memory_stats();
    SweepPoint point;
    point.fraction = fraction;
    point.budget_bytes = paged.decoded_cache_budget_bytes;
    point.resident_bytes = stats.ResidentBytes();
    point.hit_rate = stats.hits + stats.misses == 0
                         ? 0.0
                         : static_cast<double>(stats.hits) /
                               static_cast<double>(stats.hits + stats.misses);
    point.evictions = stats.evictions;
    point.p50_ns = latencies.ValueAtQuantile(0.50);
    point.p99_ns = latencies.ValueAtQuantile(0.99);
    point.lookups_per_s =
        elapsed > 0 ? static_cast<double>(args.lookups) / elapsed : 0.0;
    point.answers_identical = identical;
    point.questions_compared = questions.size();
    Check(stats.corrupt_blocks == 0, "corrupt blocks in a clean snapshot");
    sweep.push_back(point);
    std::printf(
        "[sweep] budget %5.1f%% (%8.2f KiB): hit rate %.3f, p50 %6.1fus, "
        "p99 %6.1fus, %.0f lookups/s, %" PRIu64 " evictions, resident "
        "%.2f MiB\n",
        fraction * 100.0, point.budget_bytes / 1024.0, point.hit_rate,
        point.p50_ns / 1e3, point.p99_ns / 1e3, point.lookups_per_s,
        point.evictions, point.resident_bytes / 1048576.0);
  }
  std::remove(snapshot_path.c_str());

  // ---- JSON ----
  std::FILE* out = std::fopen("BENCH_memory.json", "w");
  Check(out != nullptr, "open BENCH_memory.json");
  std::fprintf(out,
               "{\n  \"config\": {\"smoke\": %s, \"lookups\": %zu, "
               "\"block_edges\": %zu, \"zipf_s\": 0.99},\n"
               "  \"raw_bytes\": %" PRIu64 ",\n"
               "  \"full_residency\": {\"resident_bytes\": %" PRIu64
               ", \"payload_bytes\": %" PRIu64 ", \"index_bytes\": %" PRIu64
               ", \"paths_bytes\": %" PRIu64
               ", \"ratio_vs_raw\": %.4f, \"num_blocks\": %zu, "
               "\"num_triples\": %zu},\n"
               "  \"sweep\": [\n",
               args.smoke ? "true" : "false", args.lookups, args.block_edges,
               raw_bytes, full_stats.ResidentBytes(),
               full_stats.compressed_bytes, full_stats.index_bytes,
               full_stats.paths_bytes, ratio, compressed.value().num_blocks(),
               compressed.value().num_triples());
  for (size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& p = sweep[i];
    std::fprintf(out,
                 "    {\"budget_fraction\": %.2f, \"budget_bytes\": %" PRIu64
                 ", \"resident_bytes\": %" PRIu64
                 ", \"hit_rate\": %.4f, \"evictions\": %" PRIu64
                 ", \"p50_ns\": %" PRIu64 ", \"p99_ns\": %" PRIu64
                 ", \"lookups_per_s\": %.1f, \"answers_identical\": %s, "
                 "\"questions_compared\": %zu}%s\n",
                 p.fraction, p.budget_bytes, p.resident_bytes, p.hit_rate,
                 p.evictions, p.p50_ns, p.p99_ns, p.lookups_per_s,
                 p.answers_identical ? "true" : "false",
                 p.questions_compared, i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("[done] wrote BENCH_memory.json\n");
  return 0;
}

}  // namespace
}  // namespace kbqa::bench

int main(int argc, char** argv) { return kbqa::bench::Run(argc, argv); }
