// Mixed read/write benchmark for live KB mutation (DESIGN.md §10): a
// LiveKbqaEngine over rdf::MutableKb serves a benchmark question pool
// while a writer applies overlay batches and forces background merges.
// Three phases:
//
//   1. quiescent    — readers only, no writes: the baseline answer
//                     latency distribution over the live engine
//   2. during_merge — same readers while a writer thread applies op
//                     batches and drives continuous re-freeze/merge
//                     cycles: read p99 must stay bounded (the RCU swap
//                     never blocks readers)
//   3. equivalence  — after the final merge, the merged base must be
//                     byte-identical to a from-scratch freeze of the
//                     mutated world (independent op-log replay), and
//                     answers must match a frozen engine built over that
//                     reference at every thread count
//
// Emits BENCH_mutation.json (scripts/validate_bench.py checks the merge
// count, the equivalence bits, and the p99 bound). --smoke runs the
// Small experiment with short phases for CI.

#include <atomic>
#include <array>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <set>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/kbqa_system.h"
#include "core/live_engine.h"
#include "core/online.h"
#include "corpus/qa_generator.h"
#include "eval/experiment.h"
#include "nlp/ner.h"
#include "rdf/knowledge_base.h"
#include "rdf/mutable_kb.h"
#include "util/mutex.h"
#include "util/rng.h"

namespace {

using namespace kbqa;
using Clock = std::chrono::steady_clock;

struct Args {
  double duration_s = 5;  // per measured phase
  int threads = 3;        // reader threads
  bool smoke = false;
};

void Check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAILED: %s\n", what);
    std::exit(1);
  }
}

Args Parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    double v = 0;
    if (std::sscanf(arg, "--duration_s=%lf", &v) == 1) {
      args.duration_s = v;
    } else if (std::sscanf(arg, "--threads=%lf", &v) == 1) {
      args.threads = static_cast<int>(v);
    } else if (std::strcmp(arg, "--smoke") == 0) {
      args.smoke = true;
    } else {
      std::fprintf(stderr,
                   "unknown flag %s\nusage: bench_mutation [--duration_s=N] "
                   "[--threads=N] [--smoke]\n",
                   arg);
      std::exit(2);
    }
  }
  if (args.threads < 1) args.threads = 1;
  return args;
}

uint64_t ElapsedNs(Clock::time_point since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           since)
          .count());
}

/// Deterministic op-log generator: mostly adds (new entities and extra
/// values on base entities), some deletes of earlier adds, some deletes
/// of base-resident triples (tombstones). Every generated op is recorded
/// so the equivalence phase can replay the exact mutated world.
class OpGenerator {
 public:
  OpGenerator(const rdf::KnowledgeBase& base, uint64_t seed)
      : base_(base), entities_(base.AllEntities()), rng_(seed) {}

  rdf::MutationOp Next() {
    const uint64_t roll = rng_.Uniform(10);
    rdf::MutationOp op;
    if (roll < 5) {  // brand-new entity with one literal fact
      const std::string tag = std::to_string(counter_++);
      op = {false, "live/entity" + tag, "live_fact", "live value " + tag,
            true};
    } else if (roll < 7) {  // extra value on an existing entity
      const rdf::TermId e =
          entities_[rng_.Uniform(static_cast<uint64_t>(entities_.size()))];
      op = {false, base_.NodeString(e), "live_fact",
            "extra value " + std::to_string(counter_++), true};
    } else if (roll < 9 && !added_.empty()) {  // delete an earlier add
      const size_t i = rng_.Uniform(static_cast<uint64_t>(added_.size()));
      op = added_[i];
      op.is_delete = true;
    } else {  // tombstone a base-resident triple
      const rdf::TermId s =
          entities_[rng_.Uniform(static_cast<uint64_t>(entities_.size()))];
      const auto out = base_.Out(s);
      if (out.empty()) return Next();
      const rdf::PredicateObject& po = out[rng_.Uniform(
          static_cast<uint64_t>(out.size()))];
      op = {true, base_.NodeString(s), base_.PredicateString(po.p),
            base_.NodeString(po.o), base_.IsLiteral(po.o)};
    }
    if (!op.is_delete) added_.push_back(op);
    log_.push_back(op);
    return op;
  }

  const std::vector<rdf::MutationOp>& log() const { return log_; }

 private:
  const rdf::KnowledgeBase& base_;
  std::vector<rdf::TermId> entities_;
  Rng rng_;
  uint64_t counter_ = 0;
  std::vector<rdf::MutationOp> added_;
  std::vector<rdf::MutationOp> log_;
};

/// From-scratch freeze of the mutated world (same independent replay the
/// mutable_kb tests use): base dictionary re-interned in id order, then
/// the op log replayed over a plain triple set, then one Freeze.
rdf::KnowledgeBase BuildReference(const rdf::KnowledgeBase& base,
                                  const std::vector<rdf::MutationOp>& ops,
                                  int num_threads) {
  rdf::KnowledgeBase next;
  for (rdf::TermId id = 0; id < base.num_nodes(); ++id) {
    if (base.IsLiteral(id)) {
      next.AddLiteral(base.NodeString(id));
    } else {
      next.AddEntity(base.NodeString(id));
    }
  }
  for (rdf::PredId p = 0; p < base.num_predicates(); ++p) {
    next.AddPredicate(base.PredicateString(p));
  }
  if (base.name_predicate() != rdf::kInvalidPred) {
    next.SetNamePredicate(base.name_predicate());
  }
  std::set<std::array<uint64_t, 3>> triples;
  for (rdf::TermId s = 0; s < base.num_nodes(); ++s) {
    for (const rdf::PredicateObject& po : base.Out(s)) {
      triples.insert({s, po.p, po.o});
    }
  }
  for (const rdf::MutationOp& op : ops) {
    if (op.is_delete) {
      auto s = next.LookupNode(op.s);
      auto p = next.LookupPredicate(op.p);
      auto o = next.LookupNode(op.o);
      if (!s || !p || !o) continue;
      triples.erase({*s, *p, *o});
      continue;
    }
    const rdf::TermId s = next.AddEntity(op.s);
    const rdf::PredId p = next.AddPredicate(op.p);
    const rdf::TermId o =
        op.object_is_literal ? next.AddLiteral(op.o) : next.AddEntity(op.o);
    triples.insert({s, p, o});
  }
  for (const auto& t : triples) {
    next.AddTriple(static_cast<rdf::TermId>(t[0]),
                   static_cast<rdf::PredId>(t[1]),
                   static_cast<rdf::TermId>(t[2]));
  }
  next.Freeze(num_threads);
  return next;
}

std::string ReadFileBytes(const std::string& path) {
  std::string bytes;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  Check(f != nullptr, "open snapshot for byte comparison");
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  std::fclose(f);
  return bytes;
}

struct PhaseResult {
  bench::LatencyReservoir latency;
  uint64_t answers = 0;
};

/// Drives `threads` readers round-robin over the pool until the deadline,
/// recording per-answer latency.
PhaseResult RunReaders(const core::LiveKbqaEngine& engine,
                       const std::vector<std::string>& pool,
                       double duration_s, int threads) {
  std::vector<bench::LatencyReservoir> reservoirs(
      static_cast<size_t>(threads));
  std::vector<std::thread> readers;
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(duration_s));
  core::AnswerOptions answer_options;
  for (int t = 0; t < threads; ++t) {
    readers.emplace_back([&, t] {
      size_t i = static_cast<size_t>(t);
      while (Clock::now() < deadline) {
        const auto begin = Clock::now();
        const core::AnswerResult r =
            engine.AnswerCached(pool[i % pool.size()], answer_options);
        Check(r.status.ok(), "answer status during load phase");
        reservoirs[static_cast<size_t>(t)].Record(ElapsedNs(begin));
        ++i;
      }
    });
  }
  for (auto& th : readers) th.join();
  PhaseResult result;
  for (const auto& r : reservoirs) result.latency.Merge(r);
  result.answers = result.latency.count();
  return result;
}

bool SameAnswer(const core::AnswerResult& a, const core::AnswerResult& b) {
  return a.answered == b.answered && a.value == b.value &&
         a.score == b.score && a.predicate == b.predicate &&
         a.sparql == b.sparql && a.values == b.values;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = Parse(argc, argv);
  if (args.smoke && args.duration_s > 0.5) args.duration_s = 0.5;
  std::printf("[config] %s, duration_s=%.1f per phase, readers=%d\n",
              args.smoke ? "smoke (Small world)" : "full (Standard world)",
              args.duration_s, args.threads);

  auto built = eval::Experiment::Build(args.smoke
                                           ? eval::ExperimentConfig::Small()
                                           : eval::ExperimentConfig::Standard());
  Check(built.ok(), "experiment build");
  const auto experiment = std::move(built).value();
  const corpus::World& world = experiment->world();
  const core::KbqaSystem& kbqa = experiment->kbqa();

  corpus::BenchmarkConfig pool_config;
  pool_config.num_questions = args.smoke ? 48 : 192;
  pool_config.seed = 20260808;
  std::vector<std::string> pool;
  for (const corpus::QaPair& pair :
       corpus::GenerateBenchmark(world, pool_config).questions.pairs) {
    pool.push_back(pair.question);
  }
  Check(!pool.empty(), "benchmark pool non-empty");

  // Seed the live KB with a Save/Load copy of the trained world's KB (ids
  // preserved bit-for-bit, so the trained model stays valid).
  const std::string kb_copy_path = "bench_mutation_kb.bin";
  Check(world.kb.Save(kb_copy_path).ok(), "save base KB copy");
  auto loaded = rdf::KnowledgeBase::Load(kb_copy_path);
  Check(loaded.ok(), "load base KB copy");
  rdf::MutableKb::Options live_options;
  live_options.auto_merge = false;  // the writer drives merges explicitly
  live_options.merge_threads = 2;
  rdf::MutableKb live(std::move(loaded).value(), live_options);

  core::LiveKbqaEngine::Options engine_options;
  engine_options.alias_predicates = world.alias_predicates;
  engine_options.online = kbqa.options().online;
  engine_options.online.enable_answer_cache = true;
  core::LiveKbqaEngine engine(&live, &world.taxonomy, &kbqa.template_store(),
                              &kbqa.expanded_kb().paths(), engine_options);

  // ---- Phase 1: quiescent ----
  std::printf("[quiescent] readers only, %.1fs...\n", args.duration_s);
  const PhaseResult quiescent =
      RunReaders(engine, pool, args.duration_s, args.threads);
  std::printf("[quiescent] %" PRIu64 " answers, p50 %.3fms p99 %.3fms\n",
              quiescent.answers,
              quiescent.latency.ValueAtQuantile(0.5) / 1e6,
              quiescent.latency.ValueAtQuantile(0.99) / 1e6);

  // ---- Phase 2: reads during continuous mutation + merge ----
  std::printf("[during_merge] readers + writer forcing merges, %.1fs...\n",
              args.duration_s);
  OpGenerator ops(world.kb, /*seed=*/97);
  bench::LatencyReservoir merge_latency;
  std::atomic<bool> stop{false};
  const uint64_t merges_before = live.merges_completed();
  std::thread writer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      std::vector<rdf::MutationOp> batch;
      batch.reserve(16);
      for (int i = 0; i < 16; ++i) batch.push_back(ops.Next());
      live.Apply(batch);
      const auto begin = Clock::now();
      live.ForceMerge();
      merge_latency.Record(ElapsedNs(begin));
    }
  });
  const PhaseResult during =
      RunReaders(engine, pool, args.duration_s, args.threads);
  stop.store(true, std::memory_order_release);
  writer.join();
  live.ForceMerge();
  const uint64_t merges = live.merges_completed() - merges_before;
  Check(merges >= 1, "at least one merge during the load phase");
  Check(live.pending_ops() == 0, "overlay drained after final merge");
  std::printf("[during_merge] %" PRIu64 " answers, p50 %.3fms p99 %.3fms; "
              "%" PRIu64 " merges over %zu ops, merge p50 %.3fms p99 %.3fms\n",
              during.answers, during.latency.ValueAtQuantile(0.5) / 1e6,
              during.latency.ValueAtQuantile(0.99) / 1e6, merges,
              ops.log().size(), merge_latency.ValueAtQuantile(0.5) / 1e6,
              merge_latency.ValueAtQuantile(0.99) / 1e6);

  // ---- Phase 3: equivalence against a from-scratch freeze ----
  std::printf("[equivalence] replaying %zu ops from scratch...\n",
              ops.log().size());
  const rdf::KnowledgeBase reference =
      BuildReference(world.kb, ops.log(), /*num_threads=*/4);
  const std::string merged_path = "bench_mutation_merged.bin";
  const std::string reference_path = "bench_mutation_reference.bin";
  Check(live.Pin()->base->Save(merged_path).ok(), "save merged base");
  Check(reference.Save(reference_path).ok(), "save reference");
  const bool kb_bit_identical =
      ReadFileBytes(merged_path) == ReadFileBytes(reference_path);
  Check(kb_bit_identical, "merged base == from-scratch freeze (bytes)");

  nlp::GazetteerNer reference_ner(reference, world.alias_predicates);
  core::OnlineInference reference_engine(
      &reference, &world.taxonomy, &reference_ner, &kbqa.template_store(),
      &kbqa.expanded_kb().paths(), kbqa.options().online);
  bool answers_identical = true;
  const std::array<int, 2> thread_counts = {1, 4};
  for (const int threads : thread_counts) {
    const std::vector<core::AnswerResult> got = engine.AnswerAll(pool, threads);
    const std::vector<core::AnswerResult> want =
        reference_engine.AnswerAll(pool, threads);
    for (size_t i = 0; i < pool.size(); ++i) {
      if (!SameAnswer(got[i], want[i])) {
        answers_identical = false;
        std::fprintf(stderr, "answer mismatch (threads=%d): %s\n", threads,
                     pool[i].c_str());
      }
    }
  }
  Check(answers_identical, "live answers == from-scratch engine answers");
  std::printf("[equivalence] merged base byte-identical; %zu answers match "
              "at every thread count\n",
              pool.size() * thread_counts.size());
  std::remove(kb_copy_path.c_str());
  std::remove(merged_path.c_str());
  std::remove(reference_path.c_str());

  // ---- JSON ----
  std::FILE* out = std::fopen("BENCH_mutation.json", "w");
  Check(out != nullptr, "open BENCH_mutation.json");
  std::fprintf(out,
               "{\n  \"config\": {\"smoke\": %s, \"duration_s\": %.1f, "
               "\"threads\": %d, \"pool_size\": %zu, \"batch_ops\": 16},\n"
               "  \"base\": {\"num_triples\": %zu, \"num_entities\": %zu},\n",
               args.smoke ? "true" : "false", args.duration_s, args.threads,
               pool.size(), world.kb.num_triples(), world.kb.num_entities());
  std::fprintf(out,
               "  \"quiescent\": {\"answers\": %" PRIu64
               ", \"p50_ns\": %" PRIu64 ", \"p99_ns\": %" PRIu64
               ", \"mean_ns\": %.0f},\n",
               quiescent.answers, quiescent.latency.ValueAtQuantile(0.5),
               quiescent.latency.ValueAtQuantile(0.99),
               quiescent.latency.MeanNanos());
  std::fprintf(out,
               "  \"during_merge\": {\"answers\": %" PRIu64
               ", \"p50_ns\": %" PRIu64 ", \"p99_ns\": %" PRIu64
               ", \"mean_ns\": %.0f, \"merges\": %" PRIu64
               ", \"ops_applied\": %zu, \"merge_p50_ns\": %" PRIu64
               ", \"merge_p99_ns\": %" PRIu64 "},\n",
               during.answers, during.latency.ValueAtQuantile(0.5),
               during.latency.ValueAtQuantile(0.99),
               during.latency.MeanNanos(), merges, ops.log().size(),
               merge_latency.ValueAtQuantile(0.5),
               merge_latency.ValueAtQuantile(0.99));
  std::fprintf(out,
               "  \"final\": {\"epoch\": %" PRIu64 ", \"version\": %" PRIu64
               "},\n"
               "  \"equivalence\": {\"kb_bit_identical\": %s, "
               "\"answers_identical\": %s, \"questions\": %zu, "
               "\"thread_counts\": [1, 4]}\n}\n",
               live.epoch(), live.version(),
               kb_bit_identical ? "true" : "false",
               answers_identical ? "true" : "false", pool.size());
  std::fclose(out);
  std::printf("[done] wrote BENCH_mutation.json\n");
  return 0;
}
