// Observability benchmark: (1) A/B overhead of the instrumented Answer
// path — registry runtime-enabled vs runtime-disabled, interleaved rounds,
// median-of-rounds — proving the instrumentation budget (< 2%); (2) metric
// coverage after a batched benchmark run (answer-stage histograms, value
// cache hit/miss, EM iteration stats, thread-pool task latencies all
// non-zero); (3) trace collection + Chrome trace export exercise; (4) the
// snapshot JSON round-trip at full-registry scale. Emits
// BENCH_observability.json.
//
// The runtime-disabled arm is a proxy for the compile-out build
// (-DKBQA_OBS_DISABLED=ON): it still pays one relaxed load per macro site.
// That makes the measured overhead an *upper* bound on enabled-vs-compiled
// -out, while keeping the A/B inside one binary (no cross-build noise).

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/online.h"
#include "eval/report.h"
#include "obs/obs.h"
#include "obs/wide_event.h"
#include "serve/server.h"
#include "util/timer.h"

namespace {

using namespace kbqa;

void Check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAILED: %s\n", what);
    std::exit(1);
  }
}

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

double Min(const std::vector<double>& v) {
  return *std::min_element(v.begin(), v.end());
}

/// One timed arm: a single sweep over the questions, returning ns per
/// Answer call.
double TimeAnswerPass(const core::KbqaSystem& kbqa,
                      const std::vector<std::string>& questions,
                      size_t* answered) {
  Timer t;
  for (const std::string& q : questions) {
    *answered += kbqa.Answer(q).answered;
  }
  return t.ElapsedSeconds() * 1e9 / static_cast<double>(questions.size());
}

/// One through-the-server sweep: blocking Answer via the serve front door,
/// so each request pays admission + wide-event sampling + queueing +
/// dispatch + the handler — the denominator the wide-event overhead gate
/// is defined against (a request-scoped feature is budgeted against the
/// request, not the bare engine call inside it).
double TimeServerPass(serve::Server& server,
                      const std::vector<std::string>& questions,
                      size_t* completed) {
  Timer t;
  for (const std::string& q : questions) {
    *completed += server.Answer(q).result.status.ok();
  }
  return t.ElapsedSeconds() * 1e9 / static_cast<double>(questions.size());
}

/// One bare-engine sweep with or without a bound RequestContext: isolates
/// the per-stage Mark()/cache-tally cost of trace propagation from the
/// serving machinery around it.
double TimePropagationPass(const core::OnlineInference& engine,
                           const std::vector<std::string>& questions,
                           bool with_context, size_t* answered) {
  Timer t;
  for (const std::string& q : questions) {
    core::AnswerOptions options;
    obs::RequestContext ctx;
    if (with_context) {
      ctx.sampled = true;
      ctx.trace_id = 1;
      ctx.StartClockAt(obs::NowSteadyNs());
      options.request_context = &ctx;
    }
    *answered += engine.Answer(q, options).answered;
  }
  return t.ElapsedSeconds() * 1e9 / static_cast<double>(questions.size());
}

}  // namespace

int main() {
  auto experiment = bench::BuildStandardExperiment();
  const core::KbqaSystem& kbqa = experiment->kbqa();

  corpus::BenchmarkSet set = experiment->MakeQald1();
  std::vector<std::string> questions;
  questions.reserve(set.questions.pairs.size());
  for (const corpus::QaPair& pair : set.questions.pairs) {
    questions.push_back(pair.question);
  }
  Check(!questions.empty(), "benchmark set has questions");

  // ---- Overhead A/B on the Answer hot path ----
  // Warm-up fills the value cache so both arms measure the steady state,
  // and calibrates the pass count to give each timed arm >= ~50ms (the
  // per-answer path is microseconds; short arms would be pure timer noise).
  obs::MetricsRegistry::set_enabled(true);
  for (const std::string& q : questions) (void)kbqa.Answer(q);

  // Paired design at single-pass granularity: each pair times one pass
  // (~hundreds of µs) per arm back-to-back, order alternating pair to
  // pair, and contributes one enabled-minus-disabled difference. This box
  // drifts by double-digit percents under background load, so aggregate
  // comparisons across arms are hopeless; between two *adjacent* passes
  // the drift is negligible and cancels in the difference, and the median
  // over many pairs is robust to the minority of passes a preemption
  // lands in.
  const int kPairs = 600;
  std::vector<double> enabled_ns, disabled_ns, diff_ns;
  enabled_ns.reserve(kPairs);
  disabled_ns.reserve(kPairs);
  diff_ns.reserve(kPairs);
  size_t answered = 0;
  for (int pair = 0; pair < kPairs; ++pair) {
    double e = 0, d = 0;
    if (pair % 2 == 0) {
      obs::MetricsRegistry::set_enabled(true);
      e = TimeAnswerPass(kbqa, questions, &answered);
      obs::MetricsRegistry::set_enabled(false);
      d = TimeAnswerPass(kbqa, questions, &answered);
    } else {
      obs::MetricsRegistry::set_enabled(false);
      d = TimeAnswerPass(kbqa, questions, &answered);
      obs::MetricsRegistry::set_enabled(true);
      e = TimeAnswerPass(kbqa, questions, &answered);
    }
    enabled_ns.push_back(e);
    disabled_ns.push_back(d);
    diff_ns.push_back(e - d);
  }
  obs::MetricsRegistry::set_enabled(true);
  Check(answered > 0, "answer passes produced answers");

  const double med_diff = Median(diff_ns);
  const double base_ns = Median(disabled_ns);
  const double overhead_pct = med_diff / base_ns * 100.0;
  std::printf(
      "[overhead] answer path: median paired diff %+.0f ns on a %.0f ns "
      "baseline -> %.2f%% (%d pairs x %zu questions)\n",
      med_diff, base_ns, overhead_pct, kPairs, questions.size());
  Check(overhead_pct < 2.0, "instrumentation overhead under 2%");

  // ---- Wide-event overhead A/B through the serving front door ----
  // The request-scoped telemetry budget is defined against the request:
  // the arm with sample period 1 pays context creation at admission, a
  // stage-mark chain in the handler, cache tallies, and one ring Record
  // per terminal outcome; period 0 reduces Sample() to a relaxed load and
  // skips everything downstream. Same paired interleaved single-pass
  // design as the registry A/B above — this box drifts too much for
  // aggregate arm comparisons.
  core::OnlineInference::Options engine_opts = kbqa.options().online;
  engine_opts.enable_answer_cache = true;
  engine_opts.answer_cache_budget_bytes = 64ull << 20;
  engine_opts.value_cache_budget_bytes = 64ull << 20;
  core::OnlineInference engine(
      &experiment->world().kb, &experiment->world().taxonomy, &kbqa.ner(),
      &kbqa.template_store(), &kbqa.expanded_kb().paths(), engine_opts);
  const uint64_t wide_recorded_before = obs::WideEvents::TotalRecorded();
  std::vector<double> sampled_ns, unsampled_ns, wide_diff_ns;
  {
    serve::ServingOptions serve_options;
    serve_options.num_workers = 2;
    serve_options.max_queue_depth = 256;
    serve_options.max_batch_size = 8;
    serve_options.max_batch_wait = std::chrono::microseconds(100);
    auto server = serve::Server::ForEngine(&engine, serve_options);
    // Warm both the answer cache and the batcher before timing.
    obs::WideEvents::SetSamplePeriod(1);
    size_t completed = 0;
    (void)TimeServerPass(*server, questions, &completed);
    const int kWidePairs = 200;
    sampled_ns.reserve(kWidePairs);
    unsampled_ns.reserve(kWidePairs);
    wide_diff_ns.reserve(kWidePairs);
    completed = 0;
    for (int pair = 0; pair < kWidePairs; ++pair) {
      double on = 0, off = 0;
      if (pair % 2 == 0) {
        obs::WideEvents::SetSamplePeriod(1);
        on = TimeServerPass(*server, questions, &completed);
        obs::WideEvents::SetSamplePeriod(0);
        off = TimeServerPass(*server, questions, &completed);
      } else {
        obs::WideEvents::SetSamplePeriod(0);
        off = TimeServerPass(*server, questions, &completed);
        obs::WideEvents::SetSamplePeriod(1);
        on = TimeServerPass(*server, questions, &completed);
      }
      sampled_ns.push_back(on);
      unsampled_ns.push_back(off);
      wide_diff_ns.push_back(on - off);
    }
    Check(completed > 0, "through-server passes completed requests");
  }
  obs::WideEvents::SetSamplePeriod(1);
  const uint64_t wide_events_recorded =
      obs::WideEvents::TotalRecorded() - wide_recorded_before;
  Check(wide_events_recorded > 0, "sampled arm recorded wide events");
  const double wide_med_diff = Median(wide_diff_ns);
  const double wide_base_ns = Median(unsampled_ns);
  const double wide_overhead_pct = wide_med_diff / wide_base_ns * 100.0;
  std::printf(
      "[wide events] through-server: median paired diff %+.0f ns on a "
      "%.0f ns/request baseline -> %.2f%% at 1-in-1 sampling (%" PRIu64
      " events recorded)\n",
      wide_med_diff, wide_base_ns, wide_overhead_pct, wide_events_recorded);
  Check(wide_overhead_pct < 2.0, "wide-event overhead under 2%");

  // ---- Context-propagation delta on the bare engine ----
  // Same paired design, no serving machinery: a bound RequestContext (all
  // six stage marks, value/answer-cache tallies) vs a null pointer. The
  // answer cache is off in this engine so every pass runs the full
  // pipeline the marks instrument.
  engine_opts.enable_answer_cache = false;
  core::OnlineInference bare_engine(
      &experiment->world().kb, &experiment->world().taxonomy, &kbqa.ner(),
      &kbqa.template_store(), &kbqa.expanded_kb().paths(), engine_opts);
  const int kCtxPairs = 300;
  std::vector<double> ctx_ns, no_ctx_ns, ctx_diff_ns;
  ctx_ns.reserve(kCtxPairs);
  no_ctx_ns.reserve(kCtxPairs);
  ctx_diff_ns.reserve(kCtxPairs);
  {
    size_t ctx_answered = 0;
    (void)TimePropagationPass(bare_engine, questions, false, &ctx_answered);
    for (int pair = 0; pair < kCtxPairs; ++pair) {
      double with_ctx = 0, without_ctx = 0;
      if (pair % 2 == 0) {
        with_ctx =
            TimePropagationPass(bare_engine, questions, true, &ctx_answered);
        without_ctx =
            TimePropagationPass(bare_engine, questions, false, &ctx_answered);
      } else {
        without_ctx =
            TimePropagationPass(bare_engine, questions, false, &ctx_answered);
        with_ctx =
            TimePropagationPass(bare_engine, questions, true, &ctx_answered);
      }
      ctx_ns.push_back(with_ctx);
      no_ctx_ns.push_back(without_ctx);
      ctx_diff_ns.push_back(with_ctx - without_ctx);
    }
    Check(ctx_answered > 0, "propagation passes produced answers");
  }
  const double ctx_med_diff = Median(ctx_diff_ns);
  const double ctx_base_ns = Median(no_ctx_ns);
  const double ctx_overhead_pct = ctx_med_diff / ctx_base_ns * 100.0;
  std::printf(
      "[propagation] bare engine: median paired diff %+.0f ns on a %.0f ns "
      "baseline -> %.2f%% with a bound RequestContext\n",
      ctx_med_diff, ctx_base_ns, ctx_overhead_pct);

  // ---- Metric coverage after a batched run ----
  eval::RunResult run = eval::RunBenchmarkBatched(kbqa, set, 4);
  std::printf("[batched] %zu questions, R %.2f, %.1f ms total\n",
              static_cast<size_t>(run.counts.total), run.counts.R(),
              run.total_ms);

  const obs::MetricsSnapshot snap = core::KbqaSystem::MetricsSnapshot();
  auto histogram_count = [&](const char* name) -> uint64_t {
    const auto* h = snap.histogram(name);
    return h == nullptr ? 0 : h->count;
  };
  auto counter_value = [&](const char* name) -> uint64_t {
    const auto* c = snap.counter(name);
    return c == nullptr ? 0 : c->value;
  };
  // Online serving stages (all spans sampled via 1-in-2^k detail windows;
  // the A/B rounds above answered tens of thousands of questions, so
  // hundreds of windows fired).
  Check(histogram_count("span.answer") > 0, "span.answer recorded");
  Check(histogram_count("span.answer.ner") > 0, "span.answer.ner recorded");
  Check(histogram_count("span.answer.template_match") > 0,
        "span.answer.template_match recorded");
  Check(histogram_count("span.answer.value_lookup") > 0,
        "span.answer.value_lookup recorded");
  Check(counter_value("online.answers") > 0, "online.answers counted");
  Check(counter_value("online.value_cache.hits") > 0, "cache hits counted");
  Check(counter_value("online.value_cache.misses") > 0,
        "cache misses counted");
  // Offline learning (recorded during experiment setup).
  Check(counter_value("em.iterations") > 0, "em.iterations counted");
  Check(histogram_count("em.e_step.shard_ns") > 0,
        "em.e_step shard timings recorded");
  Check(histogram_count("span.em.train") > 0, "span.em.train recorded");
  Check(snap.gauge("em.log_likelihood") != nullptr, "em.log_likelihood set");
  // RDF substrate.
  Check(histogram_count("span.rdf.freeze") > 0, "span.rdf.freeze recorded");
  Check(histogram_count("rdf.expand.frontier_size") > 0,
        "expansion frontier sizes recorded");
  // Thread pool.
  Check(counter_value("thread_pool.tasks") > 0, "pool tasks counted");
  Check(histogram_count("span.thread_pool.task") > 0,
        "pool task latencies recorded");

  // Snapshot JSON must round-trip at full-registry scale.
  obs::MetricsSnapshot parsed;
  Check(obs::MetricsSnapshot::FromJson(snap.ToJson(), &parsed) &&
            parsed == snap,
        "snapshot JSON round-trip");

  // ---- Trace collection + Chrome export ----
  obs::Tracing::Start();
  const size_t trace_questions = std::min<size_t>(questions.size(), 10);
  for (size_t i = 0; i < trace_questions; ++i) (void)kbqa.Answer(questions[i]);
  obs::Tracing::Stop();
  const size_t trace_events = obs::Tracing::CollectedEvents();
  Check(trace_events >= trace_questions, "trace captured answer spans");
  const char* trace_path = "/tmp/obs_trace.json";
  {
    std::ofstream trace(trace_path);
    obs::Tracing::ExportChromeTrace(trace);
    Check(trace.good(), "trace export wrote");
  }
  std::printf("[trace] %zu events from %zu answers -> %s\n", trace_events,
              trace_questions, trace_path);

  eval::PrintObservabilityReport(std::cout);

  // ---- JSON ----
  std::FILE* out = std::fopen("BENCH_observability.json", "w");
  Check(out != nullptr, "open BENCH_observability.json");
  std::fprintf(out, "{\n  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::sort(diff_ns.begin(), diff_ns.end());
  std::fprintf(out,
               "  \"answer_overhead\": {\n"
               "    \"questions\": %zu, \"pairs\": %d,\n"
               "    \"median_paired_diff_ns\": %.1f,\n"
               "    \"paired_diff_p10_ns\": %.1f,\n"
               "    \"paired_diff_p90_ns\": %.1f,\n"
               "    \"enabled_median_ns_per_answer\": %.1f,\n"
               "    \"disabled_median_ns_per_answer\": %.1f,\n"
               "    \"overhead_percent\": %.3f,\n"
               "    \"budget_percent\": 2.0\n  },\n",
               questions.size(), kPairs, med_diff,
               diff_ns[diff_ns.size() / 10],
               diff_ns[diff_ns.size() * 9 / 10], Median(enabled_ns),
               base_ns, overhead_pct);
  std::sort(wide_diff_ns.begin(), wide_diff_ns.end());
  std::fprintf(out,
               "  \"wide_event_overhead\": {\n"
               "    \"questions\": %zu, \"pairs\": %zu,\n"
               "    \"median_paired_diff_ns\": %.1f,\n"
               "    \"paired_diff_p10_ns\": %.1f,\n"
               "    \"paired_diff_p90_ns\": %.1f,\n"
               "    \"sampled_median_ns_per_request\": %.1f,\n"
               "    \"unsampled_median_ns_per_request\": %.1f,\n"
               "    \"overhead_percent\": %.3f,\n"
               "    \"budget_percent\": 2.0,\n"
               "    \"events_recorded\": %" PRIu64 "\n  },\n",
               questions.size(), wide_diff_ns.size(), wide_med_diff,
               wide_diff_ns[wide_diff_ns.size() / 10],
               wide_diff_ns[wide_diff_ns.size() * 9 / 10], Median(sampled_ns),
               wide_base_ns, wide_overhead_pct, wide_events_recorded);
  std::fprintf(out,
               "  \"context_propagation\": {\n"
               "    \"questions\": %zu, \"pairs\": %zu,\n"
               "    \"median_paired_diff_ns\": %.1f,\n"
               "    \"with_context_median_ns\": %.1f,\n"
               "    \"without_context_median_ns\": %.1f,\n"
               "    \"overhead_percent\": %.3f\n  },\n",
               questions.size(), ctx_diff_ns.size(), ctx_med_diff,
               Median(ctx_ns), ctx_base_ns, ctx_overhead_pct);
  const auto* answer_span = snap.histogram("span.answer");
  std::fprintf(out,
               "  \"coverage\": {\n"
               "    \"span_answer_count\": %llu,\n"
               "    \"span_answer_avg_us\": %.3f,\n"
               "    \"value_cache_hits\": %llu,\n"
               "    \"value_cache_misses\": %llu,\n"
               "    \"em_iterations\": %llu,\n"
               "    \"em_e_step_shards_timed\": %llu,\n"
               "    \"thread_pool_tasks\": %llu\n  },\n",
               static_cast<unsigned long long>(answer_span->count),
               answer_span->Mean() / 1e3,
               static_cast<unsigned long long>(
                   counter_value("online.value_cache.hits")),
               static_cast<unsigned long long>(
                   counter_value("online.value_cache.misses")),
               static_cast<unsigned long long>(counter_value("em.iterations")),
               static_cast<unsigned long long>(
                   histogram_count("em.e_step.shard_ns")),
               static_cast<unsigned long long>(
                   counter_value("thread_pool.tasks")));
  std::fprintf(out,
               "  \"trace\": {\"events\": %zu, \"answers_traced\": %zu},\n"
               "  \"snapshot_json_round_trip\": true,\n"
               "  \"batched_run\": {\"questions\": %zu, \"recall\": %.3f}\n"
               "}\n",
               trace_events, trace_questions,
               static_cast<size_t>(run.counts.total), run.counts.R());
  std::fclose(out);
  std::printf("[done] wrote BENCH_observability.json\n");
  return 0;
}
