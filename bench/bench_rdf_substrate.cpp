// RDF substrate benchmark: CSR freeze scaling, parallel expanded-predicate
// BFS scaling, snapshot save/load bandwidth vs N-Triples re-import, and
// Out()/ObjectsRange() per-op latency. Emits BENCH_rdf.json.
//
// Also asserts (via a global allocation counter) that the hot-path lookups
// — PathDictionary::Lookup and Dictionary::Lookup — perform zero heap
// allocations, and that Freeze() and Build() are bit-identical across
// thread counts.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "corpus/world_generator.h"
#include "rdf/expanded_predicate.h"
#include "rdf/knowledge_base.h"
#include "rdf/ntriples.h"
#include "util/rng.h"
#include "util/timer.h"

// ---- Global allocation counter (for the zero-allocation assertions) ----

static std::atomic<uint64_t> g_allocations{0};

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace kbqa;

void Check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAILED: %s\n", what);
    std::exit(1);
  }
}

/// Raw (source-order) copy of a frozen KB, for re-freezing under different
/// thread counts.
struct RawKb {
  std::vector<std::pair<std::string, bool>> nodes;  // (string, is_literal)
  std::vector<std::string> predicates;
  std::vector<rdf::Triple> triples;
  rdf::PredId name_predicate = rdf::kInvalidPred;

  static RawKb From(const rdf::KnowledgeBase& kb) {
    RawKb raw;
    raw.nodes.reserve(kb.num_nodes());
    for (rdf::TermId id = 0; id < kb.num_nodes(); ++id) {
      raw.nodes.emplace_back(kb.NodeString(id), kb.IsLiteral(id));
    }
    for (rdf::PredId p = 0; p < kb.num_predicates(); ++p) {
      raw.predicates.push_back(kb.PredicateString(p));
    }
    raw.name_predicate = kb.name_predicate();
    for (rdf::TermId s = 0; s < kb.num_nodes(); ++s) {
      for (const auto& [p, o] : kb.Out(s)) raw.triples.push_back({s, p, o});
    }
    return raw;
  }

  /// Rebuilds an unfrozen KB (interning + staging, no Freeze).
  rdf::KnowledgeBase Rebuild() const {
    rdf::KnowledgeBase kb;
    for (const auto& [term, literal] : nodes) {
      if (literal) {
        kb.AddLiteral(term);
      } else {
        kb.AddEntity(term);
      }
    }
    for (const std::string& p : predicates) kb.AddPredicate(p);
    kb.SetNamePredicate(name_predicate);
    for (const rdf::Triple& t : triples) kb.AddTriple(t.s, t.p, t.o);
    return kb;
  }
};

bool SameAdjacency(const rdf::KnowledgeBase& a, const rdf::KnowledgeBase& b) {
  if (a.num_nodes() != b.num_nodes() || a.num_triples() != b.num_triples()) {
    return false;
  }
  for (rdf::TermId id = 0; id < a.num_nodes(); ++id) {
    auto ao = a.Out(id), bo = b.Out(id);
    if (ao.size() != bo.size() ||
        !std::equal(ao.begin(), ao.end(), bo.begin())) {
      return false;
    }
    auto ai = a.In(id), bi = b.In(id);
    if (ai.size() != bi.size() ||
        !std::equal(ai.begin(), ai.end(), bi.begin())) {
      return false;
    }
  }
  return true;
}

std::vector<std::tuple<rdf::TermId, rdf::PathId, rdf::TermId>> RawTriples(
    const rdf::ExpandedKb& ekb) {
  std::vector<std::tuple<rdf::TermId, rdf::PathId, rdf::TermId>> out;
  out.reserve(ekb.num_triples());
  ekb.ForEachTriple([&](const rdf::ExpandedTriple& t) {
    out.emplace_back(t.s, t.path, t.o);
  });
  std::sort(out.begin(), out.end());
  return out;
}

/// Asserts that path-dictionary and term-dictionary lookups never allocate.
void AssertZeroAllocationLookups(const rdf::KnowledgeBase& kb,
                                 const rdf::ExpandedKb& ekb) {
  // Pick a real materialized path and a real node string to probe with.
  Check(ekb.paths().size() > 0, "expansion produced paths");
  rdf::PredPath probe_path = ekb.paths().GetPath(
      static_cast<rdf::PathId>(ekb.paths().size() - 1));
  const std::string& probe_term = kb.NodeString(kb.num_nodes() / 2);
  std::string_view term_view = probe_term;

  uint64_t hits = 0;
  const uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 100000; ++i) {
    hits += ekb.paths().Lookup(probe_path).has_value();
    hits += kb.LookupNode(term_view).has_value();
  }
  const uint64_t after = g_allocations.load(std::memory_order_relaxed);
  std::printf("[alloc] 200000 lookups -> %llu allocations (hits %llu)\n",
              static_cast<unsigned long long>(after - before),
              static_cast<unsigned long long>(hits));
  Check(after - before == 0, "PathDictionary/Dictionary Lookup allocates");
  Check(hits == 200000, "lookup probes should all hit");
}

long FileSizeBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return -1;
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fclose(f);
  return size;
}

}  // namespace

int main() {
  const std::vector<int> kThreads = {1, 2, 4};

  corpus::WorldConfig config;
  config.schema.scale = 2.0;
  std::printf("[setup] generating scale-%.1f world...\n", config.schema.scale);
  Timer gen_timer;
  corpus::World world = corpus::GenerateWorld(config);
  const rdf::KnowledgeBase& kb = world.kb;
  std::printf("[setup] %zu nodes, %zu triples, %zu predicates (%.1fs)\n",
              kb.num_nodes(), kb.num_triples(), kb.num_predicates(),
              gen_timer.ElapsedSeconds());

  // ---- Freeze scaling ----
  RawKb raw = RawKb::From(kb);
  std::vector<double> freeze_seconds;
  rdf::KnowledgeBase freeze_reference;
  for (int threads : kThreads) {
    rdf::KnowledgeBase rebuilt = raw.Rebuild();
    Timer t;
    rebuilt.Freeze(threads);
    freeze_seconds.push_back(t.ElapsedSeconds());
    std::printf("[freeze] threads=%d: %.3fs\n", threads,
                freeze_seconds.back());
    if (threads == 1) {
      freeze_reference = std::move(rebuilt);
      Check(SameAdjacency(freeze_reference, kb),
            "re-frozen KB matches the original");
    } else {
      Check(SameAdjacency(freeze_reference, rebuilt),
            "Freeze() bit-identical across thread counts");
    }
  }

  // ---- Expanded-predicate BFS scaling ----
  std::vector<rdf::TermId> seeds = kb.AllEntities();
  std::vector<double> expand_seconds;
  std::vector<std::tuple<rdf::TermId, rdf::PathId, rdf::TermId>> expand_ref;
  size_t expand_triples = 0, expand_paths = 0;
  for (int threads : kThreads) {
    rdf::ExpansionOptions options;
    options.max_length = 3;
    options.num_threads = threads;
    Timer t;
    auto ekb = rdf::ExpandedKb::Build(kb, seeds, world.name_like, options);
    expand_seconds.push_back(t.ElapsedSeconds());
    Check(ekb.ok(), "expansion succeeds");
    std::printf("[expand] threads=%d: %.3fs (%zu triples, %zu paths)\n",
                threads, expand_seconds.back(), ekb.value().num_triples(),
                ekb.value().paths().size());
    auto triples = RawTriples(ekb.value());
    if (threads == 1) {
      expand_ref = std::move(triples);
      expand_triples = ekb.value().num_triples();
      expand_paths = ekb.value().paths().size();
      AssertZeroAllocationLookups(kb, ekb.value());
    } else {
      Check(ekb.value().paths().size() == expand_paths &&
                triples == expand_ref,
            "Build() bit-identical across thread counts");
    }
  }

  // ---- Snapshot save/load vs N-Triples re-import ----
  const std::string bin_path = "/tmp/bench_rdf_kb.bin";
  const std::string nt_path = "/tmp/bench_rdf_kb.nt";
  Timer save_timer;
  Check(kb.Save(bin_path).ok(), "snapshot save");
  const double save_seconds = save_timer.ElapsedSeconds();
  const double snapshot_mb =
      static_cast<double>(FileSizeBytes(bin_path)) / (1024.0 * 1024.0);

  Timer load_timer;
  auto loaded = rdf::KnowledgeBase::Load(bin_path);
  const double load_seconds = load_timer.ElapsedSeconds();
  Check(loaded.ok(), "snapshot load");
  Check(SameAdjacency(loaded.value(), kb), "snapshot round-trips the CSR");

  Check(rdf::ExportNTriples(kb, nt_path).ok(), "ntriples export");
  Timer import_timer;
  auto imported = rdf::ImportNTriples(nt_path, "name");
  const double import_seconds = import_timer.ElapsedSeconds();
  Check(imported.ok(), "ntriples import");
  std::printf(
      "[snapshot] save %.3fs (%.1f MB, %.0f MB/s), load %.3fs (%.0f MB/s), "
      "ntriples import %.3fs -> load speedup %.1fx\n",
      save_seconds, snapshot_mb, snapshot_mb / save_seconds, load_seconds,
      snapshot_mb / load_seconds, import_seconds,
      import_seconds / load_seconds);

  // ---- Point-lookup latency on the loaded (bulk-slurped) store ----
  const rdf::KnowledgeBase& probe_kb = loaded.value();
  std::vector<rdf::TermId> entities = probe_kb.AllEntities();
  std::vector<rdf::PredId> preds;
  for (rdf::PredId p = 0; p < probe_kb.num_predicates(); ++p) {
    preds.push_back(p);
  }
  Rng rng(1234);
  constexpr size_t kProbes = 2'000'000;
  std::vector<rdf::TermId> probe_e;
  std::vector<rdf::PredId> probe_p;
  probe_e.reserve(kProbes);
  probe_p.reserve(kProbes);
  for (size_t i = 0; i < kProbes; ++i) {
    probe_e.push_back(entities[rng.Uniform(entities.size())]);
    probe_p.push_back(preds[rng.Uniform(preds.size())]);
  }
  double out_ns, range_ns;
  {
    uint64_t sum = 0;
    Timer t;
    for (size_t i = 0; i < kProbes; ++i) {
      for (const auto& po : probe_kb.Out(probe_e[i])) sum += po.o;
    }
    out_ns = t.ElapsedSeconds() * 1e9 / kProbes;
    std::printf("[lookup] Out(): %.1f ns/op (sum %llu)\n", out_ns,
                static_cast<unsigned long long>(sum));
  }
  {
    uint64_t sum = 0;
    Timer t;
    for (size_t i = 0; i < kProbes; ++i) {
      for (const auto& po : probe_kb.ObjectsRange(probe_e[i], probe_p[i])) {
        sum += po.o;
      }
    }
    range_ns = t.ElapsedSeconds() * 1e9 / kProbes;
    std::printf("[lookup] ObjectsRange(): %.1f ns/op (sum %llu)\n", range_ns,
                static_cast<unsigned long long>(sum));
  }
  std::remove(bin_path.c_str());
  std::remove(nt_path.c_str());

  // ---- JSON ----
  std::FILE* out = std::fopen("BENCH_rdf.json", "w");
  Check(out != nullptr, "open BENCH_rdf.json");
  std::fprintf(out, "{\n  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(out,
               "  \"world\": {\"nodes\": %zu, \"triples\": %zu, "
               "\"predicates\": %zu},\n",
               kb.num_nodes(), kb.num_triples(), kb.num_predicates());
  std::fprintf(out, "  \"freeze\": {\"runs\": [");
  for (size_t i = 0; i < kThreads.size(); ++i) {
    std::fprintf(out,
                 "%s\n    {\"threads\": %d, \"seconds\": %.3f, "
                 "\"speedup\": %.2f}",
                 i ? "," : "", kThreads[i], freeze_seconds[i],
                 freeze_seconds[0] / freeze_seconds[i]);
  }
  std::fprintf(out,
               "\n  ]},\n  \"expansion\": {\"triples\": %zu, \"paths\": %zu, "
               "\"runs\": [",
               expand_triples, expand_paths);
  for (size_t i = 0; i < kThreads.size(); ++i) {
    std::fprintf(out,
                 "%s\n    {\"threads\": %d, \"seconds\": %.3f, "
                 "\"speedup\": %.2f}",
                 i ? "," : "", kThreads[i], expand_seconds[i],
                 expand_seconds[0] / expand_seconds[i]);
  }
  std::fprintf(out,
               "\n  ]},\n  \"snapshot\": {\"size_mb\": %.1f, "
               "\"save_seconds\": %.3f, \"save_mb_per_sec\": %.1f, "
               "\"load_seconds\": %.3f, \"load_mb_per_sec\": %.1f, "
               "\"ntriples_import_seconds\": %.3f, "
               "\"load_vs_import_speedup\": %.1f},\n",
               snapshot_mb, save_seconds, snapshot_mb / save_seconds,
               load_seconds, snapshot_mb / load_seconds, import_seconds,
               import_seconds / load_seconds);
  std::fprintf(out,
               "  \"point_lookup\": {\"out_ns_per_op\": %.1f, "
               "\"objects_range_ns_per_op\": %.1f,\n"
               "    \"nested_vector_baseline\": {\"out_ns_per_op\": 23.0, "
               "\"objects_range_ns_per_op\": 22.7}},\n",
               out_ns, range_ns);
  std::fprintf(out,
               "  \"zero_allocation_lookups\": true,\n"
               "  \"deterministic_across_threads\": true\n}\n");
  std::fclose(out);
  std::printf("[done] wrote BENCH_rdf.json\n");
  return 0;
}
