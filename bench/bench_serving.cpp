// Open-loop serving load harness (tpccbench-style driven benchmark) for
// the serve::Server front door. Arrivals are generated at a target rate
// (Poisson or fixed-gap) decoupled from completions, the question mix is
// Zipfian-skewed over a benchmark pool, and latency is measured from each
// request's *scheduled* arrival time so queueing delay is never hidden by
// a slow submitter (no coordinated omission). Four phases:
//
//   1. capacity  — closed-loop single-thread run to estimate saturation
//   2. steady    — open loop below saturation: throughput must track the
//                  offered rate, p50/p99/p999 reported split into
//                  queue-wait vs service time
//   3. overload  — open loop at ~3x capacity against a tiny queue with a
//                  deadline: admission control must reject (kUnavailable)
//                  and expired queue residents must be shed
//   4. batch A/B — closed-loop saturation at max_batch_size 1 vs 32
//
// Emits BENCH_serving.json. --smoke runs the Small experiment with short
// phases for CI.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/online.h"
#include "corpus/qa_generator.h"
#include "eval/experiment.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/wide_event.h"
#include "serve/exposition.h"
#include "serve/server.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace kbqa;
using Clock = std::chrono::steady_clock;

struct Args {
  double target_qps = 0;  // 0 = auto: 70% of estimated capacity
  double duration_s = 10;
  double zipf_s = 0.99;
  int threads = 2;  // open-loop submitter threads
  int workers = 0;  // server worker threads; 0 = hardware concurrency
  bool poisson = true;
  bool smoke = false;
  int obs_port = -1;       // >= 0: start the exposition listener (0 = ephemeral)
  int obs_sample = 1;      // wide-event sample period (0 = off, k = 1-in-k)
  std::string obs_events;  // drain wide events to this JSONL path at exit
};

void Check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAILED: %s\n", what);
    std::exit(1);
  }
}

Args Parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    double v = 0;
    if (std::sscanf(arg, "--target_qps=%lf", &v) == 1) {
      args.target_qps = v;
    } else if (std::sscanf(arg, "--duration_s=%lf", &v) == 1) {
      args.duration_s = v;
    } else if (std::sscanf(arg, "--zipf_s=%lf", &v) == 1) {
      args.zipf_s = v;
    } else if (std::sscanf(arg, "--threads=%lf", &v) == 1) {
      args.threads = static_cast<int>(v);
    } else if (std::sscanf(arg, "--workers=%lf", &v) == 1) {
      args.workers = static_cast<int>(v);
    } else if (std::strcmp(arg, "--arrival=poisson") == 0) {
      args.poisson = true;
    } else if (std::strcmp(arg, "--arrival=fixed") == 0) {
      args.poisson = false;
    } else if (std::strcmp(arg, "--smoke") == 0) {
      args.smoke = true;
    } else if (std::sscanf(arg, "--obs-port=%lf", &v) == 1) {
      args.obs_port = static_cast<int>(v);
    } else if (std::sscanf(arg, "--obs-sample=%lf", &v) == 1) {
      args.obs_sample = static_cast<int>(v);
    } else if (std::strncmp(arg, "--obs-events=", 13) == 0) {
      args.obs_events = arg + 13;
    } else {
      std::fprintf(stderr,
                   "unknown flag %s\nusage: bench_serving [--target_qps=N] "
                   "[--duration_s=N] [--zipf_s=N] [--threads=N] [--workers=N] "
                   "[--arrival=poisson|fixed] [--smoke] [--obs-port=N] "
                   "[--obs-sample=N] [--obs-events=PATH]\n",
                   arg);
      std::exit(2);
    }
  }
  if (args.threads < 1) args.threads = 1;
  return args;
}

/// The outcome of one load phase.
struct RunResult {
  uint64_t offered = 0;  // Submit attempts
  serve::ServingStats stats;
  double wall_s = 0;
  double throughput_qps = 0;  // completed / wall
  bench::LatencyReservoir total;    // scheduled arrival -> callback
  bench::LatencyReservoir queue;    // ServeResponse::queue_ns
  bench::LatencyReservoir service;  // ServeResponse::service_ns
  double mean_batch = 0;
};

/// Drives `server` open-loop: `threads` submitters each generate arrivals
/// at rate qps/threads (exponential or fixed gaps), sleep until each
/// scheduled instant, and fire an async Submit. Completion callbacks (on
/// server worker threads) record latencies into mutex-guarded reservoirs.
RunResult RunOpenLoop(serve::Server& server,
                      const std::vector<std::string>& pool, double qps,
                      double duration_s, double zipf_s, int threads,
                      bool poisson, uint64_t seed) {
  RunResult result;
  Mutex record_mu;
  std::atomic<uint64_t> offered{0};
  std::atomic<int64_t> outstanding{0};

  const auto run_start = Clock::now();
  const auto run_end =
      run_start + std::chrono::nanoseconds(
                      static_cast<int64_t>(duration_s * 1e9));
  const double thread_qps = qps / threads;

  std::vector<std::thread> submitters;
  submitters.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    submitters.emplace_back([&, t] {
      Rng rng(seed + static_cast<uint64_t>(t) * 7919);
      ZipfianGenerator zipf(pool.size(), zipf_s);
      auto next_arrival = run_start;
      while (next_arrival < run_end) {
        const double gap_s =
            poisson ? -std::log(1.0 - rng.UniformDouble()) / thread_qps
                    : 1.0 / thread_qps;
        next_arrival += std::chrono::nanoseconds(
            static_cast<int64_t>(gap_s * 1e9));
        if (next_arrival >= run_end) break;
        std::this_thread::sleep_until(next_arrival);
        const std::string& question = pool[zipf.Sample(rng)];
        offered.fetch_add(1, std::memory_order_relaxed);
        outstanding.fetch_add(1, std::memory_order_relaxed);
        const auto scheduled = next_arrival;
        Status admitted = server.Submit(
            question, core::AnswerOptions{},
            [&, scheduled](serve::ServeResponse response) {
              const uint64_t total_ns = static_cast<uint64_t>(
                  std::chrono::duration_cast<std::chrono::nanoseconds>(
                      Clock::now() - scheduled)
                      .count());
              {
                MutexLock lock(record_mu);
                result.total.Record(total_ns);
                result.queue.Record(response.queue_ns);
                result.service.Record(response.service_ns);
              }
              outstanding.fetch_sub(1, std::memory_order_relaxed);
            });
        if (!admitted.ok()) {
          // Rejected at admission: backpressure, no callback coming.
          outstanding.fetch_sub(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : submitters) thread.join();
  // Drain: every accepted request resolves (completed or shed).
  while (outstanding.load(std::memory_order_relaxed) > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  result.wall_s = std::chrono::duration<double>(Clock::now() - run_start)
                      .count();
  result.offered = offered.load();
  result.stats = server.stats();
  result.throughput_qps =
      static_cast<double>(result.stats.completed) / result.wall_s;
  result.mean_batch =
      result.stats.batches == 0
          ? 0
          : static_cast<double>(result.stats.completed) /
                static_cast<double>(result.stats.batches);
  return result;
}

/// Closed-loop saturation throughput: `threads` blocking callers hammer
/// the server for `duration_s`. Returns completed QPS.
double RunClosedLoop(serve::Server& server,
                     const std::vector<std::string>& pool, double duration_s,
                     double zipf_s, int threads, uint64_t seed) {
  std::atomic<uint64_t> completed{0};
  const auto run_end =
      Clock::now() + std::chrono::nanoseconds(
                         static_cast<int64_t>(duration_s * 1e9));
  Timer timer;
  std::vector<std::thread> callers;
  callers.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    callers.emplace_back([&, t] {
      Rng rng(seed + static_cast<uint64_t>(t) * 104729);
      ZipfianGenerator zipf(pool.size(), zipf_s);
      while (Clock::now() < run_end) {
        serve::ServeResponse response =
            server.Answer(pool[zipf.Sample(rng)]);
        if (response.result.status.ok()) {
          completed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : callers) thread.join();
  return static_cast<double>(completed.load()) / timer.ElapsedSeconds();
}

void PrintRun(const char* name, const RunResult& r) {
  std::printf(
      "[%s] offered %" PRIu64 " in %.1fs, completed %" PRIu64
      " (%.0f qps), rejected %" PRIu64 ", shed %" PRIu64
      "+%" PRIu64 ", mean batch %.1f\n"
      "[%s]   total  p50 %.2fms  p99 %.2fms  p999 %.2fms\n"
      "[%s]   queue  p50 %.2fms  p99 %.2fms  p999 %.2fms\n"
      "[%s]   service p50 %.2fms  p99 %.2fms  p999 %.2fms\n",
      name, r.offered, r.wall_s, r.stats.completed, r.throughput_qps,
      r.stats.rejected, r.stats.shed_expired, r.stats.shed_shutdown,
      r.mean_batch, name, r.total.ValueAtQuantile(0.5) / 1e6,
      r.total.ValueAtQuantile(0.99) / 1e6,
      r.total.ValueAtQuantile(0.999) / 1e6, name,
      r.queue.ValueAtQuantile(0.5) / 1e6, r.queue.ValueAtQuantile(0.99) / 1e6,
      r.queue.ValueAtQuantile(0.999) / 1e6, name,
      r.service.ValueAtQuantile(0.5) / 1e6,
      r.service.ValueAtQuantile(0.99) / 1e6,
      r.service.ValueAtQuantile(0.999) / 1e6);
}

void EmitLatency(std::FILE* out, const char* name,
                 const bench::LatencyReservoir& r, const char* trailing) {
  std::fprintf(out,
               "      \"%s\": {\"p50_ns\": %" PRIu64 ", \"p99_ns\": %" PRIu64
               ", \"p999_ns\": %" PRIu64 ", \"mean_ns\": %.0f, \"count\": "
               "%zu}%s\n",
               name, r.ValueAtQuantile(0.5), r.ValueAtQuantile(0.99),
               r.ValueAtQuantile(0.999), r.MeanNanos(), r.count(), trailing);
}

void EmitRun(std::FILE* out, const char* name, double target_qps,
             const RunResult& r, const char* trailing) {
  std::fprintf(out,
               "  \"%s\": {\n"
               "    \"target_qps\": %.1f, \"offered\": %" PRIu64
               ", \"wall_s\": %.2f,\n"
               "    \"completed\": %" PRIu64 ", \"rejected\": %" PRIu64
               ", \"shed_expired\": %" PRIu64 ", \"shed_shutdown\": %" PRIu64
               ",\n"
               "    \"throughput_qps\": %.1f, \"mean_batch_size\": %.2f,\n"
               "    \"latency\": {\n",
               name, target_qps, r.offered, r.wall_s, r.stats.completed,
               r.stats.rejected, r.stats.shed_expired, r.stats.shed_shutdown,
               r.throughput_qps, r.mean_batch);
  EmitLatency(out, "total", r.total, ",");
  EmitLatency(out, "queue_wait", r.queue, ",");
  EmitLatency(out, "service", r.service, "");
  std::fprintf(out, "    }\n  }%s\n", trailing);
}

}  // namespace

int main(int argc, char** argv) {
  Args args = Parse(argc, argv);
  const unsigned hardware_threads =
      std::max(1u, std::thread::hardware_concurrency());
  if (args.workers <= 0) {
    args.workers = static_cast<int>(hardware_threads);
  }
  if (args.smoke && args.duration_s > 2) args.duration_s = 2;
  std::printf(
      "[config] %s, target_qps=%s, duration=%.1fs, zipf_s=%.2f, "
      "submit threads=%d, workers=%d, arrival=%s, %u hardware threads\n",
      args.smoke ? "smoke (Small world)" : "full (Standard world)",
      args.target_qps > 0 ? "explicit" : "auto", args.duration_s,
      args.zipf_s, args.threads, args.workers,
      args.poisson ? "poisson" : "fixed", hardware_threads);

  // ---- Observability: wide-event sampling, the serving SLO, and the
  // pull exposition endpoint (started before the expensive setup so an
  // operator can scrape /statusz while the world is still training). ----
  obs::WideEvents::SetSamplePeriod(
      args.obs_sample < 0 ? 0u : static_cast<uint32_t>(args.obs_sample));
  obs::SloMonitor slo{obs::SloSpec{}};
  std::unique_ptr<serve::ExpositionServer> exposition;
  if (args.obs_port >= 0) {
    serve::ExpositionOptions obs_options;
    obs_options.port = args.obs_port;
    obs_options.slo = &slo;
    auto started = serve::ExpositionServer::Start(obs_options);
    if (!started.ok()) {
      std::fprintf(stderr, "exposition failed to start: %s\n",
                   started.status().ToString().c_str());
      return 1;
    }
    exposition = std::move(started).value();
    std::printf("[obs] exposition listening on 127.0.0.1:%d\n",
                exposition->port());
    std::fflush(stdout);
  }

  // ---- Setup: world + trained system + serving engine. ----
  std::unique_ptr<eval::Experiment> experiment;
  {
    std::printf("[setup] generating world + corpus and training KBQA...\n");
    ScopedTimer timer("bench.setup.build_experiment_ns");
    auto built = eval::Experiment::Build(args.smoke
                                             ? eval::ExperimentConfig::Small()
                                             : eval::ExperimentConfig::Standard());
    if (!built.ok()) {
      std::fprintf(stderr, "experiment build failed: %s\n",
                   built.status().ToString().c_str());
      return 1;
    }
    experiment = std::move(built).value();
    std::printf("[setup] done in %.1fs\n", timer.ElapsedSeconds());
  }
  const core::KbqaSystem& kbqa = experiment->kbqa();
  core::OnlineInference::Options engine_opts = kbqa.options().online;
  // Serving posture: both memo caches on, bounded.
  engine_opts.enable_answer_cache = true;
  engine_opts.answer_cache_budget_bytes = 64ull << 20;
  engine_opts.value_cache_budget_bytes = 64ull << 20;
  core::OnlineInference engine(
      &experiment->world().kb, &experiment->world().taxonomy, &kbqa.ner(),
      &kbqa.template_store(), &kbqa.expanded_kb().paths(), engine_opts);

  // Question pool the Zipfian mix draws from: rank 0 = hottest question.
  corpus::BenchmarkConfig pool_config;
  pool_config.name = "serving";
  pool_config.seed = 97;
  pool_config.num_questions = args.smoke ? 64 : 256;
  std::vector<std::string> pool;
  for (const corpus::QaPair& pair :
       corpus::GenerateBenchmark(experiment->world(), pool_config)
           .questions.pairs) {
    pool.push_back(pair.question);
  }
  Check(!pool.empty(), "question pool non-empty");

  // ---- Phase 1: closed-loop capacity. The bare-engine number (answer
  // cache warm, no queue, no batcher) is an upper bound only; the number
  // that matters for picking an open-loop rate is saturation throughput
  // *through the server*, which pays queueing, coalescing, dispatch, and
  // callback overhead per request. Doubles as the batching A/B. ----
  double engine_serial_qps;
  {
    Rng rng(7);
    ZipfianGenerator zipf(pool.size(), args.zipf_s);
    for (const std::string& question : pool) {
      (void)engine.AnswerCached(question, core::AnswerOptions{});
    }
    const double estimate_s = args.smoke ? 0.3 : 1.0;
    const auto est_end =
        Clock::now() + std::chrono::nanoseconds(
                           static_cast<int64_t>(estimate_s * 1e9));
    uint64_t answered = 0;
    Timer timer;
    while (Clock::now() < est_end) {
      (void)engine.AnswerCached(pool[zipf.Sample(rng)],
                                core::AnswerOptions{});
      ++answered;
    }
    engine_serial_qps = static_cast<double>(answered) / timer.ElapsedSeconds();
    std::printf("[capacity] bare engine, warm cache: %.0f qps single-thread\n",
                engine_serial_qps);
  }

  // Enough concurrent blocking callers that a 32-batch can actually fill
  // at saturation — with fewer outstanding requests than the batch size,
  // the batcher would spend every batch waiting out max_batch_wait and
  // the A/B would measure the timer, not the coalescing.
  const int ab_threads = std::max(64, 8 * args.workers);
  const double ab_duration_s = args.smoke ? 0.5 : 3.0;
  double batch1_qps, batch32_qps;
  {
    serve::ServingOptions options;
    options.num_workers = args.workers;
    options.slo = &slo;
    options.max_queue_depth = 4096;
    options.max_batch_size = 1;
    options.max_batch_wait = std::chrono::microseconds(100);
    auto server = serve::Server::ForEngine(&engine, options);
    batch1_qps = RunClosedLoop(*server, pool, ab_duration_s, args.zipf_s,
                               ab_threads, 42);
  }
  {
    serve::ServingOptions options;
    options.num_workers = args.workers;
    options.slo = &slo;
    options.max_queue_depth = 4096;
    options.max_batch_size = 32;
    options.max_batch_wait = std::chrono::microseconds(100);
    auto server = serve::Server::ForEngine(&engine, options);
    batch32_qps = RunClosedLoop(*server, pool, ab_duration_s, args.zipf_s,
                                ab_threads, 42);
  }
  const double batch_speedup = batch1_qps > 0 ? batch32_qps / batch1_qps : 0;
  const double server_capacity_qps = std::max(batch1_qps, batch32_qps);
  std::printf("[batch A/B] batch=1: %.0f qps, batch=32: %.0f qps (%.2fx); "
              "serving capacity ~%.0f qps\n",
              batch1_qps, batch32_qps, batch_speedup, server_capacity_qps);
  if (hardware_threads <= 1) {
    // One hardware thread serializes the batch's shards: batching can only
    // save per-dispatch overhead, not buy parallel execution, so the
    // >=1.5x saturation-speedup criterion is structurally out of reach
    // here (see DESIGN.md's serving section for the analysis).
    std::printf(
        "[batch A/B] NOTE: 1 hardware thread — shards of a batch run "
        "sequentially, so the speedup above measures dispatch-overhead "
        "amortization only, not parallel batch execution\n");
  }

  // ---- Phase 2: steady state, open loop below saturation. ----
  const double steady_qps =
      args.target_qps > 0 ? args.target_qps : 0.50 * server_capacity_qps;
  RunResult steady;
  {
    serve::ServingOptions options;
    options.num_workers = args.workers;
    options.slo = &slo;
    options.max_queue_depth = 4096;
    options.max_batch_size = 32;
    options.max_batch_wait = std::chrono::microseconds(200);
    auto server = serve::Server::ForEngine(&engine, options);
    steady = RunOpenLoop(*server, pool, steady_qps, args.duration_s,
                         args.zipf_s, args.threads, args.poisson, 1234);
  }
  PrintRun("steady", steady);
  Check(steady.stats.completed > 0, "steady run completed requests");
  Check(steady.stats.rejected == 0, "below saturation nothing is rejected");
  // Open loop at 70% of capacity must keep up with the offered rate
  // (generous floor: sleep_until granularity shaves the offered side too).
  Check(static_cast<double>(steady.stats.completed) >=
            0.8 * static_cast<double>(steady.offered),
        "steady throughput tracks offered load");

  // ---- Phase 3: deliberate overload: tiny queue, 3x capacity, 20ms
  // deadline. Admission control must push back and queue residents whose
  // deadline lapses must be shed without touching the engine. ----
  RunResult overload;
  const double overload_qps = std::max(3.0 * server_capacity_qps, 200.0);
  {
    serve::ServingOptions options;
    options.num_workers = args.workers;
    options.slo = &slo;
    options.max_queue_depth = 16;
    options.max_batch_size = 8;
    options.max_batch_wait = std::chrono::microseconds(200);
    options.default_timeout = std::chrono::milliseconds(20);
    auto server = serve::Server::ForEngine(&engine, options);
    overload = RunOpenLoop(*server, pool, overload_qps,
                           std::min(args.duration_s, 5.0), args.zipf_s,
                           args.threads, args.poisson, 5678);
  }
  PrintRun("overload", overload);
  Check(overload.stats.rejected > 0,
        "overload run rejected at admission (backpressure)");
  Check(overload.stats.submitted ==
            overload.stats.rejected + overload.stats.completed +
                overload.stats.shed_expired + overload.stats.shed_shutdown,
        "serving stats account for every submitted request");

  // ---- Registry cross-check: the online.serve.latency_ns histogram's
  // interpolated percentile should land near the reservoir's exact one
  // (same data, log-bucket resolution). ----
  const obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::Global().Snapshot();
  if (const auto* histogram = snapshot.histogram("online.serve.latency_ns")) {
    std::printf("[registry] online.serve.latency_ns p99 %.2fms over %" PRIu64
                " samples (log-bucket interpolated)\n",
                histogram->ValueAtQuantile(0.99) / 1e6, histogram->count);
  }

  // ---- Wide-event drain + SLO evaluation. All phases recorded into the
  // same process-wide rings; the drain consumes them (the exposition's
  // /eventz view is non-consuming, so a live scrape saw the same rows). ----
  const std::vector<obs::WideEvent> wide_events = obs::WideEvents::Drain();
  const uint64_t wide_recorded = obs::WideEvents::TotalRecorded();
  const uint64_t wide_dropped = obs::WideEvents::Dropped();
  std::printf("[obs] wide events: %" PRIu64 " recorded, %zu drained, %" PRIu64
              " overwritten before drain (ring %zu/thread, sample 1-in-%u)\n",
              wide_recorded, wide_events.size(), wide_dropped,
              obs::WideEvents::kRingCapacity, obs::WideEvents::SamplePeriod());
  if (!args.obs_events.empty()) {
    std::FILE* events_out = std::fopen(args.obs_events.c_str(), "w");
    Check(events_out != nullptr, "open --obs-events path");
    for (const obs::WideEvent& event : wide_events) {
      const std::string line = event.ToJsonLine();
      std::fwrite(line.data(), 1, line.size(), events_out);
      std::fputc('\n', events_out);
    }
    std::fclose(events_out);
    std::printf("[obs] wrote %zu wide events to %s "
                "(scripts/trace_summarize.py ingests this)\n",
                wide_events.size(), args.obs_events.c_str());
  }
  const obs::SloEvaluation slo_eval = slo.PublishGauges(obs::NowSteadyNs());
  std::printf("[slo] burn rate short %.2f / long %.2f, window good+bad "
              "%" PRIu64 "+%" PRIu64 ", firing: %s (the overload phase burns "
              "error budget by design)\n",
              slo_eval.short_burn_rate, slo_eval.long_burn_rate,
              slo_eval.long_good, slo_eval.long_bad,
              slo_eval.firing ? "yes" : "no");
  if (obs::WideEvents::SamplePeriod() != 0) {
    Check(wide_recorded > 0, "wide events recorded while sampling is on");
    Check(slo.TotalGood() + slo.TotalBad() > 0, "slo monitor saw outcomes");
  }

  // ---- JSON ----
  std::FILE* out = std::fopen("BENCH_serving.json", "w");
  Check(out != nullptr, "open BENCH_serving.json");
  std::fprintf(out,
               "{\n  \"hardware_threads\": %u,\n"
               "  \"config\": {\"smoke\": %s, \"duration_s\": %.1f, "
               "\"zipf_s\": %.2f, \"threads\": %d, \"workers\": %d, "
               "\"arrival\": \"%s\", \"pool_size\": %zu},\n"
               "  \"engine_serial_qps\": %.1f,\n"
               "  \"capacity_estimate_qps\": %.1f,\n",
               hardware_threads, args.smoke ? "true" : "false",
               args.duration_s, args.zipf_s, args.threads, args.workers,
               args.poisson ? "poisson" : "fixed", pool.size(),
               engine_serial_qps, server_capacity_qps);
  EmitRun(out, "steady", steady_qps, steady, ",");
  EmitRun(out, "overload", overload_qps, overload, ",");
  std::fprintf(out,
               "  \"batch_ab\": {\"threads\": %d, \"batch1_qps\": %.1f, "
               "\"batch32_qps\": %.1f, \"speedup\": %.3f},\n",
               ab_threads, batch1_qps, batch32_qps, batch_speedup);
  std::fprintf(out,
               "  \"obs\": {\"sample_period\": %u, \"wide_events_recorded\": "
               "%" PRIu64 ", \"wide_events_drained\": %zu, "
               "\"wide_events_dropped\": %" PRIu64 ",\n"
               "    \"slo_good\": %" PRIu64 ", \"slo_bad\": %" PRIu64
               ", \"slo_burn_short\": %.3f, \"slo_burn_long\": %.3f, "
               "\"slo_firing\": %s}\n}\n",
               obs::WideEvents::SamplePeriod(), wide_recorded,
               wide_events.size(), wide_dropped, slo.TotalGood(),
               slo.TotalBad(), slo_eval.short_burn_rate,
               slo_eval.long_burn_rate, slo_eval.firing ? "true" : "false");
  std::fclose(out);
  std::printf("[done] wrote BENCH_serving.json\n");
  return 0;
}
