// Table 4 (§6.3): valid(k) — how many expanded predicates of length k have
// an Infobox correspondence. The paper observed a sharp drop at k = 3
// (KBA: 14005 / 16028 / 2438), which is why KBQA sets k = 3 as the
// expansion limit. This bench regenerates the same analysis on the
// synthetic world, plus a k = 4 extension point.
//
// No QA training is needed: this is a pure KB/Infobox experiment.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "corpus/world_generator.h"
#include "rdf/expanded_predicate.h"
#include "util/table_printer.h"
#include "util/timer.h"

int main() {
  using namespace kbqa;

  std::printf("[setup] generating world...\n");
  corpus::WorldConfig config;
  corpus::World world = corpus::GenerateWorld(config);
  std::printf("[setup] %zu entities, %zu triples, infobox: %zu facts\n",
              world.kb.num_entities(), world.kb.num_triples(),
              world.infobox.num_facts());

  // The paper samples the top 17000 entities by frequency (#triples with
  // e = s); we scale that to the top 20% of our world.
  std::vector<rdf::TermId> entities = world.kb.AllEntities();
  std::sort(entities.begin(), entities.end(),
            [&](rdf::TermId a, rdf::TermId b) {
              return world.kb.OutDegree(a) > world.kb.OutDegree(b);
            });
  entities.resize(std::max<size_t>(1, entities.size() / 5));
  std::printf("[setup] sampling top %zu entities by out-degree\n",
              entities.size());

  TablePrinter table("Table 4: valid(k) — expanded predicates with an Infobox correspondence");
  table.SetHeader({"k", "expanded triples (len=k)", "valid(k)",
                   "valid fraction"});

  for (int k = 1; k <= 4; ++k) {
    rdf::ExpansionOptions options;
    options.max_length = k;
    Timer timer;
    auto ekb = rdf::ExpandedKb::Build(world.kb, entities, world.name_like,
                                      options);
    if (!ekb.ok()) {
      std::fprintf(stderr, "expansion failed at k=%d: %s\n", k,
                   ekb.status().ToString().c_str());
      return 1;
    }
    size_t total = 0;
    size_t valid = 0;
    ekb.value().ForEachTriple([&](const rdf::ExpandedTriple& triple) {
      if (ekb.value().paths().GetPath(triple.path).size() !=
          static_cast<size_t>(k)) {
        return;
      }
      ++total;
      if (world.infobox.Contains(triple.s, triple.o)) ++valid;
    });
    table.AddRow({TablePrinter::Int(k), TablePrinter::Int(total),
                  TablePrinter::Int(valid),
                  total == 0 ? "-" : TablePrinter::Num(
                                         static_cast<double>(valid) / total, 3)});
    std::printf("[run] k=%d expanded in %.2fs\n", k, timer.ElapsedSeconds());
  }

  bench::PrintPaperNote(
      "Table 4 reports valid(k) = 14005 / 16028 / 2438 on KBA and "
      "352811 / 496964 / 2364 on DBpedia for k = 1/2/3 — a sharp drop at "
      "k = 3. The reproduction checks the same *shape*: valid counts grow "
      "from k=1 to k=2, then collapse at k>=3 (only CVT-mediated facts "
      "like marriage -> person -> name stay valid).");
  table.Print(std::cout);
  return 0;
}
