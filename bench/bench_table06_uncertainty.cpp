// Table 6 (§7.2): average number of candidate choices at each random
// variable of the probabilistic pipeline — the uncertainty that justifies
// the probabilistic framework. Paper values (KBA): P(e|q) 18.7,
// P(t|e,q) 2.3, P(p|t) 119.0, P(v|e,p) 3.69.
//
// Also reproduces the §7.5 entity&value identification comparison: joint
// extraction (72% in the paper) vs plain NER (30%).

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "baselines/common.h"
#include "eval/runner.h"
#include "nlp/tokenizer.h"
#include "util/table_printer.h"

int main() {
  using namespace kbqa;
  auto experiment = bench::BuildStandardExperiment();
  const auto& kbqa = experiment->kbqa();
  const auto& world = experiment->world();

  // ---- Table 6: candidate counts per pipeline stage ----
  corpus::BenchmarkConfig config;
  config.num_questions = 500;
  config.bfq_ratio = 1.0;
  config.seed = 606;
  corpus::BenchmarkSet probe = corpus::GenerateBenchmark(world, config);

  double sum_entities = 0, sum_templates = 0, sum_predicates = 0,
         sum_values = 0;
  size_t questions = 0, with_templates = 0, with_predicates = 0;
  for (const corpus::QaPair& pair : probe.questions.pairs) {
    core::AnswerResult result = kbqa.Answer(pair.question);
    if (result.num_entities == 0) continue;
    ++questions;
    sum_entities += static_cast<double>(result.num_entities);
    if (result.num_templates > 0) {
      ++with_templates;
      sum_templates += static_cast<double>(result.num_templates) /
                       result.num_entities;
    }
    if (result.num_predicates > 0) {
      ++with_predicates;
      sum_predicates += static_cast<double>(result.num_predicates) /
                        result.num_templates;
      if (result.num_grounded_predicates > 0) {
        sum_values += static_cast<double>(result.num_values) /
                      result.num_grounded_predicates;
      }
    }
  }

  TablePrinter table(
      "Table 6: average candidate choices per random variable");
  table.SetHeader({"probability", "explanation", "avg count", "paper (KBA)"});
  table.AddRow({"P(e|q)", "#entities for a question",
                TablePrinter::Num(sum_entities / questions, 2), "18.7"});
  table.AddRow({"P(t|e,q)", "#templates for an entity-question pair",
                TablePrinter::Num(sum_templates / with_templates, 2), "2.3"});
  table.AddRow({"P(p|t)", "#predicates for a template",
                TablePrinter::Num(sum_predicates / with_predicates, 2),
                "119.0"});
  table.AddRow({"P(v|e,p)", "#values for an entity-predicate pair",
                TablePrinter::Num(sum_values / with_predicates, 2), "3.69"});
  bench::PrintPaperNote(
      "every stage has >1 candidate on average — the uncertainty that "
      "motivates the probabilistic model (absolute magnitudes scale with "
      "KB size; the paper's KB is 5 orders of magnitude larger).");
  table.Print(std::cout);

  // ---- §7.5: entity identification, joint extraction vs NER ----
  size_t checked = 0, joint_right = 0, ner_right = 0;
  const auto& corpus = experiment->train_corpus();
  for (size_t i = 0; i < corpus.size() && checked < 500; ++i) {
    const corpus::QaGold& gold = corpus.gold[i];
    if (!gold.is_bfq || !gold.answer_contains_value) continue;
    ++checked;
    std::vector<std::string> tokens =
        nlp::TokenizeQuestion(corpus.pairs[i].question);
    // Joint: highest-support entity among extracted EV candidates.
    auto candidates =
        kbqa.ev_extractor().Extract(tokens, corpus.pairs[i].answer);
    size_t best_paths = 0;
    for (const auto& cand : candidates) {
      best_paths = std::max(best_paths, cand.paths.size());
    }
    // Some candidates tie on path count; accept gold if among candidates
    // with the maximal support (the paper checks "identifies correctly").
    bool joint_ok = false;
    for (const auto& cand : candidates) {
      joint_ok = joint_ok || (cand.entity == gold.entity &&
                              cand.paths.size() == best_paths);
    }
    joint_right += joint_ok;
    // NER-only: first mention, highest-degree candidate, no grounding.
    auto linked = baselines::LinkFirstEntity(world.kb, kbqa.ner(), tokens);
    ner_right += (linked && linked->entity == gold.entity);
  }

  TablePrinter ev_table(
      "Sec 7.5: precision of entity identification on sampled QA pairs");
  ev_table.SetHeader({"method", "correct", "sampled", "precision",
                      "paper"});
  ev_table.AddRow({"joint entity&value extraction (KBQA)",
                   TablePrinter::Int(joint_right), TablePrinter::Int(checked),
                   TablePrinter::Num(100.0 * joint_right / checked, 1),
                   "72%"});
  ev_table.AddRow({"NER-only linking",
                   TablePrinter::Int(ner_right), TablePrinter::Int(checked),
                   TablePrinter::Num(100.0 * ner_right / checked, 1),
                   "30%"});
  ev_table.Print(std::cout);
  return 0;
}
