// Table 7 (§7.3.1): effectiveness on a QALD-5-shaped benchmark (50
// questions, BFQ ratio 0.24). The paper's signature: KBQA's precision tops
// every competitor while overall recall is bounded by the non-BFQ share —
// R_BFQ is the fair recall measure.

#include <iostream>

#include "bench/bench_common.h"
#include "eval/runner.h"

int main() {
  using namespace kbqa;
  auto experiment = bench::BuildStandardExperiment();
  corpus::BenchmarkSet qald = experiment->MakeQald5();
  std::printf("[run] %s: %zu questions, %zu BFQs\n", qald.name.c_str(),
              qald.questions.size(), qald.num_bfq);

  std::vector<bench::QaldRow> rows;
  rows.push_back({"KBQA (ours)",
                  eval::RunBenchmark(experiment->kbqa(), qald)});
  for (const core::QaSystemInterface* baseline : experiment->Baselines()) {
    rows.push_back({baseline->name() + " (reimpl. family)",
                    eval::RunBenchmark(*baseline, qald)});
  }

  // Reference rows copied verbatim from the paper's Table 7 ("-" where the
  // paper does not report the column).
  std::vector<std::vector<std::string>> paper_rows = {
      {"paper: Xser", "42", "26", "7", "0.52", "0.66", "-", "-", "0.62",
       "0.79"},
      {"paper: APEQ", "26", "8", "5", "0.16", "0.26", "-", "-", "0.31",
       "0.50"},
      {"paper: QAnswer", "37", "9", "4", "0.18", "0.26", "-", "-", "0.24",
       "0.35"},
      {"paper: SemGraphQA", "31", "7", "3", "0.14", "0.20", "-", "-", "0.23",
       "0.32"},
      {"paper: YodaQA", "33", "8", "2", "0.16", "0.20", "-", "-", "0.24",
       "0.30"},
      {"paper: KBQA+KBA", "7", "5", "1", "0.10", "0.12", "0.42", "0.50",
       "0.71", "0.86"},
      {"paper: KBQA+Freebase", "6", "5", "1", "0.10", "0.12", "0.42", "0.50",
       "0.83", "1.00"},
      {"paper: KBQA+DBpedia", "8", "8", "0", "0.16", "0.16", "0.67", "0.67",
       "1.00", "1.00"},
  };

  bench::PrintQaldTable(
      "Table 7: results on the QALD-5-shaped benchmark (BFQ ratio 0.24)",
      paper_rows, rows, std::cout);
  bench::PrintPaperNote(
      "shape to check: KBQA's P / P* lead every baseline family; overall R "
      "is capped by the 76% non-BFQ share while R_BFQ stays high.");
  return 0;
}
