// Table 8 (§7.3.1): effectiveness on a QALD-3-shaped benchmark (99
// questions, BFQ ratio 0.41), including BFQ-restricted precision columns.
// Also reproduces the paper's recall analysis: the dominant failure mode is
// a rare phrasing matched against a rare predicate (12 of 15 failures).

#include <iostream>

#include "bench/bench_common.h"
#include "eval/report.h"
#include "eval/runner.h"

int main() {
  using namespace kbqa;
  auto experiment = bench::BuildStandardExperiment();
  corpus::BenchmarkSet qald = experiment->MakeQald3();
  std::printf("[run] %s: %zu questions, %zu BFQs\n", qald.name.c_str(),
              qald.questions.size(), qald.num_bfq);

  std::vector<bench::QaldRow> rows;
  rows.push_back({"KBQA (ours)",
                  eval::RunBenchmark(experiment->kbqa(), qald)});
  for (const core::QaSystemInterface* baseline : experiment->Baselines()) {
    rows.push_back({baseline->name() + " (reimpl. family)",
                    eval::RunBenchmark(*baseline, qald)});
  }

  std::vector<std::vector<std::string>> paper_rows = {
      {"paper: squall2sparql", "96", "80", "13", "0.78", "0.91", "0.81",
       "0.94", "0.84", "0.97"},
      {"paper: SWIP", "21", "14", "2", "0.14", "0.16", "0.24", "0.24",
       "0.67", "0.76"},
      {"paper: CASIA", "52", "29", "8", "0.29", "0.37", "0.56", "0.61",
       "0.56", "0.71"},
      {"paper: RTV", "55", "30", "4", "0.30", "0.34", "0.56", "0.56", "0.55",
       "0.62"},
      {"paper: gAnswer", "76", "32", "11", "0.32", "0.43", "0.54", "-",
       "0.42", "0.57"},
      {"paper: Intui2", "99", "28", "4", "0.28", "0.32", "0.54", "0.56",
       "0.28", "0.32"},
      {"paper: Scalewelis", "70", "32", "1", "0.32", "0.33", "0.41", "0.41",
       "0.46", "0.47"},
      {"paper: KBQA+KBA", "25", "17", "2", "0.17", "0.19", "0.42", "0.46",
       "0.68", "0.76"},
      {"paper: KBQA+Freebase", "21", "15", "3", "0.15", "0.18", "0.37",
       "0.44", "0.71", "0.86"},
      {"paper: KBQA+DBpedia", "26", "25", "0", "0.25", "0.25", "0.61",
       "0.61", "0.96", "0.96"},
  };

  bench::PrintQaldTable(
      "Table 8: results on the QALD-3-shaped benchmark (BFQ ratio 0.41)",
      paper_rows, rows, std::cout);

  // ---- Recall analysis: why BFQs fail (§7.3.1's failure discussion) ----
  eval::RunResult kbqa_run = eval::RunBenchmark(experiment->kbqa(), qald);
  size_t failed_bfq = 0, unseen_failed = 0;
  for (const eval::JudgedQuestion& jq : kbqa_run.judged) {
    if (!jq.is_bfq || jq.judgment == eval::Judgment::kRight ||
        jq.judgment == eval::Judgment::kPartial) {
      continue;
    }
    ++failed_bfq;
    unseen_failed += jq.unseen_paraphrase;
  }
  std::printf(
      "\n[analysis] failed BFQs: %zu, of which %zu used a phrasing never "
      "seen in training — the paper's \"strict template matching\" failure "
      "mode (12 of 15 in the paper).\n",
      failed_bfq, unseen_failed);
  eval::EvaluationReport::Build(kbqa_run).Print(std::cout);
  bench::PrintPaperNote(
      "shape to check: KBQA P / P* at the top (only the human-assisted "
      "squall2sparql beats it in the paper); recall bounded by non-BFQs; "
      "failures dominated by unseen templates.");
  return 0;
}
