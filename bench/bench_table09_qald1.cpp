// Table 9 (§7.3.1): BFQs of a QALD-1-shaped benchmark, KBQA vs the
// synonym-based family (DEANNA is the paper's representative). The paper's
// point: template matching beats synonym matching decisively on precision.

#include <iostream>

#include "bench/bench_common.h"
#include "eval/runner.h"

int main() {
  using namespace kbqa;
  auto experiment = bench::BuildStandardExperiment();
  corpus::BenchmarkSet qald = experiment->MakeQald1();
  std::printf("[run] %s: %zu questions, %zu BFQs\n", qald.name.c_str(),
              qald.questions.size(), qald.num_bfq);

  std::vector<bench::QaldRow> rows;
  rows.push_back({"KBQA (ours)",
                  eval::RunBenchmark(experiment->kbqa(), qald)});
  rows.push_back({"Synonym/DEANNA family (reimpl.)",
                  eval::RunBenchmark(experiment->synonym_qa(), qald)});
  rows.push_back({"Graph/gAnswer family (reimpl.)",
                  eval::RunBenchmark(experiment->graph_qa(), qald)});

  std::vector<std::vector<std::string>> paper_rows = {
      {"paper: DEANNA", "20", "10", "0", "-", "-", "0.37", "0.37", "0.50",
       "0.50"},
      {"paper: KBQA+KBA", "13", "12", "0", "-", "-", "0.48", "0.48", "0.92",
       "0.92"},
      {"paper: KBQA+Freebase", "14", "13", "0", "-", "-", "0.52", "0.52",
       "0.93", "0.92"},
      {"paper: KBQA+DBpedia", "20", "18", "1", "-", "-", "0.67", "0.70",
       "0.90", "0.95"},
  };

  bench::PrintQaldTable(
      "Table 9: KBQA vs the synonym-based family (QALD-1-shaped, BFQ ratio "
      "0.54)",
      paper_rows, rows, std::cout);
  bench::PrintPaperNote(
      "shape to check: KBQA precision well above the synonym family "
      "(paper: 0.90+ vs 0.50) — synonyms cannot represent holistic "
      "phrasings like 'how many people are there in X'.");
  return 0;
}
