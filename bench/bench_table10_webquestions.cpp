// Table 10 (§7.3.1): the WebQuestions-shaped benchmark (2032 questions,
// non-BFQ majority). The paper's signature: KBQA's precision (0.85) is far
// above the embedding/neural systems of the era while recall (0.22) is low
// because KBQA declines non-BFQs; F1 lands mid-pack.

#include <iostream>

#include "bench/bench_common.h"
#include "eval/runner.h"
#include "util/table_printer.h"

int main() {
  using namespace kbqa;
  auto experiment = bench::BuildStandardExperiment();
  corpus::BenchmarkSet webq = experiment->MakeWebQuestions();
  std::printf("[run] %s: %zu questions, %zu BFQs\n", webq.name.c_str(),
              webq.questions.size(), webq.num_bfq);

  TablePrinter table("Table 10: results on the WebQuestions-shaped test set");
  table.SetHeader({"system", "P", "P@1", "R", "F1"});
  table.AddRow({"paper: Bordes et al. 2014", "-", "0.40", "-", "0.39"});
  table.AddRow({"paper: Zheng et al. 2015", "0.38", "-", "-", "-"});
  table.AddRow({"paper: Li et al. 2015", "-", "0.45", "-", "0.41"});
  table.AddRow({"paper: Yao 2015", "0.53", "-", "0.55", "0.44"});
  table.AddRow({"paper: KBQA", "0.85", "0.52", "0.22", "0.34"});

  auto add_measured = [&](const std::string& name,
                          const core::QaSystemInterface& system) {
    eval::RunResult run = eval::RunBenchmark(system, webq);
    // P@1: fraction of all questions whose top-ranked answer is right.
    // (Our systems return a single ranked list; see EXPERIMENTS.md.)
    double p_at_1 = run.counts.total == 0
                        ? 0
                        : static_cast<double>(run.counts.ri) /
                              run.counts.total;
    table.AddRow({name, TablePrinter::Num(run.counts.P(), 2),
                  TablePrinter::Num(p_at_1, 2),
                  TablePrinter::Num(run.counts.R(), 2),
                  TablePrinter::Num(run.counts.F1(), 2)});
  };
  add_measured("KBQA (ours)", experiment->kbqa());
  for (const core::QaSystemInterface* baseline : experiment->Baselines()) {
    add_measured(baseline->name() + " (reimpl. family)", *baseline);
  }

  // Extension row: KBQA + the §1 question variants (ranking / comparison /
  // listing), which recover part of the non-BFQ share the paper leaves to
  // hybrid systems.
  class KbqaWithVariants : public core::QaSystemInterface {
   public:
    explicit KbqaWithVariants(const core::KbqaSystem* kbqa) : kbqa_(kbqa) {}
    std::string name() const override { return "KBQA+variants"; }
    core::AnswerResult Answer(const std::string& question) const override {
      core::AnswerResult result = kbqa_->Answer(question);
      if (result.answered) return result;
      return kbqa_->AnswerVariant(question);
    }

   private:
    const core::KbqaSystem* kbqa_;
  };
  KbqaWithVariants with_variants(&experiment->kbqa());
  add_measured("KBQA+variants (extension)", with_variants);

  table.Print(std::cout);
  bench::PrintPaperNote(
      "shape to check: KBQA precision dominates every other row while its "
      "recall is capped by the non-BFQ majority, trading F1 for "
      "reliability.");
  return 0;
}
