// Table 11 (§7.3.1): hybrid systems on the QALD-3-shaped benchmark. KBQA
// answers what it can (BFQs, with high precision); when it returns null the
// question goes to the baseline. Every baseline improves when composed with
// KBQA — the paper's argument that KBQA is a valuable component even on
// non-BFQ-majority datasets.

#include <iostream>

#include "bench/bench_common.h"
#include "core/qa_interface.h"
#include "eval/runner.h"
#include "util/table_printer.h"

int main() {
  using namespace kbqa;
  auto experiment = bench::BuildStandardExperiment();
  corpus::BenchmarkSet qald = experiment->MakeQald3();
  std::printf("[run] %s: %zu questions, %zu BFQs\n", qald.name.c_str(),
              qald.questions.size(), qald.num_bfq);

  TablePrinter table("Table 11: hybrid systems on the QALD-3-shaped benchmark");
  table.SetHeader({"system", "R", "R*", "P", "P*"});

  auto fmt_delta = [](double value, double base) {
    std::string out = TablePrinter::Num(value, 2);
    double delta = value - base;
    if (delta > 0.004) out += " (+" + TablePrinter::Num(delta, 2) + ")";
    return out;
  };

  for (const core::QaSystemInterface* baseline : experiment->Baselines()) {
    eval::RunResult alone = eval::RunBenchmark(*baseline, qald);
    core::HybridSystem hybrid(&experiment->kbqa(), baseline);
    eval::RunResult combined = eval::RunBenchmark(hybrid, qald);

    table.AddRow({baseline->name(), TablePrinter::Num(alone.counts.R(), 2),
                  TablePrinter::Num(alone.counts.RStar(), 2),
                  TablePrinter::Num(alone.counts.P(), 2),
                  TablePrinter::Num(alone.counts.PStar(), 2)});
    table.AddRow({"KBQA+" + baseline->name(),
                  fmt_delta(combined.counts.R(), alone.counts.R()),
                  fmt_delta(combined.counts.RStar(), alone.counts.RStar()),
                  fmt_delta(combined.counts.P(), alone.counts.P()),
                  fmt_delta(combined.counts.PStar(), alone.counts.PStar())});
  }

  table.Print(std::cout);
  bench::PrintPaperNote(
      "paper reports (QALD-3/DBpedia): SWIP 0.15->0.33 R with KBQA, CASIA "
      "0.29->0.38, RTV 0.30->0.39, gAnswer 0.32->0.39, Intui2 0.28->0.39, "
      "Scalewelis 0.32->0.44 — every baseline's recall AND precision "
      "improve when hybridized. Shape to check: every KBQA+X row dominates "
      "its X row.");
  return 0;
}
