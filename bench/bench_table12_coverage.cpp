// Table 12 (§7.3.2): coverage of predicate inference — how many templates
// and predicates KBQA learns vs the bootstrapping (BOA-pattern) family.
// Paper: KBQA+KBA learns 27,126,355 templates / 2782 predicates from 41M QA
// pairs; bootstrapping learns 471,920 patterns / 283 predicates from a
// larger (256M-sentence) corpus. Shape: KBQA's representation extracts far
// more coverage per unit of data.

#include <iostream>

#include "bench/bench_common.h"
#include "util/table_printer.h"

int main() {
  using namespace kbqa;
  auto experiment = bench::BuildStandardExperiment();
  const auto& store = experiment->kbqa().template_store();
  const auto& lexicon = experiment->lexicon();

  size_t kbqa_templates = store.num_templates();
  size_t kbqa_predicates = store.NumDistinctPredicates();
  size_t boot_patterns = lexicon.num_patterns();
  size_t boot_predicates = lexicon.num_predicates();

  TablePrinter table("Table 12: coverage of predicate inference");
  table.SetHeader({"row", "KBQA (ours)", "Bootstrapping (ours)",
                   "paper KBQA+KBA", "paper Bootstrapping"});
  table.AddRow({"corpus",
                std::to_string(experiment->train_corpus().size()) + " QA",
                std::to_string(experiment->config().webdoc_sentences) +
                    " sentences",
                "41M QA", "256M sentences"});
  table.AddRow({"templates/patterns", TablePrinter::Int(kbqa_templates),
                TablePrinter::Int(boot_patterns), "27126355", "471920"});
  table.AddRow({"predicates", TablePrinter::Int(kbqa_predicates),
                TablePrinter::Int(boot_predicates), "2782", "283"});
  table.AddRow(
      {"templates per predicate",
       TablePrinter::Num(static_cast<double>(kbqa_templates) /
                             std::max<size_t>(1, kbqa_predicates),
                         1),
       TablePrinter::Num(static_cast<double>(boot_patterns) /
                             std::max<size_t>(1, boot_predicates),
                         1),
       "9751", "4639"});
  table.Print(std::cout);
  bench::PrintPaperNote(
      "shape to check: KBQA covers MORE predicates than bootstrapping "
      "(template extraction reaches CVT-mediated intents the "
      "between-entity-and-value patterns never see) and learns many "
      "templates per predicate. Absolute counts scale with corpus size — "
      "the paper's corpus is ~700x ours.");
  return 0;
}
