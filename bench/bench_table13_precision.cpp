// Table 13 (§7.3.2): precision of predicate inference. The paper manually
// checks whether argmax_p P(p|t) is the right predicate for the top-100
// templates by frequency (100% right) and for 100 random templates with
// frequency > 1 (67% right, 86% partially right). Here the "manual check"
// is mechanized: the generator knows which intent produced each paraphrase,
// so the gold predicate path of every well-formed template is known.

#include <algorithm>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/em_learner.h"
#include "nlp/tokenizer.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table_printer.h"

namespace {

using namespace kbqa;

/// Gold map: template text -> set of acceptable predicate paths (several
/// when an ambiguous phrasing is shared across intents) + answer classes.
struct Gold {
  std::set<rdf::PathId> paths;
  std::set<nlp::QuestionClass> classes;
};

std::map<std::string, Gold> BuildGoldMap(const corpus::World& world,
                                         const rdf::PathDictionary& paths) {
  std::map<std::string, Gold> gold;
  const char* kSlot = "zqzqplaceholder";
  for (const corpus::IntentSpec& intent : world.schema.intents()) {
    // Resolve the intent's predicate path to a PathId.
    rdf::PredPath path;
    bool ok = true;
    for (const std::string& pred : intent.path) {
      auto id = world.kb.LookupPredicate(pred);
      if (!id) ok = false;
      else path.push_back(*id);
    }
    if (!ok) continue;
    auto path_id = paths.Lookup(path);
    if (!path_id) continue;

    // Categories an entity of this subject type can carry.
    std::vector<std::string> categories = {
        world.schema.types()[intent.entity_type].category};
    if (world.schema.types()[intent.entity_type].name == "person") {
      for (const char* sub :
           {"$politician", "$executive", "$musician", "$author"}) {
        categories.push_back(sub);
      }
    }

    for (const corpus::Paraphrase& para : intent.paraphrases) {
      if (!para.train) continue;
      std::vector<std::string> tokens =
          nlp::TokenizeQuestion(ReplaceAll(para.pattern, "$e", kSlot));
      for (const std::string& category : categories) {
        std::vector<std::string> rendered = tokens;
        for (std::string& tok : rendered) {
          if (tok == kSlot) tok = category;
        }
        Gold& g = gold[nlp::JoinTokens(rendered)];
        g.paths.insert(*path_id);
        g.classes.insert(intent.answer_class);
      }
    }
  }
  return gold;
}

}  // namespace

int main() {
  auto experiment = bench::BuildStandardExperiment();
  const auto& store = experiment->kbqa().template_store();
  const auto& paths = experiment->kbqa().expanded_kb().paths();
  const auto& world = experiment->world();

  std::map<std::string, Gold> gold = BuildGoldMap(world, paths);

  auto judge = [&](core::TemplateId t, int* right, int* partial) {
    auto best = store.Best(t);
    if (!best) return;
    auto it = gold.find(store.TemplateText(t));
    if (it == gold.end()) return;  // noise template: counted wrong
    if (it->second.paths.count(best->path) > 0) {
      ++*right;
      return;
    }
    nlp::QuestionClass got = core::PathAnswerClass(
        paths.GetPath(best->path), world.predicate_class, world.name_like);
    if (it->second.classes.count(got) > 0) ++*partial;
  };

  std::vector<core::TemplateId> by_freq = store.TemplatesByFrequency();

  // Top 100 by frequency.
  int top_right = 0, top_partial = 0;
  size_t top_n = std::min<size_t>(100, by_freq.size());
  for (size_t i = 0; i < top_n; ++i) judge(by_freq[i], &top_right, &top_partial);

  // Random 100 with frequency > 1.
  std::vector<core::TemplateId> eligible;
  for (core::TemplateId t : by_freq) {
    if (store.Frequency(t) > 1) eligible.push_back(t);
  }
  Rng rng(1313);
  rng.Shuffle(eligible);
  int rand_right = 0, rand_partial = 0;
  size_t rand_n = std::min<size_t>(100, eligible.size());
  for (size_t i = 0; i < rand_n; ++i) {
    judge(eligible[i], &rand_right, &rand_partial);
  }

  TablePrinter table("Table 13: precision of predicate inference");
  table.SetHeader({"templates", "#right", "#partially", "P", "P*",
                   "paper P", "paper P*"});
  table.AddRow({"Random 100 (freq > 1)", TablePrinter::Int(rand_right),
                TablePrinter::Int(rand_partial),
                TablePrinter::Num(100.0 * rand_right / rand_n, 0) + "%",
                TablePrinter::Num(100.0 * (rand_right + rand_partial) / rand_n,
                                  0) +
                    "%",
                "67%", "86%"});
  table.AddRow({"Top 100 by frequency", TablePrinter::Int(top_right),
                TablePrinter::Int(top_partial),
                TablePrinter::Num(100.0 * top_right / top_n, 0) + "%",
                TablePrinter::Num(100.0 * (top_right + top_partial) / top_n,
                                  0) +
                    "%",
                "100%", "100%"});
  table.Print(std::cout);
  bench::PrintPaperNote(
      "shape to check: near-perfect precision on frequent templates "
      "(plenty of EM evidence), lower on the random tail where rare "
      "templates have little evidence.");

  // Case study: the five most frequent templates with their predicates.
  std::printf("\n[case study] top templates and their argmax predicates:\n");
  for (size_t i = 0; i < std::min<size_t>(5, by_freq.size()); ++i) {
    auto best = store.Best(by_freq[i]);
    std::printf("  %-55s -> %s (P=%.2f, freq=%llu)\n",
                store.TemplateText(by_freq[i]).c_str(),
                best ? paths.ToString(best->path, world.kb).c_str() : "-",
                best ? best->probability : 0.0,
                static_cast<unsigned long long>(store.Frequency(by_freq[i])));
  }
  return 0;
}
