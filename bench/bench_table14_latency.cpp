// Table 14 (§7.4): online latency and complexity. Paper: KBQA 79ms vs
// gAnswer 990ms (12.5x) vs DEANNA 7738ms (98x); KBQA's pipeline is
// polynomial (O(|q|^4) parsing + O(|P|) inference) while both competitors
// contain NP-hard question understanding. The reimplemented families keep
// the same algorithmic structure, so the *ordering* and rough magnitude
// gaps reproduce; absolute times scale with the synthetic KB.
//
// Also measures the offline procedure's corpus-size scaling (§7.4 reports
// 1438 min for 41M pairs; ours is linear in corpus size as predicted by
// the O(km) EM bound).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_common.h"

namespace {

using namespace kbqa;

const eval::Experiment& Experiment() {
  static const eval::Experiment* const kExperiment = [] {
    return bench::BuildStandardExperiment().release();
  }();
  return *kExperiment;
}

const std::vector<std::string>& Questions() {
  static const std::vector<std::string>* const kQuestions = [] {
    corpus::BenchmarkConfig config;
    config.num_questions = 64;
    config.bfq_ratio = 1.0;
    config.seed = 1414;
    auto* questions = new std::vector<std::string>();
    for (const corpus::QaPair& pair :
         corpus::GenerateBenchmark(Experiment().world(), config)
             .questions.pairs) {
      questions->push_back(pair.question);
    }
    return questions;
  }();
  return *kQuestions;
}

void BM_Kbqa_Answer(benchmark::State& state) {
  const auto& questions = Questions();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Experiment().kbqa().Answer(questions[i++ % questions.size()]));
  }
}
BENCHMARK(BM_Kbqa_Answer)->Unit(benchmark::kMicrosecond);

void BM_Kbqa_AnswerComplex(benchmark::State& state) {
  // Complex pipeline: decomposition DP (O(|q|^4)) + chained inference.
  static const std::vector<std::string> kComplex = {
      "when was barack obama's wife born",
      "how many people live in the capital of japan",
      "what is the birthday of the ceo of google",
  };
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Experiment().kbqa().AnswerComplex(kComplex[i++ % kComplex.size()]));
  }
}
BENCHMARK(BM_Kbqa_AnswerComplex)->Unit(benchmark::kMicrosecond);

void BM_RuleQa(benchmark::State& state) {
  const auto& questions = Questions();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Experiment().rule_qa().Answer(questions[i++ % questions.size()]));
  }
}
BENCHMARK(BM_RuleQa)->Unit(benchmark::kMicrosecond);

void BM_KeywordQa(benchmark::State& state) {
  const auto& questions = Questions();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Experiment().keyword_qa().Answer(questions[i++ % questions.size()]));
  }
}
BENCHMARK(BM_KeywordQa)->Unit(benchmark::kMicrosecond);

void BM_GraphQa_gAnswerFamily(benchmark::State& state) {
  const auto& questions = Questions();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Experiment().graph_qa().Answer(questions[i++ % questions.size()]));
  }
}
BENCHMARK(BM_GraphQa_gAnswerFamily)->Unit(benchmark::kMicrosecond);

void BM_SynonymQa_DeannaFamily(benchmark::State& state) {
  const auto& questions = Questions();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Experiment().synonym_qa().Answer(questions[i++ % questions.size()]));
  }
}
BENCHMARK(BM_SynonymQa_DeannaFamily)->Unit(benchmark::kMicrosecond);

const corpus::World& ScalingWorld() {
  static const corpus::World* const kWorld = [] {
    corpus::WorldConfig world_config;
    world_config.schema.scale = 0.15;
    return new corpus::World(corpus::GenerateWorld(world_config));
  }();
  return *kWorld;
}

/// Offline-procedure scaling: full Train() over increasing corpus sizes.
void BM_OfflineTraining(benchmark::State& state) {
  corpus::QaGenConfig corpus_config;
  corpus_config.num_pairs = static_cast<size_t>(state.range(0));
  corpus::QaCorpus corpus =
      corpus::GenerateTrainingCorpus(ScalingWorld(), corpus_config);
  for (auto _ : state) {
    core::KbqaSystem kbqa(&ScalingWorld());
    benchmark::DoNotOptimize(kbqa.Train(corpus));
  }
  state.SetItemsProcessed(state.iterations() * corpus.size());
}
BENCHMARK(BM_OfflineTraining)
    ->Arg(2000)
    ->Arg(8000)
    ->Arg(32000)
    ->Unit(benchmark::kMillisecond);

/// Offline-procedure thread scaling: Train() over a fixed corpus at 1/2/N
/// worker threads (bit-identical θ across rows — only wall clock moves).
void BM_OfflineTrainingThreads(benchmark::State& state) {
  corpus::QaGenConfig corpus_config;
  corpus_config.num_pairs = 8000;
  corpus::QaCorpus corpus =
      corpus::GenerateTrainingCorpus(ScalingWorld(), corpus_config);
  core::KbqaOptions options;
  options.em.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    core::KbqaSystem kbqa(&ScalingWorld(), options);
    benchmark::DoNotOptimize(kbqa.Train(corpus));
  }
  state.SetItemsProcessed(state.iterations() * corpus.size());
}
BENCHMARK(BM_OfflineTrainingThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

/// Online throughput serving: the batched AnswerAll entry point at 1/2/N
/// worker threads over the Table 14 question set.
void BM_AnswerAllThroughput(benchmark::State& state) {
  const auto& questions = Questions();
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Experiment().kbqa().AnswerAll(questions, threads));
  }
  state.SetItemsProcessed(state.iterations() * questions.size());
}
BENCHMARK(BM_AnswerAllThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

/// Measures the parallel speedup curve directly (offline Train and online
/// AnswerAll at 1/2/4 threads) and emits BENCH_parallel.json.
void EmitParallelSpeedupJson() {
  std::printf("[parallel] measuring offline/online thread scaling...\n");
  corpus::QaGenConfig corpus_config;
  corpus_config.num_pairs = 8000;
  corpus::QaCorpus corpus =
      corpus::GenerateTrainingCorpus(ScalingWorld(), corpus_config);
  const std::vector<int> thread_counts = {1, 2, 4};

  std::vector<double> train_seconds;
  for (int threads : thread_counts) {
    core::KbqaOptions options;
    options.em.num_threads = threads;
    kbqa::Timer timer;
    core::KbqaSystem kbqa(&ScalingWorld(), options);
    if (!kbqa.Train(corpus).ok()) std::exit(1);
    train_seconds.push_back(timer.ElapsedSeconds());
  }

  const auto& questions = Questions();
  constexpr int kBatchReps = 20;
  std::vector<double> qps;
  for (int threads : thread_counts) {
    kbqa::Timer timer;
    for (int rep = 0; rep < kBatchReps; ++rep) {
      benchmark::DoNotOptimize(Experiment().kbqa().AnswerAll(questions,
                                                             threads));
    }
    qps.push_back(static_cast<double>(questions.size()) * kBatchReps /
                  timer.ElapsedSeconds());
  }

  FILE* out = std::fopen("BENCH_parallel.json", "w");
  if (out == nullptr) return;
  std::fprintf(out, "{\n  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(out,
               "  \"offline_training\": {\"corpus_pairs\": %zu, \"runs\": [",
               corpus.size());
  for (size_t i = 0; i < thread_counts.size(); ++i) {
    std::fprintf(out,
                 "%s\n    {\"threads\": %d, \"seconds\": %.3f, "
                 "\"speedup\": %.2f}",
                 i ? "," : "", thread_counts[i], train_seconds[i],
                 train_seconds[0] / train_seconds[i]);
  }
  std::fprintf(out, "\n  ]},\n  \"answer_all\": {\"questions\": %zu, "
               "\"runs\": [", questions.size());
  for (size_t i = 0; i < thread_counts.size(); ++i) {
    std::fprintf(out,
                 "%s\n    {\"threads\": %d, \"questions_per_sec\": %.1f, "
                 "\"speedup\": %.2f}",
                 i ? "," : "", thread_counts[i], qps[i], qps[i] / qps[0]);
  }
  std::fprintf(out, "\n  ]}\n}\n");
  std::fclose(out);
  std::printf("[parallel] wrote BENCH_parallel.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  Experiment();  // Train once before timing anything.
  std::printf(
      "\nTable 14 reference (paper): DEANNA 7738ms (NP-hard understanding "
      "+ NP-hard evaluation), gAnswer 990ms (O(|V|^3) + NP-hard), KBQA "
      "79ms (O(|q|^4) parsing + O(|P|) inference). Shape to check below: "
      "KBQA's per-question latency is far below the Graph (gAnswer) family "
      "which is below the Synonym (DEANNA) family; offline training scales "
      "linearly in corpus size.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  EmitParallelSpeedupJson();
  return 0;
}
