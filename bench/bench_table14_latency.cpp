// Table 14 (§7.4): online latency and complexity. Paper: KBQA 79ms vs
// gAnswer 990ms (12.5x) vs DEANNA 7738ms (98x); KBQA's pipeline is
// polynomial (O(|q|^4) parsing + O(|P|) inference) while both competitors
// contain NP-hard question understanding. The reimplemented families keep
// the same algorithmic structure, so the *ordering* and rough magnitude
// gaps reproduce; absolute times scale with the synthetic KB.
//
// Also measures the offline procedure's corpus-size scaling (§7.4 reports
// 1438 min for 41M pairs; ours is linear in corpus size as predicted by
// the O(km) EM bound).

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench/bench_common.h"

namespace {

using namespace kbqa;

const eval::Experiment& Experiment() {
  static const eval::Experiment* const kExperiment = [] {
    return bench::BuildStandardExperiment().release();
  }();
  return *kExperiment;
}

const std::vector<std::string>& Questions() {
  static const std::vector<std::string>* const kQuestions = [] {
    corpus::BenchmarkConfig config;
    config.num_questions = 64;
    config.bfq_ratio = 1.0;
    config.seed = 1414;
    auto* questions = new std::vector<std::string>();
    for (const corpus::QaPair& pair :
         corpus::GenerateBenchmark(Experiment().world(), config)
             .questions.pairs) {
      questions->push_back(pair.question);
    }
    return questions;
  }();
  return *kQuestions;
}

void BM_Kbqa_Answer(benchmark::State& state) {
  const auto& questions = Questions();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Experiment().kbqa().Answer(questions[i++ % questions.size()]));
  }
}
BENCHMARK(BM_Kbqa_Answer)->Unit(benchmark::kMicrosecond);

void BM_Kbqa_AnswerComplex(benchmark::State& state) {
  // Complex pipeline: decomposition DP (O(|q|^4)) + chained inference.
  static const std::vector<std::string> kComplex = {
      "when was barack obama's wife born",
      "how many people live in the capital of japan",
      "what is the birthday of the ceo of google",
  };
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Experiment().kbqa().AnswerComplex(kComplex[i++ % kComplex.size()]));
  }
}
BENCHMARK(BM_Kbqa_AnswerComplex)->Unit(benchmark::kMicrosecond);

void BM_RuleQa(benchmark::State& state) {
  const auto& questions = Questions();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Experiment().rule_qa().Answer(questions[i++ % questions.size()]));
  }
}
BENCHMARK(BM_RuleQa)->Unit(benchmark::kMicrosecond);

void BM_KeywordQa(benchmark::State& state) {
  const auto& questions = Questions();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Experiment().keyword_qa().Answer(questions[i++ % questions.size()]));
  }
}
BENCHMARK(BM_KeywordQa)->Unit(benchmark::kMicrosecond);

void BM_GraphQa_gAnswerFamily(benchmark::State& state) {
  const auto& questions = Questions();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Experiment().graph_qa().Answer(questions[i++ % questions.size()]));
  }
}
BENCHMARK(BM_GraphQa_gAnswerFamily)->Unit(benchmark::kMicrosecond);

void BM_SynonymQa_DeannaFamily(benchmark::State& state) {
  const auto& questions = Questions();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Experiment().synonym_qa().Answer(questions[i++ % questions.size()]));
  }
}
BENCHMARK(BM_SynonymQa_DeannaFamily)->Unit(benchmark::kMicrosecond);

/// Offline-procedure scaling: full Train() over increasing corpus sizes.
void BM_OfflineTraining(benchmark::State& state) {
  corpus::WorldConfig world_config;
  world_config.schema.scale = 0.15;
  static const corpus::World* const kWorld =
      new corpus::World(corpus::GenerateWorld(world_config));
  corpus::QaGenConfig corpus_config;
  corpus_config.num_pairs = static_cast<size_t>(state.range(0));
  corpus::QaCorpus corpus =
      corpus::GenerateTrainingCorpus(*kWorld, corpus_config);
  for (auto _ : state) {
    core::KbqaSystem kbqa(kWorld);
    benchmark::DoNotOptimize(kbqa.Train(corpus));
  }
  state.SetItemsProcessed(state.iterations() * corpus.size());
}
BENCHMARK(BM_OfflineTraining)
    ->Arg(2000)
    ->Arg(8000)
    ->Arg(32000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  Experiment();  // Train once before timing anything.
  std::printf(
      "\nTable 14 reference (paper): DEANNA 7738ms (NP-hard understanding "
      "+ NP-hard evaluation), gAnswer 990ms (O(|V|^3) + NP-hard), KBQA "
      "79ms (O(|q|^4) parsing + O(|P|) inference). Shape to check below: "
      "KBQA's per-question latency is far below the Graph (gAnswer) family "
      "which is below the Synonym (DEANNA) family; offline training scales "
      "linearly in corpus size.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
