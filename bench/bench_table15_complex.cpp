// Table 15 (§7.5): complex question answering — the paper's 8 hand-written
// complex questions (KBQA answers all 8; Wolfram Alpha 2; gAnswer 0). The
// famous seed entities wire exactly these facts, so the same 8 questions
// run verbatim. The Graph (gAnswer-family) baseline is run for contrast;
// Wolfram Alpha columns are quoted from the paper.

#include <iostream>
#include <string>

#include "bench/bench_common.h"
#include "nlp/tokenizer.h"
#include "util/strings.h"
#include "util/table_printer.h"

int main() {
  using namespace kbqa;
  auto experiment = bench::BuildStandardExperiment();
  const auto& kbqa = experiment->kbqa();

  struct ComplexCase {
    const char* question;
    const char* expected;  // gold value from the famous-entity wiring
    const char* paper_wa;  // Wolfram Alpha column in the paper
    const char* paper_ga;  // gAnswer column in the paper
  };
  const ComplexCase cases[] = {
      {"how many people live in the capital of japan", "13960000", "Y", "N"},
      {"when was barack obama's wife born", "1964", "Y", "N"},
      {"what are books written by author of harry potter",
       "the casual vacancy|harry potter", "N", "N"},
      {"what is the area of the capital of britain", "1572", "N", "N"},
      {"how large is the capital of germany", "891", "N", "N"},
      {"what instrument do members of coldplay play", "piano|guitar", "N",
       "N"},
      {"what is the birthday of the ceo of google", "1972", "N", "N"},
      {"in which country is the headquarter of google located",
       "united states", "N", "N"},
  };

  TablePrinter table("Table 15: complex question answering");
  table.SetHeader({"question", "KBQA", "answer", "Graph(gA fam.)",
                   "paper WA", "paper gA"});

  int kbqa_right = 0;
  for (const ComplexCase& c : cases) {
    core::ComplexAnswer answer = kbqa.AnswerComplex(c.question);
    bool ok = false;
    if (answer.answer.answered) {
      std::string got = nlp::NormalizeText(answer.answer.value);
      // Multi-valued expectations accept any listed alternative.
      for (const std::string& alt : Split(c.expected, '|')) {
        ok = ok || got == nlp::NormalizeText(alt);
      }
    }
    kbqa_right += ok;
    core::AnswerResult graph = experiment->graph_qa().Answer(c.question);
    bool graph_ok = false;
    if (graph.answered) {
      for (const std::string& alt : Split(c.expected, '|')) {
        graph_ok =
            graph_ok || nlp::NormalizeText(graph.value) == nlp::NormalizeText(alt);
      }
    }
    table.AddRow({c.question, ok ? "Y" : "N",
                  answer.answer.answered ? answer.answer.value : "-",
                  graph_ok ? "Y" : "N", c.paper_wa, c.paper_ga});

    std::printf("[chain] %s  =>", c.question);
    for (const std::string& step : answer.sequence) {
      std::printf("  [%s]", step.c_str());
    }
    std::printf("  (P(A)=%.3f)\n", answer.decomposition_probability);
  }

  table.Print(std::cout);
  std::printf("\nKBQA answered %d/8 (paper: 8/8; Wolfram Alpha 2/8; gAnswer "
              "0/8).\n",
              kbqa_right);
  bench::PrintPaperNote(
      "shape to check: KBQA answers (nearly) all 8 via decomposition; the "
      "graph family answers none of the nested ones.");
  return kbqa_right >= 6 ? 0 : 1;
}
