// Table 16 (§7.5): effectiveness of predicate expansion — templates and
// predicates learned for direct (length-1) predicates vs expanded (length
// 2..k) predicates. Paper: 467,393 templates / 246 predicates at length 1
// vs 26,658,962 / 2536 at length 2..k — a 57x template and 10.3x predicate
// boost. Also dumps the Table 17 case study (templates learned for
// marriage -> person -> name) and Table 18 (example expanded predicates).

#include <algorithm>
#include <iostream>
#include <map>
#include <vector>

#include "bench/bench_common.h"
#include "util/table_printer.h"

int main() {
  using namespace kbqa;
  auto experiment = bench::BuildStandardExperiment();
  const auto& store = experiment->kbqa().template_store();
  const auto& paths = experiment->kbqa().expanded_kb().paths();
  const auto& world = experiment->world();

  // Classify each learned template by the length of its argmax predicate,
  // and collect distinct predicates by length.
  size_t templates_len1 = 0, templates_expanded = 0;
  std::map<rdf::PathId, size_t> predicate_lengths;
  for (core::TemplateId t = 0; t < store.num_templates(); ++t) {
    auto best = store.Best(t);
    if (!best) continue;
    size_t length = paths.GetPath(best->path).size();
    predicate_lengths[best->path] = length;
    if (length == 1) {
      ++templates_len1;
    } else {
      ++templates_expanded;
    }
  }
  size_t preds_len1 = 0, preds_expanded = 0;
  for (const auto& [path, length] : predicate_lengths) {
    (void)path;
    if (length == 1) ++preds_len1;
    else ++preds_expanded;
  }

  TablePrinter table("Table 16: effectiveness of predicate expansion");
  table.SetHeader({"length", "#templates", "#predicates",
                   "paper #templates", "paper #predicates"});
  table.AddRow({"1", TablePrinter::Int(templates_len1),
                TablePrinter::Int(preds_len1), "467393", "246"});
  table.AddRow({"2 to k", TablePrinter::Int(templates_expanded),
                TablePrinter::Int(preds_expanded), "26658962", "2536"});
  table.AddRow(
      {"ratio",
       preds_len1 == 0 || templates_len1 == 0
           ? "-"
           : TablePrinter::Num(
                 static_cast<double>(templates_expanded) / templates_len1, 1),
       preds_len1 == 0
           ? "-"
           : TablePrinter::Num(
                 static_cast<double>(preds_expanded) / preds_len1, 1),
       "57.0", "10.3"});
  table.Print(std::cout);
  bench::PrintPaperNote(
      "shape to check: expansion multiplies both template and predicate "
      "coverage (most intents are NOT single edges — spouse, capital, ceo, "
      "members are all paths).");

  // ---- Table 17 case study: templates for marriage -> person -> name ----
  rdf::PredPath spouse_path;
  for (const char* pred : {"marriage", "person", "name"}) {
    auto id = world.kb.LookupPredicate(pred);
    if (id) spouse_path.push_back(*id);
  }
  auto spouse = paths.Lookup(spouse_path);
  std::printf("\nTable 17 case study: templates learned for marriage -> "
              "person -> name\n");
  if (spouse) {
    std::vector<std::pair<double, core::TemplateId>> hits;
    for (core::TemplateId t = 0; t < store.num_templates(); ++t) {
      for (const auto& entry : store.Distribution(t)) {
        if (entry.path == *spouse && entry.probability > 0.3) {
          hits.emplace_back(entry.probability, t);
        }
      }
    }
    std::sort(hits.rbegin(), hits.rend());
    size_t shown = 0;
    for (const auto& [prob, t] : hits) {
      std::printf("  P=%.2f  %s\n", prob, store.TemplateText(t).c_str());
      if (++shown == 8) break;
    }
    if (hits.empty()) std::printf("  (none learned at this scale)\n");
  }

  // ---- Table 18 case study: example expanded predicates ----
  std::printf("\nTable 18 case study: learned expanded predicates (length "
              ">= 2) with their intent semantics\n");
  size_t shown = 0;
  for (const auto& [path_id, length] : predicate_lengths) {
    if (length < 2) continue;
    // Recover the generating intent's keyword as the "semantic" column.
    std::string semantic = "-";
    for (const corpus::IntentSpec& intent : world.schema.intents()) {
      if (intent.path.size() != length) continue;
      rdf::PredPath resolved;
      for (const std::string& pred : intent.path) {
        auto id = world.kb.LookupPredicate(pred);
        if (id) resolved.push_back(*id);
      }
      if (resolved == paths.GetPath(path_id)) {
        semantic = intent.keyword;
        break;
      }
    }
    std::printf("  %-45s ~ %s\n", paths.ToString(path_id, world.kb).c_str(),
                semantic.c_str());
    if (++shown == 8) break;
  }
  return 0;
}
