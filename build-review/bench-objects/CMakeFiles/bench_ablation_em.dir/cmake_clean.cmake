file(REMOVE_RECURSE
  "../bench/bench_ablation_em"
  "../bench/bench_ablation_em.pdb"
  "CMakeFiles/bench_ablation_em.dir/bench_ablation_em.cpp.o"
  "CMakeFiles/bench_ablation_em.dir/bench_ablation_em.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_em.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
