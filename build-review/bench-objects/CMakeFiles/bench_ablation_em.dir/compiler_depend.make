# Empty compiler generated dependencies file for bench_ablation_em.
# This may be replaced when dependencies are built.
