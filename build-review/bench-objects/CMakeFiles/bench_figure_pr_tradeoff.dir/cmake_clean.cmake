file(REMOVE_RECURSE
  "../bench/bench_figure_pr_tradeoff"
  "../bench/bench_figure_pr_tradeoff.pdb"
  "CMakeFiles/bench_figure_pr_tradeoff.dir/bench_figure_pr_tradeoff.cpp.o"
  "CMakeFiles/bench_figure_pr_tradeoff.dir/bench_figure_pr_tradeoff.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure_pr_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
