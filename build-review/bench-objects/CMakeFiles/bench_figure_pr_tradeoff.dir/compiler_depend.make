# Empty compiler generated dependencies file for bench_figure_pr_tradeoff.
# This may be replaced when dependencies are built.
