file(REMOVE_RECURSE
  "../bench/bench_observability"
  "../bench/bench_observability.pdb"
  "CMakeFiles/bench_observability.dir/bench_observability.cpp.o"
  "CMakeFiles/bench_observability.dir/bench_observability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_observability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
