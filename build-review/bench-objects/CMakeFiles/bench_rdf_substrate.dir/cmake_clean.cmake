file(REMOVE_RECURSE
  "../bench/bench_rdf_substrate"
  "../bench/bench_rdf_substrate.pdb"
  "CMakeFiles/bench_rdf_substrate.dir/bench_rdf_substrate.cpp.o"
  "CMakeFiles/bench_rdf_substrate.dir/bench_rdf_substrate.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rdf_substrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
