# Empty dependencies file for bench_rdf_substrate.
# This may be replaced when dependencies are built.
