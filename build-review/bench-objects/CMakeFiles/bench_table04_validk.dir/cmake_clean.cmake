file(REMOVE_RECURSE
  "../bench/bench_table04_validk"
  "../bench/bench_table04_validk.pdb"
  "CMakeFiles/bench_table04_validk.dir/bench_table04_validk.cpp.o"
  "CMakeFiles/bench_table04_validk.dir/bench_table04_validk.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table04_validk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
