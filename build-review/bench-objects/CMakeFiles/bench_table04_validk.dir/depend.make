# Empty dependencies file for bench_table04_validk.
# This may be replaced when dependencies are built.
