file(REMOVE_RECURSE
  "../bench/bench_table06_uncertainty"
  "../bench/bench_table06_uncertainty.pdb"
  "CMakeFiles/bench_table06_uncertainty.dir/bench_table06_uncertainty.cpp.o"
  "CMakeFiles/bench_table06_uncertainty.dir/bench_table06_uncertainty.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table06_uncertainty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
