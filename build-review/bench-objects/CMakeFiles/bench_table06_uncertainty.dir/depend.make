# Empty dependencies file for bench_table06_uncertainty.
# This may be replaced when dependencies are built.
