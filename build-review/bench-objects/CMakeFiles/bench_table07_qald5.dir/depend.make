# Empty dependencies file for bench_table07_qald5.
# This may be replaced when dependencies are built.
