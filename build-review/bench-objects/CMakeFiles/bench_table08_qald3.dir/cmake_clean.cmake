file(REMOVE_RECURSE
  "../bench/bench_table08_qald3"
  "../bench/bench_table08_qald3.pdb"
  "CMakeFiles/bench_table08_qald3.dir/bench_table08_qald3.cpp.o"
  "CMakeFiles/bench_table08_qald3.dir/bench_table08_qald3.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table08_qald3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
