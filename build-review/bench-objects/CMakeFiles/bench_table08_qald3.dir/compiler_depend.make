# Empty compiler generated dependencies file for bench_table08_qald3.
# This may be replaced when dependencies are built.
