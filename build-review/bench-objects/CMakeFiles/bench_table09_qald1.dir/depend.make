# Empty dependencies file for bench_table09_qald1.
# This may be replaced when dependencies are built.
