file(REMOVE_RECURSE
  "../bench/bench_table10_webquestions"
  "../bench/bench_table10_webquestions.pdb"
  "CMakeFiles/bench_table10_webquestions.dir/bench_table10_webquestions.cpp.o"
  "CMakeFiles/bench_table10_webquestions.dir/bench_table10_webquestions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table10_webquestions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
