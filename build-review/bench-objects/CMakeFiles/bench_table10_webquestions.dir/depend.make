# Empty dependencies file for bench_table10_webquestions.
# This may be replaced when dependencies are built.
