file(REMOVE_RECURSE
  "../bench/bench_table11_hybrid"
  "../bench/bench_table11_hybrid.pdb"
  "CMakeFiles/bench_table11_hybrid.dir/bench_table11_hybrid.cpp.o"
  "CMakeFiles/bench_table11_hybrid.dir/bench_table11_hybrid.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table11_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
