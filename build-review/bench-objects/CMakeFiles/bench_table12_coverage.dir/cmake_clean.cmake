file(REMOVE_RECURSE
  "../bench/bench_table12_coverage"
  "../bench/bench_table12_coverage.pdb"
  "CMakeFiles/bench_table12_coverage.dir/bench_table12_coverage.cpp.o"
  "CMakeFiles/bench_table12_coverage.dir/bench_table12_coverage.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table12_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
