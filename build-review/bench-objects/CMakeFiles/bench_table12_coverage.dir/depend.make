# Empty dependencies file for bench_table12_coverage.
# This may be replaced when dependencies are built.
