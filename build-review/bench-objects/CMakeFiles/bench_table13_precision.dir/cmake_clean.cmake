file(REMOVE_RECURSE
  "../bench/bench_table13_precision"
  "../bench/bench_table13_precision.pdb"
  "CMakeFiles/bench_table13_precision.dir/bench_table13_precision.cpp.o"
  "CMakeFiles/bench_table13_precision.dir/bench_table13_precision.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table13_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
