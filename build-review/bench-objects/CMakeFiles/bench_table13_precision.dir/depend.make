# Empty dependencies file for bench_table13_precision.
# This may be replaced when dependencies are built.
