file(REMOVE_RECURSE
  "../bench/bench_table15_complex"
  "../bench/bench_table15_complex.pdb"
  "CMakeFiles/bench_table15_complex.dir/bench_table15_complex.cpp.o"
  "CMakeFiles/bench_table15_complex.dir/bench_table15_complex.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table15_complex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
