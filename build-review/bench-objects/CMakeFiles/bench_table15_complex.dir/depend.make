# Empty dependencies file for bench_table15_complex.
# This may be replaced when dependencies are built.
