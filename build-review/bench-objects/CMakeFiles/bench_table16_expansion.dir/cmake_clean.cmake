file(REMOVE_RECURSE
  "../bench/bench_table16_expansion"
  "../bench/bench_table16_expansion.pdb"
  "CMakeFiles/bench_table16_expansion.dir/bench_table16_expansion.cpp.o"
  "CMakeFiles/bench_table16_expansion.dir/bench_table16_expansion.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table16_expansion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
