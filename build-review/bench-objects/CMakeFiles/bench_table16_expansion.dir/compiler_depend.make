# Empty compiler generated dependencies file for bench_table16_expansion.
# This may be replaced when dependencies are built.
