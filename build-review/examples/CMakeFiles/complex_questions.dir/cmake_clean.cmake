file(REMOVE_RECURSE
  "CMakeFiles/complex_questions.dir/complex_questions.cpp.o"
  "CMakeFiles/complex_questions.dir/complex_questions.cpp.o.d"
  "complex_questions"
  "complex_questions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/complex_questions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
