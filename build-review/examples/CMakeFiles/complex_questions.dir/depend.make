# Empty dependencies file for complex_questions.
# This may be replaced when dependencies are built.
