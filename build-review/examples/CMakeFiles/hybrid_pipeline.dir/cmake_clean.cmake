file(REMOVE_RECURSE
  "CMakeFiles/hybrid_pipeline.dir/hybrid_pipeline.cpp.o"
  "CMakeFiles/hybrid_pipeline.dir/hybrid_pipeline.cpp.o.d"
  "hybrid_pipeline"
  "hybrid_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
