# Empty dependencies file for hybrid_pipeline.
# This may be replaced when dependencies are built.
