file(REMOVE_RECURSE
  "CMakeFiles/kbqa_repl.dir/kbqa_repl.cpp.o"
  "CMakeFiles/kbqa_repl.dir/kbqa_repl.cpp.o.d"
  "kbqa_repl"
  "kbqa_repl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kbqa_repl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
