# Empty compiler generated dependencies file for kbqa_repl.
# This may be replaced when dependencies are built.
