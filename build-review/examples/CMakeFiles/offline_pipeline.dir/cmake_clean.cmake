file(REMOVE_RECURSE
  "CMakeFiles/offline_pipeline.dir/offline_pipeline.cpp.o"
  "CMakeFiles/offline_pipeline.dir/offline_pipeline.cpp.o.d"
  "offline_pipeline"
  "offline_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offline_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
