# Empty dependencies file for offline_pipeline.
# This may be replaced when dependencies are built.
