
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/kbqa_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/corpus/CMakeFiles/kbqa_corpus.dir/DependInfo.cmake"
  "/root/repo/build-review/src/nlp/CMakeFiles/kbqa_nlp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/taxonomy/CMakeFiles/kbqa_taxonomy.dir/DependInfo.cmake"
  "/root/repo/build-review/src/rdf/CMakeFiles/kbqa_rdf.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/kbqa_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/kbqa_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
