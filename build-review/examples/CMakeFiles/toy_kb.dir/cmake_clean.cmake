file(REMOVE_RECURSE
  "CMakeFiles/toy_kb.dir/toy_kb.cpp.o"
  "CMakeFiles/toy_kb.dir/toy_kb.cpp.o.d"
  "toy_kb"
  "toy_kb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toy_kb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
