# Empty compiler generated dependencies file for toy_kb.
# This may be replaced when dependencies are built.
