# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-review/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("obs")
subdirs("util")
subdirs("rdf")
subdirs("taxonomy")
subdirs("nlp")
subdirs("corpus")
subdirs("core")
subdirs("baselines")
subdirs("eval")
