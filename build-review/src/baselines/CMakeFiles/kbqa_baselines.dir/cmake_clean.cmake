file(REMOVE_RECURSE
  "CMakeFiles/kbqa_baselines.dir/alignment_qa.cc.o"
  "CMakeFiles/kbqa_baselines.dir/alignment_qa.cc.o.d"
  "CMakeFiles/kbqa_baselines.dir/graph_qa.cc.o"
  "CMakeFiles/kbqa_baselines.dir/graph_qa.cc.o.d"
  "CMakeFiles/kbqa_baselines.dir/keyword_qa.cc.o"
  "CMakeFiles/kbqa_baselines.dir/keyword_qa.cc.o.d"
  "CMakeFiles/kbqa_baselines.dir/rule_qa.cc.o"
  "CMakeFiles/kbqa_baselines.dir/rule_qa.cc.o.d"
  "CMakeFiles/kbqa_baselines.dir/synonym_lexicon.cc.o"
  "CMakeFiles/kbqa_baselines.dir/synonym_lexicon.cc.o.d"
  "CMakeFiles/kbqa_baselines.dir/synonym_qa.cc.o"
  "CMakeFiles/kbqa_baselines.dir/synonym_qa.cc.o.d"
  "libkbqa_baselines.a"
  "libkbqa_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kbqa_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
