file(REMOVE_RECURSE
  "libkbqa_baselines.a"
)
