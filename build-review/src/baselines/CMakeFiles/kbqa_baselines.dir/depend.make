# Empty dependencies file for kbqa_baselines.
# This may be replaced when dependencies are built.
