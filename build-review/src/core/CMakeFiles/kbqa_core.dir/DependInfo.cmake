
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/decomposer.cc" "src/core/CMakeFiles/kbqa_core.dir/decomposer.cc.o" "gcc" "src/core/CMakeFiles/kbqa_core.dir/decomposer.cc.o.d"
  "/root/repo/src/core/em_learner.cc" "src/core/CMakeFiles/kbqa_core.dir/em_learner.cc.o" "gcc" "src/core/CMakeFiles/kbqa_core.dir/em_learner.cc.o.d"
  "/root/repo/src/core/ev_extraction.cc" "src/core/CMakeFiles/kbqa_core.dir/ev_extraction.cc.o" "gcc" "src/core/CMakeFiles/kbqa_core.dir/ev_extraction.cc.o.d"
  "/root/repo/src/core/kbqa_system.cc" "src/core/CMakeFiles/kbqa_core.dir/kbqa_system.cc.o" "gcc" "src/core/CMakeFiles/kbqa_core.dir/kbqa_system.cc.o.d"
  "/root/repo/src/core/model_io.cc" "src/core/CMakeFiles/kbqa_core.dir/model_io.cc.o" "gcc" "src/core/CMakeFiles/kbqa_core.dir/model_io.cc.o.d"
  "/root/repo/src/core/online.cc" "src/core/CMakeFiles/kbqa_core.dir/online.cc.o" "gcc" "src/core/CMakeFiles/kbqa_core.dir/online.cc.o.d"
  "/root/repo/src/core/template_store.cc" "src/core/CMakeFiles/kbqa_core.dir/template_store.cc.o" "gcc" "src/core/CMakeFiles/kbqa_core.dir/template_store.cc.o.d"
  "/root/repo/src/core/variants.cc" "src/core/CMakeFiles/kbqa_core.dir/variants.cc.o" "gcc" "src/core/CMakeFiles/kbqa_core.dir/variants.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/corpus/CMakeFiles/kbqa_corpus.dir/DependInfo.cmake"
  "/root/repo/build-review/src/nlp/CMakeFiles/kbqa_nlp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/taxonomy/CMakeFiles/kbqa_taxonomy.dir/DependInfo.cmake"
  "/root/repo/build-review/src/rdf/CMakeFiles/kbqa_rdf.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/kbqa_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/kbqa_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
