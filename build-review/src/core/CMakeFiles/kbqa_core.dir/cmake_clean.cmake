file(REMOVE_RECURSE
  "CMakeFiles/kbqa_core.dir/decomposer.cc.o"
  "CMakeFiles/kbqa_core.dir/decomposer.cc.o.d"
  "CMakeFiles/kbqa_core.dir/em_learner.cc.o"
  "CMakeFiles/kbqa_core.dir/em_learner.cc.o.d"
  "CMakeFiles/kbqa_core.dir/ev_extraction.cc.o"
  "CMakeFiles/kbqa_core.dir/ev_extraction.cc.o.d"
  "CMakeFiles/kbqa_core.dir/kbqa_system.cc.o"
  "CMakeFiles/kbqa_core.dir/kbqa_system.cc.o.d"
  "CMakeFiles/kbqa_core.dir/model_io.cc.o"
  "CMakeFiles/kbqa_core.dir/model_io.cc.o.d"
  "CMakeFiles/kbqa_core.dir/online.cc.o"
  "CMakeFiles/kbqa_core.dir/online.cc.o.d"
  "CMakeFiles/kbqa_core.dir/template_store.cc.o"
  "CMakeFiles/kbqa_core.dir/template_store.cc.o.d"
  "CMakeFiles/kbqa_core.dir/variants.cc.o"
  "CMakeFiles/kbqa_core.dir/variants.cc.o.d"
  "libkbqa_core.a"
  "libkbqa_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kbqa_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
