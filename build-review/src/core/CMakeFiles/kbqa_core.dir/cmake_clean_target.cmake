file(REMOVE_RECURSE
  "libkbqa_core.a"
)
