# Empty dependencies file for kbqa_core.
# This may be replaced when dependencies are built.
