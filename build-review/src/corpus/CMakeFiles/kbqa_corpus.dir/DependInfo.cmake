
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/corpus/corpus_io.cc" "src/corpus/CMakeFiles/kbqa_corpus.dir/corpus_io.cc.o" "gcc" "src/corpus/CMakeFiles/kbqa_corpus.dir/corpus_io.cc.o.d"
  "/root/repo/src/corpus/name_generator.cc" "src/corpus/CMakeFiles/kbqa_corpus.dir/name_generator.cc.o" "gcc" "src/corpus/CMakeFiles/kbqa_corpus.dir/name_generator.cc.o.d"
  "/root/repo/src/corpus/qa_generator.cc" "src/corpus/CMakeFiles/kbqa_corpus.dir/qa_generator.cc.o" "gcc" "src/corpus/CMakeFiles/kbqa_corpus.dir/qa_generator.cc.o.d"
  "/root/repo/src/corpus/schema.cc" "src/corpus/CMakeFiles/kbqa_corpus.dir/schema.cc.o" "gcc" "src/corpus/CMakeFiles/kbqa_corpus.dir/schema.cc.o.d"
  "/root/repo/src/corpus/world_generator.cc" "src/corpus/CMakeFiles/kbqa_corpus.dir/world_generator.cc.o" "gcc" "src/corpus/CMakeFiles/kbqa_corpus.dir/world_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/rdf/CMakeFiles/kbqa_rdf.dir/DependInfo.cmake"
  "/root/repo/build-review/src/taxonomy/CMakeFiles/kbqa_taxonomy.dir/DependInfo.cmake"
  "/root/repo/build-review/src/nlp/CMakeFiles/kbqa_nlp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/kbqa_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/kbqa_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
