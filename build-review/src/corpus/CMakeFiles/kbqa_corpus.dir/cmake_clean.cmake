file(REMOVE_RECURSE
  "CMakeFiles/kbqa_corpus.dir/corpus_io.cc.o"
  "CMakeFiles/kbqa_corpus.dir/corpus_io.cc.o.d"
  "CMakeFiles/kbqa_corpus.dir/name_generator.cc.o"
  "CMakeFiles/kbqa_corpus.dir/name_generator.cc.o.d"
  "CMakeFiles/kbqa_corpus.dir/qa_generator.cc.o"
  "CMakeFiles/kbqa_corpus.dir/qa_generator.cc.o.d"
  "CMakeFiles/kbqa_corpus.dir/schema.cc.o"
  "CMakeFiles/kbqa_corpus.dir/schema.cc.o.d"
  "CMakeFiles/kbqa_corpus.dir/world_generator.cc.o"
  "CMakeFiles/kbqa_corpus.dir/world_generator.cc.o.d"
  "libkbqa_corpus.a"
  "libkbqa_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kbqa_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
