file(REMOVE_RECURSE
  "libkbqa_corpus.a"
)
