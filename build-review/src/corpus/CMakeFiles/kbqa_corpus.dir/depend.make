# Empty dependencies file for kbqa_corpus.
# This may be replaced when dependencies are built.
