file(REMOVE_RECURSE
  "CMakeFiles/kbqa_eval.dir/experiment.cc.o"
  "CMakeFiles/kbqa_eval.dir/experiment.cc.o.d"
  "CMakeFiles/kbqa_eval.dir/report.cc.o"
  "CMakeFiles/kbqa_eval.dir/report.cc.o.d"
  "CMakeFiles/kbqa_eval.dir/runner.cc.o"
  "CMakeFiles/kbqa_eval.dir/runner.cc.o.d"
  "libkbqa_eval.a"
  "libkbqa_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kbqa_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
