file(REMOVE_RECURSE
  "libkbqa_eval.a"
)
