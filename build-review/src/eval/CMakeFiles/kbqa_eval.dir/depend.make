# Empty dependencies file for kbqa_eval.
# This may be replaced when dependencies are built.
