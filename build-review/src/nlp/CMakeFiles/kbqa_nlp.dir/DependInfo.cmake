
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nlp/ner.cc" "src/nlp/CMakeFiles/kbqa_nlp.dir/ner.cc.o" "gcc" "src/nlp/CMakeFiles/kbqa_nlp.dir/ner.cc.o.d"
  "/root/repo/src/nlp/pattern.cc" "src/nlp/CMakeFiles/kbqa_nlp.dir/pattern.cc.o" "gcc" "src/nlp/CMakeFiles/kbqa_nlp.dir/pattern.cc.o.d"
  "/root/repo/src/nlp/question_classifier.cc" "src/nlp/CMakeFiles/kbqa_nlp.dir/question_classifier.cc.o" "gcc" "src/nlp/CMakeFiles/kbqa_nlp.dir/question_classifier.cc.o.d"
  "/root/repo/src/nlp/stopwords.cc" "src/nlp/CMakeFiles/kbqa_nlp.dir/stopwords.cc.o" "gcc" "src/nlp/CMakeFiles/kbqa_nlp.dir/stopwords.cc.o.d"
  "/root/repo/src/nlp/tokenizer.cc" "src/nlp/CMakeFiles/kbqa_nlp.dir/tokenizer.cc.o" "gcc" "src/nlp/CMakeFiles/kbqa_nlp.dir/tokenizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/rdf/CMakeFiles/kbqa_rdf.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/kbqa_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/kbqa_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
