file(REMOVE_RECURSE
  "CMakeFiles/kbqa_nlp.dir/ner.cc.o"
  "CMakeFiles/kbqa_nlp.dir/ner.cc.o.d"
  "CMakeFiles/kbqa_nlp.dir/pattern.cc.o"
  "CMakeFiles/kbqa_nlp.dir/pattern.cc.o.d"
  "CMakeFiles/kbqa_nlp.dir/question_classifier.cc.o"
  "CMakeFiles/kbqa_nlp.dir/question_classifier.cc.o.d"
  "CMakeFiles/kbqa_nlp.dir/stopwords.cc.o"
  "CMakeFiles/kbqa_nlp.dir/stopwords.cc.o.d"
  "CMakeFiles/kbqa_nlp.dir/tokenizer.cc.o"
  "CMakeFiles/kbqa_nlp.dir/tokenizer.cc.o.d"
  "libkbqa_nlp.a"
  "libkbqa_nlp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kbqa_nlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
