file(REMOVE_RECURSE
  "libkbqa_nlp.a"
)
