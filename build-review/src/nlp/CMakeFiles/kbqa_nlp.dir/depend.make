# Empty dependencies file for kbqa_nlp.
# This may be replaced when dependencies are built.
