file(REMOVE_RECURSE
  "CMakeFiles/kbqa_obs.dir/metrics.cc.o"
  "CMakeFiles/kbqa_obs.dir/metrics.cc.o.d"
  "CMakeFiles/kbqa_obs.dir/trace.cc.o"
  "CMakeFiles/kbqa_obs.dir/trace.cc.o.d"
  "libkbqa_obs.a"
  "libkbqa_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kbqa_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
