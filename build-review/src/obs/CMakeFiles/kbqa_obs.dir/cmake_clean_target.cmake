file(REMOVE_RECURSE
  "libkbqa_obs.a"
)
