# Empty dependencies file for kbqa_obs.
# This may be replaced when dependencies are built.
