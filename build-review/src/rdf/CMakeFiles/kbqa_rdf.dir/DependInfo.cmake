
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rdf/dictionary.cc" "src/rdf/CMakeFiles/kbqa_rdf.dir/dictionary.cc.o" "gcc" "src/rdf/CMakeFiles/kbqa_rdf.dir/dictionary.cc.o.d"
  "/root/repo/src/rdf/expanded_predicate.cc" "src/rdf/CMakeFiles/kbqa_rdf.dir/expanded_predicate.cc.o" "gcc" "src/rdf/CMakeFiles/kbqa_rdf.dir/expanded_predicate.cc.o.d"
  "/root/repo/src/rdf/knowledge_base.cc" "src/rdf/CMakeFiles/kbqa_rdf.dir/knowledge_base.cc.o" "gcc" "src/rdf/CMakeFiles/kbqa_rdf.dir/knowledge_base.cc.o.d"
  "/root/repo/src/rdf/ntriples.cc" "src/rdf/CMakeFiles/kbqa_rdf.dir/ntriples.cc.o" "gcc" "src/rdf/CMakeFiles/kbqa_rdf.dir/ntriples.cc.o.d"
  "/root/repo/src/rdf/query.cc" "src/rdf/CMakeFiles/kbqa_rdf.dir/query.cc.o" "gcc" "src/rdf/CMakeFiles/kbqa_rdf.dir/query.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/util/CMakeFiles/kbqa_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/kbqa_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
