file(REMOVE_RECURSE
  "CMakeFiles/kbqa_rdf.dir/dictionary.cc.o"
  "CMakeFiles/kbqa_rdf.dir/dictionary.cc.o.d"
  "CMakeFiles/kbqa_rdf.dir/expanded_predicate.cc.o"
  "CMakeFiles/kbqa_rdf.dir/expanded_predicate.cc.o.d"
  "CMakeFiles/kbqa_rdf.dir/knowledge_base.cc.o"
  "CMakeFiles/kbqa_rdf.dir/knowledge_base.cc.o.d"
  "CMakeFiles/kbqa_rdf.dir/ntriples.cc.o"
  "CMakeFiles/kbqa_rdf.dir/ntriples.cc.o.d"
  "CMakeFiles/kbqa_rdf.dir/query.cc.o"
  "CMakeFiles/kbqa_rdf.dir/query.cc.o.d"
  "libkbqa_rdf.a"
  "libkbqa_rdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kbqa_rdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
