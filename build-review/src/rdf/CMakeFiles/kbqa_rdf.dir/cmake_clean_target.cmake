file(REMOVE_RECURSE
  "libkbqa_rdf.a"
)
