# Empty dependencies file for kbqa_rdf.
# This may be replaced when dependencies are built.
