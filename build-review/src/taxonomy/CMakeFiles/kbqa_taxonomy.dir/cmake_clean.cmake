file(REMOVE_RECURSE
  "CMakeFiles/kbqa_taxonomy.dir/taxonomy.cc.o"
  "CMakeFiles/kbqa_taxonomy.dir/taxonomy.cc.o.d"
  "libkbqa_taxonomy.a"
  "libkbqa_taxonomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kbqa_taxonomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
