file(REMOVE_RECURSE
  "libkbqa_taxonomy.a"
)
