# Empty dependencies file for kbqa_taxonomy.
# This may be replaced when dependencies are built.
