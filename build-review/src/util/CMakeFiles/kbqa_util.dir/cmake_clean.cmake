file(REMOVE_RECURSE
  "CMakeFiles/kbqa_util.dir/rng.cc.o"
  "CMakeFiles/kbqa_util.dir/rng.cc.o.d"
  "CMakeFiles/kbqa_util.dir/status.cc.o"
  "CMakeFiles/kbqa_util.dir/status.cc.o.d"
  "CMakeFiles/kbqa_util.dir/strings.cc.o"
  "CMakeFiles/kbqa_util.dir/strings.cc.o.d"
  "CMakeFiles/kbqa_util.dir/table_printer.cc.o"
  "CMakeFiles/kbqa_util.dir/table_printer.cc.o.d"
  "CMakeFiles/kbqa_util.dir/thread_pool.cc.o"
  "CMakeFiles/kbqa_util.dir/thread_pool.cc.o.d"
  "libkbqa_util.a"
  "libkbqa_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kbqa_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
