file(REMOVE_RECURSE
  "libkbqa_util.a"
)
