# Empty dependencies file for kbqa_util.
# This may be replaced when dependencies are built.
