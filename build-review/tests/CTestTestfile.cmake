# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/obs_test[1]_include.cmake")
include("/root/repo/build-review/tests/util_test[1]_include.cmake")
include("/root/repo/build-review/tests/rdf_test[1]_include.cmake")
include("/root/repo/build-review/tests/taxonomy_test[1]_include.cmake")
include("/root/repo/build-review/tests/nlp_test[1]_include.cmake")
include("/root/repo/build-review/tests/corpus_test[1]_include.cmake")
include("/root/repo/build-review/tests/core_test[1]_include.cmake")
include("/root/repo/build-review/tests/decomposer_test[1]_include.cmake")
include("/root/repo/build-review/tests/eval_test[1]_include.cmake")
include("/root/repo/build-review/tests/integration_test[1]_include.cmake")
include("/root/repo/build-review/tests/baselines_test[1]_include.cmake")
include("/root/repo/build-review/tests/extensions_test[1]_include.cmake")
include("/root/repo/build-review/tests/property_test[1]_include.cmake")
include("/root/repo/build-review/tests/edge_case_test[1]_include.cmake")
include("/root/repo/build-review/tests/io_test[1]_include.cmake")
include("/root/repo/build-review/tests/consistency_test[1]_include.cmake")
include("/root/repo/build-review/tests/parallel_test[1]_include.cmake")
