# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/rdf_test[1]_include.cmake")
include("/root/repo/build/tests/taxonomy_test[1]_include.cmake")
include("/root/repo/build/tests/nlp_test[1]_include.cmake")
include("/root/repo/build/tests/corpus_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/decomposer_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/edge_case_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/consistency_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_test[1]_include.cmake")
