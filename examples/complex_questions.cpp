// Complex-question walkthrough (Sec 5 of the paper): train a KBQA instance
// and decompose nested questions into BFQ chains, showing the chosen
// decomposition, its probability P(A), and every intermediate answer.
//
// Run: ./build/examples/complex_questions

#include <cstdio>
#include <string>

#include "core/kbqa_system.h"
#include "corpus/qa_generator.h"
#include "corpus/world_generator.h"
#include "nlp/tokenizer.h"
#include "util/strings.h"

int main() {
  using namespace kbqa;

  corpus::WorldConfig world_config;
  world_config.schema.scale = 0.25;
  corpus::World world = corpus::GenerateWorld(world_config);
  corpus::QaGenConfig corpus_config;
  corpus_config.num_pairs = 25000;
  corpus::QaCorpus corpus = corpus::GenerateTrainingCorpus(world, corpus_config);

  core::KbqaSystem kbqa(&world);
  Status status = kbqa.Train(corpus);
  if (!status.ok()) {
    std::printf("training failed: %s\n", status.ToString().c_str());
    return 1;
  }

  const char* questions[] = {
      "when was barack obama's wife born",
      "how many people live in the capital of japan",
      "what is the area of the capital of britain",
      "what is the birthday of the ceo of google",
      "in which country is the headquarter of google located",
      "what instrument do members of coldplay play",
      // A plain BFQ: the decomposer must recognize it as primitive.
      "when was barack obama born",
  };

  for (const char* question : questions) {
    core::ComplexAnswer answer = kbqa.AnswerComplex(question);
    std::printf("\nQ: %s\n", question);
    std::printf("  decomposition (P(A) = %.3f):\n",
                answer.decomposition_probability);

    // Re-walk the chain to display each intermediate answer.
    std::string carry;
    for (size_t i = 0; i < answer.sequence.size(); ++i) {
      std::string materialized = answer.sequence[i];
      if (i > 0) materialized = ReplaceAll(materialized, "$e", carry);
      core::AnswerResult step = kbqa.Answer(materialized);
      std::printf("    %zu. %-48s => %s\n", i + 1, answer.sequence[i].c_str(),
                  step.answered ? step.value.c_str() : "<no answer>");
      if (!step.answered) break;
      carry = step.value;
    }
    std::printf("  final: %s\n",
                answer.answer.answered ? answer.answer.value.c_str()
                                       : "<no answer>");
  }
  return 0;
}
