// Hybrid-QA pipeline (Sec 7.3.1 / Table 11): compose KBQA with a fallback
// baseline through the QaSystemInterface, run a QALD-style benchmark, and
// print the paper's effectiveness metrics for each configuration.
//
// Run: ./build/examples/hybrid_pipeline

#include <cstdio>
#include <iostream>

#include "core/qa_interface.h"
#include "eval/experiment.h"
#include "eval/runner.h"
#include "util/table_printer.h"

int main() {
  using namespace kbqa;

  eval::ExperimentConfig config = eval::ExperimentConfig::Standard();
  config.corpus.num_pairs = 30000;  // example-sized training run
  auto built = eval::Experiment::Build(config);
  if (!built.ok()) {
    std::printf("experiment build failed: %s\n",
                built.status().ToString().c_str());
    return 1;
  }
  const eval::Experiment& experiment = *built.value();

  corpus::BenchmarkSet qald = experiment.MakeQald3();
  std::printf("benchmark: %s (%zu questions, %zu BFQs)\n\n",
              qald.name.c_str(), qald.questions.size(), qald.num_bfq);

  TablePrinter table("Hybrid pipeline: KBQA answers BFQs, fallback handles the rest");
  table.SetHeader({"system", "#pro", "#ri", "R", "P", "avg ms"});
  auto add = [&](const std::string& name,
                 const core::QaSystemInterface& system) {
    eval::RunResult run = eval::RunBenchmark(system, qald);
    table.AddRow({name, TablePrinter::Int(run.counts.pro),
                  TablePrinter::Int(run.counts.ri),
                  TablePrinter::Num(run.counts.R(), 2),
                  TablePrinter::Num(run.counts.P(), 2),
                  TablePrinter::Num(run.avg_latency_ms(), 3)});
  };

  add("KBQA alone", experiment.kbqa());
  add("Keyword alone", experiment.keyword_qa());
  core::HybridSystem hybrid(&experiment.kbqa(), &experiment.keyword_qa());
  add("KBQA + Keyword (hybrid)", hybrid);
  table.Print(std::cout);

  // Show the division of labor on two concrete questions.
  std::printf("\ndivision of labor:\n");
  for (const char* q : {"what is the population of honolulu",
                        "which city has the largest population"}) {
    core::AnswerResult from_kbqa = experiment.kbqa().Answer(q);
    core::AnswerResult from_hybrid = hybrid.Answer(q);
    std::printf("  Q: %-44s kbqa=%-12s hybrid=%s\n", q,
                from_kbqa.answered ? from_kbqa.value.c_str() : "<declined>",
                from_hybrid.answered ? from_hybrid.value.c_str()
                                     : "<declined>");
  }
  return 0;
}
