// Interactive KBQA shell: trains (or loads a cached model), then answers
// questions from stdin. Shows the full public surface: BFQ answering with
// the emitted structured query, complex-question decomposition, question
// variants (ranking/comparison/listing), and model persistence.
//
// Run:  ./build/examples/kbqa_repl            (trains, caches the model)
//       echo "who is the wife of barack obama" | ./build/examples/kbqa_repl

#include <cstdio>
#include <iostream>
#include <string>

#include "core/kbqa_system.h"
#include "corpus/qa_generator.h"
#include "corpus/world_generator.h"
#include "util/timer.h"

namespace {

constexpr const char* kModelCache = "/tmp/kbqa_repl_model.bin";

void AnswerOne(const kbqa::core::KbqaSystem& kbqa, const std::string& line,
               bool complex_enabled) {
  using namespace kbqa;

  // 1. Variants (ranking / comparison / listing).
  core::AnswerResult variant = kbqa.AnswerVariant(line);
  if (variant.answered) {
    std::printf("  -> %s   [variant over %s]\n", variant.value.c_str(),
                variant.predicate.c_str());
    return;
  }

  // 2. Full pipeline (decomposition + BFQ inference).
  if (complex_enabled) {
    core::ComplexAnswer complex = kbqa.AnswerComplex(line);
    if (complex.answer.answered) {
      std::printf("  -> %s   [predicate: %s, score %.4f]\n",
                  complex.answer.value.c_str(),
                  complex.answer.predicate.c_str(), complex.answer.score);
      if (complex.sequence.size() > 1) {
        std::printf("     decomposition:");
        for (const std::string& step : complex.sequence) {
          std::printf("  [%s]", step.c_str());
        }
        std::printf("\n");
      }
      if (!complex.answer.sparql.empty()) {
        std::printf("     query: %s\n", complex.answer.sparql.c_str());
      }
      return;
    }
  } else {
    core::AnswerResult direct = kbqa.Answer(line);
    if (direct.answered) {
      std::printf("  -> %s   [predicate: %s]\n", direct.value.c_str(),
                  direct.predicate.c_str());
      return;
    }
  }
  std::printf("  -> (no answer — likely not a binary factoid question)\n");
}

}  // namespace

int main() {
  using namespace kbqa;

  corpus::WorldConfig world_config;
  world_config.schema.scale = 0.5;
  corpus::World world = corpus::GenerateWorld(world_config);
  core::KbqaSystem kbqa(&world);

  // Try the cached model first; fall back to full training. Note the cache
  // only restores BFQ answering — complex questions need the corpus
  // pattern index, so we retrain when interactive exploration wants them.
  bool complex_enabled = true;
  Timer timer;
  corpus::QaGenConfig corpus_config;
  corpus_config.num_pairs = 40000;
  corpus::QaCorpus corpus = corpus::GenerateTrainingCorpus(world, corpus_config);
  Status status = kbqa.Train(corpus);
  if (!status.ok()) {
    std::printf("training failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("trained in %.1fs (%zu templates); model cached to %s\n",
              timer.ElapsedSeconds(),
              kbqa.template_store().num_templates(), kModelCache);
  if (!kbqa.SaveModel(kModelCache).ok()) {
    std::printf("(model cache write failed — continuing)\n");
  }

  std::printf(
      "\nKBQA shell. Try:\n"
      "  who is the wife of barack obama\n"
      "  when was barack obama's wife born\n"
      "  which city has the 3rd largest population\n"
      "  list cities ordered by population\n"
      "  quit\n\n");

  std::string line;
  while (std::printf("kbqa> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    if (line == "quit" || line == "exit") break;
    if (line.empty()) continue;
    AnswerOne(kbqa, line, complex_enabled);
  }
  std::printf("\nbye.\n");
  return 0;
}
