// File-based offline pipeline — the workflow a team operating KBQA on real
// dumps would run:
//
//   1. obtain an RDF dump (here: generated, exported to N-Triples)
//   2. obtain a QA corpus (here: generated, exported to TSV)
//   3. import both from disk
//   4. run predicate expansion with the *disk-based* §6.2 BFS
//   5. train, persist the model, answer from the reloaded model
//
// Run: ./build/examples/offline_pipeline

#include <cstdio>
#include <string>

#include "core/kbqa_system.h"
#include "corpus/corpus_io.h"
#include "corpus/qa_generator.h"
#include "corpus/world_generator.h"
#include "rdf/expanded_predicate.h"
#include "rdf/ntriples.h"
#include "util/timer.h"

int main() {
  using namespace kbqa;
  const std::string kb_path = "/tmp/kbqa_pipeline_kb.nt";
  const std::string corpus_path = "/tmp/kbqa_pipeline_corpus.tsv";
  const std::string model_path = "/tmp/kbqa_pipeline_model.bin";

  // ---- 1+2: produce the on-disk artifacts (stand-ins for real dumps) ----
  corpus::WorldConfig world_config;
  world_config.schema.scale = 0.15;
  corpus::World world = corpus::GenerateWorld(world_config);
  corpus::QaGenConfig corpus_config;
  corpus_config.num_pairs = 10000;
  corpus::QaCorpus generated =
      corpus::GenerateTrainingCorpus(world, corpus_config);

  Status status = rdf::ExportNTriples(world.kb, kb_path);
  if (!status.ok()) {
    std::printf("export failed: %s\n", status.ToString().c_str());
    return 1;
  }
  status = corpus::ExportQaTsv(generated, corpus_path);
  if (!status.ok()) {
    std::printf("export failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%zu triples) and %s (%zu QA pairs)\n",
              kb_path.c_str(), world.kb.num_triples(), corpus_path.c_str(),
              generated.size());

  // ---- 3: import from disk (gold annotations are gone, as in real life) --
  auto corpus = corpus::ImportQaTsv(corpus_path);
  if (!corpus.ok()) {
    std::printf("corpus import failed: %s\n",
                corpus.status().ToString().c_str());
    return 1;
  }

  // ---- 4: disk-based predicate expansion (§6.2, the 1.1 TB codepath) ----
  Timer timer;
  rdf::ExpansionOptions expansion;
  auto disk_ekb = rdf::ExpandedKb::BuildFromDisk(
      world.kb, kb_path, world.kb.AllEntities(), world.name_like, expansion);
  if (!disk_ekb.ok()) {
    std::printf("disk expansion failed: %s\n",
                disk_ekb.status().ToString().c_str());
    return 1;
  }
  std::printf("disk-based BFS: %zu expanded triples in %.1fs (3 scans of "
              "the on-disk KB)\n",
              disk_ekb.value().num_triples(), timer.ElapsedSeconds());

  // ---- 5: train, persist, answer from the reloaded artifact ----
  timer.Reset();
  core::KbqaSystem trainer(&world);
  status = trainer.Train(corpus.value());
  if (!status.ok()) {
    std::printf("training failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("trained from imported corpus in %.1fs (%zu templates)\n",
              timer.ElapsedSeconds(),
              trainer.template_store().num_templates());
  if (!trainer.SaveModel(model_path).ok()) {
    std::printf("model save failed\n");
    return 1;
  }

  core::KbqaSystem server(&world);
  if (!server.LoadModel(model_path).ok()) {
    std::printf("model load failed\n");
    return 1;
  }
  for (const char* q : {"how many people are there in honolulu",
                        "who is the wife of barack obama",
                        "what is the capital of germany"}) {
    core::AnswerResult answer = server.Answer(q);
    std::printf("  Q: %-42s A: %s\n", q,
                answer.answered ? answer.value.c_str() : "<no answer>");
  }
  std::printf("pipeline complete.\n");
  return 0;
}
