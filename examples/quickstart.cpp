// Quickstart: build a synthetic world, train KBQA on a generated QA corpus,
// and ask the paper's running example questions (§1, Table 1).
//
// Run: ./build/examples/quickstart

#include <cstdio>
#include <string>

#include "core/kbqa_system.h"
#include "corpus/qa_generator.h"
#include "corpus/world_generator.h"
#include "util/timer.h"

int main() {
  using namespace kbqa;

  // 1. Generate the world: RDF KB + taxonomy + infobox (stand-ins for
  //    Freebase/DBpedia + Probase + Wikipedia).
  std::printf("generating world...\n");
  corpus::WorldConfig world_config;
  world_config.schema.scale = 0.25;
  corpus::World world = corpus::GenerateWorld(world_config);
  std::printf("  %zu entities, %zu predicates, %zu triples, %zu categories\n",
              world.kb.num_entities(), world.kb.num_predicates(),
              world.kb.num_triples(), world.taxonomy.num_categories());

  // 2. Generate a community-QA training corpus (Yahoo! Answers stand-in).
  corpus::QaGenConfig corpus_config;
  corpus_config.num_pairs = 20000;
  corpus::QaCorpus corpus = corpus::GenerateTrainingCorpus(world, corpus_config);
  std::printf("  %zu QA pairs, e.g.\n    Q: %s\n    A: %s\n", corpus.size(),
              corpus.pairs[0].question.c_str(), corpus.pairs[0].answer.c_str());

  // 3. Train: predicate expansion + EV extraction + EM learning of P(p|t).
  std::printf("training (offline procedure)...\n");
  Timer timer;
  core::KbqaSystem kbqa(&world);
  Status status = kbqa.Train(corpus);
  if (!status.ok()) {
    std::printf("training failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf(
      "  trained in %.1fs: %zu templates, %zu predicates, %d EM iterations\n",
      timer.ElapsedSeconds(), kbqa.template_store().num_templates(),
      kbqa.em_stats().num_predicates, kbqa.em_stats().iterations);

  // 4. Ask the paper's questions.
  const char* bfqs[] = {
      "how many people are there in honolulu",   // (a) of Table 1
      "what is the population of honolulu",      // (b)
      "what is the total number of people in honolulu",  // (c)
      "when was barack obama born",              // (d)
      "who is the wife of barack obama",          // (e)
      "what is the capital of japan",
      "where is the headquarter of google",
  };
  std::printf("\nbinary factoid questions:\n");
  for (const char* q : bfqs) {
    core::AnswerResult answer = kbqa.Answer(q);
    std::printf("  Q: %s\n  A: %s   (predicate: %s, score %.4f)\n", q,
                answer.answered ? answer.value.c_str() : "<no answer>",
                answer.predicate.c_str(), answer.score);
  }

  const char* complex_questions[] = {
      "when was barack obama 's wife born",       // (f) of Table 1
      "how many people live in the capital of japan",
  };
  std::printf("\ncomplex questions:\n");
  for (const char* q : complex_questions) {
    core::ComplexAnswer complex = kbqa.AnswerComplex(q);
    std::printf("  Q: %s\n  A: %s   (P(A)=%.3f; chain:", q,
                complex.answer.answered ? complex.answer.value.c_str()
                                        : "<no answer>",
                complex.decomposition_probability);
    for (const std::string& step : complex.sequence) {
      std::printf(" [%s]", step.c_str());
    }
    std::printf(")\n");
  }
  return 0;
}
