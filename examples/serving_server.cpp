// A complete serving process with the observability stack wired in: the
// batched serve::Server front door, a request-scoped wide event per
// terminal outcome, the SLO burn-rate monitor, and the pull exposition
// endpoints (/metricsz /statusz /eventz /slo) on a local port.
//
// Run:  ./build/examples/serving_server [port]          (default: ephemeral)
//       echo "who is the wife of barack obama" | ./build/examples/serving_server
//
// Questions arrive on stdin, one per line; each is answered through the
// server (so it pays admission, batching, and dispatch like production
// traffic) and emits one wide event. While the process is alive:
//
//       curl 127.0.0.1:$PORT/statusz        # build, uptime, RSS, sink totals
//       curl 127.0.0.1:$PORT/metricsz       # registry tables (?format=json)
//       curl "127.0.0.1:$PORT/eventz?n=20"  # recent wide events as JSONL
//       curl 127.0.0.1:$PORT/slo            # burn-rate evaluation
//
// On EOF the server drains, prints the SLO evaluation and a per-stage
// attribution line per question, and exits.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/online.h"
#include "corpus/qa_generator.h"
#include "corpus/world_generator.h"
#include "eval/experiment.h"
#include "obs/slo.h"
#include "obs/wide_event.h"
#include "serve/exposition.h"
#include "serve/server.h"

int main(int argc, char** argv) {
  using namespace kbqa;

  int port = 0;  // ephemeral unless the caller pins one
  if (argc > 1) port = std::atoi(argv[1]);

  // ---- Train a small system (same setup path as the benches). ----
  std::printf("[setup] generating world + corpus and training KBQA...\n");
  auto built = eval::Experiment::Build(eval::ExperimentConfig::Small());
  if (!built.ok()) {
    std::fprintf(stderr, "experiment build failed: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  auto experiment = std::move(built).value();
  const core::KbqaSystem& kbqa = experiment->kbqa();
  core::OnlineInference::Options engine_opts = kbqa.options().online;
  engine_opts.enable_answer_cache = true;
  core::OnlineInference engine(
      &experiment->world().kb, &experiment->world().taxonomy, &kbqa.ner(),
      &kbqa.template_store(), &kbqa.expanded_kb().paths(), engine_opts);

  // ---- Observability: SLO monitor, serving front door, exposition. ----
  obs::SloMonitor slo{obs::SloSpec{}};
  serve::ServingOptions serve_options;
  serve_options.num_workers = 2;
  serve_options.max_batch_size = 8;
  serve_options.slo = &slo;
  auto server = serve::Server::ForEngine(&engine, serve_options);

  serve::ExpositionOptions obs_options;
  obs_options.port = port;
  obs_options.slo = &slo;
  obs_options.statusz_extra = [&](std::string* out) {
    out->append("world.triples: ");
    out->append(std::to_string(experiment->world().kb.num_triples()));
    out->append("\n");
  };
  auto exposition = serve::ExpositionServer::Start(obs_options);
  if (!exposition.ok()) {
    std::fprintf(stderr, "exposition failed to start: %s\n",
                 exposition.status().ToString().c_str());
    return 1;
  }
  std::printf("[obs] exposition listening on 127.0.0.1:%d\n",
              exposition.value()->port());
  std::printf("[ready] type questions (EOF to exit)\n");
  std::fflush(stdout);

  // ---- Serve stdin through the front door. ----
  uint64_t asked = 0;
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    ++asked;
    serve::ServeResponse response = server->Answer(line);
    if (response.result.answered) {
      std::printf("  -> %s   [predicate: %s]\n", response.result.value.c_str(),
                  response.result.predicate.c_str());
    } else if (!response.result.status.ok()) {
      std::printf("  -> (error: %s)\n",
                  response.result.status.ToString().c_str());
    } else {
      std::printf("  -> (no answer)\n");
    }
    std::printf("     queue %.1f us, service %.1f us, batch %zu\n",
                response.queue_ns / 1e3, response.service_ns / 1e3,
                response.batch_size);
    std::fflush(stdout);
  }

  // ---- Teardown report: SLO state and the per-request wide events. ----
  const obs::SloEvaluation slo_eval = slo.Evaluate(obs::NowSteadyNs());
  std::printf("[slo] good %llu bad %llu, burn short %.2f long %.2f, "
              "firing: %s\n",
              static_cast<unsigned long long>(slo.TotalGood()),
              static_cast<unsigned long long>(slo.TotalBad()),
              slo_eval.short_burn_rate, slo_eval.long_burn_rate,
              slo_eval.firing ? "yes" : "no");
  const std::vector<obs::WideEvent> events = obs::WideEvents::Drain();
  std::printf("[obs] %zu wide events (pipe to scripts/trace_summarize.py "
              "for fleet-level attribution):\n",
              events.size());
  for (const obs::WideEvent& event : events) {
    std::printf("%s\n", event.ToJsonLine().c_str());
  }
  return asked > 0 || events.empty() ? 0 : 1;
}
