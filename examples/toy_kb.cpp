// Figure 1 of the paper, as code: build the toy RDF knowledge base by hand
// with the public API, run predicate expansion on it, and look values up
// through expanded predicates — no generators, no training, just the
// substrate layers.
//
// Run: ./build/examples/toy_kb

#include <cstdio>

#include "rdf/expanded_predicate.h"
#include "rdf/knowledge_base.h"

int main() {
  using namespace kbqa::rdf;

  // ---- Build Figure 1 ----
  KnowledgeBase kb;
  PredId name = kb.AddPredicate("name");
  kb.SetNamePredicate(name);
  PredId dob = kb.AddPredicate("dob");
  PredId pob = kb.AddPredicate("pob");
  PredId marriage = kb.AddPredicate("marriage");
  PredId person = kb.AddPredicate("person");
  PredId date = kb.AddPredicate("date");
  PredId population = kb.AddPredicate("population");

  TermId a = kb.AddEntity("person/a");  // Barack Obama
  TermId b = kb.AddEntity("marriage/b");
  TermId c = kb.AddEntity("person/c");  // Michelle Obama
  TermId d = kb.AddEntity("city/d");    // Honolulu

  kb.AddTriple(a, name, kb.AddLiteral("barack obama"));
  kb.AddTriple(a, dob, kb.AddLiteral("1961"));
  kb.AddTriple(a, pob, d);
  kb.AddTriple(a, marriage, b);
  kb.AddTriple(b, person, c);
  kb.AddTriple(b, date, kb.AddLiteral("1992"));
  kb.AddTriple(c, name, kb.AddLiteral("michelle obama"));
  kb.AddTriple(c, dob, kb.AddLiteral("1964"));
  kb.AddTriple(d, name, kb.AddLiteral("honolulu"));
  kb.AddTriple(d, population, kb.AddLiteral("390000"));
  kb.Freeze();

  std::printf("toy KB: %zu entities, %zu predicates, %zu triples\n",
              kb.num_entities(), kb.num_predicates(), kb.num_triples());

  // ---- Direct lookups ----
  std::printf("\ndirect predicate lookups:\n");
  for (TermId v : kb.Objects(a, dob)) {
    std::printf("  (barack obama, dob, %s)\n", kb.NodeString(v).c_str());
  }
  for (TermId v : kb.Objects(d, population)) {
    std::printf("  (honolulu, population, %s)\n", kb.NodeString(v).c_str());
  }

  // ---- Expanded predicates (Sec 6) ----
  ExpansionOptions options;
  options.max_length = 3;
  auto ekb = ExpandedKb::Build(kb, {a, d}, {name}, options);
  if (!ekb.ok()) {
    std::printf("expansion failed: %s\n", ekb.status().ToString().c_str());
    return 1;
  }
  std::printf("\nexpanded predicates from barack obama:\n");
  for (const auto& [path_id, object] : ekb.value().Out(a)) {
    std::printf("  %-28s -> %s\n",
                ekb.value().paths().ToString(path_id, kb).c_str(),
                kb.NodeString(object).c_str());
  }

  // The paper's "spouse of" intent: marriage -> person -> name.
  std::printf("\nwho is barack obama's wife? (via marriage -> person -> name)\n");
  for (TermId v : ObjectsViaPath(kb, a, {marriage, person, name})) {
    std::printf("  %s\n", kb.NodeString(v).c_str());
  }
  return 0;
}
