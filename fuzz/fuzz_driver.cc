#include "fuzz/fuzz_driver.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "util/coding.h"
#include "util/rng.h"
#include "util/strings.h"

namespace kbqa::fuzz {

namespace {

// Values that historically break integer decoders: zero, one, sign/width
// boundaries, all-ones, and off-by-one neighbors of each.
constexpr uint64_t kInterestingU64[] = {
    0,    1,         0x7F,       0x80,        0xFF,
    0x100, 0x7FFF,   0x8000,     0xFFFF,      0x10000,
    0x7FFFFFFFULL,   0x80000000ULL, 0xFFFFFFFFULL, 0x100000000ULL,
    0x7FFFFFFFFFFFFFFFULL, 0x8000000000000000ULL, 0xFFFFFFFFFFFFFFFFULL};

constexpr uint8_t kInterestingByte[] = {0x00, 0x01, 0x7F, 0x80, 0xFF,
                                        0x20, 0x0A, 0x22, 0x3C, 0x5C};

void PutLeb128(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

/// Decodes the LEB128 varint at [p, p+avail) if one terminates within 10
/// bytes. Returns its encoded length (0 when there is none).
size_t TryDecodeLeb128(const uint8_t* p, size_t avail, uint64_t* value) {
  uint64_t result = 0;
  const size_t bound = avail < 10 ? avail : 10;
  for (size_t i = 0; i < bound; ++i) {
    result |= static_cast<uint64_t>(p[i] & 0x7F) << (7 * i);
    if ((p[i] & 0x80) == 0) {
      *value = result;
      return i + 1;
    }
  }
  return 0;
}

// ---- mutation operators -------------------------------------------------
// Each operator takes the working input by reference; no-ops when the
// input is too small for it.

void OpBitFlip(Rng& rng, std::string& s) {
  if (s.empty()) return;
  const int flips = 1 + static_cast<int>(rng.Uniform(8));
  for (int i = 0; i < flips; ++i) {
    const size_t pos = rng.Uniform(s.size());
    s[pos] = static_cast<char>(
        static_cast<uint8_t>(s[pos]) ^ (1u << rng.Uniform(8)));
  }
}

void OpByteSet(Rng& rng, std::string& s) {
  if (s.empty()) return;
  const size_t pos = rng.Uniform(s.size());
  if (rng.Bernoulli(0.5)) {
    s[pos] = static_cast<char>(
        kInterestingByte[rng.Uniform(std::size(kInterestingByte))]);
  } else {
    s[pos] = static_cast<char>(rng.Uniform(256));
  }
}

void OpChunkDelete(Rng& rng, std::string& s) {
  if (s.size() < 2) return;
  const size_t len = 1 + rng.Uniform(s.size() / 2);
  const size_t off = rng.Uniform(s.size() - len + 1);
  s.erase(off, len);
}

void OpChunkDup(Rng& rng, std::string& s) {
  if (s.empty()) return;
  const size_t len = 1 + rng.Uniform(std::min<size_t>(s.size(), 64));
  const size_t off = rng.Uniform(s.size() - len + 1);
  s.insert(off, s.substr(off, len));
}

void OpChunkSplice(Rng& rng, std::string& s,
                   const std::vector<std::string>& corpus) {
  if (corpus.empty()) return;
  const std::string& other = corpus[rng.Uniform(corpus.size())];
  if (other.empty()) return;
  const size_t len = 1 + rng.Uniform(std::min<size_t>(other.size(), 256));
  const size_t src = rng.Uniform(other.size() - len + 1);
  const size_t dst = rng.Uniform(s.size() + 1);
  if (rng.Bernoulli(0.5) && dst + len <= s.size()) {
    s.replace(dst, len, other, src, len);  // overwrite
  } else {
    s.insert(dst, other, src, len);  // insert
  }
}

void OpInsertRandom(Rng& rng, std::string& s) {
  const size_t len = 1 + rng.Uniform(16);
  std::string bytes;
  for (size_t i = 0; i < len; ++i) {
    bytes.push_back(static_cast<char>(rng.Uniform(256)));
  }
  s.insert(rng.Uniform(s.size() + 1), bytes);
}

void OpTruncate(Rng& rng, std::string& s) {
  if (s.size() < 2) return;
  s.resize(1 + rng.Uniform(s.size() - 1));
}

/// Varint-aware rewrite: find a LEB128 varint at a random offset and
/// replace it with the encoding of a mutated value. The replacement may be
/// shorter or longer — downstream length/framing fields then disagree with
/// the payload, which is exactly the corruption class the decoders must
/// survive.
void OpVarintTweak(Rng& rng, std::string& s) {
  if (s.empty()) return;
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(s.data());
  for (int attempt = 0; attempt < 4; ++attempt) {
    const size_t off = rng.Uniform(s.size());
    uint64_t value = 0;
    const size_t len = TryDecodeLeb128(bytes + off, s.size() - off, &value);
    if (len == 0) continue;
    uint64_t mutated;
    switch (rng.Uniform(4)) {
      case 0:
        mutated = kInterestingU64[rng.Uniform(std::size(kInterestingU64))];
        break;
      case 1:
        mutated = value + rng.Uniform(16) + 1;
        break;
      case 2:
        mutated = value - std::min<uint64_t>(value, rng.Uniform(16) + 1);
        break;
      default:
        mutated = value * 2 + 1;
        break;
    }
    std::string enc;
    PutLeb128(&enc, mutated);
    s.replace(off, len, enc);
    return;
  }
}

/// Length-field-aware rewrite: reinterpret 4 or 8 bytes at a random offset
/// as a little-endian integer (the framing convention of every snapshot
/// format here) and overwrite it with a boundary value.
void OpLengthField(Rng& rng, std::string& s) {
  const size_t width = rng.Bernoulli(0.5) ? 4 : 8;
  if (s.size() < width) return;
  const size_t off = rng.Uniform(s.size() - width + 1);
  uint64_t value = 0;
  std::memcpy(&value, s.data() + off, width);
  uint64_t mutated;
  switch (rng.Uniform(5)) {
    case 0:
      mutated = kInterestingU64[rng.Uniform(std::size(kInterestingU64))];
      break;
    case 1:
      mutated = value + 1;
      break;
    case 2:
      mutated = value - 1;
      break;
    case 3:
      mutated = value * 2;
      break;
    default:
      mutated = value >> 1;
      break;
  }
  std::memcpy(s.data() + off, &mutated, width);
}

void OpDictToken(Rng& rng, std::string& s,
                 const std::vector<std::string>& dict) {
  if (dict.empty()) return;
  const std::string& token = dict[rng.Uniform(dict.size())];
  if (token.empty()) return;
  const size_t dst = rng.Uniform(s.size() + 1);
  if (rng.Bernoulli(0.5) && dst + token.size() <= s.size()) {
    s.replace(dst, token.size(), token);
  } else {
    s.insert(dst, token);
  }
}

}  // namespace

std::string Mutator::Generate(const std::vector<std::string>& corpus,
                              const std::vector<std::string>& dict,
                              uint64_t index) const {
  // Stateless per-index stream: re-deriving input `index` never requires
  // replaying indices 0..index-1, so a crash found in a forked batch is
  // reproduced from its index alone, and generation order (or the thread
  // it happens on) cannot change any input.
  uint64_t mix = seed_;
  mix = HashCombine(SplitMix64(mix), index + 1);
  Rng rng(mix);

  std::string input;
  if (!corpus.empty()) {
    input = corpus[rng.Uniform(corpus.size())];
  } else {
    const size_t len = 1 + rng.Uniform(64);
    for (size_t i = 0; i < len; ++i) {
      input.push_back(static_cast<char>(rng.Uniform(256)));
    }
  }

  const int num_ops = 1 + static_cast<int>(rng.Uniform(4));
  for (int op = 0; op < num_ops; ++op) {
    switch (rng.Uniform(10)) {
      case 0: OpBitFlip(rng, input); break;
      case 1: OpByteSet(rng, input); break;
      case 2: OpChunkDelete(rng, input); break;
      case 3: OpChunkDup(rng, input); break;
      case 4: OpChunkSplice(rng, input, corpus); break;
      case 5: OpInsertRandom(rng, input); break;
      case 6: OpTruncate(rng, input); break;
      case 7: OpVarintTweak(rng, input); break;
      case 8: OpLengthField(rng, input); break;
      default: OpDictToken(rng, input, dict); break;
    }
  }
  if (input.size() > max_len_) input.resize(max_len_);
  return input;
}

// ---- scratch files ------------------------------------------------------

ScratchFile::ScratchFile(const uint8_t* data, size_t size) {
  static std::atomic<uint64_t> counter{0};
  const uint64_t id = counter.fetch_add(1, std::memory_order_relaxed);
  const char* bases[] = {"/dev/shm", std::getenv("TMPDIR"), "/tmp"};
  for (const char* base : bases) {
    if (base == nullptr || base[0] == '\0') continue;
    std::string candidate = std::string(base) + "/kbqa_fuzz_" +
                            std::to_string(::getpid()) + "_" +
                            std::to_string(id) + ".bin";
    std::FILE* f = std::fopen(candidate.c_str(), "wb");
    if (f == nullptr) continue;
    const bool ok =
        size == 0 || std::fwrite(data, 1, size, f) == size;
    if (std::fclose(f) == 0 && ok) {
      path_ = std::move(candidate);
      return;
    }
    std::remove(candidate.c_str());
  }
}

ScratchFile::~ScratchFile() {
  if (!path_.empty()) std::remove(path_.c_str());
}

// ---- fork execution & minimization --------------------------------------

bool RunCrashesInFork(const std::string& input) {
  const pid_t pid = ::fork();
  if (pid < 0) return false;  // cannot test; treat as not crashing
  if (pid == 0) {
    const int devnull = ::open("/dev/null", O_WRONLY);
    if (devnull >= 0) {
      ::dup2(devnull, 1);
      ::dup2(devnull, 2);
    }
    LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(input.data()),
                           input.size());
    ::_exit(0);
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  return !(WIFEXITED(status) && WEXITSTATUS(status) == 0);
}

std::string MinimizeCrash(const std::string& input, int max_execs) {
  std::string cur = input;
  int execs = 0;
  for (size_t chunk = std::max<size_t>(cur.size() / 2, 1);;) {
    bool progress = false;
    for (size_t off = 0; off + chunk <= cur.size() && execs < max_execs;
         off += chunk) {
      std::string cand = cur.substr(0, off) + cur.substr(off + chunk);
      ++execs;
      if (RunCrashesInFork(cand)) {
        cur = std::move(cand);
        progress = true;
        // Retry the same offset: the bytes now there were never tested.
        off -= std::min(off, chunk);
      }
    }
    if (execs >= max_execs) break;
    if (!progress) {
      if (chunk == 1) break;
      chunk = chunk / 2;
    }
  }
  return cur;
}

// ---- driver main --------------------------------------------------------

namespace {

void RunOneInProcess(const std::string& input) {
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(input.data()),
                         input.size());
}

/// Loads every regular file under `path` (a file or a directory, sorted by
/// name for determinism) into `out`. Missing paths are skipped with a note
/// — a target with no committed regressions yet is not an error.
void LoadCorpusPath(const std::string& path, std::vector<std::string>* out) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::file_status st = fs::status(path, ec);
  if (ec || st.type() == fs::file_type::not_found) {
    std::fprintf(stderr, "note: corpus path %s absent, skipping\n",
                 path.c_str());
    return;
  }
  std::vector<fs::path> files;
  if (fs::is_directory(st)) {
    for (const auto& entry : fs::directory_iterator(path, ec)) {
      if (entry.is_regular_file()) files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
  } else {
    files.emplace_back(path);
  }
  for (const fs::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    out->push_back(std::move(bytes));
  }
}

std::string TargetName(const char* argv0) {
  const std::string full(argv0 == nullptr ? "fuzz_target" : argv0);
  const size_t slash = full.find_last_of('/');
  return slash == std::string::npos ? full : full.substr(slash + 1);
}

struct Args {
  std::vector<std::string> replay_paths;
  std::vector<std::string> corpus_paths;
  uint64_t iters = 0;
  uint64_t seed = 1;
  size_t max_len = 1 << 20;
  bool expect_crash = false;
  std::string crash_dir = ".";
  std::string dump_seeds_dir;
  bool replay_mode = false;
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    auto value_of = [&arg](const char* flag) -> const char* {
      const size_t len = std::strlen(flag);
      return arg.compare(0, len, flag) == 0 ? arg.c_str() + len : nullptr;
    };
    if (const char* v = value_of("--iters=")) {
      args->iters = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--seed=")) {
      args->seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--max-len=")) {
      args->max_len = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--crash-dir=")) {
      args->crash_dir = v;
    } else if (const char* v = value_of("--dump-seeds=")) {
      args->dump_seeds_dir = v;
    } else if (const char* v = value_of("--corpus=")) {
      args->corpus_paths.push_back(v);
    } else if (arg == "--expect-crash") {
      args->expect_crash = true;
    } else if (arg == "--replay") {
      args->replay_mode = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    } else {
      args->replay_paths.push_back(arg);
      args->replay_mode = true;
    }
  }
  return true;
}

int RunReplay(const Args& args) {
  std::vector<std::string> inputs = SeedInputs();
  const size_t num_seeds = inputs.size();
  for (const std::string& path : args.replay_paths) {
    LoadCorpusPath(path, &inputs);
  }
  for (const std::string& input : inputs) {
    RunOneInProcess(input);  // a crash here kills the process: ctest red
  }
  std::fprintf(stdout, "replayed %zu inputs (%zu built-in seeds) clean\n",
               inputs.size(), num_seeds);
  return 0;
}

int RunFuzz(const std::string& target, const Args& args) {
  std::vector<std::string> corpus = SeedInputs();
  for (const std::string& path : args.corpus_paths) {
    LoadCorpusPath(path, &corpus);
  }
  const std::vector<std::string> dict = Dictionary();
  const Mutator mutator(args.seed, args.max_len);

  // The child stores the index it is about to execute into shared memory;
  // after a crash the parent reads it back and re-derives the input (the
  // per-index generation stream makes that exact).
  uint64_t* slot = static_cast<uint64_t*>(
      ::mmap(nullptr, sizeof(uint64_t), PROT_READ | PROT_WRITE,
             MAP_SHARED | MAP_ANONYMOUS, -1, 0));
  if (slot == MAP_FAILED) {
    std::fprintf(stderr, "mmap failed; cannot run fork-batched fuzz\n");
    return 2;
  }

  constexpr uint64_t kBatch = 64;
  bool crashed = false;
  uint64_t crash_index = 0;
  for (uint64_t begin = 0; begin < args.iters && !crashed; begin += kBatch) {
    const uint64_t end = std::min(begin + kBatch, args.iters);
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::fprintf(stderr, "fork failed\n");
      ::munmap(slot, sizeof(uint64_t));
      return 2;
    }
    if (pid == 0) {
      // Keep stderr: the first sanitizer report is the diagnostic.
      for (uint64_t i = begin; i < end; ++i) {
        *const_cast<volatile uint64_t*>(slot) = i;
        const std::string input = mutator.Generate(corpus, dict, i);
        RunOneInProcess(input);
      }
      ::_exit(0);
    }
    int status = 0;
    ::waitpid(pid, &status, 0);
    if (!(WIFEXITED(status) && WEXITSTATUS(status) == 0)) {
      crashed = true;
      crash_index = *slot;
    }
  }
  ::munmap(slot, sizeof(uint64_t));

  if (!crashed) {
    std::fprintf(stdout, "%s: %llu iterations, no crash (seed %llu)\n",
                 target.c_str(),
                 static_cast<unsigned long long>(args.iters),
                 static_cast<unsigned long long>(args.seed));
    return args.expect_crash ? 1 : 0;
  }

  const std::string input =
      Mutator(args.seed, args.max_len).Generate(corpus, dict, crash_index);
  std::fprintf(stderr,
               "%s: CRASH at iteration %llu (%zu bytes); minimizing...\n",
               target.c_str(), static_cast<unsigned long long>(crash_index),
               input.size());
  const std::string minimized =
      RunCrashesInFork(input) ? MinimizeCrash(input) : input;
  const uint64_t hash = util::Fnv1a64(minimized.data(), minimized.size());
  char hash_hex[17];
  std::snprintf(hash_hex, sizeof(hash_hex), "%016llx",
                static_cast<unsigned long long>(hash));
  const std::string out_path =
      args.crash_dir + "/" + target + "-" + hash_hex + ".bin";
  std::ofstream out(out_path, std::ios::binary);
  out.write(minimized.data(),
            static_cast<std::streamsize>(minimized.size()));
  out.close();
  std::fprintf(stderr,
               "%s: minimized to %zu bytes -> %s\n"
               "    promote with: cp %s fuzz/corpus/regressions/%s/\n",
               target.c_str(), minimized.size(), out_path.c_str(),
               out_path.c_str(), target.c_str());
  return args.expect_crash ? 0 : 1;
}

}  // namespace

int FuzzDriverMain(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return 2;
  const std::string target = TargetName(argc > 0 ? argv[0] : nullptr);

  if (!args.dump_seeds_dir.empty()) {
    std::filesystem::create_directories(args.dump_seeds_dir);
    const std::vector<std::string> seeds = SeedInputs();
    for (size_t i = 0; i < seeds.size(); ++i) {
      char name[32];
      std::snprintf(name, sizeof(name), "/seed-%04zu.bin", i);
      std::ofstream out(args.dump_seeds_dir + name, std::ios::binary);
      out.write(seeds[i].data(),
                static_cast<std::streamsize>(seeds[i].size()));
    }
    std::fprintf(stdout, "dumped %zu seeds to %s\n", seeds.size(),
                 args.dump_seeds_dir.c_str());
    return 0;
  }
  if (args.iters > 0) return RunFuzz(target, args);
  return RunReplay(args);  // default: replay built-in seeds (+ any paths)
}

}  // namespace kbqa::fuzz
