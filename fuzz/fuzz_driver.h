#ifndef KBQA_FUZZ_FUZZ_DRIVER_H_
#define KBQA_FUZZ_FUZZ_DRIVER_H_

/// In-repo deterministic fuzzing substrate (DESIGN.md §11).
///
/// Every byte-decode surface in the library gets a harness under
/// fuzz/targets/, each exposing the libFuzzer-compatible entry point
///
///   extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t n);
///
/// plus two structure hooks the deterministic driver uses:
///
///   std::vector<std::string> kbqa::fuzz::SeedInputs();   // valid inputs,
///       synthesized with the *current* encoders so seeds never rot when a
///       format evolves
///   std::vector<std::string> kbqa::fuzz::Dictionary();   // magic numbers,
///       keywords, escape sequences — tokens the mutator splices in
///
/// Two build flavors share the target sources unchanged:
///  - default (any compiler, works in the gcc-only container): each target
///    links fuzz_main.cc, giving a standalone binary with --replay /
///    --iters / --minimize modes, run as ordinary ctest targets under the
///    ASan+UBSan tree;
///  - -DKBQA_LIBFUZZER=ON (clang CI): each target is additionally built
///    against -fsanitize=fuzzer for coverage-guided runs.
///
/// The parser registry (fuzz/registry.json, enforced by scripts/lint.py)
/// maps every public parse/decode entry point to its target, so a new
/// byte-decoding surface cannot land without a harness.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace kbqa::fuzz {

/// Defined by each fuzz target (see header comment).
std::vector<std::string> SeedInputs();
std::vector<std::string> Dictionary();

/// Structure-aware, seeded mutation engine.
///
/// `Generate(corpus, dict, index)` is a pure function of its arguments and
/// the constructor seed: the same (seed, corpus, dict, index) yields the
/// same bytes on every run, host, thread, and call order — the property
/// that makes the bounded ctest fuzz pass reproducible and lets the driver
/// re-derive a crashing input from its index alone. There is no hidden
/// state and no coverage feedback in this mode (coverage guidance is what
/// the libFuzzer build adds).
///
/// Mutation operators: bit flips, interesting-byte overwrites, chunk
/// delete / duplicate / splice (cross-corpus), random inserts, tail
/// truncation, LEB128-varint-aware rewrites, little-endian length-field
/// rewrites, and dictionary-token insertion. One generated input stacks
/// 1–4 operators on a corpus pick.
class Mutator {
 public:
  explicit Mutator(uint64_t seed, size_t max_len = 1 << 20)
      : seed_(seed), max_len_(max_len) {}

  std::string Generate(const std::vector<std::string>& corpus,
                       const std::vector<std::string>& dict,
                       uint64_t index) const;

  size_t max_len() const { return max_len_; }

 private:
  uint64_t seed_;
  size_t max_len_;
};

/// Writes `data` to a unique scratch file (prefers /dev/shm, falls back to
/// $TMPDIR then /tmp) and unlinks it on destruction — the bridge between
/// in-memory fuzz inputs and the library's path-taking loaders.
class ScratchFile {
 public:
  ScratchFile(const uint8_t* data, size_t size);
  ~ScratchFile();
  ScratchFile(const ScratchFile&) = delete;
  ScratchFile& operator=(const ScratchFile&) = delete;

  /// Empty when the scratch file could not be created (target should
  /// just return 0).
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Runs candidate `input` in a forked child with stderr silenced.
/// True when the child dies by signal or exits non-zero — the crash
/// predicate used by the fuzz loop and the minimizer.
bool RunCrashesInFork(const std::string& input);

/// Greedy chunk-removal + tail-trim minimization of a crashing input,
/// bounded by `max_execs` forked runs. Returns the smallest input found
/// that still satisfies RunCrashesInFork.
std::string MinimizeCrash(const std::string& input, int max_execs = 400);

/// Deterministic driver entry point (called by fuzz_main.cc):
///
///   <target> --replay PATH...          replay files/dirs in-process (plus
///                                      the built-in seeds); any crash
///                                      aborts the process — ctest red
///   <target> --iters=N [--seed=S]      bounded deterministic fuzz pass;
///                                      inputs run in fork batches so a
///                                      crash is caught, re-derived by
///                                      index, minimized, and written to
///                                      --crash-dir (default: cwd)
///   <target> --expect-crash            inverts the exit code of the fuzz
///                                      pass (the planted-bug canary gate)
///   <target> --dump-seeds=DIR          materialize SeedInputs() for an
///                                      external (libFuzzer) corpus
int FuzzDriverMain(int argc, char** argv);

}  // namespace kbqa::fuzz

#endif  // KBQA_FUZZ_FUZZ_DRIVER_H_
