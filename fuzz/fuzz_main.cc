// Standalone entry point for the deterministic driver build. Under
// -DKBQA_LIBFUZZER=ON this file is NOT compiled — libFuzzer provides main
// and calls LLVMFuzzerTestOneInput directly.

#include "fuzz/fuzz_driver.h"

int main(int argc, char** argv) {
  return kbqa::fuzz::FuzzDriverMain(argc, argv);
}
