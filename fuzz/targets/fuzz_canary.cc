// Planted-bug canary (NOT in the parser registry): a sacrificial decoder
// with a known out-of-bounds read that the deterministic driver must find
// within its ctest iteration budget. If the mutation engine regresses —
// stops truncating, stops hitting length fields — this target's
// --expect-crash test goes red before any real decoder loses its guard.
//
// Record format: "CNRY" magic, one length byte, then `length` payload
// bytes. The planted bug: the length byte is trusted without checking it
// against the remaining input.

#include <cstring>
#include <string>
#include <vector>

#include "fuzz/fuzz_driver.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size < 5 || std::memcmp(data, "CNRY", 4) != 0) return 0;
  const size_t payload_len = data[4];
  // BUG (intentional): no `5 + payload_len <= size` check. ASan flags the
  // heap OOB read; the explicit trap makes plain builds crash too, so the
  // canary has teeth in every build flavor.
  if (5 + payload_len > size) {
    volatile uint8_t oob = data[5 + payload_len - 1];  // OOB read under ASan
    (void)oob;
    __builtin_trap();
  }
  std::string payload(reinterpret_cast<const char*>(data) + 5, payload_len);
  (void)payload;
  return 0;
}

namespace kbqa::fuzz {

std::vector<std::string> SeedInputs() {
  std::vector<std::string> seeds;
  for (const size_t n : {size_t{8}, size_t{16}, size_t{32}}) {
    std::string s = "CNRY";
    s.push_back(static_cast<char>(n));
    s.append(n, 'x');
    seeds.push_back(s);
  }
  return seeds;
}

std::vector<std::string> Dictionary() {
  return {"CNRY", std::string("\xff", 1)};
}

}  // namespace kbqa::fuzz
