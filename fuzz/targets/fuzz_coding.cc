// Fuzz target: every decoder in util/coding.h (registry: src/util/coding.h).
//
// Beyond "don't crash", each successful decode is checked against a
// round-trip oracle: re-encoding the decoded values with the matching
// encoder and decoding again must reproduce them exactly, and delta runs
// must come out non-decreasing (the overflow-guard contract).

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "fuzz/fuzz_driver.h"
#include "util/coding.h"

namespace u = kbqa::util;

namespace {

void Check(bool ok) {
  if (!ok) __builtin_trap();  // oracle violation: crash so the driver reports
}

void FuzzVarints(const uint8_t* data, const uint8_t* limit) {
  uint64_t v64 = 0;
  if (u::GetVarint64(data, limit, &v64) != nullptr) {
    std::string re;
    u::PutVarint64(&re, v64);
    const uint8_t* rp = reinterpret_cast<const uint8_t*>(re.data());
    uint64_t back = 0;
    Check(u::GetVarint64(rp, rp + re.size(), &back) == rp + re.size());
    Check(back == v64);
  }
  uint32_t v32 = 0;
  if (u::GetVarint32(data, limit, &v32) != nullptr) {
    Check(v32 <= UINT32_MAX);
  }
  uint64_t fixed = 0;
  if (u::GetFixed64(data, limit, &fixed) != nullptr) {
    std::string re;
    u::PutFixed64(&re, fixed);
    Check(re.size() == 8 && std::memcmp(re.data(), data, 8) == 0);
  }
}

void FuzzDeltaRuns(const uint8_t* data, const uint8_t* limit) {
  {
    const uint8_t* p = data;
    std::vector<uint32_t> vals;
    if (u::DecodeDeltaRun32(&p, limit, &vals)) {
      for (size_t i = 1; i < vals.size(); ++i) Check(vals[i] >= vals[i - 1]);
      std::string re;
      u::AppendDeltaRun32(&re, vals.data(), vals.size());
      const uint8_t* rp = reinterpret_cast<const uint8_t*>(re.data());
      std::vector<uint32_t> back;
      Check(u::DecodeDeltaRun32(&rp, rp + re.size(), &back));
      Check(back == vals);
    }
  }
  {
    const uint8_t* p = data;
    std::vector<uint64_t> vals;
    if (u::DecodeDeltaRun64(&p, limit, &vals)) {
      for (size_t i = 1; i < vals.size(); ++i) Check(vals[i] >= vals[i - 1]);
      std::string re;
      u::AppendDeltaRun64(&re, vals.data(), vals.size());
      const uint8_t* rp = reinterpret_cast<const uint8_t*>(re.data());
      std::vector<uint64_t> back;
      Check(u::DecodeDeltaRun64(&rp, rp + re.size(), &back));
      Check(back == vals);
    }
  }
}

/// First two input bytes pick (bits, n); the rest is the packed stream.
void FuzzBitPacked(const uint8_t* data, size_t size) {
  if (size < 2) return;
  const int bits = data[0] % 33;
  const size_t n = data[1];
  const uint8_t* p = data + 2;
  std::vector<uint32_t> vals;
  if (u::DecodeBitPacked(&p, data + size, n, bits, &vals)) {
    Check(vals.size() == n);
    std::string re;
    u::AppendBitPacked(&re, vals.data(), n, bits);
    const uint8_t* rp = reinterpret_cast<const uint8_t*>(re.data());
    std::vector<uint32_t> back;
    Check(u::DecodeBitPacked(&rp, rp + re.size(), n, bits, &back));
    Check(back == vals);
  }
}

void FuzzFrontCoded(const uint8_t* data, const uint8_t* limit) {
  const uint8_t* p = data;
  std::string prev;
  std::string cur;
  std::vector<std::string> strs;
  while (p < limit && strs.size() < 64 &&
         u::DecodeFrontCoded(&p, limit, prev, &cur)) {
    strs.push_back(cur);
    prev = cur;
  }
  std::string re;
  std::string enc_prev;
  for (const std::string& s : strs) {
    u::AppendFrontCoded(&re, enc_prev, s);
    enc_prev = s;
  }
  const uint8_t* rp = reinterpret_cast<const uint8_t*>(re.data());
  const uint8_t* rlimit = rp + re.size();
  std::string dec_prev;
  for (const std::string& s : strs) {
    std::string out;
    Check(u::DecodeFrontCoded(&rp, rlimit, dec_prev, &out));
    Check(out == s);
    dec_prev = out;
  }
  Check(rp == rlimit);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const uint8_t* limit = data + size;
  FuzzVarints(data, limit);
  FuzzDeltaRuns(data, limit);
  FuzzBitPacked(data, size);
  FuzzFrontCoded(data, limit);
  if (size >= 8) {
    uint64_t raw = 0;
    std::memcpy(&raw, data, 8);
    const int64_t s = static_cast<int64_t>(raw);
    Check(u::ZigZagDecode64(u::ZigZagEncode64(s)) == s);
  }
  (void)u::Fnv1a64(data, size);
  return 0;
}

namespace kbqa::fuzz {

std::vector<std::string> SeedInputs() {
  std::vector<std::string> seeds;
  {
    std::string s;
    util::PutVarint64(&s, 0);
    util::PutVarint64(&s, 0x7F);
    util::PutVarint64(&s, 0x80);
    util::PutVarint64(&s, UINT64_MAX);
    seeds.push_back(s);
  }
  {
    std::string s;
    const uint32_t vals[] = {1, 1, 5, 100, 100000};
    util::AppendDeltaRun32(&s, vals, std::size(vals));
    const uint64_t vals64[] = {0, 9, 9, uint64_t{1} << 40};
    util::AppendDeltaRun64(&s, vals64, std::size(vals64));
    seeds.push_back(s);
  }
  {
    // Leading (bits, n) header the harness reads, then the packed stream.
    std::string s;
    s.push_back(7);
    s.push_back(5);
    const uint32_t vals[] = {1, 2, 3, 100, 127};
    util::AppendBitPacked(&s, vals, std::size(vals), 7);
    seeds.push_back(s);
  }
  {
    std::string s;
    util::AppendFrontCoded(&s, "", "barack");
    util::AppendFrontCoded(&s, "barack", "barack obama");
    util::AppendFrontCoded(&s, "barack obama", "basketball");
    seeds.push_back(s);
  }
  {
    std::string s;
    util::PutFixed64(&s, 0x0123456789abcdefULL);
    seeds.push_back(s);
  }
  return seeds;
}

std::vector<std::string> Dictionary() {
  return {
      std::string("\x80\x80\x80\x80\x80\x80\x80\x80\x80\x01", 10),
      std::string("\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01", 10),
      std::string("\x00", 1),
      std::string("\x7f", 1),
  };
}

}  // namespace kbqa::fuzz
