// Fuzz target: CompressedExpandedKb snapshot Open + block decode
// (registry: src/rdf/compressed_expanded.h). Alternates resident and
// paged mode by input hash so both decode paths stay covered; on a
// successful Open the harness walks blocks through the read APIs.

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "fuzz/fuzz_driver.h"
#include "fuzz/targets/seed_util.h"
#include "rdf/compressed_expanded.h"
#include "rdf/expanded_predicate.h"
#include "rdf/knowledge_base.h"
#include "util/coding.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  kbqa::fuzz::ScratchFile file(data, size);
  if (file.path().empty()) return 0;
  kbqa::rdf::CompressedExpandedKb::Options options;
  options.blocks_resident = (kbqa::util::Fnv1a64(data, size) & 1) != 0;
  options.decoded_cache_budget_bytes = 1 << 16;
  auto opened = kbqa::rdf::CompressedExpandedKb::Open(file.path(), options);
  if (!opened.ok()) return 0;
  const kbqa::rdf::CompressedExpandedKb& ekb = opened.value();
  (void)ekb.memory_stats();
  std::vector<kbqa::rdf::TermId> subjects;
  ekb.ForEachTriple([&subjects](const kbqa::rdf::ExpandedTriple& t) {
    if (subjects.empty() || subjects.back() != t.s) subjects.push_back(t.s);
  });
  std::vector<kbqa::rdf::TermId> objects;
  std::vector<std::pair<kbqa::rdf::PathId, kbqa::rdf::TermId>> run;
  const size_t n = std::min<size_t>(subjects.size(), 8);
  for (size_t i = 0; i < n; ++i) {
    (void)ekb.Contains(subjects[i]);
    (void)ekb.TryObjects(subjects[i], 0, &objects);
    (void)ekb.CopyOut(subjects[i], &run);
  }
  return 0;
}

namespace kbqa::fuzz {

namespace {

Result<rdf::CompressedExpandedKb> MakeSeedEkb(size_t target_block_edges) {
  rdf::KnowledgeBase kb;
  const rdf::PredId name = kb.AddPredicate("name");
  kb.SetNamePredicate(name);
  kb.AddTriple("barack", "marriage", "m1", false);
  kb.AddTriple("m1", "person", "michelle", false);
  kb.AddTriple("michelle", "name", "Michelle Obama", true);
  kb.AddTriple("barack", "name", "Barack Obama", true);
  kb.AddTriple("hermione", "marriage", "m2", false);
  kb.AddTriple("m2", "person", "ron", false);
  kb.AddTriple("ron", "name", "Ron Weasley", true);
  kb.Freeze();
  auto expanded =
      rdf::ExpandedKb::Build(kb, kb.AllEntities(), {name}, {});
  if (!expanded.ok()) return expanded.status();
  rdf::CompressedExpandedKb::Options options;
  options.target_block_edges = target_block_edges;
  return rdf::CompressedExpandedKb::FromExpanded(expanded.value(), options);
}

}  // namespace

std::vector<std::string> SeedInputs() {
  std::vector<std::string> seeds;
  for (const size_t block_edges : {size_t{4}, size_t{4096}}) {
    auto ekb = MakeSeedEkb(block_edges);
    if (!ekb.ok()) continue;
    SeedTempPath tmp("ekb");
    const Status st = ekb.value().Save(tmp.path());
    if (st.ok()) seeds.push_back(FileBytes(tmp.path()));
  }
  return seeds;
}

std::vector<std::string> Dictionary() {
  std::vector<std::string> dict;
  for (const std::string& seed : SeedInputs()) {
    if (seed.size() >= 8) {
      dict.push_back(seed.substr(0, 8));  // "KBQAEXP3" magic
      break;
    }
  }
  return dict;
}

}  // namespace kbqa::fuzz
