// Fuzz target: QA-corpus TSV import and field escaping (registry:
// src/corpus/corpus_io.h). Oracle: Unescape(Escape(x)) == x for every x.

#include <string>
#include <vector>

#include "corpus/corpus_io.h"
#include "fuzz/fuzz_driver.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);

  const std::string escaped = kbqa::corpus::EscapeTsvField(text);
  if (kbqa::corpus::UnescapeTsvField(escaped) != text) {
    __builtin_trap();  // escape round-trip broken
  }
  (void)kbqa::corpus::UnescapeTsvField(text);  // arbitrary escape soup

  kbqa::fuzz::ScratchFile file(data, size);
  if (!file.path().empty()) {
    auto corpus = kbqa::corpus::ImportQaTsv(file.path());
    if (corpus.ok()) (void)corpus.value().size();
  }
  return 0;
}

namespace kbqa::fuzz {

std::vector<std::string> SeedInputs() {
  return {
      "who is the wife of barack obama\tmichelle obama\n",
      "# comment\nq with \\t tab\ta\\nb\n\nsecond question\tanswer two\n",
      "trailing backslash \\\\\tok\n",
  };
}

std::vector<std::string> Dictionary() {
  return {"\t", "\\t", "\\n", "\\\\", "#", "\n"};
}

}  // namespace kbqa::fuzz
