// Fuzz target: the exposition server's byte-facing request parsing and
// routing (registry: src/serve/exposition.h). Drives the static
// ParseRequestPath → HandlePath pipeline exactly as ServeConnection does,
// without a socket. Handlers render from process-global registries, which
// is safe (and cheap) to do from a harness.

#include <string>
#include <vector>

#include "fuzz/fuzz_driver.h"
#include "serve/exposition.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string request(reinterpret_cast<const char*>(data), size);
  const kbqa::serve::ExpositionOptions options;  // no SLO monitor attached

  const std::string path =
      kbqa::serve::ExpositionServer::ParseRequestPath(request);
  int status = 0;
  std::string content_type;
  const std::string body = kbqa::serve::ExpositionServer::HandlePath(
      options, path, &status, &content_type);
  if ((status != 200 && status != 404) || content_type.empty()) {
    __builtin_trap();  // router contract: 200/404 with a content type
  }
  // Also route the raw bytes as a path: HandlePath is public API and must
  // hold the same contract for paths that never came from ParseRequestPath.
  (void)kbqa::serve::ExpositionServer::HandlePath(options, request, &status,
                                                  &content_type);
  return 0;
}

namespace kbqa::fuzz {

std::vector<std::string> SeedInputs() {
  return {
      "GET /metricsz?format=json HTTP/1.0\r\nHost: x\r\n\r\n",
      "GET /eventz?n=5\n",
      "GET / HTTP/1.1\r\n\r\n",
      "GET /statusz HTTP/1.0\r\n\r\n",
      "GET /slo HTTP/1.0\r\n\r\n",
      "/eventz?n=18446744073709551615",
  };
}

std::vector<std::string> Dictionary() {
  return {"GET ",     "/metricsz", "/eventz", "/statusz", "/slo",
          "?format=", "json",      "?n=",     "&",        "=",
          " HTTP/1.0", "\r\n\r\n"};
}

}  // namespace kbqa::fuzz
