// Fuzz target: KnowledgeBase snapshot loading, v2 and v3 framing
// (registry: src/rdf/knowledge_base.h). Seeds are synthesized by saving a
// small KB in both format versions with the current writer.

#include <algorithm>
#include <string>
#include <vector>

#include "fuzz/fuzz_driver.h"
#include "fuzz/targets/seed_util.h"
#include "rdf/knowledge_base.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  kbqa::fuzz::ScratchFile file(data, size);
  if (file.path().empty()) return 0;
  auto loaded = kbqa::rdf::KnowledgeBase::Load(file.path());
  if (!loaded.ok()) return 0;
  // Poke the CSR the loader rebuilt: a Load that "succeeds" on corrupt
  // bytes must still hand back a safely readable store.
  const kbqa::rdf::KnowledgeBase& kb = loaded.value();
  const size_t n = std::min<size_t>(kb.num_nodes(), 8);
  for (size_t s = 0; s < n; ++s) {
    const auto id = static_cast<kbqa::rdf::TermId>(s);
    (void)kb.Out(id);
    (void)kb.In(id);
    (void)kb.OutDegree(id);
  }
  (void)kb.EntitiesByName("Michelle Obama");
  return 0;
}

namespace kbqa::fuzz {

namespace {

rdf::KnowledgeBase MakeSeedKb() {
  rdf::KnowledgeBase kb;
  kb.SetNamePredicate(kb.AddPredicate("name"));
  kb.AddTriple("barack", "marriage", "m1", false);
  kb.AddTriple("m1", "person", "michelle", false);
  kb.AddTriple("michelle", "name", "Michelle Obama", true);
  kb.AddTriple("barack", "name", "Barack Obama", true);
  kb.AddTriple("barack", "job", "president", true);
  kb.Freeze();
  return kb;
}

}  // namespace

std::vector<std::string> SeedInputs() {
  std::vector<std::string> seeds;
  const rdf::KnowledgeBase kb = MakeSeedKb();
  for (const int version : {3, 2}) {
    SeedTempPath tmp("kb");
    const Status st = kb.Save(tmp.path(), version);
    if (st.ok()) seeds.push_back(FileBytes(tmp.path()));
  }
  return seeds;
}

std::vector<std::string> Dictionary() {
  // The two magics (first 8 bytes of each seed) as splice tokens.
  std::vector<std::string> dict;
  for (const std::string& seed : SeedInputs()) {
    if (seed.size() >= 8) dict.push_back(seed.substr(0, 8));
  }
  return dict;
}

}  // namespace kbqa::fuzz
