// Fuzz target: learned-model artifact loading (registry: src/core/model_io.h
// and the KbqaSystem::LoadModel wrapper in src/core/kbqa_system.h, which
// delegates here). Loads arbitrary bytes against a fixed small KB.

#include <string>
#include <vector>

#include "core/model_io.h"
#include "core/template_store.h"
#include "fuzz/fuzz_driver.h"
#include "fuzz/targets/seed_util.h"
#include "rdf/expanded_predicate.h"
#include "rdf/knowledge_base.h"

namespace {

const kbqa::rdf::KnowledgeBase& SharedKb() {
  static const kbqa::rdf::KnowledgeBase kb = [] {
    kbqa::rdf::KnowledgeBase b;
    b.SetNamePredicate(b.AddPredicate("name"));
    b.AddTriple("barack", "marriage", "m1", false);
    b.AddTriple("m1", "person", "michelle", false);
    b.AddTriple("michelle", "name", "Michelle Obama", true);
    b.Freeze();
    return b;
  }();
  return kb;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  kbqa::fuzz::ScratchFile file(data, size);
  if (file.path().empty()) return 0;
  auto model = kbqa::core::LoadModel(SharedKb(), file.path());
  if (!model.ok()) return 0;
  const kbqa::core::LoadedModel& loaded = model.value();
  for (kbqa::core::TemplateId t = 0; t < loaded.store.num_templates(); ++t) {
    (void)loaded.store.TemplateText(t);
    for (const auto& entry : loaded.store.Distribution(t)) {
      (void)loaded.paths.GetPath(entry.path);  // every PathId must resolve
    }
  }
  return 0;
}

namespace kbqa::fuzz {

std::vector<std::string> SeedInputs() {
  std::vector<std::string> seeds;
  const rdf::KnowledgeBase& kb = SharedKb();
  {
    core::TemplateStore store;
    rdf::PathDictionary paths;
    const rdf::PredId name = *kb.LookupPredicate("name");
    const rdf::PredId marriage = *kb.LookupPredicate("marriage");
    const rdf::PredId person = *kb.LookupPredicate("person");
    const rdf::PathId direct = paths.Intern({marriage});
    const rdf::PathId chain = paths.Intern({marriage, person, name});
    const core::TemplateId t = store.Intern("who is the wife of $person");
    store.AddFrequency(t, 3);
    store.SetDistribution(t, {{chain, 0.7}, {direct, 0.3}});
    const core::TemplateId t2 = store.Intern("what is $person");
    store.AddFrequency(t2, 1);
    SeedTempPath tmp("model");
    const Status st = core::SaveModel(store, paths, kb, tmp.path());
    if (st.ok()) seeds.push_back(FileBytes(tmp.path()));
  }
  {
    // Empty model: the minimal valid artifact.
    core::TemplateStore store;
    rdf::PathDictionary paths;
    SeedTempPath tmp("model0");
    const Status st = core::SaveModel(store, paths, kb, tmp.path());
    if (st.ok()) seeds.push_back(FileBytes(tmp.path()));
  }
  return seeds;
}

std::vector<std::string> Dictionary() {
  std::vector<std::string> dict;
  for (const std::string& seed : SeedInputs()) {
    if (seed.size() >= 8) {
      dict.push_back(seed.substr(0, 8));  // model magic
      break;
    }
  }
  dict.emplace_back("name");
  dict.emplace_back("marriage");
  dict.emplace_back("no_such_predicate");
  return dict;
}

}  // namespace kbqa::fuzz
