// Fuzz target: N-Triples text parsing (registry: src/rdf/ntriples.h).
// Covers both the single-line parser (with the format→parse round-trip
// oracle the escape-symmetry tests promise) and the whole-file import
// through a scratch file.

#include <string>
#include <vector>

#include "fuzz/fuzz_driver.h"
#include "rdf/ntriples.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);

  auto parsed = kbqa::rdf::ParseNTripleLine(text);
  if (parsed.ok()) {
    const auto& t = parsed.value();
    const std::string formatted = kbqa::rdf::FormatNTripleLine(t);
    auto reparsed = kbqa::rdf::ParseNTripleLine(formatted);
    if (!reparsed.ok() || reparsed.value().subject != t.subject ||
        reparsed.value().predicate != t.predicate ||
        reparsed.value().object != t.object ||
        reparsed.value().object_is_literal != t.object_is_literal) {
      __builtin_trap();  // escape symmetry broken: format must re-parse
    }
  }

  kbqa::fuzz::ScratchFile file(data, size);
  if (!file.path().empty()) {
    auto kb = kbqa::rdf::ImportNTriples(file.path());
    if (kb.ok()) (void)kb.value().num_triples();
  }
  return 0;
}

namespace kbqa::fuzz {

std::vector<std::string> SeedInputs() {
  return {
      "<barack> <marriage> <m1> .",
      "<m1> <person> <michelle> .",
      "<michelle> <name> \"Michelle Obama\" .",
      "<e> <name> \"tab\\t nl\\n quote\\\" back\\\\ u\\u0041 U\\U0001F600\" .",
      "# comment line\n<a> <p> <b> .\n\n<a> <name> \"a\" .\n",
      "<s> <p> \"\" .",
  };
}

std::vector<std::string> Dictionary() {
  return {"<", ">", "\"", " .", "\\u0041", "\\U0001F600", "\\uD800",
          "\\n",  "\\\"", "\\\\", "#", "name", "\n"};
}

}  // namespace kbqa::fuzz
