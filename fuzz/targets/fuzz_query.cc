// Fuzz target: the small text parsers (registry: src/rdf/query.h,
// src/util/strings.h ParseNonNegativeInt, src/core/variants.h
// ParseOrdinal). Oracle: QueryToString is a stable round-trip through
// ParseQuery.

#include <string>
#include <vector>

#include "core/variants.h"
#include "fuzz/fuzz_driver.h"
#include "rdf/query.h"
#include "util/strings.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);

  auto query = kbqa::rdf::ParseQuery(text);
  if (query.ok()) {
    const std::string rendered = kbqa::rdf::QueryToString(query.value());
    auto reparsed = kbqa::rdf::ParseQuery(rendered);
    if (!reparsed.ok() ||
        reparsed.value().select != query.value().select ||
        reparsed.value().where != query.value().where) {
      __builtin_trap();  // QueryToString must round-trip
    }
  }
  (void)kbqa::ParseNonNegativeInt(text);
  (void)kbqa::core::ParseOrdinal(text);
  return 0;
}

namespace kbqa::fuzz {

std::vector<std::string> SeedInputs() {
  return {
      "SELECT ?wife WHERE { person/a marriage ?m . ?m person ?p . "
      "?p name ?wife }",
      "SELECT ?v WHERE { barack name ?v }",
      "SELECT ?x ?y WHERE { ?x likes \"barack obama\" . ?x knows ?y }",
      "42nd",
      "first",
      "123456",
  };
}

std::vector<std::string> Dictionary() {
  return {"SELECT", "WHERE", "?x", "{", "}", " . ", "\"barack obama\"",
          "name",   "?",     "\"", "third", "99th"};
}

}  // namespace kbqa::fuzz
