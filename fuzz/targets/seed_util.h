#ifndef KBQA_FUZZ_TARGETS_SEED_UTIL_H_
#define KBQA_FUZZ_TARGETS_SEED_UTIL_H_

// Helpers shared by the fuzz targets' SeedInputs() implementations:
// seeds for file-format targets are synthesized with the *current*
// encoders (Save → read bytes back → unlink), so a format change can
// never strand the corpus on stale bytes.

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>

namespace kbqa::fuzz {

inline std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

/// A unique temp path for one Save during seed synthesis; unlinks on
/// destruction (Save itself is atomic-rename, so no partial file lingers).
class SeedTempPath {
 public:
  explicit SeedTempPath(const char* tag) {
    static std::atomic<uint64_t> counter{0};
    path_ = "/tmp/kbqa_seed_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter.fetch_add(1)) + "_" + tag;
  }
  ~SeedTempPath() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace kbqa::fuzz

#endif  // KBQA_FUZZ_TARGETS_SEED_UTIL_H_
