#!/usr/bin/env bash
# Tier-1 verification. Run from the repo root:
#
#   scripts/check.sh          # lint + plain build/tests + ASan+UBSan tree
#   scripts/check.sh fast     # lint + plain build/tests only
#   scripts/check.sh --lint   # project lint only (scripts/lint.py)
#   scripts/check.sh --tsan   # ThreadSanitizer tree only (build + tests,
#                             # suppressions from tsan.supp — kept empty;
#                             # see the policy note at its top)
#   scripts/check.sh --serve-smoke
#                             # build bench_serving, run a short low-QPS
#                             # open-loop pass (--smoke), and validate the
#                             # BENCH_serving.json schema
#   scripts/check.sh --mem-smoke
#                             # build bench_memory_budget, run the Small
#                             # world sweep (--smoke: compression ratio +
#                             # paged budget curve + engine bit-identity),
#                             # and validate the BENCH_memory.json schema
#
# Exits non-zero on the first failure.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=${JOBS:-$(nproc)}

run_lint() {
  echo "== project lint =="
  python3 scripts/lint.py
}

run_plain() {
  echo "== plain build =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$JOBS"
  echo "== plain tests =="
  ctest --test-dir build --output-on-failure -j "$JOBS"
}

run_asan() {
  echo "== ASan+UBSan build =="
  cmake -B build-asan -S . -DASAN=ON >/dev/null
  cmake --build build-asan -j "$JOBS"
  echo "== ASan+UBSan tests =="
  ctest --test-dir build-asan --output-on-failure -j "$JOBS"
}

run_tsan() {
  echo "== TSan build =="
  cmake -B build-tsan -S . -DTSAN=ON >/dev/null
  cmake --build build-tsan -j "$JOBS"
  echo "== TSan tests =="
  TSAN_OPTIONS="suppressions=$(pwd)/tsan.supp halt_on_error=1 ${TSAN_OPTIONS:-}" \
    ctest --test-dir build-tsan --output-on-failure -j "$JOBS"
}

run_serve_smoke() {
  echo "== serving smoke (bench_serving --smoke) =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$JOBS" --target bench_serving
  (cd build && ./bench/bench_serving --smoke)
  echo "== BENCH_serving.json schema =="
  python3 scripts/validate_bench.py build/BENCH_serving.json
}

run_mem_smoke() {
  echo "== memory-budget smoke (bench_memory_budget --smoke) =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$JOBS" --target bench_memory_budget
  (cd build && ./bench/bench_memory_budget --smoke)
  echo "== BENCH_memory.json schema =="
  python3 scripts/validate_bench.py build/BENCH_memory.json
}

case "${1:-}" in
  --lint)
    run_lint
    echo "== OK (lint) =="
    ;;
  --serve-smoke)
    run_serve_smoke
    echo "== OK (serve smoke) =="
    ;;
  --mem-smoke)
    run_mem_smoke
    echo "== OK (mem smoke) =="
    ;;
  --tsan)
    run_tsan
    echo "== OK (tsan) =="
    ;;
  fast)
    run_lint
    run_plain
    echo "== OK (fast: ASan/UBSan skipped) =="
    ;;
  "")
    run_lint
    run_plain
    run_asan
    echo "== OK =="
    ;;
  *)
    echo "usage: scripts/check.sh [fast|--lint|--tsan|--serve-smoke|--mem-smoke]" >&2
    exit 2
    ;;
esac
