#!/usr/bin/env bash
# Tier-1 verification. Run from the repo root:
#
#   scripts/check.sh          # lint + plain build/tests + ASan+UBSan tree
#   scripts/check.sh fast     # lint + plain build/tests only
#   scripts/check.sh --lint   # project lint only (scripts/lint.py)
#   scripts/check.sh --tsan   # ThreadSanitizer tree only (build + tests,
#                             # suppressions from tsan.supp — kept empty;
#                             # see the policy note at its top)
#   scripts/check.sh --serve-smoke
#                             # build bench_serving, run a short low-QPS
#                             # open-loop pass (--smoke), and validate the
#                             # BENCH_serving.json schema
#   scripts/check.sh --mem-smoke
#                             # build bench_memory_budget, run the Small
#                             # world sweep (--smoke: compression ratio +
#                             # paged budget curve + engine bit-identity),
#                             # and validate the BENCH_memory.json schema
#   scripts/check.sh --mutation-smoke
#                             # build bench_mutation, run the Small-world
#                             # mixed read/write pass (--smoke: reads
#                             # during forced background merges + the
#                             # from-scratch-freeze equivalence check),
#                             # and validate the BENCH_mutation.json schema
#   scripts/check.sh --obs-smoke
#                             # wide-event telemetry end to end: run
#                             # bench_serving --smoke with the exposition
#                             # listener up, scrape /metricsz /statusz
#                             # /slo /eventz live, schema-check a scraped
#                             # wide event, then summarize the drained
#                             # JSONL with scripts/trace_summarize.py
#   scripts/check.sh --fuzz-smoke
#                             # deterministic fuzzing layer under ASan+UBSan:
#                             # replay every committed corpus + regression
#                             # input, run a bounded fuzz pass per target,
#                             # and prove the planted canary bug is found
#                             # within its budget (fuzz/ — DESIGN.md §11)
#
# Exits non-zero on the first failure.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=${JOBS:-$(nproc)}

run_lint() {
  echo "== project lint =="
  python3 scripts/lint.py
  echo "== trace_summarize golden =="
  python3 scripts/trace_summarize.py --top 3 tests/data/wide_events_golden.jsonl \
    | diff -u tests/data/wide_events_golden.txt -
}

run_plain() {
  echo "== plain build =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$JOBS"
  echo "== plain tests =="
  ctest --test-dir build --output-on-failure -j "$JOBS"
}

run_asan() {
  echo "== ASan+UBSan build =="
  cmake -B build-asan -S . -DASAN=ON >/dev/null
  cmake --build build-asan -j "$JOBS"
  echo "== ASan+UBSan tests =="
  ctest --test-dir build-asan --output-on-failure -j "$JOBS"
}

run_tsan() {
  echo "== TSan build =="
  cmake -B build-tsan -S . -DTSAN=ON >/dev/null
  cmake --build build-tsan -j "$JOBS"
  echo "== TSan tests =="
  TSAN_OPTIONS="suppressions=$(pwd)/tsan.supp halt_on_error=1 ${TSAN_OPTIONS:-}" \
    ctest --test-dir build-tsan --output-on-failure -j "$JOBS"
}

run_serve_smoke() {
  echo "== serving smoke (bench_serving --smoke) =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$JOBS" --target bench_serving
  (cd build && ./bench/bench_serving --smoke)
  echo "== BENCH_serving.json schema =="
  python3 scripts/validate_bench.py build/BENCH_serving.json
}

run_mem_smoke() {
  echo "== memory-budget smoke (bench_memory_budget --smoke) =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$JOBS" --target bench_memory_budget
  (cd build && ./bench/bench_memory_budget --smoke)
  echo "== BENCH_memory.json schema =="
  python3 scripts/validate_bench.py build/BENCH_memory.json
}

run_mutation_smoke() {
  echo "== live-mutation smoke (bench_mutation --smoke) =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$JOBS" --target bench_mutation
  (cd build && ./bench/bench_mutation --smoke)
  echo "== BENCH_mutation.json schema =="
  python3 scripts/validate_bench.py build/BENCH_mutation.json
}

run_obs_smoke() {
  echo "== obs smoke (bench_serving --smoke --obs-port=0) =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$JOBS" --target bench_serving
  rm -f build/obs_smoke.log build/wide_events.jsonl
  (cd build && exec ./bench/bench_serving --smoke --obs-port=0 \
      --obs-events=wide_events.jsonl >obs_smoke.log 2>&1) &
  local bench_pid=$!
  # The exposition listener comes up before the expensive world build, so
  # the port line appears within seconds even on a slow box.
  local port=""
  for _ in $(seq 1 120); do
    port=$(sed -n 's/.*exposition listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
        build/obs_smoke.log 2>/dev/null | head -1)
    [ -n "$port" ] && break
    kill -0 "$bench_pid" 2>/dev/null || break
    sleep 0.5
  done
  if [ -z "$port" ]; then
    echo "FAILED: exposition never reported a port" >&2
    cat build/obs_smoke.log >&2 || true
    kill "$bench_pid" 2>/dev/null || true
    exit 1
  fi
  echo "== live scrape on port $port =="
  if ! python3 scripts/obs_scrape_check.py "$port"; then
    cat build/obs_smoke.log >&2 || true
    kill "$bench_pid" 2>/dev/null || true
    exit 1
  fi
  if ! wait "$bench_pid"; then
    echo "FAILED: bench_serving exited non-zero" >&2
    cat build/obs_smoke.log >&2 || true
    exit 1
  fi
  tail -4 build/obs_smoke.log
  echo "== drained wide-event summary =="
  python3 scripts/trace_summarize.py --top 3 build/wide_events.jsonl
  echo "== BENCH_serving.json schema (with obs section) =="
  python3 scripts/validate_bench.py build/BENCH_serving.json
}

run_fuzz_smoke() {
  echo "== fuzz smoke (ASan+UBSan tree) =="
  cmake -B build-asan -S . -DASAN=ON >/dev/null
  local targets
  targets=$(python3 -c "import json; print(' '.join(sorted({e['target'] \
      for e in json.load(open('fuzz/registry.json'))['entries']})))")
  # shellcheck disable=SC2086
  cmake --build build-asan -j "$JOBS" --target $targets fuzz_canary
  echo "== corpus + regression replay, bounded pass per target =="
  ctest --test-dir build-asan --output-on-failure -j "$JOBS" \
      -R '^fuzz_.*_(replay|smoke)$'
  echo "== planted-bug canary =="
  ctest --test-dir build-asan --output-on-failure \
      -R '^fuzz_canary_finds_planted_bug$'
}

case "${1:-}" in
  --lint)
    run_lint
    echo "== OK (lint) =="
    ;;
  --serve-smoke)
    run_serve_smoke
    echo "== OK (serve smoke) =="
    ;;
  --mem-smoke)
    run_mem_smoke
    echo "== OK (mem smoke) =="
    ;;
  --mutation-smoke)
    run_mutation_smoke
    echo "== OK (mutation smoke) =="
    ;;
  --obs-smoke)
    run_obs_smoke
    echo "== OK (obs smoke) =="
    ;;
  --fuzz-smoke)
    run_fuzz_smoke
    echo "== OK (fuzz smoke) =="
    ;;
  --tsan)
    run_tsan
    echo "== OK (tsan) =="
    ;;
  fast)
    run_lint
    run_plain
    echo "== OK (fast: ASan/UBSan skipped) =="
    ;;
  "")
    run_lint
    run_plain
    run_asan
    echo "== OK =="
    ;;
  *)
    echo "usage: scripts/check.sh [fast|--lint|--tsan|--serve-smoke|--mem-smoke|--mutation-smoke|--obs-smoke|--fuzz-smoke]" >&2
    exit 2
    ;;
esac
