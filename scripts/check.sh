#!/usr/bin/env bash
# Tier-1 verification: plain build + full test suite, then the same under
# ASan+UBSan in a separate tree. Run from the repo root:
#
#   scripts/check.sh          # both configurations
#   scripts/check.sh fast     # plain build + tests only
#
# Exits non-zero on the first failure.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=${JOBS:-$(nproc)}

echo "== plain build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
echo "== plain tests =="
ctest --test-dir build --output-on-failure -j "$JOBS"

if [[ "${1:-}" == "fast" ]]; then
  echo "== OK (fast: ASan/UBSan skipped) =="
  exit 0
fi

echo "== ASan+UBSan build =="
cmake -B build-asan -S . -DASAN=ON >/dev/null
cmake --build build-asan -j "$JOBS"
echo "== ASan+UBSan tests =="
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "== OK =="
