#!/usr/bin/env python3
"""Project lint for the KBQA repository.

Static checks that encode repository conventions the compiler can't:

  rand          All randomness flows through util/rng (seeded xoshiro);
                std::rand / srand / std::mt19937 / std::random_device /
                std::default_random_engine anywhere else breaks the
                bit-reproducibility contract.
  naked-new     No naked `new` / `delete` outside std smart-pointer
                factories. Intentional leaks (static registries that must
                survive thread exit) carry `// NOLINT(kbqa-naked-new)`
                with a justifying comment.
  cout          Library code (src/) never writes to std::cout/std::cerr;
                printing belongs to tools/, bench/, and tests/. Functions
                that format take an std::ostream&.
  metric-name   Metric/span name literals passed to the KBQA_* macros and
                registry Get* calls follow snake.dot convention:
                lowercase [a-z0-9_] segments joined by single dots
                (e.g. "online.answer_cache.hits", span name "em.iteration").
  iwyu-util     src/util headers' std includes match use: no missing
                <header> for a used std symbol, no included <header> with
                zero used symbols.
  self-contained  Every src/**/*.h compiles standalone as the sole include
                of a TU (include-what-you-use style).
  fuzz-registry Every public parse/decode entry point in src/**/*.h (any
                declaration matching (Parse|Decode|Import|Load|Open|
                Unescape)*) is claimed by fuzz/registry.json, and every
                registry entry names a fuzz target that exists under
                fuzz/targets/ and is wired into fuzz/CMakeLists.txt — a
                new byte-decoding surface cannot land without a harness.

Any rule can be suppressed per line with `// NOLINT(kbqa-<rule>)`.
Exit status 0 = clean, 1 = findings, 2 = usage/environment error.
"""

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SRC_DIRS = ["src"]
ALL_CODE_DIRS = ["src", "tests", "bench", "tools", "fuzz"]
CC_EXTENSIONS = (".h", ".cc", ".cpp", ".hpp")

NOLINT_RE = re.compile(r"NOLINT\((kbqa-[a-z-]+)\)")


def find_files(dirs):
    out = []
    for d in dirs:
        root = os.path.join(REPO, d)
        if not os.path.isdir(root):
            continue
        for dirpath, _, names in os.walk(root):
            for name in sorted(names):
                if name.endswith(CC_EXTENSIONS):
                    out.append(os.path.join(dirpath, name))
    return sorted(out)


def strip_comments_and_strings(text):
    """Blanks out comment and string/char literal *contents*, preserving
    newlines and overall offsets, so rule regexes never match inside either.
    """
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == '"':
                state = "string"
                out.append('"')
                i += 1
            elif c == "'":
                state = "char"
                out.append("'")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        else:  # string or char literal
            quote = '"' if state == "string" else "'"
            if c == "\\" and nxt:
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(quote)
                i += 1
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
    return "".join(out)


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = os.path.relpath(path, REPO)
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [kbqa-{self.rule}] {self.message}"


def suppressed(raw_line, rule):
    return f"NOLINT(kbqa-{rule})" in raw_line


def grep_rule(path, raw_lines, stripped_lines, pattern, rule, message,
              findings):
    rx = re.compile(pattern)
    for lineno, line in enumerate(stripped_lines, 1):
        if rx.search(line) and not suppressed(raw_lines[lineno - 1], rule):
            findings.append(Finding(path, lineno, rule, message))


# ---------------------------------------------------------------- rules --

RAND_PATTERN = (
    r"std::rand\b|\bsrand\s*\(|std::mt19937|std::default_random_engine"
    r"|std::random_device|std::random_shuffle"
)


def check_rand(path, raw_lines, stripped_lines, findings):
    rel = os.path.relpath(path, REPO).replace(os.sep, "/")
    if rel.startswith("src/util/rng"):
        return  # the one sanctioned randomness implementation
    grep_rule(path, raw_lines, stripped_lines, RAND_PATTERN, "rand",
              "randomness outside util/rng breaks reproducibility; "
              "use kbqa::Rng", findings)


NEW_PATTERN = r"\bnew\s+[A-Za-z_(:]|\bdelete\b"


def check_naked_new(path, raw_lines, stripped_lines, findings):
    for lineno, line in enumerate(stripped_lines, 1):
        if not re.search(NEW_PATTERN, line):
            continue
        # `= delete` / `delete;` declarations are the C++ feature, not the
        # operator; skip them (the operator form always has an operand).
        if re.search(r"\bdelete\s*(;|,|\))", line) and "new" not in line:
            continue
        if suppressed(raw_lines[lineno - 1], "naked-new"):
            continue
        findings.append(Finding(
            path, lineno, "naked-new",
            "naked new/delete; use make_unique/containers or annotate an "
            "intentional leak with NOLINT(kbqa-naked-new)"))


def check_cout(path, raw_lines, stripped_lines, findings):
    grep_rule(path, raw_lines, stripped_lines, r"std::(cout|cerr)\b", "cout",
              "no std::cout/std::cerr in library code; take an "
              "std::ostream& (printing lives in tools/bench/tests)",
              findings)


METRIC_CALL_RE = re.compile(
    r"(?:KBQA_COUNTER_ADD|KBQA_GAUGE_SET|KBQA_HISTOGRAM_RECORD"
    r"|KBQA_TRACE_SPAN_SAMPLED|KBQA_TRACE_SPAN"
    r"|GetCounter|GetGauge|GetHistogram)\s*\(\s*\"([^\"]*)\"\s*([+)re,])"
)
METRIC_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)*$")
METRIC_PREFIX_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)*\.$")


def check_metric_names(path, raw_lines, _stripped_lines, findings):
    # Works on raw lines: the names of interest ARE string literals.
    for lineno, line in enumerate(raw_lines, 1):
        for m in METRIC_CALL_RE.finditer(line):
            name, after = m.group(1), m.group(2)
            if after == "+":
                ok = METRIC_PREFIX_RE.match(name)  # concatenated prefix
            else:
                ok = METRIC_NAME_RE.match(name)
            if not ok and not suppressed(line, "metric-name"):
                findings.append(Finding(
                    path, lineno, "metric-name",
                    f'metric name "{name}" violates snake.dot convention '
                    "([a-z0-9_] segments joined by single dots)"))


# IWYU-lite: std symbol -> owning header, for the symbols src/util uses.
# Both directions are enforced over src/util headers only — a tight,
# hand-verified map beats a wrong general one.
IWYU_SYMBOLS = {
    "<atomic>": [r"std::atomic\b", r"std::memory_order"],
    "<array>": [r"std::array\b"],
    "<cassert>": [r"\bassert\s*\("],
    "<cstddef>": [r"\bsize_t\b", r"std::byte\b", r"\bptrdiff_t\b"],
    "<cstdint>": [r"\b(u?int(8|16|32|64)_t)\b", r"\bUINT64_MAX\b"],
    "<chrono>": [r"std::chrono\b"],
    "<condition_variable>": [r"std::condition_variable"],
    "<functional>": [r"std::function\b", r"std::hash\b", r"std::less\b"],
    "<list>": [r"std::list\b"],
    "<mutex>": [r"std::mutex\b", r"std::lock_guard\b", r"std::unique_lock\b"],
    "<optional>": [r"std::optional\b", r"std::nullopt\b"],
    "<ostream>": [r"std::ostream\b"],
    "<string>": [r"std::string\b(?!_view)"],
    "<string_view>": [r"std::string_view\b"],
    "<thread>": [r"std::thread\b"],
    "<unordered_map>": [r"std::unordered_map\b"],
    "<utility>": [r"std::move\b", r"std::pair\b", r"std::swap\b",
                  r"std::forward\b", r"std::exchange\b"],
    "<vector>": [r"std::vector\b"],
}

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+(<[^>]+>|"[^"]+")', re.M)


def check_iwyu_util(findings):
    util_dir = os.path.join(REPO, "src", "util")
    headers = [f for f in sorted(os.listdir(util_dir)) if f.endswith(".h")]
    for header in headers:
        path = os.path.join(util_dir, header)
        with open(path, encoding="utf-8") as f:
            raw = f.read()
        stripped = strip_comments_and_strings(raw)
        includes = set(INCLUDE_RE.findall(stripped))
        for std_header, patterns in IWYU_SYMBOLS.items():
            used = any(re.search(p, stripped) for p in patterns)
            if used and std_header not in includes:
                findings.append(Finding(
                    path, 1, "iwyu",
                    f"uses symbols from {std_header} without including it"))
            if not used and std_header in includes:
                findings.append(Finding(
                    path, 1, "iwyu",
                    f"includes {std_header} but uses none of its symbols"))


def src_headers():
    """Repo-relative paths (posix form) of every header under src/."""
    out = []
    for path in find_files(SRC_DIRS):
        if path.endswith(".h"):
            out.append(os.path.relpath(path, REPO).replace(os.sep, "/"))
    return out


def check_self_contained(findings, compiler):
    """Compiles every src/**/*.h standalone. One batched -fsyntax-only
    invocation covers the common all-clean case (one compiler start, not
    one per header matters on a 1-core CI box); on failure each header is
    re-checked individually so the finding lands on the right file.
    """
    if not compiler:
        return
    headers = src_headers()
    with tempfile.TemporaryDirectory() as tmp:
        tus = []
        for rel in headers:
            include = rel[len("src/"):]
            tu_path = os.path.join(
                tmp, "tu_" + include.replace("/", "_") + ".cc")
            with open(tu_path, "w", encoding="utf-8") as tu:
                tu.write(f'#include "{include}"\n')
            tus.append((rel, tu_path))
        base_cmd = [compiler, "-std=c++20", "-fsyntax-only",
                    "-I", os.path.join(REPO, "src")]
        batch = subprocess.run(base_cmd + [tu for _, tu in tus],
                               capture_output=True, text=True)
        if batch.returncode == 0:
            return
        for rel, tu_path in tus:
            proc = subprocess.run(base_cmd + [tu_path],
                                  capture_output=True, text=True)
            if proc.returncode != 0:
                first = (proc.stderr.strip().splitlines() or ["?"])[0]
                findings.append(Finding(
                    os.path.join(REPO, rel), 1, "self-contained",
                    f"header does not compile standalone: {first}"))


# Declarations that take untrusted bytes. Matched against comment-stripped
# header text, so prose like "Loads a snapshot" never triggers.
PARSE_SURFACE_RE = re.compile(
    r"\b((?:Parse|Decode|Import|Load|Open|Unescape)[A-Za-z0-9_]*)\s*\(")


def check_fuzz_registry(findings):
    registry_path = os.path.join(REPO, "fuzz", "registry.json")
    try:
        with open(registry_path, encoding="utf-8") as f:
            registry = json.load(f)
    except (OSError, ValueError) as e:
        findings.append(Finding(registry_path, 1, "fuzz-registry",
                                f"cannot load registry: {e}"))
        return

    claimed = {}   # header -> set of function names claimed by entries
    for entry in registry.get("entries", []):
        claimed.setdefault(entry["header"], set()).update(entry["functions"])
    for entry in registry.get("exempt", []):
        claimed.setdefault(entry["header"], set()).add(entry["function"])

    # Direction 1: every parse/decode declaration is claimed.
    for rel in src_headers():
        path = os.path.join(REPO, rel)
        with open(path, encoding="utf-8") as f:
            raw = f.read()
        raw_lines = raw.splitlines()
        stripped = strip_comments_and_strings(raw).splitlines()
        for lineno, line in enumerate(stripped, 1):
            for m in PARSE_SURFACE_RE.finditer(line):
                name = m.group(1)
                if name in claimed.get(rel, set()):
                    continue
                if suppressed(raw_lines[lineno - 1], "fuzz-registry"):
                    continue
                findings.append(Finding(
                    path, lineno, "fuzz-registry",
                    f"parse/decode surface {name}() has no fuzz target; "
                    "add it to fuzz/registry.json (entries or exempt) and "
                    "cover it under fuzz/targets/"))

    # Direction 2: every entry's target exists and is wired into CMake.
    cmake_path = os.path.join(REPO, "fuzz", "CMakeLists.txt")
    try:
        with open(cmake_path, encoding="utf-8") as f:
            cmake = f.read()
    except OSError:
        cmake = ""
    for entry in registry.get("entries", []):
        target = entry["target"]
        target_cc = os.path.join(REPO, "fuzz", "targets", target + ".cc")
        if not os.path.isfile(target_cc):
            findings.append(Finding(
                registry_path, 1, "fuzz-registry",
                f"registry target {target} has no fuzz/targets/{target}.cc"))
        elif not re.search(r"\b" + re.escape(target) + r"\b", cmake):
            findings.append(Finding(
                registry_path, 1, "fuzz-registry",
                f"registry target {target} is not wired into "
                "fuzz/CMakeLists.txt"))
        if not os.path.isfile(os.path.join(REPO, entry["header"])):
            findings.append(Finding(
                registry_path, 1, "fuzz-registry",
                f"registry names missing header {entry['header']}"))


def find_compiler():
    for cc in ("c++", "g++", "clang++"):
        try:
            subprocess.run([cc, "--version"], capture_output=True, check=True)
            return cc
        except (OSError, subprocess.CalledProcessError):
            continue
    return None


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--no-compile", action="store_true",
                        help="skip the self-containment compile checks")
    args = parser.parse_args()

    findings = []
    for path in find_files(ALL_CODE_DIRS):
        rel = os.path.relpath(path, REPO).replace(os.sep, "/")
        with open(path, encoding="utf-8") as f:
            raw = f.read()
        raw_lines = raw.splitlines()
        stripped_lines = strip_comments_and_strings(raw).splitlines()

        check_rand(path, raw_lines, stripped_lines, findings)
        check_metric_names(path, raw_lines, stripped_lines, findings)
        if rel.startswith("src/"):
            check_naked_new(path, raw_lines, stripped_lines, findings)
            check_cout(path, raw_lines, stripped_lines, findings)

    compiler = None if args.no_compile else find_compiler()
    if not args.no_compile and compiler is None:
        print("lint: warning: no C++ compiler found; "
              "skipping self-containment checks", file=sys.stderr)
    check_iwyu_util(findings)
    check_self_contained(findings, compiler)
    check_fuzz_registry(findings)

    for finding in findings:
        print(finding)
    if findings:
        print(f"lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
