#!/usr/bin/env python3
"""Live-scrape check for the exposition endpoints (check.sh --obs-smoke).

Runs against a bench_serving (or examples/serving_server) process that
printed "exposition listening on 127.0.0.1:PORT". Verifies:

  /statusz   — reports build info and the wide-event sink totals
  /metricsz  — text tables; ?format=json parses as a JSON object
  /slo       — parses as JSON with burn rates and the firing flag
  /eventz    — retried until at least one wide event is visible (the
               load phases start shortly after the listener), then one
               event line is schema-checked against the DESIGN.md §8
               wide-event shape

Usage: obs_scrape_check.py <port> [timeout_s]
"""

import json
import sys
import time
import urllib.request

OUTCOMES = {"answered", "unanswered", "deadline_exceeded", "error",
            "rejected", "shed_expired", "shed_shutdown"}
STAGES = {"ner", "conceptualize", "template_match", "score",
          "value_lookup", "rank"}


def fetch(port, path):
    with urllib.request.urlopen(
            f"http://127.0.0.1:{port}{path}", timeout=10) as response:
        return response.read().decode()


def fail(msg):
    print(f"obs scrape: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_wide_event(line):
    event = json.loads(line)
    for key in ("trace_id", "outcome", "admit_ns", "has_deadline",
                "deadline_budget_ns", "batch_size", "question_bytes",
                "queue_wait_ns", "batch_wait_ns", "service_ns", "total_ns",
                "stages", "value_cache", "answer_cache", "block_cache"):
        if key not in event:
            fail(f"wide event missing key {key}: {line[:200]}")
    if event["outcome"] not in OUTCOMES:
        fail(f"unknown outcome {event['outcome']!r}")
    if set(event["stages"].keys()) != STAGES:
        fail(f"stage set mismatch: {sorted(event['stages'])}")
    stage_sum = sum(s["ns"] for s in event["stages"].values())
    if stage_sum > event["service_ns"]:
        fail(f"stage sum {stage_sum} exceeds service_ns "
             f"{event['service_ns']} (trace {event['trace_id']})")
    if event["trace_id"] <= 0:
        fail("trace_id not positive")
    return event


def main():
    port = int(sys.argv[1])
    timeout_s = float(sys.argv[2]) if len(sys.argv) > 2 else 120.0

    statusz = fetch(port, "/statusz")
    for needle in ("build.compiler", "wide_events.recorded",
                   "wide_events.sample_period"):
        if needle not in statusz:
            fail(f"/statusz missing {needle}")
    print("obs scrape: /statusz OK")

    if not fetch(port, "/metricsz").strip():
        fail("/metricsz is empty")
    metrics = json.loads(fetch(port, "/metricsz?format=json"))
    if not isinstance(metrics, dict):
        fail("/metricsz?format=json is not an object")
    print("obs scrape: /metricsz OK")

    slo = json.loads(fetch(port, "/slo"))
    for key in ("availability_target", "short_burn_rate", "long_burn_rate",
                "firing"):
        if key not in slo:
            fail(f"/slo missing {key}")
    print(f"obs scrape: /slo OK (firing={slo['firing']})")

    # The load phases begin after the world build; poll until events show.
    deadline = time.monotonic() + timeout_s
    lines = []
    while time.monotonic() < deadline:
        lines = [l for l in fetch(port, "/eventz?n=5").splitlines()
                 if l.strip()]
        if lines:
            break
        time.sleep(0.5)
    if not lines:
        fail(f"/eventz served no wide events within {timeout_s:.0f}s")
    event = check_wide_event(lines[-1])
    print(f"obs scrape: /eventz OK ({len(lines)} events, last: trace "
          f"{event['trace_id']}, outcome {event['outcome']}, total "
          f"{event['total_ns']} ns)")

    # With load flowing, the serving metrics must be visible too.
    if "serve." not in fetch(port, "/metricsz"):
        fail("/metricsz shows no serve.* metrics under load")
    print("obs scrape: serve.* metrics visible under load")


if __name__ == "__main__":
    main()
