#!/usr/bin/env python3
"""Summarize wide-event JSONL (the /eventz payload, or a drain written by
bench_serving --obs-events) into a latency-attribution report.

Each input line is one request's wide event (DESIGN.md §8): terminal
outcome, end-to-end latency split into queue-wait / batch-wait / service,
per-stage nanosecond attribution inside the service span, and cache
traffic. The report answers "where did the time go" at the fleet level:

  - outcome mix (answered / shed / rejected / ...)
  - end-to-end and split latency percentiles
  - per-stage p50/p99 plus each stage's share of total service time,
    including the unattributed remainder (service minus stage sum)
  - the top-K slowest requests with their dominant stage

Percentiles are nearest-rank (ceil(q*n)) on exact values — deterministic,
so the output is golden-testable (tests/data/wide_events_golden.*).

Usage: trace_summarize.py [--top K] [events.jsonl ...]   (default: stdin)
"""

import argparse
import json
import math
import sys

# Display order mirrors the answer pipeline; kStageNames in wide_event.cc.
STAGES = ("ner", "conceptualize", "template_match", "score",
          "value_lookup", "rank")
OUTCOMES = ("answered", "unanswered", "deadline_exceeded", "error",
            "rejected", "shed_expired", "shed_shutdown")


def percentile(sorted_values, q):
    """Nearest-rank percentile of an already-sorted list (0 if empty)."""
    if not sorted_values:
        return 0
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[rank - 1]


def load_events(paths):
    events = []
    streams = [(p, open(p)) for p in paths] if paths else [("<stdin>",
                                                            sys.stdin)]
    for name, stream in streams:
        for lineno, line in enumerate(stream, 1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as e:
                print(f"{name}:{lineno}: skipping unparseable line ({e})",
                      file=sys.stderr)
                continue
            if "trace_id" not in event or "outcome" not in event:
                print(f"{name}:{lineno}: skipping non-wide-event object",
                      file=sys.stderr)
                continue
            events.append(event)
        if stream is not sys.stdin:
            stream.close()
    return events


def ms(ns):
    return ns / 1e6


def dominant_stage(event):
    best_name, best_ns = "-", 0
    for stage in STAGES:
        record = event.get("stages", {}).get(stage, {})
        if record.get("ns", 0) > best_ns:
            best_name, best_ns = stage, record["ns"]
    return best_name


def summarize(events, top_k, out):
    n = len(events)
    out.write(f"wide events: {n}\n")
    if n == 0:
        return

    out.write("\n== outcomes ==\n")
    for outcome in OUTCOMES:
        count = sum(1 for e in events if e["outcome"] == outcome)
        if count:
            out.write(f"  {outcome:<17} {count:>6}  ({100.0 * count / n:.1f}%)\n")

    out.write("\n== latency split (ms) ==\n")
    out.write(f"  {'split':<12} {'p50':>9} {'p99':>9} {'max':>9}\n")
    for label, key in (("total", "total_ns"), ("queue_wait", "queue_wait_ns"),
                       ("batch_wait", "batch_wait_ns"),
                       ("service", "service_ns")):
        values = sorted(e.get(key, 0) for e in events)
        out.write(f"  {label:<12} {ms(percentile(values, 0.5)):>9.3f} "
                  f"{ms(percentile(values, 0.99)):>9.3f} "
                  f"{ms(values[-1]):>9.3f}\n")

    # Stage attribution: percentiles over requests that ran the stage;
    # share is of aggregate service time, so the rows plus "unattributed"
    # (dispatch glue, uninstrumented tail) sum to ~100%.
    served = [e for e in events if e.get("service_ns", 0) > 0]
    total_service = sum(e["service_ns"] for e in served)
    out.write("\n== service-time attribution ==\n")
    if total_service == 0:
        out.write("  (no served requests)\n")
    else:
        out.write(f"  {'stage':<16} {'reqs':>6} {'p50_ms':>9} {'p99_ms':>9} "
                  f"{'share':>7}\n")
        attributed = 0
        for stage in STAGES:
            values = sorted(
                e["stages"][stage]["ns"] for e in served
                if e.get("stages", {}).get(stage, {}).get("count", 0) > 0)
            stage_total = sum(values)
            attributed += stage_total
            if not values:
                continue
            out.write(f"  {stage:<16} {len(values):>6} "
                      f"{ms(percentile(values, 0.5)):>9.3f} "
                      f"{ms(percentile(values, 0.99)):>9.3f} "
                      f"{100.0 * stage_total / total_service:>6.1f}%\n")
        out.write(f"  {'(unattributed)':<16} {len(served):>6} {'':>9} {'':>9} "
                  f"{100.0 * (total_service - attributed) / total_service:>6.1f}%\n")

    out.write("\n== cache traffic ==\n")
    for cache in ("value_cache", "answer_cache", "block_cache"):
        hits = sum(e.get(cache, {}).get("hits", 0) for e in events)
        misses = sum(e.get(cache, {}).get("misses", 0) for e in events)
        total = hits + misses
        rate = f"{100.0 * hits / total:.1f}%" if total else "n/a"
        out.write(f"  {cache:<13} hits {hits:>8}  misses {misses:>8}  "
                  f"hit-rate {rate}\n")

    out.write(f"\n== top {top_k} slowest ==\n")
    slowest = sorted(events, key=lambda e: (-e.get("total_ns", 0),
                                            e["trace_id"]))[:top_k]
    out.write(f"  {'trace_id':>10} {'total_ms':>9} {'queue_ms':>9} "
              f"{'service_ms':>10} {'outcome':<17} {'dominant_stage':<14}\n")
    for e in slowest:
        out.write(f"  {e['trace_id']:>10} {ms(e.get('total_ns', 0)):>9.3f} "
                  f"{ms(e.get('queue_wait_ns', 0)):>9.3f} "
                  f"{ms(e.get('service_ns', 0)):>10.3f} "
                  f"{e['outcome']:<17} {dominant_stage(e):<14}\n")


def main():
    parser = argparse.ArgumentParser(
        description="Summarize wide-event JSONL into latency attribution.")
    parser.add_argument("--top", type=int, default=5, metavar="K",
                        help="slowest requests to list (default 5)")
    parser.add_argument("paths", nargs="*", help="JSONL files (default stdin)")
    args = parser.parse_args()
    events = load_events(args.paths)
    summarize(events, args.top, sys.stdout)
    return 0 if events else 1


if __name__ == "__main__":
    sys.exit(main())
