#!/usr/bin/env python3
"""Schema checks for bench JSON artifacts (scripts/check.sh smoke targets).

One validator per artifact family, dispatched on file name:

  BENCH_serving.json  — the serving load harness: a steady run below
      saturation that kept up with its offered load, an overload run that
      actually exercised admission control, and p50/p99/p999 latency split
      into queue-wait vs service for both.
  BENCH_memory.json   — the memory-budget bench: compressed-vs-raw
      residency of the expanded-KB substrate (ratio <= 0.5) and the
      hit-rate/latency sweep of the paged substrate, with the engine
      bit-identity flag asserted at every budget point.
  BENCH_observability.json — the obs bench: paired A/B overhead of the
      metrics registry AND of wide-event telemetry through the serving
      front door, both gated under their 2% budgets, plus the bare-engine
      context-propagation delta (informational) and metric coverage.

Usage: validate_bench.py <BENCH_*.json> [more...]
"""

import json
import os
import sys

LATENCY_KEYS = ("p50_ns", "p99_ns", "p999_ns", "mean_ns", "count")
RUN_KEYS = (
    "target_qps",
    "offered",
    "wall_s",
    "completed",
    "rejected",
    "shed_expired",
    "shed_shutdown",
    "throughput_qps",
    "mean_batch_size",
    "latency",
)


class SchemaError(Exception):
    pass


def require(cond, msg):
    if not cond:
        raise SchemaError(msg)


def is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


# ---- BENCH_serving.json ----


def check_latency(run_name, latency):
    for split in ("total", "queue_wait", "service"):
        require(split in latency, f"{run_name}.latency.{split} missing")
        for key in LATENCY_KEYS:
            value = latency[split].get(key)
            require(
                is_number(value) and value >= 0,
                f"{run_name}.latency.{split}.{key} missing or negative",
            )
        require(
            latency[split]["p50_ns"]
            <= latency[split]["p99_ns"]
            <= latency[split]["p999_ns"],
            f"{run_name}.latency.{split} percentiles not monotone",
        )


def check_run(name, run):
    for key in RUN_KEYS:
        require(key in run, f"{name}.{key} missing")
    require(run["completed"] > 0, f"{name} completed no requests")
    require(run["throughput_qps"] > 0, f"{name} throughput is zero")
    accounted = (
        run["completed"]
        + run["rejected"]
        + run["shed_expired"]
        + run["shed_shutdown"]
    )
    require(
        accounted == run["offered"],
        f"{name}: offered {run['offered']} != accounted {accounted}",
    )
    check_latency(name, run["latency"])


def validate_serving(doc):
    for key in ("hardware_threads", "config", "engine_serial_qps",
                "capacity_estimate_qps", "steady", "overload", "batch_ab"):
        require(key in doc, f"top-level {key} missing")
    require(doc["hardware_threads"] >= 1, "hardware_threads < 1")

    check_run("steady", doc["steady"])
    check_run("overload", doc["overload"])

    steady = doc["steady"]
    require(
        steady["rejected"] == 0,
        "steady (below saturation) rejected requests",
    )
    require(
        steady["completed"] >= 0.8 * steady["offered"],
        "steady throughput did not track offered load",
    )
    require(
        doc["overload"]["rejected"] > 0,
        "overload run never hit admission control",
    )

    ab = doc["batch_ab"]
    for key in ("threads", "batch1_qps", "batch32_qps", "speedup"):
        require(key in ab, f"batch_ab.{key} missing")
    require(ab["batch1_qps"] > 0 and ab["batch32_qps"] > 0,
            "batch A/B throughput is zero")

    # obs section (wide-event sink + SLO accounting); optional for JSONs
    # emitted before the telemetry PR, required keys once present.
    if "obs" in doc:
        obs = doc["obs"]
        for key in ("sample_period", "wide_events_recorded",
                    "wide_events_drained", "wide_events_dropped",
                    "slo_good", "slo_bad", "slo_burn_short",
                    "slo_burn_long", "slo_firing"):
            require(key in obs, f"obs.{key} missing")
        if obs["sample_period"] == 1:
            require(obs["wide_events_recorded"] > 0,
                    "1-in-1 sampling recorded no wide events")
        require(obs["slo_good"] + obs["slo_bad"] > 0,
                "slo monitor saw no terminal outcomes")


# ---- BENCH_observability.json ----

OVERHEAD_KEYS = (
    "questions",
    "pairs",
    "median_paired_diff_ns",
    "overhead_percent",
    "budget_percent",
)


def check_overhead(name, section):
    for key in OVERHEAD_KEYS:
        require(key in section, f"{name}.{key} missing")
    require(section["pairs"] >= 100, f"{name} has too few A/B pairs")
    require(
        is_number(section["overhead_percent"]),
        f"{name}.overhead_percent not numeric",
    )
    require(
        section["overhead_percent"] < section["budget_percent"],
        f"{name}: overhead {section['overhead_percent']}% breaks the "
        f"{section['budget_percent']}% budget",
    )


def validate_observability(doc):
    for key in ("hardware_threads", "answer_overhead", "wide_event_overhead",
                "context_propagation", "coverage", "trace",
                "snapshot_json_round_trip", "batched_run"):
        require(key in doc, f"top-level {key} missing")

    check_overhead("answer_overhead", doc["answer_overhead"])
    check_overhead("wide_event_overhead", doc["wide_event_overhead"])
    require(
        doc["wide_event_overhead"].get("events_recorded", 0) > 0,
        "wide_event_overhead arm recorded no events",
    )

    # Propagation delta is informational (the budget is gated on the
    # through-the-server denominator above), but must be present and sane.
    ctx = doc["context_propagation"]
    for key in ("questions", "pairs", "median_paired_diff_ns",
                "with_context_median_ns", "without_context_median_ns",
                "overhead_percent"):
        require(key in ctx, f"context_propagation.{key} missing")
    require(ctx["without_context_median_ns"] > 0,
            "context_propagation baseline is zero")

    coverage = doc["coverage"]
    for key in ("span_answer_count", "value_cache_hits", "em_iterations",
                "thread_pool_tasks"):
        require(key in coverage, f"coverage.{key} missing")
        require(coverage[key] > 0, f"coverage.{key} is zero")
    require(doc["snapshot_json_round_trip"] is True,
            "snapshot JSON round-trip failed")


# ---- BENCH_memory.json ----

SWEEP_KEYS = (
    "budget_fraction",
    "budget_bytes",
    "resident_bytes",
    "hit_rate",
    "evictions",
    "p50_ns",
    "p99_ns",
    "lookups_per_s",
    "answers_identical",
    "questions_compared",
)


def validate_memory(doc):
    for key in ("config", "raw_bytes", "full_residency", "sweep"):
        require(key in doc, f"top-level {key} missing")
    require(is_number(doc["raw_bytes"]) and doc["raw_bytes"] > 0,
            "raw_bytes missing or non-positive")

    full = doc["full_residency"]
    for key in ("resident_bytes", "payload_bytes", "index_bytes",
                "paths_bytes", "ratio_vs_raw", "num_blocks", "num_triples"):
        require(key in full, f"full_residency.{key} missing")
    require(full["num_blocks"] >= 1, "substrate has no blocks")
    require(full["num_triples"] >= 1, "substrate has no triples")
    require(
        0 < full["ratio_vs_raw"] <= 0.5,
        f"compression ratio {full['ratio_vs_raw']} above the 50% bar",
    )
    require(
        full["resident_bytes"]
        >= full["payload_bytes"] + full["index_bytes"] + full["paths_bytes"],
        "full_residency parts exceed the resident total",
    )

    sweep = doc["sweep"]
    require(isinstance(sweep, list) and len(sweep) >= 3,
            "sweep needs at least 3 budget points")
    prev_fraction = None
    for i, point in enumerate(sweep):
        name = f"sweep[{i}]"
        for key in SWEEP_KEYS:
            require(key in point, f"{name}.{key} missing")
        require(
            0 < point["budget_fraction"] <= 1.0,
            f"{name}.budget_fraction out of (0, 1]",
        )
        if prev_fraction is not None:
            require(
                point["budget_fraction"] < prev_fraction,
                f"{name} fractions must descend (100% -> 5%)",
            )
        prev_fraction = point["budget_fraction"]
        require(0 <= point["hit_rate"] <= 1.0, f"{name}.hit_rate out of [0,1]")
        require(
            point["p50_ns"] <= point["p99_ns"],
            f"{name} percentiles not monotone",
        )
        require(point["lookups_per_s"] > 0, f"{name} measured no throughput")
        require(
            point["answers_identical"] is True,
            f"{name}: engine answers diverged under this budget",
        )
        require(
            point["questions_compared"] > 0,
            f"{name} compared no questions",
        )
    require(
        any(p["budget_fraction"] <= 0.10 for p in sweep),
        "sweep never reached the 10% budget point",
    )


# ---- BENCH_mutation.json ----


def validate_mutation(doc):
    for key in ("config", "base", "quiescent", "during_merge", "final",
                "equivalence"):
        require(key in doc, f"top-level {key} missing")

    for phase_name in ("quiescent", "during_merge"):
        phase = doc[phase_name]
        for key in ("answers", "p50_ns", "p99_ns", "mean_ns"):
            value = phase.get(key)
            require(
                is_number(value) and value >= 0,
                f"{phase_name}.{key} missing or negative",
            )
        require(phase["answers"] > 0, f"{phase_name} answered no questions")
        require(
            phase["p50_ns"] <= phase["p99_ns"],
            f"{phase_name} percentiles not monotone",
        )

    during = doc["during_merge"]
    require(during["merges"] >= 1, "no merge completed during the load phase")
    require(during["ops_applied"] > 0, "no mutation ops applied")

    # Bounded read p99 while the background re-freeze runs: the RCU swap
    # must never block readers, so the merge-phase p99 stays within a
    # generous multiple of quiescent (or an absolute 100ms floor that
    # absorbs tiny-denominator noise in smoke runs).
    bound = max(100e6, 25 * doc["quiescent"]["p99_ns"])
    require(
        during["p99_ns"] <= bound,
        f"during_merge p99 {during['p99_ns']}ns exceeds bound {bound:.0f}ns",
    )

    eq = doc["equivalence"]
    require(
        eq["kb_bit_identical"] is True,
        "merged base diverged from the from-scratch freeze",
    )
    require(
        eq["answers_identical"] is True,
        "live answers diverged from the from-scratch engine",
    )
    require(eq["questions"] > 0, "equivalence compared no questions")

    require(doc["final"]["epoch"] >= 1, "final epoch < 1 (no merge published)")


VALIDATORS = {
    "BENCH_serving.json": validate_serving,
    "BENCH_memory.json": validate_memory,
    "BENCH_observability.json": validate_observability,
    "BENCH_mutation.json": validate_mutation,
}


def main():
    if len(sys.argv) < 2:
        print("usage: validate_bench.py <BENCH_*.json> [more...]",
              file=sys.stderr)
        sys.exit(2)
    for path in sys.argv[1:]:
        name = os.path.basename(path)
        validator = VALIDATORS.get(name)
        if validator is None:
            print(f"{name}: FAIL: no validator for this artifact",
                  file=sys.stderr)
            sys.exit(1)
        with open(path) as f:
            doc = json.load(f)
        try:
            validator(doc)
        except SchemaError as e:
            print(f"{name} schema: FAIL: {e}", file=sys.stderr)
            sys.exit(1)
        print(f"{name} schema: OK")


if __name__ == "__main__":
    main()
