#!/usr/bin/env python3
"""Schema check for BENCH_serving.json (scripts/check.sh --serve-smoke).

Validates the shape the serving load harness promises: a steady run below
saturation that kept up with its offered load, an overload run that
actually exercised admission control (nonzero rejected), and p50/p99/p999
latency split into queue-wait vs service for both.
"""

import json
import sys

LATENCY_KEYS = ("p50_ns", "p99_ns", "p999_ns", "mean_ns", "count")
RUN_KEYS = (
    "target_qps",
    "offered",
    "wall_s",
    "completed",
    "rejected",
    "shed_expired",
    "shed_shutdown",
    "throughput_qps",
    "mean_batch_size",
    "latency",
)


def fail(msg):
    print(f"BENCH_serving.json schema: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def require(cond, msg):
    if not cond:
        fail(msg)


def check_latency(run_name, latency):
    for split in ("total", "queue_wait", "service"):
        require(split in latency, f"{run_name}.latency.{split} missing")
        for key in LATENCY_KEYS:
            value = latency[split].get(key)
            require(
                isinstance(value, (int, float)) and value >= 0,
                f"{run_name}.latency.{split}.{key} missing or negative",
            )
        require(
            latency[split]["p50_ns"]
            <= latency[split]["p99_ns"]
            <= latency[split]["p999_ns"],
            f"{run_name}.latency.{split} percentiles not monotone",
        )


def check_run(name, run):
    for key in RUN_KEYS:
        require(key in run, f"{name}.{key} missing")
    require(run["completed"] > 0, f"{name} completed no requests")
    require(run["throughput_qps"] > 0, f"{name} throughput is zero")
    accounted = (
        run["completed"]
        + run["rejected"]
        + run["shed_expired"]
        + run["shed_shutdown"]
    )
    require(
        accounted == run["offered"],
        f"{name}: offered {run['offered']} != accounted {accounted}",
    )
    check_latency(name, run["latency"])


def main():
    if len(sys.argv) != 2:
        fail("usage: validate_bench_serving.py <BENCH_serving.json>")
    with open(sys.argv[1]) as f:
        doc = json.load(f)

    for key in ("hardware_threads", "config", "engine_serial_qps",
                "capacity_estimate_qps", "steady", "overload", "batch_ab"):
        require(key in doc, f"top-level {key} missing")
    require(doc["hardware_threads"] >= 1, "hardware_threads < 1")

    check_run("steady", doc["steady"])
    check_run("overload", doc["overload"])

    steady = doc["steady"]
    require(
        steady["rejected"] == 0,
        "steady (below saturation) rejected requests",
    )
    require(
        steady["completed"] >= 0.8 * steady["offered"],
        "steady throughput did not track offered load",
    )
    require(
        doc["overload"]["rejected"] > 0,
        "overload run never hit admission control",
    )

    ab = doc["batch_ab"]
    for key in ("threads", "batch1_qps", "batch32_qps", "speedup"):
        require(key in ab, f"batch_ab.{key} missing")
    require(ab["batch1_qps"] > 0 and ab["batch32_qps"] > 0,
            "batch A/B throughput is zero")

    print("BENCH_serving.json schema: OK")


if __name__ == "__main__":
    main()
