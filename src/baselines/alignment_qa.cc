#include "baselines/alignment_qa.h"

#include <algorithm>

#include "baselines/common.h"
#include "nlp/stopwords.h"
#include "nlp/tokenizer.h"

namespace kbqa::baselines {

namespace {

/// Content phrases of a question outside the mention span: token windows of
/// 1..max_len that contain at least one non-stopword.
std::vector<std::string> ContentPhrases(
    const std::vector<std::string>& tokens, size_t mention_begin,
    size_t mention_end, size_t max_len) {
  std::vector<std::string> phrases;
  for (size_t b = 0; b < tokens.size(); ++b) {
    for (size_t e = b + 1; e <= tokens.size() && e <= b + max_len; ++e) {
      if (b < mention_end && e > mention_begin) continue;  // overlaps mention
      bool has_content = false;
      for (size_t i = b; i < e; ++i) {
        has_content = has_content || !nlp::IsStopword(tokens[i]);
      }
      if (!has_content) continue;
      phrases.push_back(nlp::JoinTokens(
          std::vector<std::string>(tokens.begin() + b, tokens.begin() + e)));
    }
  }
  return phrases;
}

}  // namespace

AlignmentQa::AlignmentQa(const corpus::World* world,
                         const rdf::ExpandedKb* ekb,
                         const nlp::GazetteerNer* ner,
                         const core::EvExtractor* extractor,
                         const corpus::QaCorpus& corpus,
                         const Options& options)
    : world_(world), ekb_(ekb), ner_(ner), options_(options) {
  // Learning pass: align every content phrase with every connecting
  // predicate of every extracted observation (the bipartite graph).
  for (const corpus::QaPair& pair : corpus.pairs) {
    std::vector<std::string> tokens = nlp::TokenizeQuestion(pair.question);
    for (const core::EvCandidate& cand :
         extractor->Extract(tokens, pair.answer)) {
      std::vector<std::string> phrases = ContentPhrases(
          tokens, cand.mention_begin, cand.mention_end,
          options_.max_phrase_tokens);
      for (const std::string& phrase : phrases) {
        auto& per_path = alignments_[phrase];
        for (rdf::PathId path : cand.paths) {
          if (per_path.emplace(path, 0).second) ++num_alignments_;
          ++per_path[path];
        }
      }
    }
  }
}

core::AnswerResult AlignmentQa::Answer(const std::string& question) const {
  core::AnswerResult result;
  std::vector<std::string> tokens = nlp::TokenizeQuestion(question);
  auto linked = LinkFirstEntity(world_->kb, *ner_, tokens);
  if (!linked) return result;

  // The strongest aligned phrase present in the question picks the
  // predicate; longer phrases win ties (more specific evidence).
  const rdf::KnowledgeBase& kb = world_->kb;
  rdf::PathId best_path = rdf::kInvalidPath;
  double best_score = 0;
  for (const std::string& phrase : ContentPhrases(
           tokens, linked->begin, linked->end, options_.max_phrase_tokens)) {
    auto it = alignments_.find(phrase);
    if (it == alignments_.end()) continue;
    uint64_t total = 0;
    for (const auto& [path, count] : it->second) {
      (void)path;
      total += count;
    }
    for (const auto& [path, count] : it->second) {
      if (count < options_.min_count) continue;
      // Specificity-weighted relative frequency.
      double score = (static_cast<double>(count) / total) *
                     (1.0 + 0.2 * static_cast<double>(
                                      std::count(phrase.begin(), phrase.end(),
                                                 ' ')));
      if (score > best_score) {
        best_score = score;
        best_path = path;
      }
    }
  }
  if (best_path == rdf::kInvalidPath) return result;

  std::vector<rdf::TermId> values = rdf::ObjectsViaPath(
      kb, linked->entity, ekb_->paths().GetPath(best_path));
  if (values.empty()) return result;
  result.answered = true;
  result.value = TermSurface(kb, values.front());
  result.predicate = ekb_->paths().ToString(best_path, kb);
  result.score = best_score;
  return result;
}

}  // namespace kbqa::baselines
