#ifndef KBQA_BASELINES_ALIGNMENT_QA_H_
#define KBQA_BASELINES_ALIGNMENT_QA_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "core/ev_extraction.h"
#include "core/qa_interface.h"
#include "corpus/qa_corpus.h"
#include "corpus/world.h"
#include "nlp/ner.h"
#include "rdf/expanded_predicate.h"

namespace kbqa::baselines {

/// Alignment-based semantic parsing in the style of SEMPRE (Berant et al.
/// [2]): a bipartite phrase↔predicate graph learned from QA pairs. For
/// every extracted (question, entity, value) observation, each content
/// phrase of the question is aligned with every predicate connecting the
/// entity to the value; counts accumulate over the corpus. Online, the
/// strongest aligned phrase in the question picks the predicate.
///
/// This shares KBQA's training signal but keeps the synonym-family
/// representation — a *phrase* stands for the intent, not the question as
/// a whole. The paper's critique (§1.3) applies: the mapping collapses on
/// holistic or context-dependent phrasings ("how many people ..." aligning
/// with population, employees and students at once), which is exactly the
/// gap templates close.
class AlignmentQa : public core::QaSystemInterface {
 public:
  struct Options {
    size_t max_phrase_tokens = 4;
    /// Minimum alignment count for a phrase to vote at answer time.
    uint64_t min_count = 2;
  };

  /// Learns the alignment table from `corpus` using KBQA's own extractor.
  AlignmentQa(const corpus::World* world, const rdf::ExpandedKb* ekb,
              const nlp::GazetteerNer* ner, const core::EvExtractor* extractor,
              const corpus::QaCorpus& corpus, const Options& options);
  AlignmentQa(const corpus::World* world, const rdf::ExpandedKb* ekb,
              const nlp::GazetteerNer* ner, const core::EvExtractor* extractor,
              const corpus::QaCorpus& corpus)
      : AlignmentQa(world, ekb, ner, extractor, corpus, Options()) {}

  std::string name() const override { return "Alignment"; }
  core::AnswerResult Answer(const std::string& question) const override;

  /// Number of distinct (phrase, predicate) alignments learned.
  size_t num_alignments() const { return num_alignments_; }

 private:
  const corpus::World* world_;
  const rdf::ExpandedKb* ekb_;
  const nlp::GazetteerNer* ner_;
  Options options_;

  // phrase -> (path -> count)
  std::unordered_map<std::string,
                     std::unordered_map<rdf::PathId, uint64_t>>
      alignments_;
  size_t num_alignments_ = 0;
};

}  // namespace kbqa::baselines

#endif  // KBQA_BASELINES_ALIGNMENT_QA_H_
