#ifndef KBQA_BASELINES_COMMON_H_
#define KBQA_BASELINES_COMMON_H_

#include <optional>
#include <string>
#include <vector>

#include "nlp/ner.h"
#include "rdf/knowledge_base.h"

namespace kbqa::baselines {

/// A linked entity mention: the chosen entity plus its token span.
struct LinkedEntity {
  rdf::TermId entity;
  size_t begin;
  size_t end;
};

/// Deterministic non-probabilistic entity linking used by all baselines:
/// first mention, highest-out-degree candidate (the usual "most prominent
/// entity" heuristic of keyword/synonym systems).
inline std::optional<LinkedEntity> LinkFirstEntity(
    const rdf::KnowledgeBase& kb, const nlp::GazetteerNer& ner,
    const std::vector<std::string>& tokens) {
  std::vector<nlp::Mention> mentions = ner.FindMentions(tokens);
  if (mentions.empty()) return std::nullopt;
  const nlp::Mention& mention = mentions.front();
  rdf::TermId best = rdf::kInvalidTerm;
  size_t best_degree = 0;
  for (rdf::TermId e : mention.entities) {
    size_t degree = kb.OutDegree(e);
    if (best == rdf::kInvalidTerm || degree > best_degree) {
      best = e;
      best_degree = degree;
    }
  }
  if (best == rdf::kInvalidTerm) return std::nullopt;
  return LinkedEntity{best, mention.begin, mention.end};
}

/// Surface string for an answer term.
inline std::string TermSurface(const rdf::KnowledgeBase& kb,
                               rdf::TermId term) {
  return kb.IsLiteral(term) ? kb.NodeString(term) : kb.EntityName(term);
}

}  // namespace kbqa::baselines

#endif  // KBQA_BASELINES_COMMON_H_
