#include "baselines/graph_qa.h"

#include <algorithm>
#include <vector>

#include "baselines/common.h"
#include "nlp/stopwords.h"
#include "nlp/tokenizer.h"
#include "util/strings.h"

namespace kbqa::baselines {

namespace {

struct Candidate {
  rdf::TermId value = rdf::kInvalidTerm;
  double score = 0;
  std::string path_string;
};

/// Lexicon evidence: phrases of the question that the lexicon maps to some
/// path, keyed by the path's first predicate (the edge the subgraph match
/// must take out of the entity).
struct PhraseEvidence {
  rdf::PredId first_pred;
  double weight;
};

}  // namespace

core::AnswerResult GraphQa::Answer(const std::string& question) const {
  core::AnswerResult result;
  std::vector<std::string> tokens = nlp::TokenizeQuestion(question);
  std::vector<nlp::Mention> mentions = ner_->FindMentions(tokens);
  if (mentions.empty()) return result;

  const rdf::KnowledgeBase& kb = world_->kb;

  // Build the question-side semantic graph: content words + lexicon-backed
  // relation phrases.
  std::vector<std::string> content;
  for (const std::string& tok : tokens) {
    if (!nlp::IsStopword(tok)) content.push_back(tok);
  }
  std::vector<PhraseEvidence> phrase_evidence;
  for (size_t b = 0; b < tokens.size(); ++b) {
    for (size_t e = b + 1; e <= tokens.size() && e <= b + 5; ++e) {
      std::string span = nlp::JoinTokens(
          std::vector<std::string>(tokens.begin() + b, tokens.begin() + e));
      auto entry = lexicon_->Lookup(span);
      if (!entry) continue;
      const rdf::PredPath& path = ekb_->paths().GetPath(entry->path);
      phrase_evidence.push_back(PhraseEvidence{path.front(), 2.0});
    }
  }

  auto edge_score = [&](rdf::PredId p, int depth) {
    double score = 0;
    // Token overlap between the predicate name and the question.
    for (const std::string& piece : Split(kb.PredicateString(p), '_')) {
      if (std::find(content.begin(), content.end(), piece) != content.end()) {
        score += 1.0;
      }
    }
    // Lexicon-backed phrase evidence applies to the first hop only.
    if (depth == 0) {
      for (const PhraseEvidence& ev : phrase_evidence) {
        if (ev.first_pred == p) score += ev.weight;
      }
    }
    return score;
  };

  // Subgraph match: walk the entity's neighborhood (depth <= 3) through the
  // raw adjacency — no materialized path index — accumulating edge scores.
  Candidate best;
  for (const nlp::Mention& mention : mentions) {
    for (rdf::TermId entity : mention.entities) {
      struct Frame {
        rdf::TermId node;
        int depth;
        double score;
        std::string path_string;
      };
      std::vector<Frame> stack = {{entity, 0, 0.0, ""}};
      while (!stack.empty()) {
        Frame frame = stack.back();
        stack.pop_back();
        for (const auto& [p, o] : kb.Out(frame.node)) {
          double score = frame.score + edge_score(p, frame.depth);
          std::string path_string =
              frame.path_string.empty()
                  ? kb.PredicateString(p)
                  : frame.path_string + " -> " + kb.PredicateString(p);
          if (kb.IsLiteral(o)) {
            // Candidate answer node. Prefer higher score; break ties toward
            // shorter paths (already favored by DFS order + strict >).
            if (score > best.score) {
              best = Candidate{o, score, path_string};
            }
          } else if (frame.depth < 2) {
            stack.push_back(Frame{o, frame.depth + 1, score, path_string});
          }
        }
      }
    }
  }

  if (best.value == rdf::kInvalidTerm || best.score <= 0) return result;
  result.answered = true;
  result.value = TermSurface(kb, best.value);
  result.predicate = best.path_string;
  result.score = best.score;
  return result;
}

}  // namespace kbqa::baselines
