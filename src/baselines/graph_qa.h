#ifndef KBQA_BASELINES_GRAPH_QA_H_
#define KBQA_BASELINES_GRAPH_QA_H_

#include <string>

#include "baselines/synonym_lexicon.h"
#include "core/qa_interface.h"
#include "corpus/world.h"
#include "nlp/ner.h"
#include "rdf/expanded_predicate.h"

namespace kbqa::baselines {

/// Graph-data-driven QA in the style of gAnswer [38]: build a semantic
/// graph from the question (mention nodes + relation-phrase edges) and
/// match it against the entity's RDF neighborhood subgraph. The subgraph
/// match enumerates candidate value nodes by walking the neighborhood up to
/// depth 3 *without* any precomputed path index and scores each traversal
/// edge against the question's phrases — an O(neighborhood³)-flavored
/// search, slower than KBQA's O(|P|) template lookup and faster than
/// SynonymQa's exhaustive joint disambiguation, reproducing the latency
/// ordering of Table 14.
class GraphQa : public core::QaSystemInterface {
 public:
  GraphQa(const corpus::World* world, const rdf::ExpandedKb* ekb,
          const nlp::GazetteerNer* ner, const SynonymLexicon* lexicon)
      : world_(world), ekb_(ekb), ner_(ner), lexicon_(lexicon) {}

  std::string name() const override { return "Graph"; }
  core::AnswerResult Answer(const std::string& question) const override;

 private:
  const corpus::World* world_;
  const rdf::ExpandedKb* ekb_;
  const nlp::GazetteerNer* ner_;
  const SynonymLexicon* lexicon_;
};

}  // namespace kbqa::baselines

#endif  // KBQA_BASELINES_GRAPH_QA_H_
