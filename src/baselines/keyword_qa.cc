#include "baselines/keyword_qa.h"

#include <algorithm>
#include <vector>

#include "baselines/common.h"
#include "nlp/stopwords.h"
#include "nlp/tokenizer.h"
#include "util/strings.h"

namespace kbqa::baselines {

namespace {

std::vector<std::string> ContentWords(const std::vector<std::string>& tokens,
                                      size_t skip_begin, size_t skip_end) {
  std::vector<std::string> out;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (i >= skip_begin && i < skip_end) continue;
    if (!nlp::IsStopword(tokens[i])) out.push_back(tokens[i]);
  }
  return out;
}

size_t Overlap(const std::vector<std::string>& a,
               const std::vector<std::string>& b) {
  size_t n = 0;
  for (const std::string& x : a) {
    if (std::find(b.begin(), b.end(), x) != b.end()) ++n;
  }
  return n;
}

/// Keyword-matches an attribute intent of `type` against `keyword_tokens`.
int MatchAttributeIntent(const corpus::World& world, int type,
                         const std::vector<std::string>& keyword_tokens) {
  int best = -1;
  size_t best_overlap = 0;
  for (int i : world.schema.IntentsOfType(type)) {
    const corpus::IntentSpec& intent = world.schema.intents()[i];
    if (intent.is_relation()) continue;
    std::vector<std::string> kw = nlp::Tokenize(intent.keyword);
    size_t ov = Overlap(keyword_tokens, kw);
    if (ov > best_overlap) {
      best_overlap = ov;
      best = i;
    }
  }
  return best_overlap > 0 ? best : -1;
}

long long FactNumber(const corpus::World& world, int intent_idx,
                     rdf::TermId e) {
  const auto* values = world.FactValues(intent_idx, e);
  if (values == nullptr || values->empty()) return -1;
  return ParseNonNegativeInt(world.ValueSurface((*values)[0]));
}

}  // namespace

KeywordQa::KeywordQa(const corpus::World* world, const nlp::GazetteerNer* ner,
                     const Options& options)
    : world_(world), ner_(ner), options_(options) {}

core::AnswerResult KeywordQa::AnswerSuperlative(
    const std::vector<std::string>& tokens) const {
  core::AnswerResult result;
  // Frame: "which <type> has the largest|smallest <keyword...>".
  if (tokens.size() < 6 || tokens[0] != "which") return result;
  auto dir_it = std::find(tokens.begin(), tokens.end(), "largest");
  bool largest = dir_it != tokens.end();
  if (!largest) {
    dir_it = std::find(tokens.begin(), tokens.end(), "smallest");
    if (dir_it == tokens.end()) return result;
  }
  int type = world_->schema.TypeIndex(tokens[1]);
  if (type < 0) return result;
  std::vector<std::string> keyword(dir_it + 1, tokens.end());
  int intent_idx = MatchAttributeIntent(*world_, type, keyword);
  if (intent_idx < 0) return result;

  rdf::TermId best_e = rdf::kInvalidTerm;
  long long best_v = -1;
  for (rdf::TermId e : world_->entities_by_type[type]) {
    long long v = FactNumber(*world_, intent_idx, e);
    if (v < 0) continue;
    if (best_e == rdf::kInvalidTerm || (largest ? v > best_v : v < best_v)) {
      best_e = e;
      best_v = v;
    }
  }
  if (best_e == rdf::kInvalidTerm) return result;
  result.answered = true;
  result.value = world_->kb.EntityName(best_e);
  result.predicate = world_->schema.intents()[intent_idx].name;
  result.score = 1.0;
  return result;
}

core::AnswerResult KeywordQa::AnswerComparison(
    const std::vector<std::string>& tokens) const {
  core::AnswerResult result;
  // Frame: "which has more <keyword...> , <a> or <b>".
  if (tokens.size() < 6 || tokens[0] != "which" || tokens[1] != "has" ||
      tokens[2] != "more") {
    return result;
  }
  std::vector<nlp::Mention> mentions = ner_->FindMentions(tokens);
  if (mentions.size() < 2) return result;
  rdf::TermId a = mentions[0].entities.front();
  rdf::TermId b = mentions[1].entities.front();
  std::vector<std::string> keyword(tokens.begin() + 3,
                                   tokens.begin() + mentions[0].begin);

  for (size_t type = 0; type < world_->entities_by_type.size(); ++type) {
    int intent_idx = MatchAttributeIntent(*world_, static_cast<int>(type),
                                          keyword);
    if (intent_idx < 0) continue;
    long long va = FactNumber(*world_, intent_idx, a);
    long long vb = FactNumber(*world_, intent_idx, b);
    if (va < 0 || vb < 0) continue;
    result.answered = true;
    result.value = world_->kb.EntityName(va >= vb ? a : b);
    result.predicate = world_->schema.intents()[intent_idx].name;
    result.score = 1.0;
    return result;
  }
  return result;
}

core::AnswerResult KeywordQa::Answer(const std::string& question) const {
  std::vector<std::string> tokens = nlp::TokenizeQuestion(question);
  if (options_.enable_superlatives) {
    core::AnswerResult sup = AnswerSuperlative(tokens);
    if (sup.answered) return sup;
    sup = AnswerComparison(tokens);
    if (sup.answered) return sup;
  }

  core::AnswerResult result;
  auto linked = LinkFirstEntity(world_->kb, *ner_, tokens);
  if (!linked) return result;
  std::vector<std::string> content =
      ContentWords(tokens, linked->begin, linked->end);
  if (content.empty()) return result;

  // Best predicate by name-token overlap; require a value on the entity.
  const rdf::KnowledgeBase& kb = world_->kb;
  rdf::PredId best_pred = rdf::kInvalidPred;
  size_t best_overlap = 0;
  rdf::TermId best_value = rdf::kInvalidTerm;
  for (rdf::PredId p = 0; p < kb.num_predicates(); ++p) {
    std::vector<std::string> pred_tokens = Split(kb.PredicateString(p), '_');
    size_t ov = Overlap(content, pred_tokens);
    if (ov < options_.min_overlap || ov <= best_overlap) continue;
    std::vector<rdf::TermId> values = kb.Objects(linked->entity, p);
    if (values.empty()) continue;
    best_pred = p;
    best_overlap = ov;
    best_value = values.front();
  }
  if (best_pred == rdf::kInvalidPred) return result;
  result.answered = true;
  result.value = TermSurface(kb, best_value);
  result.predicate = kb.PredicateString(best_pred);
  result.score = static_cast<double>(best_overlap);
  return result;
}

}  // namespace kbqa::baselines
