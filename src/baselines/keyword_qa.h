#ifndef KBQA_BASELINES_KEYWORD_QA_H_
#define KBQA_BASELINES_KEYWORD_QA_H_

#include <string>

#include "core/qa_interface.h"
#include "corpus/world.h"
#include "nlp/ner.h"

namespace kbqa::baselines {

/// Keyword-based QA (Unger & Cimiano, Pythia-style [29]): content words of
/// the question are matched against predicate names; the best-overlapping
/// predicate on the linked entity is answered. Handles b©-style questions
/// ("what is the population of honolulu") whose wording repeats the
/// predicate name, and fails a©-style ones ("how many people are there in
/// honolulu") — exactly the gap the paper's templates close.
///
/// Additionally handles superlative/comparison non-BFQs by keyword-matching
/// the attribute and scanning the type's entities ("which city has the
/// largest population") — this is what makes it a useful *hybrid* partner
/// in Table 11, contributing answers where KBQA declines.
class KeywordQa : public core::QaSystemInterface {
 public:
  struct Options {
    bool enable_superlatives = true;
    /// Minimum number of overlapping content words to commit.
    size_t min_overlap = 1;
  };

  /// Needs the world for the type catalogs behind superlative scans.
  KeywordQa(const corpus::World* world, const nlp::GazetteerNer* ner,
            const Options& options);
  KeywordQa(const corpus::World* world, const nlp::GazetteerNer* ner)
      : KeywordQa(world, ner, Options()) {}

  std::string name() const override { return "Keyword"; }
  core::AnswerResult Answer(const std::string& question) const override;

 private:
  core::AnswerResult AnswerSuperlative(
      const std::vector<std::string>& tokens) const;
  core::AnswerResult AnswerComparison(
      const std::vector<std::string>& tokens) const;

  const corpus::World* world_;
  const nlp::GazetteerNer* ner_;
  Options options_;
};

}  // namespace kbqa::baselines

#endif  // KBQA_BASELINES_KEYWORD_QA_H_
