#include "baselines/rule_qa.h"

#include <vector>

#include "baselines/common.h"
#include "nlp/tokenizer.h"
#include "util/strings.h"

namespace kbqa::baselines {

namespace {

/// Tries to read "<prefix...> the X of E" where E is the linked mention at
/// the question tail; returns the X tokens joined by '_', or "".
std::string ExtractRulePredicate(const std::vector<std::string>& tokens,
                                 const LinkedEntity& entity) {
  // Frame 1: "what/who is the X of $e" — X spans tokens [3, of_pos).
  if (tokens.size() >= 6 && entity.end == tokens.size() &&
      (tokens[0] == "what" || tokens[0] == "who") &&
      (tokens[1] == "is" || tokens[1] == "was") && tokens[2] == "the") {
    // Find the "of" immediately before the mention.
    if (entity.begin >= 5 && tokens[entity.begin - 1] == "of") {
      std::vector<std::string> x(tokens.begin() + 3,
                                 tokens.begin() + entity.begin - 1);
      if (!x.empty()) return Join(x, "_");
    }
  }
  // Frame 2: "what is $e 's X" — X is the trailing run after "'s".
  if (entity.begin == 2 && tokens.size() > entity.end + 1 &&
      tokens[0] == "what" && tokens[1] == "is" &&
      tokens[entity.end] == "'s") {
    std::vector<std::string> x(tokens.begin() + entity.end + 1, tokens.end());
    if (!x.empty()) return Join(x, "_");
  }
  return "";
}

}  // namespace

core::AnswerResult RuleQa::Answer(const std::string& question) const {
  core::AnswerResult result;
  std::vector<std::string> tokens = nlp::TokenizeQuestion(question);
  auto linked = LinkFirstEntity(*kb_, *ner_, tokens);
  if (!linked) return result;

  std::string pred_name = ExtractRulePredicate(tokens, *linked);
  if (pred_name.empty()) return result;
  auto pred = kb_->LookupPredicate(pred_name);
  if (!pred) return result;

  std::vector<rdf::TermId> values = kb_->Objects(linked->entity, *pred);
  if (values.empty()) return result;
  result.answered = true;
  result.value = TermSurface(*kb_, values.front());
  result.predicate = pred_name;
  result.score = 1.0;
  return result;
}

}  // namespace kbqa::baselines
