#ifndef KBQA_BASELINES_RULE_QA_H_
#define KBQA_BASELINES_RULE_QA_H_

#include <string>

#include "core/qa_interface.h"
#include "nlp/ner.h"
#include "rdf/knowledge_base.h"

namespace kbqa::baselines {

/// Rule-based QA (Ou et al. [23]): manually constructed question frames.
/// "what is the <x> of <e>?" maps to the predicate literally named <x>
/// (tokens joined by '_'); a handful of analogous frames are hardcoded.
/// High precision, very low recall — the canonical ceiling of hand-written
/// rules the paper motivates against.
class RuleQa : public core::QaSystemInterface {
 public:
  RuleQa(const rdf::KnowledgeBase* kb, const nlp::GazetteerNer* ner)
      : kb_(kb), ner_(ner) {}

  std::string name() const override { return "Rule"; }
  core::AnswerResult Answer(const std::string& question) const override;

 private:
  const rdf::KnowledgeBase* kb_;
  const nlp::GazetteerNer* ner_;
};

}  // namespace kbqa::baselines

#endif  // KBQA_BASELINES_RULE_QA_H_
