#include "baselines/synonym_lexicon.h"

#include <algorithm>

#include "nlp/tokenizer.h"

namespace kbqa::baselines {

namespace {

/// Finds the first token position of `needle` inside `haystack`, or npos.
size_t FindTokenRun(const std::vector<std::string>& haystack,
                    const std::vector<std::string>& needle) {
  if (needle.empty() || needle.size() > haystack.size()) {
    return std::string::npos;
  }
  for (size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    bool match = true;
    for (size_t j = 0; j < needle.size(); ++j) {
      if (haystack[i + j] != needle[j]) {
        match = false;
        break;
      }
    }
    if (match) return i;
  }
  return std::string::npos;
}

}  // namespace

SynonymLexicon SynonymLexicon::Learn(
    const rdf::KnowledgeBase& kb, const rdf::ExpandedKb& ekb,
    const nlp::GazetteerNer& ner, const std::vector<std::string>& sentences,
    size_t max_path_length) {
  SynonymLexicon lexicon;
  for (const std::string& sentence : sentences) {
    std::vector<std::string> tokens = nlp::Tokenize(sentence);
    std::vector<nlp::Mention> mentions = ner.FindMentions(tokens);
    for (const nlp::Mention& mention : mentions) {
      for (rdf::TermId entity : mention.entities) {
        for (const auto& [path_id, object] : ekb.Out(entity)) {
          if (ekb.paths().GetPath(path_id).size() > max_path_length) continue;
          if (!kb.IsLiteral(object)) continue;
          std::vector<std::string> value_tokens =
              nlp::Tokenize(kb.NodeString(object));
          size_t vpos = FindTokenRun(tokens, value_tokens);
          if (vpos == std::string::npos) continue;
          size_t vend = vpos + value_tokens.size();
          // BOA pattern: the tokens strictly between entity and value
          // (either order). Overlapping spans yield no pattern.
          size_t lo, hi;
          if (vend <= mention.begin) {
            lo = vend;
            hi = mention.begin;
          } else if (mention.end <= vpos) {
            lo = mention.end;
            hi = vpos;
          } else {
            continue;
          }
          if (hi <= lo || hi - lo > 6) continue;  // Empty or too long.
          std::string phrase = nlp::JoinTokens(
              std::vector<std::string>(tokens.begin() + lo, tokens.begin() + hi));
          auto& per_path = lexicon.counts_[phrase];
          if (per_path.emplace(path_id, 0).second) ++lexicon.num_patterns_;
          ++per_path[path_id];
        }
      }
    }
  }
  return lexicon;
}

std::optional<SynonymLexicon::Entry> SynonymLexicon::Lookup(
    const std::string& phrase) const {
  auto it = counts_.find(phrase);
  if (it == counts_.end()) return std::nullopt;
  Entry best{rdf::kInvalidPath, 0};
  for (const auto& [path, count] : it->second) {
    if (count > best.count || (count == best.count && path < best.path)) {
      best = Entry{path, count};
    }
  }
  if (best.count == 0) return std::nullopt;
  return best;
}

size_t SynonymLexicon::num_predicates() const {
  std::vector<rdf::PathId> paths;
  for (const auto& [phrase, per_path] : counts_) {
    (void)phrase;
    for (const auto& [path, count] : per_path) {
      (void)count;
      paths.push_back(path);
    }
  }
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());
  return paths.size();
}

std::vector<std::string> SynonymLexicon::Phrases() const {
  std::vector<std::string> phrases;
  phrases.reserve(counts_.size());
  for (const auto& [phrase, per_path] : counts_) {
    (void)per_path;
    phrases.push_back(phrase);
  }
  std::sort(phrases.begin(), phrases.end());
  return phrases;
}

}  // namespace kbqa::baselines
