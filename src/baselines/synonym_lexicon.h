#ifndef KBQA_BASELINES_SYNONYM_LEXICON_H_
#define KBQA_BASELINES_SYNONYM_LEXICON_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "nlp/ner.h"
#include "rdf/expanded_predicate.h"
#include "rdf/knowledge_base.h"

namespace kbqa::baselines {

/// A BOA-style bootstrapped synonym lexicon (Gerber & Ngonga Ngomo [14],
/// used by the template-based-over-RDF system of Unger et al. [28] and, in
/// spirit, by DEANNA [33]).
///
/// Learning: scan a sentence ("web document") corpus; whenever an entity
/// and one of its KB-connected values co-occur in a sentence, the token
/// phrase *between* them is evidence that the phrase denotes the connecting
/// predicate. Phrases are counted per predicate path; the lexicon keeps the
/// majority predicate per phrase.
///
/// This is the paper's "synonym based" representation: one phrase stands
/// for the intent. It inherits the family's weakness by construction —
/// discontinuous or holistic phrasings ("how many people are there in X")
/// never occur *between* entity and value, so they are never learned.
class SynonymLexicon {
 public:
  struct Entry {
    rdf::PathId path;
    uint64_t count;
  };

  /// Learns the lexicon from `sentences`. `ekb` supplies entity–value
  /// connectivity. `max_path_length` bounds the KB structures the
  /// bootstrapper can align against: the original BOA patterns align via
  /// *direct* predicates (length 1) — learning synonyms for complex
  /// substructures came only later with gAnswer [38], which is exactly the
  /// coverage gap Table 12 measures.
  static SynonymLexicon Learn(const rdf::KnowledgeBase& kb,
                              const rdf::ExpandedKb& ekb,
                              const nlp::GazetteerNer& ner,
                              const std::vector<std::string>& sentences,
                              size_t max_path_length = 1);

  /// Majority predicate for `phrase` (space-joined lowercase tokens).
  std::optional<Entry> Lookup(const std::string& phrase) const;

  /// Number of distinct (phrase, predicate) patterns learned — the
  /// "templates" row of the paper's Table 12 for bootstrapping.
  size_t num_patterns() const { return num_patterns_; }
  /// Number of distinct predicates covered by some phrase.
  size_t num_predicates() const;

  /// All learned phrases (tests / case studies).
  std::vector<std::string> Phrases() const;

 private:
  // phrase -> (path -> count); collapsed to majority at lookup.
  std::unordered_map<std::string,
                     std::unordered_map<rdf::PathId, uint64_t>>
      counts_;
  size_t num_patterns_ = 0;
};

}  // namespace kbqa::baselines

#endif  // KBQA_BASELINES_SYNONYM_LEXICON_H_
