#include "baselines/synonym_qa.h"

#include <algorithm>
#include <vector>

#include "baselines/common.h"
#include "nlp/tokenizer.h"

namespace kbqa::baselines {

namespace {

/// Levenshtein distance — the string-similarity primitive of the joint
/// disambiguation scoring.
size_t EditDistance(const std::string& a, const std::string& b) {
  std::vector<size_t> prev(b.size() + 1), cur(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

double Similarity(const std::string& a, const std::string& b) {
  size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(EditDistance(a, b)) /
                   static_cast<double>(longest);
}

}  // namespace

core::AnswerResult SynonymQa::Answer(const std::string& question) const {
  core::AnswerResult result;
  std::vector<std::string> tokens = nlp::TokenizeQuestion(question);
  std::vector<nlp::Mention> mentions = ner_->FindMentions(tokens);
  if (mentions.empty()) return result;

  const rdf::KnowledgeBase& kb = world_->kb;

  // Joint disambiguation: enumerate every (mention entity × phrase span ×
  // lexicon phrase) assignment and score it by phrase similarity + KB
  // support. This exhaustive search is the honest small-scale analogue of
  // DEANNA's ILP.
  struct Assignment {
    rdf::TermId entity = rdf::kInvalidTerm;
    rdf::PathId path = rdf::kInvalidPath;
    double score = 0;
    size_t span_begin = 0;
    size_t span_end = 0;
    bool supported = false;
  };
  std::vector<Assignment> assignments;

  const std::vector<std::string> lexicon_phrases = lexicon_->Phrases();
  for (const nlp::Mention& mention : mentions) {
    for (rdf::TermId entity : mention.entities) {
      // Candidate phrase spans: any token window outside the mention.
      for (size_t b = 0; b < tokens.size(); ++b) {
        for (size_t e = b + 1; e <= tokens.size() && e <= b + 5; ++e) {
          if (b < mention.end && e > mention.begin) continue;  // Overlaps.
          std::string span = nlp::JoinTokens(
              std::vector<std::string>(tokens.begin() + b, tokens.begin() + e));
          // Score the span against every lexicon phrase (edit distance).
          for (const std::string& phrase : lexicon_phrases) {
            double sim = Similarity(span, phrase);
            // DEANNA evaluates semantic relatedness + KB support for every
            // plausible phrase-predicate pairing before the ILP prunes;
            // only clearly unrelated pairs are skipped early.
            if (sim < 0.35) continue;
            auto entry = lexicon_->Lookup(phrase);
            if (!entry) continue;
            // KB support: the predicate must produce a value on the
            // entity (walked through the base KB so non-seed entities are
            // answerable too). Unsupported pairings still participate in
            // the joint coherence objective, as in DEANNA's ILP.
            std::vector<rdf::TermId> values = rdf::ObjectsViaPath(
                kb, entity, ekb_->paths().GetPath(entry->path));
            double score = sim * (1.0 + 0.01 * static_cast<double>(
                                                   entry->count > 10
                                                       ? 10
                                                       : entry->count));
            assignments.push_back(Assignment{entity, entry->path, score, b,
                                             e, !values.empty()});
            if (assignments.size() >= 8000) goto joint_inference;
          }
        }
      }
    }
  }

joint_inference:
  // Joint disambiguation: DEANNA optimizes a *pairwise coherence*
  // objective over all candidate assignments with an ILP (NP-hard). The
  // small-scale analogue is the explicit quadratic coherence pass below —
  // two assignments reinforce each other when they agree on the entity and
  // claim disjoint phrase spans. This pass dominates the family's latency,
  // exactly as the ILP dominates DEANNA's (Table 14).
  for (size_t i = 0; i < assignments.size(); ++i) {
    double coherence = 0;
    for (size_t j = 0; j < assignments.size(); ++j) {
      if (i == j) continue;
      const Assignment& a = assignments[i];
      const Assignment& b = assignments[j];
      bool disjoint = a.span_end <= b.span_begin || b.span_end <= a.span_begin;
      if (a.entity == b.entity && disjoint) {
        coherence += 0.001 * b.score;
      }
    }
    assignments[i].score += std::min(coherence, 0.05);
  }

  Assignment best;
  for (const Assignment& a : assignments) {
    // The hard similarity gate and the KB-support constraint are applied
    // after joint inference, as the ILP's solution constraints would be.
    if (a.supported && a.score > best.score && a.score >= 0.82) best = a;
  }

  if (best.entity == rdf::kInvalidTerm) return result;
  std::vector<rdf::TermId> values =
      rdf::ObjectsViaPath(kb, best.entity, ekb_->paths().GetPath(best.path));
  if (values.empty()) return result;
  result.answered = true;
  result.value = TermSurface(kb, values.front());
  result.predicate = ekb_->paths().ToString(best.path, kb);
  result.score = best.score;
  return result;
}

}  // namespace kbqa::baselines
