#ifndef KBQA_BASELINES_SYNONYM_QA_H_
#define KBQA_BASELINES_SYNONYM_QA_H_

#include <string>

#include "baselines/synonym_lexicon.h"
#include "core/qa_interface.h"
#include "corpus/world.h"
#include "nlp/ner.h"
#include "rdf/expanded_predicate.h"

namespace kbqa::baselines {

/// Synonym-based QA in the style of DEANNA [33]: phrases of the question
/// are matched against a bootstrapped synonym lexicon; the phrase-predicate
/// and mention-entity assignments are disambiguated *jointly* by exhaustive
/// scoring (DEANNA solves an ILP — NP-hard question understanding; at our
/// scale the same joint search is an explicit enumeration over every
/// (mention candidate × phrase span × lexicon predicate) combination with
/// edit-distance similarity, which is what makes this the slowest system in
/// the Table 14 latency comparison, as in the paper).
class SynonymQa : public core::QaSystemInterface {
 public:
  SynonymQa(const corpus::World* world, const rdf::ExpandedKb* ekb,
            const nlp::GazetteerNer* ner, const SynonymLexicon* lexicon)
      : world_(world), ekb_(ekb), ner_(ner), lexicon_(lexicon) {}

  std::string name() const override { return "Synonym"; }
  core::AnswerResult Answer(const std::string& question) const override;

 private:
  const corpus::World* world_;
  const rdf::ExpandedKb* ekb_;
  const nlp::GazetteerNer* ner_;
  const SynonymLexicon* lexicon_;
};

}  // namespace kbqa::baselines

#endif  // KBQA_BASELINES_SYNONYM_QA_H_
