#ifndef KBQA_CORE_ANSWER_TYPE_H_
#define KBQA_CORE_ANSWER_TYPE_H_

#include <unordered_map>
#include <unordered_set>

#include "nlp/question_classifier.h"
#include "rdf/expanded_predicate.h"
#include "rdf/knowledge_base.h"

namespace kbqa::core {

/// Per-predicate UIUC answer-class labels ("manually labeled" in §4.1.1 —
/// feasible because there are only a few thousand predicates).
using PredicateClassMap =
    std::unordered_map<rdf::PredId, nlp::QuestionClass>;

/// Answer class of an expanded predicate: the label of the last *labeled*
/// predicate on the path. Name-like predicates are transparent (they merely
/// surface the target entity's string), so `marriage -> person -> name`
/// resolves to the label of `person` (HUM) and `capital -> name` to LOC.
/// Returns kUnknown when no predicate on the path is labeled.
inline nlp::QuestionClass PathAnswerClass(
    const rdf::PredPath& path, const PredicateClassMap& classes,
    const std::unordered_set<rdf::PredId>& name_like) {
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    if (name_like.count(*it) > 0) continue;
    auto hit = classes.find(*it);
    if (hit != classes.end()) return hit->second;
  }
  return nlp::QuestionClass::kUnknown;
}

/// True when a value of class `value_class` is an acceptable answer for a
/// question of class `question_class`. Unknowns are permissive — the filter
/// is precision-oriented but must not throw away evidence it cannot judge.
inline bool AnswerClassCompatible(nlp::QuestionClass question_class,
                                  nlp::QuestionClass value_class) {
  using QC = nlp::QuestionClass;
  if (question_class == QC::kUnknown || value_class == QC::kUnknown) {
    return true;
  }
  if (question_class == value_class) return true;
  // DESC questions put no constraint on the value.
  if (question_class == QC::kDescription) return true;
  return false;
}

}  // namespace kbqa::core

#endif  // KBQA_CORE_ANSWER_TYPE_H_
