#include "core/decomposer.h"

#include <cassert>

#include "nlp/tokenizer.h"

namespace kbqa::core {

namespace {

/// DP cell for one token span.
struct Cell {
  double prob = 0;
  bool primitive = false;
  // When !primitive and prob > 0: the inner sub-span and the outer pattern.
  size_t inner_begin = 0;
  size_t inner_end = 0;
  std::string pattern;
};

}  // namespace

ComplexDecomposer::ComplexDecomposer(const nlp::PatternIndex* pattern_index,
                                     PrimitiveProbe is_primitive,
                                     const Options& options)
    : pattern_index_(pattern_index),
      is_primitive_(std::move(is_primitive)),
      options_(options) {}

Decomposition ComplexDecomposer::Decompose(
    const std::vector<std::string>& tokens) const {
  Decomposition out;
  size_t n = std::min(tokens.size(), options_.max_tokens);
  if (n == 0) return out;

  // cells[b * (n + 1) + e] covers the token span [b, e).
  std::vector<Cell> cells((n + 1) * (n + 1));
  auto cell = [&](size_t b, size_t e) -> Cell& {
    return cells[b * (n + 1) + e];
  };

  // Ascending span length guarantees P(A*(q_j)) is final before any outer
  // span consults it (the DP order Algorithm 2 prescribes).
  for (size_t len = 1; len <= n; ++len) {
    for (size_t b = 0; b + len <= n; ++b) {
      size_t e = b + len;
      Cell& c = cell(b, e);
      std::vector<std::string> span(tokens.begin() + b, tokens.begin() + e);

      // δ(q_i): primitive BFQ wins outright with probability 1 (Eq. 28
      // takes the max with δ first; δ = 1 dominates all products).
      if (len >= options_.min_inner_tokens && is_primitive_(span)) {
        c.prob = 1.0;
        c.primitive = true;
        continue;
      }

      // Otherwise, best split: inner sub-span [b2, e2) answered first, the
      // remainder becomes the outer $e pattern.
      for (size_t b2 = b; b2 < e; ++b2) {
        for (size_t e2 = b2 + options_.min_inner_tokens; e2 <= e; ++e2) {
          if (b2 == b && e2 == e) continue;  // Proper sub-span only.
          const Cell& inner = cell(b2, e2);
          if (inner.prob <= 0) continue;
          std::string pattern = nlp::MakePattern(span, b2 - b, e2 - b);
          double p_r = pattern_index_->ValidProbability(pattern);
          double p = p_r * inner.prob;
          if (p > c.prob) {
            c.prob = p;
            c.primitive = false;
            c.inner_begin = b2;
            c.inner_end = e2;
            c.pattern = std::move(pattern);
          }
        }
      }
    }
  }

  const Cell& root = cell(0, n);
  if (root.prob <= 0) return out;
  out.probability = root.prob;

  // Reconstruct A*(q): walk inward collecting outer patterns, then reverse
  // so the sequence starts with the innermost primitive BFQ.
  std::vector<std::string> reversed;
  size_t b = 0, e = n;
  while (true) {
    const Cell& c = cell(b, e);
    if (c.primitive) {
      reversed.push_back(nlp::JoinTokens(
          std::vector<std::string>(tokens.begin() + b, tokens.begin() + e)));
      break;
    }
    reversed.push_back(c.pattern);
    size_t nb = c.inner_begin, ne = c.inner_end;
    b = nb;
    e = ne;
  }
  out.sequence.assign(reversed.rbegin(), reversed.rend());
  return out;
}

}  // namespace kbqa::core
