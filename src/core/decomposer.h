#ifndef KBQA_CORE_DECOMPOSER_H_
#define KBQA_CORE_DECOMPOSER_H_

#include <functional>
#include <string>
#include <vector>

#include "nlp/pattern.h"

namespace kbqa::core {

/// A decomposition A = (qˇ0, ..., qˇk): qˇ0 is a directly answerable BFQ;
/// each later element is a question pattern with the "$e" slot to be filled
/// by the previous answer (§5.1).
struct Decomposition {
  std::vector<std::string> sequence;
  /// P(A) = Π P(qˇ) (Eq. 27); 1.0 for a primitive single-question "chain".
  double probability = 0;
};

/// Complex-question decomposition via the O(|q|⁴) dynamic program of §5.3
/// (Algorithm 2). P(qˇ) for replaced patterns comes from the corpus
/// PatternIndex (Eq. 26); δ(q) — "is this span a primitive BFQ" — is
/// supplied by the caller (in practice OnlineInference::IsPrimitiveBfq).
class ComplexDecomposer {
 public:
  using PrimitiveProbe = std::function<bool(const std::vector<std::string>&)>;

  struct Options {
    /// Questions longer than this are truncated from consideration (the
    /// paper notes 99% of questions have < 23 words).
    size_t max_tokens = 23;
    /// Spans shorter than this many tokens are never treated as the inner
    /// question (single words are not BFQs).
    size_t min_inner_tokens = 2;
  };

  ComplexDecomposer(const nlp::PatternIndex* pattern_index,
                    PrimitiveProbe is_primitive, const Options& options);

  /// Returns the maximum-probability decomposition of `tokens`, or a
  /// zero-probability result when no valid decomposition exists.
  Decomposition Decompose(const std::vector<std::string>& tokens) const;

 private:
  const nlp::PatternIndex* pattern_index_;
  PrimitiveProbe is_primitive_;
  Options options_;
};

}  // namespace kbqa::core

#endif  // KBQA_CORE_DECOMPOSER_H_
