#include "core/em_learner.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "nlp/tokenizer.h"
#include "obs/obs.h"
#include "util/thread_pool.h"

namespace kbqa::core {

namespace {

/// θ key: template in the high 32 bits, path in the low 32. Used only to
/// compact (t, p) pairs into dense parameter indices before EM runs; the
/// per-iteration loops are pure array arithmetic.
uint64_t ThetaKey(TemplateId t, rdf::PathId p) {
  return (static_cast<uint64_t>(t) << 32) | p;
}

/// Fixed shard count for all parallel phases. Determinism requires this to
/// be independent of the thread count: shard partials are merged in shard
/// order, so any pool size reduces the same partial sums in the same
/// order. 32 keeps per-shard accumulator memory modest while giving a
/// 32-way load-balancing granularity.
constexpr size_t kNumShards = 32;

}  // namespace

std::string MakeTemplateText(const std::vector<std::string>& tokens,
                             size_t mention_begin, size_t mention_end,
                             const std::string& category) {
  assert(mention_begin < mention_end && mention_end <= tokens.size());
  std::string out;
  for (size_t i = 0; i < mention_begin; ++i) {
    if (!out.empty()) out += ' ';
    out += tokens[i];
  }
  if (!out.empty()) out += ' ';
  out += category;
  for (size_t i = mention_end; i < tokens.size(); ++i) {
    out += ' ';
    out += tokens[i];
  }
  return out;
}

EmLearner::EmLearner(const rdf::KnowledgeBase* kb, const rdf::ExpandedKb* ekb,
                     const taxonomy::Taxonomy* taxonomy,
                     const EvExtractor* extractor, const EmOptions& options)
    : kb_(kb),
      ekb_(ekb),
      taxonomy_(taxonomy),
      extractor_(extractor),
      options_(options) {}

void EmLearner::BuildObservations(ThreadPool* pool,
                                  const corpus::QaCorpus& corpus,
                                  TemplateStore* store,
                                  std::vector<Observation>* observations,
                                  EmStats* stats) const {
  KBQA_TRACE_SPAN("em.build_observations");
  // Per-shard build state. Templates are interned into a shard-local
  // dictionary (ZPair.t holds *local* ids); merging shards in shard order
  // and re-interning each shard's first-occurrence list into the global
  // store reproduces exactly the template-id assignment a sequential scan
  // over the corpus would produce.
  struct ShardBuild {
    std::vector<std::string> texts;  // local id -> text, first-occurrence order
    std::unordered_map<std::string, TemplateId> index;
    std::vector<uint64_t> frequency;  // local id -> AddFrequency count
    std::vector<Observation> observations;
    size_t questions_with_entities = 0;
    size_t total_entities = 0;
    size_t total_template_cands = 0;
    size_t total_pred_cands = 0;
  };

  auto build_shard = [&](size_t shard, size_t begin, size_t end) {
    (void)shard;
    ShardBuild out;
    for (size_t qi = begin; qi < end; ++qi) {
      const corpus::QaPair& pair = corpus.pairs[qi];
      std::vector<std::string> tokens = nlp::TokenizeQuestion(pair.question);
      std::vector<EvCandidate> candidates =
          extractor_->Extract(tokens, pair.answer);
      if (candidates.empty()) continue;

      // P(e|q_i): uniform over the distinct entities appearing in EV_i
      // (Eq. 4 — the joint extraction replaces plain NER here).
      std::unordered_set<rdf::TermId> distinct_entities;
      for (const EvCandidate& cand : candidates) {
        distinct_entities.insert(cand.entity);
      }
      const double p_e = 1.0 / static_cast<double>(distinct_entities.size());
      ++out.questions_with_entities;
      out.total_entities += distinct_entities.size();

      for (const EvCandidate& cand : candidates) {
        // Conceptualize the entity in the question's context — the template
        // candidates T with P(t|e, q) > 0.
        std::vector<std::string> context;
        context.reserve(tokens.size());
        for (size_t i = 0; i < tokens.size(); ++i) {
          if (i < cand.mention_begin || i >= cand.mention_end) {
            context.push_back(tokens[i]);
          }
        }
        std::vector<taxonomy::ScoredCategory> categories =
            taxonomy_->Conceptualize(cand.entity, context);
        if (categories.size() > options_.max_categories_per_entity) {
          categories.resize(options_.max_categories_per_entity);
        }
        double cat_mass = 0;
        for (const auto& sc : categories) {
          if (sc.probability >= options_.min_category_prob) {
            cat_mass += sc.probability;
          }
        }
        if (cat_mass <= 0) continue;

        Observation obs;
        for (const auto& sc : categories) {
          if (sc.probability < options_.min_category_prob) continue;
          std::string text = MakeTemplateText(
              tokens, cand.mention_begin, cand.mention_end,
              taxonomy_->CategoryName(sc.category));
          TemplateId t;
          if (auto it = out.index.find(text); it != out.index.end()) {
            t = it->second;
          } else {
            t = static_cast<TemplateId>(out.texts.size());
            out.index.emplace(text, t);
            out.texts.push_back(std::move(text));
            out.frequency.push_back(0);
          }
          ++out.frequency[t];
          const double p_t = sc.probability / cat_mass;
          for (rdf::PathId path : cand.paths) {
            const size_t fanout = ekb_->Objects(cand.entity, path).size();
            if (fanout == 0) continue;
            const double p_v = 1.0 / static_cast<double>(fanout);
            obs.z.push_back(ZPair{t, path, p_e * p_t * p_v});
          }
          out.total_template_cands += 1;
        }
        if (!obs.z.empty()) {
          out.total_pred_cands += cand.paths.size();
          out.observations.push_back(std::move(obs));
        }
      }
    }
    return out;
  };

  size_t questions_with_entities = 0;
  size_t total_entities = 0;
  size_t total_template_cands = 0;
  size_t total_pred_cands = 0;

  // Ordered merge: shard s's templates and observations land before shard
  // s+1's, with local template ids rewritten through the global store.
  ParallelReduce(
      *pool, corpus.pairs.size(), kNumShards, 0,
      build_shard,
      [&](int&, ShardBuild&& shard) {
        std::vector<TemplateId> to_global(shard.texts.size());
        for (size_t i = 0; i < shard.texts.size(); ++i) {
          to_global[i] = store->Intern(shard.texts[i]);
          store->AddFrequency(to_global[i], shard.frequency[i]);
        }
        for (Observation& obs : shard.observations) {
          for (ZPair& z : obs.z) z.t = to_global[z.t];
          observations->push_back(std::move(obs));
        }
        questions_with_entities += shard.questions_with_entities;
        total_entities += shard.total_entities;
        total_template_cands += shard.total_template_cands;
        total_pred_cands += shard.total_pred_cands;
      });

  stats->num_qa_pairs = corpus.pairs.size();
  stats->num_observations = observations->size();
  if (questions_with_entities > 0) {
    stats->avg_entities_per_question =
        static_cast<double>(total_entities) /
        static_cast<double>(questions_with_entities);
  }
  if (!observations->empty()) {
    stats->avg_templates_per_observation =
        static_cast<double>(total_template_cands) /
        static_cast<double>(observations->size());
    stats->avg_predicates_per_observation =
        static_cast<double>(total_pred_cands) /
        static_cast<double>(observations->size());
  }
}

Status EmLearner::Train(const corpus::QaCorpus& corpus, TemplateStore* store,
                        EmStats* stats) const {
  if (store == nullptr || stats == nullptr) {
    return Status::InvalidArgument("store and stats must be non-null");
  }
  KBQA_TRACE_SPAN("em.train");

  ThreadPool pool(options_.num_threads);

  std::vector<Observation> observations;
  BuildObservations(&pool, corpus, store, &observations, stats);
  if (observations.empty()) {
    return Status::FailedPrecondition(
        "no (question, entity, value) observations could be extracted; "
        "check that corpus entities exist in the knowledge base");
  }

  // Compact the observed (t, p) pairs into dense parameter indices, in
  // first-occurrence order over the observations. After this point the
  // per-iteration loops touch only flat arrays — no hashing.
  size_t total_z = 0;
  for (const Observation& obs : observations) total_z += obs.z.size();

  std::unordered_map<uint64_t, uint32_t> param_index;
  param_index.reserve(total_z);
  std::vector<rdf::PathId> param_path;  // dense index -> path
  // Dense indices of each template's parameters, grouped for the M-step.
  std::vector<std::vector<uint32_t>> params_of_template(
      store->num_templates());

  struct DenseZ {
    uint32_t param;
    double f;
  };
  std::vector<DenseZ> entries;
  entries.reserve(total_z);
  std::vector<size_t> obs_offset;  // observation i spans
  obs_offset.reserve(observations.size() + 1);  // [offset[i], offset[i+1])
  obs_offset.push_back(0);
  {
    KBQA_TRACE_SPAN("em.compact");
    for (const Observation& obs : observations) {
      for (const ZPair& z : obs.z) {
        auto [it, inserted] =
            param_index.emplace(ThetaKey(z.t, z.p),
                                static_cast<uint32_t>(param_path.size()));
        if (inserted) {
          param_path.push_back(z.p);
          params_of_template[z.t].push_back(it->second);
        }
        entries.push_back(DenseZ{it->second, z.f});
      }
      obs_offset.push_back(entries.size());
    }
  }
  const size_t num_params = param_path.size();
  const size_t m = observations.size();

  // θ⁰ (Eq. 23): uniform over the (p, t) pairs observed with f > 0.
  std::vector<double> theta(num_params, 0.0);
  for (const auto& params : params_of_template) {
    if (params.empty()) continue;
    const double uniform = 1.0 / static_cast<double>(params.size());
    for (uint32_t idx : params) theta[idx] = uniform;
  }

  if (options_.run_em) {
    const size_t num_shards = std::min(kNumShards, m);
    // Thread-local E-step accumulators, one per *shard* (not per thread):
    // the shard-ordered reduction below is what makes θ independent of the
    // pool size. Buffers persist across iterations to avoid reallocation.
    std::vector<std::vector<double>> shard_acc(num_shards);
    std::vector<double> shard_ll(num_shards, 0.0);
    std::vector<double> acc(num_params, 0.0);
    // Wall time of each E-step shard this iteration (observability only;
    // zeroes when the registry is disabled).
    std::vector<uint64_t> shard_ns(num_shards, 0);

    for (int iter = 0; iter < options_.max_iterations; ++iter) {
      KBQA_TRACE_SPAN("em.iteration");
      // E-step: responsibilities per observation (Eq. 21, normalized),
      // sharded over observations.
      {
        KBQA_TRACE_SPAN("em.e_step");
        ParallelFor(pool, m, num_shards,
                    [&](size_t shard, size_t begin, size_t end) {
                      const uint64_t t0 =
                          obs::Enabled() ? obs::NowTicks() : 0;
                      std::vector<double>& local = shard_acc[shard];
                      local.assign(num_params, 0.0);
                      double ll = 0;
                      for (size_t i = begin; i < end; ++i) {
                        const size_t zb = obs_offset[i];
                        const size_t ze = obs_offset[i + 1];
                        double total = 0;
                        for (size_t z = zb; z < ze; ++z) {
                          total += entries[z].f * theta[entries[z].param];
                        }
                        if (total <= 0) continue;
                        ll += std::log(total);
                        for (size_t z = zb; z < ze; ++z) {
                          local[entries[z].param] +=
                              entries[z].f * theta[entries[z].param] / total;
                        }
                      }
                      shard_ll[shard] = ll;
                      if (obs::Enabled()) {
                        shard_ns[shard] =
                            obs::TicksToNanos(obs::NowTicks() - t0);
                        KBQA_HISTOGRAM_RECORD("em.e_step.shard_ns",
                                              shard_ns[shard]);
                      }
                    });
      }
      if (obs::Enabled()) {
        // Straggler spread: the gap between the slowest and fastest shard
        // bounds what adding threads can still recover this iteration.
        uint64_t max_ns = 0;
        uint64_t min_ns = UINT64_MAX;
        for (size_t shard = 0; shard < num_shards; ++shard) {
          max_ns = std::max(max_ns, shard_ns[shard]);
          min_ns = std::min(min_ns, shard_ns[shard]);
        }
        KBQA_GAUGE_SET("em.e_step.straggler_max_ns", max_ns);
        KBQA_GAUGE_SET("em.e_step.straggler_min_ns", min_ns);
      }
      // Shard-ordered reduction.
      std::fill(acc.begin(), acc.end(), 0.0);
      double log_likelihood = 0;
      for (size_t shard = 0; shard < num_shards; ++shard) {
        const std::vector<double>& local = shard_acc[shard];
        for (size_t i = 0; i < num_params; ++i) acc[i] += local[i];
        log_likelihood += shard_ll[shard];
      }
      if (obs::Enabled() && !stats->log_likelihood.empty()) {
        KBQA_GAUGE_SET("em.ll_delta",
                       log_likelihood - stats->log_likelihood.back());
      }
      KBQA_GAUGE_SET("em.log_likelihood", log_likelihood);
      stats->log_likelihood.push_back(log_likelihood);

      // M-step: per-template normalization (Eq. 22).
      double max_delta = 0;
      {
        KBQA_TRACE_SPAN("em.m_step");
        for (const auto& params : params_of_template) {
          double denom = 0;
          for (uint32_t idx : params) denom += acc[idx];
          if (denom <= 0) continue;
          for (uint32_t idx : params) {
            const double next = acc[idx] / denom;
            max_delta = std::max(max_delta, std::abs(next - theta[idx]));
            theta[idx] = next;
          }
        }
      }
      KBQA_COUNTER_ADD("em.iterations", 1);
      stats->iterations = iter + 1;
      if (max_delta < options_.tolerance) break;
    }
  }

  // Materialize P(p|t) into the store.
  for (TemplateId t = 0; t < params_of_template.size(); ++t) {
    const auto& params = params_of_template[t];
    if (params.empty()) continue;
    std::vector<PredicateProb> dist;
    dist.reserve(params.size());
    for (uint32_t idx : params) {
      if (theta[idx] > 0) {
        dist.push_back(PredicateProb{param_path[idx], theta[idx]});
      }
    }
    store->SetDistribution(t, std::move(dist));
  }
  stats->num_templates = store->num_templates();
  stats->num_predicates = store->NumDistinctPredicates();
  return Status::Ok();
}

}  // namespace kbqa::core
