#include "core/em_learner.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "nlp/tokenizer.h"

namespace kbqa::core {

namespace {

/// θ key: template in the high 32 bits, path in the low 32.
uint64_t ThetaKey(TemplateId t, rdf::PathId p) {
  return (static_cast<uint64_t>(t) << 32) | p;
}

}  // namespace

std::string MakeTemplateText(const std::vector<std::string>& tokens,
                             size_t mention_begin, size_t mention_end,
                             const std::string& category) {
  assert(mention_begin < mention_end && mention_end <= tokens.size());
  std::string out;
  for (size_t i = 0; i < mention_begin; ++i) {
    if (!out.empty()) out += ' ';
    out += tokens[i];
  }
  if (!out.empty()) out += ' ';
  out += category;
  for (size_t i = mention_end; i < tokens.size(); ++i) {
    out += ' ';
    out += tokens[i];
  }
  return out;
}

EmLearner::EmLearner(const rdf::KnowledgeBase* kb, const rdf::ExpandedKb* ekb,
                     const taxonomy::Taxonomy* taxonomy,
                     const EvExtractor* extractor, const EmOptions& options)
    : kb_(kb),
      ekb_(ekb),
      taxonomy_(taxonomy),
      extractor_(extractor),
      options_(options) {}

void EmLearner::BuildObservations(const corpus::QaCorpus& corpus,
                                  TemplateStore* store,
                                  std::vector<Observation>* observations,
                                  EmStats* stats) const {
  size_t questions_with_entities = 0;
  size_t total_entities = 0;
  size_t total_template_cands = 0;
  size_t total_pred_cands = 0;

  for (size_t qi = 0; qi < corpus.pairs.size(); ++qi) {
    const corpus::QaPair& pair = corpus.pairs[qi];
    std::vector<std::string> tokens = nlp::TokenizeQuestion(pair.question);
    std::vector<EvCandidate> candidates =
        extractor_->Extract(tokens, pair.answer);
    if (candidates.empty()) continue;

    // P(e|q_i): uniform over the distinct entities appearing in EV_i
    // (Eq. 4 — the joint extraction replaces plain NER here).
    std::unordered_set<rdf::TermId> distinct_entities;
    for (const EvCandidate& cand : candidates) {
      distinct_entities.insert(cand.entity);
    }
    const double p_e = 1.0 / static_cast<double>(distinct_entities.size());
    ++questions_with_entities;
    total_entities += distinct_entities.size();

    for (const EvCandidate& cand : candidates) {
      // Conceptualize the entity in the question's context — the template
      // candidates T with P(t|e, q) > 0.
      std::vector<std::string> context;
      context.reserve(tokens.size());
      for (size_t i = 0; i < tokens.size(); ++i) {
        if (i < cand.mention_begin || i >= cand.mention_end) {
          context.push_back(tokens[i]);
        }
      }
      std::vector<taxonomy::ScoredCategory> categories =
          taxonomy_->Conceptualize(cand.entity, context);
      if (categories.size() > options_.max_categories_per_entity) {
        categories.resize(options_.max_categories_per_entity);
      }
      double cat_mass = 0;
      for (const auto& sc : categories) {
        if (sc.probability >= options_.min_category_prob) {
          cat_mass += sc.probability;
        }
      }
      if (cat_mass <= 0) continue;

      Observation obs;
      for (const auto& sc : categories) {
        if (sc.probability < options_.min_category_prob) continue;
        TemplateId t = store->Intern(MakeTemplateText(
            tokens, cand.mention_begin, cand.mention_end,
            taxonomy_->CategoryName(sc.category)));
        store->AddFrequency(t);
        const double p_t = sc.probability / cat_mass;
        for (rdf::PathId path : cand.paths) {
          const size_t fanout = ekb_->Objects(cand.entity, path).size();
          if (fanout == 0) continue;
          const double p_v = 1.0 / static_cast<double>(fanout);
          obs.z.push_back(ZPair{t, path, p_e * p_t * p_v});
        }
        total_template_cands += 1;
      }
      if (!obs.z.empty()) {
        total_pred_cands += cand.paths.size();
        observations->push_back(std::move(obs));
      }
    }
  }

  stats->num_qa_pairs = corpus.pairs.size();
  stats->num_observations = observations->size();
  if (questions_with_entities > 0) {
    stats->avg_entities_per_question =
        static_cast<double>(total_entities) /
        static_cast<double>(questions_with_entities);
  }
  if (!observations->empty()) {
    stats->avg_templates_per_observation =
        static_cast<double>(total_template_cands) /
        static_cast<double>(observations->size());
    stats->avg_predicates_per_observation =
        static_cast<double>(total_pred_cands) /
        static_cast<double>(observations->size());
  }
}

Status EmLearner::Train(const corpus::QaCorpus& corpus, TemplateStore* store,
                        EmStats* stats) const {
  if (store == nullptr || stats == nullptr) {
    return Status::InvalidArgument("store and stats must be non-null");
  }

  std::vector<Observation> observations;
  BuildObservations(corpus, store, &observations, stats);
  if (observations.empty()) {
    return Status::FailedPrecondition(
        "no (question, entity, value) observations could be extracted; "
        "check that corpus entities exist in the knowledge base");
  }

  // θ⁰ (Eq. 23): uniform over the (p, t) pairs observed with f > 0.
  std::unordered_map<uint64_t, double> theta;
  std::unordered_map<TemplateId, std::vector<rdf::PathId>> paths_of_template;
  for (const Observation& obs : observations) {
    for (const ZPair& z : obs.z) {
      auto [it, inserted] = theta.emplace(ThetaKey(z.t, z.p), 0.0);
      if (inserted) paths_of_template[z.t].push_back(z.p);
      (void)it;
    }
  }
  for (const auto& [t, paths] : paths_of_template) {
    const double uniform = 1.0 / static_cast<double>(paths.size());
    for (rdf::PathId p : paths) theta[ThetaKey(t, p)] = uniform;
  }

  if (options_.run_em) {
    std::unordered_map<uint64_t, double> acc;
    acc.reserve(theta.size());
    for (int iter = 0; iter < options_.max_iterations; ++iter) {
      // E-step: responsibilities per observation (Eq. 21, normalized).
      acc.clear();
      double log_likelihood = 0;
      for (const Observation& obs : observations) {
        double total = 0;
        for (const ZPair& z : obs.z) {
          total += z.f * theta[ThetaKey(z.t, z.p)];
        }
        if (total <= 0) continue;
        log_likelihood += std::log(total);
        for (const ZPair& z : obs.z) {
          const double gamma = z.f * theta[ThetaKey(z.t, z.p)] / total;
          acc[ThetaKey(z.t, z.p)] += gamma;
        }
      }
      stats->log_likelihood.push_back(log_likelihood);

      // M-step: per-template normalization (Eq. 22).
      double max_delta = 0;
      for (const auto& [t, paths] : paths_of_template) {
        double denom = 0;
        for (rdf::PathId p : paths) {
          auto it = acc.find(ThetaKey(t, p));
          if (it != acc.end()) denom += it->second;
        }
        if (denom <= 0) continue;
        for (rdf::PathId p : paths) {
          auto it = acc.find(ThetaKey(t, p));
          const double next = it == acc.end() ? 0.0 : it->second / denom;
          double& cur = theta[ThetaKey(t, p)];
          max_delta = std::max(max_delta, std::abs(next - cur));
          cur = next;
        }
      }
      stats->iterations = iter + 1;
      if (max_delta < options_.tolerance) break;
    }
  }

  // Materialize P(p|t) into the store.
  for (const auto& [t, paths] : paths_of_template) {
    std::vector<PredicateProb> dist;
    dist.reserve(paths.size());
    for (rdf::PathId p : paths) {
      double prob = theta[ThetaKey(t, p)];
      if (prob > 0) dist.push_back(PredicateProb{p, prob});
    }
    store->SetDistribution(t, std::move(dist));
  }
  stats->num_templates = store->num_templates();
  stats->num_predicates = store->NumDistinctPredicates();
  return Status::Ok();
}

}  // namespace kbqa::core
