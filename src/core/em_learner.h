#ifndef KBQA_CORE_EM_LEARNER_H_
#define KBQA_CORE_EM_LEARNER_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/ev_extraction.h"
#include "core/template_store.h"
#include "corpus/qa_corpus.h"
#include "rdf/expanded_predicate.h"
#include "taxonomy/taxonomy.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace kbqa::core {

/// Options for the predicate-inference EM (§4).
struct EmOptions {
  int max_iterations = 30;
  /// Stop when the largest per-parameter change drops below this.
  double tolerance = 1e-4;
  /// Conceptualization truncation: templates are derived only from the top
  /// categories of the entity (bounded, as the paper's complexity argument
  /// requires — "the number of concepts for e is upper bounded").
  size_t max_categories_per_entity = 3;
  double min_category_prob = 0.02;
  /// When false, EM stops after the θ⁰ initialization (Eq. 23) — the
  /// initialization-only ablation.
  bool run_em = true;
  /// Worker threads for observation building and the E-step. The work is
  /// split into a *fixed* number of statically ordered shards merged in
  /// shard order, so the learned θ is bit-identical for any thread count
  /// (see DESIGN.md "Threading model & determinism").
  int num_threads = 1;
};

/// Diagnostics of a training run.
struct EmStats {
  size_t num_qa_pairs = 0;
  /// m — the number of (q, e, v) observations in X (Eq. 12).
  size_t num_observations = 0;
  int iterations = 0;
  /// L(θ) after each iteration (monotone non-decreasing — EM guarantee,
  /// asserted by the property tests).
  std::vector<double> log_likelihood;
  size_t num_templates = 0;
  size_t num_predicates = 0;
  /// Average number of candidate entities per question that produced at
  /// least one observation (feeds Table 6).
  double avg_entities_per_question = 0;
  double avg_templates_per_observation = 0;
  double avg_predicates_per_observation = 0;
};

/// Maximum-likelihood estimation of P(p|t) over the QA corpus via EM
/// (Algorithm 1). The latent variable z_i = (p, t) names the predicate and
/// template that generated observation x_i = (q_i, e_i, v_i); the E-step
/// weights are pruned exactly as the paper prescribes — only templates
/// reachable by conceptualizing e_i in q_i, only predicates connecting e_i
/// and v_i — making each iteration O(m).
class EmLearner {
 public:
  /// All references must outlive the learner.
  EmLearner(const rdf::KnowledgeBase* kb, const rdf::ExpandedKb* ekb,
            const taxonomy::Taxonomy* taxonomy, const EvExtractor* extractor,
            const EmOptions& options);

  /// Trains P(p|t) over `corpus`, filling `store` (templates + learned
  /// distributions) and `stats`.
  [[nodiscard]] Status Train(const corpus::QaCorpus& corpus, TemplateStore* store,
               EmStats* stats) const;

 private:
  // One candidate assignment of the latent variable for an observation.
  struct ZPair {
    TemplateId t;
    rdf::PathId p;
    double f;  // f(x_i, z_i) = P(e|q) P(t|e,q) P(v|e,p) (P(q) constant)
  };
  struct Observation {
    std::vector<ZPair> z;
  };

  void BuildObservations(ThreadPool* pool, const corpus::QaCorpus& corpus,
                         TemplateStore* store,
                         std::vector<Observation>* observations,
                         EmStats* stats) const;

  const rdf::KnowledgeBase* kb_;
  const rdf::ExpandedKb* ekb_;
  const taxonomy::Taxonomy* taxonomy_;
  const EvExtractor* extractor_;
  EmOptions options_;
};

/// Builds the template string t(q, e, c): the question with the mention
/// span replaced by the category token. Exposed for reuse by the online
/// procedure, which must form template strings the same way.
std::string MakeTemplateText(const std::vector<std::string>& tokens,
                             size_t mention_begin, size_t mention_end,
                             const std::string& category);

}  // namespace kbqa::core

#endif  // KBQA_CORE_EM_LEARNER_H_
