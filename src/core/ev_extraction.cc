#include "core/ev_extraction.h"

#include <algorithm>

#include "nlp/tokenizer.h"

namespace kbqa::core {

bool ContainsTokenRun(const std::vector<std::string>& haystack,
                      const std::vector<std::string>& needle) {
  if (needle.empty() || needle.size() > haystack.size()) return false;
  for (size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    bool match = true;
    for (size_t j = 0; j < needle.size(); ++j) {
      if (haystack[i + j] != needle[j]) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

EvExtractor::EvExtractor(const rdf::KnowledgeBase* kb,
                         const rdf::ExpandedKb* ekb,
                         const nlp::GazetteerNer* ner,
                         const nlp::QuestionClassifier* classifier,
                         const PredicateClassMap* predicate_class,
                         const std::unordered_set<rdf::PredId>* name_like,
                         const Options& options)
    : kb_(kb),
      ekb_(ekb),
      ner_(ner),
      classifier_(classifier),
      predicate_class_(predicate_class),
      name_like_(name_like),
      options_(options) {}

std::vector<EvCandidate> EvExtractor::Extract(
    const std::vector<std::string>& question_tokens,
    const std::string& answer) const {
  std::vector<EvCandidate> out;
  std::vector<nlp::Mention> mentions = ner_->FindMentions(question_tokens);
  if (mentions.empty()) return out;

  const std::vector<std::string> answer_tokens = nlp::Tokenize(answer);
  if (answer_tokens.empty()) return out;

  nlp::QuestionClass question_class = nlp::QuestionClass::kUnknown;
  if (options_.refine_by_question_class) {
    question_class = classifier_->Classify(question_tokens);
  }

  for (const nlp::Mention& mention : mentions) {
    for (rdf::TermId entity : mention.entities) {
      // Group the entity's matching triples by value; each value yields one
      // candidate carrying all connecting paths.
      EvCandidate* current = nullptr;
      rdf::TermId current_value = rdf::kInvalidTerm;
      for (const auto& [path_id, object] : ekb_->Out(entity)) {
        const rdf::PredPath& path = ekb_->paths().GetPath(path_id);
        // Refinement: the value's class (from its predicate) must be
        // compatible with the question's expected answer type.
        if (options_.refine_by_question_class) {
          nlp::QuestionClass value_class =
              PathAnswerClass(path, *predicate_class_, *name_like_);
          if (!AnswerClassCompatible(question_class, value_class)) continue;
        }
        // Skip objects that cannot appear as answer text (entity IRIs).
        if (!kb_->IsLiteral(object)) continue;
        if (!ContainsTokenRun(answer_tokens,
                              nlp::Tokenize(kb_->NodeString(object)))) {
          continue;
        }
        if (current == nullptr || current_value != object) {
          // Out() is sorted by (path, object), so the same value may recur
          // non-contiguously; search existing candidates for this entity.
          current = nullptr;
          for (EvCandidate& cand : out) {
            if (cand.entity == entity && cand.value == object &&
                cand.mention_begin == mention.begin) {
              current = &cand;
              break;
            }
          }
          if (current == nullptr) {
            out.push_back(EvCandidate{mention.begin, mention.end, entity,
                                      object,
                                      {}});
            current = &out.back();
          }
          current_value = object;
        }
        if (std::find(current->paths.begin(), current->paths.end(), path_id) ==
            current->paths.end()) {
          current->paths.push_back(path_id);
        }
      }
    }
  }
  return out;
}

}  // namespace kbqa::core
