#ifndef KBQA_CORE_EV_EXTRACTION_H_
#define KBQA_CORE_EV_EXTRACTION_H_

#include <string>
#include <vector>

#include "core/answer_type.h"
#include "nlp/ner.h"
#include "nlp/question_classifier.h"
#include "rdf/expanded_predicate.h"
#include "rdf/knowledge_base.h"

namespace kbqa::core {

/// One extracted entity–value candidate from a QA pair (Eq. 8):
/// e ⊂ q, v ⊂ a, and at least one (possibly expanded) predicate connects
/// them in the knowledge base.
struct EvCandidate {
  /// Token span of the entity mention in the question.
  size_t mention_begin = 0;
  size_t mention_end = 0;
  rdf::TermId entity = rdf::kInvalidTerm;
  rdf::TermId value = rdf::kInvalidTerm;
  /// All expanded predicates connecting entity to value.
  std::vector<rdf::PathId> paths;
};

/// Joint entity–value extraction (§4.1.1) with question-class refinement.
///
/// The direction of the scan is the key to efficiency: instead of matching
/// every answer substring against the KB, it enumerates the entity's
/// materialized expanded triples (tens per entity) and checks which objects
/// occur in the answer — the same join order the paper's "reduction on s"
/// sets up. Value matching is token-contiguous, so "1961" does not match
/// inside "21961".
class EvExtractor {
 public:
  struct Options {
    /// Apply the UIUC answer-type filter (the paper's refinement step).
    bool refine_by_question_class = true;
  };

  /// All references must outlive the extractor.
  EvExtractor(const rdf::KnowledgeBase* kb, const rdf::ExpandedKb* ekb,
              const nlp::GazetteerNer* ner,
              const nlp::QuestionClassifier* classifier,
              const PredicateClassMap* predicate_class,
              const std::unordered_set<rdf::PredId>* name_like,
              const Options& options);

  /// Extracts EV candidates from one QA pair. `question_tokens` must come
  /// from nlp::TokenizeQuestion.
  std::vector<EvCandidate> Extract(
      const std::vector<std::string>& question_tokens,
      const std::string& answer) const;

  /// Entity mentions found in the question (exposed so callers can reuse
  /// the NER pass, e.g. for pattern-index construction).
  std::vector<nlp::Mention> Mentions(
      const std::vector<std::string>& question_tokens) const {
    return ner_->FindMentions(question_tokens);
  }

 private:
  const rdf::KnowledgeBase* kb_;
  const rdf::ExpandedKb* ekb_;
  const nlp::GazetteerNer* ner_;
  const nlp::QuestionClassifier* classifier_;
  const PredicateClassMap* predicate_class_;
  const std::unordered_set<rdf::PredId>* name_like_;
  Options options_;
};

/// True when `needle` occurs as a contiguous token run inside `haystack`.
bool ContainsTokenRun(const std::vector<std::string>& haystack,
                      const std::vector<std::string>& needle);

}  // namespace kbqa::core

#endif  // KBQA_CORE_EV_EXTRACTION_H_
