#include "core/kbqa_system.h"

#include <unordered_set>

#include "nlp/tokenizer.h"
#include "obs/obs.h"
#include "util/memory_budget.h"
#include "util/strings.h"

namespace kbqa::core {

namespace {

/// One arbiter definition shared by option resolution and gauge export:
/// the decoded-block working set is the biggest lever on answer latency
/// under pressure, so it gets twice the weight of either memo cache.
util::MemoryBudget ArbitratedBudget(uint64_t total) {
  return util::MemoryBudget(
      total, {{"value_cache", 1.0}, {"answer_cache", 1.0}, {"ekb_blocks", 2.0}});
}

}  // namespace

KbqaSystem::KbqaSystem(const corpus::World* world, const KbqaOptions& options)
    : world_(world), options_(options) {
  ner_ = std::make_unique<nlp::GazetteerNer>(world_->kb,
                                             world_->alias_predicates);
}

Status KbqaSystem::Train(const corpus::QaCorpus& corpus) {
  if (!world_->kb.frozen()) {
    return Status::FailedPrecondition("knowledge base must be frozen");
  }
  KBQA_TRACE_SPAN("system.train");

  // 1. Seed reduction (§6.2): only entities mentioned in corpus questions
  //    start the expansion BFS. Mentions are also reused for the pattern
  //    index, so tokenize once.
  std::vector<nlp::PatternQuestion> pattern_questions;
  pattern_questions.reserve(corpus.pairs.size());
  {
    KBQA_TRACE_SPAN("system.seed_reduction");
    std::unordered_set<rdf::TermId> seed_set;
    for (const corpus::QaPair& pair : corpus.pairs) {
      nlp::PatternQuestion pq;
      pq.tokens = nlp::TokenizeQuestion(pair.question);
      for (const nlp::Mention& m : ner_->FindMentions(pq.tokens)) {
        pq.mention_spans.emplace_back(m.begin, m.end);
        for (rdf::TermId e : m.entities) seed_set.insert(e);
      }
      pattern_questions.push_back(std::move(pq));
    }
    seeds_.assign(seed_set.begin(), seed_set.end());
    std::sort(seeds_.begin(), seeds_.end());  // Determinism.
  }

  // 2. Predicate expansion (§6). An unset expansion thread count inherits
  //    the EM worker pool size, so one option drives both phases.
  rdf::ExpansionOptions expansion = options_.expansion;
  if (expansion.num_threads == 0) expansion.num_threads = options_.em.num_threads;
  auto ekb = [&] {
    KBQA_TRACE_SPAN("system.expand_predicates");
    return rdf::ExpandedKb::Build(world_->kb, seeds_, world_->name_like,
                                  expansion);
  }();
  if (!ekb.ok()) return ekb.status();
  ekb_ = std::make_unique<rdf::ExpandedKb>(std::move(ekb).value());

  // 3. Entity–value extraction + EM predicate inference (§4).
  extractor_ = std::make_unique<EvExtractor>(
      &world_->kb, ekb_.get(), ner_.get(), &classifier_,
      &world_->predicate_class, &world_->name_like, options_.ev);
  EmLearner learner(&world_->kb, ekb_.get(), &world_->taxonomy,
                    extractor_.get(), options_.em);
  store_ = TemplateStore();
  em_stats_ = EmStats();
  KBQA_RETURN_IF_ERROR(learner.Train(corpus, &store_, &em_stats_));

  // 4. Compressed expanded-KB substrate (optional) + online inference
  //    engine (§3.3). The substrate shares the expansion's PathIds, so it
  //    can serve the engine's V(e, p+) lookups directly.
  cekb_.reset();
  if (options_.use_compressed_expansion) {
    KBQA_TRACE_SPAN("system.compress_expansion");
    rdf::CompressedExpandedKb::Options copt;
    copt.target_block_edges = options_.compressed_block_edges;
    if (options_.process_memory_budget_bytes > 0) {
      copt.decoded_cache_budget_bytes =
          ArbitratedBudget(options_.process_memory_budget_bytes)
              .BudgetFor("ekb_blocks");
    }
    auto cekb = rdf::CompressedExpandedKb::FromExpanded(*ekb_, copt);
    if (!cekb.ok()) return cekb.status();
    cekb_ = std::make_unique<rdf::CompressedExpandedKb>(std::move(cekb).value());
  }

  loaded_paths_.reset();
  online_ = std::make_unique<OnlineInference>(
      &world_->kb, &world_->taxonomy, ner_.get(), &store_, &ekb_->paths(),
      EffectiveOnlineOptions(), cekb_.get());

  variants_ = std::make_unique<VariantSolver>(
      &world_->kb, &world_->taxonomy, ner_.get(), &store_, &ekb_->paths(),
      VariantSolver::Options());

  // 5. Complex-question machinery (§5).
  if (options_.enable_complex_questions) {
    pattern_index_.emplace(nlp::PatternIndex::Build(pattern_questions));
    const OnlineInference* online = online_.get();
    decomposer_ = std::make_unique<ComplexDecomposer>(
        &*pattern_index_,
        [online](const std::vector<std::string>& tokens) {
          return online->IsPrimitiveBfq(tokens);
        },
        options_.decomposition);
  }
  return Status::Ok();
}

OnlineInference::Options KbqaSystem::EffectiveOnlineOptions() const {
  OnlineInference::Options online = options_.online;
  if (options_.process_memory_budget_bytes > 0) {
    const util::MemoryBudget budget =
        ArbitratedBudget(options_.process_memory_budget_bytes);
    online.value_cache_budget_bytes = budget.BudgetFor("value_cache");
    online.answer_cache_budget_bytes = budget.BudgetFor("answer_cache");
  }
  return online;
}

void KbqaSystem::PublishMemoryGauges() const {
  if (online_ != nullptr) {
    util::MemoryBudget::Publish("value_cache",
                                online_->value_cache_stats().bytes);
    util::MemoryBudget::Publish("answer_cache",
                                online_->answer_cache_stats().bytes);
  }
  if (cekb_ != nullptr) {
    const rdf::CompressedExpandedKb::MemoryStats stats = cekb_->memory_stats();
    util::MemoryBudget::Publish("ekb_blocks", stats.decoded_cache_bytes);
    util::MemoryBudget::Publish("ekb_compressed", stats.compressed_bytes);
  }
  if (options_.process_memory_budget_bytes > 0) {
    ArbitratedBudget(options_.process_memory_budget_bytes).PublishBudgets();
  }
}

Status KbqaSystem::SaveModel(const std::string& path) const {
  if (!trained()) return Status::FailedPrecondition("train before SaveModel");
  const rdf::PathDictionary& paths =
      loaded_paths_ ? *loaded_paths_ : ekb_->paths();
  return core::SaveModel(store_, paths, world_->kb, path);
}

Status KbqaSystem::LoadModel(const std::string& path) {
  auto loaded = core::LoadModel(world_->kb, path);
  if (!loaded.ok()) return loaded.status();
  store_ = std::move(loaded.value().store);
  loaded_paths_ = std::make_unique<rdf::PathDictionary>(
      std::move(loaded.value().paths));
  // No compressed substrate here: its PathIds belong to a Train-time
  // expansion dictionary, not the freshly loaded one.
  online_ = std::make_unique<OnlineInference>(&world_->kb, &world_->taxonomy,
                                              ner_.get(), &store_,
                                              loaded_paths_.get(),
                                              EffectiveOnlineOptions());
  // The decomposer (if any) belongs to a previous training run whose path
  // ids no longer match; drop it, along with any stale substrate.
  cekb_.reset();
  decomposer_.reset();
  pattern_index_.reset();
  return Status::Ok();
}

AnswerResult KbqaSystem::Answer(const std::string& question) const {
  if (online_ == nullptr) return AnswerResult{};
  return online_->Answer(question);
}

AnswerResult KbqaSystem::Answer(const std::string& question,
                                const AnswerOptions& answer_options) const {
  if (online_ == nullptr) return AnswerResult{};
  return online_->Answer(question, answer_options);
}

std::vector<AnswerResult> KbqaSystem::AnswerAll(
    const std::vector<std::string>& questions, int num_threads) const {
  if (online_ == nullptr) return std::vector<AnswerResult>(questions.size());
  return online_->AnswerAll(questions, num_threads);
}

std::unique_ptr<LiveKbqaEngine> KbqaSystem::MakeLiveEngine(
    rdf::MutableKb* live) const {
  if (!trained()) return nullptr;
  LiveKbqaEngine::Options options;
  options.alias_predicates = world_->alias_predicates;
  options.online = EffectiveOnlineOptions();
  const rdf::PathDictionary* paths =
      loaded_paths_ != nullptr ? loaded_paths_.get() : &ekb_->paths();
  return std::make_unique<LiveKbqaEngine>(live, &world_->taxonomy, &store_,
                                          paths, options);
}

AnswerResult KbqaSystem::AnswerVariant(const std::string& question) const {
  if (variants_ == nullptr) return AnswerResult{};
  return variants_->Answer(question);
}

ComplexAnswer KbqaSystem::AnswerComplex(const std::string& question) const {
  ComplexAnswer out;
  if (online_ == nullptr) return out;
  std::vector<std::string> tokens = nlp::TokenizeQuestion(question);

  if (decomposer_ == nullptr) {
    out.answer = online_->AnswerTokens(tokens);
    out.sequence = {nlp::JoinTokens(tokens)};
    out.decomposition_probability = out.answer.answered ? 1.0 : 0.0;
    return out;
  }

  Decomposition decomposition = decomposer_->Decompose(tokens);
  if (decomposition.sequence.empty()) {
    // No valid decomposition: fall back to direct BFQ answering.
    out.answer = online_->AnswerTokens(tokens);
    out.sequence = {nlp::JoinTokens(tokens)};
    out.decomposition_probability = out.answer.answered ? 1.0 : 0.0;
    return out;
  }
  out.sequence = decomposition.sequence;
  out.decomposition_probability = decomposition.probability;

  // Answer the chain: each question's $e slot takes the previous answer.
  AnswerResult last;
  for (size_t i = 0; i < decomposition.sequence.size(); ++i) {
    std::string materialized = decomposition.sequence[i];
    if (i > 0) {
      if (!last.answered) return out;  // Chain broke; report unanswered.
      materialized = ReplaceAll(materialized, "$e", last.value);
    }
    last = online_->Answer(materialized);
  }
  out.answer = std::move(last);
  return out;
}

}  // namespace kbqa::core
