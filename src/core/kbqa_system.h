#ifndef KBQA_CORE_KBQA_SYSTEM_H_
#define KBQA_CORE_KBQA_SYSTEM_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/decomposer.h"
#include "core/em_learner.h"
#include "core/live_engine.h"
#include "core/model_io.h"
#include "core/ev_extraction.h"
#include "core/online.h"
#include "core/qa_interface.h"
#include "core/variants.h"
#include "core/template_store.h"
#include "corpus/qa_corpus.h"
#include "corpus/world.h"
#include "nlp/ner.h"
#include "nlp/pattern.h"
#include "nlp/question_classifier.h"
#include "obs/metrics.h"
#include "rdf/compressed_expanded.h"
#include "rdf/expanded_predicate.h"
#include "util/status.h"

namespace kbqa::core {

/// End-to-end configuration of a KBQA instance.
struct KbqaOptions {
  rdf::ExpansionOptions expansion;
  EmOptions em;
  OnlineInference::Options online;
  EvExtractor::Options ev;
  ComplexDecomposer::Options decomposition;
  /// Build the corpus pattern index / decomposer during Train (disable to
  /// measure the BFQ-only pipeline).
  bool enable_complex_questions = true;
  /// Compress the expanded KB into the block-compressed substrate after
  /// Train and route the engine's V(e, p+) misses through it (see
  /// rdf::CompressedExpandedKb). Answers are bit-identical either way.
  bool use_compressed_expansion = true;
  /// Edge-count target per compressed block (Train-built substrate).
  size_t compressed_block_edges = 4096;
  /// Single process memory budget arbitrated across the engine's caches —
  /// value cache : answer cache : decoded expanded-KB blocks at weights
  /// 1:1:2 via util::MemoryBudget — overriding the per-component
  /// `*_budget_bytes` options above. 0 = no arbitration: each component's
  /// own budget applies unchanged (0 there still means unbounded).
  uint64_t process_memory_budget_bytes = 0;
};

/// The result of answering a (possibly complex) question: the final answer
/// plus the decomposed question sequence that produced it.
struct ComplexAnswer {
  AnswerResult answer;
  std::vector<std::string> sequence;
  double decomposition_probability = 0;
};

/// The KBQA system facade — Figure 3 of the paper.
///
/// Offline (Train): seed-reduced predicate expansion over the KB (§6),
/// joint entity–value extraction from the QA corpus (§4.1), template
/// extraction via conceptualization (§2), EM estimation of P(p|t) (§4.2),
/// and the corpus pattern index for decomposition (§5.2).
///
/// Online (Answer / AnswerComplex): probabilistic inference (§3.3),
/// preceded by the decomposition DP for complex questions (§5.3).
///
/// The world (KB + taxonomy + predicate labels) must outlive the system.
class KbqaSystem : public QaSystemInterface {
 public:
  explicit KbqaSystem(const corpus::World* world,
                      const KbqaOptions& options = KbqaOptions());

  /// Runs the offline procedure over the QA corpus.
  [[nodiscard]] Status Train(const corpus::QaCorpus& corpus);
  bool trained() const { return online_ != nullptr; }

  /// Persists the trained model (templates + P(p|t)); requires trained().
  [[nodiscard]] Status SaveModel(const std::string& path) const;
  /// Restores a previously saved model, enabling BFQ answering without
  /// retraining. Complex-question support (decomposition) still requires
  /// Train, which rebuilds the corpus pattern index.
  [[nodiscard]] Status LoadModel(const std::string& path);

  // ---- QaSystemInterface ----
  std::string name() const override { return "KBQA"; }
  /// Answers a binary factoid question (no decomposition).
  AnswerResult Answer(const std::string& question) const override;

  /// As Answer, with per-request controls — e.g. a deadline after which
  /// the pipeline degrades to a partial/empty answer carrying a
  /// kDeadlineExceeded status instead of stalling a serving thread.
  AnswerResult Answer(const std::string& question,
                      const AnswerOptions& answer_options) const;

  /// Batched throughput serving: answers every question over `num_threads`
  /// workers (see OnlineInference::AnswerAll). results[i] is identical to
  /// Answer(questions[i]) for any thread count.
  std::vector<AnswerResult> AnswerAll(const std::vector<std::string>& questions,
                                      int num_threads = 1) const;

  /// Full pipeline: decompose into a BFQ chain, answer sequentially,
  /// substituting each answer into the next question's $e slot (§5).
  ComplexAnswer AnswerComplex(const std::string& question) const;

  /// Wires a live-mutation serving engine (DESIGN.md §10) over `live`
  /// from this system's trained artifacts: the taxonomy, template store,
  /// path dictionary, alias predicates, and arbitrated online options the
  /// frozen engine uses. `live` is typically seeded with a copy of the
  /// training world's KB — rdf::RebuildKb keeps base ids stable across
  /// merges, so the learned distributions stay valid without retraining.
  /// Requires trained() (returns null otherwise); `live` and this system
  /// must outlive the returned engine.
  std::unique_ptr<LiveKbqaEngine> MakeLiveEngine(rdf::MutableKb* live) const;

  /// Extension (§1's "variants"): ranking / comparison / listing questions
  /// answered on top of the learned templates. Returns answered == false
  /// when the question matches no variant frame.
  AnswerResult AnswerVariant(const std::string& question) const;

  // ---- Introspection (benchmarks, tests, ablations) ----
  const TemplateStore& template_store() const { return store_; }
  const rdf::ExpandedKb& expanded_kb() const { return *ekb_; }
  /// The Train-built compressed substrate, or null (LoadModel path, or
  /// use_compressed_expansion off).
  const rdf::CompressedExpandedKb* compressed_expanded_kb() const {
    return cekb_.get();
  }
  const EmStats& em_stats() const { return em_stats_; }
  const nlp::GazetteerNer& ner() const { return *ner_; }
  const nlp::PatternIndex* pattern_index() const {
    return pattern_index_ ? &*pattern_index_ : nullptr;
  }
  const EvExtractor& ev_extractor() const { return *extractor_; }
  const OnlineInference& online() const { return *online_; }
  const KbqaOptions& options() const { return options_; }

  /// Entities seeding the predicate expansion (corpus-mentioned entities —
  /// the "reduction on s" of §6.2).
  const std::vector<rdf::TermId>& expansion_seeds() const { return seeds_; }

  /// Merged point-in-time view of the process-wide observability registry
  /// (stage latencies, cache hit rates, EM iteration stats, pool metrics).
  /// Static because the registry is process-wide: every system, pool, and
  /// engine in the process records into the same one.
  static obs::MetricsSnapshot MetricsSnapshot() {
    return obs::MetricsRegistry::Global().Snapshot();
  }

  /// Exports current per-component memory accounting as `mem.*.bytes`
  /// gauges (value cache, answer cache, decoded blocks, compressed
  /// payload), plus the arbitrated `mem.*.budget_bytes` when a process
  /// budget is set. Call at scrape time; cheap.
  void PublishMemoryGauges() const;

 private:
  /// options_.online with the process memory budget arbitrated in (no-op
  /// when process_memory_budget_bytes == 0).
  OnlineInference::Options EffectiveOnlineOptions() const;

  const corpus::World* world_;
  KbqaOptions options_;

  nlp::QuestionClassifier classifier_;
  std::unique_ptr<nlp::GazetteerNer> ner_;
  std::unique_ptr<rdf::ExpandedKb> ekb_;
  std::unique_ptr<rdf::CompressedExpandedKb> cekb_;
  std::unique_ptr<EvExtractor> extractor_;
  TemplateStore store_;
  EmStats em_stats_;
  std::unique_ptr<OnlineInference> online_;
  std::optional<nlp::PatternIndex> pattern_index_;
  std::unique_ptr<ComplexDecomposer> decomposer_;
  std::vector<rdf::TermId> seeds_;
  /// Path dictionary backing a model restored via LoadModel (templates
  /// trained in-process use the expansion's dictionary instead).
  std::unique_ptr<rdf::PathDictionary> loaded_paths_;
  std::unique_ptr<VariantSolver> variants_;
};

}  // namespace kbqa::core

#endif  // KBQA_CORE_KBQA_SYSTEM_H_
