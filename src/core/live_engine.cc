#include "core/live_engine.h"

#include <utility>

#include "obs/obs.h"

namespace kbqa::core {

LiveKbqaEngine::EngineState::EngineState(
    std::shared_ptr<const rdf::KbSnapshot> snapshot,
    const rdf::MutableKb* live, const taxonomy::Taxonomy* taxonomy,
    const TemplateStore* store, const rdf::PathDictionary* paths,
    const Options& options)
    : pinned(std::move(snapshot)),
      ner(*pinned->base, options.alias_predicates),
      online(pinned->base.get(), taxonomy, &ner, store, paths, options.online,
             /*cekb=*/nullptr, live) {}

LiveKbqaEngine::LiveKbqaEngine(rdf::MutableKb* live,
                               const taxonomy::Taxonomy* taxonomy,
                               const TemplateStore* store,
                               const rdf::PathDictionary* paths,
                               const Options& options)
    : live_(live),
      taxonomy_(taxonomy),
      store_(store),
      paths_(paths),
      options_(options) {
  {
    MutexLock lock(state_mu_);
    state_ = std::make_shared<const EngineState>(live_->Pin(), live_,
                                                 taxonomy_, store_, paths_,
                                                 options_);
  }
  // Epoch publishes rebuild the base-derived state on the merge thread;
  // readers swap over via one locked shared_ptr copy, in-flight answers
  // finish on the state they loaded.
  live_->SetPublishHook(
      [this](const std::shared_ptr<const rdf::KbSnapshot>& snapshot) {
        auto next = std::make_shared<const EngineState>(
            snapshot, live_, taxonomy_, store_, paths_, options_);
        {
          MutexLock lock(state_mu_);
          state_ = std::move(next);
        }
        KBQA_COUNTER_ADD("kb.live.engine_rebuilds", 1);
      });
}

LiveKbqaEngine::~LiveKbqaEngine() { live_->SetPublishHook(nullptr); }

AnswerResult LiveKbqaEngine::Answer(const std::string& question) const {
  return State()->online.Answer(question);
}

AnswerResult LiveKbqaEngine::Answer(
    const std::string& question, const AnswerOptions& answer_options) const {
  return State()->online.Answer(question, answer_options);
}

AnswerResult LiveKbqaEngine::AnswerCached(
    const std::string& question, const AnswerOptions& answer_options) const {
  return State()->online.AnswerCached(question, answer_options);
}

std::vector<AnswerResult> LiveKbqaEngine::AnswerAll(
    const std::vector<std::string>& questions, int num_threads) const {
  // One state for the whole batch: each question still pins its own
  // snapshot inside OnlineInference, so mutations landing mid-batch are
  // picked up per question, not per batch.
  return State()->online.AnswerAll(questions, num_threads);
}

}  // namespace kbqa::core
