#ifndef KBQA_CORE_LIVE_ENGINE_H_
#define KBQA_CORE_LIVE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/online.h"
#include "core/template_store.h"
#include "nlp/ner.h"
#include "rdf/expanded_predicate.h"
#include "rdf/mutable_kb.h"
#include "taxonomy/taxonomy.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace kbqa::core {

/// Serves questions over a live rdf::MutableKb (DESIGN.md §10).
///
/// Per-epoch state: the NER gazetteer is a base-derived index (entity
/// names do not consult the overlay on the hot path), so on every merge
/// publish the engine rebuilds {pinned snapshot, gazetteer, OnlineInference}
/// on the merge thread and swaps it in RCU-style; in-flight answers keep
/// the old state alive through their shared_ptr. Within an epoch, every
/// Answer pins the newest snapshot, so overlay mutations on already-known
/// entities (value adds/deletes, renames) are visible immediately —
/// only *linkability of new entity names* waits for the next merge.
///
/// Freshness contract: an answer computed after Apply(B) returns reflects
/// B (the engine's caches are version-tagged, so no pre-B entry can be
/// served). Answers already in flight may still reflect the pre-B world —
/// they pinned their snapshot at start.
///
/// Training artifacts (template store, path dictionary, taxonomy) are
/// shared across epochs unchanged: rdf::RebuildKb keeps every base
/// TermId/PredId stable, so learned distributions remain valid without
/// retraining.
class LiveKbqaEngine {
 public:
  struct Options {
    /// Alias predicates handed to each epoch's gazetteer rebuild (same
    /// list KbqaSystem used for the trained NER).
    std::vector<rdf::PredId> alias_predicates;
    OnlineInference::Options online;
  };

  /// All pointees must outlive the engine. Installs itself as `live`'s
  /// publish hook (replacing any previous hook) and removes the hook on
  /// destruction — one engine per MutableKb.
  LiveKbqaEngine(rdf::MutableKb* live, const taxonomy::Taxonomy* taxonomy,
                 const TemplateStore* store, const rdf::PathDictionary* paths,
                 const Options& options);
  ~LiveKbqaEngine();

  LiveKbqaEngine(const LiveKbqaEngine&) = delete;
  LiveKbqaEngine& operator=(const LiveKbqaEngine&) = delete;

  AnswerResult Answer(const std::string& question) const;
  AnswerResult Answer(const std::string& question,
                      const AnswerOptions& answer_options) const;
  AnswerResult AnswerCached(const std::string& question,
                            const AnswerOptions& answer_options) const;
  std::vector<AnswerResult> AnswerAll(const std::vector<std::string>& questions,
                                      int num_threads) const;

  uint64_t epoch() const { return live_->epoch(); }
  const rdf::MutableKb& kb() const { return *live_; }

 private:
  /// One epoch's answering machinery. Heap-allocated and immutable after
  /// construction; the OnlineInference points at the sibling gazetteer, so
  /// the struct must never move.
  struct EngineState {
    EngineState(std::shared_ptr<const rdf::KbSnapshot> snapshot,
                const rdf::MutableKb* live, const taxonomy::Taxonomy* taxonomy,
                const TemplateStore* store, const rdf::PathDictionary* paths,
                const Options& options);

    /// Pins this epoch's publish snapshot, keeping its base alive for the
    /// gazetteer and for ids minted against it.
    std::shared_ptr<const rdf::KbSnapshot> pinned;
    nlp::GazetteerNer ner;
    OnlineInference online;
  };

  std::shared_ptr<const EngineState> State() const {
    MutexLock lock(state_mu_);
    return state_;
  }

  rdf::MutableKb* live_;
  const taxonomy::Taxonomy* taxonomy_;
  const TemplateStore* store_;
  const rdf::PathDictionary* paths_;
  Options options_;

  /// RCU swap point for the per-epoch state — a leaf lock held only for
  /// the shared_ptr copy (same rationale as MutableKb::snapshot_mu_:
  /// libstdc++'s atomic<shared_ptr> internals are opaque to TSan).
  mutable Mutex state_mu_;
  std::shared_ptr<const EngineState> state_ GUARDED_BY(state_mu_);
};

}  // namespace kbqa::core

#endif  // KBQA_CORE_LIVE_ENGINE_H_
