#include "core/model_io.h"

#include <cmath>
#include <cstdio>
#include <vector>

namespace kbqa::core {

namespace {

constexpr uint64_t kModelMagic = 0x4b42514d4f44454cULL;  // "KBQMODEL"

bool WriteU64(std::FILE* f, uint64_t v) {
  return std::fwrite(&v, sizeof(v), 1, f) == 1;
}
bool WriteF64(std::FILE* f, double v) {
  return std::fwrite(&v, sizeof(v), 1, f) == 1;
}
bool WriteString(std::FILE* f, const std::string& s) {
  return WriteU64(f, s.size()) &&
         (s.empty() || std::fwrite(s.data(), 1, s.size(), f) == s.size());
}
bool ReadU64(std::FILE* f, uint64_t* v) {
  return std::fread(v, sizeof(*v), 1, f) == 1;
}
bool ReadF64(std::FILE* f, double* v) {
  return std::fread(v, sizeof(*v), 1, f) == 1;
}
bool ReadString(std::FILE* f, std::string* s) {
  uint64_t n = 0;
  if (!ReadU64(f, &n) || n > (1ULL << 30)) return false;
  if (n > 0) {
    // Size the buffer only after confirming the file actually holds n more
    // bytes: a corrupt length header must fail as Corruption, not allocate
    // up to 1 GiB first.
    const long pos = std::ftell(f);
    if (pos < 0 || std::fseek(f, 0, SEEK_END) != 0) return false;
    const long end = std::ftell(f);
    if (end < 0 || std::fseek(f, pos, SEEK_SET) != 0) return false;
    if (n > static_cast<uint64_t>(end - pos)) return false;
  }
  s->resize(n);
  return n == 0 || std::fread(s->data(), 1, n, f) == n;
}

}  // namespace

Status SaveModel(const TemplateStore& store, const rdf::PathDictionary& paths,
                 const rdf::KnowledgeBase& kb, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open for write: " + path);
  bool ok = WriteU64(f, kModelMagic) && WriteU64(f, store.num_templates());
  for (TemplateId t = 0; ok && t < store.num_templates(); ++t) {
    ok = WriteString(f, store.TemplateText(t)) &&
         WriteU64(f, store.Frequency(t));
    auto dist = store.Distribution(t);
    ok = ok && WriteU64(f, dist.size());
    for (const PredicateProb& entry : dist) {
      if (!ok) break;
      const rdf::PredPath& pred_path = paths.GetPath(entry.path);
      ok = WriteU64(f, pred_path.size());
      for (rdf::PredId p : pred_path) {
        ok = ok && WriteString(f, kb.PredicateString(p));
      }
      ok = ok && WriteF64(f, entry.probability);
    }
  }
  if (std::fclose(f) != 0) ok = false;
  return ok ? Status::Ok() : Status::IoError("short write: " + path);
}

Result<LoadedModel> LoadModel(const rdf::KnowledgeBase& kb,
                              const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open for read: " + path);
  LoadedModel model;
  uint64_t magic = 0, num_templates = 0;
  bool ok = ReadU64(f, &magic) && magic == kModelMagic &&
            ReadU64(f, &num_templates);
  for (uint64_t t = 0; ok && t < num_templates; ++t) {
    std::string text;
    uint64_t frequency = 0, dist_size = 0;
    ok = ReadString(f, &text) && ReadU64(f, &frequency) &&
         ReadU64(f, &dist_size);
    if (!ok) break;
    TemplateId id = model.store.Intern(text);
    model.store.AddFrequency(id, frequency);
    std::vector<PredicateProb> dist;
    double dropped_mass = 0;
    for (uint64_t d = 0; ok && d < dist_size; ++d) {
      uint64_t path_len = 0;
      ok = ReadU64(f, &path_len) && path_len >= 1 && path_len <= 16;
      rdf::PredPath pred_path;
      bool resolvable = true;
      for (uint64_t i = 0; ok && i < path_len; ++i) {
        std::string pred_name;
        ok = ReadString(f, &pred_name);
        if (!ok) break;
        auto pred = kb.LookupPredicate(pred_name);
        if (pred) {
          pred_path.push_back(*pred);
        } else {
          resolvable = false;  // predicate no longer in the KB
        }
      }
      double probability = 0;
      ok = ok && ReadF64(f, &probability);
      // NaN would break SetDistribution's sort (strict weak ordering);
      // infinities and negatives are equally meaningless as probabilities.
      ok = ok && std::isfinite(probability) && probability >= 0;
      if (!ok) break;
      if (resolvable) {
        dist.push_back(
            PredicateProb{model.paths.Intern(pred_path), probability});
      } else {
        dropped_mass += probability;
      }
    }
    if (!ok) break;
    if (!dist.empty() && dropped_mass > 0) {
      const double keep = 1.0 - dropped_mass;
      if (keep > 0) {
        for (PredicateProb& entry : dist) entry.probability /= keep;
      }
    }
    model.store.SetDistribution(id, std::move(dist));
  }
  std::fclose(f);
  if (!ok) return Status::Corruption("malformed model file: " + path);
  return model;
}

}  // namespace kbqa::core
