#ifndef KBQA_CORE_MODEL_IO_H_
#define KBQA_CORE_MODEL_IO_H_

#include <string>

#include "core/template_store.h"
#include "rdf/expanded_predicate.h"
#include "rdf/knowledge_base.h"
#include "util/status.h"

namespace kbqa::core {

/// A deserialized offline artifact: the template store plus the path
/// dictionary its PathIds refer to.
struct LoadedModel {
  TemplateStore store;
  rdf::PathDictionary paths;
};

/// Persists the learned model (templates, frequencies, P(p|t)) to a binary
/// file. Predicate paths are stored by *predicate name*, not by id, so a
/// model can be loaded against any knowledge base that defines the same
/// predicates — the offline procedure runs once (§7.4) and its artifact is
/// reusable across processes.
[[nodiscard]] Status SaveModel(const TemplateStore& store, const rdf::PathDictionary& paths,
                 const rdf::KnowledgeBase& kb, const std::string& path);

/// Loads a model written by SaveModel. Distribution entries whose predicate
/// names are absent from `kb` are dropped (and the distribution
/// renormalized) rather than failing — the usual KB-evolution semantics.
[[nodiscard]] Result<LoadedModel> LoadModel(const rdf::KnowledgeBase& kb,
                              const std::string& path);

}  // namespace kbqa::core

#endif  // KBQA_CORE_MODEL_IO_H_
