#include "core/online.h"

#include <algorithm>
#include <unordered_map>

#include "core/em_learner.h"
#include "nlp/tokenizer.h"
#include "rdf/query.h"

namespace kbqa::core {

OnlineInference::OnlineInference(const rdf::KnowledgeBase* kb,
                                 const taxonomy::Taxonomy* taxonomy,
                                 const nlp::GazetteerNer* ner,
                                 const TemplateStore* store,
                                 const rdf::PathDictionary* paths,
                                 const Options& options)
    : kb_(kb),
      taxonomy_(taxonomy),
      ner_(ner),
      store_(store),
      paths_(paths),
      options_(options) {}

AnswerResult OnlineInference::Answer(const std::string& question) const {
  return AnswerTokens(nlp::TokenizeQuestion(question));
}

AnswerResult OnlineInference::AnswerTokens(
    const std::vector<std::string>& tokens) const {
  AnswerResult result;
  std::vector<nlp::Mention> mentions = ner_->FindMentions(tokens);
  if (mentions.empty()) return result;

  size_t total_entities = 0;
  for (const nlp::Mention& m : mentions) total_entities += m.entities.size();
  if (total_entities == 0) return result;
  result.num_entities = total_entities;
  const double p_e = 1.0 / static_cast<double>(total_entities);

  struct ValueSupport {
    double score = 0;
    double best_term = 0;  // strongest single (e,t,p) contribution
    TemplateId best_template = kInvalidTemplate;
    rdf::PathId best_path = rdf::kInvalidPath;
  };
  std::unordered_map<rdf::TermId, ValueSupport> posterior;

  for (const nlp::Mention& mention : mentions) {
    std::vector<std::string> context;
    context.reserve(tokens.size());
    for (size_t i = 0; i < tokens.size(); ++i) {
      if (i < mention.begin || i >= mention.end) context.push_back(tokens[i]);
    }
    for (rdf::TermId entity : mention.entities) {
      std::vector<taxonomy::ScoredCategory> categories =
          taxonomy_->Conceptualize(entity, context);
      if (categories.size() > options_.max_categories_per_entity) {
        categories.resize(options_.max_categories_per_entity);
      }
      double cat_mass = 0;
      for (const auto& sc : categories) {
        if (sc.probability >= options_.min_category_prob) {
          cat_mass += sc.probability;
        }
      }
      if (cat_mass <= 0) continue;

      for (const auto& sc : categories) {
        if (sc.probability < options_.min_category_prob) continue;
        auto t = store_->Lookup(
            MakeTemplateText(tokens, mention.begin, mention.end,
                             taxonomy_->CategoryName(sc.category)));
        if (!t) continue;
        ++result.num_templates;
        const double p_t = sc.probability / cat_mass;

        for (const PredicateProb& pp : store_->Distribution(*t)) {
          if (pp.probability < options_.min_predicate_prob) continue;
          ++result.num_predicates;
          std::vector<rdf::TermId> values =
              rdf::ObjectsViaPath(*kb_, entity, paths_->GetPath(pp.path));
          if (values.empty()) continue;
          const double p_v = 1.0 / static_cast<double>(values.size());
          ++result.num_grounded_predicates;
          result.num_values += values.size();
          const double term = p_e * p_t * pp.probability * p_v;
          for (rdf::TermId v : values) {
            ValueSupport& support = posterior[v];
            support.score += term;
            if (term > support.best_term) {
              support.best_term = term;
              support.best_template = *t;
              support.best_path = pp.path;
            }
          }
        }
      }
    }
  }

  if (posterior.empty()) return result;

  result.ranked.reserve(posterior.size());
  for (const auto& [v, support] : posterior) {
    result.ranked.push_back(
        AnswerCandidate{v, support.score, support.best_template,
                        support.best_path});
  }
  std::sort(result.ranked.begin(), result.ranked.end(),
            [](const AnswerCandidate& a, const AnswerCandidate& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.value < b.value;  // Deterministic tie-break.
            });

  const AnswerCandidate& best = result.ranked.front();
  if (best.score < options_.min_answer_score) return result;
  result.answered = true;
  result.score = best.score;
  result.value = kb_->IsLiteral(best.value) ? kb_->NodeString(best.value)
                                            : kb_->EntityName(best.value);
  result.predicate = paths_->ToString(best.best_path, *kb_);
  // Emit the equivalent structured query. The winning entity is recovered
  // from the strongest supporting mention (the value's best (e,t,p) term
  // tracked it implicitly via best_path; re-derive by checking which
  // candidate entity reaches the value through the path).
  for (const nlp::Mention& mention : mentions) {
    for (rdf::TermId entity : mention.entities) {
      std::vector<rdf::TermId> check =
          rdf::ObjectsViaPath(*kb_, entity, paths_->GetPath(best.best_path));
      if (std::find(check.begin(), check.end(), best.value) != check.end()) {
        result.sparql = rdf::QueryToString(rdf::BuildPathQuery(
            *kb_, entity, paths_->GetPath(best.best_path)));
        for (rdf::TermId v : check) {
          result.values.push_back(kb_->IsLiteral(v) ? kb_->NodeString(v)
                                                    : kb_->EntityName(v));
        }
        return result;
      }
    }
  }
  return result;
}

bool OnlineInference::IsPrimitiveBfq(
    const std::vector<std::string>& tokens) const {
  std::vector<nlp::Mention> mentions = ner_->FindMentions(tokens);
  for (const nlp::Mention& mention : mentions) {
    std::vector<std::string> context;
    for (size_t i = 0; i < tokens.size(); ++i) {
      if (i < mention.begin || i >= mention.end) context.push_back(tokens[i]);
    }
    for (rdf::TermId entity : mention.entities) {
      std::vector<taxonomy::ScoredCategory> categories =
          taxonomy_->Conceptualize(entity, context);
      if (categories.size() > options_.max_categories_per_entity) {
        categories.resize(options_.max_categories_per_entity);
      }
      for (const auto& sc : categories) {
        if (sc.probability < options_.min_category_prob) continue;
        auto t = store_->Lookup(
            MakeTemplateText(tokens, mention.begin, mention.end,
                             taxonomy_->CategoryName(sc.category)));
        if (!t) continue;
        for (const PredicateProb& pp : store_->Distribution(*t)) {
          if (pp.probability < options_.min_predicate_prob) continue;
          if (!rdf::ObjectsViaPath(*kb_, entity, paths_->GetPath(pp.path))
                   .empty()) {
            return true;
          }
        }
      }
    }
  }
  return false;
}

}  // namespace kbqa::core
