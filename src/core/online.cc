#include "core/online.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>

#include "core/em_learner.h"
#include "nlp/tokenizer.h"
#include "obs/obs.h"
#include "rdf/query.h"
#include "util/thread_pool.h"

namespace kbqa::core {

namespace {

uint64_t EntityPathKey(rdf::TermId entity, rdf::PathId path) {
  return (static_cast<uint64_t>(entity) << 32) | path;
}

/// Stateful deadline check for one answer: at most one clock read per
/// probe, none at all when no deadline was requested, and sticky once
/// exceeded (the pipeline never un-exceeds mid-request).
struct DeadlineGate {
  const std::optional<std::chrono::steady_clock::time_point>& deadline;
  bool exceeded = false;

  bool Hit() {
    if (exceeded) return true;
    if (!deadline) return false;
    if (std::chrono::steady_clock::now() >= *deadline) exceeded = true;
    return exceeded;
  }
};

/// Stamps a deadline overrun on the result (idempotent) and drops a
/// zero-length sampled span so collected traces show exactly where the
/// request gave up.
void MarkDeadlineExceeded(AnswerResult* result) {
  if (!result->status.ok()) return;
  KBQA_TRACE_SPAN_SAMPLED("answer.deadline_exceeded");
  result->status = Status::DeadlineExceeded("answer deadline exceeded");
}

/// The shared mention → entity → category → template walk of §3.3's
/// candidate enumeration. AnswerTokens and IsPrimitiveBfq both iterate
/// through here so the two cannot drift. `visit(mention, entity, p_t,
/// template_id)` returns false to stop the walk early. `ctx` (nullable)
/// receives the conceptualize/template_match stage attribution.
template <typename Visitor>
void VisitTemplateCandidates(const taxonomy::Taxonomy& taxonomy,
                             const TemplateStore& store,
                             const OnlineInference::Options& options,
                             const std::vector<std::string>& tokens,
                             const std::vector<nlp::Mention>& mentions,
                             obs::RequestContext* ctx, Visitor&& visit) {
  for (const nlp::Mention& mention : mentions) {
    std::vector<std::string> context;
    context.reserve(tokens.size());
    for (size_t i = 0; i < tokens.size(); ++i) {
      if (i < mention.begin || i >= mention.end) context.push_back(tokens[i]);
    }
    for (rdf::TermId entity : mention.entities) {
      std::vector<taxonomy::ScoredCategory> categories;
      {
        KBQA_TRACE_SPAN_SAMPLED("answer.conceptualize");
        // Chained marks: the walk fragment since the previous mark goes
        // to template_match, the Conceptualize call itself to its own
        // stage.
        if (ctx != nullptr) ctx->Mark(obs::WideStage::kTemplateMatch);
        categories = taxonomy.Conceptualize(entity, context);
        if (ctx != nullptr) ctx->Mark(obs::WideStage::kConceptualize);
      }
      if (categories.size() > options.max_categories_per_entity) {
        categories.resize(options.max_categories_per_entity);
      }
      double cat_mass = 0;
      for (const auto& sc : categories) {
        if (sc.probability >= options.min_category_prob) {
          cat_mass += sc.probability;
        }
      }
      if (cat_mass <= 0) continue;

      for (const auto& sc : categories) {
        if (sc.probability < options.min_category_prob) continue;
        auto t = store.Lookup(
            MakeTemplateText(tokens, mention.begin, mention.end,
                             taxonomy.CategoryName(sc.category)));
        if (!t) continue;
        const double p_t = sc.probability / cat_mass;
        if (!visit(mention, entity, p_t, *t)) return;
      }
    }
  }
}

/// All per-answer registry counters behind one cached lookup: a single
/// init-guard check on the answer epilogue instead of one per macro site.
struct OnlineCounters {
  obs::Counter* answers;
  obs::Counter* answered;
  obs::Counter* cache_hits;
  obs::Counter* cache_misses;
  obs::Counter* cache_evictions;
  obs::Counter* deadline_exceeded;

  static const OnlineCounters& Get() {
    static const OnlineCounters counters = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
      return OnlineCounters{r.GetCounter("online.answers"),
                            r.GetCounter("online.answered"),
                            r.GetCounter("online.value_cache.hits"),
                            r.GetCounter("online.value_cache.misses"),
                            r.GetCounter("online.value_cache.evictions"),
                            r.GetCounter("online.deadline_exceeded")};
    }();
    return counters;
  }
};

/// Byte charge of one answer-cache entry beyond the key struct itself:
/// the question text plus every heap block the memoized AnswerResult owns.
/// An estimate (allocator slack and map overhead aren't modeled), but a
/// faithful enough one for LRU budget accounting — the same contract as
/// the value cache's `values.size() * sizeof(TermId)` charge.
uint64_t AnswerResultPayloadBytes(const std::string& question,
                                  const AnswerResult& result) {
  uint64_t bytes = question.size() + sizeof(AnswerResult);
  bytes += result.status.message().size();
  bytes += result.value.size() + result.predicate.size() +
           result.sparql.size();
  bytes += result.ranked.size() * sizeof(AnswerCandidate);
  for (const std::string& v : result.values) bytes += v.size();
  return bytes;
}

}  // namespace

OnlineInference::OnlineInference(const rdf::KnowledgeBase* kb,
                                 const taxonomy::Taxonomy* taxonomy,
                                 const nlp::GazetteerNer* ner,
                                 const TemplateStore* store,
                                 const rdf::PathDictionary* paths,
                                 const Options& options,
                                 const rdf::CompressedExpandedKb* cekb,
                                 const rdf::MutableKb* live)
    : kb_(kb),
      taxonomy_(taxonomy),
      ner_(ner),
      store_(store),
      paths_(paths),
      cekb_(cekb),
      live_(live),
      options_(options),
      value_cache_(options.value_cache_budget_bytes),
      answer_cache_(options.answer_cache_budget_bytes) {}

OnlineInference::PinnedKb OnlineInference::PinKb() const {
  if (live_ == nullptr) return PinnedKb{kb_, nullptr};
  PinnedKb view;
  view.snap = live_->Pin();
  view.kb = view.snap->base.get();
  return view;
}

void OnlineInference::LookupValues(const PinnedKb& view, rdf::TermId entity,
                                   rdf::PathId path,
                                   std::vector<rdf::TermId>* scratch) const {
  // Live mode reads the pinned merged view (base minus tombstones plus
  // overlay adds, identical ordering to a frozen walk — an empty overlay
  // degenerates to the plain base walk bit-for-bit).
  if (view.snap != nullptr) {
    *scratch = view.snap->ObjectsViaPath(entity, paths_->GetPath(path));
    return;
  }
  // Both frozen sources produce the same sorted-unique value set: the
  // substrate materializes exactly the BFS closure ObjectsViaPath walks,
  // so the only difference is decode-a-block vs re-walk-the-KB.
  // TryObjects returns false (entity outside the materialized seed set,
  // or a paged block that went bad underneath us) -> online walk.
  if (cekb_ != nullptr && cekb_->TryObjects(entity, path, scratch)) return;
  *scratch = rdf::ObjectsViaPath(*view.kb, entity, paths_->GetPath(path));
}

const std::vector<rdf::TermId>& OnlineInference::CachedObjects(
    const PinnedKb& view, rdf::TermId entity, rdf::PathId path,
    std::vector<rdf::TermId>* scratch, CacheTally* tally) const {
  KBQA_TRACE_SPAN_SAMPLED("answer.value_lookup");
  if (!options_.enable_value_cache) {
    LookupValues(view, entity, path, scratch);
    return *scratch;
  }
  const ValueCacheKey key{view.version(), EntityPathKey(entity, path)};
  if (value_cache_.Get(key, scratch)) {
    ++tally->hits;
    return *scratch;
  }
  ++tally->misses;
  // Misses are the slow path (block decode or KB re-walk), so per-request
  // attribution times them individually; hits are counted but not timed —
  // their cost stays inside the surrounding stage. The TLS binding is how
  // the request context reaches this depth (see ScopedRequestContext).
  obs::RequestContext* const ctx = obs::CurrentRequestContext();
  const uint64_t miss_begin = ctx != nullptr ? obs::NowSteadyNs() : 0;
  LookupValues(view, entity, path, scratch);
  // Insert copies the value set; concurrent misses on the same key both
  // computed identical vectors from the immutable KB, and the cache keeps
  // whichever landed first.
  tally->evictions += value_cache_.Insert(
      key, *scratch, scratch->size() * sizeof(rdf::TermId));
  if (ctx != nullptr) {
    ctx->AddTimedSince(obs::WideStage::kValueLookup, miss_begin);
  }
  return *scratch;
}

void OnlineInference::FlushAnswerStats(const AnswerResult* result,
                                       const CacheTally& tally) const {
  // Per-instance cache stats are unconditional: value_cache_stats() is
  // part of the API contract, not observability.
  if (tally.hits != 0) cache_hits_.Add(tally.hits);
  if (tally.misses != 0) cache_misses_.Add(tally.misses);
  if (!obs::Enabled()) return;
  const OnlineCounters& c = OnlineCounters::Get();
  if (tally.hits != 0) c.cache_hits->Add(tally.hits);
  if (tally.misses != 0) c.cache_misses->Add(tally.misses);
  if (tally.evictions != 0) c.cache_evictions->Add(tally.evictions);
  if (result == nullptr) return;  // IsPrimitiveBfq probe
  c.answers->Add(1);
  if (result->answered) c.answered->Add(1);
  if (result->status.code() == StatusCode::kDeadlineExceeded) {
    c.deadline_exceeded->Add(1);
  }
}

ValueCacheStats OnlineInference::value_cache_stats() const {
  ValueCacheStats stats;
  if (!options_.enable_value_cache) return stats;
  stats.hits = cache_hits_.Value();
  stats.misses = cache_misses_.Value();
  const auto cache = value_cache_.GetStats();
  stats.entries = cache.entries;
  stats.bytes = cache.bytes;
  stats.evictions = cache.evictions;
  stats.budget_bytes = value_cache_.budget_bytes();
  return stats;
}

ValueCacheStats OnlineInference::answer_cache_stats() const {
  ValueCacheStats stats;
  if (!options_.enable_answer_cache) return stats;
  stats.hits = answer_cache_hits_.Value();
  stats.misses = answer_cache_misses_.Value();
  const auto cache = answer_cache_.GetStats();
  stats.entries = cache.entries;
  stats.bytes = cache.bytes;
  stats.evictions = cache.evictions;
  stats.budget_bytes = answer_cache_.budget_bytes();
  return stats;
}

AnswerResult OnlineInference::Answer(const std::string& question) const {
  return AnswerTokens(nlp::TokenizeQuestion(question));
}

AnswerResult OnlineInference::Answer(
    const std::string& question, const AnswerOptions& answer_options) const {
  return AnswerTokens(nlp::TokenizeQuestion(question), answer_options);
}

std::vector<AnswerResult> OnlineInference::AnswerAll(
    const std::vector<std::string>& questions, int num_threads) const {
  std::vector<AnswerResult> results(questions.size());
  ThreadPool pool(num_threads);
  // Over-shard relative to the pool for load balancing; each question is
  // answered independently into its own slot, so the sharding is
  // unobservable in the output.
  const size_t num_shards =
      std::max<size_t>(1, static_cast<size_t>(pool.num_threads()) * 4);
  ParallelFor(pool, questions.size(), num_shards,
              [&](size_t shard, size_t begin, size_t end) {
                (void)shard;
                for (size_t i = begin; i < end; ++i) {
                  results[i] = AnswerCached(questions[i], AnswerOptions{});
                }
              });
  return results;
}

AnswerResult OnlineInference::AnswerCached(
    const std::string& question, const AnswerOptions& answer_options) const {
  // One pin for key and computation: the memoized entry's version tag can
  // never disagree with the world that computed it, even if an Apply or a
  // merge lands between the two.
  const PinnedKb view = PinKb();
  if (!options_.enable_answer_cache) {
    return AnswerTokensPinned(nlp::TokenizeQuestion(question), answer_options,
                              view);
  }
  // Normalized key: whitespace/case/punctuation paraphrases tokenize to
  // the same sequence, so they are the same question to the pipeline and
  // must be the same entry to the memo. Live mode prefixes the pinned
  // version ("v<version>\n" cannot collide with normalized text, which
  // never contains a newline) so mutations invalidate by key.
  std::string key = nlp::NormalizeText(question);
  if (view.snap != nullptr) {
    key = "v" + std::to_string(view.snap->version) + "\n" + key;
  }
  AnswerResult result;
  if (answer_cache_.Get(key, &result)) {
    answer_cache_hits_.Add(1);
    KBQA_COUNTER_ADD("online.answer_cache.hits", 1);
    if (answer_options.request_context != nullptr) {
      ++answer_options.request_context->answer_cache_hits;
    }
    return result;
  }
  result = AnswerTokensPinned(nlp::TokenizeQuestion(question),
                              answer_options, view);
  answer_cache_misses_.Add(1);
  KBQA_COUNTER_ADD("online.answer_cache.misses", 1);
  if (answer_options.request_context != nullptr) {
    ++answer_options.request_context->answer_cache_misses;
  }
  // Only complete answers are memoized: a deadline-clipped partial
  // (kDeadlineExceeded) would otherwise serve its truncation to every
  // later request that has budget to compute the real thing.
  if (result.status.ok()) {
    const uint64_t evictions = answer_cache_.Insert(
        key, result, AnswerResultPayloadBytes(key, result));
    if (evictions != 0) {
      KBQA_COUNTER_ADD("online.answer_cache.evictions", evictions);
    }
  }
  return result;
}

AnswerResult OnlineInference::AnswerTokens(
    const std::vector<std::string>& tokens) const {
  return AnswerTokens(tokens, AnswerOptions{});
}

AnswerResult OnlineInference::AnswerTokens(
    const std::vector<std::string>& tokens,
    const AnswerOptions& answer_options) const {
  return AnswerTokensPinned(tokens, answer_options, PinKb());
}

AnswerResult OnlineInference::AnswerTokensPinned(
    const std::vector<std::string>& tokens,
    const AnswerOptions& answer_options, const PinnedKb& view) const {
  // All answer spans — including the whole-answer one — record only inside
  // the 1-in-2^k detail windows opened here, keeping the steady-state cost
  // to a few thread-local reads per question. The latency histograms are
  // uniform samples; the counters flushed below stay exact.
  KBQA_TRACE_DETAIL_WINDOW();
  KBQA_TRACE_SPAN_SAMPLED("answer");
  obs::RequestContext* const ctx = answer_options.request_context;
  // Bind the request context for layers reached without an options plumb
  // (the compressed-KB pager stamps block traffic through the TLS). No-op
  // when ctx is null.
  obs::ScopedRequestContext request_scope(ctx);
  if (ctx != nullptr && view.snap != nullptr) {
    ctx->kb_epoch = view.snap->epoch;
  }
  CacheTally tally;
  AnswerResult result = AnswerTokensImpl(tokens, answer_options, &tally, view);
  FlushAnswerStats(&result, tally);
  if (ctx != nullptr) {
    ctx->value_cache_hits += static_cast<uint32_t>(tally.hits);
    ctx->value_cache_misses += static_cast<uint32_t>(tally.misses);
  }
  return result;
}

AnswerResult OnlineInference::AnswerTokensImpl(
    const std::vector<std::string>& tokens,
    const AnswerOptions& answer_options, CacheTally* tally,
    const PinnedKb& view) const {
  AnswerResult result;
  obs::RequestContext* const ctx = answer_options.request_context;
  if (ctx != nullptr && ctx->last_mark_ns == 0) {
    // Bare-engine callers (benches, tests) never anchored the stage
    // clock; the serving layer anchors at handler start for free.
    ctx->StartClockAt(obs::NowSteadyNs());
  }
  DeadlineGate gate{answer_options.deadline};
  if (gate.Hit()) {  // Already past due on entry: answer nothing.
    MarkDeadlineExceeded(&result);
    return result;
  }
  std::vector<nlp::Mention> mentions;
  {
    KBQA_TRACE_SPAN_SAMPLED("answer.ner");
    mentions = ner_->FindMentions(tokens);
  }
  // Everything from the anchor through mention lookup — tokenization
  // happened upstream of AnswerTokens but after the anchor — is the NER
  // stage.
  if (ctx != nullptr) ctx->Mark(obs::WideStage::kNer);
  if (mentions.empty()) return result;

  size_t total_entities = 0;
  for (const nlp::Mention& m : mentions) total_entities += m.entities.size();
  if (total_entities == 0) return result;
  result.num_entities = total_entities;
  const double p_e = 1.0 / static_cast<double>(total_entities);

  struct ValueSupport {
    double score = 0;
    double best_term = 0;  // strongest single (e,t,p) contribution
    TemplateId best_template = kInvalidTemplate;
    rdf::PathId best_path = rdf::kInvalidPath;
    rdf::TermId best_entity = rdf::kInvalidTerm;
  };
  std::unordered_map<rdf::TermId, ValueSupport> posterior;
  std::vector<rdf::TermId> scratch;

  {
    KBQA_TRACE_SPAN_SAMPLED("answer.template_match");
    VisitTemplateCandidates(
        *taxonomy_, *store_, options_, tokens, mentions, ctx,
        [&](const nlp::Mention&, rdf::TermId entity, double p_t,
            TemplateId t) {
          if (gate.Hit()) return false;
          ++result.num_templates;
          KBQA_TRACE_SPAN_SAMPLED("answer.score");
          // Walk fragment since the last mark (store lookup, category
          // iteration) belongs to template_match; the predicate loop
          // below closes as the score stage.
          if (ctx != nullptr) ctx->Mark(obs::WideStage::kTemplateMatch);
          for (const PredicateProb& pp : store_->Distribution(t)) {
            if (pp.probability < options_.min_predicate_prob) continue;
            if (gate.Hit()) return false;
            ++result.num_predicates;
            const std::vector<rdf::TermId>& values =
                CachedObjects(view, entity, pp.path, &scratch, tally);
            if (values.empty()) continue;
            const double p_v = 1.0 / static_cast<double>(values.size());
            ++result.num_grounded_predicates;
            result.num_values += values.size();
            const double term = p_e * p_t * pp.probability * p_v;
            for (rdf::TermId v : values) {
              ValueSupport& support = posterior[v];
              support.score += term;
              if (term > support.best_term) {
                support.best_term = term;
                support.best_template = t;
                support.best_path = pp.path;
                support.best_entity = entity;
              }
            }
          }
          if (ctx != nullptr) ctx->Mark(obs::WideStage::kScore);
          return true;
        });
    // Close the candidate walk: whatever ran since the last inner mark
    // (or a deadline-aborted score fragment) is template_match time.
    if (ctx != nullptr) ctx->Mark(obs::WideStage::kTemplateMatch);
  }
  // A deadline hit stops candidate enumeration but still ranks whatever
  // the posterior accumulated: the caller gets the best partial answer
  // (or an empty one), flagged by `status`, instead of a stalled thread.
  if (gate.exceeded) MarkDeadlineExceeded(&result);

  if (posterior.empty()) return result;

  KBQA_TRACE_SPAN_SAMPLED("answer.rank");
  result.ranked.reserve(posterior.size());
  for (const auto& [v, support] : posterior) {
    result.ranked.push_back(AnswerCandidate{v, support.score,
                                            support.best_template,
                                            support.best_path,
                                            support.best_entity});
  }
  std::sort(result.ranked.begin(), result.ranked.end(),
            [](const AnswerCandidate& a, const AnswerCandidate& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.value < b.value;  // Deterministic tie-break.
            });

  const AnswerCandidate& best = result.ranked.front();
  if (best.score < options_.min_answer_score) {
    if (ctx != nullptr) ctx->Mark(obs::WideStage::kRank);
    return result;
  }
  result.answered = true;
  result.score = best.score;
  // Materialization routes through the pinned view in live mode: values
  // may be overlay nodes the base has never interned, and an entity's
  // display name may have mutated.
  const auto materialize = [&](rdf::TermId v) -> std::string {
    if (view.snap != nullptr) {
      return view.snap->IsLiteral(v) ? view.snap->NodeString(v)
                                     : view.snap->EntityName(v);
    }
    return view.kb->IsLiteral(v) ? view.kb->NodeString(v)
                                 : view.kb->EntityName(v);
  };
  result.value = materialize(best.value);
  result.predicate = paths_->ToString(best.best_path, *view.kb);
  // Emit the equivalent structured query. The winning entity was tracked
  // with best_term during scoring, so no re-query over the candidate
  // entities is needed; its value set comes straight from the cache.
  result.sparql = rdf::QueryToString(rdf::BuildPathQuery(
      *view.kb, best.best_entity, paths_->GetPath(best.best_path)));
  for (rdf::TermId v : CachedObjects(view, best.best_entity, best.best_path,
                                     &scratch, tally)) {
    result.values.push_back(materialize(v));
  }
  // Rank covers sort + winner materialization (minus any timed value
  // lookups the materialization hit, which went to value_lookup above).
  if (ctx != nullptr) ctx->Mark(obs::WideStage::kRank);
  return result;
}

bool OnlineInference::IsPrimitiveBfq(
    const std::vector<std::string>& tokens) const {
  KBQA_COUNTER_ADD("online.bfq_probes", 1);
  const PinnedKb view = PinKb();
  std::vector<nlp::Mention> mentions = ner_->FindMentions(tokens);
  bool found = false;
  std::vector<rdf::TermId> scratch;
  CacheTally tally;
  VisitTemplateCandidates(
      *taxonomy_, *store_, options_, tokens, mentions, /*ctx=*/nullptr,
      [&](const nlp::Mention&, rdf::TermId entity, double, TemplateId t) {
        for (const PredicateProb& pp : store_->Distribution(t)) {
          if (pp.probability < options_.min_predicate_prob) continue;
          if (!CachedObjects(view, entity, pp.path, &scratch, &tally)
                   .empty()) {
            found = true;
            return false;
          }
        }
        return true;
      });
  FlushAnswerStats(nullptr, tally);
  return found;
}

}  // namespace kbqa::core
