#ifndef KBQA_CORE_ONLINE_H_
#define KBQA_CORE_ONLINE_H_

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/template_store.h"
#include "nlp/ner.h"
#include "obs/metrics.h"
#include "obs/wide_event.h"
#include "rdf/compressed_expanded.h"
#include "rdf/expanded_predicate.h"
#include "rdf/knowledge_base.h"
#include "rdf/mutable_kb.h"
#include "taxonomy/taxonomy.h"
#include "util/lru_cache.h"
#include "util/status.h"

namespace kbqa::core {

/// Accounting for the per-instance V(e, p+) memo cache. `hits`/`misses`
/// count CachedObjects lookups with the cache enabled; `entries` is the
/// number of currently resident (entity, path) pairs, `bytes` their summed
/// byte charges (key + value-vector payload), `evictions` the entries
/// dropped so far to stay under `budget_bytes` (0 = unbounded, never
/// evicts). With the cache disabled every field stays zero.
struct ValueCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t entries = 0;
  uint64_t bytes = 0;
  uint64_t evictions = 0;
  uint64_t budget_bytes = 0;
};

/// Per-request controls for one Answer call. Default-constructed options
/// reproduce the unconstrained behavior exactly.
struct AnswerOptions {
  /// When set, the answer pipeline checks the deadline at stage boundaries
  /// (after NER, per template candidate, per predicate lookup) and stops
  /// enumerating once it has passed: the question degrades to a partial or
  /// empty answer whose `status` is kDeadlineExceeded instead of stalling
  /// a serving thread. Unset means no latency bound (no clock reads).
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Request-scoped telemetry context (DESIGN.md §8), owned by the serving
  /// layer and stamped by the pipeline: disjoint per-stage durations via
  /// the chained stage clock, plus per-tier cache hit/miss counts. The
  /// pointed-to context must outlive the call; null (the default) means
  /// "not sampled" and costs one branch per stage boundary.
  obs::RequestContext* request_context = nullptr;
};

/// Value-cache key: the (entity, path) pair tagged with the KB version it
/// was computed against. A frozen KB is always version 0; in live mode
/// every Apply/merge bumps the version, so entries computed against an
/// older world can never be returned for a newer one (the stale-answer
/// hazard of DESIGN.md §10). Stale-version entries age out by LRU.
struct ValueCacheKey {
  uint64_t version = 0;
  uint64_t entity_path = 0;  // entity in the high 32 bits, path in the low

  friend bool operator==(const ValueCacheKey&, const ValueCacheKey&) =
      default;
};

}  // namespace kbqa::core

template <>
struct std::hash<kbqa::core::ValueCacheKey> {
  size_t operator()(const kbqa::core::ValueCacheKey& key) const noexcept {
    uint64_t h = key.version * 0x9e3779b97f4a7c15ULL ^ key.entity_path;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return static_cast<size_t>(h);
  }
};

namespace kbqa::core {

/// One scored value in the online posterior.
struct AnswerCandidate {
  rdf::TermId value = rdf::kInvalidTerm;
  double score = 0;
  /// Strongest (entity, template, predicate) support for this value.
  TemplateId best_template = kInvalidTemplate;
  rdf::PathId best_path = rdf::kInvalidPath;
  rdf::TermId best_entity = rdf::kInvalidTerm;
};

/// The outcome of answering one question.
struct AnswerResult {
  /// True when a predicate was found — the paper's #pro counts these.
  bool answered = false;
  /// Ok, or kDeadlineExceeded when AnswerOptions::deadline cut candidate
  /// enumeration short (the ranked posterior then covers only the
  /// candidates scored before the deadline — possibly none).
  Status status;
  /// Surface string of the winning value.
  std::string value;
  double score = 0;
  /// Human-readable winning predicate path (e.g. "marriage -> person ->
  /// name").
  std::string predicate;
  /// The structured query the question was mapped to (the paper's core
  /// framing: natural language -> structured query over the KB). Empty
  /// when unanswered. Executable via rdf::ParseQuery + rdf::ExecuteQuery.
  std::string sparql;
  /// Full ranked posterior (for P@1-style metrics and debugging).
  std::vector<AnswerCandidate> ranked;
  /// The complete answer set of the winning (entity, predicate) pair —
  /// multi-valued facts ("who is in coldplay?") return every member here
  /// while `value` carries the posterior argmax.
  std::vector<std::string> values;

  // Per-stage candidate counts (Table 6: the uncertainty at each random
  // variable of the probabilistic pipeline).
  size_t num_entities = 0;      // P(e|q) support
  size_t num_templates = 0;     // P(t|e,q) support, summed over entities
  size_t num_predicates = 0;    // P(p|t) support, summed over templates
  size_t num_values = 0;        // P(v|e,p) support, summed over predicates
  /// Predicates (among num_predicates) that produced at least one value on
  /// the entity — the denominator for the Table 6 "values per
  /// entity-predicate pair" average.
  size_t num_grounded_predicates = 0;
};

/// The online procedure (§3.3): computes
///   P(v|q) = Σ_{e,t,p} P(e|q) P(t|e,q) P(p|t) P(v|e,p)
/// and returns argmax_v. Complexity O(|P|) — entity/category/value
/// fan-outs are bounded constants; only the predicate enumeration scales.
///
/// Thread safety: all answering methods are const and safe to call
/// concurrently. The only mutable state is the V(e, p+) value cache, a
/// per-instance memory-budgeted sharded LRU (see util/lru_cache.h) —
/// lookups copy values out under a per-shard mutex, so evictions never
/// invalidate anything a caller holds.
class OnlineInference {
 public:
  struct Options {
    size_t max_categories_per_entity = 3;
    double min_category_prob = 0.02;
    /// Predicates with P(p|t) below this are skipped (noise floor).
    double min_predicate_prob = 1e-3;
    /// Minimum posterior score to consider the question answered.
    double min_answer_score = 1e-6;
    /// Memoize (entity, path) -> values lookups across questions. Results
    /// are identical either way (the KB is immutable); disabling exists
    /// for regression tests and cache-benefit measurements.
    bool enable_value_cache = true;
    /// Upper bound on the value cache's byte accounting (key + payload per
    /// entry). 0 = unbounded (the pre-budget behavior, for benchmarks and
    /// short-lived processes); any other value keeps a long-running
    /// serving process's cache footprint bounded via LRU eviction.
    uint64_t value_cache_budget_bytes = 0;
    /// Memoize whole-question AnswerResults across AnswerAll batches:
    /// repeat questions (head-heavy serving traffic) skip the pipeline
    /// entirely. Off by default — single-shot Answer callers and benchmarks
    /// measuring the pipeline want every question computed.
    bool enable_answer_cache = false;
    /// Byte budget for the answer memo cache (question + result payload per
    /// entry), same semantics as value_cache_budget_bytes: 0 = unbounded,
    /// anything else bounds the footprint via per-shard LRU eviction.
    uint64_t answer_cache_budget_bytes = 0;
  };

  /// All references must outlive the inference engine. `cekb` (optional)
  /// is the block-compressed expanded-KB substrate: when non-null and it
  /// materializes the queried (entity, path), value-cache misses decode
  /// from it instead of re-walking the base KB. Lookups on entities outside
  /// the materialized seed set fall back to the online walk, so answers are
  /// bit-identical with or without it — the substrate only changes where
  /// the bytes live. Its PathIds must come from the same dictionary as
  /// `paths` (KbqaSystem wires it only on the Train path, where both are
  /// the expansion's dictionary).
  ///
  /// `live` (optional) switches the engine to live-mutation mode: every
  /// Answer pins one KbSnapshot for its whole duration (RCU read-side),
  /// value lookups and winner materialization route through the pinned
  /// merged view, and all cache keys carry the snapshot version so a
  /// post-mutation query can never see a pre-mutation cache entry. `kb`
  /// must then be the live KB's current base (or an id-stable ancestor —
  /// see rdf::RebuildKb); `cekb` must be null.
  OnlineInference(const rdf::KnowledgeBase* kb,
                  const taxonomy::Taxonomy* taxonomy,
                  const nlp::GazetteerNer* ner, const TemplateStore* store,
                  const rdf::PathDictionary* paths, const Options& options,
                  const rdf::CompressedExpandedKb* cekb = nullptr,
                  const rdf::MutableKb* live = nullptr);

  /// Answers a binary factoid question.
  AnswerResult Answer(const std::string& question) const;
  AnswerResult Answer(const std::string& question,
                      const AnswerOptions& answer_options) const;

  /// Token-level variant (reused by the decomposer on question spans).
  AnswerResult AnswerTokens(const std::vector<std::string>& tokens) const;
  AnswerResult AnswerTokens(const std::vector<std::string>& tokens,
                            const AnswerOptions& answer_options) const;

  /// Batched throughput entry point: answers every question, sharded over
  /// `num_threads` workers. results[i] corresponds to questions[i] and is
  /// identical to Answer(questions[i]) for any thread count (questions are
  /// independent and the engine is immutable during answering).
  std::vector<AnswerResult> AnswerAll(const std::vector<std::string>& questions,
                                      int num_threads) const;

  /// One question through the whole-question memo cache (when enabled) —
  /// the per-request unit AnswerAll shards and the serving batcher both
  /// route through. The cache key is NormalizeText(question), so casing /
  /// whitespace / punctuation paraphrases of one canonical question share
  /// an entry (they tokenize identically, hence answer identically). Only
  /// complete results are memoized: a deadline-clipped partial answer
  /// (status kDeadlineExceeded) is returned but never cached.
  AnswerResult AnswerCached(const std::string& question,
                            const AnswerOptions& answer_options) const;

  /// Cheap answerability probe: true when some entity+template resolves to
  /// a learned predicate with at least one value — the δ(q) primitive-BFQ
  /// indicator of the decomposition DP (§5.3).
  bool IsPrimitiveBfq(const std::vector<std::string>& tokens) const;

  /// Hit/miss/size accounting for the value memo cache. The counters are
  /// per-instance (sharded relaxed atomics plus the cache's own shard
  /// books, not the global registry) so two engines — e.g. a cached and an
  /// uncached one in a regression test — never contaminate each other's
  /// numbers.
  ValueCacheStats value_cache_stats() const;

  /// Same accounting for the whole-question answer memo cache used by
  /// AnswerAll (all-zero unless Options::enable_answer_cache).
  ValueCacheStats answer_cache_stats() const;

 private:
  /// Per-request cache accounting, accumulated on the stack during one
  /// Answer/probe and flushed into the sharded counters once at the end —
  /// the per-lookup cost is a plain increment.
  struct CacheTally {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };

  /// The KB world one Answer reads from start to finish. Frozen mode:
  /// `kb` is the engine's kb_ and `snap` is null. Live mode: `snap` pins
  /// one RCU snapshot (kept alive for the whole request) and `kb` is its
  /// base — id-stable across merges, so ids from the engine's trained
  /// structures remain valid.
  struct PinnedKb {
    const rdf::KnowledgeBase* kb = nullptr;
    std::shared_ptr<const rdf::KbSnapshot> snap;

    uint64_t version() const { return snap != nullptr ? snap->version : 0; }
  };

  /// Pins the current world: one atomic load in live mode, free in frozen
  /// mode.
  PinnedKb PinKb() const;

  /// V(e, p+) through the memo cache. The result always lands in
  /// `*scratch` — copied out of the cache on a hit, computed by the path
  /// walk on a miss (then inserted, evicting LRU entries if over budget) —
  /// and the returned reference points there, valid until the next call
  /// with the same `scratch`. Copy-out is what makes eviction safe: no
  /// caller ever holds a reference into the cache. The cache key carries
  /// `view.version()`, so entries never cross mutation boundaries.
  const std::vector<rdf::TermId>& CachedObjects(
      const PinnedKb& view, rdf::TermId entity, rdf::PathId path,
      std::vector<rdf::TermId>* scratch, CacheTally* tally) const;

  /// AnswerTokens against an already-pinned world — the body behind every
  /// public answering entry point (AnswerCached pins once and reuses the
  /// view for its cache key and the computation, so the key's version
  /// always matches the world that computed the entry).
  AnswerResult AnswerTokensPinned(const std::vector<std::string>& tokens,
                                  const AnswerOptions& answer_options,
                                  const PinnedKb& view) const;

  AnswerResult AnswerTokensImpl(const std::vector<std::string>& tokens,
                                const AnswerOptions& answer_options,
                                CacheTally* tally, const PinnedKb& view) const;

  /// Folds one request's tally into the per-instance cache stats and, when
  /// instrumentation is on, mirrors it plus the per-answer stage counts
  /// into the global registry. `result` is null for IsPrimitiveBfq probes.
  void FlushAnswerStats(const AnswerResult* result,
                        const CacheTally& tally) const;

  /// V(e, p+) without the memo cache: walk the pinned merged view in live
  /// mode; otherwise decode from the compressed substrate when it
  /// materializes the pair, else walk the base KB. Result lands in
  /// `*scratch`.
  void LookupValues(const PinnedKb& view, rdf::TermId entity,
                    rdf::PathId path,
                    std::vector<rdf::TermId>* scratch) const;

  const rdf::KnowledgeBase* kb_;
  const taxonomy::Taxonomy* taxonomy_;
  const nlp::GazetteerNer* ner_;
  const TemplateStore* store_;
  const rdf::PathDictionary* paths_;
  const rdf::CompressedExpandedKb* cekb_;
  const rdf::MutableKb* live_;
  Options options_;

  /// Keyed by (KB version, entity « 32 | path) — see ValueCacheKey.
  mutable ShardedLruCache<ValueCacheKey, std::vector<rdf::TermId>>
      value_cache_;
  mutable obs::ShardedCounter cache_hits_;
  mutable obs::ShardedCounter cache_misses_;

  /// Whole-question memo for AnswerAll/AnswerCached: normalized question
  /// text (NormalizeText) → full AnswerResult, so surface paraphrases that
  /// tokenize identically hit one entry. Internally synchronized (sharded
  /// LRU) like the value cache; results are copied out, so eviction never
  /// invalidates callers.
  mutable ShardedLruCache<std::string, AnswerResult> answer_cache_;
  mutable obs::ShardedCounter answer_cache_hits_;
  mutable obs::ShardedCounter answer_cache_misses_;
};

}  // namespace kbqa::core

#endif  // KBQA_CORE_ONLINE_H_
