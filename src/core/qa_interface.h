#ifndef KBQA_CORE_QA_INTERFACE_H_
#define KBQA_CORE_QA_INTERFACE_H_

#include <string>

#include "core/online.h"

namespace kbqa::core {

/// Uniform question-answering interface implemented by KBQA and every
/// baseline, so the evaluation runners and the hybrid combinator can treat
/// them interchangeably.
class QaSystemInterface {
 public:
  virtual ~QaSystemInterface() = default;

  /// Display name for report tables.
  virtual std::string name() const = 0;

  /// Answers a question; `answered == false` means the system declined
  /// (returned null), which the paper's metrics distinguish from a wrong
  /// answer via #pro.
  virtual AnswerResult Answer(const std::string& question) const = 0;
};

/// The hybrid composition of §7.3.1 (Table 11): feed the question to the
/// primary system (KBQA); when it declines — which for KBQA means "very
/// likely a non-BFQ" — fall back to the baseline.
class HybridSystem : public QaSystemInterface {
 public:
  HybridSystem(const QaSystemInterface* primary,
               const QaSystemInterface* fallback)
      : primary_(primary), fallback_(fallback) {}

  std::string name() const override {
    return primary_->name() + "+" + fallback_->name();
  }

  AnswerResult Answer(const std::string& question) const override {
    AnswerResult result = primary_->Answer(question);
    if (result.answered) return result;
    return fallback_->Answer(question);
  }

 private:
  const QaSystemInterface* primary_;
  const QaSystemInterface* fallback_;
};

}  // namespace kbqa::core

#endif  // KBQA_CORE_QA_INTERFACE_H_
