#include "core/template_store.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace kbqa::core {

TemplateId TemplateStore::Intern(std::string_view template_text) {
  auto it = index_.find(std::string(template_text));
  if (it != index_.end()) return it->second;
  TemplateId id = static_cast<TemplateId>(texts_.size());
  texts_.emplace_back(template_text);
  distributions_.emplace_back();
  frequency_.push_back(0);
  index_.emplace(texts_.back(), id);
  return id;
}

std::optional<TemplateId> TemplateStore::Lookup(
    std::string_view template_text) const {
  auto it = index_.find(std::string(template_text));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

void TemplateStore::SetDistribution(TemplateId t,
                                    std::vector<PredicateProb> dist) {
  assert(t < distributions_.size());
  std::sort(dist.begin(), dist.end(),
            [](const PredicateProb& a, const PredicateProb& b) {
              if (a.probability != b.probability) {
                return a.probability > b.probability;
              }
              return a.path < b.path;
            });
  distributions_[t] = std::move(dist);
}

std::span<const PredicateProb> TemplateStore::Distribution(
    TemplateId t) const {
  if (t >= distributions_.size()) return {};
  return distributions_[t];
}

std::optional<PredicateProb> TemplateStore::Best(TemplateId t) const {
  auto dist = Distribution(t);
  if (dist.empty()) return std::nullopt;
  return dist.front();
}

void TemplateStore::AddFrequency(TemplateId t, uint64_t delta) {
  assert(t < frequency_.size());
  frequency_[t] += delta;
}

size_t TemplateStore::NumDistinctBestPredicates() const {
  std::unordered_set<rdf::PathId> preds;
  for (TemplateId t = 0; t < texts_.size(); ++t) {
    auto best = Best(t);
    if (best) preds.insert(best->path);
  }
  return preds.size();
}

size_t TemplateStore::NumDistinctPredicates() const {
  std::unordered_set<rdf::PathId> preds;
  for (const auto& dist : distributions_) {
    for (const auto& entry : dist) preds.insert(entry.path);
  }
  return preds.size();
}

std::vector<TemplateId> TemplateStore::TemplatesByFrequency() const {
  std::vector<TemplateId> ids(texts_.size());
  for (TemplateId t = 0; t < texts_.size(); ++t) ids[t] = t;
  std::sort(ids.begin(), ids.end(), [this](TemplateId a, TemplateId b) {
    if (frequency_[a] != frequency_[b]) return frequency_[a] > frequency_[b];
    return a < b;
  });
  return ids;
}

}  // namespace kbqa::core
