#ifndef KBQA_CORE_TEMPLATE_STORE_H_
#define KBQA_CORE_TEMPLATE_STORE_H_

#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "rdf/expanded_predicate.h"

namespace kbqa::core {

/// Dense template identifier. A template is a question string whose entity
/// mention has been replaced by a category token, e.g.
/// "how many people are there in $city".
using TemplateId = uint32_t;
inline constexpr TemplateId kInvalidTemplate =
    std::numeric_limits<TemplateId>::max();

/// One entry of a template's predicate distribution.
struct PredicateProb {
  rdf::PathId path;
  double probability;
};

/// The learned artifact of the offline procedure: the template dictionary
/// and the distribution P(p|t) for every template (the paper learns 27M
/// templates for 2782 predicates; scale differs here, shape does not).
class TemplateStore {
 public:
  TemplateStore() = default;
  TemplateStore(const TemplateStore&) = delete;
  TemplateStore& operator=(const TemplateStore&) = delete;
  TemplateStore(TemplateStore&&) = default;
  TemplateStore& operator=(TemplateStore&&) = default;

  /// Interns a template string (training-time use).
  TemplateId Intern(std::string_view template_text);
  /// Looks a template up without interning (online use).
  std::optional<TemplateId> Lookup(std::string_view template_text) const;

  const std::string& TemplateText(TemplateId id) const { return texts_[id]; }
  size_t num_templates() const { return texts_.size(); }

  /// Replaces the P(p|t) distribution of `t` (entries sorted by descending
  /// probability by the setter).
  void SetDistribution(TemplateId t, std::vector<PredicateProb> dist);
  /// P(p|t) — empty when nothing was learned for `t`.
  std::span<const PredicateProb> Distribution(TemplateId t) const;
  /// argmax_p P(p|t); nullopt when the template has no distribution.
  std::optional<PredicateProb> Best(TemplateId t) const;

  /// Increments the observation count backing `t` (used to rank templates
  /// by frequency for the Table 13 precision evaluation).
  void AddFrequency(TemplateId t, uint64_t delta = 1);
  uint64_t Frequency(TemplateId t) const { return frequency_[t]; }

  /// Number of distinct predicates that are the argmax of some template.
  size_t NumDistinctBestPredicates() const;
  /// Number of distinct predicates appearing in any distribution.
  size_t NumDistinctPredicates() const;

  /// Template ids sorted by descending frequency.
  std::vector<TemplateId> TemplatesByFrequency() const;

 private:
  std::unordered_map<std::string, TemplateId> index_;
  std::vector<std::string> texts_;
  std::vector<std::vector<PredicateProb>> distributions_;
  std::vector<uint64_t> frequency_;
};

}  // namespace kbqa::core

#endif  // KBQA_CORE_TEMPLATE_STORE_H_
