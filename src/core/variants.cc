#include "core/variants.h"

#include <algorithm>
#include <cctype>
#include <unordered_map>

#include "nlp/stopwords.h"
#include "nlp/tokenizer.h"
#include "util/strings.h"

namespace kbqa::core {

namespace {

/// True when `word` marks a "largest" superlative, false for "smallest";
/// nullopt otherwise.
std::optional<bool> SuperlativeDirection(const std::string& word) {
  if (word == "largest" || word == "biggest" || word == "highest" ||
      word == "longest" || word == "most") {
    return true;
  }
  if (word == "smallest" || word == "lowest" || word == "shortest" ||
      word == "least") {
    return false;
  }
  return std::nullopt;
}

}  // namespace

int ParseOrdinal(const std::string& token) {
  static const std::pair<const char*, int> kWords[] = {
      {"first", 1}, {"second", 2}, {"third", 3},   {"fourth", 4},
      {"fifth", 5}, {"sixth", 6},  {"seventh", 7}, {"eighth", 8},
      {"ninth", 9}, {"tenth", 10}};
  for (const auto& [word, value] : kWords) {
    if (token == word) return value;
  }
  // "1st" / "2nd" / "3rd" / "4th" ... digits followed by a suffix.
  size_t digits = 0;
  while (digits < token.size() &&
         std::isdigit(static_cast<unsigned char>(token[digits]))) {
    ++digits;
  }
  if (digits == 0 || digits == token.size()) return 0;
  std::string suffix = token.substr(digits);
  if (suffix != "st" && suffix != "nd" && suffix != "rd" && suffix != "th") {
    return 0;
  }
  long long value = ParseNonNegativeInt(token.substr(0, digits));
  return value > 0 && value <= 1000 ? static_cast<int>(value) : 0;
}

VariantSolver::VariantSolver(const rdf::KnowledgeBase* kb,
                             const taxonomy::Taxonomy* taxonomy,
                             const nlp::GazetteerNer* ner,
                             const TemplateStore* store,
                             const rdf::PathDictionary* paths,
                             const Options& options)
    : kb_(kb),
      taxonomy_(taxonomy),
      ner_(ner),
      store_(store),
      paths_(paths),
      options_(options) {}

std::optional<taxonomy::CategoryId> VariantSolver::LookupCategoryWord(
    const std::string& word) const {
  auto category = taxonomy_->LookupCategory("$" + word);
  if (category) return category;
  // Plural forms: "citys ..." (generator form), "cities ..." (-ies -> -y),
  // "books ..." (bare -s).
  if (word.size() > 3 && word.ends_with("ies")) {
    category =
        taxonomy_->LookupCategory("$" + word.substr(0, word.size() - 3) + "y");
    if (category) return category;
  }
  if (word.size() > 1 && word.back() == 's') {
    category = taxonomy_->LookupCategory("$" + word.substr(0, word.size() - 1));
    if (category) return category;
  }
  return std::nullopt;
}

std::optional<rdf::PathId> VariantSolver::ResolvePredicate(
    const std::string& category,
    const std::vector<std::string>& phrase_tokens) const {
  // Content words of the phrase that must appear in a matching template.
  std::vector<std::string> content;
  for (const std::string& tok : phrase_tokens) {
    if (!nlp::IsStopword(tok)) content.push_back(tok);
  }
  if (content.empty()) return std::nullopt;

  // Vote over learned templates: a template of this category whose text
  // contains every content word supports its argmax predicate with weight
  // frequency * P(p|t).
  std::unordered_map<rdf::PathId, double> votes;
  for (TemplateId t = 0; t < store_->num_templates(); ++t) {
    const std::string& text = store_->TemplateText(t);
    if (text.find(category) == std::string::npos) continue;
    std::vector<std::string> tokens = SplitWhitespace(text);
    bool covers = true;
    for (const std::string& word : content) {
      covers = covers &&
               std::find(tokens.begin(), tokens.end(), word) != tokens.end();
    }
    if (!covers) continue;
    auto best = store_->Best(t);
    if (!best || best->probability < options_.min_template_prob) continue;
    votes[best->path] += best->probability *
                         static_cast<double>(1 + store_->Frequency(t));
  }
  if (votes.empty()) return std::nullopt;
  rdf::PathId winner = rdf::kInvalidPath;
  double best_vote = -1;
  for (const auto& [path, vote] : votes) {
    if (vote > best_vote || (vote == best_vote && path < winner)) {
      best_vote = vote;
      winner = path;
    }
  }
  return winner;
}

std::vector<std::pair<rdf::TermId, long long>> VariantSolver::RankEntities(
    taxonomy::CategoryId category, rdf::PathId path) const {
  std::vector<std::pair<rdf::TermId, long long>> ranked;
  const rdf::PredPath& pred_path = paths_->GetPath(path);
  for (rdf::TermId e : taxonomy_->EntitiesWithCategory(category)) {
    std::vector<rdf::TermId> values = rdf::ObjectsViaPath(*kb_, e, pred_path);
    if (values.empty()) continue;
    long long value = ParseNonNegativeInt(kb_->NodeString(values.front()));
    if (value < 0) continue;
    ranked.emplace_back(e, value);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  return ranked;
}

AnswerResult VariantSolver::AnswerSuperlative(
    const std::vector<std::string>& tokens) const {
  AnswerResult result;
  // Frame: "which <type> has the [k-th] largest|smallest <phrase>".
  if (tokens.size() < 5 || (tokens[0] != "which" && tokens[0] != "what")) {
    return result;
  }
  size_t dir_pos = 0;
  std::optional<bool> largest;
  for (size_t i = 2; i < tokens.size(); ++i) {
    largest = SuperlativeDirection(tokens[i]);
    if (largest) {
      dir_pos = i;
      break;
    }
  }
  if (!largest || dir_pos + 1 >= tokens.size()) return result;

  int rank = 1;
  if (dir_pos >= 1) {
    int ordinal = ParseOrdinal(tokens[dir_pos - 1]);
    if (ordinal > 0) rank = ordinal;
  }
  auto category = LookupCategoryWord(tokens[1]);
  if (!category) return result;
  std::vector<std::string> phrase(tokens.begin() + dir_pos + 1, tokens.end());
  auto path = ResolvePredicate(taxonomy_->CategoryName(*category), phrase);
  if (!path) return result;

  auto ranked = RankEntities(*category, *path);
  if (ranked.size() < static_cast<size_t>(rank)) return result;
  const auto& pick =
      *largest ? ranked[rank - 1] : ranked[ranked.size() - rank];
  result.answered = true;
  result.value = kb_->EntityName(pick.first);
  result.predicate = paths_->ToString(*path, *kb_);
  result.score = 1.0;
  return result;
}

AnswerResult VariantSolver::AnswerComparison(
    const std::vector<std::string>& tokens) const {
  AnswerResult result;
  // Frame: "which has more|less <phrase> , <a> or <b>".
  if (tokens.size() < 6 || tokens[0] != "which" || tokens[1] != "has") {
    return result;
  }
  bool more;
  if (tokens[2] == "more") {
    more = true;
  } else if (tokens[2] == "less" || tokens[2] == "fewer") {
    more = false;
  } else {
    return result;
  }
  std::vector<nlp::Mention> mentions = ner_->FindMentions(tokens);
  if (mentions.size() < 2 || mentions[0].begin <= 3) return result;
  std::vector<std::string> phrase(tokens.begin() + 3,
                                  tokens.begin() + mentions[0].begin);

  // Both mentions must share a category; resolve the phrase against it.
  for (rdf::TermId a : mentions[0].entities) {
    for (rdf::TermId b : mentions[1].entities) {
      for (const auto& cat_a : taxonomy_->CategoriesOf(a)) {
        bool shared = false;
        for (const auto& cat_b : taxonomy_->CategoriesOf(b)) {
          shared = shared || cat_a.category == cat_b.category;
        }
        if (!shared) continue;
        auto path = ResolvePredicate(
            taxonomy_->CategoryName(cat_a.category), phrase);
        if (!path) continue;
        const rdf::PredPath& pred_path = paths_->GetPath(*path);
        auto va = rdf::ObjectsViaPath(*kb_, a, pred_path);
        auto vb = rdf::ObjectsViaPath(*kb_, b, pred_path);
        if (va.empty() || vb.empty()) continue;
        long long xa = ParseNonNegativeInt(kb_->NodeString(va.front()));
        long long xb = ParseNonNegativeInt(kb_->NodeString(vb.front()));
        if (xa < 0 || xb < 0 || xa == xb) continue;
        bool pick_a = more ? xa > xb : xa < xb;
        result.answered = true;
        result.value = kb_->EntityName(pick_a ? a : b);
        result.predicate = paths_->ToString(*path, *kb_);
        result.score = 1.0;
        return result;
      }
    }
  }
  return result;
}

AnswerResult VariantSolver::AnswerListing(
    const std::vector<std::string>& tokens) const {
  AnswerResult result;
  // Frame: "list [all] <types> ordered by <phrase>".
  if (tokens.size() < 5 || tokens[0] != "list") return result;
  size_t ordered_pos = 0;
  for (size_t i = 1; i + 1 < tokens.size(); ++i) {
    if (tokens[i] == "ordered" && tokens[i + 1] == "by") {
      ordered_pos = i;
      break;
    }
  }
  if (ordered_pos < 2) return result;
  auto category = LookupCategoryWord(tokens[ordered_pos - 1]);
  if (!category) return result;
  std::vector<std::string> phrase(tokens.begin() + ordered_pos + 2,
                                  tokens.end());
  auto path = ResolvePredicate(taxonomy_->CategoryName(*category), phrase);
  if (!path) return result;

  auto ranked = RankEntities(*category, *path);
  if (ranked.empty()) return result;
  std::string answer;
  for (size_t i = 0; i < ranked.size() && i < options_.max_list; ++i) {
    if (!answer.empty()) answer += ", ";
    answer += kb_->EntityName(ranked[i].first);
  }
  result.answered = true;
  result.value = std::move(answer);
  result.predicate = paths_->ToString(*path, *kb_);
  result.score = 1.0;
  return result;
}

AnswerResult VariantSolver::Answer(const std::string& question) const {
  std::vector<std::string> tokens = nlp::TokenizeQuestion(question);
  AnswerResult result = AnswerSuperlative(tokens);
  if (result.answered) return result;
  result = AnswerComparison(tokens);
  if (result.answered) return result;
  return AnswerListing(tokens);
}

}  // namespace kbqa::core
