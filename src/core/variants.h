#ifndef KBQA_CORE_VARIANTS_H_
#define KBQA_CORE_VARIANTS_H_

#include <optional>
#include <string>
#include <vector>

#include "core/online.h"
#include "core/template_store.h"
#include "nlp/ner.h"
#include "rdf/expanded_predicate.h"
#include "rdf/knowledge_base.h"
#include "taxonomy/taxonomy.h"

namespace kbqa::core {

/// BFQ *variants* (§1 of the paper): once binary factoid questions are
/// answerable, ranking, comparison, and listing questions follow —
///   "which city has the 3rd largest population?"
///   "which has more people, honolulu or new jersey?"
///   "list cities ordered by population"
///
/// The key design point: the attribute phrasing ("people", "population",
/// "number of inhabitants") is resolved to a predicate through the
/// *learned* template store — the solver searches templates of the target
/// category whose text covers the phrase and takes the argmax P(p|t) — so
/// variant questions inherit the full paraphrase coverage of the BFQ
/// engine instead of relying on predicate-name keywords.
class VariantSolver {
 public:
  struct Options {
    /// Maximum entities named in a listing answer.
    size_t max_list = 10;
    /// Minimum P(p|t) for a template to vote during phrase resolution.
    double min_template_prob = 0.3;
  };

  VariantSolver(const rdf::KnowledgeBase* kb,
                const taxonomy::Taxonomy* taxonomy,
                const nlp::GazetteerNer* ner, const TemplateStore* store,
                const rdf::PathDictionary* paths, const Options& options);

  /// Attempts to answer a variant question; `answered == false` when the
  /// question matches no variant frame or resolution fails.
  AnswerResult Answer(const std::string& question) const;

  /// Exposed for tests: resolves an attribute phrase to a predicate path
  /// for a category via the learned templates.
  std::optional<rdf::PathId> ResolvePredicate(
      const std::string& category,
      const std::vector<std::string>& phrase_tokens) const;

 private:
  AnswerResult AnswerSuperlative(const std::vector<std::string>& tokens) const;
  AnswerResult AnswerComparison(const std::vector<std::string>& tokens) const;
  AnswerResult AnswerListing(const std::vector<std::string>& tokens) const;

  /// Ranks entities of `category` by the numeric value reached through
  /// `path`; returns (entity, value) pairs sorted descending.
  std::vector<std::pair<rdf::TermId, long long>> RankEntities(
      taxonomy::CategoryId category, rdf::PathId path) const;

  std::optional<taxonomy::CategoryId> LookupCategoryWord(
      const std::string& word) const;

  const rdf::KnowledgeBase* kb_;
  const taxonomy::Taxonomy* taxonomy_;
  const nlp::GazetteerNer* ner_;
  const TemplateStore* store_;
  const rdf::PathDictionary* paths_;
  Options options_;
};

/// Parses an English ordinal token: "1st"/"first" -> 1, "3rd"/"third" -> 3.
/// Returns 0 when the token is not an ordinal.
int ParseOrdinal(const std::string& token);

}  // namespace kbqa::core

#endif  // KBQA_CORE_VARIANTS_H_
