#include "corpus/corpus_io.h"

#include <fstream>

#include "util/strings.h"

namespace kbqa::corpus {

std::string EscapeTsvField(const std::string& field) {
  std::string out;
  out.reserve(field.size());
  for (char c : field) {
    switch (c) {
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string UnescapeTsvField(const std::string& field) {
  std::string out;
  out.reserve(field.size());
  for (size_t i = 0; i < field.size(); ++i) {
    if (field[i] == '\\' && i + 1 < field.size()) {
      char next = field[++i];
      switch (next) {
        case 't':
          out += '\t';
          break;
        case 'n':
          out += '\n';
          break;
        case '\\':
          out += '\\';
          break;
        default:  // Unknown escape: keep verbatim.
          out += '\\';
          out += next;
      }
    } else {
      out += field[i];
    }
  }
  return out;
}

Status ExportQaTsv(const QaCorpus& corpus, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out << "# question\tanswer (" << corpus.size() << " pairs)\n";
  for (const QaPair& pair : corpus.pairs) {
    out << EscapeTsvField(pair.question) << '\t'
        << EscapeTsvField(pair.answer) << '\n';
  }
  out.flush();
  if (!out) return Status::IoError("short write: " + path);
  return Status::Ok();
}

Result<QaCorpus> ImportQaTsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);
  QaCorpus corpus;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    // Split on the first unescaped tab. Escaped tabs are "\t" two-char
    // sequences, so a raw '\t' byte is always the separator.
    size_t tab = line.find('\t');
    if (tab == std::string::npos) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_number) +
                                     ": expected question<TAB>answer");
    }
    QaPair pair;
    pair.question = UnescapeTsvField(line.substr(0, tab));
    pair.answer = UnescapeTsvField(line.substr(tab + 1));
    if (pair.question.empty()) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_number) +
                                     ": empty question");
    }
    corpus.pairs.push_back(std::move(pair));
    corpus.gold.emplace_back();  // Real corpora carry no gold annotations.
  }
  return corpus;
}

}  // namespace kbqa::corpus
