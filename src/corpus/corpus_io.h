#ifndef KBQA_CORPUS_CORPUS_IO_H_
#define KBQA_CORPUS_CORPUS_IO_H_

#include <string>

#include "corpus/qa_corpus.h"
#include "util/status.h"

namespace kbqa::corpus {

/// TSV interchange for QA corpora, so real community-QA dumps can be fed to
/// the trainer and generated corpora can be inspected / diffed.
///
/// Format: one pair per line, `question<TAB>answer`. Tabs/newlines inside
/// fields are escaped as \t and \n; '#'-prefixed lines and blank lines are
/// skipped. Gold annotations are generator-internal and are NOT serialized
/// (a real corpus has none).

/// Writes `corpus` (questions and answers only) as TSV.
[[nodiscard]] Status ExportQaTsv(const QaCorpus& corpus, const std::string& path);

/// Reads a TSV QA corpus. All gold annotations default to "unknown"
/// (is_bfq = false, no value) — exactly the information a real crawl has.
[[nodiscard]] Result<QaCorpus> ImportQaTsv(const std::string& path);

/// Field escaping helpers (exposed for tests).
std::string EscapeTsvField(const std::string& field);
std::string UnescapeTsvField(const std::string& field);

}  // namespace kbqa::corpus

#endif  // KBQA_CORPUS_CORPUS_IO_H_
