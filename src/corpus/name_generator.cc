#include "corpus/name_generator.h"

#include <array>

namespace kbqa::corpus {

namespace {

constexpr std::array<const char*, 24> kOnsets = {
    "b",  "d",  "f",  "g",  "h",  "k",  "l",  "m",  "n",  "p",  "r",  "s",
    "t",  "v",  "z",  "br", "dr", "gr", "kr", "tr", "st", "sh", "th", "ch"};
constexpr std::array<const char*, 8> kVowels = {"a", "e", "i", "o",
                                                "u", "ae", "ia", "or"};
constexpr std::array<const char*, 12> kCodas = {"", "",  "n", "l",  "r", "s",
                                                "m", "th", "x", "nd", "st", "k"};

constexpr std::array<const char*, 10> kPlaceSuffixes = {
    "ton", "ville", "burg", "stead", "ford", "port", "field", "haven",
    "dale", "mouth"};
constexpr std::array<const char*, 8> kCountrySuffixes = {
    "ia", "land", "stan", "ovia", "onia", "aria", "istan", "or"};
constexpr std::array<const char*, 8> kCompanySuffixes = {
    " corp", " inc", " systems", " labs", " group", " industries",
    " dynamics", " technologies"};
constexpr std::array<const char*, 12> kTitleNouns = {
    "harbor", "garden", "mirror", "winter", "river",  "mountain",
    "crown",  "sparrow", "ember", "lantern", "meadow", "voyage"};
constexpr std::array<const char*, 12> kTitleAdjectives = {
    "silent", "crimson", "golden",  "hidden", "broken", "distant",
    "velvet", "frozen",  "burning", "quiet",  "lost",   "amber"};
constexpr std::array<const char*, 6> kInstituteWords = {
    "institute", "academy", "college", "polytechnic", "school", "conservatory"};

template <size_t N>
const char* Pick(Rng& rng, const std::array<const char*, N>& table) {
  return table[rng.Uniform(N)];
}

}  // namespace

std::string NameGenerator::Syllables(Rng& rng, int min_syllables,
                                     int max_syllables) {
  int n = static_cast<int>(rng.UniformInt(min_syllables, max_syllables));
  std::string out;
  for (int i = 0; i < n; ++i) {
    out += Pick(rng, kOnsets);
    out += Pick(rng, kVowels);
    if (i + 1 == n) out += Pick(rng, kCodas);
  }
  return out;
}

std::string NameGenerator::Generate(Rng& rng, NameStyle style) {
  switch (style) {
    case NameStyle::kPerson:
      return Syllables(rng, 2, 3) + " " + Syllables(rng, 2, 3);
    case NameStyle::kPlace: {
      std::string base = Syllables(rng, 1, 2) + Pick(rng, kPlaceSuffixes);
      if (rng.Bernoulli(0.15)) return "port " + base;
      if (rng.Bernoulli(0.1)) return "new " + base;
      return base;
    }
    case NameStyle::kCountry:
      return Syllables(rng, 2, 3) + Pick(rng, kCountrySuffixes);
    case NameStyle::kCompany:
      return Syllables(rng, 2, 3) + Pick(rng, kCompanySuffixes);
    case NameStyle::kTitle:
      // Half the titles use a generated modifier so the title space stays
      // large enough for thousands of books/films without accidental
      // wholesale collisions.
      if (rng.Bernoulli(0.5)) {
        return std::string("the ") + Syllables(rng, 2, 3) + " " +
               Pick(rng, kTitleNouns);
      }
      return std::string("the ") + Pick(rng, kTitleAdjectives) + " " +
             Pick(rng, kTitleNouns);
    case NameStyle::kBand:
      if (rng.Bernoulli(0.5)) {
        return std::string("the ") + Syllables(rng, 2, 3) + " " +
               Pick(rng, kTitleNouns) + "s";
      }
      return std::string("the ") + Pick(rng, kTitleAdjectives) + " " +
             Pick(rng, kTitleNouns) + "s";
    case NameStyle::kRiver:
      return Syllables(rng, 2, 2) + " river";
    case NameStyle::kUniversity:
      return Syllables(rng, 2, 2) + " " + Pick(rng, kInstituteWords);
    case NameStyle::kWord:
      return Syllables(rng, 2, 3);
  }
  return Syllables(rng, 2, 3);
}

}  // namespace kbqa::corpus
