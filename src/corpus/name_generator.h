#ifndef KBQA_CORPUS_NAME_GENERATOR_H_
#define KBQA_CORPUS_NAME_GENERATOR_H_

#include <string>

#include "util/rng.h"

namespace kbqa::corpus {

/// Surface-form style for generated entity names.
enum class NameStyle {
  kPerson,      // "marlen dovaro"
  kPlace,       // "kelstead", "port varnum"
  kCountry,     // "valdoria"
  kCompany,     // "zentrix corp"
  kTitle,       // "the silent harbor" (books, films, songs)
  kBand,        // "the velvet sparrows"
  kRiver,       // "torvel river"
  kUniversity,  // "university of kelstead" handled by caller; here "northfield institute"
  kWord,        // plain common word ("pomel") — fruits etc.
};

/// Deterministic syllable-based name generator. Identical (rng state, style)
/// inputs produce identical names, so worlds are reproducible. Collisions
/// are possible by design — shared surface names are exactly the ambiguity
/// the probabilistic model must handle — but the generator keeps them rare
/// enough that most questions have a unique entity.
class NameGenerator {
 public:
  /// Draws a fresh name of the requested style using `rng`.
  static std::string Generate(Rng& rng, NameStyle style);

 private:
  static std::string Syllables(Rng& rng, int min_syllables, int max_syllables);
};

}  // namespace kbqa::corpus

#endif  // KBQA_CORPUS_NAME_GENERATOR_H_
