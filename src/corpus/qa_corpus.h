#ifndef KBQA_CORPUS_QA_CORPUS_H_
#define KBQA_CORPUS_QA_CORPUS_H_

#include <string>
#include <vector>

#include "rdf/dictionary.h"

namespace kbqa::corpus {

/// One community-QA pair — the unit the paper crawls from Yahoo! Answers
/// (41M pairs; "best answer" only). The answer is a full natural-language
/// sentence that *contains* the factual value among noise tokens.
struct QaPair {
  std::string question;
  std::string answer;
};

/// Hidden gold annotations carried alongside generated QA pairs. The
/// learner never sees these; evaluation and the precision benches do.
struct QaGold {
  /// True when the question is a binary factoid question the KB can answer.
  bool is_bfq = false;
  /// Index of the generating intent in the schema; -1 for non-BFQs.
  int intent = -1;
  /// Gold entity/value nodes, when is_bfq.
  rdf::TermId entity = rdf::kInvalidTerm;
  rdf::TermId value = rdf::kInvalidTerm;
  /// Surface form of the gold value (normalized lowercase tokens).
  std::string value_string;
  /// Other fully-correct values of the same fact (multi-valued intents:
  /// any band member answers "who is in X"). Judged as right.
  std::vector<std::string> correct_alternates;
  /// Acceptable "partially right" alternates (e.g. country when a city was
  /// asked) — drive the #par column of the QALD tables.
  std::vector<std::string> partial_values;
  /// False when the generated answer sentence does not actually contain the
  /// value (chit-chat / wrong-value noise).
  bool answer_contains_value = false;
  /// Index of the paraphrase pattern used; -1 for non-BFQs.
  int paraphrase = -1;
  /// True when the paraphrase was held out of the training bank.
  bool unseen_paraphrase = false;
  /// Question kind for reporting: "bfq", "chitchat", "superlative",
  /// "comparison", "listing", "opinion".
  std::string kind;
};

/// A QA corpus: pairs plus (parallel) gold annotations.
struct QaCorpus {
  std::vector<QaPair> pairs;
  std::vector<QaGold> gold;

  size_t size() const { return pairs.size(); }
};

}  // namespace kbqa::corpus

#endif  // KBQA_CORPUS_QA_CORPUS_H_
