#include "corpus/qa_generator.h"

#include <algorithm>
#include <cassert>

#include "util/distributions.h"
#include "util/rng.h"
#include "util/strings.h"

namespace kbqa::corpus {

namespace {

using rdf::TermId;

constexpr const char* kAnswerFrames[] = {
    "it 's $v .",          "i think it is $v .",
    "$v .",                "the answer is $v .",
    "$v as far as i know .", "pretty sure it is $v .",
    "it is $v .",          "if i remember correctly it is $v .",
};

constexpr const char* kDistractorFrames[] = {
    " btw the $k is $v .",
    " also its $k is $v .",
    " and in case you wonder the $k is $v .",
};

constexpr const char* kChitchatQuestions[] = {
    "why is $e so popular",  "what do you think about $e",
    "how do i get to $e",    "is $e worth visiting",
    "do you like $e",        "why do people love $e",
};

constexpr const char* kChitchatAnswers[] = {
    "i have no idea to be honest .", "you should check online .",
    "i love it there .",             "hard to say really .",
    "that is a matter of taste .",
};

template <size_t N>
const char* Pick(Rng& rng, const char* const (&table)[N]) {
  return table[rng.Uniform(N)];
}

/// Shared sampling state for corpus + benchmark generation.
struct Samplers {
  DiscreteSampler intents;
  std::vector<ZipfSampler> entity_by_type;

  Samplers(const World& world, double zipf_exponent)
      : intents(IntentWeights(world)) {
    for (const auto& pool : world.entities_by_type) {
      entity_by_type.emplace_back(std::max<size_t>(1, pool.size()),
                                  zipf_exponent);
    }
  }

  static std::vector<double> IntentWeights(const World& world) {
    std::vector<double> weights;
    for (const auto& intent : world.schema.intents()) {
      weights.push_back(intent.popularity);
    }
    return weights;
  }
};

/// One sampled askable fact.
struct SampledFact {
  int intent = -1;
  TermId subject = rdf::kInvalidTerm;
  TermId value = rdf::kInvalidTerm;
};

/// Samples (intent, subject) until a recorded fact exists; at most
/// `attempts` tries (KB incompleteness makes misses routine).
bool SampleFact(const World& world, Samplers& samplers, Rng& rng,
                bool zipf_entities, SampledFact* out, int attempts = 30) {
  for (int i = 0; i < attempts; ++i) {
    int intent_idx = static_cast<int>(samplers.intents.Sample(rng));
    const IntentSpec& intent = world.schema.intents()[intent_idx];
    const auto& pool = world.entities_by_type[intent.entity_type];
    if (pool.empty()) continue;
    size_t pick = zipf_entities
                      ? samplers.entity_by_type[intent.entity_type].Sample(rng)
                      : rng.Uniform(pool.size());
    if (pick >= pool.size()) pick = pool.size() - 1;
    TermId subject = pool[pick];
    const auto* values = world.FactValues(intent_idx, subject);
    if (values == nullptr || values->empty()) continue;
    out->intent = intent_idx;
    out->subject = subject;
    out->value = (*values)[rng.Uniform(values->size())];
    return true;
  }
  return false;
}

/// Picks a paraphrase index: training bank (weighted) or held-out bank.
int PickParaphrase(const IntentSpec& intent, Rng& rng, bool heldout) {
  std::vector<int> candidates;
  std::vector<double> weights;
  for (int i = 0; i < static_cast<int>(intent.paraphrases.size()); ++i) {
    if (intent.paraphrases[i].train != heldout) {
      candidates.push_back(i);
      weights.push_back(intent.paraphrases[i].weight);
    }
  }
  if (candidates.empty()) {
    // No held-out phrasing for this intent — fall back to the other bank.
    return PickParaphrase(intent, rng, !heldout);
  }
  return candidates[rng.WeightedIndex(weights)];
}

std::string RenderQuestion(const World& world, const IntentSpec& intent,
                           int paraphrase, TermId subject) {
  return ReplaceAll(intent.paraphrases[paraphrase].pattern, "$e",
                    world.kb.EntityName(subject));
}

/// A wrong-but-plausible value: the same intent's value on another subject.
std::string CorruptValue(const World& world, Rng& rng, int intent_idx,
                         TermId subject, const std::string& true_value) {
  const IntentSpec& intent = world.schema.intents()[intent_idx];
  const auto& pool = world.entities_by_type[intent.entity_type];
  for (int i = 0; i < 10; ++i) {
    TermId other = pool[rng.Uniform(pool.size())];
    if (other == subject) continue;
    const auto* values = world.FactValues(intent_idx, other);
    if (values == nullptr || values->empty()) continue;
    std::string v = world.ValueSurface((*values)[0]);
    if (v != true_value) return v;
  }
  return true_value;  // Could not find a distinct value; give up on noise.
}

/// Adds the city's country name as a "partially right" alternate for
/// city-valued intents (a country is partially right when a city is asked —
/// the paper's "place of birth" example).
void AddPartialValues(const World& world, int intent_idx, TermId target,
                      QaGold* gold) {
  const IntentSpec& intent = world.schema.intents()[intent_idx];
  if (intent.name != "person.pob" && intent.name != "company.headquarters" &&
      intent.name != "university.city") {
    return;
  }
  int country_intent = world.schema.IntentIndex("city.country");
  if (country_intent < 0) return;
  const auto* countries = world.FactValues(country_intent, target);
  if (countries != nullptr) {
    for (TermId c : *countries) {
      gold->partial_values.push_back(world.kb.EntityName(c));
    }
  }
}

long long ParseValue(const std::string& s) {
  return ParseNonNegativeInt(s);
}

}  // namespace

QaCorpus GenerateTrainingCorpus(const World& world,
                                const QaGenConfig& config) {
  QaCorpus corpus;
  corpus.pairs.reserve(config.num_pairs);
  corpus.gold.reserve(config.num_pairs);
  Rng rng(config.seed);
  Samplers samplers(world, config.zipf_exponent);

  while (corpus.pairs.size() < config.num_pairs) {
    if (rng.Bernoulli(config.chitchat_rate)) {
      // Non-factoid chatter about a random entity.
      size_t type = rng.Uniform(world.entities_by_type.size());
      const auto& pool = world.entities_by_type[type];
      if (pool.empty()) continue;
      TermId e = pool[rng.Uniform(pool.size())];
      QaPair pair;
      pair.question = ReplaceAll(Pick(rng, kChitchatQuestions), "$e",
                                 world.kb.EntityName(e));
      pair.answer = Pick(rng, kChitchatAnswers);
      QaGold gold;
      gold.is_bfq = false;
      gold.kind = "chitchat";
      corpus.pairs.push_back(std::move(pair));
      corpus.gold.push_back(std::move(gold));
      continue;
    }

    SampledFact fact;
    if (!SampleFact(world, samplers, rng, /*zipf_entities=*/true, &fact)) {
      continue;
    }
    const IntentSpec& intent = world.schema.intents()[fact.intent];
    int paraphrase = PickParaphrase(intent, rng, /*heldout=*/false);

    QaPair pair;
    pair.question = RenderQuestion(world, intent, paraphrase, fact.subject);

    QaGold gold;
    gold.is_bfq = true;
    gold.kind = "bfq";
    gold.intent = fact.intent;
    gold.entity = fact.subject;
    gold.value = fact.value;
    gold.value_string = world.ValueSurface(fact.value);
    gold.paraphrase = paraphrase;

    std::string rendered_value = gold.value_string;
    gold.answer_contains_value = true;
    if (rng.Bernoulli(config.wrong_value_rate)) {
      std::string corrupted =
          CorruptValue(world, rng, fact.intent, fact.subject, rendered_value);
      if (corrupted != rendered_value) {
        rendered_value = corrupted;
        gold.answer_contains_value = false;
      }
    }
    pair.answer = ReplaceAll(Pick(rng, kAnswerFrames), "$v", rendered_value);

    if (rng.Bernoulli(config.distractor_rate)) {
      // Mention a second fact of the same entity in the answer.
      auto other_intents = world.schema.IntentsOfType(intent.entity_type);
      for (int tries = 0; tries < 5; ++tries) {
        int oi = other_intents[rng.Uniform(other_intents.size())];
        if (oi == fact.intent) continue;
        const auto* values = world.FactValues(oi, fact.subject);
        if (values == nullptr || values->empty()) continue;
        const IntentSpec& other = world.schema.intents()[oi];
        std::string frame = Pick(rng, kDistractorFrames);
        frame = ReplaceAll(frame, "$k", other.keyword);
        frame = ReplaceAll(frame, "$v", world.ValueSurface((*values)[0]));
        pair.answer += frame;
        break;
      }
    }

    corpus.pairs.push_back(std::move(pair));
    corpus.gold.push_back(std::move(gold));
  }
  return corpus;
}

namespace {

/// Generates one non-BFQ benchmark question. Returns false on sampling
/// failure (caller retries).
bool GenerateNonBfq(const World& world, Samplers& samplers, Rng& rng,
                    QaPair* pair, QaGold* gold) {
  gold->is_bfq = false;
  // Numeric attribute intents drive superlatives/comparisons.
  std::vector<int> numeric_intents;
  for (int i = 0; i < static_cast<int>(world.schema.intents().size()); ++i) {
    const IntentSpec& intent = world.schema.intents()[i];
    if (!intent.is_relation() && intent.value_kind != ValueKind::kWord) {
      numeric_intents.push_back(i);
    }
  }
  if (numeric_intents.empty()) return false;

  // Kind mix: most real non-BFQs are open-ended (listing, opinion, why);
  // superlatives/comparisons are a minority (they are the ones a keyword
  // scanner can still answer, so their share directly tunes the hybrid
  // uplift in Table 11).
  double kind_draw = rng.UniformDouble();
  int kind = kind_draw < 0.15 ? 0 : kind_draw < 0.25 ? 1 : kind_draw < 0.6 ? 2 : 3;
  switch (kind) {
    case 0: {  // Superlative: "which city has the largest population".
      int intent_idx = numeric_intents[rng.Uniform(numeric_intents.size())];
      const IntentSpec& intent = world.schema.intents()[intent_idx];
      const auto& type = world.schema.types()[intent.entity_type];
      bool largest = rng.Bernoulli(0.5);
      long long best = -1;
      TermId best_e = rdf::kInvalidTerm;
      for (TermId e : world.entities_by_type[intent.entity_type]) {
        const auto* values = world.FactValues(intent_idx, e);
        if (values == nullptr || values->empty()) continue;
        long long v = ParseValue(world.ValueSurface((*values)[0]));
        if (v < 0) continue;
        if (best_e == rdf::kInvalidTerm || (largest ? v > best : v < best)) {
          best = v;
          best_e = e;
        }
      }
      if (best_e == rdf::kInvalidTerm) return false;
      pair->question = "which " + type.name + " has the " +
                       (largest ? std::string("largest ") : "smallest ") +
                       intent.keyword;
      gold->kind = "superlative";
      gold->intent = intent_idx;
      gold->value_string = world.kb.EntityName(best_e);
      return true;
    }
    case 1: {  // Comparison: "which has more population , x or y".
      int intent_idx = numeric_intents[rng.Uniform(numeric_intents.size())];
      const IntentSpec& intent = world.schema.intents()[intent_idx];
      const auto& pool = world.entities_by_type[intent.entity_type];
      if (pool.size() < 2) return false;
      for (int tries = 0; tries < 20; ++tries) {
        TermId a = pool[rng.Uniform(pool.size())];
        TermId b = pool[rng.Uniform(pool.size())];
        if (a == b) continue;
        const auto* va = world.FactValues(intent_idx, a);
        const auto* vb = world.FactValues(intent_idx, b);
        if (va == nullptr || vb == nullptr || va->empty() || vb->empty()) {
          continue;
        }
        long long xa = ParseValue(world.ValueSurface((*va)[0]));
        long long xb = ParseValue(world.ValueSurface((*vb)[0]));
        if (xa < 0 || xb < 0 || xa == xb) continue;
        pair->question = "which has more " + intent.keyword + " , " +
                         world.kb.EntityName(a) + " or " +
                         world.kb.EntityName(b);
        gold->kind = "comparison";
        gold->intent = intent_idx;
        gold->value_string = world.kb.EntityName(xa > xb ? a : b);
        return true;
      }
      return false;
    }
    case 2: {  // Listing: no single gold value.
      int intent_idx = numeric_intents[rng.Uniform(numeric_intents.size())];
      const IntentSpec& intent = world.schema.intents()[intent_idx];
      const auto& type = world.schema.types()[intent.entity_type];
      pair->question =
          "list all " + type.name + "s ordered by " + intent.keyword;
      gold->kind = "listing";
      return true;
    }
    default: {  // Opinion / description.
      SampledFact fact;
      if (!SampleFact(world, samplers, rng, false, &fact)) return false;
      pair->question = ReplaceAll(Pick(rng, kChitchatQuestions), "$e",
                                  world.kb.EntityName(fact.subject));
      gold->kind = "opinion";
      return true;
    }
  }
}

}  // namespace

BenchmarkSet GenerateBenchmark(const World& world,
                               const BenchmarkConfig& config) {
  BenchmarkSet set;
  set.name = config.name;
  Rng rng(config.seed);
  Samplers samplers(world, /*zipf_exponent=*/0.4);

  while (set.questions.size() < config.num_questions) {
    QaPair pair;
    QaGold gold;
    if (rng.Bernoulli(config.bfq_ratio)) {
      SampledFact fact;
      if (!SampleFact(world, samplers, rng, /*zipf_entities=*/false, &fact)) {
        continue;
      }
      const IntentSpec& intent = world.schema.intents()[fact.intent];
      bool heldout = rng.Bernoulli(config.unseen_paraphrase_rate);
      int paraphrase = PickParaphrase(intent, rng, heldout);
      pair.question = RenderQuestion(world, intent, paraphrase, fact.subject);
      gold.is_bfq = true;
      gold.kind = "bfq";
      gold.intent = fact.intent;
      gold.entity = fact.subject;
      gold.value = fact.value;
      gold.value_string = world.ValueSurface(fact.value);
      gold.paraphrase = paraphrase;
      gold.unseen_paraphrase = !intent.paraphrases[paraphrase].train;
      // Multi-valued facts: every sibling value is an equally right answer.
      if (const auto* values = world.FactValues(fact.intent, fact.subject)) {
        for (rdf::TermId v : *values) {
          if (v != fact.value) {
            gold.correct_alternates.push_back(world.ValueSurface(v));
          }
        }
      }
      if (intent.is_relation()) {
        AddPartialValues(world, fact.intent, fact.value, &gold);
      }
      ++set.num_bfq;
    } else {
      if (!GenerateNonBfq(world, samplers, rng, &pair, &gold)) continue;
    }
    set.questions.pairs.push_back(std::move(pair));
    set.questions.gold.push_back(std::move(gold));
  }
  return set;
}

std::vector<std::string> GenerateWebDocs(const World& world,
                                         size_t num_sentences, uint64_t seed) {
  static constexpr const char* kStatementFrames[] = {
      "the $k of $e is $v",
      "$e 's $k is $v",
      "$v is the $k of $e",
      "the $k of $e was $v",
      "everyone knows the $k of $e is $v",
  };
  static constexpr const char* kNoiseFrames[] = {
      "$e is quite famous these days",
      "people keep talking about $e",
      "$e made the headlines again",
  };
  std::vector<std::string> docs;
  docs.reserve(num_sentences);
  Rng rng(seed);
  Samplers samplers(world, 0.8);
  while (docs.size() < num_sentences) {
    if (rng.Bernoulli(0.2)) {
      size_t type = rng.Uniform(world.entities_by_type.size());
      const auto& pool = world.entities_by_type[type];
      if (pool.empty()) continue;
      TermId e = pool[rng.Uniform(pool.size())];
      docs.push_back(ReplaceAll(Pick(rng, kNoiseFrames), "$e",
                                world.kb.EntityName(e)));
      continue;
    }
    SampledFact fact;
    if (!SampleFact(world, samplers, rng, /*zipf_entities=*/true, &fact)) {
      continue;
    }
    const IntentSpec& intent = world.schema.intents()[fact.intent];
    std::string s = Pick(rng, kStatementFrames);
    s = ReplaceAll(s, "$k", intent.keyword);
    s = ReplaceAll(s, "$e", world.kb.EntityName(fact.subject));
    s = ReplaceAll(s, "$v", world.ValueSurface(fact.value));
    docs.push_back(std::move(s));
  }
  return docs;
}

}  // namespace kbqa::corpus
