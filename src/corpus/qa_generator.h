#ifndef KBQA_CORPUS_QA_GENERATOR_H_
#define KBQA_CORPUS_QA_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "corpus/qa_corpus.h"
#include "corpus/world.h"

namespace kbqa::corpus {

/// Knobs for training-corpus generation — the Yahoo! Answers stand-in.
struct QaGenConfig {
  uint64_t seed = 7;
  size_t num_pairs = 100000;
  /// Probability that the answer sentence carries a *wrong* value.
  double wrong_value_rate = 0.05;
  /// Probability that the answer additionally mentions a second fact of the
  /// same entity (the paper's "(Barack Obama, politician)" noise pair that
  /// the refinement step must filter).
  double distractor_rate = 0.25;
  /// Fraction of pairs that are non-factoid chit-chat.
  double chitchat_rate = 0.10;
  /// Zipf exponent for entity popularity (famous entities sit at rank 0).
  double zipf_exponent = 0.8;
};

/// Generates a noisy community-QA training corpus from the world.
QaCorpus GenerateTrainingCorpus(const World& world, const QaGenConfig& config);

/// Knobs for benchmark generation (QALD-/WebQuestions-like test sets).
struct BenchmarkConfig {
  std::string name = "benchmark";
  uint64_t seed = 11;
  size_t num_questions = 50;
  /// Fraction of questions that are BFQs (Table 5: QALD-5 0.24, QALD-3
  /// 0.41, QALD-1 0.54; WebQuestions lower).
  double bfq_ratio = 0.5;
  /// Fraction of BFQs phrased with a held-out paraphrase. At the paper's
  /// corpus scale (41M pairs) most benchmark phrasings have been seen;
  /// rare-template misses still dominate KBQA's failures (§7.3.1's recall
  /// analysis) at this rate.
  double unseen_paraphrase_rate = 0.20;
};

/// A labeled benchmark: questions plus gold annotations (the QaGold of
/// non-BFQs carries the gold value when one is computable, so baselines
/// that handle superlatives can be scored).
struct BenchmarkSet {
  std::string name;
  QaCorpus questions;
  size_t num_bfq = 0;
};

/// Generates one benchmark set.
BenchmarkSet GenerateBenchmark(const World& world,
                               const BenchmarkConfig& config);

/// Generates the synthetic "web documents" sentence corpus the
/// bootstrapping baseline [14, 28] learns BOA-style patterns from:
/// declarative sentences such as "the population of honolulu is 390000".
std::vector<std::string> GenerateWebDocs(const World& world,
                                         size_t num_sentences, uint64_t seed);

}  // namespace kbqa::corpus

#endif  // KBQA_CORPUS_QA_GENERATOR_H_
