#include "corpus/schema.h"

#include <algorithm>
#include <cassert>

namespace kbqa::corpus {

namespace {

using nlp::QuestionClass;

// Shorthand paraphrase constructors. `P` is a training pattern, `Pw` a
// weighted one (weights < 1 model rare/ambiguous phrasings), `H` a held-out
// test-only pattern.
Paraphrase P(std::string pattern) { return {std::move(pattern), 1.0, true}; }
Paraphrase Pw(std::string pattern, double weight) {
  return {std::move(pattern), weight, true};
}
Paraphrase H(std::string pattern) { return {std::move(pattern), 1.0, false}; }

struct IntentBuilder {
  IntentSpec spec;

  IntentBuilder(std::string name, int entity_type) {
    spec.name = std::move(name);
    spec.entity_type = entity_type;
  }
  IntentBuilder& Attribute(std::vector<std::string> path, ValueKind kind,
                           long long lo, long long hi,
                           QuestionClass answer_class) {
    spec.path = std::move(path);
    spec.value_kind = kind;
    spec.min_value = lo;
    spec.max_value = hi;
    spec.answer_class = answer_class;
    return *this;
  }
  IntentBuilder& Words(std::string pred, std::vector<std::string> words,
                       QuestionClass answer_class) {
    spec.path = {std::move(pred)};
    spec.value_kind = ValueKind::kWord;
    spec.word_values = std::move(words);
    spec.answer_class = answer_class;
    return *this;
  }
  IntentBuilder& Relation(std::vector<std::string> path, int target_type,
                          QuestionClass answer_class,
                          std::string subcategory = "") {
    spec.path = std::move(path);
    spec.target_type = target_type;
    spec.answer_class = answer_class;
    spec.target_subcategory = std::move(subcategory);
    return *this;
  }
  IntentBuilder& Fanout(int lo, int hi) {
    spec.min_fanout = lo;
    spec.max_fanout = hi;
    return *this;
  }
  IntentBuilder& Popularity(double p) {
    spec.popularity = p;
    return *this;
  }
  IntentBuilder& NoInfobox() {
    spec.in_infobox = false;
    return *this;
  }
  IntentBuilder& Phrases(std::vector<Paraphrase> paraphrases) {
    spec.paraphrases = std::move(paraphrases);
    return *this;
  }
  IntentBuilder& Keyword(std::string keyword) {
    spec.keyword = std::move(keyword);
    return *this;
  }
  IntentSpec Build() {
    assert(!spec.path.empty());
    assert(!spec.paraphrases.empty());
    if (spec.keyword.empty()) {
      // Default: last non-"name" predicate, underscores spelled as spaces.
      for (auto it = spec.path.rbegin(); it != spec.path.rend(); ++it) {
        if (*it != "name") {
          spec.keyword = *it;
          for (char& c : spec.keyword) {
            if (c == '_') c = ' ';
          }
          break;
        }
      }
    }
    return std::move(spec);
  }
};

// Word pools for synthesized generic intents. Kept disjoint from the
// hand-authored head words so generic intents don't collide with them.
constexpr const char* kGenericAttributeWords[] = {
    "velocity", "capacity", "rating",  "ranking", "altitude", "density",
    "score",    "output",   "intake",  "volume",  "tariff",   "quota",
    "yield",    "margin",   "surplus", "grade",   "tier",     "span",
    "budget",   "backlog",  "uptime",  "latency", "turnover", "valuation"};
constexpr const char* kGenericRoleWords[] = {
    "patron",     "sponsor", "advisor",  "ambassador", "delegate",
    "liaison",    "curator", "trustee",  "registrar",  "steward",
    "chancellor", "warden",  "emissary", "treasurer",  "archivist"};

void AddGenericIntents(Schema& schema, const SchemaConfig& config) {
  auto& intents = schema.mutable_intents();
  const auto& types = schema.types();
  int person_type = schema.TypeIndex("person");
  assert(person_type >= 0);

  constexpr int kNumAttrWords =
      static_cast<int>(std::size(kGenericAttributeWords));
  constexpr int kNumRoleWords = static_cast<int>(std::size(kGenericRoleWords));

  for (int t = 0; t < static_cast<int>(types.size()); ++t) {
    const std::string& type_name = types[t].name;
    // Literal attributes: "what is the <word> of $e" families. Predicate
    // names are type-qualified so every type contributes distinct
    // predicates (the paper's KB has 2658 distinct predicates).
    for (int a = 0; a < config.generic_attributes_per_type; ++a) {
      const std::string word = kGenericAttributeWords[a % kNumAttrWords];
      std::string attr =
          a < kNumAttrWords ? word : word + " factor";  // keep names unique
      // Opaque predicate id, Freebase-style: the surface word ("tariff")
      // does NOT appear in the predicate name, so keyword matching cannot
      // shortcut these intents — only learned representations (templates,
      // bootstrapped phrases) reach them, as in the paper's argument.
      std::string pred = type_name + "_attr_" + std::to_string(a);
      IntentBuilder b(type_name + "." + word + (a < kNumAttrWords ? "" : "_factor"), t);
      b.Attribute({pred}, ValueKind::kNumber, 1, 100000,
                  QuestionClass::kNumeric)
          .Keyword(attr)
          .Popularity(0.15)
          .Phrases({
              P("what is the " + attr + " of $e"),
              P("what 's the " + attr + " of $e"),
              P("what is $e 's " + attr),
              P("tell me the " + attr + " of $e"),
              Pw("how much " + attr + " does $e have", 0.5),
              H("could you tell me the " + attr + " of $e"),
          });
      intents.push_back(b.Build());
    }
    // Person-valued relations, alternating direct (length-2 path) and
    // CVT-mediated (length-3 path) shapes.
    for (int r = 0; r < config.generic_relations_per_type; ++r) {
      const std::string role = kGenericRoleWords[(t * 7 + r) % kNumRoleWords];
      bool cvt = (r % 2 == 1);
      std::string pred = type_name + "_rel_" + std::to_string(r);
      std::vector<std::string> path =
          cvt ? std::vector<std::string>{pred + "_post", "person", "name"}
              : std::vector<std::string>{pred, "name"};
      IntentBuilder b(type_name + "." + role, t);
      b.Relation(std::move(path), person_type, QuestionClass::kHuman)
          .Keyword(role)
          .Popularity(0.15)
          .NoInfobox()
          .Phrases({
              P("who is the " + role + " of $e"),
              P("who is $e 's " + role),
              P("name the " + role + " of $e"),
              Pw("who serves as " + role + " of $e", 0.5),
              H("who acts as the " + role + " for $e"),
          });
      intents.push_back(b.Build());
    }
  }
}

}  // namespace

int Schema::TypeIndex(std::string_view name) const {
  for (int i = 0; i < static_cast<int>(types_.size()); ++i) {
    if (types_[i].name == name) return i;
  }
  return -1;
}

int Schema::IntentIndex(std::string_view name) const {
  for (int i = 0; i < static_cast<int>(intents_.size()); ++i) {
    if (intents_[i].name == name) return i;
  }
  return -1;
}

std::vector<int> Schema::IntentsOfType(int type) const {
  std::vector<int> out;
  for (int i = 0; i < static_cast<int>(intents_.size()); ++i) {
    if (intents_[i].entity_type == type) out.push_back(i);
  }
  return out;
}

Schema Schema::Standard(const SchemaConfig& config) {
  Schema schema;
  auto scaled = [&](size_t n) {
    return std::max<size_t>(1, static_cast<size_t>(n * config.scale));
  };

  schema.types_ = {
      {"person", "$person", NameStyle::kPerson, scaled(4000)},
      {"city", "$city", NameStyle::kPlace, scaled(1200)},
      {"country", "$country", NameStyle::kCountry, scaled(150)},
      {"company", "$company", NameStyle::kCompany, scaled(800)},
      {"book", "$book", NameStyle::kTitle, scaled(800)},
      {"band", "$band", NameStyle::kBand, scaled(300)},
      {"film", "$film", NameStyle::kTitle, scaled(800)},
      {"river", "$river", NameStyle::kRiver, scaled(250)},
      {"university", "$university", NameStyle::kUniversity, scaled(250)},
      {"fruit", "$fruit", NameStyle::kWord, scaled(40)},
  };

  const int kPerson = 0, kCity = 1, kCountry = 2, kCompany = 3, kBook = 4,
            kBand = 5, kFilm = 6, kRiver = 7, kUniversity = 8, kFruit = 9;
  using QC = QuestionClass;
  auto& intents = schema.intents_;

  // ---- person ----
  intents.push_back(
      IntentBuilder("person.dob", kPerson)
          .Attribute({"dob"}, ValueKind::kYear, 1900, 2000, QC::kNumeric)
          .Popularity(3.0)
          .Phrases({P("when was $e born"), P("what year was $e born"),
                    P("what is the birthday of $e"),
                    P("what is $e 's date of birth"),
                    P("what is the birth date of $e"),
                    Pw("the birthday of $e", 0.4),
                    Pw("when is $e 's birthday", 0.6),
                    H("in which year was $e born")})
          .Build());
  intents.push_back(
      IntentBuilder("person.pob", kPerson)
          .Relation({"pob", "name"}, kCity, QC::kLocation)
          .Popularity(2.0)
          .Phrases({P("where was $e born"), P("what is the birthplace of $e"),
                    P("in which city was $e born"),
                    Pw("the birthplace of $e", 0.4),
                    H("what city is $e from")})
          .Build());
  intents.push_back(
      IntentBuilder("person.spouse", kPerson)
          .Relation({"marriage", "person", "name"}, kPerson, QC::kHuman)
          .Keyword("wife")
          .Popularity(3.0)
          .Phrases({P("who is the wife of $e"), P("who is the husband of $e"),
                    P("who is $e married to"), P("who is $e 's wife"),
                    P("who is $e 's husband"),
                    P("what is the name of $e 's spouse"),
                    Pw("$e 's wife", 0.4), Pw("$e 's spouse", 0.3),
                    H("who did $e marry")})
          .Build());
  intents.push_back(
      IntentBuilder("person.height", kPerson)
          .Attribute({"height"}, ValueKind::kNumber, 150, 210, QC::kNumeric)
          .Phrases({P("how tall is $e"), P("what is the height of $e"),
                    P("what is $e 's height"), H("what height is $e")})
          .Build());
  intents.push_back(
      IntentBuilder("person.instrument", kPerson)
          .Words("instrument", {"guitar", "piano", "drums", "bass", "violin", "cello",
                  "trumpet", "saxophone"},
                 QC::kEntity)
          .Phrases({P("what instrument does $e play"),
                    P("which instrument does $e play"),
                    Pw("what instrument do $e play", 0.2),
                    Pw("what does $e play", 0.5),
                    H("what instrument is played by $e")})
          .Build());
  intents.push_back(
      IntentBuilder("person.profession", kPerson)
          .Words("profession", {"politician", "engineer", "teacher", "musician", "writer",
                  "scientist", "lawyer", "doctor", "painter", "economist"},
                 QC::kEntity)
          .Phrases({P("what does $e do for a living"),
                    P("what is the profession of $e"),
                    P("what is $e 's job"),
                    H("what is the occupation of $e")})
          .Build());
  intents.push_back(
      IntentBuilder("person.works", kPerson)
          .Relation({"work", "name"}, kBook, QC::kEntity)
          .Fanout(1, 3)
          .Phrases({P("what are books written by $e"),
                    P("what books did $e write"),
                    P("which books were written by $e"),
                    Pw("what did $e write", 0.5),
                    H("name the books of $e")})
          .Build());

  // ---- city ----
  intents.push_back(
      IntentBuilder("city.population", kCity)
          .Attribute({"population"}, ValueKind::kNumber, 10000, 20000000,
                     QC::kNumeric)
          .Popularity(3.0)
          .Phrases({P("how many people are there in $e"),
                    P("what is the population of $e"),
                    P("how many people live in $e"),
                    P("what is the total number of people in $e"),
                    P("what is the number of inhabitants of $e"),
                    Pw("how big is $e", 0.3),
                    H("how many inhabitants does $e have")})
          .Build());
  intents.push_back(
      IntentBuilder("city.area", kCity)
          .Attribute({"area"}, ValueKind::kNumber, 50, 5000, QC::kNumeric)
          .Popularity(2.0)
          .Phrases({P("what is the area of $e"), P("how large is $e"),
                    P("what is the size of $e"), Pw("how big is $e", 0.3),
                    H("how much area does $e cover")})
          .Build());
  intents.push_back(
      IntentBuilder("city.mayor", kCity)
          .Relation({"mayor", "name"}, kPerson, QC::kHuman, "$politician")
          .Phrases({P("who is the mayor of $e"), P("who is $e 's mayor"),
                    Pw("who runs $e", 0.3), H("who governs $e")})
          .Build());
  intents.push_back(
      IntentBuilder("city.country", kCity)
          .Relation({"country", "name"}, kCountry, QC::kLocation)
          .Popularity(2.0)
          .Phrases({P("in which country is $e"), P("which country is $e in"),
                    P("what country is $e located in"),
                    P("in which country is $e located"),
                    Pw("where is $e", 0.3),
                    H("what country does $e belong to")})
          .Build());

  // ---- country ----
  intents.push_back(
      IntentBuilder("country.capital", kCountry)
          .Relation({"capital", "name"}, kCity, QC::kLocation)
          .Popularity(3.0)
          .Phrases({P("what is the capital of $e"),
                    P("which city is the capital of $e"),
                    P("what is the capital city of $e"),
                    Pw("the capital of $e", 0.4),
                    H("name the capital of $e")})
          .Build());
  intents.push_back(
      IntentBuilder("country.population", kCountry)
          .Attribute({"population"}, ValueKind::kNumber, 500000, 1400000000,
                     QC::kNumeric)
          .Popularity(2.0)
          .Phrases({P("how many people are there in $e"),
                    P("what is the population of $e"),
                    P("how many people live in $e"),
                    H("how many inhabitants does $e have")})
          .Build());
  intents.push_back(
      IntentBuilder("country.area", kCountry)
          .Attribute({"area"}, ValueKind::kNumber, 1000, 17000000,
                     QC::kNumeric)
          .Phrases({P("what is the area of $e"), P("how large is $e"),
                    Pw("how big is $e", 0.3),
                    H("how much area does $e cover")})
          .Build());
  intents.push_back(
      IntentBuilder("country.currency", kCountry)
          .Words("currency", {"peso", "dinar", "krona", "franc", "rupee", "shilling",
                  "dollar", "euro", "yen", "pound"},
                 QC::kEntity)
          .Phrases({P("what currency is used in $e"),
                    P("what is the currency of $e"),
                    P("which currency does $e use"),
                    H("what money do they use in $e")})
          .Build());
  intents.push_back(
      IntentBuilder("country.head", kCountry)
          .Relation({"government", "person", "name"}, kPerson, QC::kHuman,
                    "$politician")
          .Keyword("president")
          .Popularity(2.0)
          .Phrases({P("who is the president of $e"),
                    P("who is the leader of $e"), Pw("who leads $e", 0.5),
                    P("who is the head of state of $e"),
                    H("who rules $e")})
          .Build());

  // ---- company ----
  intents.push_back(
      IntentBuilder("company.ceo", kCompany)
          .Relation({"leadership", "person", "name"}, kPerson, QC::kHuman,
                    "$executive")
          .Keyword("ceo")
          .Popularity(2.0)
          .Phrases({P("who is the ceo of $e"),
                    P("who is the chief executive of $e"),
                    P("who is $e 's ceo"), Pw("who runs $e", 0.3),
                    Pw("the ceo of $e", 0.3),
                    H("who manages $e")})
          .Build());
  intents.push_back(
      IntentBuilder("company.headquarters", kCompany)
          .Relation({"headquarters", "name"}, kCity, QC::kLocation)
          .Popularity(2.0)
          .Phrases({P("where is the headquarter of $e"),
                    P("where is $e headquartered"),
                    P("what is the headquarter of $e"),
                    P("in which city is the headquarter of $e"),
                    P("where is the headquarters of $e located"),
                    Pw("the headquarter of $e", 0.3),
                    H("where is $e based")})
          .Build());
  intents.push_back(
      IntentBuilder("company.founder", kCompany)
          .Relation({"founder", "name"}, kPerson, QC::kHuman, "$executive")
          .Phrases({P("who founded $e"), P("who is the founder of $e"),
                    Pw("who started $e", 0.6), H("who created $e")})
          .Build());
  intents.push_back(
      IntentBuilder("company.founded", kCompany)
          .Attribute({"founded"}, ValueKind::kYear, 1850, 2015, QC::kNumeric)
          .Phrases({P("when was $e founded"), P("what year was $e founded"),
                    P("when was $e established"),
                    H("in which year was $e created")})
          .Build());
  intents.push_back(
      IntentBuilder("company.employees", kCompany)
          .Attribute({"employees"}, ValueKind::kNumber, 10, 500000,
                     QC::kNumeric)
          .Phrases({P("how many employees does $e have"),
                    P("how many people work at $e"),
                    Pw("how many people are there in $e", 0.2),
                    H("what is the headcount of $e")})
          .Build());
  intents.push_back(
      IntentBuilder("company.revenue", kCompany)
          .Attribute({"revenue"}, ValueKind::kNumber, 100000, 2000000000,
                     QC::kNumeric)
          .Phrases({P("what is the revenue of $e"),
                    P("how much money does $e make"),
                    H("what is the annual revenue of $e")})
          .Build());

  // ---- book ----
  intents.push_back(
      IntentBuilder("book.author", kBook)
          .Relation({"author", "name"}, kPerson, QC::kHuman, "$author")
          .Popularity(2.0)
          .Phrases({P("who wrote $e"), P("who is the author of $e"),
                    P("who is the writer of $e"),
                    Pw("the author of $e", 0.4),
                    Pw("author of $e", 0.3),
                    H("by whom was $e written")})
          .Build());
  intents.push_back(
      IntentBuilder("book.published", kBook)
          .Attribute({"published"}, ValueKind::kYear, 1900, 2015, QC::kNumeric)
          .Phrases({P("when was $e published"),
                    P("what year was $e published"),
                    Pw("when did $e come out", 0.5),
                    H("when was $e first printed")})
          .Build());
  intents.push_back(
      IntentBuilder("book.pages", kBook)
          .Attribute({"pages"}, ValueKind::kNumber, 80, 1500, QC::kNumeric)
          .Phrases({P("how many pages does $e have"),
                    Pw("how long is $e", 0.3),
                    H("what is the page count of $e")})
          .Build());

  // ---- band ----
  intents.push_back(
      IntentBuilder("band.members", kBand)
          .Relation({"membership", "member", "name"}, kPerson, QC::kHuman,
                    "$musician")
          .Fanout(3, 5)
          .Popularity(2.0)
          .Phrases({P("who are the members of $e"),
                    P("what are the members of $e"), P("who is in $e"),
                    P("who plays in $e"), Pw("members of $e", 0.4),
                    H("who belongs to $e")})
          .Build());
  intents.push_back(
      IntentBuilder("band.formed", kBand)
          .Attribute({"formed"}, ValueKind::kYear, 1950, 2015, QC::kNumeric)
          .Phrases({P("when was $e formed"), P("when did $e form"),
                    Pw("when was $e founded", 0.5),
                    H("what year did $e start")})
          .Build());
  intents.push_back(
      IntentBuilder("band.genre", kBand)
          .Words("genre", {"rock", "jazz", "pop", "folk", "metal", "blues", "punk",
                  "soul"},
                 QC::kEntity)
          .Phrases({P("what genre is $e"),
                    P("what kind of music does $e play"),
                    P("what type of music is $e"),
                    H("which genre does $e belong to")})
          .Build());

  // ---- film ----
  intents.push_back(
      IntentBuilder("film.director", kFilm)
          .Relation({"director", "name"}, kPerson, QC::kHuman)
          .Popularity(2.0)
          .Phrases({P("who directed $e"), P("who is the director of $e"),
                    Pw("the director of $e", 0.4),
                    H("who was $e directed by")})
          .Build());
  intents.push_back(
      IntentBuilder("film.released", kFilm)
          .Attribute({"released"}, ValueKind::kYear, 1920, 2016, QC::kNumeric)
          .Phrases({P("when was $e released"),
                    P("what year did $e come out"),
                    Pw("when did $e come out", 0.5),
                    H("when was $e in theaters")})
          .Build());
  intents.push_back(
      IntentBuilder("film.budget", kFilm)
          .Attribute({"budget"}, ValueKind::kNumber, 100000, 300000000,
                     QC::kNumeric)
          .Phrases({P("what was the budget of $e"),
                    P("how much did $e cost"),
                    H("how expensive was $e to make")})
          .Build());

  // ---- river ----
  intents.push_back(
      IntentBuilder("river.length", kRiver)
          .Attribute({"length"}, ValueKind::kNumber, 50, 7000, QC::kNumeric)
          .Popularity(2.0)
          .Phrases({P("how long is $e"), P("what is the length of $e"),
                    P("how many miles long is $e"),
                    H("what length is $e")})
          .Build());
  intents.push_back(
      IntentBuilder("river.country", kRiver)
          .Relation({"country", "name"}, kCountry, QC::kLocation)
          .Phrases({P("which country does $e flow through"),
                    P("in which country is $e"), Pw("where is $e", 0.3),
                    H("through which country does $e run")})
          .Build());

  // ---- university ----
  intents.push_back(
      IntentBuilder("university.established", kUniversity)
          .Attribute({"established"}, ValueKind::kYear, 1100, 2000,
                     QC::kNumeric)
          .Phrases({P("when was $e established"),
                    Pw("when was $e founded", 0.5),
                    H("what year was $e established")})
          .Build());
  intents.push_back(
      IntentBuilder("university.students", kUniversity)
          .Attribute({"students"}, ValueKind::kNumber, 500, 80000,
                     QC::kNumeric)
          .Phrases({P("how many students does $e have"),
                    P("how many students are enrolled at $e"),
                    Pw("how many people are there in $e", 0.2),
                    H("what is the enrollment of $e")})
          .Build());
  intents.push_back(
      IntentBuilder("university.city", kUniversity)
          .Relation({"city", "name"}, kCity, QC::kLocation)
          .Phrases({P("in which city is $e"), P("where is $e located"),
                    Pw("where is $e", 0.3), H("what city is $e in")})
          .Build());

  // ---- second wave of hand intents (children, casting, language, ...) ----
  intents.push_back(
      IntentBuilder("person.children", kPerson)
          .Relation({"child", "name"}, kPerson, QC::kHuman)
          .Fanout(1, 3)
          .Phrases({P("who are the children of $e"),
                    P("who is the child of $e"),
                    P("name the children of $e"),
                    H("who are $e 's kids")})
          .Build());
  intents.push_back(
      IntentBuilder("film.star", kFilm)
          .Relation({"casting", "actor", "name"}, kPerson, QC::kHuman)
          .Fanout(2, 4)
          .Keyword("star")
          .Phrases({P("who stars in $e"), P("who acted in $e"),
                    P("who are the actors of $e"),
                    Pw("who is in $e", 0.3),  // shared with band.members
                    H("who played in $e")})
          .Build());
  intents.push_back(
      IntentBuilder("country.language", kCountry)
          .Words("language", {"spanish", "french", "arabic", "hindi",
                              "mandarin", "swahili", "english", "russian"},
                 QC::kEntity)
          .Phrases({P("what language is spoken in $e"),
                    P("what language do they speak in $e"),
                    P("what is the official language of $e"),
                    H("which language is used in $e")})
          .Build());
  intents.push_back(
      IntentBuilder("band.origin", kBand)
          .Relation({"origin", "name"}, kCity, QC::kLocation)
          .Phrases({P("where is $e from"), P("which city is $e from"),
                    P("what city does $e come from"),
                    H("where was $e formed")})
          .Build());
  intents.push_back(
      IntentBuilder("company.parent", kCompany)
          .Relation({"parent", "name"}, kCompany, QC::kEntity)
          .Keyword("parent company")
          .Phrases({P("what company owns $e"),
                    P("which company is the parent of $e"),
                    P("what is the parent company of $e"),
                    H("which company controls $e")})
          .Build());
  intents.push_back(
      IntentBuilder("film.genre", kFilm)
          .Words("film_genre", {"drama", "comedy", "thriller", "horror",
                                "romance", "documentary", "animation",
                                "western"},
                 QC::kEntity)
          .Keyword("genre")
          .Phrases({P("what genre is $e"),  // shared surface with band.genre
                    P("what kind of film is $e"),
                    P("what type of movie is $e"),
                    H("which genre does $e belong to")})
          .Build());

  // ---- fruit ----
  intents.push_back(
      IntentBuilder("fruit.color", kFruit)
          .Words("color", {"red", "green", "yellow", "orange", "purple"}, QC::kEntity)
          .Phrases({P("what color is $e"), P("what is the color of $e"),
                    H("which color does $e have")})
          .Build());
  intents.push_back(
      IntentBuilder("fruit.calories", kFruit)
          .Attribute({"calories"}, ValueKind::kNumber, 20, 300, QC::kNumeric)
          .Phrases({P("how many calories does $e have"),
                    P("how many calories are in $e"),
                    H("what is the calorie count of $e")})
          .Build());

  AddGenericIntents(schema, config);
  return schema;
}

}  // namespace kbqa::corpus
