#ifndef KBQA_CORPUS_SCHEMA_H_
#define KBQA_CORPUS_SCHEMA_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "corpus/name_generator.h"
#include "nlp/question_classifier.h"

namespace kbqa::corpus {

/// How an attribute intent's literal values are rendered.
enum class ValueKind {
  kNumber,  // plain integer in [min_value, max_value]
  kYear,    // four-digit year in [min_value, max_value]
  kWord,    // drawn from IntentSpec::word_values
};

/// One natural-language phrasing of an intent. `pattern` contains the
/// entity slot "$e"; tokens are lowercase and pre-tokenized (possessives
/// written as "$e 's").
struct Paraphrase {
  std::string pattern;
  /// Relative sampling weight when generating training questions.
  double weight = 1.0;
  /// False => held out of the training corpus; used only by benchmark
  /// generation. This is what keeps test recall below 1.
  bool train = true;
};

/// A question intent: one askable fact family, bound to a predicate path in
/// the knowledge base. Attribute intents end at a literal; relation intents
/// point at an entity of `target_type` and their paths end with "name" —
/// this is how the paper's "over 98% of intents correspond to complex
/// structures" materializes (spouse = marriage -> person -> name).
struct IntentSpec {
  std::string name;  // e.g. "city.population"
  /// Index of the subject entity type in Schema::types().
  int entity_type = -1;
  /// Predicate names forming the path from the subject to the value.
  std::vector<std::string> path;
  /// Target entity type for relations; -1 for literal attributes.
  int target_type = -1;
  /// Extra category granted to relation targets (e.g. the mayor of a city
  /// is also a "$politician"); empty for none.
  std::string target_subcategory;
  /// Expected UIUC answer class — the "manually labeled predicate
  /// category" of §4.1.1's refinement step.
  nlp::QuestionClass answer_class = nlp::QuestionClass::kEntity;

  // Attribute value rendering (ignored for relations).
  ValueKind value_kind = ValueKind::kNumber;
  long long min_value = 1;
  long long max_value = 1000000;
  std::vector<std::string> word_values;

  /// Number of values per subject, drawn uniformly in [min_fanout,
  /// max_fanout] (band members: several; birthdays: one).
  int min_fanout = 1;
  int max_fanout = 1;

  /// Display noun for the fact ("population", "wife", "capital") — used by
  /// the synthetic web-doc corpus that the bootstrapping baseline learns
  /// from. Defaults to the last non-"name" path predicate, '_' -> ' '.
  std::string keyword;

  /// Relative frequency of this intent in the QA corpus.
  double popularity = 1.0;
  /// Whether the fact belongs to the entity's infobox (meaningful core
  /// fact) — drives valid(k) in §6.3.
  bool in_infobox = true;

  std::vector<Paraphrase> paraphrases;

  bool is_relation() const { return target_type >= 0; }
  /// Path length of the fully expanded predicate (relations add the final
  /// name edge already included in `path`).
  size_t path_length() const { return path.size(); }
};

/// One entity type: its KB type name, taxonomy category, surface-name style
/// and instance count.
struct EntityTypeSpec {
  std::string name;      // "city"
  std::string category;  // "$city"
  NameStyle name_style = NameStyle::kWord;
  size_t count = 100;
};

/// Knobs for Schema::Standard().
struct SchemaConfig {
  /// Instance-count multiplier over the built-in per-type defaults.
  double scale = 1.0;
  /// Synthesized literal attributes per entity type (pushes the intent /
  /// predicate counts toward the paper's thousands).
  int generic_attributes_per_type = 5;
  /// Synthesized person-valued relations per entity type; alternate between
  /// direct (length-2) and CVT-mediated (length-3) forms. Relations
  /// dominate on purpose: the paper finds over 98% of intents correspond
  /// to complex (multi-edge) structures, which is what makes predicate
  /// expansion load-bearing (Table 16). Capped at 15 distinct role words.
  int generic_relations_per_type = 14;
};

/// The world schema: entity types + intents. `Standard()` builds the
/// hand-authored core (35 intents with rich, partially ambiguous paraphrase
/// banks, including every running example of the paper) and synthesizes
/// generic intents for scale.
class Schema {
 public:
  static Schema Standard(const SchemaConfig& config);
  static Schema Standard() { return Standard(SchemaConfig()); }

  const std::vector<EntityTypeSpec>& types() const { return types_; }
  const std::vector<IntentSpec>& intents() const { return intents_; }

  /// Index of the type with the given name, or -1.
  int TypeIndex(std::string_view name) const;
  /// Index of the intent with the given name, or -1.
  int IntentIndex(std::string_view name) const;
  /// All intent indexes whose subject is `type`.
  std::vector<int> IntentsOfType(int type) const;

  // Mutable access for tests / custom worlds.
  std::vector<EntityTypeSpec>& mutable_types() { return types_; }
  std::vector<IntentSpec>& mutable_intents() { return intents_; }

 private:
  std::vector<EntityTypeSpec> types_;
  std::vector<IntentSpec> intents_;
};

}  // namespace kbqa::corpus

#endif  // KBQA_CORPUS_SCHEMA_H_
