#ifndef KBQA_CORPUS_WORLD_H_
#define KBQA_CORPUS_WORLD_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "corpus/schema.h"
#include "nlp/question_classifier.h"
#include "rdf/knowledge_base.h"
#include "taxonomy/taxonomy.h"

namespace kbqa::corpus {

/// The synthetic stand-in for Wikipedia Infobox (§6.3): per entity, the set
/// of object terms that are "core facts". valid(k) asks only whether some
/// predicate connects (s, o) in the infobox, so storing (s, o) pairs is
/// exactly sufficient.
class Infobox {
 public:
  void Add(rdf::TermId subject, rdf::TermId object) {
    facts_[subject].insert(object);
  }
  bool Contains(rdf::TermId subject, rdf::TermId object) const {
    auto it = facts_.find(subject);
    return it != facts_.end() && it->second.count(object) > 0;
  }
  size_t num_subjects() const { return facts_.size(); }
  size_t num_facts() const {
    size_t n = 0;
    for (const auto& [s, objs] : facts_) {
      (void)s;
      n += objs.size();
    }
    return n;
  }

 private:
  std::unordered_map<rdf::TermId, std::unordered_set<rdf::TermId>> facts_;
};

/// A fully generated world: schema + KB + taxonomy + infobox + the gold
/// fact catalog that drives QA/benchmark generation. This bundle replaces
/// KBA/Freebase/DBpedia + Probase + Wikipedia in the paper's setup.
struct World {
  Schema schema;
  rdf::KnowledgeBase kb;
  taxonomy::Taxonomy taxonomy;
  Infobox infobox;

  /// Entities of each schema type (famous seed entities first — they are
  /// the most popular under the Zipf sampling of the QA generator).
  std::vector<std::vector<rdf::TermId>> entities_by_type;

  /// Gold fact catalog: FactKey(intent, subject) -> value terms. For
  /// attribute intents the terms are literals; for relations they are the
  /// *target entities* (surface value = the target's name).
  std::unordered_map<uint64_t, std::vector<rdf::TermId>> facts;

  /// Per-predicate answer-class labels ("manually labeled predicate
  /// categories" of §4.1.1). The name predicate is transparent/unlabeled.
  std::unordered_map<rdf::PredId, nlp::QuestionClass> predicate_class;

  /// Name-like predicates (tails admitted for expanded predicates >= 2).
  std::unordered_set<rdf::PredId> name_like;

  /// Alias-bearing predicates beyond `name` (fed to the NER gazetteer).
  std::vector<rdf::PredId> alias_predicates;

  static uint64_t FactKey(int intent, rdf::TermId subject) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(intent)) << 32) |
           subject;
  }

  /// Values recorded for (intent, subject); empty when the fact is missing
  /// (KB incompleteness is generated on purpose).
  const std::vector<rdf::TermId>* FactValues(int intent,
                                             rdf::TermId subject) const {
    auto it = facts.find(FactKey(intent, subject));
    return it == facts.end() ? nullptr : &it->second;
  }

  /// Surface string of a fact value term: literal text, or the target
  /// entity's display name for relations.
  std::string ValueSurface(rdf::TermId value_term) const {
    return kb.IsLiteral(value_term) ? kb.NodeString(value_term)
                                    : kb.EntityName(value_term);
  }

  /// Looks up a famous seed entity by display name; kInvalidTerm if absent.
  rdf::TermId FamousByName(const std::string& name) const {
    auto it = famous.find(name);
    return it == famous.end() ? rdf::kInvalidTerm : it->second;
  }

  /// Hand-wired famous entities (lowercase display name -> entity), used by
  /// the paper's running examples and the complex-question bench.
  std::unordered_map<std::string, rdf::TermId> famous;
};

}  // namespace kbqa::corpus

#endif  // KBQA_CORPUS_WORLD_H_
