#include "corpus/world_generator.h"

#include <algorithm>
#include <cassert>
#include <string>
#include <unordered_map>
#include <vector>

#include "corpus/name_generator.h"
#include "nlp/stopwords.h"
#include "nlp/tokenizer.h"
#include "util/rng.h"

namespace kbqa::corpus {

namespace {

using rdf::PredId;
using rdf::TermId;
using taxonomy::CategoryId;

/// Mutable generation state threaded through the helpers.
struct GenState {
  World* w;
  Rng* rng;
  std::vector<PredId> pred_ids;  // parallel to interned predicate names
  std::unordered_map<std::string, PredId> pred_by_name;
  std::vector<CategoryId> type_category;       // per entity type
  std::unordered_map<std::string, CategoryId> extra_category;
  std::unordered_map<TermId, TermId> name_literal;  // entity -> name literal
  size_t cvt_counter = 0;

  PredId Pred(const std::string& name) {
    auto it = pred_by_name.find(name);
    if (it != pred_by_name.end()) return it->second;
    PredId id = w->kb.AddPredicate(name);
    pred_by_name.emplace(name, id);
    return id;
  }
};

std::string RenderLiteral(const IntentSpec& intent, Rng& rng) {
  switch (intent.value_kind) {
    case ValueKind::kNumber:
    case ValueKind::kYear:
      return std::to_string(rng.UniformInt(intent.min_value, intent.max_value));
    case ValueKind::kWord:
      return intent.word_values[rng.Uniform(intent.word_values.size())];
  }
  return "0";
}

/// Creates one entity node with its name triple and base category.
TermId CreateEntity(GenState& gs, int type, const std::string& iri,
                    const std::string& name) {
  World& w = *gs.w;
  TermId e = w.kb.AddEntity(iri);
  TermId name_lit = w.kb.AddLiteral(name);
  w.kb.AddTriple(e, w.kb.name_predicate(), name_lit);
  gs.name_literal[e] = name_lit;
  w.taxonomy.AddEntityCategory(e, gs.type_category[type], 1.0);
  // The entity's own name is always a core (infobox) fact.
  w.infobox.Add(e, name_lit);
  return e;
}

/// Grants a profession-derived subcategory ($politician for "politician",
/// ...), mirroring how Probase derives fine-grained concepts.
void MaybeAddProfessionCategory(GenState& gs, TermId person,
                                const std::string& profession) {
  static const std::unordered_map<std::string, std::string> kMap = {
      {"politician", "$politician"},
      {"writer", "$author"},
      {"musician", "$musician"},
  };
  auto it = kMap.find(profession);
  if (it == kMap.end()) return;
  auto cat = gs.extra_category.find(it->second);
  if (cat != gs.extra_category.end()) {
    gs.w->taxonomy.AddEntityCategory(person, cat->second, 2.0);
  }
}

/// Wires one fact: KB edges, fact catalog, infobox, subcategories.
/// For attributes `literal_text` is the value; for relations `target` is
/// the object entity.
void AddFact(GenState& gs, int intent_idx, TermId subject,
             const std::string& literal_text, TermId target) {
  World& w = *gs.w;
  const IntentSpec& intent = w.schema.intents()[intent_idx];
  TermId value_term = rdf::kInvalidTerm;

  if (intent.is_relation()) {
    assert(target != rdf::kInvalidTerm);
    const auto& path = intent.path;
    assert(path.back() == "name");
    if (path.size() == 2) {
      w.kb.AddTriple(subject, gs.Pred(path[0]), target);
    } else {
      assert(path.size() == 3);
      std::string cvt_iri = "cvt/" + std::to_string(gs.cvt_counter++);
      TermId cvt = w.kb.AddEntity(cvt_iri);
      w.kb.AddTriple(subject, gs.Pred(path[0]), cvt);
      w.kb.AddTriple(cvt, gs.Pred(path[1]), target);
    }
    if (!intent.target_subcategory.empty()) {
      w.taxonomy.AddEntityCategory(
          target, gs.extra_category.at(intent.target_subcategory), 2.0);
    }
    value_term = target;
    if (intent.in_infobox) w.infobox.Add(subject, gs.name_literal.at(target));
  } else {
    assert(intent.path.size() == 1);
    TermId lit = w.kb.AddLiteral(literal_text);
    w.kb.AddTriple(subject, gs.Pred(intent.path[0]), lit);
    value_term = lit;
    if (intent.in_infobox) w.infobox.Add(subject, lit);
    if (intent.name == "person.profession") {
      MaybeAddProfessionCategory(gs, subject, literal_text);
    }
  }
  w.facts[World::FactKey(intent_idx, subject)].push_back(value_term);
}

// ---- Famous seed entities (the paper's running examples) ----

struct FamousFact {
  const char* intent;
  const char* value;  // literal text, or the target's famous name
};
struct FamousEntitySpec {
  const char* type;
  const char* name;
  std::vector<FamousFact> facts;
};

const std::vector<FamousEntitySpec>& FamousSpecs() {
  // Leaked: read from tests/benchmarks that may run during static
  // teardown; a destructor buys nothing for a process-lifetime table.
  static const std::vector<FamousEntitySpec>* const kSpecs =
      new std::vector<FamousEntitySpec>{  // NOLINT(kbqa-naked-new)
          {"city", "honolulu",
           {{"city.population", "390000"},
            {"city.area", "177"},
            {"city.country", "united states"}}},
          {"city", "chicago",
           {{"city.population", "2700000"},
            {"city.country", "united states"}}},
          {"city", "washington",
           {{"city.population", "700000"},
            {"city.country", "united states"}}},
          {"city", "tokyo",
           {{"city.population", "13960000"},
            {"city.area", "2194"},
            {"city.country", "japan"}}},
          {"city", "london",
           {{"city.population", "8900000"},
            {"city.area", "1572"},
            {"city.country", "britain"}}},
          {"city", "berlin",
           {{"city.population", "3700000"},
            {"city.area", "891"},
            {"city.country", "germany"}}},
          {"city", "mountain view",
           {{"city.population", "82000"},
            {"city.country", "united states"}}},
          {"country", "japan",
           {{"country.capital", "tokyo"},
            {"country.population", "125800000"}}},
          {"country", "britain",
           {{"country.capital", "london"},
            {"country.population", "67000000"}}},
          {"country", "germany",
           {{"country.capital", "berlin"},
            {"country.population", "83000000"}}},
          {"country", "united states",
           {{"country.capital", "washington"},
            {"country.population", "331000000"}}},
          {"person", "barack obama",
           {{"person.dob", "1961"},
            {"person.pob", "honolulu"},
            {"person.spouse", "michelle obama"},
            {"person.profession", "politician"},
            {"person.height", "185"}}},
          {"person", "michelle obama",
           {{"person.dob", "1964"},
            {"person.pob", "chicago"},
            {"person.spouse", "barack obama"},
            {"person.profession", "lawyer"}}},
          {"person", "sundar pichai",
           {{"person.dob", "1972"}, {"person.profession", "engineer"}}},
          {"person", "larry page",
           {{"person.dob", "1973"}, {"person.profession", "engineer"}}},
          {"person", "chris martin",
           {{"person.dob", "1977"},
            {"person.instrument", "piano"},
            {"person.profession", "musician"}}},
          {"person", "jonny buckland",
           {{"person.dob", "1977"},
            {"person.instrument", "guitar"},
            {"person.profession", "musician"}}},
          {"person", "j k rowling",
           {{"person.dob", "1965"},
            {"person.profession", "writer"},
            {"person.works", "harry potter"},
            {"person.works", "the casual vacancy"}}},
          {"company", "google",
           {{"company.ceo", "sundar pichai"},
            {"company.founder", "larry page"},
            {"company.headquarters", "mountain view"},
            {"company.founded", "1998"},
            {"company.employees", "140000"}}},
          {"band", "coldplay",
           {{"band.members", "chris martin"},
            {"band.members", "jonny buckland"},
            {"band.formed", "1996"},
            {"band.genre", "rock"}}},
          {"book", "harry potter",
           {{"book.author", "j k rowling"},
            {"book.published", "1997"},
            {"book.pages", "309"}}},
          {"book", "the casual vacancy",
           {{"book.author", "j k rowling"},
            {"book.published", "2012"},
            {"book.pages", "503"}}},
      };
  return *kSpecs;
}

void AddFamousEntities(GenState& gs) {
  World& w = *gs.w;
  // Phase 1: create all famous entities so relation targets resolve.
  for (const FamousEntitySpec& spec : FamousSpecs()) {
    int type = w.schema.TypeIndex(spec.type);
    assert(type >= 0);
    std::string iri = std::string(spec.type) + "/famous-" + spec.name;
    TermId e = CreateEntity(gs, type, iri, spec.name);
    w.entities_by_type[type].push_back(e);
    w.famous.emplace(spec.name, e);
  }
  // Phase 2: wire facts.
  for (const FamousEntitySpec& spec : FamousSpecs()) {
    TermId subject = w.famous.at(spec.name);
    for (const FamousFact& fact : spec.facts) {
      int intent_idx = w.schema.IntentIndex(fact.intent);
      assert(intent_idx >= 0);
      const IntentSpec& intent = w.schema.intents()[intent_idx];
      if (intent.is_relation()) {
        TermId target = w.FamousByName(fact.value);
        assert(target != rdf::kInvalidTerm);
        AddFact(gs, intent_idx, subject, "", target);
      } else {
        AddFact(gs, intent_idx, subject, fact.value, rdf::kInvalidTerm);
      }
    }
  }
}

}  // namespace

World GenerateWorld(const WorldConfig& config) {
  World w;
  w.schema = Schema::Standard(config.schema);
  Rng rng(config.seed);
  GenState gs{&w, &rng, {}, {}, {}, {}, {}, 0};

  // Name predicate first; it anchors the name index and the name-like set.
  PredId name_pred = w.kb.AddPredicate("name");
  gs.pred_by_name.emplace("name", name_pred);
  w.kb.SetNamePredicate(name_pred);
  w.name_like.insert(name_pred);
  PredId alias_pred = w.kb.AddPredicate("alias");
  gs.pred_by_name.emplace("alias", alias_pred);
  w.name_like.insert(alias_pred);
  w.alias_predicates.push_back(alias_pred);

  const auto& types = w.schema.types();
  const auto& intents = w.schema.intents();

  // Categories: one per type, plus the subcategories intents reference.
  for (const EntityTypeSpec& t : types) {
    gs.type_category.push_back(w.taxonomy.AddCategory(t.category));
  }
  for (const char* extra : {"$politician", "$executive", "$musician",
                            "$author"}) {
    gs.extra_category.emplace(extra, w.taxonomy.AddCategory(extra));
  }
  for (const IntentSpec& intent : intents) {
    if (!intent.target_subcategory.empty() &&
        gs.extra_category.count(intent.target_subcategory) == 0) {
      gs.extra_category.emplace(intent.target_subcategory,
                                w.taxonomy.AddCategory(intent.target_subcategory));
    }
  }

  w.entities_by_type.resize(types.size());
  if (config.include_famous_entities) AddFamousEntities(gs);

  // Draw entity names per type; then force fruit/company polysemy ("apple"
  // names both a $fruit and a $company).
  Rng name_rng = rng.Fork(1);
  std::vector<std::vector<std::string>> names(types.size());
  for (size_t t = 0; t < types.size(); ++t) {
    names[t].reserve(types[t].count);
    for (size_t i = 0; i < types[t].count; ++i) {
      // Name collisions ("Springfield"): occasionally reuse an earlier
      // same-type name so entity linking is genuinely ambiguous.
      if (i > 0 && name_rng.Bernoulli(config.name_collision_rate)) {
        names[t].push_back(names[t][name_rng.Uniform(i)]);
      } else {
        names[t].push_back(
            NameGenerator::Generate(name_rng, types[t].name_style));
      }
    }
  }
  int fruit_type = w.schema.TypeIndex("fruit");
  int company_type = w.schema.TypeIndex("company");
  if (fruit_type >= 0 && company_type >= 0) {
    int n = std::min<int>(config.num_polysemous_names,
                          static_cast<int>(std::min(names[fruit_type].size(),
                                                    names[company_type].size())));
    for (int i = 0; i < n; ++i) {
      names[company_type][i] = names[fruit_type][i];
    }
  }

  Rng alias_rng = rng.Fork(3);
  for (size_t t = 0; t < types.size(); ++t) {
    for (size_t i = 0; i < types[t].count; ++i) {
      std::string iri = types[t].name + "/" + std::to_string(i);
      TermId e = CreateEntity(gs, static_cast<int>(t), iri, names[t][i]);
      w.entities_by_type[t].push_back(e);
      // Alias surface forms: a content word of a multi-word name — the
      // last for persons ("obama" for "barack obama"), the first
      // non-stopword otherwise ("silent" never "the"). Stopword and
      // too-short candidates are rejected: an alias like "the" would turn
      // every question into a false mention.
      if (alias_rng.Bernoulli(config.alias_rate)) {
        std::vector<std::string> words = nlp::TokenizeQuestion(names[t][i]);
        std::string alias;
        if (words.size() >= 2) {
          if (t == 0) {
            alias = words.back();
          } else {
            for (const std::string& word : words) {
              if (!nlp::IsStopword(word)) {
                alias = word;
                break;
              }
            }
          }
        }
        if (alias.size() > 3 && !nlp::IsStopword(alias) &&
            alias != names[t][i]) {
          TermId alias_lit = w.kb.AddLiteral(alias);
          w.kb.AddTriple(e, gs.Pred("alias"), alias_lit);
          w.infobox.Add(e, alias_lit);
        }
      }
    }
  }

  // Random facts for every (intent, subject) not wired by the famous set.
  Rng fact_rng = rng.Fork(2);
  for (int intent_idx = 0; intent_idx < static_cast<int>(intents.size());
       ++intent_idx) {
    const IntentSpec& intent = intents[intent_idx];
    const auto& subjects = w.entities_by_type[intent.entity_type];
    const auto& targets = intent.is_relation()
                              ? w.entities_by_type[intent.target_type]
                              : subjects;  // unused for attributes
    for (TermId subject : subjects) {
      if (w.facts.count(World::FactKey(intent_idx, subject)) > 0) continue;
      if (fact_rng.Bernoulli(config.fact_missing_rate)) continue;
      int fanout = static_cast<int>(
          fact_rng.UniformInt(intent.min_fanout, intent.max_fanout));
      std::vector<TermId> chosen;
      for (int f = 0; f < fanout; ++f) {
        if (intent.is_relation()) {
          if (targets.empty()) break;
          TermId target = targets[fact_rng.Uniform(targets.size())];
          if (target == subject) continue;  // no self-relations
          bool dup = false;
          for (TermId c : chosen) dup = dup || (c == target);
          if (dup) continue;
          chosen.push_back(target);
          AddFact(gs, intent_idx, subject, "", target);
        } else {
          AddFact(gs, intent_idx, subject, RenderLiteral(intent, fact_rng),
                  rdf::kInvalidTerm);
        }
      }
    }
  }

  // Predicate answer-class labels: the last non-name predicate of each
  // intent carries the intent's class. First label wins on conflicts
  // (shared predicates like "population" are class-consistent by design).
  for (const IntentSpec& intent : intents) {
    for (auto it = intent.path.rbegin(); it != intent.path.rend(); ++it) {
      if (*it == "name") continue;
      auto pred = w.kb.LookupPredicate(*it);
      if (pred) w.predicate_class.emplace(*pred, intent.answer_class);
      break;
    }
  }

  // Context affinities: every content word of a training paraphrase is
  // evidence for the subject type's category (the Probase-style
  // co-occurrence model behind context-aware conceptualization).
  for (const IntentSpec& intent : intents) {
    CategoryId cat = gs.type_category[intent.entity_type];
    for (const Paraphrase& para : intent.paraphrases) {
      if (!para.train) continue;
      for (const std::string& tok : nlp::TokenizeQuestion(para.pattern)) {
        if (tok == "$e" || tok == "e" || nlp::IsStopword(tok)) continue;
        w.taxonomy.AddContextAffinity(cat, tok, 0.5);
      }
    }
  }

  w.kb.Freeze();
  return w;
}

}  // namespace kbqa::corpus
