#ifndef KBQA_CORPUS_WORLD_GENERATOR_H_
#define KBQA_CORPUS_WORLD_GENERATOR_H_

#include <cstdint>

#include "corpus/world.h"
#include "util/status.h"

namespace kbqa::corpus {

/// Knobs for world generation.
struct WorldConfig {
  uint64_t seed = 42;
  SchemaConfig schema;
  /// Companies that share a fruit's exact surface name — the "apple"
  /// polysemy the conceptualization step must resolve.
  int num_polysemous_names = 6;
  /// Probability that a generated entity reuses an earlier same-type
  /// entity's surface name (real-world "Springfield" collisions). Ambiguous
  /// names are what separate joint entity&value extraction from plain NER
  /// in §7.5 — plain NER has no signal to pick among same-named entities.
  double name_collision_rate = 0.15;
  /// Probability that a (subject, intent) fact is absent from the KB —
  /// models knowledge-base incompleteness (§3.1 lists it as a core source
  /// of uncertainty).
  double fact_missing_rate = 0.10;
  /// Probability that an entity also carries an `alias` surface form (a
  /// person's last name, a multi-word name's head word). Aliases flow into
  /// the NER gazetteer and are name-like tails for predicate expansion —
  /// the paper's Table 18 shows alias-tailed expanded predicates
  /// (organization_members -> member -> alias).
  double alias_rate = 0.15;
  /// Whether to wire the hand-authored famous entities (Barack Obama,
  /// Honolulu, Google, Coldplay, ...) used by the paper's running examples.
  bool include_famous_entities = true;
};

/// Generates a complete world deterministically from `config`. See
/// DESIGN.md §2 for the substitution rationale.
World GenerateWorld(const WorldConfig& config);

}  // namespace kbqa::corpus

#endif  // KBQA_CORPUS_WORLD_GENERATOR_H_
