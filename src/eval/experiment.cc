#include "eval/experiment.h"

namespace kbqa::eval {

ExperimentConfig ExperimentConfig::Standard() {
  ExperimentConfig config;
  config.world.seed = 42;
  config.corpus.seed = 7;
  config.corpus.num_pairs = 60000;
  return config;
}

ExperimentConfig ExperimentConfig::Small() {
  ExperimentConfig config;
  config.world.seed = 42;
  config.world.schema.scale = 0.08;
  config.world.schema.generic_attributes_per_type = 3;
  config.world.schema.generic_relations_per_type = 2;
  config.corpus.seed = 7;
  config.corpus.num_pairs = 4000;
  config.webdoc_sentences = 4000;
  config.kbqa.em.max_iterations = 15;
  return config;
}

Result<std::unique_ptr<Experiment>> Experiment::Build(
    const ExperimentConfig& config) {
  // make_unique cannot reach the private constructor.
  auto experiment =
      std::unique_ptr<Experiment>(new Experiment());  // NOLINT(kbqa-naked-new)
  experiment->config_ = config;
  experiment->world_ =
      std::make_unique<corpus::World>(corpus::GenerateWorld(config.world));
  const corpus::World& world = *experiment->world_;

  experiment->train_corpus_ =
      corpus::GenerateTrainingCorpus(world, config.corpus);

  experiment->kbqa_ =
      std::make_unique<core::KbqaSystem>(&world, config.kbqa);
  KBQA_RETURN_IF_ERROR(experiment->kbqa_->Train(experiment->train_corpus_));

  // Baselines share KBQA's NER and expanded KB: coverage differences in the
  // tables come from the question representation, not from data access.
  const nlp::GazetteerNer& ner = experiment->kbqa_->ner();
  const rdf::ExpandedKb& ekb = experiment->kbqa_->expanded_kb();

  std::vector<std::string> webdocs = corpus::GenerateWebDocs(
      world, config.webdoc_sentences, config.world.seed ^ 0x9e3779b9ULL);
  experiment->lexicon_ = std::make_unique<baselines::SynonymLexicon>(
      baselines::SynonymLexicon::Learn(world.kb, ekb, ner, webdocs));

  experiment->rule_qa_ =
      std::make_unique<baselines::RuleQa>(&world.kb, &ner);
  experiment->keyword_qa_ =
      std::make_unique<baselines::KeywordQa>(&world, &ner);
  experiment->synonym_qa_ = std::make_unique<baselines::SynonymQa>(
      &world, &ekb, &ner, experiment->lexicon_.get());
  experiment->graph_qa_ = std::make_unique<baselines::GraphQa>(
      &world, &ekb, &ner, experiment->lexicon_.get());
  experiment->alignment_qa_ = std::make_unique<baselines::AlignmentQa>(
      &world, &ekb, &ner, &experiment->kbqa_->ev_extractor(),
      experiment->train_corpus_);
  return experiment;
}

std::vector<const core::QaSystemInterface*> Experiment::Baselines() const {
  return {rule_qa_.get(), keyword_qa_.get(), synonym_qa_.get(),
          graph_qa_.get(), alignment_qa_.get()};
}

corpus::BenchmarkSet Experiment::MakeQald5() const {
  corpus::BenchmarkConfig config;
  config.name = "QALD-5-like";
  config.seed = 505;
  config.num_questions = 50;
  config.bfq_ratio = 0.24;
  return corpus::GenerateBenchmark(*world_, config);
}

corpus::BenchmarkSet Experiment::MakeQald3() const {
  corpus::BenchmarkConfig config;
  config.name = "QALD-3-like";
  config.seed = 303;
  config.num_questions = 99;
  config.bfq_ratio = 0.41;
  return corpus::GenerateBenchmark(*world_, config);
}

corpus::BenchmarkSet Experiment::MakeQald1() const {
  corpus::BenchmarkConfig config;
  config.name = "QALD-1-like";
  config.seed = 101;
  config.num_questions = 50;
  config.bfq_ratio = 0.54;
  return corpus::GenerateBenchmark(*world_, config);
}

corpus::BenchmarkSet Experiment::MakeWebQuestions() const {
  corpus::BenchmarkConfig config;
  config.name = "WebQuestions-like";
  config.seed = 2032;
  config.num_questions = 2032;
  config.bfq_ratio = 0.35;
  return corpus::GenerateBenchmark(*world_, config);
}

}  // namespace kbqa::eval
