#ifndef KBQA_EVAL_EXPERIMENT_H_
#define KBQA_EVAL_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/alignment_qa.h"
#include "baselines/graph_qa.h"
#include "baselines/keyword_qa.h"
#include "baselines/rule_qa.h"
#include "baselines/synonym_lexicon.h"
#include "baselines/synonym_qa.h"
#include "core/kbqa_system.h"
#include "corpus/qa_generator.h"
#include "corpus/world_generator.h"
#include "util/status.h"

namespace kbqa::eval {

/// Configuration of a full experimental setup.
struct ExperimentConfig {
  corpus::WorldConfig world;
  corpus::QaGenConfig corpus;
  /// Sentences in the synthetic web-doc corpus for the bootstrapped
  /// synonym lexicon (the paper's bootstrapping row uses 256M sentences;
  /// scaled down with everything else).
  size_t webdoc_sentences = 60000;
  core::KbqaOptions kbqa;

  /// The defaults used by all table benches (so numbers are comparable
  /// across binaries).
  static ExperimentConfig Standard();
  /// A small configuration for unit/integration tests (sub-second build).
  static ExperimentConfig Small();
};

/// A fully assembled experiment: generated world, training corpus, trained
/// KBQA, bootstrapped lexicon, and every baseline system. Heap-held parts
/// keep internal pointers stable, so Experiment is movable.
class Experiment {
 public:
  /// Builds everything; returns an error if training fails.
  static Result<std::unique_ptr<Experiment>> Build(
      const ExperimentConfig& config);

  const ExperimentConfig& config() const { return config_; }
  const corpus::World& world() const { return *world_; }
  const corpus::QaCorpus& train_corpus() const { return train_corpus_; }
  const core::KbqaSystem& kbqa() const { return *kbqa_; }
  const baselines::SynonymLexicon& lexicon() const { return *lexicon_; }

  const baselines::RuleQa& rule_qa() const { return *rule_qa_; }
  const baselines::KeywordQa& keyword_qa() const { return *keyword_qa_; }
  const baselines::SynonymQa& synonym_qa() const { return *synonym_qa_; }
  const baselines::GraphQa& graph_qa() const { return *graph_qa_; }
  const baselines::AlignmentQa& alignment_qa() const {
    return *alignment_qa_;
  }

  /// All baseline systems (for sweep-style tables).
  std::vector<const core::QaSystemInterface*> Baselines() const;

  /// QALD-like benchmark sets matching Table 5's shapes.
  corpus::BenchmarkSet MakeQald5() const;
  corpus::BenchmarkSet MakeQald3() const;
  corpus::BenchmarkSet MakeQald1() const;
  corpus::BenchmarkSet MakeWebQuestions() const;

 private:
  Experiment() = default;

  ExperimentConfig config_;
  std::unique_ptr<corpus::World> world_;
  corpus::QaCorpus train_corpus_;
  std::unique_ptr<core::KbqaSystem> kbqa_;
  std::unique_ptr<baselines::SynonymLexicon> lexicon_;
  std::unique_ptr<baselines::RuleQa> rule_qa_;
  std::unique_ptr<baselines::KeywordQa> keyword_qa_;
  std::unique_ptr<baselines::SynonymQa> synonym_qa_;
  std::unique_ptr<baselines::GraphQa> graph_qa_;
  std::unique_ptr<baselines::AlignmentQa> alignment_qa_;
};

}  // namespace kbqa::eval

#endif  // KBQA_EVAL_EXPERIMENT_H_
