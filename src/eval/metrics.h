#ifndef KBQA_EVAL_METRICS_H_
#define KBQA_EVAL_METRICS_H_

#include <cstddef>

namespace kbqa::eval {

/// QALD-style effectiveness counters (§7.3.1): #total questions, #BFQ among
/// them, #pro answered (non-null), #ri right, #par partially right.
struct QaldCounts {
  size_t total = 0;
  size_t bfq = 0;
  size_t pro = 0;
  size_t ri = 0;
  size_t par = 0;

  // Derived metrics, exactly as defined in the paper.
  double P() const { return pro == 0 ? 0 : static_cast<double>(ri) / pro; }
  double PStar() const {
    return pro == 0 ? 0 : static_cast<double>(ri + par) / pro;
  }
  double R() const { return total == 0 ? 0 : static_cast<double>(ri) / total; }
  double RStar() const {
    return total == 0 ? 0 : static_cast<double>(ri + par) / total;
  }
  double RBfq() const { return bfq == 0 ? 0 : static_cast<double>(ri) / bfq; }
  double RStarBfq() const {
    return bfq == 0 ? 0 : static_cast<double>(ri + par) / bfq;
  }
  double F1() const {
    double p = P(), r = R();
    return (p + r) == 0 ? 0 : 2 * p * r / (p + r);
  }

  QaldCounts& operator+=(const QaldCounts& other) {
    total += other.total;
    bfq += other.bfq;
    pro += other.pro;
    ri += other.ri;
    par += other.par;
    return *this;
  }
};

}  // namespace kbqa::eval

#endif  // KBQA_EVAL_METRICS_H_
