#include "eval/report.h"

#include <algorithm>

#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/table_printer.h"

namespace kbqa::eval {

namespace {

void Tally(QaldCounts& counts, const JudgedQuestion& jq) {
  ++counts.total;
  if (jq.is_bfq) ++counts.bfq;
  switch (jq.judgment) {
    case Judgment::kDeclined:
      break;
    case Judgment::kRight:
      ++counts.pro;
      ++counts.ri;
      break;
    case Judgment::kPartial:
      ++counts.pro;
      ++counts.par;
      break;
    case Judgment::kWrong:
      ++counts.pro;
      break;
  }
}

double Percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0;
  size_t index = static_cast<size_t>(q * (sorted.size() - 1));
  return sorted[index];
}

}  // namespace

EvaluationReport EvaluationReport::Build(const RunResult& run,
                                         const Options& options) {
  EvaluationReport report;
  size_t seen_right = 0, unseen_right = 0;
  std::vector<double> latencies;
  latencies.reserve(run.judged.size());

  for (const JudgedQuestion& jq : run.judged) {
    Tally(report.by_kind_[jq.kind.empty() ? "unknown" : jq.kind], jq);
    latencies.push_back(jq.elapsed_ms);
    if (jq.is_bfq) {
      bool right = jq.judgment == Judgment::kRight ||
                   jq.judgment == Judgment::kPartial;
      if (jq.unseen_paraphrase) {
        ++report.num_unseen_bfq_;
        unseen_right += right;
      } else {
        ++report.num_seen_bfq_;
        seen_right += right;
      }
      if (!right &&
          report.failure_examples_.size() < options.max_failure_examples) {
        report.failure_examples_.push_back(jq);
      }
    }
  }
  if (report.num_seen_bfq_ > 0) {
    report.seen_recall_ =
        static_cast<double>(seen_right) / report.num_seen_bfq_;
  }
  if (report.num_unseen_bfq_ > 0) {
    report.unseen_recall_ =
        static_cast<double>(unseen_right) / report.num_unseen_bfq_;
  }
  std::sort(latencies.begin(), latencies.end());
  report.latency_p50_ms_ = Percentile(latencies, 0.50);
  report.latency_p95_ms_ = Percentile(latencies, 0.95);
  report.latency_max_ms_ = latencies.empty() ? 0 : latencies.back();
  return report;
}

void EvaluationReport::Print(std::ostream& os) const {
  TablePrinter table("Per-kind breakdown");
  table.SetHeader({"kind", "#total", "#pro", "#ri", "#par", "P", "R"});
  for (const auto& [kind, counts] : by_kind_) {
    table.AddRow({kind, TablePrinter::Int(counts.total),
                  TablePrinter::Int(counts.pro), TablePrinter::Int(counts.ri),
                  TablePrinter::Int(counts.par),
                  TablePrinter::Num(counts.P(), 2),
                  TablePrinter::Num(counts.R(), 2)});
  }
  table.Print(os);

  os << "\nparaphrase-coverage analysis:\n"
     << "  seen-phrasing BFQs:    " << num_seen_bfq_ << " (recall "
     << TablePrinter::Num(seen_recall_, 2) << ")\n"
     << "  held-out-phrasing BFQs: " << num_unseen_bfq_ << " (recall "
     << TablePrinter::Num(unseen_recall_, 2) << ")\n";

  os << "\nlatency: p50 " << TablePrinter::Num(latency_p50_ms_, 3)
     << " ms, p95 " << TablePrinter::Num(latency_p95_ms_, 3) << " ms, max "
     << TablePrinter::Num(latency_max_ms_, 3) << " ms\n";

  if (!failure_examples_.empty()) {
    os << "\nsampled BFQ failures:\n";
    for (const JudgedQuestion& jq : failure_examples_) {
      os << "  [" << (jq.judgment == Judgment::kDeclined ? "declined"
                                                         : "wrong")
         << (jq.unseen_paraphrase ? ", unseen phrasing" : "") << "] "
         << jq.question << "  (got: '" << jq.system_answer << "', gold: '"
         << jq.gold_answer << "')\n";
    }
  }
}

void PrintObservabilityReport(std::ostream& os, size_t top_spans) {
  obs::RenderMetricsTable(obs::MetricsRegistry::Global().Snapshot(), os);
  obs::Tracing::WriteSpanSummary(os, top_spans);
}

}  // namespace kbqa::eval
