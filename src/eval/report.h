#ifndef KBQA_EVAL_REPORT_H_
#define KBQA_EVAL_REPORT_H_

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "eval/runner.h"

namespace kbqa::eval {

/// Error analysis over a benchmark run: per-question-kind breakdown,
/// seen-vs-unseen paraphrase recall, latency percentiles, and sampled
/// failure examples — the §7.3.1 "recall analysis" as a reusable artifact
/// instead of ad-hoc bench code.
class EvaluationReport {
 public:
  struct Options {
    size_t max_failure_examples = 5;
  };

  static EvaluationReport Build(const RunResult& run,
                                const Options& options);
  static EvaluationReport Build(const RunResult& run) {
    return Build(run, Options());
  }

  /// Counters restricted to one question kind ("bfq", "superlative", ...).
  const std::map<std::string, QaldCounts>& by_kind() const { return by_kind_; }

  /// Recall over BFQs phrased with training-seen paraphrases vs held-out
  /// ones — quantifies the strict-template-matching failure mode.
  double seen_recall() const { return seen_recall_; }
  double unseen_recall() const { return unseen_recall_; }
  size_t num_seen_bfq() const { return num_seen_bfq_; }
  size_t num_unseen_bfq() const { return num_unseen_bfq_; }

  /// Latency percentiles over all questions, in milliseconds.
  double latency_p50_ms() const { return latency_p50_ms_; }
  double latency_p95_ms() const { return latency_p95_ms_; }
  double latency_max_ms() const { return latency_max_ms_; }

  /// Sampled wrong/declined BFQs for inspection.
  const std::vector<JudgedQuestion>& failure_examples() const {
    return failure_examples_;
  }

  /// Renders the full report.
  void Print(std::ostream& os) const;

 private:
  std::map<std::string, QaldCounts> by_kind_;
  double seen_recall_ = 0;
  double unseen_recall_ = 0;
  size_t num_seen_bfq_ = 0;
  size_t num_unseen_bfq_ = 0;
  double latency_p50_ms_ = 0;
  double latency_p95_ms_ = 0;
  double latency_max_ms_ = 0;
  std::vector<JudgedQuestion> failure_examples_;
};

/// Renders the process-wide observability registry: the counter/gauge and
/// histogram tables followed by the top-N trace-span summary (count, total
/// time, avg, p99 per stage). Call after a run to see where the pipeline's
/// time went; a fresh process with instrumentation disabled prints empty
/// tables.
void PrintObservabilityReport(std::ostream& os, size_t top_spans = 12);

}  // namespace kbqa::eval

#endif  // KBQA_EVAL_REPORT_H_
