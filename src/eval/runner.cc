#include "eval/runner.h"

#include "nlp/tokenizer.h"
#include "util/timer.h"

namespace kbqa::eval {

namespace {

/// Judges one answered question and folds it into `result` (both the
/// all-question and the BFQ-restricted counters).
void JudgeAndTally(const core::AnswerResult& answer,
                   const corpus::QaPair& pair, const corpus::QaGold& gold,
                   double elapsed_ms, RunResult* result) {
  JudgedQuestion jq;
  jq.judgment = Judge(answer, gold);
  jq.is_bfq = gold.is_bfq;
  jq.unseen_paraphrase = gold.unseen_paraphrase;
  jq.kind = gold.kind;
  jq.question = pair.question;
  jq.system_answer = answer.answered ? answer.value : "";
  jq.gold_answer = gold.value_string;
  jq.elapsed_ms = elapsed_ms;

  auto tally = [&](QaldCounts& counts) {
    ++counts.total;
    if (gold.is_bfq) ++counts.bfq;
    switch (jq.judgment) {
      case Judgment::kDeclined:
        break;
      case Judgment::kRight:
        ++counts.pro;
        ++counts.ri;
        break;
      case Judgment::kPartial:
        ++counts.pro;
        ++counts.par;
        break;
      case Judgment::kWrong:
        ++counts.pro;
        break;
    }
  };
  tally(result->counts);
  if (gold.is_bfq) tally(result->bfq_only);
  result->judged.push_back(std::move(jq));
}

}  // namespace

Judgment Judge(const core::AnswerResult& answer,
               const corpus::QaGold& gold) {
  if (!answer.answered) return Judgment::kDeclined;
  const std::string got = nlp::NormalizeText(answer.value);
  if (!gold.value_string.empty() &&
      got == nlp::NormalizeText(gold.value_string)) {
    return Judgment::kRight;
  }
  for (const std::string& alternate : gold.correct_alternates) {
    if (got == nlp::NormalizeText(alternate)) return Judgment::kRight;
  }
  for (const std::string& partial : gold.partial_values) {
    if (got == nlp::NormalizeText(partial)) return Judgment::kPartial;
  }
  return Judgment::kWrong;
}

RunResult RunBenchmark(const core::QaSystemInterface& system,
                       const corpus::BenchmarkSet& benchmark) {
  RunResult result;
  result.judged.reserve(benchmark.questions.size());
  for (size_t i = 0; i < benchmark.questions.size(); ++i) {
    const corpus::QaPair& pair = benchmark.questions.pairs[i];

    Timer timer;
    core::AnswerResult answer = system.Answer(pair.question);
    double elapsed = timer.ElapsedMillis();
    result.total_ms += elapsed;

    JudgeAndTally(answer, pair, benchmark.questions.gold[i], elapsed,
                  &result);
  }
  return result;
}

RunResult RunBenchmarkBatched(const core::KbqaSystem& system,
                              const corpus::BenchmarkSet& benchmark,
                              int num_threads) {
  std::vector<std::string> questions;
  questions.reserve(benchmark.questions.size());
  for (const corpus::QaPair& pair : benchmark.questions.pairs) {
    questions.push_back(pair.question);
  }

  Timer timer;
  std::vector<core::AnswerResult> answers =
      system.AnswerAll(questions, num_threads);
  RunResult result;
  result.total_ms = timer.ElapsedMillis();

  const double avg_ms =
      questions.empty() ? 0 : result.total_ms / questions.size();
  result.judged.reserve(benchmark.questions.size());
  for (size_t i = 0; i < benchmark.questions.size(); ++i) {
    JudgeAndTally(answers[i], benchmark.questions.pairs[i],
                  benchmark.questions.gold[i], avg_ms, &result);
  }
  return result;
}

}  // namespace kbqa::eval
