#ifndef KBQA_EVAL_RUNNER_H_
#define KBQA_EVAL_RUNNER_H_

#include <string>
#include <vector>

#include "core/kbqa_system.h"
#include "core/qa_interface.h"
#include "corpus/qa_generator.h"
#include "eval/metrics.h"

namespace kbqa::eval {

/// Verdict for one question.
enum class Judgment { kDeclined, kRight, kPartial, kWrong };

/// Per-question record of a benchmark run.
struct JudgedQuestion {
  Judgment judgment = Judgment::kDeclined;
  bool is_bfq = false;
  bool unseen_paraphrase = false;
  std::string kind;
  std::string question;
  std::string system_answer;
  std::string gold_answer;
  double elapsed_ms = 0;
};

/// Result of running one system over one benchmark.
struct RunResult {
  QaldCounts counts;
  /// Counters restricted to the BFQ subset — the well-defined source for
  /// R_BFQ / P_BFQ columns even for systems that also answer non-BFQs
  /// (dividing all-question #ri by #BFQ can exceed 1 otherwise).
  QaldCounts bfq_only;
  std::vector<JudgedQuestion> judged;
  double total_ms = 0;

  double avg_latency_ms() const {
    return counts.total == 0 ? 0 : total_ms / counts.total;
  }
};

/// Judges a system answer against the gold annotation: exact match on the
/// normalized value string is right; a match against the gold's
/// partial-values set is partially right (the paper's #par — e.g. a country
/// where a city was asked); anything else is wrong. A declined answer
/// (answered == false) does not count toward #pro.
Judgment Judge(const core::AnswerResult& answer, const corpus::QaGold& gold);

/// Runs `system` over every benchmark question and tallies the QALD
/// counters. `use_complex` routes questions through AnswerComplex when the
/// system is a KbqaSystem (benchmarks are BFQ/non-BFQ mixes; decomposition
/// is a no-op for plain BFQs).
RunResult RunBenchmark(const core::QaSystemInterface& system,
                       const corpus::BenchmarkSet& benchmark);

/// Throughput-mode counterpart of RunBenchmark: answers the whole set in
/// one KbqaSystem::AnswerAll batch over `num_threads` workers, then judges.
/// Counts and judgments are identical to RunBenchmark for any thread count;
/// per-question latencies are not available in this mode (total_ms is the
/// batch wall clock, judged[i].elapsed_ms is the batch average).
RunResult RunBenchmarkBatched(const core::KbqaSystem& system,
                              const corpus::BenchmarkSet& benchmark,
                              int num_threads);

}  // namespace kbqa::eval

#endif  // KBQA_EVAL_RUNNER_H_
