#include "nlp/ner.h"

#include <algorithm>

#include "nlp/tokenizer.h"

namespace kbqa::nlp {

GazetteerNer::GazetteerNer(const rdf::KnowledgeBase& kb,
                           const std::vector<rdf::PredId>& alias_predicates) {
  std::vector<rdf::PredId> name_preds;
  if (kb.name_predicate() != rdf::kInvalidPred) {
    name_preds.push_back(kb.name_predicate());
  }
  name_preds.insert(name_preds.end(), alias_predicates.begin(),
                    alias_predicates.end());
  for (rdf::TermId e : kb.AllEntities()) {
    for (rdf::PredId p : name_preds) {
      for (const auto& po : kb.ObjectsRange(e, p)) {
        AddName(kb.NodeString(po.o), e);
      }
    }
  }
}

void GazetteerNer::AddName(const std::string& surface, rdf::TermId entity) {
  std::vector<std::string> tokens = Tokenize(surface);
  if (tokens.empty()) return;
  max_name_tokens_ = std::max(max_name_tokens_, tokens.size());
  auto& entities = names_[JoinTokens(tokens)];
  if (std::find(entities.begin(), entities.end(), entity) == entities.end()) {
    entities.push_back(entity);
  }
}

std::vector<Mention> GazetteerNer::FindMentions(
    const std::vector<std::string>& tokens) const {
  std::vector<Mention> mentions;
  size_t i = 0;
  while (i < tokens.size()) {
    size_t longest = 0;
    const std::vector<rdf::TermId>* hit = nullptr;
    size_t max_len = std::min(max_name_tokens_, tokens.size() - i);
    // Longest-match-first: a mention of "new york city" must not be split
    // into "new york" + "city".
    for (size_t len = max_len; len >= 1; --len) {
      std::string key = JoinTokens(
          std::vector<std::string>(tokens.begin() + i, tokens.begin() + i + len));
      auto it = names_.find(key);
      if (it != names_.end()) {
        longest = len;
        hit = &it->second;
        break;
      }
    }
    if (hit != nullptr) {
      mentions.push_back({i, i + longest, *hit});
      i += longest;
    } else {
      ++i;
    }
  }
  return mentions;
}

std::vector<rdf::TermId> GazetteerNer::EntitiesForSpan(
    const std::vector<std::string>& tokens, size_t begin, size_t end) const {
  if (begin >= end || end > tokens.size()) return {};
  std::string key = JoinTokens(
      std::vector<std::string>(tokens.begin() + begin, tokens.begin() + end));
  auto it = names_.find(key);
  if (it == names_.end()) return {};
  return it->second;
}

bool LooksLikeNumber(const std::string& token) {
  if (token.empty()) return false;
  for (char c : token) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

}  // namespace kbqa::nlp
