#ifndef KBQA_NLP_NER_H_
#define KBQA_NLP_NER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/knowledge_base.h"

namespace kbqa::nlp {

/// An entity mention: token span [begin, end) plus the candidate KB
/// entities sharing that surface form. Ambiguity (several entities, e.g.
/// the apple company vs. the apple fruit) is preserved for the
/// probabilistic model — P(e|q) is uniform over candidates (§3.2).
struct Mention {
  size_t begin;
  size_t end;
  std::vector<rdf::TermId> entities;

  size_t size() const { return end - begin; }
};

/// Gazetteer named-entity recognizer — the substrate standing in for
/// Stanford NER [13]. Recognizes KB entity names by greedy longest match
/// over lowercase token n-grams. Like a real statistical NER it is
/// imperfect by construction: it only finds names the gazetteer knows, it
/// cannot split overlapping mentions, and common-word names create false
/// ambiguity — the paper's §7.5 comparison (joint extraction 72% vs NER
/// 30%) depends on exactly these failure modes.
class GazetteerNer {
 public:
  /// Builds the gazetteer from all entity names (and aliases) in `kb`.
  /// `alias_predicates` lists additional name-bearing predicates.
  explicit GazetteerNer(const rdf::KnowledgeBase& kb,
                        const std::vector<rdf::PredId>& alias_predicates = {});

  GazetteerNer(const GazetteerNer&) = delete;
  GazetteerNer& operator=(const GazetteerNer&) = delete;
  GazetteerNer(GazetteerNer&&) = default;
  GazetteerNer& operator=(GazetteerNer&&) = default;

  /// Finds non-overlapping mentions, left to right, longest match first.
  std::vector<Mention> FindMentions(
      const std::vector<std::string>& tokens) const;

  /// Entities whose (lowercased) name equals the token span exactly.
  std::vector<rdf::TermId> EntitiesForSpan(
      const std::vector<std::string>& tokens, size_t begin, size_t end) const;

  size_t num_names() const { return names_.size(); }
  size_t max_name_tokens() const { return max_name_tokens_; }

 private:
  void AddName(const std::string& surface, rdf::TermId entity);

  // Key: lowercase space-joined token form of the name.
  std::unordered_map<std::string, std::vector<rdf::TermId>> names_;
  size_t max_name_tokens_ = 1;
};

/// True for tokens that look like literal values (numbers, years). Used by
/// value spotting in answers.
bool LooksLikeNumber(const std::string& token);

}  // namespace kbqa::nlp

#endif  // KBQA_NLP_NER_H_
