#include "nlp/pattern.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace kbqa::nlp {

std::string MakePattern(const std::vector<std::string>& tokens, size_t begin,
                        size_t end) {
  assert(begin < end && end <= tokens.size());
  std::string out;
  for (size_t i = 0; i < begin; ++i) {
    if (!out.empty()) out += ' ';
    out += tokens[i];
  }
  if (!out.empty()) out += ' ';
  out += kEntitySlot;
  for (size_t i = end; i < tokens.size(); ++i) {
    out += ' ';
    out += tokens[i];
  }
  return out;
}

PatternIndex PatternIndex::Build(const std::vector<PatternQuestion>& questions,
                                 const Options& options) {
  PatternIndex index;

  // Pass 1: register the validly matched patterns and count fv, dedup per
  // question ("the number of questions that validly matches qˇ").
  for (const PatternQuestion& q : questions) {
    std::unordered_set<std::string> seen;
    for (const auto& [begin, end] : q.mention_spans) {
      if (begin >= end || end > q.tokens.size()) continue;
      std::string pattern = MakePattern(q.tokens, begin, end);
      if (seen.insert(pattern).second) ++index.stats_[pattern].fv;
    }
  }

  // Pass 2: count fo — any-substring matches — but only for patterns that
  // pass 1 admitted (others have P(qˇ) = 0 regardless of fo).
  for (const PatternQuestion& q : questions) {
    std::unordered_set<std::string> seen;
    size_t n = q.tokens.size();
    for (size_t begin = 0; begin < n; ++begin) {
      size_t max_end = std::min(n, begin + options.max_span_tokens);
      for (size_t end = begin + 1; end <= max_end; ++end) {
        std::string pattern = MakePattern(q.tokens, begin, end);
        auto it = index.stats_.find(pattern);
        if (it != index.stats_.end() && seen.insert(pattern).second) {
          ++it->second.fo;
        }
      }
    }
    // Long mentions can exceed max_span_tokens; make sure every valid match
    // is also an occurrence so fv <= fo holds by construction.
    for (const auto& [begin, end] : q.mention_spans) {
      if (begin >= end || end > n || end - begin <= options.max_span_tokens) {
        continue;
      }
      std::string pattern = MakePattern(q.tokens, begin, end);
      auto it = index.stats_.find(pattern);
      if (it != index.stats_.end() && seen.insert(pattern).second) {
        ++it->second.fo;
      }
    }
  }
  return index;
}

double PatternIndex::ValidProbability(const std::string& pattern) const {
  auto it = stats_.find(pattern);
  if (it == stats_.end() || it->second.fo == 0) return 0.0;
  return static_cast<double>(it->second.fv) /
         static_cast<double>(it->second.fo);
}

PatternStats PatternIndex::Stats(const std::string& pattern) const {
  auto it = stats_.find(pattern);
  if (it == stats_.end()) return {};
  return it->second;
}

}  // namespace kbqa::nlp
