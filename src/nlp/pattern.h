#ifndef KBQA_NLP_PATTERN_H_
#define KBQA_NLP_PATTERN_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace kbqa::nlp {

/// Placeholder token for the entity variable in a question pattern /
/// decomposed sub-question (§5.1).
inline constexpr const char* kEntitySlot = "$e";

/// Builds the pattern string obtained by replacing token span [begin, end)
/// of `tokens` with the `$e` placeholder. Example:
/// ["when","was","michelle","obama","born"], span [2,4) ->
/// "when was $e born".
std::string MakePattern(const std::vector<std::string>& tokens, size_t begin,
                        size_t end);

/// A corpus question prepared for pattern counting: its tokens and the
/// entity-mention token spans found in it.
struct PatternQuestion {
  std::vector<std::string> tokens;
  std::vector<std::pair<size_t, size_t>> mention_spans;
};

/// Occurrence statistics for one pattern: fo = #questions matching it via
/// *any* substring replacement, fv = #questions matching it via an entity
/// mention (a *valid* match). P(qˇ) = fv / fo (Eq. 26) — fo punishes
/// over-generalized patterns like "when $e".
struct PatternStats {
  uint32_t fo = 0;
  uint32_t fv = 0;
};

/// Corpus-wide pattern index answering P(qˇ) queries for the complex-
/// question decomposer (§5.2).
///
/// Memory note: only patterns with fv > 0 can have P(qˇ) > 0, so pass 1
/// collects exactly the validly-matched patterns and pass 2 counts fo only
/// for those — the index holds O(#mentions) patterns instead of
/// O(#questions · |q|²) (the full fo table would not fit for large corpora,
/// and its extra entries are all P = 0 anyway).
class PatternIndex {
 public:
  struct Options {
    /// Longest replaced span, in tokens, considered during fo counting.
    /// Mention spans longer than this still enter the fv pass.
    size_t max_span_tokens = 8;
  };

  /// Builds the index over `questions` in the two passes described above.
  static PatternIndex Build(const std::vector<PatternQuestion>& questions,
                            const Options& options);
  static PatternIndex Build(const std::vector<PatternQuestion>& questions) {
    return Build(questions, Options());
  }

  /// P(qˇ) = fv/fo for `pattern`; 0 when the pattern was never validly
  /// matched in the corpus.
  double ValidProbability(const std::string& pattern) const;

  /// Raw counts (both zero when absent).
  PatternStats Stats(const std::string& pattern) const;

  size_t num_patterns() const { return stats_.size(); }

 private:
  std::unordered_map<std::string, PatternStats> stats_;
};

}  // namespace kbqa::nlp

#endif  // KBQA_NLP_PATTERN_H_
