#include "nlp/question_classifier.h"

#include <algorithm>

namespace kbqa::nlp {

const char* QuestionClassToString(QuestionClass c) {
  switch (c) {
    case QuestionClass::kAbbreviation:
      return "ABBR";
    case QuestionClass::kDescription:
      return "DESC";
    case QuestionClass::kEntity:
      return "ENTY";
    case QuestionClass::kHuman:
      return "HUM";
    case QuestionClass::kLocation:
      return "LOC";
    case QuestionClass::kNumeric:
      return "NUM";
    case QuestionClass::kUnknown:
      return "UNKNOWN";
  }
  return "UNKNOWN";
}

QuestionClassifier::QuestionClassifier() {
  human_heads_ = {"person",   "people",  "author", "president", "ceo",
                  "founder",  "mayor",   "wife",   "husband",   "spouse",
                  "director", "leader",  "member", "members",   "writer",
                  "singer",   "actor",   "chief",  "king",      "queen"};
  location_heads_ = {"city",    "country", "place",    "capital",
                     "location", "state",  "continent", "headquarter",
                     "headquarters", "river", "hometown", "birthplace"};
  numeric_heads_ = {"population", "number", "area",   "length", "height",
                    "size",       "year",   "date",   "birthday", "age",
                    "count",      "amount", "income", "revenue",  "gdp"};
  entity_heads_ = {"book",  "books",  "instrument", "currency", "language",
                   "song",  "songs",  "film",       "movie",    "band",
                   "color", "animal", "sport",      "company",  "university"};
}

namespace {

bool ContainsToken(const std::vector<std::string>& tokens,
                   const std::vector<std::string>& table) {
  for (const std::string& t : tokens) {
    if (std::find(table.begin(), table.end(), t) != table.end()) return true;
  }
  return false;
}

}  // namespace

QuestionClass QuestionClassifier::ClassifyWhat(
    const std::vector<std::string>& tokens) const {
  // Scan head words after the wh-word; the first table hit wins, with the
  // NUM table checked first ("what is the population of x" is numeric even
  // though "x" might be a location head elsewhere in the question).
  if (ContainsToken(tokens, numeric_heads_)) return QuestionClass::kNumeric;
  if (ContainsToken(tokens, human_heads_)) return QuestionClass::kHuman;
  if (ContainsToken(tokens, location_heads_)) return QuestionClass::kLocation;
  if (ContainsToken(tokens, entity_heads_)) return QuestionClass::kEntity;
  // No head word matched: stay conservative. Guessing ENTY here would make
  // the EV-refinement filter discard valid numeric facts for phrasings
  // like "what is the <rare attribute> of X".
  return QuestionClass::kUnknown;
}

QuestionClass QuestionClassifier::Classify(
    const std::vector<std::string>& tokens) const {
  if (tokens.empty()) return QuestionClass::kUnknown;
  const std::string& w0 = tokens[0];

  if (w0 == "who" || w0 == "whose" || w0 == "whom") {
    return QuestionClass::kHuman;
  }
  if (w0 == "where") return QuestionClass::kLocation;
  if (w0 == "when") return QuestionClass::kNumeric;  // NUM:date in UIUC.
  if (w0 == "why") return QuestionClass::kDescription;
  if (w0 == "how") {
    if (tokens.size() >= 2) {
      const std::string& w1 = tokens[1];
      if (w1 == "many" || w1 == "much" || w1 == "long" || w1 == "old" ||
          w1 == "big" || w1 == "large" || w1 == "tall" || w1 == "far" ||
          w1 == "high" || w1 == "heavy") {
        return QuestionClass::kNumeric;
      }
    }
    return QuestionClass::kDescription;  // "how do i ..." — manner.
  }
  if (w0 == "what" || w0 == "which" || w0 == "name" || w0 == "list" ||
      w0 == "give") {
    return ClassifyWhat(tokens);
  }
  // Imperatives and fragments like "barack obama's wife": reuse the head
  // tables so nested sub-questions from the decomposer still get a class.
  if (ContainsToken(tokens, human_heads_)) return QuestionClass::kHuman;
  if (ContainsToken(tokens, location_heads_)) return QuestionClass::kLocation;
  if (ContainsToken(tokens, numeric_heads_)) return QuestionClass::kNumeric;
  return QuestionClass::kUnknown;
}

}  // namespace kbqa::nlp
