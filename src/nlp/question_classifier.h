#ifndef KBQA_NLP_QUESTION_CLASSIFIER_H_
#define KBQA_NLP_QUESTION_CLASSIFIER_H_

#include <string>
#include <vector>

namespace kbqa::nlp {

/// UIUC coarse question classes (Li & Roth [20]). The paper uses question
/// classification [22] to refine entity–value extraction: a candidate value
/// is kept only when its predicate's answer type matches the question's
/// expected answer type (§4.1.1).
enum class QuestionClass {
  kAbbreviation,  // ABBR
  kDescription,   // DESC: definitions, reasons, manner
  kEntity,        // ENTY: things, creative works, ...
  kHuman,         // HUM: persons, groups
  kLocation,      // LOC
  kNumeric,       // NUM: counts, dates, sizes, ...
  kUnknown,
};

const char* QuestionClassToString(QuestionClass c);

/// Rule-based UIUC-style classifier over wh-word + head-word patterns —
/// the stand-in for the statistical classifier of [22]. Deterministic and
/// conservative: returns kUnknown rather than guessing on unseen shapes,
/// which makes the downstream EV-refinement filter precision-oriented.
class QuestionClassifier {
 public:
  QuestionClassifier();

  /// Classifies a tokenized (lowercase) question.
  QuestionClass Classify(const std::vector<std::string>& tokens) const;

 private:
  QuestionClass ClassifyWhat(const std::vector<std::string>& tokens) const;

  // Head-noun keyword tables, populated in the constructor.
  std::vector<std::string> human_heads_;
  std::vector<std::string> location_heads_;
  std::vector<std::string> numeric_heads_;
  std::vector<std::string> entity_heads_;
};

}  // namespace kbqa::nlp

#endif  // KBQA_NLP_QUESTION_CLASSIFIER_H_
