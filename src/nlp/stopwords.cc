#include "nlp/stopwords.h"

#include <string>
#include <unordered_set>

namespace kbqa::nlp {

bool IsStopword(std::string_view token) {
  // Leaked: tokenization may run during static teardown of callers.
  static const std::unordered_set<std::string>* const kStopwords =
      new std::unordered_set<std::string>{  // NOLINT(kbqa-naked-new)
          "a",     "an",    "the",  "of",    "in",   "on",    "at",   "to",
          "for",   "by",    "with", "from",  "is",   "are",   "was",  "were",
          "be",    "been",  "do",   "does",  "did",  "has",   "have", "had",
          "what",  "who",   "whom", "whose", "when", "where", "which", "why",
          "how",   "many",  "much", "there", "'s",   "it",    "its",  "s",
          "and",   "or",    "that", "this",  "these", "those", "as",  "so",
          "me",    "my",    "you",  "your",  "i",    "we",    "they", "he",
          "she",   "his",   "her",  "their", "them", "can",   "could", "would",
          "should", "will", "tell", "give",  "name", "please", "about"};
  return kStopwords->count(std::string(token)) > 0;
}

}  // namespace kbqa::nlp
