#ifndef KBQA_NLP_STOPWORDS_H_
#define KBQA_NLP_STOPWORDS_H_

#include <string_view>

namespace kbqa::nlp {

/// True for high-frequency function words that carry no intent signal.
/// Used when deriving context affinities for conceptualization and when
/// matching keywords in the baselines.
bool IsStopword(std::string_view token);

}  // namespace kbqa::nlp

#endif  // KBQA_NLP_STOPWORDS_H_
