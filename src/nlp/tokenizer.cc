#include "nlp/tokenizer.h"

#include <cctype>
#include <cstdint>

namespace kbqa::nlp {

namespace {

bool IsWordChar(char c) {
  unsigned char u = static_cast<unsigned char>(c);
  // Bytes >= 0x80 are UTF-8 continuation/lead bytes: part of a multi-byte
  // character, always word content (isalnum on them is locale-dependent
  // and would split "josé" after the 's").
  if (u >= 0x80) return true;
  return std::isalnum(u) != 0 || c == '\'' || c == '-';
}

/// Simple case folding for the scripts representable in the KB via
/// N-Triples \uXXXX escapes: ASCII, Latin-1 Supplement, and Latin
/// Extended-A. Everything else passes through unchanged (full Unicode
/// case folding needs tables this substrate doesn't carry).
uint32_t FoldCodepoint(uint32_t cp) {
  // Latin-1 Supplement: À..Þ → à..þ. U+00D7 is the multiplication sign,
  // not a letter; its +0x20 image U+00F7 is the division sign.
  if (cp >= 0xC0 && cp <= 0xDE && cp != 0xD7) return cp + 0x20;
  // Latin Extended-A pairs alternate upper/lower. İ (U+0130) is the
  // Turkish dotted capital I; fold to plain ASCII "i" (the combining dot
  // of the strict folding buys nothing for gazetteer keys). ı (U+0131)
  // is already lowercase.
  if (cp == 0x130) return 'i';
  if (cp >= 0x100 && cp <= 0x137) return cp % 2 == 0 ? cp + 1 : cp;
  if (cp >= 0x139 && cp <= 0x148) return cp % 2 == 1 ? cp + 1 : cp;
  if (cp >= 0x14A && cp <= 0x177) return cp % 2 == 0 ? cp + 1 : cp;
  if (cp == 0x178) return 0xFF;  // Ÿ → ÿ (the one pair split across blocks)
  if (cp == 0x179 || cp == 0x17B || cp == 0x17D) return cp + 1;
  return cp;
}

void AppendUtf8(uint32_t cp, std::string* out) {
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

/// Lowercases `text` into `*out`: one branch per byte on pure-ASCII input
/// (the overwhelmingly common case); multi-byte UTF-8 sequences are
/// decoded, folded via FoldCodepoint, and re-encoded. Malformed sequences
/// are copied through byte-for-byte so tokenization never mangles input
/// it doesn't understand.
void AppendLoweredUtf8(std::string_view text, std::string* out) {
  size_t i = 0;
  while (i < text.size()) {
    const unsigned char b0 = static_cast<unsigned char>(text[i]);
    if (b0 < 0x80) {  // ASCII fast path
      out->push_back(static_cast<char>(std::tolower(b0)));
      ++i;
      continue;
    }
    // Decode one multi-byte sequence (length from the lead byte).
    size_t len = 0;
    uint32_t cp = 0;
    if ((b0 & 0xE0) == 0xC0) {
      len = 2;
      cp = b0 & 0x1F;
    } else if ((b0 & 0xF0) == 0xE0) {
      len = 3;
      cp = b0 & 0x0F;
    } else if ((b0 & 0xF8) == 0xF0) {
      len = 4;
      cp = b0 & 0x07;
    }
    bool valid = len != 0 && i + len <= text.size();
    for (size_t k = 1; valid && k < len; ++k) {
      const unsigned char bk = static_cast<unsigned char>(text[i + k]);
      if ((bk & 0xC0) != 0x80) {
        valid = false;
      } else {
        cp = (cp << 6) | (bk & 0x3F);
      }
    }
    if (!valid) {  // stray continuation / truncated sequence: pass through
      out->push_back(static_cast<char>(b0));
      ++i;
      continue;
    }
    AppendUtf8(FoldCodepoint(cp), out);
    i += len;
  }
}

}  // namespace

std::vector<std::string> Tokenize(std::string_view text) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && !IsWordChar(text[i])) ++i;
    size_t start = i;
    while (i < text.size() && IsWordChar(text[i])) ++i;
    if (i > start) {
      // Strip leading/trailing apostrophes and hyphens so "'hello'" and
      // "-foo-" normalize, while "obama's" and "twenty-one" survive.
      size_t b = start, e = i;
      while (b < e && (text[b] == '\'' || text[b] == '-')) ++b;
      while (e > b && (text[e - 1] == '\'' || text[e - 1] == '-')) --e;
      if (e > b) {
        std::string tok;
        tok.reserve(e - b);
        AppendLoweredUtf8(text.substr(b, e - b), &tok);
        tokens.push_back(std::move(tok));
      }
    }
  }
  return tokens;
}

std::vector<std::string> TokenizeQuestion(std::string_view text) {
  std::vector<std::string> raw = Tokenize(text);
  std::vector<std::string> out;
  out.reserve(raw.size());
  for (std::string& tok : raw) {
    if (tok.size() > 2 && tok.ends_with("'s")) {
      // Canonical possessive form is a bare "s" token — identical to what
      // Tokenize produces for a detached " 's " written in a pattern.
      out.push_back(tok.substr(0, tok.size() - 2));
      out.push_back("s");
    } else {
      out.push_back(std::move(tok));
    }
  }
  return out;
}

std::string JoinTokens(const std::vector<std::string>& tokens) {
  std::string out;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (i > 0) out += ' ';
    out += tokens[i];
  }
  return out;
}

std::string NormalizeText(std::string_view text) {
  return JoinTokens(TokenizeQuestion(text));
}

}  // namespace kbqa::nlp
