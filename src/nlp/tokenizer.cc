#include "nlp/tokenizer.h"

#include <cctype>

namespace kbqa::nlp {

namespace {

bool IsWordChar(char c) {
  unsigned char u = static_cast<unsigned char>(c);
  return std::isalnum(u) != 0 || c == '\'' || c == '-';
}

}  // namespace

std::vector<std::string> Tokenize(std::string_view text) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && !IsWordChar(text[i])) ++i;
    size_t start = i;
    while (i < text.size() && IsWordChar(text[i])) ++i;
    if (i > start) {
      // Strip leading/trailing apostrophes and hyphens so "'hello'" and
      // "-foo-" normalize, while "obama's" and "twenty-one" survive.
      size_t b = start, e = i;
      while (b < e && (text[b] == '\'' || text[b] == '-')) ++b;
      while (e > b && (text[e - 1] == '\'' || text[e - 1] == '-')) --e;
      if (e > b) {
        std::string tok;
        tok.reserve(e - b);
        for (size_t k = b; k < e; ++k) {
          tok.push_back(static_cast<char>(
              std::tolower(static_cast<unsigned char>(text[k]))));
        }
        tokens.push_back(std::move(tok));
      }
    }
  }
  return tokens;
}

std::vector<std::string> TokenizeQuestion(std::string_view text) {
  std::vector<std::string> raw = Tokenize(text);
  std::vector<std::string> out;
  out.reserve(raw.size());
  for (std::string& tok : raw) {
    if (tok.size() > 2 && tok.ends_with("'s")) {
      // Canonical possessive form is a bare "s" token — identical to what
      // Tokenize produces for a detached " 's " written in a pattern.
      out.push_back(tok.substr(0, tok.size() - 2));
      out.push_back("s");
    } else {
      out.push_back(std::move(tok));
    }
  }
  return out;
}

std::string JoinTokens(const std::vector<std::string>& tokens) {
  std::string out;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (i > 0) out += ' ';
    out += tokens[i];
  }
  return out;
}

std::string NormalizeText(std::string_view text) {
  return JoinTokens(TokenizeQuestion(text));
}

}  // namespace kbqa::nlp
