#ifndef KBQA_NLP_TOKENIZER_H_
#define KBQA_NLP_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace kbqa::nlp {

/// Lowercased word tokenizer. Splits on whitespace, strips surrounding
/// punctuation (keeping internal apostrophes/hyphens: "obama's" stays one
/// token so possessive handling is explicit downstream), and keeps digit
/// runs as single tokens. Punctuation-only runs are dropped.
///
/// Lowercasing is UTF-8 aware: ASCII takes a branch-per-byte fast path;
/// Latin-1 Supplement and Latin Extended-A characters (everything the KB
/// can carry via N-Triples \uXXXX escapes in those blocks — "José",
/// "Čapek", "Łódź") case-fold to their lowercase forms, so gazetteer
/// lookups match regardless of the question's casing. Other scripts pass
/// through unchanged; malformed UTF-8 is copied byte-for-byte.
std::vector<std::string> Tokenize(std::string_view text);

/// Tokenizes and splits possessives: "obama's" -> ["obama", "'s"]. Question
/// processing uses this form so an entity mention is a clean token span.
std::vector<std::string> TokenizeQuestion(std::string_view text);

/// Joins tokens with single spaces — the canonical surface form used as a
/// dictionary key for questions, patterns, and templates.
std::string JoinTokens(const std::vector<std::string>& tokens);

/// Canonical form of a raw question: TokenizeQuestion + JoinTokens.
std::string NormalizeText(std::string_view text);

}  // namespace kbqa::nlp

#endif  // KBQA_NLP_TOKENIZER_H_
