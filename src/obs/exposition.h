#ifndef KBQA_OBS_EXPOSITION_H_
#define KBQA_OBS_EXPOSITION_H_

/// TablePrinter rendering of a MetricsSnapshot. Header-only on purpose:
/// kbqa_util links *against* kbqa_obs (the thread pool is instrumented),
/// so the obs library cannot itself link util symbols without a static
/// library cycle — every includer of this header already links both.

#include <ostream>
#include <string>

#include "obs/metrics.h"
#include "util/table_printer.h"

namespace kbqa::obs {

/// Renders the snapshot as two aligned tables: scalar metrics (counters +
/// gauges) and histograms with approximate quantiles. Histogram values
/// are unit-free; by convention latency metrics carry a "_ns" suffix or a
/// "span." prefix (always nanoseconds).
inline void RenderMetricsTable(const MetricsSnapshot& snap,
                               std::ostream& os) {
  TablePrinter scalars("Observability: counters & gauges");
  scalars.SetHeader({"metric", "value"});
  for (const auto& c : snap.counters) {
    scalars.AddRow({c.name, TablePrinter::Int(static_cast<long long>(c.value))});
  }
  for (const auto& g : snap.gauges) {
    scalars.AddRow({g.name, TablePrinter::Num(g.value, 3)});
  }
  scalars.Print(os);

  TablePrinter hists("Observability: histograms (log2 buckets)");
  hists.SetHeader({"histogram", "count", "mean", "p50<=", "p90<=", "p99<=",
                   "max<="});
  for (const auto& h : snap.histograms) {
    if (h.count == 0) continue;
    hists.AddRow({h.name,
                  TablePrinter::Int(static_cast<long long>(h.count)),
                  TablePrinter::Num(h.Mean(), 1),
                  TablePrinter::Int(static_cast<long long>(
                      h.ApproxQuantile(0.50))),
                  TablePrinter::Int(static_cast<long long>(
                      h.ApproxQuantile(0.90))),
                  TablePrinter::Int(static_cast<long long>(
                      h.ApproxQuantile(0.99))),
                  TablePrinter::Int(static_cast<long long>(
                      h.buckets.empty()
                          ? 0
                          : Histogram::UpperBound(h.buckets.back().bucket)))});
  }
  hists.Print(os);
}

}  // namespace kbqa::obs

#endif  // KBQA_OBS_EXPOSITION_H_
