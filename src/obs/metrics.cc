#include "obs/metrics.h"

#include <cctype>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

namespace kbqa::obs {

namespace internal {

uint32_t AssignThreadShard() {
  tl_shard_slot = g_next_shard_slot.fetch_add(1, std::memory_order_relaxed) %
                  static_cast<uint32_t>(kShards);
  return tl_shard_slot;
}

}  // namespace internal

double NanosPerTick() {
#ifndef KBQA_OBS_HAS_TSC
  return 1.0;
#else
  // One-time calibration against steady_clock over a ~2ms window, which
  // bounds the ratio error well under 1% on any invariant-TSC machine.
  // Thread-safe via the static-init guard; concurrent first callers block
  // behind the one doing the sleep.
  static const double kNanosPerTick = [] {
    using Clock = std::chrono::steady_clock;
    const Clock::time_point t0 = Clock::now();
    const uint64_t c0 = NowTicks();
    Clock::time_point t1;
    do {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      t1 = Clock::now();
    } while (t1 - t0 < std::chrono::milliseconds(2));
    const uint64_t c1 = NowTicks();
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
    const double ticks = static_cast<double>(c1 - c0);
    return ticks > 0 ? ns / ticks : 1.0;
  }();
  return kNanosPerTick;
#endif
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.count.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t Histogram::Sum() const {
  uint64_t total = 0;
  for (const Shard& s : shards_) total += s.sum.load(std::memory_order_relaxed);
  return total;
}

void Histogram::Reset() {
  for (Shard& s : shards_) {
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
  }
}

uint64_t MetricsSnapshot::HistogramEntry::ApproxQuantile(double q) const {
  if (count == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  const double target = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (const BucketEntry& b : buckets) {
    cumulative += b.count;
    if (static_cast<double>(cumulative) >= target) {
      return Histogram::UpperBound(b.bucket);
    }
  }
  return buckets.empty() ? 0 : Histogram::UpperBound(buckets.back().bucket);
}

uint64_t MetricsSnapshot::HistogramEntry::ValueAtQuantile(double q) const {
  if (count == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  const double target = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (const BucketEntry& b : buckets) {
    const uint64_t before = cumulative;
    cumulative += b.count;
    if (static_cast<double>(cumulative) < target) continue;
    const uint64_t upper = Histogram::UpperBound(b.bucket);
    // Bucket 0 is the point mass {0}; the overflow bucket has no finite
    // width — report its floor rather than inventing mass beyond 2^62.
    if (b.bucket == 0) return 0;
    const uint64_t lower = Histogram::UpperBound(b.bucket - 1) + 1;
    if (static_cast<double>(cumulative) >= static_cast<double>(count) &&
        target >= static_cast<double>(count)) {
      // Max quantile: interpolation would report the bucket's lower bound
      // (or an interior point) even when the one recorded sample sits at
      // the top of the bucket. `sum` bounds the max from above whenever
      // this bucket holds the final sample(s), so clamp the answer into
      // [lower, min(upper, sum)] and take the top — for a single-sample
      // histogram this is exactly the recorded value.
      const uint64_t sum_cap = sum < lower ? lower : sum;
      return upper < sum_cap ? upper : sum_cap;
    }
    if (upper == UINT64_MAX) return lower;
    const double fraction =
        (target - static_cast<double>(before)) / static_cast<double>(b.count);
    return lower + static_cast<uint64_t>(
                       fraction * static_cast<double>(upper - lower));
  }
  return buckets.empty() ? 0 : Histogram::UpperBound(buckets.back().bucket);
}

namespace {

template <typename Vec>
auto FindByName(const Vec& v, std::string_view name) -> decltype(v.data()) {
  for (const auto& e : v) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

}  // namespace

const MetricsSnapshot::CounterEntry* MetricsSnapshot::counter(
    std::string_view name) const {
  return FindByName(counters, name);
}
const MetricsSnapshot::GaugeEntry* MetricsSnapshot::gauge(
    std::string_view name) const {
  return FindByName(gauges, name);
}
const MetricsSnapshot::HistogramEntry* MetricsSnapshot::histogram(
    std::string_view name) const {
  return FindByName(histograms, name);
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked on purpose: instrumentation sites in static destructors and
  // detached threads may outlive a function-local static's destruction.
  static MetricsRegistry* const kGlobal = [] {
    auto* r = new MetricsRegistry();  // NOLINT(kbqa-naked-new)
    // The environment variable mirrors the compile define for runs that
    // cannot rebuild: a set (non-"0") value starts the process disabled.
    if (const char* env = std::getenv("KBQA_OBS_DISABLED");
        env != nullptr && std::strcmp(env, "0") != 0) {
      SetEnabled(false);
    }
    return r;
  }();
  return *kGlobal;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  MutexLock lock(mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c->Value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->Value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramEntry e;
    e.name = name;
    e.count = h->Count();
    e.sum = h->Sum();
    for (size_t b = 0; b < Histogram::kBuckets; ++b) {
      uint64_t n = 0;
      for (const Histogram::Shard& s : h->shards_) {
        n += s.buckets[b].load(std::memory_order_relaxed);
      }
      if (n > 0) e.buckets.push_back({static_cast<int>(b), n});
    }
    snap.histograms.push_back(std::move(e));
  }
  return snap;
}

void MetricsRegistry::Reset() {
  MutexLock lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

// ---------------------------------------------------------------------------
// JSON exposition. Metric names are code-controlled identifiers, but the
// writer still escapes quotes/backslashes/control bytes so the output is
// always valid JSON; the reader accepts exactly the grammar the writer
// emits (objects, arrays, strings, numbers).

namespace {

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool Eat(char c) {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }
  bool Peek(char c) {
    SkipWs();
    return pos_ < text_.size() && text_[pos_] == c;
  }
  bool AtEnd() {
    SkipWs();
    return pos_ >= text_.size();
  }

  bool ParseString(std::string* out) {
    if (!Eat('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        char esc = text_[pos_++];
        switch (esc) {
          case '"':
            out->push_back('"');
            break;
          case '\\':
            out->push_back('\\');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else {
                return false;
              }
            }
            if (code > 0x7f) return false;  // Writer only escapes ASCII.
            out->push_back(static_cast<char>(code));
            break;
          }
          default:
            return false;
        }
      } else {
        out->push_back(c);
      }
    }
    return false;
  }

  bool ParseU64(uint64_t* out) {
    SkipWs();
    size_t begin = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == begin) return false;
    *out = std::strtoull(std::string(text_.substr(begin, pos_ - begin)).c_str(),
                         nullptr, 10);
    return true;
  }

  bool ParseDouble(double* out) {
    SkipWs();
    size_t begin = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' ||
            text_[pos_] == '+' || text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == begin) return false;
    *out = std::strtod(std::string(text_.substr(begin, pos_ - begin)).c_str(),
                       nullptr);
    return true;
  }

  /// Expects `"key":` next.
  bool EatKey(const char* key) {
    std::string k;
    return ParseString(&k) && k == key && Eat(':');
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": [";
  char buf[64];
  for (size_t i = 0; i < counters.size(); ++i) {
    out += i ? ",\n    " : "\n    ";
    out += "{\"name\": ";
    AppendJsonString(counters[i].name, &out);
    std::snprintf(buf, sizeof(buf), ", \"value\": %" PRIu64 "}",
                  counters[i].value);
    out += buf;
  }
  out += counters.empty() ? "],\n" : "\n  ],\n";
  out += "  \"gauges\": [";
  for (size_t i = 0; i < gauges.size(); ++i) {
    out += i ? ",\n    " : "\n    ";
    out += "{\"name\": ";
    AppendJsonString(gauges[i].name, &out);
    // %.17g round-trips every finite double bit-exactly through strtod.
    std::snprintf(buf, sizeof(buf), ", \"value\": %.17g}", gauges[i].value);
    out += buf;
  }
  out += gauges.empty() ? "],\n" : "\n  ],\n";
  out += "  \"histograms\": [";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramEntry& h = histograms[i];
    out += i ? ",\n    " : "\n    ";
    out += "{\"name\": ";
    AppendJsonString(h.name, &out);
    std::snprintf(buf, sizeof(buf),
                  ", \"count\": %" PRIu64 ", \"sum\": %" PRIu64
                  ", \"buckets\": [",
                  h.count, h.sum);
    out += buf;
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      std::snprintf(buf, sizeof(buf), "%s{\"bucket\": %d, \"count\": %" PRIu64
                    "}",
                    b ? ", " : "", h.buckets[b].bucket, h.buckets[b].count);
      out += buf;
    }
    out += "]}";
  }
  out += histograms.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

bool MetricsSnapshot::FromJson(std::string_view json, MetricsSnapshot* out) {
  *out = MetricsSnapshot();
  JsonParser p(json);
  if (!p.Eat('{')) return false;

  if (!p.EatKey("counters") || !p.Eat('[')) return false;
  if (!p.Peek(']')) {
    do {
      CounterEntry e;
      if (!p.Eat('{') || !p.EatKey("name") || !p.ParseString(&e.name) ||
          !p.Eat(',') || !p.EatKey("value") || !p.ParseU64(&e.value) ||
          !p.Eat('}')) {
        return false;
      }
      out->counters.push_back(std::move(e));
    } while (p.Eat(','));
  }
  if (!p.Eat(']') || !p.Eat(',')) return false;

  if (!p.EatKey("gauges") || !p.Eat('[')) return false;
  if (!p.Peek(']')) {
    do {
      GaugeEntry e;
      if (!p.Eat('{') || !p.EatKey("name") || !p.ParseString(&e.name) ||
          !p.Eat(',') || !p.EatKey("value") || !p.ParseDouble(&e.value) ||
          !p.Eat('}')) {
        return false;
      }
      out->gauges.push_back(std::move(e));
    } while (p.Eat(','));
  }
  if (!p.Eat(']') || !p.Eat(',')) return false;

  if (!p.EatKey("histograms") || !p.Eat('[')) return false;
  if (!p.Peek(']')) {
    do {
      HistogramEntry e;
      if (!p.Eat('{') || !p.EatKey("name") || !p.ParseString(&e.name) ||
          !p.Eat(',') || !p.EatKey("count") || !p.ParseU64(&e.count) ||
          !p.Eat(',') || !p.EatKey("sum") || !p.ParseU64(&e.sum) ||
          !p.Eat(',') || !p.EatKey("buckets") || !p.Eat('[')) {
        return false;
      }
      if (!p.Peek(']')) {
        do {
          BucketEntry b;
          uint64_t bucket = 0;
          if (!p.Eat('{') || !p.EatKey("bucket") || !p.ParseU64(&bucket) ||
              !p.Eat(',') || !p.EatKey("count") || !p.ParseU64(&b.count) ||
              !p.Eat('}')) {
            return false;
          }
          b.bucket = static_cast<int>(bucket);
          e.buckets.push_back(b);
        } while (p.Eat(','));
      }
      if (!p.Eat(']') || !p.Eat('}')) return false;
      out->histograms.push_back(std::move(e));
    } while (p.Eat(','));
  }
  if (!p.Eat(']') || !p.Eat('}')) return false;
  return p.AtEnd();
}

}  // namespace kbqa::obs
