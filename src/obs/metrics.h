#ifndef KBQA_OBS_METRICS_H_
#define KBQA_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#define KBQA_OBS_HAS_TSC 1
#else
#include <chrono>
#endif

namespace kbqa::obs {

/// True when the KBQA_* instrumentation macros are compiled in. The
/// KBQA_OBS_DISABLED define turns every macro site into a no-op for
/// overhead A/B builds; the library itself (registry, snapshots, direct
/// calls) stays functional either way.
#ifdef KBQA_OBS_DISABLED
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

namespace internal {

/// Number of per-metric shards. Threads map onto shards by a stable
/// thread-local slot, so with a typical pool size every thread owns its
/// own cache line and the hot-path increment never contends.
inline constexpr size_t kShards = 16;

inline std::atomic<uint32_t> g_next_shard_slot{0};
inline constexpr uint32_t kUnassignedSlot = UINT32_MAX;
// Constant-initialized so the hot-path access is a plain thread-local
// read with no init-guard (a dynamic initializer would add a guarded TLS
// wrapper call to every metric update).
inline thread_local uint32_t tl_shard_slot = kUnassignedSlot;

uint32_t AssignThreadShard();

/// Stable per-thread shard slot in [0, kShards). Inline so the steady
/// state is a thread-local read and branch, not a cross-TU call.
inline uint32_t ThreadShard() {
  const uint32_t slot = tl_shard_slot;
  if (slot != kUnassignedSlot) [[likely]] {
    return slot;
  }
  return AssignThreadShard();
}

struct alignas(64) PaddedAtomic {
  std::atomic<uint64_t> v{0};
};

inline std::atomic<bool> g_enabled{true};

}  // namespace internal

/// Process-wide runtime kill switch (also settable via the
/// KBQA_OBS_DISABLED *environment variable*, read at registry creation).
/// Counters/gauges/histograms ignore updates while disabled — the
/// single-binary arm of the overhead A/B; the compile-time define is the
/// zero-cost arm.
inline bool RuntimeEnabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}
inline void SetEnabled(bool on) {
  internal::g_enabled.store(on, std::memory_order_relaxed);
}

/// Compile-time-and-runtime gate for instrumentation blocks in user code:
///   if (obs::Enabled()) { <compute + record expensive stats> }
/// folds to `if (false)` under KBQA_OBS_DISABLED.
inline bool Enabled() {
  if constexpr (!kCompiledIn) {
    return false;
  } else {
    return RuntimeEnabled();
  }
}

/// Monotonic fine-grained tick source for latency spans. On x86-64 this
/// is rdtsc (~7ns, an order of magnitude cheaper than a clock syscall);
/// elsewhere it falls back to steady_clock nanoseconds.
inline uint64_t NowTicks() {
#ifdef KBQA_OBS_HAS_TSC
  return __rdtsc();
#else
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

/// Nanoseconds per tick. Calibrated once against steady_clock over a ~2ms
/// window on first use (x86); exactly 1.0 on the fallback path.
double NanosPerTick();

inline uint64_t TicksToNanos(uint64_t ticks) {
  return static_cast<uint64_t>(static_cast<double>(ticks) * NanosPerTick());
}

/// The sharded-cell primitive shared by registered counters and
/// per-instance statistics (e.g. the online value-cache stats): Add is a
/// single uncontended relaxed fetch_add on the calling thread's cell;
/// Value merges cells on read. The merged value depends only on the set
/// of updates, never on which thread ran where.
class ShardedCounter {
 public:
  void Add(uint64_t n) {
    shards_[internal::ThreadShard()].v.fetch_add(n,
                                                 std::memory_order_relaxed);
  }
  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }
  void Reset() {
    for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<internal::PaddedAtomic, internal::kShards> shards_;
};

/// Named monotone counter. Obtain via MetricsRegistry::GetCounter (the
/// pointer is stable for the registry's lifetime) or the KBQA_COUNTER_ADD
/// macro, which caches the lookup in a function-local static.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    if (!RuntimeEnabled()) return;
    cells_.Add(n);
  }
  uint64_t Value() const { return cells_.Value(); }
  void Reset() { cells_.Reset(); }

 private:
  ShardedCounter cells_;
};

/// Named last-write-wins gauge (double-valued; lock-free on x86-64).
class Gauge {
 public:
  void Set(double v) {
    if (!RuntimeEnabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Log-bucketed histogram over uint64 values (latency in ns, sizes, …).
/// Bucket 0 holds the value 0; bucket b >= 1 holds [2^(b-1), 2^b - 1];
/// the last bucket absorbs everything above 2^62. Buckets, count, and sum
/// are all sharded like Counter, so Record is a handful of uncontended
/// relaxed increments and the merged snapshot is independent of thread
/// placement.
class Histogram {
 public:
  static constexpr size_t kBuckets = 64;

  static int BucketOf(uint64_t value) {
    if (value == 0) return 0;
    const int w = std::bit_width(value);
    return w > static_cast<int>(kBuckets) - 1 ? static_cast<int>(kBuckets) - 1
                                              : w;
  }
  /// Inclusive upper bound of bucket b (UINT64_MAX for the last).
  static uint64_t UpperBound(int b) {
    if (b <= 0) return 0;
    if (b >= static_cast<int>(kBuckets) - 1) return UINT64_MAX;
    return (uint64_t{1} << b) - 1;
  }

  void Record(uint64_t value) {
    if (!RuntimeEnabled()) return;
    Shard& s = shards_[internal::ThreadShard()];
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(value, std::memory_order_relaxed);
    s.buckets[static_cast<size_t>(BucketOf(value))].fetch_add(
        1, std::memory_order_relaxed);
  }

  uint64_t Count() const;
  uint64_t Sum() const;
  void Reset();

 private:
  friend class MetricsRegistry;
  struct alignas(64) Shard {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::array<std::atomic<uint64_t>, kBuckets> buckets{};
  };
  std::array<Shard, internal::kShards> shards_;
};

/// Point-in-time merged view of a registry, sorted by metric name (so two
/// snapshots of identical update sets compare equal regardless of thread
/// count or interleaving). Serializes to JSON and parses its own output.
struct MetricsSnapshot {
  struct CounterEntry {
    std::string name;
    uint64_t value = 0;
    bool operator==(const CounterEntry&) const = default;
  };
  struct GaugeEntry {
    std::string name;
    double value = 0;
    bool operator==(const GaugeEntry&) const = default;
  };
  struct BucketEntry {
    int bucket = 0;
    uint64_t count = 0;
    bool operator==(const BucketEntry&) const = default;
  };
  struct HistogramEntry {
    std::string name;
    uint64_t count = 0;
    uint64_t sum = 0;
    /// Non-empty buckets only, ascending bucket index.
    std::vector<BucketEntry> buckets;

    double Mean() const {
      return count == 0 ? 0
                        : static_cast<double>(sum) / static_cast<double>(count);
    }
    /// Inclusive upper bound of the bucket where the cumulative count
    /// first reaches q * count (the log-bucket quantile approximation).
    uint64_t ApproxQuantile(double q) const;
    /// Quantile with linear interpolation inside the landing bucket:
    /// assumes the bucket's mass is spread uniformly over [lower, upper]
    /// and returns the value at the target rank's position within it.
    /// Strictly tighter than ApproxQuantile (which always reports the
    /// bucket ceiling — a 2x overestimate in the worst case for the
    /// power-of-two buckets); exact for single-bucket point masses. This
    /// is what makes `online.serve.latency` percentiles queryable from
    /// the registry without a bench-side reservoir.
    uint64_t ValueAtQuantile(double q) const;

    bool operator==(const HistogramEntry&) const = default;
  };

  std::vector<CounterEntry> counters;
  std::vector<GaugeEntry> gauges;
  std::vector<HistogramEntry> histograms;

  const CounterEntry* counter(std::string_view name) const;
  const GaugeEntry* gauge(std::string_view name) const;
  const HistogramEntry* histogram(std::string_view name) const;

  std::string ToJson() const;
  /// Parses the exact shape ToJson emits. Returns false on malformed
  /// input; `*out` is unspecified in that case.
  static bool FromJson(std::string_view json, MetricsSnapshot* out);

  bool operator==(const MetricsSnapshot&) const = default;
};

/// Named metric registry. `Global()` is the process-wide instance every
/// instrumentation macro records into; tests construct private instances.
/// Get* interns the name on first use and returns a pointer that stays
/// valid for the registry's lifetime — instrumentation sites cache it in
/// a static and pay only the increment afterwards.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Global();

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  MetricsSnapshot Snapshot() const;
  /// Zeroes every registered metric (names stay registered).
  void Reset();

  static bool enabled() { return RuntimeEnabled(); }
  static void set_enabled(bool on) { SetEnabled(on); }

 private:
  /// Guards the name → metric maps only; the metric objects themselves are
  /// internally synchronized (sharded atomics) and the returned pointers
  /// stay valid without the lock.
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      GUARDED_BY(mu_);
};

}  // namespace kbqa::obs

#endif  // KBQA_OBS_METRICS_H_
