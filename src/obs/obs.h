#ifndef KBQA_OBS_OBS_H_
#define KBQA_OBS_OBS_H_

/// Umbrella header for instrumentation sites: include this and use the
/// macros below. Each macro caches its registry lookup in a function-local
/// static, so the steady-state cost is the increment alone. Defining
/// KBQA_OBS_DISABLED at compile time turns every macro into a no-op
/// (guard any surrounding stat computation with `if (obs::Enabled())`,
/// which folds to `if (false)` in that configuration).

#include "obs/metrics.h"
#include "obs/trace.h"

#define KBQA_OBS_CONCAT_INNER(a, b) a##b
#define KBQA_OBS_CONCAT(a, b) KBQA_OBS_CONCAT_INNER(a, b)

#ifdef KBQA_OBS_DISABLED

#define KBQA_COUNTER_ADD(name, n) static_cast<void>(0)
#define KBQA_GAUGE_SET(name, v) static_cast<void>(0)
#define KBQA_HISTOGRAM_RECORD(name, v) static_cast<void>(0)
#define KBQA_TRACE_SPAN(name) static_cast<void>(0)
#define KBQA_TRACE_SPAN_SAMPLED(name) static_cast<void>(0)
#define KBQA_TRACE_DETAIL_WINDOW() static_cast<void>(0)

#else

/// Bumps the named process-wide counter by n.
#define KBQA_COUNTER_ADD(name, n)                                        \
  do {                                                                   \
    static ::kbqa::obs::Counter* const kbqa_obs_counter =                \
        ::kbqa::obs::MetricsRegistry::Global().GetCounter(name);         \
    kbqa_obs_counter->Add(static_cast<uint64_t>(n));                     \
  } while (0)

/// Sets the named gauge to v (converted to double).
#define KBQA_GAUGE_SET(name, v)                                          \
  do {                                                                   \
    static ::kbqa::obs::Gauge* const kbqa_obs_gauge =                    \
        ::kbqa::obs::MetricsRegistry::Global().GetGauge(name);           \
    kbqa_obs_gauge->Set(static_cast<double>(v));                         \
  } while (0)

/// Records v into the named log-bucketed histogram.
#define KBQA_HISTOGRAM_RECORD(name, v)                                   \
  do {                                                                   \
    static ::kbqa::obs::Histogram* const kbqa_obs_histogram =            \
        ::kbqa::obs::MetricsRegistry::Global().GetHistogram(name);       \
    kbqa_obs_histogram->Record(static_cast<uint64_t>(v));                \
  } while (0)

#define KBQA_TRACE_SPAN_IMPL(name, sampled, guard, line)                 \
  static const ::kbqa::obs::SpanSite KBQA_OBS_CONCAT(kbqa_obs_site_,     \
                                                     line){name,         \
                                                           sampled};     \
  const ::kbqa::obs::guard KBQA_OBS_CONCAT(kbqa_obs_span_, line)(        \
      &KBQA_OBS_CONCAT(kbqa_obs_site_, line))

/// Scoped trace span: records elapsed ns into histogram "span.<name>" on
/// scope exit and emits a trace event while Tracing is active. Use for
/// coarse stages (whole Answer, EM iterations, BFS rounds).
#define KBQA_TRACE_SPAN(name) \
  KBQA_TRACE_SPAN_IMPL(name, false, SpanGuard, __LINE__)

/// As KBQA_TRACE_SPAN but recorded only inside a firing detail window
/// (KBQA_TRACE_DETAIL_WINDOW) — for stages entered many times per answer.
/// Outside a firing window the cost is one thread-local load and branch.
#define KBQA_TRACE_SPAN_SAMPLED(name) \
  KBQA_TRACE_SPAN_IMPL(name, true, SampledSpanGuard, __LINE__)

/// Opens a scoped sampling window for one request-shaped unit of work:
/// 1 in 2^Tracing::sample_shift() windows fire, and sampled spans inside
/// a firing window all record (coherent per-request stage breakdowns).
#define KBQA_TRACE_DETAIL_WINDOW()                                       \
  const ::kbqa::obs::DetailWindow KBQA_OBS_CONCAT(kbqa_obs_window_,      \
                                                  __LINE__)

#endif  // KBQA_OBS_DISABLED

#endif  // KBQA_OBS_OBS_H_
