#include "obs/slo.h"

#include <algorithm>

#include "obs/metrics.h"

namespace kbqa::obs {

namespace {

uint64_t NsToSecond(uint64_t ns) { return ns / 1'000'000'000ull; }

}  // namespace

SloMonitor::SloMonitor(const SloSpec& spec)
    : spec_(spec), buckets_(kMaxWindowSeconds) {
  spec_.availability_target = std::min(spec_.availability_target, 1.0 - 1e-9);
  spec_.short_window_s =
      std::max(1u, std::min(spec_.short_window_s, kMaxWindowSeconds));
  spec_.long_window_s = std::max(
      spec_.short_window_s, std::min(spec_.long_window_s, kMaxWindowSeconds));
}

void SloMonitor::Record(bool good, uint64_t now_ns) {
  const uint64_t second = NsToSecond(now_ns);
  SecondBucket& bucket = buckets_[second % buckets_.size()];
  uint64_t tagged = bucket.second.load(std::memory_order_acquire);
  if (tagged != second) {
    // Recycle the stale slot for the new second. The CAS winner zeroes the
    // counters; a racing recorder that read the fresh tag before the reset
    // finished can lose its increment — a bounded, once-per-second-rollover
    // imprecision accepted for a lock-free hot path (windows are seconds
    // wide; SLO math is unaffected by a one-count skew).
    if (bucket.second.compare_exchange_strong(tagged, second,
                                              std::memory_order_acq_rel)) {
      bucket.good.store(0, std::memory_order_relaxed);
      bucket.bad.store(0, std::memory_order_relaxed);
    }
  }
  if (good) {
    bucket.good.fetch_add(1, std::memory_order_relaxed);
    total_good_.fetch_add(1, std::memory_order_relaxed);
  } else {
    bucket.bad.fetch_add(1, std::memory_order_relaxed);
    total_bad_.fetch_add(1, std::memory_order_relaxed);
  }
}

void SloMonitor::RecordRequest(bool ok, uint64_t total_latency_ns,
                               uint64_t now_ns) {
  bool good = ok;
  if (good && spec_.latency_threshold_ns > 0 &&
      total_latency_ns > spec_.latency_threshold_ns) {
    good = false;
  }
  Record(good, now_ns);
}

void SloMonitor::SumWindow(uint64_t now_s, uint32_t window_s, uint64_t* good,
                           uint64_t* bad) const {
  *good = 0;
  *bad = 0;
  const uint64_t oldest = now_s >= window_s ? now_s - window_s + 1 : 0;
  for (uint64_t s = oldest; s <= now_s; ++s) {
    const SecondBucket& bucket = buckets_[s % buckets_.size()];
    if (bucket.second.load(std::memory_order_acquire) != s) continue;
    *good += bucket.good.load(std::memory_order_relaxed);
    *bad += bucket.bad.load(std::memory_order_relaxed);
  }
}

double SloMonitor::BurnRate(uint64_t good, uint64_t bad) const {
  const uint64_t total = good + bad;
  if (total == 0) return 0;
  const double bad_fraction =
      static_cast<double>(bad) / static_cast<double>(total);
  const double budget_fraction = 1.0 - spec_.availability_target;
  return bad_fraction / budget_fraction;
}

SloEvaluation SloMonitor::Evaluate(uint64_t now_ns) const {
  const uint64_t now_s = NsToSecond(now_ns);
  SloEvaluation eval;
  SumWindow(now_s, spec_.short_window_s, &eval.short_good, &eval.short_bad);
  SumWindow(now_s, spec_.long_window_s, &eval.long_good, &eval.long_bad);
  eval.short_burn_rate = BurnRate(eval.short_good, eval.short_bad);
  eval.long_burn_rate = BurnRate(eval.long_good, eval.long_bad);
  eval.firing = eval.short_burn_rate >= spec_.burn_rate_threshold &&
                eval.long_burn_rate >= spec_.burn_rate_threshold;
  return eval;
}

SloEvaluation SloMonitor::PublishGauges(uint64_t now_ns) const {
  SloEvaluation eval = Evaluate(now_ns);
  if (Enabled()) {
    MetricsRegistry& registry = MetricsRegistry::Global();
    registry.GetGauge("slo.burn_rate_short")->Set(eval.short_burn_rate);
    registry.GetGauge("slo.burn_rate_long")->Set(eval.long_burn_rate);
    registry.GetGauge("slo.window_short_good")
        ->Set(static_cast<double>(eval.short_good));
    registry.GetGauge("slo.window_short_bad")
        ->Set(static_cast<double>(eval.short_bad));
    registry.GetGauge("slo.window_long_good")
        ->Set(static_cast<double>(eval.long_good));
    registry.GetGauge("slo.window_long_bad")
        ->Set(static_cast<double>(eval.long_bad));
    registry.GetGauge("slo.firing")->Set(eval.firing ? 1 : 0);
    registry.GetGauge("slo.good_total")->Set(static_cast<double>(TotalGood()));
    registry.GetGauge("slo.bad_total")->Set(static_cast<double>(TotalBad()));
  }
  return eval;
}

uint64_t SloMonitor::TotalGood() const {
  return total_good_.load(std::memory_order_relaxed);
}

uint64_t SloMonitor::TotalBad() const {
  return total_bad_.load(std::memory_order_relaxed);
}

}  // namespace kbqa::obs
