#ifndef KBQA_OBS_SLO_H_
#define KBQA_OBS_SLO_H_

/// Sliding-window SLO burn-rate monitor (DESIGN.md §8).
///
/// The serving layer declares one SLO — "fraction `availability_target`
/// of requests are good", where good means resolved OK within
/// `latency_threshold_ns` — and records every terminal request outcome as
/// good or bad. The monitor keeps per-second good/bad counters in a fixed
/// ring and evaluates the burn rate over two windows:
///
///   burn = (bad / total within window) / (1 - availability_target)
///
/// A burn rate of 1 consumes the error budget exactly at the rate the SLO
/// allows; 14.4 consumes a 30-day budget in ~2 days. The alert fires only
/// when BOTH windows exceed the threshold (the long window proves the
/// burn is sustained, the short one proves it is still happening), the
/// standard multi-window guard against paging on old, recovered incidents.
///
/// Time is caller-supplied (steady-clock ns) so tests drive the windows
/// deterministically. Recording is lock-free: per-second buckets are
/// atomics, tagged with their absolute second so stale ring slots are
/// recycled in place.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace kbqa::obs {

struct SloSpec {
  /// Target fraction of good requests, e.g. 0.999. Must be < 1.
  double availability_target = 0.999;
  /// A request slower than this is bad even if it succeeded. 0 disables
  /// the latency criterion.
  uint64_t latency_threshold_ns = 50'000'000;  // 50ms
  /// Burn-rate evaluation windows, in seconds. short < long <= window
  /// capacity (kMaxWindowSeconds).
  uint32_t short_window_s = 300;
  uint32_t long_window_s = 3600;
  /// Both windows must burn at or above this rate to fire.
  double burn_rate_threshold = 14.4;
};

struct SloEvaluation {
  double short_burn_rate = 0;
  double long_burn_rate = 0;
  uint64_t short_good = 0;
  uint64_t short_bad = 0;
  uint64_t long_good = 0;
  uint64_t long_bad = 0;
  bool firing = false;
};

class SloMonitor {
 public:
  /// Ring capacity in seconds; windows longer than this are clamped.
  static constexpr uint32_t kMaxWindowSeconds = 3600;

  explicit SloMonitor(const SloSpec& spec);

  const SloSpec& spec() const { return spec_; }

  /// Records one terminal request outcome. `now_ns` is steady-clock time
  /// (obs::NowSteadyNs()); callers on the serving path pass the clock
  /// reading they already took. Thread-safe, lock-free.
  void Record(bool good, uint64_t now_ns);

  /// Convenience: applies the spec's goodness criteria to a request
  /// outcome, then records it.
  void RecordRequest(bool ok, uint64_t total_latency_ns, uint64_t now_ns);

  /// Burn rates over both windows ending at `now_ns`.
  SloEvaluation Evaluate(uint64_t now_ns) const;

  /// Evaluates and publishes slo.* gauges into the global metrics
  /// registry.
  SloEvaluation PublishGauges(uint64_t now_ns) const;

  /// Lifetime totals (not windowed).
  uint64_t TotalGood() const;
  uint64_t TotalBad() const;

 private:
  struct SecondBucket {
    std::atomic<uint64_t> second{UINT64_MAX};  // absolute second tag
    std::atomic<uint64_t> good{0};
    std::atomic<uint64_t> bad{0};
  };

  /// Sums good/bad over the `window_s` seconds ending at `now_s`.
  void SumWindow(uint64_t now_s, uint32_t window_s, uint64_t* good,
                 uint64_t* bad) const;
  double BurnRate(uint64_t good, uint64_t bad) const;

  SloSpec spec_;
  std::vector<SecondBucket> buckets_;
  std::atomic<uint64_t> total_good_{0};
  std::atomic<uint64_t> total_bad_{0};
};

}  // namespace kbqa::obs

#endif  // KBQA_OBS_SLO_H_
