#include "obs/trace.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <ostream>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace kbqa::obs {

namespace {

/// One exported trace row (a relaxed snapshot of a ring slot).
struct TraceEvent {
  const char* name;      // static string owned by the SpanSite
  uint64_t begin_ticks;
  uint64_t dur_ns;
};

constexpr size_t kRingCapacity = 1 << 14;  // per thread; oldest overwritten

/// One ring slot. Fields are individually atomic (relaxed — plain stores
/// on x86) so an export that overlaps live recording reads well-defined
/// values instead of racing: a torn slot can mix two events' fields, but
/// exports taken after Tracing::Stop() + quiescence see exact data, and a
/// mid-flight export degrades to at most one stale/mixed row per thread
/// rather than undefined behavior.
struct TraceSlot {
  std::atomic<const char*> name{nullptr};
  std::atomic<uint64_t> begin_ticks{0};
  std::atomic<uint64_t> dur_ns{0};
};

/// Per-thread event ring. Only the owning thread writes. `count` is the
/// monotone number of events ever pushed (slot = count % capacity).
struct ThreadRing {
  std::vector<TraceSlot> events{kRingCapacity};
  std::atomic<uint64_t> count{0};
  uint32_t tid = 0;
};

struct TraceState {
  Mutex mu;
  /// Guarded: the vector grows when new threads register their rings; the
  /// rings themselves are written lock-free by their owning threads.
  std::vector<std::unique_ptr<ThreadRing>> rings GUARDED_BY(mu);
  std::atomic<uint64_t> start_ticks{0};
};

TraceState& State() {
  // Leaked: rings must outlive thread exit and static destruction order.
  static TraceState* const kState = new TraceState();  // NOLINT(kbqa-naked-new)
  return *kState;
}

ThreadRing* LocalRing() {
  thread_local ThreadRing* const ring = [] {
    auto owned = std::make_unique<ThreadRing>();
    TraceState& s = State();
    MutexLock lock(s.mu);
    owned->tid = static_cast<uint32_t>(s.rings.size());
    s.rings.push_back(std::move(owned));
    return s.rings.back().get();
  }();
  return ring;
}

}  // namespace

namespace internal {

void FinishSpan(const SpanSite* site, uint64_t begin_ticks) {
  const uint64_t end = NowTicks();
  const uint64_t dur_ns = TicksToNanos(end - begin_ticks);
  site->histogram()->Record(dur_ns);
  if (g_trace_active.load(std::memory_order_relaxed)) {
    ThreadRing* ring = LocalRing();
    const uint64_t idx = ring->count.load(std::memory_order_relaxed);
    TraceSlot& slot = ring->events[idx % kRingCapacity];
    slot.name.store(site->name(), std::memory_order_relaxed);
    slot.begin_ticks.store(begin_ticks, std::memory_order_relaxed);
    slot.dur_ns.store(dur_ns, std::memory_order_relaxed);
    ring->count.store(idx + 1, std::memory_order_release);
  }
}

}  // namespace internal

void Tracing::Start() {
  TraceState& s = State();
  MutexLock lock(s.mu);
  for (auto& ring : s.rings) ring->count.store(0, std::memory_order_relaxed);
  s.start_ticks.store(NowTicks(), std::memory_order_relaxed);
  internal::g_trace_active.store(true, std::memory_order_release);
}

void Tracing::Stop() {
  internal::g_trace_active.store(false, std::memory_order_release);
}

void Tracing::SetSampleShift(unsigned shift) {
  if (shift > 20) shift = 20;
  internal::g_sample_period.store(1u << shift, std::memory_order_relaxed);
  // Take effect immediately on this thread instead of draining whatever
  // countdown the previous period left behind.
  internal::tl_sample_countdown = 1;
}

size_t Tracing::CollectedEvents() {
  TraceState& s = State();
  MutexLock lock(s.mu);
  size_t total = 0;
  for (const auto& ring : s.rings) {
    total += static_cast<size_t>(std::min<uint64_t>(
        ring->count.load(std::memory_order_acquire), kRingCapacity));
  }
  return total;
}

void Tracing::ExportChromeTrace(std::ostream& os) {
  struct Row {
    uint32_t tid;
    const char* name;
    uint64_t begin_ticks;
    uint64_t dur_ns;
  };
  std::vector<Row> rows;
  uint64_t dropped = 0;
  uint64_t start_ticks = 0;
  {
    TraceState& s = State();
    MutexLock lock(s.mu);
    start_ticks = s.start_ticks.load(std::memory_order_relaxed);
    for (const auto& ring : s.rings) {
      const uint64_t count = ring->count.load(std::memory_order_acquire);
      const uint64_t kept = std::min<uint64_t>(count, kRingCapacity);
      dropped += count - kept;
      for (uint64_t i = 0; i < kept; ++i) {
        const TraceSlot& slot = ring->events[i];
        const TraceEvent e{slot.name.load(std::memory_order_relaxed),
                           slot.begin_ticks.load(std::memory_order_relaxed),
                           slot.dur_ns.load(std::memory_order_relaxed)};
        // A slot published before the acquire-read of `count` is complete;
        // a null name can only appear if an export overlaps live recording
        // (torn slot) — skip it rather than emit a broken row.
        if (e.name == nullptr) continue;
        rows.push_back({ring->tid, e.name, e.begin_ticks, e.dur_ns});
      }
    }
  }
  // Ring order is span-*completion* order; present begin order instead
  // (and make the export deterministic for a fixed span structure).
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.tid != b.tid) return a.tid < b.tid;
    if (a.begin_ticks != b.begin_ticks) return a.begin_ticks < b.begin_ticks;
    return std::strcmp(a.name, b.name) < 0;
  });

  os << "{\"displayTimeUnit\": \"ms\", \"droppedEvents\": " << dropped
     << ", \"traceEvents\": [";
  char buf[64];
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    const uint64_t rel =
        r.begin_ticks >= start_ticks ? r.begin_ticks - start_ticks : 0;
    os << (i ? ",\n" : "\n");
    os << "{\"name\": \"" << r.name
       << "\", \"cat\": \"kbqa\", \"ph\": \"X\", \"pid\": 1, \"tid\": "
       << r.tid << ", \"ts\": ";
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(TicksToNanos(rel)) / 1000.0);
    os << buf << ", \"dur\": ";
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(r.dur_ns) / 1000.0);
    os << buf << "}";
  }
  os << (rows.empty() ? "]}\n" : "\n]}\n");
}

void Tracing::WriteSpanSummary(std::ostream& os, size_t top_n) {
  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  std::vector<const MetricsSnapshot::HistogramEntry*> spans;
  for (const auto& h : snap.histograms) {
    if (h.name.rfind("span.", 0) == 0 && h.count > 0) spans.push_back(&h);
  }
  std::sort(spans.begin(), spans.end(),
            [](const auto* a, const auto* b) {
              if (a->sum != b->sum) return a->sum > b->sum;
              return a->name < b->name;
            });
  if (spans.size() > top_n) spans.resize(top_n);

  os << "[obs] top spans by total time\n";
  char buf[160];
  for (const auto* h : spans) {
    std::snprintf(buf, sizeof(buf),
                  "  %-32s count %-10llu total %10.3f ms   avg %9.3f us   "
                  "p99 <= %9.3f us\n",
                  h->name.c_str(),
                  static_cast<unsigned long long>(h->count),
                  static_cast<double>(h->sum) / 1e6,
                  h->Mean() / 1e3,
                  static_cast<double>(h->ApproxQuantile(0.99)) / 1e3);
    os << buf;
  }
  if (spans.empty()) os << "  (no spans recorded)\n";
}

}  // namespace kbqa::obs
