#ifndef KBQA_OBS_TRACE_H_
#define KBQA_OBS_TRACE_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <iosfwd>

#include "obs/metrics.h"

namespace kbqa::obs {

class SpanSite;

namespace internal {

/// True while Tracing::Start()/Stop() bounds a collection window.
inline std::atomic<bool> g_trace_active{false};

/// Detail windows open 1 in g_sample_period times (power of two).
inline std::atomic<uint32_t> g_sample_period{1u << 6};

/// Entries remaining until this thread's next detail window fires. Starts
/// at 1 so a thread's first window always records (never reaches 0).
inline thread_local uint32_t tl_sample_countdown = 1;

/// True inside a firing detail window: the single thread-local flag every
/// sampled span site checks — the hot-path skip is one TLS load and
/// branch. While a trace is active every window fires.
inline thread_local bool tl_detail = false;

/// Slow path shared by both guards: records the elapsed time into the
/// site's histogram and appends a trace event while a trace is active.
void FinishSpan(const SpanSite* site, uint64_t begin_ticks);

}  // namespace internal

/// One static instrumentation site created by KBQA_TRACE_SPAN /
/// KBQA_TRACE_SPAN_SAMPLED. Interns the "span.<name>" latency histogram
/// once; the per-entry cost is just the guard below.
class SpanSite {
 public:
  SpanSite(const char* name, bool sampled)
      : name_(name),
        histogram_(MetricsRegistry::Global().GetHistogram(
            std::string("span.") + name)),
        sampled_(sampled) {}

  const char* name() const { return name_; }
  Histogram* histogram() const { return histogram_; }
  bool sampled() const { return sampled_; }

 private:
  const char* name_;
  Histogram* histogram_;
  bool sampled_;
};

/// RAII span for always-on sites: on destruction records the elapsed
/// nanoseconds into the site's histogram and, when a trace is being
/// collected, appends a trace event to the calling thread's ring buffer.
class SpanGuard {
 public:
  explicit SpanGuard(const SpanSite* site) : site_(site) {
    if (!RuntimeEnabled()) {
      site_ = nullptr;
      return;
    }
    begin_ = NowTicks();
  }
  ~SpanGuard() {
    if (site_ != nullptr) internal::FinishSpan(site_, begin_);
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  const SpanSite* site_;  // null when this entry was skipped
  uint64_t begin_ = 0;
};

/// RAII span for sampled (hot-path) sites: records only inside a firing
/// DetailWindow (every window fires while a trace is active). The skip
/// path — the common case — is one thread-local load and a branch, cheap
/// enough for per-predicate call sites.
class SampledSpanGuard {
 public:
  explicit SampledSpanGuard(const SpanSite* site) : site_(site) {
    if (!internal::tl_detail) {
      site_ = nullptr;
      return;
    }
    begin_ = NowTicks();
  }
  ~SampledSpanGuard() {
    if (site_ != nullptr) internal::FinishSpan(site_, begin_);
  }
  SampledSpanGuard(const SampledSpanGuard&) = delete;
  SampledSpanGuard& operator=(const SampledSpanGuard&) = delete;

 private:
  const SpanSite* site_;
  uint64_t begin_ = 0;
};

/// Scoped sampling decision for a request-shaped unit of work (one Answer
/// call): 1 in g_sample_period windows fire, and while one is open every
/// KBQA_TRACE_SPAN_SAMPLED site inside records. Sampling whole requests —
/// instead of individual span entries — keeps per-entry skip costs to one
/// TLS load and yields coherent per-request stage breakdowns when a
/// window does fire. While a trace is active every window fires.
class DetailWindow {
 public:
  DetailWindow() {
    if (!RuntimeEnabled()) return;
    if (!internal::g_trace_active.load(std::memory_order_relaxed)) {
      uint32_t& countdown = internal::tl_sample_countdown;
      if (countdown > 1) {
        --countdown;
        return;
      }
      countdown = internal::g_sample_period.load(std::memory_order_relaxed);
    }
    set_ = !internal::tl_detail;  // Nested windows leave the flag alone.
    internal::tl_detail = true;
  }
  ~DetailWindow() {
    if (set_) internal::tl_detail = false;
  }
  DetailWindow(const DetailWindow&) = delete;
  DetailWindow& operator=(const DetailWindow&) = delete;

 private:
  bool set_ = false;
};

/// Process-wide trace collection over per-thread ring buffers. Spans feed
/// their histograms whether or not a trace is active; Start()/Stop()
/// bound the window in which they additionally emit trace events (and in
/// which sampled sites record unconditionally).
class Tracing {
 public:
  /// Clears all ring buffers and starts collecting.
  static void Start();
  static void Stop();
  static bool active() {
    return internal::g_trace_active.load(std::memory_order_relaxed);
  }

  /// Detail windows fire 1 in 2^shift while no trace is active (default
  /// 6 → 1/64; shift 0 records everything). Also resets the calling
  /// thread's sampling countdown so the new period takes effect
  /// immediately on this thread.
  static void SetSampleShift(unsigned shift);
  static unsigned sample_shift() {
    return static_cast<unsigned>(std::countr_zero(
        internal::g_sample_period.load(std::memory_order_relaxed)));
  }

  /// Writes the collected events as Chrome trace-event JSON (load in
  /// chrome://tracing or Perfetto). Events are sorted by (thread, begin
  /// time), so the single-threaded export is deterministic in structure.
  static void ExportChromeTrace(std::ostream& os);

  /// Plain-text top-N summary of all span histograms ("span.*" in the
  /// global registry) ordered by total time.
  static void WriteSpanSummary(std::ostream& os, size_t top_n);

  /// Events currently held across all rings (capped by ring capacity).
  static size_t CollectedEvents();
};

}  // namespace kbqa::obs

#endif  // KBQA_OBS_TRACE_H_
