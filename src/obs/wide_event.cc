#include "obs/wide_event.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <memory>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace kbqa::obs {

namespace {

constexpr const char* kStageNames[kWideStageCount] = {
    "ner", "conceptualize", "template_match", "score", "value_lookup",
    "rank",
};

constexpr const char* kOutcomeNames[kWideOutcomeCount] = {
    "answered",     "unanswered",   "deadline_exceeded", "error",
    "rejected",     "shed_expired", "shed_shutdown",
};

// ---- ring slot packing -------------------------------------------------
//
// A WideEvent flattens into a fixed array of uint64 words so a ring slot
// can be per-field atomic (the same torn-row-tolerant discipline as the
// trace ring, see trace.cc). Word 0 is the slot's sequence tag: the
// monotone event index + 1, written before the payload; a reader that
// copies a slot and then sees a different tag knows the writer lapped it
// mid-copy and skips the row.

constexpr size_t kSlotWords = 24;

enum SlotWord : size_t {
  kWordSeq = 0,
  kWordTraceId,
  kWordAdmitNs,
  kWordFlags,          // outcome | has_deadline << 8
  kWordSizes,          // batch_size | question_bytes << 32
  kWordQueueWaitNs,
  kWordBatchWaitNs,
  kWordServiceNs,
  kWordTotalNs,
  kWordBudgetNs,       // int64 bit-cast
  kWordStageNs0,       // .. kWordStageNs0 + 5
  kWordStageCounts0 = kWordStageNs0 + kWideStageCount,  // 2 counts per word
  kWordValueCache = kWordStageCounts0 + 3,  // hits | misses << 32
  kWordAnswerCache,
  kWordBlockCache,
  kWordBlocksDecoded,
  kWordKbEpoch,
};
static_assert(kWordKbEpoch == kSlotWords - 1, "slot layout mismatch");

uint64_t PackPair(uint32_t lo, uint32_t hi) {
  return static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
}

void EncodeEvent(const WideEvent& e, uint64_t (&w)[kSlotWords]) {
  w[kWordTraceId] = e.trace_id;
  w[kWordAdmitNs] = e.admit_ns;
  w[kWordFlags] = static_cast<uint64_t>(e.outcome) |
                  (static_cast<uint64_t>(e.has_deadline ? 1 : 0) << 8);
  w[kWordSizes] = PackPair(e.batch_size, e.question_bytes);
  w[kWordQueueWaitNs] = e.queue_wait_ns;
  w[kWordBatchWaitNs] = e.batch_wait_ns;
  w[kWordServiceNs] = e.service_ns;
  w[kWordTotalNs] = e.total_ns;
  w[kWordBudgetNs] = static_cast<uint64_t>(e.deadline_budget_ns);
  for (size_t i = 0; i < kWideStageCount; ++i) {
    w[kWordStageNs0 + i] = e.stages[i].ns;
  }
  for (size_t i = 0; i < 3; ++i) {
    w[kWordStageCounts0 + i] =
        PackPair(e.stages[2 * i].count, e.stages[2 * i + 1].count);
  }
  w[kWordValueCache] = PackPair(e.value_cache_hits, e.value_cache_misses);
  w[kWordAnswerCache] = PackPair(e.answer_cache_hits, e.answer_cache_misses);
  w[kWordBlockCache] = PackPair(e.block_cache_hits, e.block_cache_misses);
  w[kWordBlocksDecoded] = e.blocks_decoded;
  w[kWordKbEpoch] = e.kb_epoch;
}

WideEvent DecodeEvent(const uint64_t (&w)[kSlotWords]) {
  WideEvent e;
  e.trace_id = w[kWordTraceId];
  e.admit_ns = w[kWordAdmitNs];
  uint64_t outcome = w[kWordFlags] & 0xff;
  if (outcome >= kWideOutcomeCount) outcome = 0;  // torn row tolerated
  e.outcome = static_cast<WideOutcome>(outcome);
  e.has_deadline = ((w[kWordFlags] >> 8) & 1) != 0;
  e.batch_size = static_cast<uint32_t>(w[kWordSizes]);
  e.question_bytes = static_cast<uint32_t>(w[kWordSizes] >> 32);
  e.queue_wait_ns = w[kWordQueueWaitNs];
  e.batch_wait_ns = w[kWordBatchWaitNs];
  e.service_ns = w[kWordServiceNs];
  e.total_ns = w[kWordTotalNs];
  e.deadline_budget_ns = static_cast<int64_t>(w[kWordBudgetNs]);
  for (size_t i = 0; i < kWideStageCount; ++i) {
    e.stages[i].ns = w[kWordStageNs0 + i];
  }
  for (size_t i = 0; i < 3; ++i) {
    e.stages[2 * i].count = static_cast<uint32_t>(w[kWordStageCounts0 + i]);
    e.stages[2 * i + 1].count =
        static_cast<uint32_t>(w[kWordStageCounts0 + i] >> 32);
  }
  e.value_cache_hits = static_cast<uint32_t>(w[kWordValueCache]);
  e.value_cache_misses = static_cast<uint32_t>(w[kWordValueCache] >> 32);
  e.answer_cache_hits = static_cast<uint32_t>(w[kWordAnswerCache]);
  e.answer_cache_misses = static_cast<uint32_t>(w[kWordAnswerCache] >> 32);
  e.block_cache_hits = static_cast<uint32_t>(w[kWordBlockCache]);
  e.block_cache_misses = static_cast<uint32_t>(w[kWordBlockCache] >> 32);
  e.blocks_decoded = static_cast<uint32_t>(w[kWordBlocksDecoded]);
  e.kb_epoch = w[kWordKbEpoch];
  return e;
}

// ---- per-thread rings --------------------------------------------------

struct EventSlot {
  std::atomic<uint64_t> words[kSlotWords] = {};
};

/// Per-thread event ring. Only the owning thread writes slots and `count`;
/// drains read under the registry mutex.
struct EventRing {
  std::vector<EventSlot> slots{WideEvents::kRingCapacity};
  /// Monotone number of events ever pushed (slot = index % capacity),
  /// release-published after the slot payload.
  std::atomic<uint64_t> count{0};
  /// Consumer positions, guarded by SinkState::mu: `drained` advances on
  /// Drain(); `floor` rises on ResetForTest() so Recent() forgets older
  /// generations too.
  uint64_t drained = 0;
  uint64_t floor = 0;
};

struct SinkState {
  Mutex mu;
  std::vector<std::unique_ptr<EventRing>> rings GUARDED_BY(mu);
  std::atomic<uint64_t> total_recorded{0};
  std::atomic<uint64_t> dropped{0};
  std::atomic<uint64_t> next_trace_id{1};
  std::atomic<uint32_t> sample_period{1};
};

SinkState& Sink() {
  // Leaked: rings must outlive thread exit and static destruction order.
  static SinkState* const kSink = new SinkState();  // NOLINT(kbqa-naked-new)
  return *kSink;
}

EventRing* LocalRing() {
  thread_local EventRing* const ring = [] {
    auto owned = std::make_unique<EventRing>();
    EventRing* raw = owned.get();
    SinkState& sink = Sink();
    MutexLock lock(sink.mu);
    sink.rings.push_back(std::move(owned));
    return raw;
  }();
  return ring;
}

/// Copies one published row out of `ring`. Returns false when the writer
/// lapped the row mid-copy (sequence tag mismatch).
bool ReadRow(const EventRing& ring, uint64_t index, WideEvent* out) {
  const EventSlot& slot =
      ring.slots[static_cast<size_t>(index % WideEvents::kRingCapacity)];
  uint64_t words[kSlotWords];
  for (size_t i = 0; i < kSlotWords; ++i) {
    words[i] = slot.words[i].load(std::memory_order_relaxed);
  }
  if (words[kWordSeq] != index + 1) return false;
  *out = DecodeEvent(words);
  return true;
}

/// Oldest still-resident row index for a ring that has pushed `count`.
uint64_t RingBase(uint64_t count) {
  return count > WideEvents::kRingCapacity
             ? count - WideEvents::kRingCapacity
             : 0;
}

bool AdmitBefore(const WideEvent& a, const WideEvent& b) {
  if (a.admit_ns != b.admit_ns) return a.admit_ns < b.admit_ns;
  return a.trace_id < b.trace_id;
}

}  // namespace

const char* WideStageName(size_t stage) {
  return stage < kWideStageCount ? kStageNames[stage] : "unknown";
}

const char* WideOutcomeName(size_t outcome) {
  return outcome < kWideOutcomeCount ? kOutcomeNames[outcome] : "unknown";
}

void WideEvent::StampFrom(const RequestContext& ctx) {
  trace_id = ctx.trace_id;
  admit_ns = ctx.admit_ns;
  for (size_t i = 0; i < kWideStageCount; ++i) stages[i] = ctx.stages[i];
  value_cache_hits = ctx.value_cache_hits;
  value_cache_misses = ctx.value_cache_misses;
  answer_cache_hits = ctx.answer_cache_hits;
  answer_cache_misses = ctx.answer_cache_misses;
  block_cache_hits = ctx.block_cache_hits;
  block_cache_misses = ctx.block_cache_misses;
  blocks_decoded = ctx.blocks_decoded;
  kb_epoch = ctx.kb_epoch;
}

std::string WideEvent::ToJsonLine() const {
  std::string out;
  out.reserve(512);
  auto field = [&out](const char* key, uint64_t value, bool first = false) {
    if (!first) out += ',';
    out += '"';
    out += key;
    out += "\":";
    out += std::to_string(value);
  };
  out += "{\"trace_id\":";
  out += std::to_string(trace_id);
  out += ",\"outcome\":\"";
  out += WideOutcomeName(static_cast<size_t>(outcome));
  out += '"';
  field("admit_ns", admit_ns);
  out += ",\"has_deadline\":";
  out += has_deadline ? "true" : "false";
  out += ",\"deadline_budget_ns\":";
  out += std::to_string(deadline_budget_ns);
  field("batch_size", batch_size);
  field("question_bytes", question_bytes);
  field("queue_wait_ns", queue_wait_ns);
  field("batch_wait_ns", batch_wait_ns);
  field("service_ns", service_ns);
  field("total_ns", total_ns);
  out += ",\"stages\":{";
  for (size_t i = 0; i < kWideStageCount; ++i) {
    if (i != 0) out += ',';
    out += '"';
    out += kStageNames[i];
    out += "\":{\"ns\":";
    out += std::to_string(stages[i].ns);
    out += ",\"count\":";
    out += std::to_string(stages[i].count);
    out += '}';
  }
  out += "},\"value_cache\":{";
  field("hits", value_cache_hits, /*first=*/true);
  field("misses", value_cache_misses);
  out += "},\"answer_cache\":{";
  field("hits", answer_cache_hits, /*first=*/true);
  field("misses", answer_cache_misses);
  out += "},\"block_cache\":{";
  field("hits", block_cache_hits, /*first=*/true);
  field("misses", block_cache_misses);
  field("decoded", blocks_decoded);
  out += '}';
  field("kb_epoch", kb_epoch);
  out += '}';
  return out;
}

void WideEvents::Record(const WideEvent& event) {
  EventRing* ring = LocalRing();
  const uint64_t index = ring->count.load(std::memory_order_relaxed);
  EventSlot& slot = ring->slots[static_cast<size_t>(index % kRingCapacity)];
  uint64_t words[kSlotWords];
  words[kWordSeq] = index + 1;
  EncodeEvent(event, words);
  // Sequence tag first so a concurrent reader holding the old tag notices
  // the lap; payload next; then the release publish of count makes the
  // whole row visible to rows-below-count readers.
  for (size_t i = 0; i < kSlotWords; ++i) {
    slot.words[i].store(words[i], std::memory_order_relaxed);
  }
  ring->count.store(index + 1, std::memory_order_release);
  Sink().total_recorded.fetch_add(1, std::memory_order_relaxed);
}

std::vector<WideEvent> WideEvents::Drain() {
  SinkState& sink = Sink();
  std::vector<WideEvent> out;
  MutexLock lock(sink.mu);
  for (auto& ring_ptr : sink.rings) {
    EventRing& ring = *ring_ptr;
    const uint64_t count = ring.count.load(std::memory_order_acquire);
    uint64_t from = ring.drained;
    const uint64_t base = RingBase(count);
    if (base > from) {
      sink.dropped.fetch_add(base - from, std::memory_order_relaxed);
      from = base;
    }
    for (uint64_t i = from; i < count; ++i) {
      WideEvent event;
      if (ReadRow(ring, i, &event)) out.push_back(event);
    }
    ring.drained = count;
  }
  std::sort(out.begin(), out.end(), AdmitBefore);
  return out;
}

std::vector<WideEvent> WideEvents::Recent(size_t max_events) {
  SinkState& sink = Sink();
  std::vector<WideEvent> out;
  MutexLock lock(sink.mu);
  for (auto& ring_ptr : sink.rings) {
    EventRing& ring = *ring_ptr;
    const uint64_t count = ring.count.load(std::memory_order_acquire);
    const uint64_t from = std::max(ring.floor, RingBase(count));
    for (uint64_t i = from; i < count; ++i) {
      WideEvent event;
      if (ReadRow(ring, i, &event)) out.push_back(event);
    }
  }
  std::sort(out.begin(), out.end(), AdmitBefore);
  if (out.size() > max_events) {
    out.erase(out.begin(), out.end() - static_cast<ptrdiff_t>(max_events));
  }
  return out;
}

uint64_t WideEvents::TotalRecorded() {
  return Sink().total_recorded.load(std::memory_order_relaxed);
}

uint64_t WideEvents::Dropped() {
  return Sink().dropped.load(std::memory_order_relaxed);
}

void WideEvents::SetSamplePeriod(uint32_t period) {
  Sink().sample_period.store(period, std::memory_order_relaxed);
}

uint32_t WideEvents::SamplePeriod() {
  return Sink().sample_period.load(std::memory_order_relaxed);
}

bool WideEvents::Sample() {
  if (!Enabled()) return false;
  const uint32_t period = SamplePeriod();
  if (period == 0) return false;
  if (period == 1) return true;
  thread_local uint32_t countdown = 0;
  if (countdown == 0) {
    countdown = period - 1;
    return true;
  }
  --countdown;
  return false;
}

uint64_t WideEvents::NextTraceId() {
  return Sink().next_trace_id.fetch_add(1, std::memory_order_relaxed);
}

void WideEvents::ResetForTest() {
  SinkState& sink = Sink();
  MutexLock lock(sink.mu);
  for (auto& ring_ptr : sink.rings) {
    const uint64_t count = ring_ptr->count.load(std::memory_order_acquire);
    ring_ptr->drained = count;
    ring_ptr->floor = count;
  }
  sink.total_recorded.store(0, std::memory_order_relaxed);
  sink.dropped.store(0, std::memory_order_relaxed);
  sink.sample_period.store(1, std::memory_order_relaxed);
}

namespace {
thread_local RequestContext* tl_current_request = nullptr;
}  // namespace

RequestContext* CurrentRequestContext() { return tl_current_request; }

ScopedRequestContext::ScopedRequestContext(RequestContext* ctx)
    : previous_(tl_current_request) {
  if (ctx != nullptr) tl_current_request = ctx;
}

ScopedRequestContext::~ScopedRequestContext() {
  tl_current_request = previous_;
}

}  // namespace kbqa::obs
