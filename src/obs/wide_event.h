#ifndef KBQA_OBS_WIDE_EVENT_H_
#define KBQA_OBS_WIDE_EVENT_H_

/// Request-scoped wide-event telemetry (DESIGN.md §8).
///
/// A `RequestContext` is created at serve::Server admission and travels by
/// value inside the request through the batcher and into the engine
/// (`AnswerOptions::request_context`); each layer stamps disjoint stage
/// durations and per-tier cache counters into it. When the request reaches
/// a terminal outcome (answered, rejected, shed, deadline-exceeded) the
/// server flattens the context into one `WideEvent` and appends it to a
/// lock-free per-thread ring (`WideEvents::Record`), drainable as JSONL.
///
/// The stage clock is chained: every `Mark(stage)` charges the interval
/// since the previous mark to `stage` with a single clock read, so stage
/// intervals are disjoint by construction, and because the clock is
/// anchored at the server's own service-start reading of the same
/// steady_clock, the stage sum can never exceed the measured service time.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace kbqa::obs {

/// Answer-pipeline stages a request's service time is attributed to.
/// `kTemplateMatch` is the umbrella for the candidate walk; conceptualize,
/// score, and miss-path value lookups are split out of it by inner marks.
enum class WideStage : uint8_t {
  kNer = 0,
  kConceptualize,
  kTemplateMatch,
  kScore,
  kValueLookup,
  kRank,
};
inline constexpr size_t kWideStageCount = 6;
const char* WideStageName(size_t stage);

/// Terminal outcome of a served request. Exactly one wide event is emitted
/// per request, tagged with exactly one of these.
enum class WideOutcome : uint8_t {
  kAnswered = 0,         // handler ran, status OK, non-empty answer set
  kUnanswered,           // handler ran, status OK, no answer found
  kDeadlineExceeded,     // handler ran but the deadline cut it short
  kError,                // handler ran, non-OK status other than deadline
  kRejected,             // admission control refused the request
  kShedExpired,          // deadline expired while queued; never served
  kShedShutdown,         // server stopped with the request still queued
};
inline constexpr size_t kWideOutcomeCount = 7;
const char* WideOutcomeName(size_t outcome);

/// Accumulated attribution for one stage of one request: total nanoseconds
/// charged and the number of times the stage was entered.
struct StageRecord {
  uint64_t ns = 0;
  uint32_t count = 0;
};

/// Steady-clock nanoseconds (the stage clock's time base — the same clock
/// the server uses for queue/service accounting, so cross-layer sums and
/// comparisons are exact rather than calibration-skewed).
inline uint64_t NowSteadyNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Per-request telemetry context. Created at admission, carried by value
/// with the request, stamped by each layer it passes through. Not
/// thread-safe: exactly one thread touches it at a time (submitter, then
/// batcher, then the worker running the handler), with handoffs ordered
/// by the queue/pool synchronization.
struct RequestContext {
  uint64_t trace_id = 0;
  uint64_t admit_ns = 0;   // NowSteadyNs() at admission
  bool sampled = false;    // wide-event sampling decision, made at admission

  StageRecord stages[kWideStageCount] = {};

  uint32_t value_cache_hits = 0;
  uint32_t value_cache_misses = 0;
  uint32_t answer_cache_hits = 0;
  uint32_t answer_cache_misses = 0;
  uint32_t block_cache_hits = 0;
  uint32_t block_cache_misses = 0;
  uint32_t blocks_decoded = 0;

  /// KB epoch the answer was computed against (0 for a frozen KB; the
  /// pinned snapshot's epoch in live-mutation mode — see DESIGN.md §10).
  uint64_t kb_epoch = 0;

  uint64_t last_mark_ns = 0;  // chained stage-clock anchor

  /// Anchors the stage clock at `now_ns` (typically the server's existing
  /// service-start reading, so anchoring costs no extra clock read).
  void StartClockAt(uint64_t now_ns) { last_mark_ns = now_ns; }

  /// Charges [last mark, now) to `stage` with one clock read. A context
  /// whose clock was never anchored charges nothing on its first mark.
  void Mark(WideStage stage) {
    const uint64_t now = NowSteadyNs();
    StageRecord& r = stages[static_cast<size_t>(stage)];
    if (last_mark_ns != 0 && now > last_mark_ns) r.ns += now - last_mark_ns;
    ++r.count;
    last_mark_ns = now;
  }

  /// Charges [begin_ns, now) to `stage` and re-anchors at now; the pending
  /// prefix [last mark, begin_ns) is left for the next Mark to claim, so
  /// a timed sub-span (e.g. a value-cache miss fill) stays disjoint from
  /// its surrounding stage.
  void AddTimedSince(WideStage stage, uint64_t begin_ns) {
    const uint64_t now = NowSteadyNs();
    StageRecord& r = stages[static_cast<size_t>(stage)];
    if (now > begin_ns) r.ns += now - begin_ns;
    ++r.count;
    last_mark_ns = now;
  }

  uint64_t StageNsSum() const {
    uint64_t sum = 0;
    for (const StageRecord& r : stages) sum += r.ns;
    return sum;
  }
};

/// One flat record per completed request — the whole attribution vector in
/// a single row, serialized to a fixed-width ring slot and to JSONL.
struct WideEvent {
  uint64_t trace_id = 0;
  uint64_t admit_ns = 0;
  WideOutcome outcome = WideOutcome::kAnswered;
  bool has_deadline = false;
  uint32_t batch_size = 0;
  uint32_t question_bytes = 0;
  uint64_t queue_wait_ns = 0;  // admission -> batch dispatch
  uint64_t batch_wait_ns = 0;  // batch dispatch -> handler start
  uint64_t service_ns = 0;     // handler start -> handler return
  uint64_t total_ns = 0;       // admission -> terminal resolution
  /// Deadline budget remaining at the decision point (dispatch for served
  /// requests, shed time for sheds); negative when already expired. 0 when
  /// `has_deadline` is false.
  int64_t deadline_budget_ns = 0;

  StageRecord stages[kWideStageCount] = {};

  uint32_t value_cache_hits = 0;
  uint32_t value_cache_misses = 0;
  uint32_t answer_cache_hits = 0;
  uint32_t answer_cache_misses = 0;
  uint32_t block_cache_hits = 0;
  uint32_t block_cache_misses = 0;
  uint32_t blocks_decoded = 0;

  /// KB epoch the answer was computed against (0 = frozen KB).
  uint64_t kb_epoch = 0;

  uint64_t StageNsSum() const {
    uint64_t sum = 0;
    for (const StageRecord& r : stages) sum += r.ns;
    return sum;
  }

  /// Copies the context's stage and cache fields into this event.
  void StampFrom(const RequestContext& ctx);

  /// One-line JSON object (the JSONL schema scripts/trace_summarize.py
  /// ingests). All values are numeric or fixed enum names — no escaping.
  std::string ToJsonLine() const;
};

/// Process-wide wide-event sink: per-thread rings of per-field-atomic
/// slots (same discipline as the trace ring — owning thread writes fields
/// relaxed then release-publishes a monotone count; readers acquire the
/// count and skip rows whose sequence tag shows the writer lapped them).
/// All methods are static; state is a leaked singleton.
class WideEvents {
 public:
  /// Events a single thread's ring retains before overwriting the oldest.
  static constexpr size_t kRingCapacity = 2048;

  /// Appends to the calling thread's ring. Lock-free, wait-free.
  static void Record(const WideEvent& event);

  /// Consumes every event recorded since the previous Drain, across all
  /// threads, ordered by admission time. Overwritten (never-drained)
  /// events are counted in Dropped().
  static std::vector<WideEvent> Drain();

  /// Non-consuming view of the most recent events (up to `max_events`,
  /// newest last). Concurrent recording may tear at most one in-flight
  /// row per thread; torn rows are skipped.
  static std::vector<WideEvent> Recent(size_t max_events);

  /// Total events ever recorded / dropped before a drain reached them.
  static uint64_t TotalRecorded();
  static uint64_t Dropped();

  /// Sampling: 0 disables wide events entirely, 1 (default) samples every
  /// request, k samples 1-in-k per thread.
  static void SetSamplePeriod(uint32_t period);
  static uint32_t SamplePeriod();
  /// Admission-time sampling decision (false when obs is disabled).
  static bool Sample();

  /// Process-unique trace id (monotone, never 0).
  static uint64_t NextTraceId();

  /// Clears all rings and counters and restores the default sample
  /// period. Test-only; racing recorders may leak a row into the fresh
  /// generation.
  static void ResetForTest();
};

/// Thread-local current-request binding for layers too deep to thread a
/// pointer through (the compressed-KB pager stamps block-cache traffic via
/// this). Install with ScopedRequestContext around handler execution.
RequestContext* CurrentRequestContext();

/// Binds `ctx` as the thread's current request for the scope's lifetime.
/// A null `ctx` is a no-op (the existing binding, if any, stays), so an
/// unsampled nested call cannot mask an outer sampled request.
class ScopedRequestContext {
 public:
  explicit ScopedRequestContext(RequestContext* ctx);
  ~ScopedRequestContext();
  ScopedRequestContext(const ScopedRequestContext&) = delete;
  ScopedRequestContext& operator=(const ScopedRequestContext&) = delete;

 private:
  RequestContext* previous_;
};

}  // namespace kbqa::obs

#endif  // KBQA_OBS_WIDE_EVENT_H_
