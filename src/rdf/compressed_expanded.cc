#include "rdf/compressed_expanded.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <span>

#include "obs/wide_event.h"
#include "util/coding.h"

namespace kbqa::rdf {

namespace {

constexpr uint64_t kMagicExp3 = 0x4b42514145585033ULL;  // "KBQAEXP3"

// Sanity caps mirroring the KB snapshot reader: reject counts no plausible
// snapshot reaches before sizing any buffer from them.
constexpr uint64_t kMaxCount = 1ULL << 32;
constexpr uint64_t kMaxBlobBytes = 1ULL << 34;

/// Encodes one subject's sorted-unique (path, object) run: varint length,
/// first pair as (varint path, varint object), then per pair varint Δpath
/// and — when Δpath is 0 — varint Δobject (strictly increasing), otherwise
/// the absolute varint object. The KB snapshot v3 CSR uses the same shape.
void AppendRun(std::string* enc,
               std::span<const std::pair<PathId, TermId>> run) {
  util::PutVarint64(enc, run.size());
  for (size_t i = 0; i < run.size(); ++i) {
    const auto [path, o] = run[i];
    if (i == 0) {
      util::PutVarint32(enc, path);
      util::PutVarint32(enc, o);
      continue;
    }
    const auto [prev_path, prev_o] = run[i - 1];
    util::PutVarint32(enc, path - prev_path);
    util::PutVarint32(enc, path == prev_path ? o - prev_o : o);
  }
}

}  // namespace

void CompressedExpandedKb::ScopedFd::Reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<CompressedExpandedKb> CompressedExpandedKb::FromExpanded(
    const ExpandedKb& ekb, const Options& options) {
  CompressedExpandedKb c;
  c.options_ = options;
  c.options_.blocks_resident = true;  // nothing on disk to page from
  c.subjects_ = ekb.Subjects();
  c.num_triples_ = ekb.num_triples();
  c.raw_equivalent_bytes_ = ekb.ApproxResidentBytes();

  // Rebuild the path dictionary id-for-id. InternExtension assigns parent
  // prefixes smaller ids than their extensions, so re-interning in id
  // order reproduces the numbering exactly (checked as we go).
  for (size_t i = 0; i < ekb.paths().size(); ++i) {
    if (c.paths_.Intern(ekb.paths().GetPath(static_cast<PathId>(i))) !=
        static_cast<PathId>(i)) {
      return Status::Internal("path dictionary ids are not prefix-closed");
    }
  }

  const size_t target =
      options.target_block_edges == 0 ? 4096 : options.target_block_edges;
  BlockInfo block;
  std::string block_enc;
  auto close_block = [&c, &block, &block_enc] {
    if (block.num_subjects == 0) return;
    block.offset = c.payload_.size();
    block.encoded_bytes = static_cast<uint32_t>(block_enc.size());
    block.checksum = util::Fnv1a64(block_enc.data(), block_enc.size());
    c.payload_ += block_enc;
    c.index_.push_back(block);
    const uint32_t next_slot = block.first_slot + block.num_subjects;
    block = BlockInfo{};
    block.first_slot = next_slot;
    block_enc.clear();
  };
  for (uint32_t slot = 0; slot < c.subjects_.size(); ++slot) {
    const auto run = ekb.Out(c.subjects_[slot]);
    AppendRun(&block_enc, run);
    ++block.num_subjects;
    block.num_edges += static_cast<uint32_t>(run.size());
    if (block.num_edges >= target) close_block();
  }
  close_block();

  c.payload_.shrink_to_fit();
  c.cache_ = std::make_unique<BlockCache>(options.decoded_cache_budget_bytes);
  c.counters_ = std::make_unique<Counters>();
  return c;
}

// ---- Snapshot I/O ----
//
// Layout: u64 magic; one framed metadata section
// [u64 len][bytes][u64 FNV-1a] holding varint num_triples,
// raw_equivalent_bytes, path dictionary (count, then per path: length +
// predicate ids), the delta-coded subject array, and the block index
// (per block: varint num_subjects, num_edges, encoded_bytes, then the
// fixed-width checksum); then the concatenated block payloads, each
// independently checksummed via the index.

Status CompressedExpandedKb::Save(const std::string& path) const {
  if (!options_.blocks_resident) {
    return Status::FailedPrecondition(
        "Save requires a blocks-resident instance");
  }
  std::string meta;
  util::PutVarint64(&meta, num_triples_);
  util::PutVarint64(&meta, raw_equivalent_bytes_);
  util::PutVarint64(&meta, paths_.size());
  for (size_t i = 0; i < paths_.size(); ++i) {
    const PredPath& p = paths_.GetPath(static_cast<PathId>(i));
    util::PutVarint64(&meta, p.size());
    for (PredId pred : p) util::PutVarint32(&meta, pred);
  }
  util::AppendDeltaRun32(&meta, subjects_.data(), subjects_.size());
  util::PutVarint64(&meta, index_.size());
  for (const BlockInfo& b : index_) {
    util::PutVarint32(&meta, b.num_subjects);
    util::PutVarint32(&meta, b.num_edges);
    util::PutVarint32(&meta, b.encoded_bytes);
    util::PutFixed64(&meta, b.checksum);
  }

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open for write: " + path);
  bool ok = true;
  auto write = [&](const void* data, size_t n) {
    if (ok && n > 0 && std::fwrite(data, 1, n, f) != n) ok = false;
  };
  write(&kMagicExp3, sizeof(kMagicExp3));
  const uint64_t meta_len = meta.size();
  write(&meta_len, sizeof(meta_len));
  write(meta.data(), meta.size());
  const uint64_t meta_sum = util::Fnv1a64(meta.data(), meta.size());
  write(&meta_sum, sizeof(meta_sum));
  write(payload_.data(), payload_.size());
  if (std::fclose(f) != 0) ok = false;
  return ok ? Status::Ok() : Status::IoError("short write: " + path);
}

Result<CompressedExpandedKb> CompressedExpandedKb::Open(
    const std::string& path, const Options& options) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IoError("cannot open for read: " + path);
  CompressedExpandedKb c;
  c.fd_ = ScopedFd(fd);
  c.options_ = options;
  auto fail = [&path](const std::string& what) -> Result<CompressedExpandedKb> {
    return Status::Corruption(what + " in " + path);
  };

  const off_t file_size = ::lseek(fd, 0, SEEK_END);
  if (file_size < 0 || static_cast<uint64_t>(file_size) < 24) {
    return fail("truncated header");
  }
  auto read_at = [fd](void* dst, size_t n, uint64_t off) {
    uint8_t* out = static_cast<uint8_t*>(dst);
    while (n > 0) {
      const ssize_t got = ::pread(fd, out, n, static_cast<off_t>(off));
      if (got <= 0) return false;
      out += got;
      off += static_cast<uint64_t>(got);
      n -= static_cast<size_t>(got);
    }
    return true;
  };

  uint64_t magic = 0, meta_len = 0;
  if (!read_at(&magic, 8, 0) || !read_at(&meta_len, 8, 8)) {
    return fail("truncated header");
  }
  if (magic != kMagicExp3) return fail("bad magic");
  if (meta_len > static_cast<uint64_t>(file_size) - 24 ||
      meta_len > kMaxBlobBytes) {
    return fail("bad metadata length");
  }
  std::string meta(meta_len, '\0');
  uint64_t meta_sum = 0;
  if (!read_at(meta.data(), meta.size(), 16) ||
      !read_at(&meta_sum, 8, 16 + meta_len)) {
    return fail("truncated metadata");
  }
  if (meta_sum != util::Fnv1a64(meta.data(), meta.size())) {
    return fail("metadata checksum mismatch");
  }
  c.payload_offset_ = 16 + meta_len + 8;

  const uint8_t* p = reinterpret_cast<const uint8_t*>(meta.data());
  const uint8_t* limit = p + meta.size();
  uint64_t num_triples = 0, raw_bytes = 0, num_paths = 0;
  if ((p = util::GetVarint64(p, limit, &num_triples)) == nullptr ||
      (p = util::GetVarint64(p, limit, &raw_bytes)) == nullptr ||
      (p = util::GetVarint64(p, limit, &num_paths)) == nullptr ||
      num_triples > kMaxCount || num_paths > kMaxCount) {
    return fail("bad metadata header");
  }
  c.num_triples_ = num_triples;
  c.raw_equivalent_bytes_ = raw_bytes;
  PredPath pred_path;
  for (uint64_t i = 0; i < num_paths; ++i) {
    uint64_t len = 0;
    if ((p = util::GetVarint64(p, limit, &len)) == nullptr ||
        len > static_cast<uint64_t>(limit - p)) {
      return fail("bad path entry");
    }
    pred_path.clear();
    pred_path.reserve(len);
    for (uint64_t j = 0; j < len; ++j) {
      uint32_t pred = 0;
      if ((p = util::GetVarint32(p, limit, &pred)) == nullptr) {
        return fail("bad path entry");
      }
      pred_path.push_back(pred);
    }
    if (c.paths_.Intern(pred_path) != static_cast<PathId>(i)) {
      return fail("path dictionary not prefix-closed");
    }
  }
  if (!util::DecodeDeltaRun32(&p, limit, &c.subjects_)) {
    return fail("bad subject array");
  }
  for (size_t i = 1; i < c.subjects_.size(); ++i) {
    if (c.subjects_[i] <= c.subjects_[i - 1]) {
      return fail("subject array not strictly increasing");
    }
  }
  uint64_t num_blocks = 0;
  if ((p = util::GetVarint64(p, limit, &num_blocks)) == nullptr ||
      num_blocks > kMaxCount) {
    return fail("bad block count");
  }
  // Each index entry takes at least 11 encoded bytes (three varints plus a
  // fixed64 checksum); gate the reserve against the bytes actually present
  // so a corrupt count fails as Corruption instead of allocating ~32 bytes
  // per phantom block.
  if (num_blocks > static_cast<uint64_t>(limit - p) / 11) {
    return fail("bad block count");
  }
  c.index_.reserve(num_blocks);
  uint64_t slot = 0, edges = 0, offset = 0;
  for (uint64_t i = 0; i < num_blocks; ++i) {
    BlockInfo b;
    if ((p = util::GetVarint32(p, limit, &b.num_subjects)) == nullptr ||
        (p = util::GetVarint32(p, limit, &b.num_edges)) == nullptr ||
        (p = util::GetVarint32(p, limit, &b.encoded_bytes)) == nullptr ||
        (p = util::GetFixed64(p, limit, &b.checksum)) == nullptr) {
      return fail("bad block index entry");
    }
    if (b.num_subjects == 0) return fail("empty block in index");
    // Every encoded edge takes at least two bytes (two varints), and each
    // subject run carries a varint length header, so a valid block can
    // never claim more logical items than encoded bytes. DecodePayload
    // sizes its buffers from these counts; reject the lie before it does.
    if (b.num_edges > b.encoded_bytes ||
        b.num_subjects > b.encoded_bytes) {
      return fail("block item count exceeds encoded bytes");
    }
    b.first_slot = static_cast<uint32_t>(slot);
    b.offset = offset;
    slot += b.num_subjects;
    edges += b.num_edges;
    offset += b.encoded_bytes;
    c.index_.push_back(b);
  }
  if (p != limit) return fail("trailing metadata bytes");
  if (slot != c.subjects_.size()) {
    return fail("block index subject count mismatch");
  }
  if (edges != c.num_triples_) return fail("block index edge count mismatch");
  if (c.payload_offset_ + offset != static_cast<uint64_t>(file_size)) {
    return fail("payload size mismatch");
  }

  // Verify every block checksum up front so corruption surfaces at Open,
  // not as a degraded answer later. Resident mode keeps the bytes.
  if (options.blocks_resident) {
    c.payload_.resize(offset);
    if (!read_at(c.payload_.data(), c.payload_.size(), c.payload_offset_)) {
      return fail("truncated payload");
    }
    for (const BlockInfo& b : c.index_) {
      if (util::Fnv1a64(c.payload_.data() + b.offset, b.encoded_bytes) !=
          b.checksum) {
        return fail("block checksum mismatch");
      }
    }
  } else {
    std::string buf;
    for (const BlockInfo& b : c.index_) {
      buf.resize(b.encoded_bytes);
      if (!read_at(buf.data(), buf.size(), c.payload_offset_ + b.offset)) {
        return fail("truncated payload");
      }
      if (util::Fnv1a64(buf.data(), buf.size()) != b.checksum) {
        return fail("block checksum mismatch");
      }
    }
  }
  if (options.blocks_resident) c.fd_.Reset();  // no paging needed

  c.cache_ = std::make_unique<BlockCache>(options.decoded_cache_budget_bytes);
  c.counters_ = std::make_unique<Counters>();
  return c;
}

// ---- Reads ----

bool CompressedExpandedKb::Contains(TermId s) const {
  return std::binary_search(subjects_.begin(), subjects_.end(), s);
}

std::shared_ptr<const CompressedExpandedKb::DecodedBlock>
CompressedExpandedKb::DecodePayload(const BlockInfo& info, const uint8_t* data,
                                    size_t size) const {
  auto block = std::make_shared<DecodedBlock>();
  block->run_begin.reserve(info.num_subjects + 1);
  block->edges.reserve(info.num_edges);
  const uint8_t* p = data;
  const uint8_t* limit = data + size;
  for (uint32_t i = 0; i < info.num_subjects; ++i) {
    block->run_begin.push_back(static_cast<uint32_t>(block->edges.size()));
    uint64_t run_len = 0;
    if ((p = util::GetVarint64(p, limit, &run_len)) == nullptr ||
        run_len > info.num_edges) {
      return nullptr;
    }
    std::pair<PathId, TermId> prev{0, 0};
    for (uint64_t j = 0; j < run_len; ++j) {
      uint32_t first = 0, second = 0;
      if ((p = util::GetVarint32(p, limit, &first)) == nullptr ||
          (p = util::GetVarint32(p, limit, &second)) == nullptr) {
        return nullptr;
      }
      std::pair<PathId, TermId> e;
      if (j == 0) {
        e = {first, second};
      } else if (first == 0) {
        e = {prev.first, prev.second + second};
      } else {
        e = {prev.first + first, second};
      }
      block->edges.push_back(e);
      prev = e;
    }
  }
  block->run_begin.push_back(static_cast<uint32_t>(block->edges.size()));
  if (p != limit || block->edges.size() != info.num_edges) return nullptr;
  return block;
}

std::shared_ptr<const CompressedExpandedKb::DecodedBlock>
CompressedExpandedKb::FetchBlock(uint32_t block_id) const {
  // Too deep for a parameter to reach: the sampled request (if any) is
  // found via the thread-local binding the engine installed (DESIGN.md §8)
  // so its wide event carries this tier's hit/miss/decode traffic.
  obs::RequestContext* const ctx = obs::CurrentRequestContext();
  std::shared_ptr<const DecodedBlock> block;
  if (cache_->Get(block_id, &block)) {
    counters_->hits.fetch_add(1, std::memory_order_relaxed);
    if (ctx != nullptr) ++ctx->block_cache_hits;
    return block;
  }
  counters_->misses.fetch_add(1, std::memory_order_relaxed);
  if (ctx != nullptr) ++ctx->block_cache_misses;
  const BlockInfo& info = index_[block_id];
  if (options_.blocks_resident) {
    block = DecodePayload(
        info, reinterpret_cast<const uint8_t*>(payload_.data()) + info.offset,
        info.encoded_bytes);
  } else {
    std::string buf(info.encoded_bytes, '\0');
    uint8_t* out = reinterpret_cast<uint8_t*>(buf.data());
    size_t n = buf.size();
    uint64_t off = payload_offset_ + info.offset;
    bool ok = true;
    while (n > 0) {
      const ssize_t got = ::pread(fd_.get(), out, n, static_cast<off_t>(off));
      if (got <= 0) {
        ok = false;
        break;
      }
      out += got;
      off += static_cast<uint64_t>(got);
      n -= static_cast<size_t>(got);
    }
    if (ok && util::Fnv1a64(buf.data(), buf.size()) != info.checksum) {
      ok = false;
    }
    if (ok) {
      block = DecodePayload(info,
                            reinterpret_cast<const uint8_t*>(buf.data()),
                            buf.size());
    }
  }
  if (block == nullptr) {
    // Only reachable when the file changed underneath a paged instance
    // (Open verified every checksum). Degrade to "absent" and count it.
    counters_->corrupt_blocks.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  if (ctx != nullptr) ++ctx->blocks_decoded;
  cache_->Insert(block_id, block, block->ApproxBytes());
  return block;
}

bool CompressedExpandedKb::CopyOut(
    TermId s, std::vector<std::pair<PathId, TermId>>* out) const {
  out->clear();
  const auto it = std::lower_bound(subjects_.begin(), subjects_.end(), s);
  if (it == subjects_.end() || *it != s) return false;
  const uint32_t slot = static_cast<uint32_t>(it - subjects_.begin());
  // Last block whose first_slot <= slot.
  const auto bit = std::upper_bound(
      index_.begin(), index_.end(), slot,
      [](uint32_t value, const BlockInfo& b) { return value < b.first_slot; });
  const uint32_t block_id = static_cast<uint32_t>(bit - index_.begin()) - 1;
  const auto block = FetchBlock(block_id);
  if (block == nullptr) return false;
  const uint32_t local = slot - index_[block_id].first_slot;
  out->assign(block->edges.begin() + block->run_begin[local],
              block->edges.begin() + block->run_begin[local + 1]);
  return true;
}

bool CompressedExpandedKb::TryObjects(TermId s, PathId path,
                                      std::vector<TermId>* out) const {
  out->clear();
  const auto it = std::lower_bound(subjects_.begin(), subjects_.end(), s);
  if (it == subjects_.end() || *it != s) return false;
  const uint32_t slot = static_cast<uint32_t>(it - subjects_.begin());
  const auto bit = std::upper_bound(
      index_.begin(), index_.end(), slot,
      [](uint32_t value, const BlockInfo& b) { return value < b.first_slot; });
  const uint32_t block_id = static_cast<uint32_t>(bit - index_.begin()) - 1;
  const auto block = FetchBlock(block_id);
  if (block == nullptr) return false;
  const uint32_t local = slot - index_[block_id].first_slot;
  const auto begin = block->edges.begin() + block->run_begin[local];
  const auto end = block->edges.begin() + block->run_begin[local + 1];
  // The run is sorted by (path, object): binary search the path range.
  auto lo = std::lower_bound(
      begin, end, path,
      [](const std::pair<PathId, TermId>& e, PathId v) { return e.first < v; });
  for (; lo != end && lo->first == path; ++lo) out->push_back(lo->second);
  return true;
}

std::vector<TermId> CompressedExpandedKb::Objects(TermId s,
                                                  PathId path) const {
  std::vector<TermId> out;
  (void)TryObjects(s, path, &out);
  return out;
}

void CompressedExpandedKb::ForEachTriple(
    const std::function<void(const ExpandedTriple&)>& fn) const {
  for (uint32_t block_id = 0; block_id < index_.size(); ++block_id) {
    const auto block = FetchBlock(block_id);
    if (block == nullptr) continue;
    const BlockInfo& info = index_[block_id];
    for (uint32_t local = 0; local < info.num_subjects; ++local) {
      const TermId s = subjects_[info.first_slot + local];
      for (uint32_t i = block->run_begin[local];
           i < block->run_begin[local + 1]; ++i) {
        fn(ExpandedTriple{s, block->edges[i].first, block->edges[i].second});
      }
    }
  }
}

CompressedExpandedKb::MemoryStats CompressedExpandedKb::memory_stats() const {
  MemoryStats stats;
  stats.compressed_bytes = options_.blocks_resident
                               ? payload_.size()
                               : (index_.empty()
                                      ? 0
                                      : index_.back().offset +
                                            index_.back().encoded_bytes);
  stats.index_bytes = index_.capacity() * sizeof(BlockInfo) +
                      subjects_.capacity() * sizeof(TermId);
  uint64_t paths_bytes = 0;
  for (size_t i = 0; i < paths_.size(); ++i) {
    paths_bytes += sizeof(PredPath) +
                   paths_.GetPath(static_cast<PathId>(i)).capacity() *
                       sizeof(PredId);
  }
  stats.paths_bytes = paths_bytes;
  const auto cache_stats = cache_->GetStats();
  stats.decoded_cache_bytes = cache_stats.bytes;
  stats.decoded_cache_budget_bytes = options_.decoded_cache_budget_bytes;
  stats.evictions = cache_stats.evictions;
  stats.raw_equivalent_bytes = raw_equivalent_bytes_;
  stats.hits = counters_->hits.load(std::memory_order_relaxed);
  stats.misses = counters_->misses.load(std::memory_order_relaxed);
  stats.corrupt_blocks =
      counters_->corrupt_blocks.load(std::memory_order_relaxed);
  stats.blocks_resident = options_.blocks_resident;
  return stats;
}

}  // namespace kbqa::rdf
