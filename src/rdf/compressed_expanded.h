#ifndef KBQA_RDF_COMPRESSED_EXPANDED_H_
#define KBQA_RDF_COMPRESSED_EXPANDED_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "rdf/expanded_predicate.h"
#include "rdf/knowledge_base.h"
#include "util/lru_cache.h"
#include "util/status.h"

namespace kbqa::rdf {

/// Block-compressed, optionally disk-paged representation of an
/// ExpandedKb's edge arrays — the memory wall of the reproduction (§6.2's
/// materialization expands a 550K-triple world to 4.4M triples).
///
/// Layout: subjects ascending; each subject's sorted-unique (path, object)
/// run is delta-varint encoded (same scheme as the KB snapshot v3 CSR) and
/// whole-subject runs are packed into blocks of ~`target_block_edges`
/// edges. A per-block index {subject span, encoded bytes, edge count,
/// FNV-1a checksum} plus a global sorted subject array stay resident;
/// block payloads either stay resident too (`blocks_resident`, the
/// in-memory compressed mode) or page from the snapshot file on demand
/// via pread. Reads decode through a byte-budgeted ShardedLruCache of
/// decoded blocks, so cold-block residency is capped independently of the
/// compressed size.
///
/// Correctness contract: for every materialized subject, `TryObjects` /
/// `CopyOut` return exactly the bytes the uncompressed ExpandedKb holds —
/// the engine's answers are bit-identical at any cache budget (asserted by
/// tests and bench_memory_budget at every swept budget point).
///
/// Thread safety: all read APIs are safe to call concurrently; the decoded
/// -block cache is internally synchronized and pread carries its own file
/// offset. Open-time validation walks every block checksum, so truncation
/// or bit flips surface as a clean Corruption before any query runs; a
/// decode failure after Open (the file was modified underneath a paged
/// instance) is counted in `memory_stats().corrupt_blocks` and treated as
/// an absent subject rather than undefined behavior.
class CompressedExpandedKb {
 public:
  struct Options {
    /// Edge-count target per block; a block closes at the next subject
    /// boundary after reaching it.
    size_t target_block_edges = 4096;
    /// Byte budget for the decoded-block cache. 0 = unbounded (every block
    /// decoded at most once and kept).
    uint64_t decoded_cache_budget_bytes = 0;
    /// True: encoded blocks stay in memory (compressed-resident mode).
    /// False (Open only): blocks page from the snapshot file on demand.
    bool blocks_resident = true;
  };

  struct MemoryStats {
    uint64_t compressed_bytes = 0;  // encoded payloads (resident or on disk)
    uint64_t index_bytes = 0;       // block index + subject array
    uint64_t paths_bytes = 0;       // path dictionary estimate
    uint64_t decoded_cache_bytes = 0;
    uint64_t decoded_cache_budget_bytes = 0;
    uint64_t raw_equivalent_bytes = 0;  // ExpandedKb::ApproxResidentBytes()
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t corrupt_blocks = 0;
    bool blocks_resident = true;

    /// Bytes actually held in memory by this instance right now.
    uint64_t ResidentBytes() const {
      return (blocks_resident ? compressed_bytes : 0) + index_bytes +
             paths_bytes + decoded_cache_bytes;
    }
  };

  CompressedExpandedKb(const CompressedExpandedKb&) = delete;
  CompressedExpandedKb& operator=(const CompressedExpandedKb&) = delete;
  CompressedExpandedKb(CompressedExpandedKb&&) = default;
  CompressedExpandedKb& operator=(CompressedExpandedKb&&) = default;
  ~CompressedExpandedKb() = default;

  /// Compresses a materialized ExpandedKb. Always blocks_resident (there
  /// is no file to page from yet).
  [[nodiscard]] static Result<CompressedExpandedKb> FromExpanded(
      const ExpandedKb& ekb, const Options& options);

  /// Writes the snapshot: magic "KBQAEXP3", a checksummed metadata section
  /// (counts, path dictionary, subject array, block index), then the raw
  /// block payloads.
  [[nodiscard]] Status Save(const std::string& path) const;

  /// Loads a snapshot written by Save. Honors `options.blocks_resident`:
  /// false keeps only index + dictionary resident and pages block payloads
  /// with pread. Every block checksum is verified up front either way.
  [[nodiscard]] static Result<CompressedExpandedKb> Open(
      const std::string& path, const Options& options);

  /// True when `s` has materialized edges. O(log n), never decodes.
  bool Contains(TermId s) const;

  /// Copies V(s, path) — sorted unique — into `*out` (cleared first).
  /// Returns false leaving `*out` empty when `s` is not materialized (the
  /// caller falls back to the online base-KB walk).
  bool TryObjects(TermId s, PathId path, std::vector<TermId>* out) const;

  std::vector<TermId> Objects(TermId s, PathId path) const;

  /// Copies the full (path, object) run of `s` (sorted by path, object)
  /// into `*out`. Returns false when `s` is not materialized.
  bool CopyOut(TermId s, std::vector<std::pair<PathId, TermId>>* out) const;

  /// Enumerates every triple in ascending (s, path, o) order.
  void ForEachTriple(
      const std::function<void(const ExpandedTriple&)>& fn) const;

  const PathDictionary& paths() const { return paths_; }
  size_t num_triples() const { return num_triples_; }
  size_t num_subjects() const { return subjects_.size(); }
  size_t num_blocks() const { return index_.size(); }

  MemoryStats memory_stats() const;

 private:
  struct BlockInfo {
    uint32_t first_slot = 0;     // index into subjects_ of first subject
    uint32_t num_subjects = 0;
    uint32_t num_edges = 0;
    uint64_t offset = 0;         // into the payload region
    uint32_t encoded_bytes = 0;
    uint64_t checksum = 0;       // FNV-1a of the encoded payload
  };

  /// A decoded block: the subject runs come from the global subject array
  /// (subjects_[first_slot + i]), so only run boundaries and edges are
  /// stored. Cached behind shared_ptr so Get copies a pointer, and a
  /// concurrent eviction cannot free a block mid-read.
  struct DecodedBlock {
    std::vector<uint32_t> run_begin;  // num_subjects + 1 edge offsets
    std::vector<std::pair<PathId, TermId>> edges;

    uint64_t ApproxBytes() const {
      return sizeof(DecodedBlock) + run_begin.capacity() * sizeof(uint32_t) +
             edges.capacity() * sizeof(std::pair<PathId, TermId>);
    }
  };
  using BlockCache =
      ShardedLruCache<uint32_t, std::shared_ptr<const DecodedBlock>>;

  /// Heap-boxed so the enclosing class stays movable (std::atomic is not).
  struct Counters {
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> corrupt_blocks{0};
  };

  /// Owning file descriptor with move semantics (paged mode).
  class ScopedFd {
   public:
    ScopedFd() = default;
    explicit ScopedFd(int fd) : fd_(fd) {}
    ScopedFd(const ScopedFd&) = delete;
    ScopedFd& operator=(const ScopedFd&) = delete;
    ScopedFd(ScopedFd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
    ScopedFd& operator=(ScopedFd&& other) noexcept {
      if (this != &other) {
        Reset();
        fd_ = other.fd_;
        other.fd_ = -1;
      }
      return *this;
    }
    ~ScopedFd() { Reset(); }
    int get() const { return fd_; }
    void Reset();  // closes if open

   private:
    int fd_ = -1;
  };

  CompressedExpandedKb() = default;

  /// Fetches block `block_id` through the decoded-block cache, decoding
  /// from the resident payload blob or via pread. Null on decode failure
  /// (post-Open corruption).
  std::shared_ptr<const DecodedBlock> FetchBlock(uint32_t block_id) const;
  /// Decodes one encoded payload. Null on malformed input.
  std::shared_ptr<const DecodedBlock> DecodePayload(
      const BlockInfo& info, const uint8_t* data, size_t size) const;

  PathDictionary paths_;
  std::vector<TermId> subjects_;        // ascending, all materialized s
  std::vector<BlockInfo> index_;        // ascending first_slot
  std::string payload_;                 // all encoded blocks (resident mode)
  size_t num_triples_ = 0;
  uint64_t raw_equivalent_bytes_ = 0;
  Options options_;

  ScopedFd fd_;                  // paged mode: open snapshot file
  uint64_t payload_offset_ = 0;  // paged mode: file offset of block region

  std::unique_ptr<BlockCache> cache_;  // unique_ptr keeps the class movable
  std::unique_ptr<Counters> counters_;
};

}  // namespace kbqa::rdf

#endif  // KBQA_RDF_COMPRESSED_EXPANDED_H_
