#include "rdf/dictionary.h"

#include <cassert>

namespace kbqa::rdf {

TermId Dictionary::Intern(std::string_view term) {
  auto it = index_.find(term);
  if (it != index_.end()) return it->second;
  assert(terms_.size() < kInvalidTerm);
  TermId id = static_cast<TermId>(terms_.size());
  terms_.emplace_back(term);
  index_.emplace(terms_.back(), id);
  return id;
}

std::optional<TermId> Dictionary::Lookup(std::string_view term) const {
  auto it = index_.find(term);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

void Dictionary::Reserve(size_t n) {
  index_.reserve(n);
  terms_.reserve(n);
}

}  // namespace kbqa::rdf
