#ifndef KBQA_RDF_DICTIONARY_H_
#define KBQA_RDF_DICTIONARY_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace kbqa::rdf {

/// Dictionary-encoded term identifier. Dense, starting at 0; invalid is the
/// max value. 32 bits supports ~4.2B distinct terms — ample for the scales
/// this substrate targets, and half the index footprint of 64-bit ids.
using TermId = uint32_t;
inline constexpr TermId kInvalidTerm = std::numeric_limits<TermId>::max();

/// Transparent string hasher so the dictionary index supports heterogeneous
/// lookup: `Lookup(string_view)` probes the map without materializing a
/// `std::string` key (the old per-lookup allocation showed up in the BFS
/// and N-Triples scan profiles).
struct StringHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
  size_t operator()(const std::string& s) const {
    return std::hash<std::string_view>{}(s);
  }
  size_t operator()(const char* s) const {
    return std::hash<std::string_view>{}(s);
  }
};

/// Bidirectional string<->id dictionary, the first stage of every RDF engine
/// (Trinity.RDF, RDF-3X, Virtuoso all dictionary-encode terms). Interning is
/// idempotent; ids are assigned densely in interning order, which makes them
/// usable directly as vector indexes in the triple store.
class Dictionary {
 public:
  Dictionary() = default;

  // Dictionaries back large index structures; keep them move-only so an
  // accidental deep copy is a compile error.
  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;
  Dictionary(Dictionary&&) = default;
  Dictionary& operator=(Dictionary&&) = default;

  /// Returns the id for `term`, interning it if new.
  TermId Intern(std::string_view term);

  /// Returns the id for `term` or nullopt when absent. Never interns and
  /// never allocates (heterogeneous probe).
  std::optional<TermId> Lookup(std::string_view term) const;

  /// Returns the string for a valid id. Precondition: id < size().
  const std::string& GetString(TermId id) const { return terms_[id]; }

  /// Pre-sizes both sides for `n` terms (snapshot load path).
  void Reserve(size_t n);

  size_t size() const { return terms_.size(); }
  bool empty() const { return terms_.empty(); }

 private:
  std::unordered_map<std::string, TermId, StringHash, std::equal_to<>> index_;
  std::vector<std::string> terms_;
};

}  // namespace kbqa::rdf

#endif  // KBQA_RDF_DICTIONARY_H_
