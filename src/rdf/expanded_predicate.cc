#include "rdf/expanded_predicate.h"

#include <algorithm>
#include <cassert>
#include <fstream>

#include "rdf/ntriples.h"
#include "util/strings.h"

namespace kbqa::rdf {

std::string PathDictionary::Key(const PredPath& path) {
  std::string key;
  key.reserve(path.size() * 5);
  for (PredId p : path) {
    key.append(reinterpret_cast<const char*>(&p), sizeof(p));
  }
  return key;
}

PathId PathDictionary::Intern(const PredPath& path) {
  assert(!path.empty());
  std::string key = Key(path);
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  PathId id = static_cast<PathId>(paths_.size());
  paths_.push_back(path);
  index_.emplace(std::move(key), id);
  return id;
}

std::optional<PathId> PathDictionary::Lookup(const PredPath& path) const {
  auto it = index_.find(Key(path));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::string PathDictionary::ToString(PathId id, const KnowledgeBase& kb) const {
  const PredPath& path = GetPath(id);
  std::string out;
  for (size_t i = 0; i < path.size(); ++i) {
    if (i > 0) out += " -> ";
    out += kb.PredicateString(path[i]);
  }
  return out;
}

Result<ExpandedKb> ExpandedKb::Build(
    const KnowledgeBase& kb, const std::vector<TermId>& seeds,
    const std::unordered_set<PredId>& name_like,
    const ExpansionOptions& options) {
  if (!kb.frozen()) {
    return Status::FailedPrecondition("ExpandedKb requires a frozen KB");
  }
  if (options.max_length < 1) {
    return Status::InvalidArgument("max_length must be >= 1");
  }

  ExpandedKb ekb;

  // Frontier entry: origin seed, current node, path walked so far. The
  // round-based structure mirrors the paper's index+scan+join loop: round r
  // only extends paths of length r-1.
  struct FrontierEntry {
    TermId origin;
    TermId cur;
    PathId path;  // kInvalidPath for the empty path at round 0.
  };

  std::vector<FrontierEntry> frontier;
  frontier.reserve(seeds.size());
  {
    // Deduplicate seeds; a seed occurring twice must not double triples.
    std::unordered_set<TermId> seen;
    for (TermId s : seeds) {
      if (!kb.IsEntity(s)) continue;  // Literals cannot start a path.
      if (seen.insert(s).second) {
        frontier.push_back({s, s, kInvalidPath});
      }
    }
  }

  size_t triples = 0;
  for (int round = 1; round <= options.max_length && !frontier.empty();
       ++round) {
    std::vector<FrontierEntry> next;
    for (const FrontierEntry& fe : frontier) {
      for (const auto& [p, o] : kb.Out(fe.cur)) {
        PredPath path;
        if (fe.path != kInvalidPath) path = ekb.paths_.GetPath(fe.path);
        path.push_back(p);

        // Record the expanded triple when the tail rule admits it.
        bool admissible =
            path.size() == 1 || !options.require_name_tail ||
            name_like.count(p) > 0;
        if (admissible) {
          if (triples >= options.max_triples) {
            return Status::OutOfRange(
                "expanded-triple budget exhausted; raise "
                "ExpansionOptions::max_triples or lower max_length");
          }
          PathId pid = ekb.paths_.Intern(path);
          ekb.by_s_[fe.origin].push_back({pid, o});
          ++triples;
        }

        // Continue the walk through entity nodes only; literal objects are
        // leaves. A name-like edge is terminal by construction.
        if (round < options.max_length && kb.IsEntity(o) &&
            name_like.count(p) == 0) {
          PathId pid = ekb.paths_.Intern(path);
          next.push_back({fe.origin, o, pid});
        }
      }
    }
    frontier = std::move(next);
  }

  for (auto& [s, vec] : ekb.by_s_) {
    (void)s;
    std::sort(vec.begin(), vec.end());
    vec.erase(std::unique(vec.begin(), vec.end()), vec.end());
    ekb.num_triples_ += vec.size();
  }
  return ekb;
}

Result<ExpandedKb> ExpandedKb::BuildFromDisk(
    const KnowledgeBase& kb, const std::string& ntriples_path,
    const std::vector<TermId>& seeds,
    const std::unordered_set<PredId>& name_like,
    const ExpansionOptions& options) {
  if (options.max_length < 1) {
    return Status::InvalidArgument("max_length must be >= 1");
  }

  ExpandedKb ekb;

  // Frontier hash index: node -> walks that currently end at it. This is
  // the in-memory side of the paper's index+scan+join rounds; S0 is the
  // seed set.
  struct Walk {
    TermId origin;
    PathId path;  // kInvalidPath for the empty walk
  };
  std::unordered_map<TermId, std::vector<Walk>> frontier;
  {
    std::unordered_set<TermId> seen;
    for (TermId s : seeds) {
      if (!kb.IsEntity(s)) continue;
      if (seen.insert(s).second) {
        frontier[s].push_back(Walk{s, kInvalidPath});
      }
    }
  }

  size_t triples = 0;
  for (int round = 1; round <= options.max_length && !frontier.empty();
       ++round) {
    std::unordered_map<TermId, std::vector<Walk>> next;
    // Scan pass: stream the disk-resident KB once and join each triple's
    // subject against the frontier index.
    std::ifstream in(ntriples_path);
    if (!in) {
      return Status::IoError("cannot open KB file: " + ntriples_path);
    }
    std::string line;
    while (std::getline(in, line)) {
      std::string_view trimmed = Trim(line);
      if (trimmed.empty() || trimmed[0] == '#') continue;
      auto parsed = ParseNTripleLine(line);
      if (!parsed.ok()) {
        return Status::InvalidArgument("bad triple in " + ntriples_path +
                                       ": " + parsed.status().message());
      }
      auto s = kb.LookupNode(parsed.value().subject);
      auto p = kb.LookupPredicate(parsed.value().predicate);
      auto o = kb.LookupNode(parsed.value().object);
      if (!s || !p || !o) continue;  // term unknown to the dictionary
      auto hit = frontier.find(*s);
      if (hit == frontier.end()) continue;

      for (const Walk& walk : hit->second) {
        PredPath path;
        if (walk.path != kInvalidPath) path = ekb.paths_.GetPath(walk.path);
        path.push_back(*p);

        bool admissible = path.size() == 1 || !options.require_name_tail ||
                          name_like.count(*p) > 0;
        if (admissible) {
          if (triples >= options.max_triples) {
            return Status::OutOfRange("expanded-triple budget exhausted");
          }
          ekb.by_s_[walk.origin].push_back({ekb.paths_.Intern(path), *o});
          ++triples;
        }
        if (round < options.max_length && kb.IsEntity(*o) &&
            name_like.count(*p) == 0) {
          next[*o].push_back(Walk{walk.origin, ekb.paths_.Intern(path)});
        }
      }
    }
    frontier = std::move(next);
  }

  for (auto& [s, vec] : ekb.by_s_) {
    (void)s;
    std::sort(vec.begin(), vec.end());
    vec.erase(std::unique(vec.begin(), vec.end()), vec.end());
    ekb.num_triples_ += vec.size();
  }
  return ekb;
}

std::span<const std::pair<PathId, TermId>> ExpandedKb::Out(TermId s) const {
  auto it = by_s_.find(s);
  if (it == by_s_.end()) return {};
  return it->second;
}

std::vector<TermId> ExpandedKb::Objects(TermId s, PathId path) const {
  std::vector<TermId> out;
  for (const auto& [pid, o] : Out(s)) {
    if (pid == path) out.push_back(o);
  }
  return out;
}

std::vector<PathId> ExpandedKb::ConnectingPaths(TermId s, TermId o) const {
  std::vector<PathId> out;
  for (const auto& [pid, obj] : Out(s)) {
    if (obj == o) out.push_back(pid);
  }
  return out;
}

size_t ExpandedKb::NumPathsOfLength(int length) const {
  // Count only paths that actually back at least one triple.
  std::vector<bool> used(paths_.size(), false);
  for (const auto& [s, vec] : by_s_) {
    (void)s;
    for (const auto& [pid, o] : vec) {
      (void)o;
      used[pid] = true;
    }
  }
  size_t count = 0;
  for (PathId id = 0; id < paths_.size(); ++id) {
    if (used[id] && paths_.GetPath(id).size() == static_cast<size_t>(length)) {
      ++count;
    }
  }
  return count;
}

size_t ExpandedKb::NumTriplesOfLength(int length) const {
  size_t count = 0;
  for (const auto& [s, vec] : by_s_) {
    (void)s;
    for (const auto& [pid, o] : vec) {
      (void)o;
      if (paths_.GetPath(pid).size() == static_cast<size_t>(length)) ++count;
    }
  }
  return count;
}

void ExpandedKb::ForEachTriple(
    const std::function<void(const ExpandedTriple&)>& fn) const {
  for (const auto& [s, vec] : by_s_) {
    for (const auto& [pid, o] : vec) {
      fn(ExpandedTriple{s, pid, o});
    }
  }
}

std::vector<TermId> ObjectsViaPath(const KnowledgeBase& kb, TermId e,
                                   const PredPath& path) {
  std::vector<TermId> frontier = {e};
  for (size_t depth = 0; depth < path.size(); ++depth) {
    std::vector<TermId> next;
    for (TermId node : frontier) {
      if (kb.IsLiteral(node)) continue;
      for (const auto& po : kb.ObjectsRange(node, path[depth])) {
        next.push_back(po.o);
      }
    }
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    frontier = std::move(next);
    if (frontier.empty()) break;
  }
  return frontier;
}

}  // namespace kbqa::rdf
