#include "rdf/expanded_predicate.h"

#include <algorithm>
#include <cassert>
#include <fstream>

#include "obs/obs.h"
#include "rdf/ntriples.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace kbqa::rdf {

namespace {

// Fixed shard count for the per-round frontier scans — a constant, never
// the thread count, so the shard split (and with it the discovery order
// after the shard-ordered merge) is identical for any pool size.
constexpr size_t kBfsShards = 32;

// Lines per parallel parse block in BuildFromDisk. Large enough to amortize
// the per-block fork/join, small enough to keep raw line memory bounded.
constexpr size_t kScanBlockLines = 4096;

/// Packs a trie extension edge (parent path, predicate) into one key;
/// parent + 1 so the empty path (kInvalidPath) encodes as 0.
inline uint64_t ExtKey(PathId parent, PredId p) {
  const uint64_t parent_code =
      parent == kInvalidPath ? 0 : static_cast<uint64_t>(parent) + 1;
  return (parent_code << 32) | p;
}

/// Membership mask over PredId, replacing hash-set probes in the scan loop.
std::vector<uint8_t> NameMask(const KnowledgeBase& kb,
                              const std::unordered_set<PredId>& name_like) {
  std::vector<uint8_t> mask(kb.num_predicates(), 0);
  for (PredId p : name_like) {
    if (p < mask.size()) mask[p] = 1;
  }
  return mask;
}

/// Sorts + deduplicates every origin bucket (buckets are independent, so
/// this shards cleanly) and totals the surviving triples.
void SortDedupBuckets(
    ThreadPool& pool,
    std::unordered_map<TermId, std::vector<std::pair<PathId, TermId>>>& by_s,
    size_t* num_triples) {
  std::vector<std::vector<std::pair<PathId, TermId>>*> buckets;
  buckets.reserve(by_s.size());
  for (auto& [s, vec] : by_s) {
    (void)s;
    buckets.push_back(&vec);
  }
  ParallelFor(pool, buckets.size(), kBfsShards,
              [&](size_t /*shard*/, size_t begin, size_t end) {
                for (size_t i = begin; i < end; ++i) {
                  auto& vec = *buckets[i];
                  std::sort(vec.begin(), vec.end());
                  vec.erase(std::unique(vec.begin(), vec.end()), vec.end());
                }
              });
  *num_triples = 0;
  for (auto* vec : buckets) *num_triples += vec->size();
}

}  // namespace

PathId PathDictionary::InternExtension(PathId parent, PredId p) {
  const uint64_t key = ExtKey(parent, p);
  auto it = ext_index_.find(key);
  if (it != ext_index_.end()) return it->second;
  PathId id = static_cast<PathId>(paths_.size());
  PredPath child;
  if (parent != kInvalidPath) {
    const PredPath& base = paths_[parent];
    child.reserve(base.size() + 1);
    child = base;
  }
  child.push_back(p);
  paths_.push_back(std::move(child));
  ext_index_.emplace(key, id);
  return id;
}

PathId PathDictionary::Intern(const PredPath& path) {
  assert(!path.empty());
  PathId cur = kInvalidPath;
  for (PredId p : path) cur = InternExtension(cur, p);
  return cur;
}

std::optional<PathId> PathDictionary::Lookup(const PredPath& path) const {
  if (path.empty()) return std::nullopt;
  PathId cur = kInvalidPath;
  for (PredId p : path) {
    auto it = ext_index_.find(ExtKey(cur, p));
    if (it == ext_index_.end()) return std::nullopt;
    cur = it->second;
  }
  return cur;
}

std::string PathDictionary::ToString(PathId id, const KnowledgeBase& kb) const {
  const PredPath& path = GetPath(id);
  std::string out;
  for (size_t i = 0; i < path.size(); ++i) {
    if (i > 0) out += " -> ";
    out += kb.PredicateString(path[i]);
  }
  return out;
}

/// One frontier edge found by a scan shard. Shards record the *parent*
/// path id plus the extending predicate instead of interning, so the
/// dictionary is only touched by the serial commit — that is what makes
/// PathId numbering independent of the thread count.
struct ExpandedKb::Discovery {
  TermId origin;
  PathId parent;  // path walked before this edge; kInvalidPath at round 1
  PredId p;
  TermId o;
  uint8_t admissible;  // record (origin, parent+p, o) as an expanded triple
  uint8_t cont;        // o joins the next round's frontier
};

/// One walk in flight: origin seed, current node, interned path so far.
struct ExpandedKb::WalkEntry {
  TermId origin;
  TermId cur;
  PathId path;  // kInvalidPath for the empty path at round 0
};

Status ExpandedKb::CommitDiscoveries(const std::vector<Discovery>& discoveries,
                                     size_t* triples, size_t max_triples,
                                     std::vector<WalkEntry>* next) {
  for (const Discovery& d : discoveries) {
    PathId pid = paths_.InternExtension(d.parent, d.p);
    if (d.admissible) {
      if (*triples >= max_triples) {
        return Status::OutOfRange(
            "expanded-triple budget exhausted; raise "
            "ExpansionOptions::max_triples or lower max_length");
      }
      by_s_[d.origin].push_back({pid, d.o});
      ++*triples;
    }
    if (d.cont) next->push_back({d.origin, d.o, pid});
  }
  return Status::Ok();
}

Result<ExpandedKb> ExpandedKb::Build(
    const KnowledgeBase& kb, const std::vector<TermId>& seeds,
    const std::unordered_set<PredId>& name_like,
    const ExpansionOptions& options) {
  if (!kb.frozen()) {
    return Status::FailedPrecondition("ExpandedKb requires a frozen KB");
  }
  if (options.max_length < 1) {
    return Status::InvalidArgument("max_length must be >= 1");
  }

  ExpandedKb ekb;
  ThreadPool pool(options.num_threads);  // < 1 clamps to 1
  const std::vector<uint8_t> name_mask = NameMask(kb, name_like);

  std::vector<WalkEntry> frontier;
  frontier.reserve(seeds.size());
  {
    // Deduplicate seeds; a seed occurring twice must not double triples.
    std::unordered_set<TermId> seen;
    for (TermId s : seeds) {
      if (!kb.IsEntity(s)) continue;  // Literals cannot start a path.
      if (seen.insert(s).second) {
        frontier.push_back({s, s, kInvalidPath});
      }
    }
  }

  size_t triples = 0;
  for (int round = 1; round <= options.max_length && !frontier.empty();
       ++round) {
    KBQA_TRACE_SPAN("rdf.expand.round");
    KBQA_HISTOGRAM_RECORD("rdf.expand.frontier_size", frontier.size());
    const bool last_round = round == options.max_length;
    // Scan pass: shards read the (immutable) frontier and KB adjacency and
    // emit shard-local discovery buffers, merged in shard order.
    auto discoveries = ParallelReduce(
        pool, frontier.size(), kBfsShards, std::vector<Discovery>{},
        [&](size_t /*shard*/, size_t begin, size_t end) {
          std::vector<Discovery> local;
          for (size_t i = begin; i < end; ++i) {
            const WalkEntry& fe = frontier[i];
            for (const auto& [p, o] : kb.Out(fe.cur)) {
              const bool name_p = name_mask[p] != 0;
              // The tail rule (§6.3): length-1 paths always count; longer
              // ones only with a name-like tail unless disabled.
              const bool admissible =
                  round == 1 || !options.require_name_tail || name_p;
              // Walks continue through entity nodes only; literal objects
              // are leaves and a name-like edge is terminal by construction.
              const bool cont = !last_round && kb.IsEntity(o) && !name_p;
              if (admissible || cont) {
                local.push_back({fe.origin, fe.path, p, o,
                                 static_cast<uint8_t>(admissible),
                                 static_cast<uint8_t>(cont)});
              }
            }
          }
          return local;
        },
        [](std::vector<Discovery>& acc, std::vector<Discovery>&& part) {
          if (acc.empty()) {
            acc = std::move(part);
          } else {
            acc.insert(acc.end(), part.begin(), part.end());
          }
        });

    std::vector<WalkEntry> next;
    Status st = ekb.CommitDiscoveries(discoveries, &triples,
                                      options.max_triples, &next);
    if (!st.ok()) return st;
    frontier = std::move(next);
  }

  SortDedupBuckets(pool, ekb.by_s_, &ekb.num_triples_);
  return ekb;
}

Result<ExpandedKb> ExpandedKb::BuildFromDisk(
    const KnowledgeBase& kb, const std::string& ntriples_path,
    const std::vector<TermId>& seeds,
    const std::unordered_set<PredId>& name_like,
    const ExpansionOptions& options) {
  if (options.max_length < 1) {
    return Status::InvalidArgument("max_length must be >= 1");
  }

  ExpandedKb ekb;
  ThreadPool pool(options.num_threads);
  const std::vector<uint8_t> name_mask = NameMask(kb, name_like);

  // Frontier hash index: node -> walks that currently end at it. This is
  // the in-memory side of the paper's index+scan+join rounds; S0 is the
  // seed set. Strictly read-only while a round's blocks are in flight.
  struct Walk {
    TermId origin;
    PathId path;  // kInvalidPath for the empty walk
  };
  std::unordered_map<TermId, std::vector<Walk>> frontier;
  {
    std::unordered_set<TermId> seen;
    for (TermId s : seeds) {
      if (!kb.IsEntity(s)) continue;
      if (seen.insert(s).second) {
        frontier[s].push_back(Walk{s, kInvalidPath});
      }
    }
  }

  // Per-shard scan result for one line block: discoveries plus the first
  // parse error (merged in shard order = line order, so the reported error
  // is the same one the serial scan would hit first).
  struct Partial {
    std::vector<ExpandedKb::Discovery> discoveries;
    Status error = Status::Ok();
  };

  size_t triples = 0;
  for (int round = 1; round <= options.max_length && !frontier.empty();
       ++round) {
    KBQA_TRACE_SPAN("rdf.expand.round");
    KBQA_HISTOGRAM_RECORD("rdf.expand.frontier_size", frontier.size());
    const bool last_round = round == options.max_length;
    // Scan pass: stream the disk-resident KB once in line blocks; each
    // block is parsed and joined against the frontier in parallel.
    std::ifstream in(ntriples_path);
    if (!in) {
      return Status::IoError("cannot open KB file: " + ntriples_path);
    }
    std::vector<WalkEntry> next;
    std::vector<std::string> block;
    block.reserve(kScanBlockLines);
    std::string line;
    for (;;) {
      block.clear();
      while (block.size() < kScanBlockLines && std::getline(in, line)) {
        block.push_back(std::move(line));
      }
      if (block.empty()) break;

      Partial merged = ParallelReduce(
          pool, block.size(), kBfsShards, Partial{},
          [&](size_t /*shard*/, size_t begin, size_t end) {
            Partial local;
            for (size_t i = begin; i < end; ++i) {
              std::string_view trimmed = Trim(block[i]);
              if (trimmed.empty() || trimmed[0] == '#') continue;
              auto parsed = ParseNTripleLine(block[i]);
              if (!parsed.ok()) {
                local.error = Status::InvalidArgument(
                    "bad triple in " + ntriples_path + ": " +
                    parsed.status().message());
                break;
              }
              auto s = kb.LookupNode(parsed.value().subject);
              auto p = kb.LookupPredicate(parsed.value().predicate);
              auto o = kb.LookupNode(parsed.value().object);
              if (!s || !p || !o) continue;  // term unknown to the dictionary
              auto hit = frontier.find(*s);
              if (hit == frontier.end()) continue;
              for (const Walk& walk : hit->second) {
                const bool name_p = name_mask[*p] != 0;
                const bool admissible =
                    round == 1 || !options.require_name_tail || name_p;
                const bool cont = !last_round && kb.IsEntity(*o) && !name_p;
                if (admissible || cont) {
                  local.discoveries.push_back(
                      {walk.origin, walk.path, *p, *o,
                       static_cast<uint8_t>(admissible),
                       static_cast<uint8_t>(cont)});
                }
              }
            }
            return local;
          },
          [](Partial& acc, Partial&& part) {
            if (!acc.error.ok()) return;  // keep the earliest error
            if (acc.discoveries.empty()) {
              acc.discoveries = std::move(part.discoveries);
            } else {
              acc.discoveries.insert(acc.discoveries.end(),
                                     part.discoveries.begin(),
                                     part.discoveries.end());
            }
            if (!part.error.ok()) acc.error = std::move(part.error);
          });
      if (!merged.error.ok()) return merged.error;

      Status st = ekb.CommitDiscoveries(merged.discoveries, &triples,
                                        options.max_triples, &next);
      if (!st.ok()) return st;
    }

    // Reindex the next frontier by node, in deterministic discovery order.
    frontier.clear();
    for (const WalkEntry& w : next) {
      frontier[w.cur].push_back(Walk{w.origin, w.path});
    }
  }

  SortDedupBuckets(pool, ekb.by_s_, &ekb.num_triples_);
  return ekb;
}

std::span<const std::pair<PathId, TermId>> ExpandedKb::Out(TermId s) const {
  auto it = by_s_.find(s);
  if (it == by_s_.end()) return {};
  return it->second;
}

std::vector<TermId> ExpandedKb::Objects(TermId s, PathId path) const {
  std::vector<TermId> out;
  for (const auto& [pid, o] : Out(s)) {
    if (pid == path) out.push_back(o);
  }
  return out;
}

std::vector<PathId> ExpandedKb::ConnectingPaths(TermId s, TermId o) const {
  std::vector<PathId> out;
  for (const auto& [pid, obj] : Out(s)) {
    if (obj == o) out.push_back(pid);
  }
  return out;
}

size_t ExpandedKb::NumPathsOfLength(int length) const {
  // Count only paths that actually back at least one triple.
  std::vector<bool> used(paths_.size(), false);
  for (const auto& [s, vec] : by_s_) {
    (void)s;
    for (const auto& [pid, o] : vec) {
      (void)o;
      used[pid] = true;
    }
  }
  size_t count = 0;
  for (PathId id = 0; id < paths_.size(); ++id) {
    if (used[id] && paths_.GetPath(id).size() == static_cast<size_t>(length)) {
      ++count;
    }
  }
  return count;
}

size_t ExpandedKb::NumTriplesOfLength(int length) const {
  size_t count = 0;
  for (const auto& [s, vec] : by_s_) {
    (void)s;
    for (const auto& [pid, o] : vec) {
      (void)o;
      if (paths_.GetPath(pid).size() == static_cast<size_t>(length)) ++count;
    }
  }
  return count;
}

void ExpandedKb::ForEachTriple(
    const std::function<void(const ExpandedTriple&)>& fn) const {
  for (const auto& [s, vec] : by_s_) {
    for (const auto& [pid, o] : vec) {
      fn(ExpandedTriple{s, pid, o});
    }
  }
}

std::vector<TermId> ExpandedKb::Subjects() const {
  std::vector<TermId> subjects;
  subjects.reserve(by_s_.size());
  for (const auto& [s, vec] : by_s_) {
    (void)vec;
    subjects.push_back(s);
  }
  std::sort(subjects.begin(), subjects.end());
  return subjects;
}

uint64_t ExpandedKb::ApproxResidentBytes() const {
  // Hash-map node: key + vector header + bucket/next-pointer overhead
  // (~libstdc++ _Hash_node bookkeeping, counted conservatively at two
  // pointers per node plus one bucket slot).
  constexpr uint64_t kNodeOverhead =
      sizeof(TermId) + sizeof(std::vector<std::pair<PathId, TermId>>) +
      3 * sizeof(void*);
  uint64_t bytes = by_s_.size() * kNodeOverhead;
  for (const auto& [s, vec] : by_s_) {
    (void)s;
    bytes += vec.capacity() * sizeof(std::pair<PathId, TermId>);
  }
  for (size_t i = 0; i < paths_.size(); ++i) {
    bytes += sizeof(PredPath) +
             paths_.GetPath(static_cast<PathId>(i)).capacity() *
                 sizeof(PredId);
  }
  return bytes;
}

std::vector<TermId> ObjectsViaPath(const KnowledgeBase& kb, TermId e,
                                   const PredPath& path) {
  std::vector<TermId> frontier = {e};
  for (size_t depth = 0; depth < path.size(); ++depth) {
    std::vector<TermId> next;
    for (TermId node : frontier) {
      if (kb.IsLiteral(node)) continue;
      for (const auto& po : kb.ObjectsRange(node, path[depth])) {
        next.push_back(po.o);
      }
    }
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    frontier = std::move(next);
    if (frontier.empty()) break;
  }
  return frontier;
}

}  // namespace kbqa::rdf
