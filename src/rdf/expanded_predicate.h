#ifndef KBQA_RDF_EXPANDED_PREDICATE_H_
#define KBQA_RDF_EXPANDED_PREDICATE_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "rdf/knowledge_base.h"
#include "util/status.h"

namespace kbqa::rdf {

/// An expanded predicate p+ = (p1, ..., pk): a path of predicate edges
/// (Definition 1 in the paper). Length-1 paths are plain direct predicates,
/// so the rest of the system can treat "predicate" uniformly as a PredPath.
using PredPath = std::vector<PredId>;

/// Dense id for an interned PredPath.
using PathId = uint32_t;
inline constexpr PathId kInvalidPath = std::numeric_limits<PathId>::max();

/// Bidirectional PredPath <-> PathId dictionary.
///
/// Paths are interned as a prefix trie over (parent PathId, PredId)
/// extension edges, so the BFS hot path — extend an already-interned path
/// by one predicate — is a single integer-keyed hash probe via
/// InternExtension(), with no string key built and no path vector copied
/// on a hit. Interning a path interns its prefixes.
class PathDictionary {
 public:
  PathDictionary() = default;
  PathDictionary(const PathDictionary&) = delete;
  PathDictionary& operator=(const PathDictionary&) = delete;
  PathDictionary(PathDictionary&&) = default;
  PathDictionary& operator=(PathDictionary&&) = default;

  /// Interns the one-predicate extension of `parent` (kInvalidPath for the
  /// empty path). O(1); allocates only when the extension is new.
  PathId InternExtension(PathId parent, PredId p);

  /// Interns a full path (and, as a side effect, each of its prefixes).
  PathId Intern(const PredPath& path);

  /// Trie walk; never interns and never allocates.
  std::optional<PathId> Lookup(const PredPath& path) const;

  const PredPath& GetPath(PathId id) const { return paths_[id]; }
  size_t size() const { return paths_.size(); }

  /// Human-readable form, e.g. "marriage -> person -> name".
  std::string ToString(PathId id, const KnowledgeBase& kb) const;

 private:
  // (parent + 1, predicate) packed into one key; 0 encodes the empty path.
  std::unordered_map<uint64_t, PathId> ext_index_;
  std::vector<PredPath> paths_;
};

/// One materialized expanded triple (s, p+, o).
struct ExpandedTriple {
  TermId s;
  PathId path;
  TermId o;

  friend bool operator==(const ExpandedTriple&, const ExpandedTriple&) =
      default;
};

/// Options for expanded-predicate generation (§6.2–6.3).
struct ExpansionOptions {
  /// Maximum path length k. The paper selects k = 3 via valid(k) (§6.3).
  int max_length = 3;
  /// When true, paths of length >= 2 must end with a name-like predicate —
  /// the paper discards other tails as "very weak relations" (§6.3).
  bool require_name_tail = true;
  /// Hard cap on materialized triples (memory backstop; the paper's setting
  /// materializes 21M triples for a 11.5B-triple KB thanks to seed
  /// reduction).
  size_t max_triples = std::numeric_limits<size_t>::max();
  /// Worker threads for the per-round frontier scan. Values < 1 mean 1
  /// here; KbqaSystem maps 0 to its EM thread count. The produced triple
  /// set AND the PathId numbering are bit-identical for any value (fixed
  /// shard split, shard-ordered merge, serial commit).
  int num_threads = 0;
};

/// Materialized set of expanded triples reachable from a seed entity set —
/// the product of the memory-efficient multi-source BFS of §6.2.
///
/// The BFS is round-based exactly as the paper describes: round r joins the
/// round-(r-1) frontier objects against subjects of the base KB, so the KB
/// is scanned k times and only frontier state is held. Complexity
/// O(|K| + #spo); memory O(#spo). Each round's frontier scan is sharded
/// across a thread pool; discoveries are committed serially in shard order,
/// keeping the output deterministic (see DESIGN.md).
class ExpandedKb {
 public:
  /// Runs the expansion from `seeds` (the paper seeds with entities that
  /// occur in the QA corpus — "reduction on s"). `name_like` is the set of
  /// predicates allowed as tails of length>=2 paths (typically {name,
  /// alias}).
  [[nodiscard]] static Result<ExpandedKb> Build(const KnowledgeBase& kb,
                                  const std::vector<TermId>& seeds,
                                  const std::unordered_set<PredId>& name_like,
                                  const ExpansionOptions& options);

  /// §6.2 exactly as the paper runs it at the 1.1 TB scale: the KB's
  /// triples stay *on disk* (an N-Triples file) and are scanned k times;
  /// each round joins the streamed subjects against the in-memory frontier
  /// hash index. Only the frontier and the discovered (s, p+, o) triples
  /// are held in memory — O(#spo) memory, O(k·|K|) I/O. `kb` is used for
  /// its dictionaries and node-kind flags only; its adjacency is never
  /// touched. Line blocks are parsed and joined in parallel; produces
  /// exactly the same triples as Build() (asserted by the property tests).
  [[nodiscard]] static Result<ExpandedKb> BuildFromDisk(
      const KnowledgeBase& kb, const std::string& ntriples_path,
      const std::vector<TermId>& seeds,
      const std::unordered_set<PredId>& name_like,
      const ExpansionOptions& options);

  /// All expanded triples out of `s`, as (path, object) pairs sorted by
  /// (path, object).
  std::span<const std::pair<PathId, TermId>> Out(TermId s) const;

  /// V(e, p+) — objects connected to `s` via `path`.
  std::vector<TermId> Objects(TermId s, PathId path) const;

  /// All paths p+ with (s, p+, o) materialized.
  std::vector<PathId> ConnectingPaths(TermId s, TermId o) const;

  const PathDictionary& paths() const { return paths_; }
  size_t num_triples() const { return num_triples_; }
  /// Number of distinct paths of the given length that were materialized.
  size_t NumPathsOfLength(int length) const;
  /// Number of materialized triples whose path has the given length.
  size_t NumTriplesOfLength(int length) const;

  /// Enumerates every materialized triple (for valid(k) and case studies).
  void ForEachTriple(
      const std::function<void(const ExpandedTriple&)>& fn) const;

  /// All materialized subjects, ascending. O(n log n); intended for
  /// snapshotting/compaction passes, not the answer path.
  std::vector<TermId> Subjects() const;

  /// Estimated resident bytes of the uncompressed substrate: the per-subject
  /// edge vectors (at allocated capacity), hash-map node overhead, and the
  /// path dictionary. The baseline the compressed representation is
  /// measured against.
  uint64_t ApproxResidentBytes() const;

 private:
  ExpandedKb() = default;

  /// Applies one round's discoveries in deterministic order: interns paths,
  /// records admissible triples (enforcing the budget), and builds the next
  /// frontier. Shared by Build and BuildFromDisk.
  struct Discovery;
  struct WalkEntry;
  [[nodiscard]] Status CommitDiscoveries(const std::vector<Discovery>& discoveries,
                           size_t* triples, size_t max_triples,
                           std::vector<WalkEntry>* next);

  PathDictionary paths_;
  std::unordered_map<TermId, std::vector<std::pair<PathId, TermId>>> by_s_;
  size_t num_triples_ = 0;
};

/// Online value lookup for entities outside the materialized seed set:
/// walks `path` from `e` through the base KB (§6.1's "explore the RDF
/// knowledge base starting from e and going through p+"). Deduplicated.
std::vector<TermId> ObjectsViaPath(const KnowledgeBase& kb, TermId e,
                                   const PredPath& path);

}  // namespace kbqa::rdf

#endif  // KBQA_RDF_EXPANDED_PREDICATE_H_
