#include "rdf/knowledge_base.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstring>

namespace kbqa::rdf {

namespace {

constexpr uint64_t kMagic = 0x4b42514152444631ULL;  // "KBQARDF1"

// Minimal buffered binary writer/reader for Save/Load. Little-endian only
// (all supported platforms); sizes written as uint64.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::FILE* f) : f_(f) {}
  bool ok() const { return ok_; }

  void WriteU64(uint64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU32(uint32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteString(const std::string& s) {
    WriteU64(s.size());
    WriteRaw(s.data(), s.size());
  }

 private:
  void WriteRaw(const void* data, size_t n) {
    if (ok_ && n > 0 && std::fwrite(data, 1, n, f_) != n) ok_ = false;
  }
  std::FILE* f_;
  bool ok_ = true;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::FILE* f) : f_(f) {}
  bool ok() const { return ok_; }

  uint64_t ReadU64() {
    uint64_t v = 0;
    ReadRaw(&v, sizeof(v));
    return v;
  }
  uint32_t ReadU32() {
    uint32_t v = 0;
    ReadRaw(&v, sizeof(v));
    return v;
  }
  std::string ReadString() {
    uint64_t n = ReadU64();
    if (!ok_ || n > (1ULL << 32)) {
      ok_ = false;
      return {};
    }
    std::string s(n, '\0');
    ReadRaw(s.data(), n);
    return s;
  }

 private:
  void ReadRaw(void* data, size_t n) {
    if (ok_ && n > 0 && std::fread(data, 1, n, f_) != n) ok_ = false;
  }
  std::FILE* f_;
  bool ok_ = true;
};

}  // namespace

KnowledgeBase::KnowledgeBase() = default;

TermId KnowledgeBase::AddNode(std::string_view term, bool literal) {
  assert(!frozen_);
  size_t before = nodes_.size();
  TermId id = nodes_.Intern(term);
  if (nodes_.size() > before) {
    is_literal_.push_back(literal);
    out_.emplace_back();
    in_.emplace_back();
    if (!literal) ++num_entities_;
  } else {
    // Re-interning with a different kind is a modeling error.
    assert(is_literal_[id] == literal && "node kind mismatch on re-intern");
  }
  return id;
}

TermId KnowledgeBase::AddEntity(std::string_view iri) {
  return AddNode(iri, /*literal=*/false);
}

TermId KnowledgeBase::AddLiteral(std::string_view value) {
  return AddNode(value, /*literal=*/true);
}

PredId KnowledgeBase::AddPredicate(std::string_view pred) {
  assert(!frozen_);
  return predicates_.Intern(pred);
}

void KnowledgeBase::AddTriple(TermId s, PredId p, TermId o) {
  assert(!frozen_);
  assert(s < nodes_.size() && o < nodes_.size() && p < predicates_.size());
  assert(!is_literal_[s] && "subjects must be entities");
  out_[s].push_back({p, o});
  in_[o].push_back({p, s});
}

void KnowledgeBase::AddTriple(std::string_view s, std::string_view p,
                              std::string_view o, bool object_is_literal) {
  TermId sid = AddEntity(s);
  PredId pid = AddPredicate(p);
  TermId oid = AddNode(o, object_is_literal);
  AddTriple(sid, pid, oid);
}

void KnowledgeBase::Freeze() {
  if (frozen_) return;
  auto cmp = [](const PredicateObject& a, const PredicateObject& b) {
    return a.p != b.p ? a.p < b.p : a.o < b.o;
  };
  num_triples_ = 0;
  for (auto& adj : out_) {
    std::sort(adj.begin(), adj.end(), cmp);
    adj.erase(std::unique(adj.begin(), adj.end()), adj.end());
    adj.shrink_to_fit();
    num_triples_ += adj.size();
  }
  for (auto& adj : in_) {
    std::sort(adj.begin(), adj.end(), cmp);
    adj.erase(std::unique(adj.begin(), adj.end()), adj.end());
    adj.shrink_to_fit();
  }
  if (name_predicate_ != kInvalidPred) {
    for (TermId s = 0; s < out_.size(); ++s) {
      for (const auto& [p, o] : ObjectsRange(s, name_predicate_)) {
        (void)p;
        name_index_[o].push_back(s);
      }
    }
  }
  frozen_ = true;
}

std::span<const PredicateObject> KnowledgeBase::Out(TermId s) const {
  assert(frozen_);
  if (s >= out_.size()) return {};
  return out_[s];
}

std::span<const PredicateObject> KnowledgeBase::In(TermId o) const {
  assert(frozen_);
  if (o >= in_.size()) return {};
  return in_[o];
}

std::span<const PredicateObject> KnowledgeBase::ObjectsRange(TermId s,
                                                             PredId p) const {
  // Usable pre-freeze only from Freeze() itself (adjacency already sorted).
  if (s >= out_.size()) return {};
  const auto& adj = out_[s];
  auto lo = std::lower_bound(
      adj.begin(), adj.end(), p,
      [](const PredicateObject& e, PredId pred) { return e.p < pred; });
  if (lo == adj.end() || lo->p != p) return {};
  auto hi = lo;
  while (hi != adj.end() && hi->p == p) ++hi;
  return {&*lo, static_cast<size_t>(hi - lo)};
}

std::vector<TermId> KnowledgeBase::Objects(TermId s, PredId p) const {
  std::vector<TermId> out;
  for (const auto& e : ObjectsRange(s, p)) out.push_back(e.o);
  return out;
}

bool KnowledgeBase::HasTriple(TermId s, PredId p, TermId o) const {
  for (const auto& e : ObjectsRange(s, p)) {
    if (e.o == o) return true;
  }
  return false;
}

std::vector<PredId> KnowledgeBase::ConnectingPredicates(TermId s,
                                                        TermId o) const {
  std::vector<PredId> preds;
  for (const auto& e : Out(s)) {
    if (e.o == o) preds.push_back(e.p);
  }
  return preds;
}

std::span<const TermId> KnowledgeBase::EntitiesByName(
    std::string_view name) const {
  assert(frozen_);
  auto id = nodes_.Lookup(name);
  if (!id) return {};
  auto it = name_index_.find(*id);
  if (it == name_index_.end()) return {};
  return it->second;
}

const std::string& KnowledgeBase::EntityName(TermId e) const {
  if (name_predicate_ != kInvalidPred) {
    auto range = ObjectsRange(e, name_predicate_);
    if (!range.empty()) return nodes_.GetString(range.front().o);
  }
  return nodes_.GetString(e);
}

std::vector<TermId> KnowledgeBase::AllEntities() const {
  std::vector<TermId> out;
  out.reserve(num_entities_);
  for (TermId id = 0; id < nodes_.size(); ++id) {
    if (!is_literal_[id]) out.push_back(id);
  }
  return out;
}

Status KnowledgeBase::Save(const std::string& path) const {
  if (!frozen_) return Status::FailedPrecondition("Save requires Freeze()");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open for write: " + path);
  BinaryWriter w(f);
  w.WriteU64(kMagic);
  w.WriteU64(nodes_.size());
  for (TermId id = 0; id < nodes_.size(); ++id) {
    w.WriteString(nodes_.GetString(id));
    w.WriteU32(is_literal_[id] ? 1 : 0);
  }
  w.WriteU64(predicates_.size());
  for (PredId id = 0; id < predicates_.size(); ++id) {
    w.WriteString(predicates_.GetString(id));
  }
  w.WriteU32(name_predicate_);
  uint64_t triple_count = 0;
  for (const auto& adj : out_) triple_count += adj.size();
  w.WriteU64(triple_count);
  for (TermId s = 0; s < out_.size(); ++s) {
    for (const auto& e : out_[s]) {
      w.WriteU32(s);
      w.WriteU32(e.p);
      w.WriteU32(e.o);
    }
  }
  bool ok = w.ok();
  if (std::fclose(f) != 0) ok = false;
  return ok ? Status::Ok() : Status::IoError("short write: " + path);
}

Result<KnowledgeBase> KnowledgeBase::Load(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open for read: " + path);
  BinaryReader r(f);
  KnowledgeBase kb;
  if (r.ReadU64() != kMagic) {
    std::fclose(f);
    return Status::Corruption("bad magic in " + path);
  }
  uint64_t num_nodes = r.ReadU64();
  for (uint64_t i = 0; i < num_nodes && r.ok(); ++i) {
    std::string term = r.ReadString();
    bool literal = r.ReadU32() != 0;
    kb.AddNode(term, literal);
  }
  uint64_t num_preds = r.ReadU64();
  for (uint64_t i = 0; i < num_preds && r.ok(); ++i) {
    kb.AddPredicate(r.ReadString());
  }
  uint32_t name_pred = r.ReadU32();
  uint64_t num_triples = r.ReadU64();
  for (uint64_t i = 0; i < num_triples && r.ok(); ++i) {
    TermId s = r.ReadU32();
    PredId p = r.ReadU32();
    TermId o = r.ReadU32();
    if (s >= kb.nodes_.size() || p >= kb.predicates_.size() ||
        o >= kb.nodes_.size()) {
      std::fclose(f);
      return Status::Corruption("triple id out of range in " + path);
    }
    kb.AddTriple(s, p, o);
  }
  bool ok = r.ok();
  std::fclose(f);
  if (!ok) return Status::Corruption("short read: " + path);
  if (name_pred != kInvalidPred && name_pred >= kb.predicates_.size()) {
    return Status::Corruption("name predicate out of range in " + path);
  }
  kb.name_predicate_ = name_pred;
  kb.Freeze();
  return kb;
}

}  // namespace kbqa::rdf
