#include "rdf/knowledge_base.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdio>
#include <cstring>
#include <tuple>
#include <utility>

#include "obs/obs.h"
#include "util/coding.h"
#include "util/thread_pool.h"

namespace kbqa::rdf {

namespace {

constexpr uint64_t kMagicV1 = 0x4b42514152444631ULL;  // "KBQARDF1"
constexpr uint64_t kMagicV2 = 0x4b42514152444632ULL;  // "KBQARDF2"
constexpr uint64_t kMagicV3 = 0x4b42514152444633ULL;  // "KBQARDF3"

// Sanity caps for snapshot headers: reject sizes no plausible snapshot
// reaches before attempting a huge allocation on a corrupt file.
constexpr uint64_t kMaxCount = 1ULL << 32;
constexpr uint64_t kMaxBlobBytes = 1ULL << 34;

// Fixed shard count for the Freeze() counting-sort passes. A constant —
// never derived from the thread count — so the shard split, and with it
// every intermediate and final array, is bit-identical for any pool size
// (the determinism contract of DESIGN.md §5).
constexpr size_t kFreezeShards = 16;

static_assert(std::is_trivially_copyable_v<PredicateObject> &&
                  sizeof(PredicateObject) == 8,
              "snapshot format writes PredicateObject arrays byte-for-byte");

/// Save failure injection (SetSaveFailureAfterBytesForTest): the byte
/// count after which every writer starts failing; negative = disabled.
std::atomic<int64_t> g_save_failure_after_bytes{-1};

// Minimal buffered binary writer/reader for Save/Load. Little-endian only
// (all supported platforms); sizes written as uint64.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::FILE* f) : f_(f) {}
  bool ok() const { return ok_; }

  void WriteU64(uint64_t v) { WriteBytes(&v, sizeof(v)); }
  void WriteU32(uint32_t v) { WriteBytes(&v, sizeof(v)); }
  void WriteBytes(const void* data, size_t n) {
    if (!ok_ || n == 0) return;
    const int64_t fail_after =
        g_save_failure_after_bytes.load(std::memory_order_relaxed);
    if (fail_after >= 0 &&
        written_ + static_cast<int64_t>(n) > fail_after) {
      ok_ = false;  // injected short write
      return;
    }
    written_ += static_cast<int64_t>(n);
    if (std::fwrite(data, 1, n, f_) != n) ok_ = false;
  }

 private:
  std::FILE* f_;
  int64_t written_ = 0;
  bool ok_ = true;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::FILE* f) : f_(f) {}
  bool ok() const { return ok_; }

  uint64_t ReadU64() {
    uint64_t v = 0;
    ReadBytes(&v, sizeof(v));
    return v;
  }
  uint32_t ReadU32() {
    uint32_t v = 0;
    ReadBytes(&v, sizeof(v));
    return v;
  }
  void ReadBytes(void* data, size_t n) {
    if (ok_ && n > 0 && std::fread(data, 1, n, f_) != n) ok_ = false;
  }

 private:
  std::FILE* f_;
  bool ok_ = true;
};

inline bool EdgeLess(const PredicateObject& a, const PredicateObject& b) {
  return a.p != b.p ? a.p < b.p : a.o < b.o;
}

/// One CSR direction under construction.
struct Csr {
  std::vector<uint64_t> offsets;       // num_nodes + 1
  std::vector<PredicateObject> edges;  // sorted + unique per node range
};

/// Builds one CSR direction from the staged triples with a stable two-pass
/// counting sort followed by per-node sort + dedup + compaction. Every pass
/// runs over the fixed kFreezeShards split, so the output is independent of
/// the pool's thread count.
Csr BuildCsr(ThreadPool& pool, const std::vector<Triple>& triples,
             size_t num_nodes, bool by_subject) {
  const size_t n = triples.size();
  auto key = [by_subject](const Triple& t) { return by_subject ? t.s : t.o; };

  // Pass A: per-shard, per-node edge counts.
  std::vector<std::vector<uint64_t>> counts(kFreezeShards);
  pool.RunShards(kFreezeShards, [&](size_t shard) {
    ShardRange r = ShardOf(n, shard, kFreezeShards);
    counts[shard].assign(num_nodes, 0);
    for (size_t i = r.begin; i < r.end; ++i) ++counts[shard][key(triples[i])];
  });

  // Exclusive prefix sum over (node, shard) turns counts into raw write
  // cursors: shard s writes node v's edges at raw_offsets[v] + (edges of v
  // in shards < s), preserving staging order (stable scatter).
  std::vector<uint64_t> raw_offsets(num_nodes + 1, 0);
  uint64_t running = 0;
  for (size_t node = 0; node < num_nodes; ++node) {
    raw_offsets[node] = running;
    for (auto& shard_counts : counts) {
      uint64_t c = shard_counts[node];
      shard_counts[node] = running;
      running += c;
    }
  }
  raw_offsets[num_nodes] = running;

  // Pass B: scatter into the raw edge array; shards write disjoint slots.
  std::vector<PredicateObject> raw(n);
  pool.RunShards(kFreezeShards, [&](size_t shard) {
    ShardRange r = ShardOf(n, shard, kFreezeShards);
    std::vector<uint64_t>& cursor = counts[shard];
    for (size_t i = r.begin; i < r.end; ++i) {
      const Triple& t = triples[i];
      raw[cursor[key(t)]++] =
          by_subject ? PredicateObject{t.p, t.o} : PredicateObject{t.p, t.s};
    }
  });

  // Pass C: sort + dedup each node's range in place (disjoint ranges).
  std::vector<uint64_t> unique_counts(num_nodes, 0);
  pool.RunShards(kFreezeShards, [&](size_t shard) {
    ShardRange r = ShardOf(num_nodes, shard, kFreezeShards);
    for (size_t node = r.begin; node < r.end; ++node) {
      PredicateObject* b = raw.data() + raw_offsets[node];
      PredicateObject* e = raw.data() + raw_offsets[node + 1];
      std::sort(b, e, EdgeLess);
      unique_counts[node] = static_cast<uint64_t>(std::unique(b, e) - b);
    }
  });

  // Final offsets + compaction of the unique prefixes.
  Csr csr;
  csr.offsets.assign(num_nodes + 1, 0);
  uint64_t total = 0;
  for (size_t node = 0; node < num_nodes; ++node) {
    csr.offsets[node] = total;
    total += unique_counts[node];
  }
  csr.offsets[num_nodes] = total;
  csr.edges.resize(total);
  pool.RunShards(kFreezeShards, [&](size_t shard) {
    ShardRange r = ShardOf(num_nodes, shard, kFreezeShards);
    for (size_t node = r.begin; node < r.end; ++node) {
      std::copy_n(raw.data() + raw_offsets[node], unique_counts[node],
                  csr.edges.data() + csr.offsets[node]);
    }
  });
  return csr;
}

}  // namespace

KnowledgeBase::KnowledgeBase() = default;

TermId KnowledgeBase::AddNode(std::string_view term, bool literal) {
  assert(!frozen_);
  size_t before = nodes_.size();
  TermId id = nodes_.Intern(term);
  if (nodes_.size() > before) {
    is_literal_.push_back(literal);
    if (!literal) ++num_entities_;
  } else {
    // Re-interning with a different kind is a modeling error.
    assert(is_literal_[id] == literal && "node kind mismatch on re-intern");
  }
  return id;
}

TermId KnowledgeBase::AddEntity(std::string_view iri) {
  return AddNode(iri, /*literal=*/false);
}

TermId KnowledgeBase::AddLiteral(std::string_view value) {
  return AddNode(value, /*literal=*/true);
}

PredId KnowledgeBase::AddPredicate(std::string_view pred) {
  assert(!frozen_);
  return predicates_.Intern(pred);
}

void KnowledgeBase::AddTriple(TermId s, PredId p, TermId o) {
  assert(!frozen_);
  assert(s < nodes_.size() && o < nodes_.size() && p < predicates_.size());
  assert(!is_literal_[s] && "subjects must be entities");
  staging_.push_back({s, p, o});
}

void KnowledgeBase::AddTriple(std::string_view s, std::string_view p,
                              std::string_view o, bool object_is_literal) {
  TermId sid = AddEntity(s);
  PredId pid = AddPredicate(p);
  TermId oid = AddNode(o, object_is_literal);
  AddTriple(sid, pid, oid);
}

void KnowledgeBase::Freeze(int num_threads) {
  if (frozen_) return;
  KBQA_TRACE_SPAN("rdf.freeze");
  KBQA_HISTOGRAM_RECORD("rdf.freeze.staged_triples", staging_.size());
  ThreadPool pool(num_threads);
  Csr out = BuildCsr(pool, staging_, nodes_.size(), /*by_subject=*/true);
  Csr in = BuildCsr(pool, staging_, nodes_.size(), /*by_subject=*/false);
  out_offsets_ = std::move(out.offsets);
  out_edges_ = std::move(out.edges);
  in_offsets_ = std::move(in.offsets);
  in_edges_ = std::move(in.edges);
  staging_.clear();
  staging_.shrink_to_fit();
  num_triples_ = out_edges_.size();
  frozen_ = true;
  BuildNameIndex();
}

void KnowledgeBase::BuildNameIndex() {
  if (name_predicate_ == kInvalidPred) return;
  KBQA_TRACE_SPAN("rdf.build_name_index");
  for (TermId s = 0; s < nodes_.size(); ++s) {
    for (const auto& [p, o] : ObjectsRange(s, name_predicate_)) {
      (void)p;
      name_index_[o].push_back(s);
    }
  }
}

std::span<const PredicateObject> KnowledgeBase::Out(TermId s) const {
  assert(frozen_);
  if (s >= nodes_.size()) return {};
  return {out_edges_.data() + out_offsets_[s],
          static_cast<size_t>(out_offsets_[s + 1] - out_offsets_[s])};
}

std::span<const PredicateObject> KnowledgeBase::In(TermId o) const {
  assert(frozen_);
  if (o >= nodes_.size()) return {};
  return {in_edges_.data() + in_offsets_[o],
          static_cast<size_t>(in_offsets_[o + 1] - in_offsets_[o])};
}

namespace {

/// Predicate sub-range of one sorted CSR node range.
std::span<const PredicateObject> PredRange(
    std::span<const PredicateObject> adj, PredId p) {
  const auto* lo = std::lower_bound(
      adj.data(), adj.data() + adj.size(), p,
      [](const PredicateObject& e, PredId pred) { return e.p < pred; });
  const auto* end = adj.data() + adj.size();
  if (lo == end || lo->p != p) return {};
  const auto* hi = lo;
  while (hi != end && hi->p == p) ++hi;
  return {lo, static_cast<size_t>(hi - lo)};
}

}  // namespace

std::span<const PredicateObject> KnowledgeBase::ObjectsRange(TermId s,
                                                             PredId p) const {
  if (!frozen_ || s >= nodes_.size()) return {};
  return PredRange(Out(s), p);
}

std::span<const PredicateObject> KnowledgeBase::SubjectsRange(TermId o,
                                                              PredId p) const {
  if (!frozen_ || o >= nodes_.size()) return {};
  return PredRange(In(o), p);
}

std::vector<TermId> KnowledgeBase::Objects(TermId s, PredId p) const {
  std::vector<TermId> out;
  for (const auto& e : ObjectsRange(s, p)) out.push_back(e.o);
  return out;
}

bool KnowledgeBase::HasTriple(TermId s, PredId p, TermId o) const {
  std::span<const PredicateObject> adj = Out(s);
  return std::binary_search(adj.begin(), adj.end(), PredicateObject{p, o},
                            EdgeLess);
}

std::vector<PredId> KnowledgeBase::ConnectingPredicates(TermId s,
                                                        TermId o) const {
  std::vector<PredId> preds;
  for (const auto& e : Out(s)) {
    if (e.o == o) preds.push_back(e.p);
  }
  return preds;
}

std::span<const TermId> KnowledgeBase::EntitiesByName(
    std::string_view name) const {
  assert(frozen_);
  auto id = nodes_.Lookup(name);
  if (!id) return {};
  auto it = name_index_.find(*id);
  if (it == name_index_.end()) return {};
  return it->second;
}

const std::string& KnowledgeBase::EntityName(TermId e) const {
  if (name_predicate_ != kInvalidPred) {
    auto range = ObjectsRange(e, name_predicate_);
    if (!range.empty()) return nodes_.GetString(range.front().o);
  }
  return nodes_.GetString(e);
}

std::vector<TermId> KnowledgeBase::AllEntities() const {
  std::vector<TermId> out;
  out.reserve(num_entities_);
  for (TermId id = 0; id < nodes_.size(); ++id) {
    if (!is_literal_[id]) out.push_back(id);
  }
  return out;
}

namespace {

/// Writes a dictionary as one offset array + one contiguous string blob.
void WriteDictionary(BinaryWriter& w, const Dictionary& dict) {
  const size_t n = dict.size();
  std::vector<uint64_t> offsets(n + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    offsets[i + 1] = offsets[i] + dict.GetString(static_cast<TermId>(i)).size();
  }
  std::string blob;
  blob.reserve(offsets[n]);
  for (size_t i = 0; i < n; ++i) blob += dict.GetString(static_cast<TermId>(i));
  w.WriteU64(n);
  w.WriteBytes(offsets.data(), offsets.size() * sizeof(uint64_t));
  w.WriteBytes(blob.data(), blob.size());
}

/// Reads a dictionary written by WriteDictionary. Returns false on any
/// structural problem (reader I/O errors are checked by the caller).
/// `budget` is the number of bytes left in the file: every buffer sized
/// from an in-file count must fit in it, so a corrupt count fails here
/// with Corruption instead of attempting a multi-gigabyte allocation.
bool ReadDictionary(BinaryReader& r, uint64_t budget, Dictionary* dict) {
  uint64_t n = r.ReadU64();
  if (!r.ok() || n > kMaxCount) return false;
  if (budget < sizeof(uint64_t) ||
      n + 1 > (budget - sizeof(uint64_t)) / sizeof(uint64_t)) {
    return false;
  }
  std::vector<uint64_t> offsets(n + 1, 0);
  r.ReadBytes(offsets.data(), offsets.size() * sizeof(uint64_t));
  if (!r.ok() || offsets[0] != 0 || offsets[n] > kMaxBlobBytes ||
      offsets[n] > budget) {
    return false;
  }
  for (size_t i = 0; i < n; ++i) {
    if (offsets[i] > offsets[i + 1]) return false;
  }
  std::string blob(offsets[n], '\0');
  r.ReadBytes(blob.data(), blob.size());
  if (!r.ok()) return false;
  dict->Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::string_view term(blob.data() + offsets[i], offsets[i + 1] - offsets[i]);
    // A repeated string would intern to an earlier id and desynchronize the
    // dense id space — corrupt by definition.
    if (dict->Intern(term) != static_cast<TermId>(i)) return false;
  }
  return true;
}

/// Validates one loaded CSR direction: monotone offsets covering the edge
/// array, ids in range, per-node ranges strictly sorted by (p, o), and —
/// since only entities may anchor edges in this direction — empty ranges
/// for literal nodes (`anchor_must_be_entity` selects out-CSR subjects /
/// in-CSR checks the edge's far end instead).
bool ValidCsr(const std::vector<uint64_t>& offsets,
              const std::vector<PredicateObject>& edges,
              const std::vector<bool>& is_literal, size_t num_preds,
              bool anchor_is_subject) {
  const size_t num_nodes = is_literal.size();
  if (offsets.size() != num_nodes + 1 || offsets[0] != 0 ||
      offsets[num_nodes] != edges.size()) {
    return false;
  }
  for (size_t node = 0; node < num_nodes; ++node) {
    if (offsets[node] > offsets[node + 1]) return false;
    if (anchor_is_subject && is_literal[node] &&
        offsets[node] != offsets[node + 1]) {
      return false;  // literal subject
    }
    for (uint64_t i = offsets[node]; i < offsets[node + 1]; ++i) {
      const PredicateObject& e = edges[i];
      if (e.p >= num_preds || e.o >= num_nodes) return false;
      // Out-CSR stores objects (any node kind); in-CSR stores subjects,
      // which must be entities.
      if (!anchor_is_subject && is_literal[e.o]) return false;
      if (i > offsets[node] && !EdgeLess(edges[i - 1], e)) return false;
    }
  }
  return true;
}

// ---- Snapshot v3: compressed sections (util/coding.h codecs) ----
//
// Layout: u64 magic, then four framed sections, each
// [u64 byte_len][encoded bytes][u64 FNV-1a checksum]:
//   1. node dictionary   — varint count + front-coded strings + bit-packed
//                          is_literal flags (1 bit per node)
//   2. pred dictionary   — varint count + front-coded strings + varint
//                          name-predicate id
//   3. out CSR           — delta-varint offsets + per-node edge runs
//   4. in CSR            — same encoding
// Per-node edge runs exploit the (p, o)-sorted order: the first edge is
// (varint p, varint o); each following edge stores varint Δp, then — when
// Δp is 0 — varint Δo (objects strictly increase within a predicate),
// otherwise the absolute varint o.

void WriteSection(BinaryWriter& w, const std::string& enc) {
  w.WriteU64(enc.size());
  w.WriteBytes(enc.data(), enc.size());
  w.WriteU64(util::Fnv1a64(enc.data(), enc.size()));
}

/// Reads one framed section. `remaining_file_bytes` bounds the length
/// header before the buffer is sized from it, so a corrupt length yields a
/// clean failure instead of a giant allocation.
bool ReadSection(BinaryReader& r, uint64_t remaining_file_bytes,
                 std::string* enc) {
  const uint64_t len = r.ReadU64();
  // The first comparison bounds `len` by the (small) file size, so the
  // second cannot wrap around.
  if (!r.ok() || len > remaining_file_bytes ||
      len + 16 > remaining_file_bytes) {
    return false;
  }
  enc->resize(len);
  r.ReadBytes(enc->data(), len);
  if (!r.ok()) return false;
  const uint64_t checksum = r.ReadU64();
  return r.ok() && checksum == util::Fnv1a64(enc->data(), enc->size());
}

void AppendDictionary(std::string* enc, const Dictionary& dict) {
  util::PutVarint64(enc, dict.size());
  std::string_view prev;
  for (size_t i = 0; i < dict.size(); ++i) {
    const std::string& s = dict.GetString(static_cast<TermId>(i));
    util::AppendFrontCoded(enc, prev, s);
    prev = s;
  }
}

bool DecodeDictionary(const uint8_t** p, const uint8_t* limit,
                      Dictionary* dict) {
  uint64_t n = 0;
  const uint8_t* q = util::GetVarint64(*p, limit, &n);
  if (q == nullptr || n > kMaxCount) return false;
  dict->Reserve(n);
  std::string prev;
  std::string cur;
  for (uint64_t i = 0; i < n; ++i) {
    if (!util::DecodeFrontCoded(&q, limit, prev, &cur)) return false;
    if (dict->Intern(cur) != static_cast<TermId>(i)) return false;
    std::swap(prev, cur);
  }
  *p = q;
  return true;
}

std::string EncodeCsr(const std::vector<uint64_t>& offsets,
                      const std::vector<PredicateObject>& edges) {
  std::string enc;
  util::AppendDeltaRun64(&enc, offsets.data(), offsets.size());
  const size_t num_nodes = offsets.empty() ? 0 : offsets.size() - 1;
  for (size_t node = 0; node < num_nodes; ++node) {
    for (uint64_t i = offsets[node]; i < offsets[node + 1]; ++i) {
      const PredicateObject& e = edges[i];
      if (i == offsets[node]) {
        util::PutVarint32(&enc, e.p);
        util::PutVarint32(&enc, e.o);
        continue;
      }
      const PredicateObject& prev = edges[i - 1];
      util::PutVarint32(&enc, e.p - prev.p);
      util::PutVarint32(&enc, e.p == prev.p ? e.o - prev.o : e.o);
    }
  }
  return enc;
}

/// Decodes an EncodeCsr section into the exact in-memory CSR arrays the
/// v2 reader produces. Structural validation (sortedness, id ranges) is
/// left to ValidCsr, which runs on both load paths.
bool DecodeCsr(const uint8_t* p, const uint8_t* limit, size_t num_nodes,
               std::vector<uint64_t>* offsets,
               std::vector<PredicateObject>* edges) {
  offsets->clear();
  if (!util::DecodeDeltaRun64(&p, limit, offsets)) return false;
  if (offsets->size() != num_nodes + 1 || (*offsets)[0] != 0) return false;
  const uint64_t num_edges = offsets->back();
  // Every edge is at least two varint bytes; gate before reserving.
  if (num_edges > kMaxCount ||
      num_edges * 2 > static_cast<uint64_t>(limit - p)) {
    return false;
  }
  edges->clear();
  edges->reserve(num_edges);
  for (size_t node = 0; node < num_nodes; ++node) {
    const uint64_t count = (*offsets)[node + 1] - (*offsets)[node];
    PredicateObject prev{0, 0};
    for (uint64_t i = 0; i < count; ++i) {
      uint32_t first = 0, second = 0;
      p = util::GetVarint32(p, limit, &first);
      if (p == nullptr) return false;
      p = util::GetVarint32(p, limit, &second);
      if (p == nullptr) return false;
      PredicateObject e{0, 0};
      if (i == 0) {
        e = PredicateObject{first, second};
      } else if (first == 0) {
        e = PredicateObject{prev.p, prev.o + second};
      } else {
        e = PredicateObject{prev.p + first, second};
      }
      edges->push_back(e);
      prev = e;
    }
  }
  return p == limit;  // trailing garbage is corruption too
}

}  // namespace

void KnowledgeBase::SetSaveFailureAfterBytesForTest(int64_t bytes) {
  g_save_failure_after_bytes.store(bytes, std::memory_order_relaxed);
}

Status KnowledgeBase::Save(const std::string& path, int format_version) const {
  if (!frozen_) return Status::FailedPrecondition("Save requires Freeze()");
  if (format_version != 2 && format_version != 3) {
    return Status::InvalidArgument("unsupported snapshot format version");
  }
  // Crash safety (DESIGN.md §10): the snapshot is written to a temp file
  // in the same directory, flushed and fsynced, then atomically renamed
  // over `path`. A writer that dies mid-write — a background re-freeze
  // crashing, a full disk, the injected test failure — leaves any
  // existing good snapshot at `path` untouched.
  const std::string tmp_path =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  std::FILE* f = std::fopen(tmp_path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open for write: " + tmp_path);
  }
  BinaryWriter w(f);

  if (format_version == 3) {
    w.WriteU64(kMagicV3);

    std::string nodes_enc;
    AppendDictionary(&nodes_enc, nodes_);
    std::vector<uint32_t> kind_bits(nodes_.size());
    for (size_t i = 0; i < nodes_.size(); ++i) kind_bits[i] = is_literal_[i];
    util::AppendBitPacked(&nodes_enc, kind_bits.data(), kind_bits.size(),
                          /*bits=*/1);
    WriteSection(w, nodes_enc);

    std::string preds_enc;
    AppendDictionary(&preds_enc, predicates_);
    util::PutVarint64(&preds_enc, name_predicate_);
    WriteSection(w, preds_enc);

    WriteSection(w, EncodeCsr(out_offsets_, out_edges_));
    WriteSection(w, EncodeCsr(in_offsets_, in_edges_));
  } else {
    w.WriteU64(kMagicV2);

    WriteDictionary(w, nodes_);
    std::vector<uint8_t> literal_bytes(nodes_.size());
    for (size_t i = 0; i < nodes_.size(); ++i) {
      literal_bytes[i] = is_literal_[i];
    }
    w.WriteBytes(literal_bytes.data(), literal_bytes.size());

    WriteDictionary(w, predicates_);
    w.WriteU32(name_predicate_);

    // Both CSR directions, each as two contiguous block transfers.
    w.WriteU64(out_edges_.size());
    w.WriteBytes(out_offsets_.data(), out_offsets_.size() * sizeof(uint64_t));
    w.WriteBytes(out_edges_.data(),
                 out_edges_.size() * sizeof(PredicateObject));
    w.WriteU64(in_edges_.size());
    w.WriteBytes(in_offsets_.data(), in_offsets_.size() * sizeof(uint64_t));
    w.WriteBytes(in_edges_.data(), in_edges_.size() * sizeof(PredicateObject));
  }

  // Durability before visibility: data must be on disk before the rename
  // makes it the snapshot.
  bool ok = w.ok();
  if (ok && std::fflush(f) != 0) ok = false;
  if (ok && ::fsync(::fileno(f)) != 0) ok = false;
  if (std::fclose(f) != 0) ok = false;
  if (!ok) {
    std::remove(tmp_path.c_str());
    return Status::IoError("short write: " + tmp_path);
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::IoError("cannot publish snapshot: " + path);
  }
  // Persist the rename itself: fsync the containing directory (best
  // effort — some filesystems refuse directory fds).
  const size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? std::string(".") : path.substr(0, slash);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY);
  if (dir_fd >= 0) {
    (void)::fsync(dir_fd);
    (void)::close(dir_fd);
  }
  return Status::Ok();
}

Result<KnowledgeBase> KnowledgeBase::Load(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open for read: " + path);
  BinaryReader r(f);
  KnowledgeBase kb;
  auto fail = [&](const std::string& what) -> Result<KnowledgeBase> {
    std::fclose(f);
    return Status::Corruption(what + " in " + path);
  };

  uint64_t magic = r.ReadU64();
  if (magic == kMagicV1) {
    return fail(
        "unsupported snapshot format version 1 (pre-CSR); re-export the KB "
        "and Save() it with this build");
  }
  if (magic != kMagicV2 && magic != kMagicV3) return fail("bad magic");

  // Total file size gates every count / length header before a buffer is
  // sized from it, in both format versions: a corrupt header must fail
  // with Corruption, never trigger a garbage-sized allocation.
  if (std::fseek(f, 0, SEEK_END) != 0) return fail("unseekable snapshot");
  const long file_end = std::ftell(f);
  if (file_end < 8 || std::fseek(f, 8, SEEK_SET) != 0) {
    return fail("unseekable snapshot");
  }
  // Bytes left between the reader's current position and end of file.
  auto bytes_left = [&]() -> uint64_t {
    const long pos = std::ftell(f);
    if (pos < 0 || pos > file_end) return 0;
    return static_cast<uint64_t>(file_end - pos);
  };

  if (magic == kMagicV3) {
    uint64_t remaining = static_cast<uint64_t>(file_end) - 8;
    std::string enc;
    auto section_bytes = [&enc] {
      return std::pair<const uint8_t*, const uint8_t*>(
          reinterpret_cast<const uint8_t*>(enc.data()),
          reinterpret_cast<const uint8_t*>(enc.data()) + enc.size());
    };

    if (!ReadSection(r, remaining, &enc)) return fail("bad node section");
    remaining -= enc.size() + 16;
    auto [p, limit] = section_bytes();
    if (!DecodeDictionary(&p, limit, &kb.nodes_)) {
      return fail("bad node dictionary");
    }
    const size_t num_nodes = kb.nodes_.size();
    std::vector<uint32_t> kind_bits;
    if (!util::DecodeBitPacked(&p, limit, num_nodes, /*bits=*/1,
                               &kind_bits) ||
        p != limit) {
      return fail("bad node kind flags");
    }
    kb.is_literal_.resize(num_nodes);
    kb.num_entities_ = 0;
    for (size_t i = 0; i < num_nodes; ++i) {
      kb.is_literal_[i] = kind_bits[i] != 0;
      if (kind_bits[i] == 0) ++kb.num_entities_;
    }

    if (!ReadSection(r, remaining, &enc)) return fail("bad predicate section");
    remaining -= enc.size() + 16;
    std::tie(p, limit) = section_bytes();
    if (!DecodeDictionary(&p, limit, &kb.predicates_)) {
      return fail("bad predicate dictionary");
    }
    uint64_t name_pred = 0;
    p = util::GetVarint64(p, limit, &name_pred);
    if (p == nullptr || p != limit) return fail("bad name predicate");
    if (name_pred != kInvalidPred && name_pred >= kb.predicates_.size()) {
      return fail("name predicate out of range");
    }

    if (!ReadSection(r, remaining, &enc)) return fail("bad out CSR section");
    remaining -= enc.size() + 16;
    std::tie(p, limit) = section_bytes();
    if (!DecodeCsr(p, limit, num_nodes, &kb.out_offsets_, &kb.out_edges_)) {
      return fail("bad out CSR block");
    }
    if (!ValidCsr(kb.out_offsets_, kb.out_edges_, kb.is_literal_,
                  kb.predicates_.size(), /*anchor_is_subject=*/true)) {
      return fail("invalid out CSR");
    }

    if (!ReadSection(r, remaining, &enc)) return fail("bad in CSR section");
    std::tie(p, limit) = section_bytes();
    if (!DecodeCsr(p, limit, num_nodes, &kb.in_offsets_, &kb.in_edges_)) {
      return fail("bad in CSR block");
    }
    if (!ValidCsr(kb.in_offsets_, kb.in_edges_, kb.is_literal_,
                  kb.predicates_.size(), /*anchor_is_subject=*/false)) {
      return fail("invalid in CSR");
    }
    if (kb.in_edges_.size() != kb.out_edges_.size()) {
      return fail("CSR direction size mismatch");
    }
    std::fclose(f);

    kb.name_predicate_ = static_cast<PredId>(name_pred);
    kb.num_triples_ = kb.out_edges_.size();
    kb.frozen_ = true;
    kb.BuildNameIndex();
    return kb;
  }

  if (!ReadDictionary(r, bytes_left(), &kb.nodes_)) {
    return fail("bad node dictionary");
  }
  const size_t num_nodes = kb.nodes_.size();
  std::vector<uint8_t> literal_bytes(num_nodes);
  r.ReadBytes(literal_bytes.data(), literal_bytes.size());
  if (!r.ok()) return fail("short read (node kinds)");
  kb.is_literal_.resize(num_nodes);
  kb.num_entities_ = 0;
  for (size_t i = 0; i < num_nodes; ++i) {
    if (literal_bytes[i] > 1) return fail("bad node kind flag");
    kb.is_literal_[i] = literal_bytes[i] != 0;
    if (literal_bytes[i] == 0) ++kb.num_entities_;
  }

  if (!ReadDictionary(r, bytes_left(), &kb.predicates_)) {
    return fail("bad predicate dictionary");
  }
  uint32_t name_pred = r.ReadU32();

  auto read_csr = [&](std::vector<uint64_t>* offsets,
                      std::vector<PredicateObject>* edges) {
    uint64_t num_edges = r.ReadU64();
    if (!r.ok() || num_edges > kMaxCount) return false;
    // Gate both buffers against the bytes actually left in the file
    // *before* sizing them: a corrupt or truncated file must fail here
    // with Corruption, not allocate and bulk-read a garbage-sized block.
    if (num_edges > bytes_left() / sizeof(PredicateObject)) return false;
    offsets->assign(num_nodes + 1, 0);
    r.ReadBytes(offsets->data(), offsets->size() * sizeof(uint64_t));
    if (!r.ok()) return false;
    if ((*offsets)[0] != 0 || (*offsets)[num_nodes] != num_edges) {
      return false;
    }
    for (size_t node = 0; node < num_nodes; ++node) {
      if ((*offsets)[node] > (*offsets)[node + 1]) return false;
    }
    edges->resize(num_edges);
    r.ReadBytes(edges->data(), num_edges * sizeof(PredicateObject));
    return r.ok();
  };
  if (!read_csr(&kb.out_offsets_, &kb.out_edges_)) {
    return fail("bad out CSR block");
  }
  if (!ValidCsr(kb.out_offsets_, kb.out_edges_, kb.is_literal_,
                kb.predicates_.size(), /*anchor_is_subject=*/true)) {
    return fail("invalid out CSR");
  }
  if (!read_csr(&kb.in_offsets_, &kb.in_edges_)) {
    return fail("bad in CSR block");
  }
  if (!ValidCsr(kb.in_offsets_, kb.in_edges_, kb.is_literal_,
                kb.predicates_.size(), /*anchor_is_subject=*/false)) {
    return fail("invalid in CSR");
  }
  if (kb.in_edges_.size() != kb.out_edges_.size()) {
    return fail("CSR direction size mismatch");
  }
  std::fclose(f);

  if (name_pred != kInvalidPred && name_pred >= kb.predicates_.size()) {
    return Status::Corruption("name predicate out of range in " + path);
  }
  kb.name_predicate_ = name_pred;
  kb.num_triples_ = kb.out_edges_.size();
  kb.frozen_ = true;
  kb.BuildNameIndex();
  return kb;
}

}  // namespace kbqa::rdf
