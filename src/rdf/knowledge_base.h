#ifndef KBQA_RDF_KNOWLEDGE_BASE_H_
#define KBQA_RDF_KNOWLEDGE_BASE_H_

#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "rdf/dictionary.h"
#include "util/status.h"

namespace kbqa::rdf {

/// Predicate identifier. Predicates get their own dense id space (distinct
/// from node TermIds) because the online procedure enumerates predicates —
/// its complexity is O(|P|) — and benchmarks index arrays by PredId.
using PredId = uint32_t;
inline constexpr PredId kInvalidPred = std::numeric_limits<PredId>::max();

/// One outgoing edge: predicate + object.
struct PredicateObject {
  PredId p;
  TermId o;

  friend bool operator==(const PredicateObject&, const PredicateObject&) =
      default;
};

/// A fully dictionary-encoded triple.
struct Triple {
  TermId s;
  PredId p;
  TermId o;

  friend bool operator==(const Triple&, const Triple&) = default;
};

/// In-memory RDF triple store — the substrate standing in for Trinity.RDF.
///
/// Design: dictionary-encoded nodes and predicates; adjacency in CSR
/// (compressed sparse row) form — one contiguous `PredicateObject` edge
/// array plus a `TermId -> offset` index per direction, each per-node range
/// sorted by (predicate, object) giving O(log d) predicate lookup within a
/// node of degree d; an inverse CSR for object→subject navigation; and a
/// name index (literal string → entities carrying it under the designated
/// `name` predicate) used for entity linking. The flat layout removes the
/// per-node heap allocation and pointer chase of the former
/// vector-of-vectors adjacency: `Out()` is two loads from contiguous
/// arrays.
///
/// Usage: create, declare the name predicate, add triples, then `Freeze()`.
/// Added triples are staged in insertion order; `Freeze()` builds both CSR
/// directions with a counting-sort/prefix-sum pass that is parallelized
/// over a fixed shard count, so the frozen layout is bit-identical for any
/// `num_threads`. All read APIs require the store to be frozen; mutation
/// after Freeze is a precondition violation.
class KnowledgeBase {
 public:
  KnowledgeBase();

  KnowledgeBase(const KnowledgeBase&) = delete;
  KnowledgeBase& operator=(const KnowledgeBase&) = delete;
  KnowledgeBase(KnowledgeBase&&) = default;
  KnowledgeBase& operator=(KnowledgeBase&&) = default;

  // ---- Construction ----

  /// Interns an entity (resource) node.
  TermId AddEntity(std::string_view iri);
  /// Interns a literal (value) node.
  TermId AddLiteral(std::string_view value);
  /// Interns a predicate.
  PredId AddPredicate(std::string_view pred);

  /// Adds a triple by id. Duplicate triples are deduplicated at Freeze().
  void AddTriple(TermId s, PredId p, TermId o);
  /// Convenience: adds (subject entity, predicate, object) by strings;
  /// `object_is_literal` selects the object node kind.
  void AddTriple(std::string_view s, std::string_view p, std::string_view o,
                 bool object_is_literal);

  /// Declares the predicate whose objects are entity display names. Must be
  /// set before Freeze() for the name index to be built.
  void SetNamePredicate(PredId p) { name_predicate_ = p; }

  /// Builds both CSR adjacency directions (sorted, deduplicated) and the
  /// name index. `num_threads` sizes the worker pool for the counting-sort
  /// passes; the result is bit-identical for any value. Idempotent.
  void Freeze(int num_threads = 1);
  bool frozen() const { return frozen_; }

  // ---- Reads (require frozen()) ----

  /// Outgoing edges of `s`, sorted by (predicate, object).
  std::span<const PredicateObject> Out(TermId s) const;
  /// Incoming edges of `o` as (predicate, subject), sorted.
  std::span<const PredicateObject> In(TermId o) const;

  /// V(e, p) — all objects v with (e, p, v) in K.
  std::span<const PredicateObject> ObjectsRange(TermId s, PredId p) const;
  std::vector<TermId> Objects(TermId s, PredId p) const;

  /// Inverse of ObjectsRange: all subjects s with (s, p, o) in K, as
  /// (predicate, subject) entries of the in-CSR.
  std::span<const PredicateObject> SubjectsRange(TermId o, PredId p) const;

  /// True when (s, p, o) ∈ K.
  bool HasTriple(TermId s, PredId p, TermId o) const;

  /// All direct predicates p with (s, p, o) ∈ K.
  std::vector<PredId> ConnectingPredicates(TermId s, TermId o) const;

  /// Entities whose `name` literal equals `name` exactly (case-sensitive;
  /// callers normalize). Empty when unknown.
  std::span<const TermId> EntitiesByName(std::string_view name) const;

  /// Display name of entity `e`: first object under the name predicate, or
  /// the node's IRI string when it has no name.
  const std::string& EntityName(TermId e) const;

  // ---- Dictionaries & catalogs ----

  std::optional<TermId> LookupNode(std::string_view term) const {
    return nodes_.Lookup(term);
  }
  std::optional<PredId> LookupPredicate(std::string_view pred) const {
    return predicates_.Lookup(pred);
  }
  const std::string& NodeString(TermId id) const { return nodes_.GetString(id); }
  const std::string& PredicateString(PredId id) const {
    return predicates_.GetString(id);
  }

  bool IsLiteral(TermId id) const { return is_literal_[id]; }
  bool IsEntity(TermId id) const { return !is_literal_[id]; }
  PredId name_predicate() const { return name_predicate_; }

  size_t num_nodes() const { return nodes_.size(); }
  size_t num_predicates() const { return predicates_.size(); }
  size_t num_triples() const { return num_triples_; }
  size_t num_entities() const { return num_entities_; }

  /// Out-degree of `s` — the paper ranks entities by #(s, p, o) with e = s
  /// when sampling for valid(k).
  size_t OutDegree(TermId s) const { return Out(s).size(); }

  /// All entity ids (dense scan helper for benchmarks).
  std::vector<TermId> AllEntities() const;

  // ---- Serialization ----

  /// Writes the frozen store to a binary snapshot. The default format
  /// (version 3) is compressed: front-coded dictionaries, bit-packed node
  /// kinds, delta-varint CSR offsets and per-node delta-coded edge runs,
  /// each section framed with a byte length and FNV-1a checksum so
  /// truncation or bit flips surface as a clean Corruption at load.
  /// `format_version == 2` keeps the legacy raw-block layout (fixed-width
  /// offset arrays + bulk edge fwrites) for compatibility tests and size
  /// comparisons.
  /// Crash-safe: the bytes are written to a temp file in the same
  /// directory, fsynced, and atomically renamed over `path` — a Save that
  /// dies mid-write can never clobber an existing good snapshot.
  [[nodiscard]] Status Save(const std::string& path,
                            int format_version = 3) const;
  /// Test-only failure injection: every subsequent Save fails (as a short
  /// write) once it has emitted more than `bytes` bytes, simulating a
  /// crash / full disk mid-snapshot. Negative disables (the default).
  static void SetSaveFailureAfterBytesForTest(int64_t bytes);
  /// Reads a snapshot previously written by Save — either format version;
  /// both decode into the identical in-memory CSR form, so a v2 file loads
  /// bit-identically through this reader. Only the dictionary hash index
  /// and the name index are rebuilt. A version-1 snapshot, bad checksum,
  /// or any other format mismatch yields a clean Corruption status.
  [[nodiscard]] static Result<KnowledgeBase> Load(const std::string& path);

 private:
  TermId AddNode(std::string_view term, bool literal);
  /// Builds name_index_ from the frozen out-CSR.
  void BuildNameIndex();

  Dictionary nodes_;
  Dictionary predicates_;
  std::vector<bool> is_literal_;
  size_t num_entities_ = 0;
  size_t num_triples_ = 0;

  // Pre-freeze staging area, in AddTriple order. Cleared by Freeze().
  std::vector<Triple> staging_;

  // CSR adjacency (valid once frozen): node id -> [offsets_[id],
  // offsets_[id+1]) into the edge array. Sorted + deduplicated per node.
  std::vector<uint64_t> out_offsets_;
  std::vector<PredicateObject> out_edges_;
  std::vector<uint64_t> in_offsets_;
  std::vector<PredicateObject> in_edges_;

  PredId name_predicate_ = kInvalidPred;
  // Literal name TermId -> entities carrying that name.
  std::unordered_map<TermId, std::vector<TermId>> name_index_;

  bool frozen_ = false;
};

}  // namespace kbqa::rdf

#endif  // KBQA_RDF_KNOWLEDGE_BASE_H_
