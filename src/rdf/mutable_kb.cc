#include "rdf/mutable_kb.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/obs.h"

namespace kbqa::rdf {

namespace {

uint64_t ElapsedNs(std::chrono::steady_clock::time_point begin) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - begin)
          .count());
}

bool PredObjLess(const PredicateObject& a, const PredicateObject& b) {
  if (a.p != b.p) return a.p < b.p;
  return a.o < b.o;
}

/// Resolves `term` against base-then-overlay without interning.
std::optional<TermId> ResolveNode(const KnowledgeBase& base,
                                  const DeltaOverlay& overlay,
                                  const std::string& term) {
  if (auto id = base.LookupNode(term)) return id;
  auto it = overlay.node_index.find(term);
  if (it != overlay.node_index.end()) return it->second;
  return std::nullopt;
}

std::optional<PredId> ResolvePred(const KnowledgeBase& base,
                                  const DeltaOverlay& overlay,
                                  const std::string& pred) {
  if (auto id = base.LookupPredicate(pred)) return id;
  auto it = overlay.pred_index.find(pred);
  if (it != overlay.pred_index.end()) return it->second;
  return std::nullopt;
}

TermId InternNode(const KnowledgeBase& base, DeltaOverlay* overlay,
                  const std::string& term, bool is_literal) {
  if (auto id = ResolveNode(base, *overlay, term)) return *id;
  const TermId id =
      static_cast<TermId>(base.num_nodes() + overlay->new_nodes.size());
  overlay->new_nodes.push_back(DeltaOverlay::Node{term, is_literal});
  overlay->node_index.emplace(term, id);
  return id;
}

PredId InternPred(const KnowledgeBase& base, DeltaOverlay* overlay,
                  const std::string& pred) {
  if (auto id = ResolvePred(base, *overlay, pred)) return *id;
  const PredId id =
      static_cast<PredId>(base.num_predicates() + overlay->new_preds.size());
  overlay->new_preds.push_back(pred);
  overlay->pred_index.emplace(pred, id);
  return id;
}

/// True when every id of `t` is base-resident AND the base holds the
/// triple — the only triples tombstones may name.
bool BaseHasTriple(const KnowledgeBase& base, const Triple& t) {
  return t.s < base.num_nodes() && t.p < base.num_predicates() &&
         t.o < base.num_nodes() && base.HasTriple(t.s, t.p, t.o);
}

/// Applies one op to the mutable overlay. Later ops win: an add clears
/// its triple's tombstone, a delete removes its triple's overlay add.
/// Deletes of unknown strings are no-ops and never intern (so replaying
/// an op log interns exactly the same strings in the same order on every
/// replay — the id-stability invariant depends on this).
void ApplyOp(const KnowledgeBase& base, const MutationOp& op,
             DeltaOverlay* overlay) {
  if (op.is_delete) {
    const auto s = ResolveNode(base, *overlay, op.s);
    const auto p = ResolvePred(base, *overlay, op.p);
    const auto o = ResolveNode(base, *overlay, op.o);
    if (!s || !p || !o) return;
    const Triple t{*s, *p, *o};
    auto it = overlay->adds.find(t.s);
    if (it != overlay->adds.end()) {
      const PredicateObject po{t.p, t.o};
      auto range = std::equal_range(it->second.begin(), it->second.end(), po,
                                    PredObjLess);
      if (range.first != range.second) {
        it->second.erase(range.first);
        --overlay->num_adds;
        if (it->second.empty()) overlay->adds.erase(it);
      }
    }
    if (BaseHasTriple(base, t)) overlay->tombstones.insert(t);
    return;
  }
  // Add. Subjects are always entities; the object kind is the op's call.
  const TermId s = InternNode(base, overlay, op.s, /*is_literal=*/false);
  const PredId p = InternPred(base, overlay, op.p);
  const TermId o = InternNode(base, overlay, op.o, op.object_is_literal);
  const Triple t{s, p, o};
  overlay->tombstones.erase(t);
  if (BaseHasTriple(base, t)) return;  // base-resident again: tombstone gone
  std::vector<PredicateObject>& edges = overlay->adds[s];
  const PredicateObject po{p, o};
  auto pos = std::lower_bound(edges.begin(), edges.end(), po, PredObjLess);
  if (pos != edges.end() && pos->p == p && pos->o == o) return;  // duplicate
  edges.insert(pos, po);
  ++overlay->num_adds;
}

DeltaOverlay CompileOverlay(const KnowledgeBase& base,
                            std::span<const MutationOp> ops) {
  DeltaOverlay overlay;
  for (const MutationOp& op : ops) ApplyOp(base, op, &overlay);
  return overlay;
}

}  // namespace

// ---------- DeltaOverlay ----------

std::span<const PredicateObject> DeltaOverlay::AddsFor(TermId s) const {
  auto it = adds.find(s);
  if (it == adds.end()) return {};
  return {it->second.data(), it->second.size()};
}

std::span<const PredicateObject> DeltaOverlay::AddsRange(TermId s,
                                                         PredId p) const {
  auto edges = AddsFor(s);
  auto lo = std::lower_bound(edges.begin(), edges.end(),
                             PredicateObject{p, 0}, PredObjLess);
  auto hi = lo;
  while (hi != edges.end() && hi->p == p) ++hi;
  return {lo, hi};
}

// ---------- KbSnapshot ----------

bool KbSnapshot::IsLiteral(TermId id) const {
  if (id < base->num_nodes()) return base->IsLiteral(id);
  return overlay->new_nodes[id - base->num_nodes()].is_literal;
}

const std::string& KbSnapshot::NodeString(TermId id) const {
  if (id < base->num_nodes()) return base->NodeString(id);
  return overlay->new_nodes[id - base->num_nodes()].term;
}

std::string KbSnapshot::EntityName(TermId e) const {
  const PredId name = base->name_predicate();
  if (name != kInvalidPred) {
    const std::vector<TermId> names = Objects(e, name);
    if (!names.empty()) return NodeString(names.front());
  }
  return NodeString(e);
}

std::optional<TermId> KbSnapshot::LookupNode(std::string_view term) const {
  if (auto id = base->LookupNode(term)) return id;
  if (overlay->node_index.empty()) return std::nullopt;
  auto it = overlay->node_index.find(std::string(term));
  if (it != overlay->node_index.end()) return it->second;
  return std::nullopt;
}

std::optional<PredId> KbSnapshot::LookupPredicate(std::string_view pred) const {
  if (auto id = base->LookupPredicate(pred)) return id;
  if (overlay->pred_index.empty()) return std::nullopt;
  auto it = overlay->pred_index.find(std::string(pred));
  if (it != overlay->pred_index.end()) return it->second;
  return std::nullopt;
}

std::vector<TermId> KbSnapshot::Objects(TermId s, PredId p) const {
  std::vector<TermId> out;
  if (s < base->num_nodes() && p < base->num_predicates()) {
    for (const PredicateObject& po : base->ObjectsRange(s, p)) {
      if (!overlay->Tombstoned(Triple{s, p, po.o})) out.push_back(po.o);
    }
  }
  const auto added = overlay->AddsRange(s, p);
  if (!added.empty()) {
    // Both runs are sorted by object and disjoint (adds never duplicate
    // base triples), so a merge keeps the frozen-CSR ordering contract.
    const size_t base_count = out.size();
    for (const PredicateObject& po : added) out.push_back(po.o);
    std::inplace_merge(out.begin(),
                       out.begin() + static_cast<ptrdiff_t>(base_count),
                       out.end());
  }
  return out;
}

std::vector<TermId> KbSnapshot::ObjectsViaPath(TermId e,
                                               const PredPath& path) const {
  if (overlay->empty()) return rdf::ObjectsViaPath(*base, e, path);
  std::vector<TermId> frontier = {e};
  for (size_t depth = 0; depth < path.size(); ++depth) {
    std::vector<TermId> next;
    for (TermId node : frontier) {
      if (IsLiteral(node)) continue;
      const PredId p = path[depth];
      if (node < base->num_nodes() && p < base->num_predicates()) {
        for (const PredicateObject& po : base->ObjectsRange(node, p)) {
          if (!overlay->Tombstoned(Triple{node, p, po.o})) {
            next.push_back(po.o);
          }
        }
      }
      for (const PredicateObject& po : overlay->AddsRange(node, p)) {
        next.push_back(po.o);
      }
    }
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    frontier = std::move(next);
    if (frontier.empty()) break;
  }
  return frontier;
}

bool KbSnapshot::HasTriple(TermId s, PredId p, TermId o) const {
  const Triple t{s, p, o};
  if (s < base->num_nodes() && p < base->num_predicates() &&
      o < base->num_nodes() && base->HasTriple(s, p, o)) {
    return !overlay->Tombstoned(t);
  }
  const auto range = overlay->AddsRange(s, p);
  return std::binary_search(range.begin(), range.end(), PredicateObject{p, o},
                            PredObjLess);
}

// ---------- RebuildKb ----------

KnowledgeBase RebuildKb(const KnowledgeBase& base, const DeltaOverlay& overlay,
                        int num_threads) {
  KnowledgeBase next;
  // Id-stable prefix: re-intern every base node and predicate in id order
  // before anything from the overlay. Dictionary ids are dense and
  // assigned in intern order, so every base id keeps its value and every
  // overlay id lands exactly where the overlay assigned it.
  const size_t base_nodes = base.num_nodes();
  for (TermId id = 0; id < base_nodes; ++id) {
    if (base.IsLiteral(id)) {
      next.AddLiteral(base.NodeString(id));
    } else {
      next.AddEntity(base.NodeString(id));
    }
  }
  for (const DeltaOverlay::Node& node : overlay.new_nodes) {
    if (node.is_literal) {
      next.AddLiteral(node.term);
    } else {
      next.AddEntity(node.term);
    }
  }
  const size_t base_preds = base.num_predicates();
  for (PredId p = 0; p < base_preds; ++p) {
    next.AddPredicate(base.PredicateString(p));
  }
  for (const std::string& pred : overlay.new_preds) next.AddPredicate(pred);
  if (base.name_predicate() != kInvalidPred) {
    next.SetNamePredicate(base.name_predicate());
  }

  // Surviving base triples, then overlay adds. Staging order is
  // irrelevant to the frozen layout (Freeze sorts and dedups per node),
  // so iterating the unordered adds map is deterministic in effect.
  for (TermId s = 0; s < base_nodes; ++s) {
    for (const PredicateObject& po : base.Out(s)) {
      if (!overlay.Tombstoned(Triple{s, po.p, po.o})) {
        next.AddTriple(s, po.p, po.o);
      }
    }
  }
  for (const auto& [s, edges] : overlay.adds) {
    for (const PredicateObject& po : edges) next.AddTriple(s, po.p, po.o);
  }
  next.Freeze(num_threads);
  return next;
}

// ---------- MutableKb ----------

MutableKb::MutableKb(KnowledgeBase base, Options options)
    : options_(options) {
  auto initial = std::make_shared<KbSnapshot>();
  initial->base =
      std::make_shared<const KnowledgeBase>(std::move(base));
  initial->overlay = std::make_shared<const DeltaOverlay>();
  initial->epoch = 0;
  initial->version = 0;
  {
    MutexLock snapshot_lock(snapshot_mu_);
    snapshot_ = std::move(initial);
  }
  merge_thread_ = std::thread([this] { MergeLoop(); });
}

MutableKb::~MutableKb() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
    work_cv_.NotifyAll();
  }
  merge_thread_.join();
}

void MutableKb::Apply(std::span<const MutationOp> batch) {
  if (batch.empty()) return;
  size_t overlay_adds = 0;
  size_t overlay_tombstones = 0;
  uint64_t new_version = 0;
  {
    MutexLock lock(mu_);
    const std::shared_ptr<const KbSnapshot> current = Pin();
    for (const MutationOp& op : batch) {
      ApplyOp(*current->base, op, &builder_);
      ops_.push_back(op);
    }
    ++version_;
    new_version = version_;
    version_atomic_.store(version_, std::memory_order_release);
    auto next = std::make_shared<KbSnapshot>();
    next->base = current->base;
    next->overlay = std::make_shared<const DeltaOverlay>(builder_);
    next->epoch = epoch_;
    next->version = version_;
    overlay_adds = builder_.num_adds;
    overlay_tombstones = builder_.tombstones.size();
    {
      MutexLock snapshot_lock(snapshot_mu_);
      snapshot_ = std::move(next);
    }
    if (options_.auto_merge && !merge_in_progress_ &&
        ops_.size() >= options_.merge_trigger_ops) {
      merge_requested_ = true;
      work_cv_.NotifyOne();
    }
  }
  KBQA_COUNTER_ADD("kb.live.mutations", batch.size());
  KBQA_GAUGE_SET("kb.live.overlay_adds", overlay_adds);
  KBQA_GAUGE_SET("kb.live.overlay_tombstones", overlay_tombstones);
  KBQA_GAUGE_SET("kb.live.version", new_version);
}

void MutableKb::AddTriple(std::string_view s, std::string_view p,
                          std::string_view o, bool object_is_literal) {
  MutationOp op;
  op.s = std::string(s);
  op.p = std::string(p);
  op.o = std::string(o);
  op.object_is_literal = object_is_literal;
  Apply({&op, 1});
}

void MutableKb::DeleteTriple(std::string_view s, std::string_view p,
                             std::string_view o) {
  MutationOp op;
  op.is_delete = true;
  op.s = std::string(s);
  op.p = std::string(p);
  op.o = std::string(o);
  Apply({&op, 1});
}

void MutableKb::ForceMerge() {
  MutexLock lock(mu_);
  while (true) {
    if (ops_.empty() && !merge_in_progress_ && !merge_requested_) return;
    if (!merge_in_progress_ && !merge_requested_) {
      merge_requested_ = true;
      work_cv_.NotifyOne();
    }
    idle_cv_.Wait(mu_);
  }
}

void MutableKb::WaitForMergeIdle() {
  MutexLock lock(mu_);
  while (merge_in_progress_ || merge_requested_) idle_cv_.Wait(mu_);
}

void MutableKb::SetPublishHook(PublishHook hook) {
  MutexLock lock(mu_);
  publish_hook_ = std::move(hook);
}

size_t MutableKb::pending_ops() const {
  MutexLock lock(mu_);
  return ops_.size();
}

uint64_t MutableKb::merges_completed() const {
  MutexLock lock(mu_);
  return merges_completed_;
}

void MutableKb::MergeLoop() {
  while (true) {
    std::shared_ptr<const KnowledgeBase> base;
    std::vector<MutationOp> batch;
    {
      MutexLock lock(mu_);
      while (!merge_requested_ && !shutdown_) work_cv_.Wait(mu_);
      if (shutdown_) return;
      merge_requested_ = false;
      if (ops_.empty()) {
        idle_cv_.NotifyAll();
        continue;
      }
      merge_in_progress_ = true;
      batch = ops_;  // the prefix this merge will consume
      base = Pin()->base;
    }

    // Off-lock rebuild: readers keep answering from the old snapshot and
    // writers keep extending ops_ while the new base freezes.
    const auto merge_begin = std::chrono::steady_clock::now();
    auto next_base = std::make_shared<const KnowledgeBase>(
        RebuildKb(*base, CompileOverlay(*base, batch), options_.merge_threads));

    PublishHook hook;
    std::shared_ptr<const KbSnapshot> published;
    {
      MutexLock lock(mu_);
      // Publish: drop the consumed prefix, re-compile the residual ops
      // (arrived during the rebuild) against the new base, swap.
      ops_.erase(ops_.begin(),
                 ops_.begin() + static_cast<ptrdiff_t>(batch.size()));
      builder_ = CompileOverlay(*next_base, ops_);
      ++epoch_;
      ++version_;
      epoch_atomic_.store(epoch_, std::memory_order_release);
      version_atomic_.store(version_, std::memory_order_release);
      auto next = std::make_shared<KbSnapshot>();
      next->base = next_base;
      next->overlay = std::make_shared<const DeltaOverlay>(builder_);
      next->epoch = epoch_;
      next->version = version_;
      published = std::move(next);
      {
        MutexLock snapshot_lock(snapshot_mu_);
        snapshot_ = published;
      }
      hook = publish_hook_;
    }
    KBQA_COUNTER_ADD("kb.live.merges", 1);
    KBQA_HISTOGRAM_RECORD("kb.live.merge_ns", ElapsedNs(merge_begin));
    KBQA_GAUGE_SET("kb.live.epoch", published->epoch);
    // The hook runs before the merge is reported complete, so ForceMerge
    // returns only after epoch-derived state (live engines) has been
    // rebuilt. Hooks must not call ForceMerge/WaitForMergeIdle.
    if (hook) hook(published);
    {
      MutexLock lock(mu_);
      merge_in_progress_ = false;
      ++merges_completed_;
      if (options_.auto_merge && ops_.size() >= options_.merge_trigger_ops) {
        merge_requested_ = true;  // backlog grew past the trigger again
      }
      idle_cv_.NotifyAll();
    }
  }
}

}  // namespace kbqa::rdf
