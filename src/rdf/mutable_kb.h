#ifndef KBQA_RDF_MUTABLE_KB_H_
#define KBQA_RDF_MUTABLE_KB_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "rdf/expanded_predicate.h"
#include "rdf/knowledge_base.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace kbqa::rdf {

/// One live mutation, by surface strings (the mutation API mirrors the
/// string-form AddTriple so callers never manage ids — id assignment is
/// the overlay's job and must stay deterministic for the id-stability
/// invariant below).
struct MutationOp {
  bool is_delete = false;
  std::string s;
  std::string p;
  std::string o;
  /// Node kind of `o` when the add has to intern it. Ignored for deletes
  /// (a delete never interns anything — unknown strings make it a no-op).
  bool object_is_literal = false;
};

struct TripleHash {
  size_t operator()(const Triple& t) const {
    uint64_t h = static_cast<uint64_t>(t.s);
    h = h * 0x9e3779b97f4a7c15ULL + t.p;
    h = h * 0x9e3779b97f4a7c15ULL + t.o;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return static_cast<size_t>(h);
  }
};

/// The uncompressed delta between a frozen base KB and the live world:
/// new nodes/predicates appended after the base id space, added edges
/// grouped by subject (each group sorted by (predicate, object) — the
/// same order as a frozen CSR node range), and a tombstone set of deleted
/// base triples. Immutable once published inside a KbSnapshot; MutableKb
/// keeps a private mutable copy it re-publishes on every Apply.
///
/// Merge rule (DESIGN.md §10): visible(K) = (base \ tombstones) ∪ adds,
/// with `adds` disjoint from base triples and tombstones only ever naming
/// base-resident triples, so the union is disjoint and the subtraction
/// exact. Later ops win: an add clears any tombstone on its triple, a
/// delete removes any overlay add of it.
struct DeltaOverlay {
  struct Node {
    std::string term;
    bool is_literal = false;
  };

  /// Nodes interned after the base: new_nodes[i] has id base_nodes + i.
  std::vector<Node> new_nodes;
  std::unordered_map<std::string, TermId> node_index;
  /// Predicates interned after the base: new_preds[i] = base_preds + i.
  std::vector<std::string> new_preds;
  std::unordered_map<std::string, PredId> pred_index;
  /// Added edges by subject, each vector sorted by (p, o), deduplicated,
  /// and disjoint from the base triples.
  std::unordered_map<TermId, std::vector<PredicateObject>> adds;
  /// Deleted base triples (exact set; only triples the base contains).
  std::unordered_set<Triple, TripleHash> tombstones;
  /// Total edges across `adds` (gauge fodder; adds maps are small).
  size_t num_adds = 0;

  bool empty() const { return num_adds == 0 && tombstones.empty(); }

  /// Added out-edges of `s`, sorted by (p, o). Empty when none.
  std::span<const PredicateObject> AddsFor(TermId s) const;
  /// The (p, o) run for one predicate within AddsFor(s).
  std::span<const PredicateObject> AddsRange(TermId s, PredId p) const;
  bool Tombstoned(const Triple& t) const {
    return !tombstones.empty() && tombstones.count(t) != 0;
  }
};

/// An immutable, pinnable view of the live KB: a frozen base plus the
/// delta overlay that was current when the snapshot was published. Readers
/// pin one snapshot (shared_ptr) for the duration of one Answer and see a
/// consistent world no matter how many Applies or merges land meanwhile.
///
/// `version` increments on every Apply and every merge publish — it is
/// the cache-key tag (two versions may answer differently). `epoch`
/// increments only when a merge publishes a new base — it is the signal
/// to rebuild base-derived read structures (NER gazetteer, per-epoch
/// engines).
///
/// The read API mirrors the KnowledgeBase calls the online pipeline uses,
/// with identical result ordering: merged object lists are sorted unique,
/// so an empty overlay makes every method bit-identical to the base call.
class KbSnapshot {
 public:
  std::shared_ptr<const KnowledgeBase> base;
  std::shared_ptr<const DeltaOverlay> overlay;
  uint64_t epoch = 0;
  uint64_t version = 0;

  size_t num_nodes() const {
    return base->num_nodes() + overlay->new_nodes.size();
  }
  size_t num_predicates() const {
    return base->num_predicates() + overlay->new_preds.size();
  }

  bool IsLiteral(TermId id) const;
  const std::string& NodeString(TermId id) const;
  /// First merged object under the base's name predicate, else the node's
  /// own string — the same rule as KnowledgeBase::EntityName.
  std::string EntityName(TermId e) const;

  std::optional<TermId> LookupNode(std::string_view term) const;
  std::optional<PredId> LookupPredicate(std::string_view pred) const;

  /// Merged V(e, p): (base objects \ tombstones) ∪ overlay adds, sorted.
  std::vector<TermId> Objects(TermId s, PredId p) const;
  /// Merged BFS walk — the live equivalent of rdf::ObjectsViaPath, with
  /// the identical sort/unique frontier discipline.
  std::vector<TermId> ObjectsViaPath(TermId e, const PredPath& path) const;
  bool HasTriple(TermId s, PredId p, TermId o) const;
};

/// Rebuilds a frozen KnowledgeBase equal to `base` with `overlay` merged
/// in. Id-stability invariant: every base node/predicate is re-interned
/// in id order before any overlay entry, so all base TermIds/PredIds — and
/// therefore trained template stores, path dictionaries, taxonomy links,
/// and NER gazetteers — remain valid in the rebuilt KB, and overlay ids
/// keep the exact values the overlay assigned. Freeze() sorts per node,
/// so the output is bit-identical to a from-scratch freeze of the mutated
/// world for any `num_threads`.
KnowledgeBase RebuildKb(const KnowledgeBase& base, const DeltaOverlay& overlay,
                        int num_threads);

/// Live-mutation shell over a frozen KnowledgeBase (DESIGN.md §10).
///
/// Writers call Apply/AddTriple/DeleteTriple; each Apply publishes a new
/// KbSnapshot (same base, copy-on-write overlay, version+1) via an
/// RCU-style atomic shared_ptr swap, so readers never block on writers
/// and never observe a half-applied batch. When the pending op count
/// reaches `merge_trigger_ops` (and auto_merge is on), a background
/// thread rebuilds a fresh CSR base off-lock via RebuildKb, then
/// publishes it — epoch+1 — with the residual overlay compiled from ops
/// that arrived during the rebuild. Readers pin via Pin() and keep their
/// snapshot alive for one request; old snapshots die when the last reader
/// drops them.
///
/// Thread safety: all methods are safe to call concurrently. `Pin` is
/// wait-free (one atomic shared_ptr load); writers serialize on one
/// mutex; the merge rebuild itself runs outside the lock.
class MutableKb {
 public:
  struct Options {
    /// Pending-op count that triggers a background merge (README knob).
    size_t merge_trigger_ops = 256;
    /// Thread count handed to Freeze() during the background rebuild.
    int merge_threads = 1;
    /// When false, merges happen only via ForceMerge (tests, benches that
    /// want to control the merge point exactly).
    bool auto_merge = true;
  };

  using PublishHook =
      std::function<void(const std::shared_ptr<const KbSnapshot>&)>;

  /// Takes ownership of the frozen base (epoch 0, version 0, empty
  /// overlay).
  explicit MutableKb(KnowledgeBase base, Options options);
  explicit MutableKb(KnowledgeBase base)
      : MutableKb(std::move(base), Options()) {}
  ~MutableKb();

  MutableKb(const MutableKb&) = delete;
  MutableKb& operator=(const MutableKb&) = delete;

  /// The current snapshot: one uncontended lock + shared_ptr copy. Hold
  /// the returned pointer for the duration of one logical read (one
  /// Answer); publishers never block on readers.
  std::shared_ptr<const KbSnapshot> Pin() const {
    MutexLock lock(snapshot_mu_);
    return snapshot_;
  }

  /// Applies a batch of ops atomically: readers see either none or all of
  /// the batch. Publishes a new snapshot (version+1).
  void Apply(std::span<const MutationOp> batch);
  void AddTriple(std::string_view s, std::string_view p, std::string_view o,
                 bool object_is_literal);
  void DeleteTriple(std::string_view s, std::string_view p,
                    std::string_view o);

  /// Blocks until every op applied before the call has been merged into a
  /// frozen base (runs a merge if one isn't already pending).
  void ForceMerge();
  /// Blocks until no merge is running or requested (pending ops may
  /// remain if they are below the trigger).
  void WaitForMergeIdle();

  /// Called (on the merge thread) after every epoch publish, with the
  /// just-published snapshot. Used by the live engine to rebuild
  /// base-derived state. Pass nullptr to clear.
  void SetPublishHook(PublishHook hook);

  uint64_t epoch() const { return epoch_atomic_.load(std::memory_order_acquire); }
  uint64_t version() const {
    return version_atomic_.load(std::memory_order_acquire);
  }
  /// Ops applied since the last epoch publish (0 right after a merge).
  size_t pending_ops() const;
  uint64_t merges_completed() const;

 private:
  void MergeLoop();

  Options options_;

  mutable Mutex mu_;
  /// Source of truth for un-merged state: the ops since the last epoch
  /// publish, in order, plus the overlay they compile to against the
  /// current base.
  std::vector<MutationOp> ops_ GUARDED_BY(mu_);
  DeltaOverlay builder_ GUARDED_BY(mu_);
  uint64_t epoch_ GUARDED_BY(mu_) = 0;
  uint64_t version_ GUARDED_BY(mu_) = 0;
  uint64_t merges_completed_ GUARDED_BY(mu_) = 0;
  bool merge_requested_ GUARDED_BY(mu_) = false;
  bool merge_in_progress_ GUARDED_BY(mu_) = false;
  bool shutdown_ GUARDED_BY(mu_) = false;
  PublishHook publish_hook_ GUARDED_BY(mu_);
  CondVar work_cv_;
  CondVar idle_cv_;

  /// RCU publication point: a dedicated leaf lock around the shared_ptr
  /// copy, acquired after mu_ and never held across any work. (Not
  /// std::atomic<shared_ptr>: libstdc++ implements that as a per-object
  /// spinlock whose plain-pointer internals TSan cannot model — the
  /// annotated mutex costs the same and keeps tsan.supp empty.)
  mutable Mutex snapshot_mu_;
  std::shared_ptr<const KbSnapshot> snapshot_ GUARDED_BY(snapshot_mu_);
  std::atomic<uint64_t> epoch_atomic_{0};
  std::atomic<uint64_t> version_atomic_{0};

  std::thread merge_thread_;
};

}  // namespace kbqa::rdf

#endif  // KBQA_RDF_MUTABLE_KB_H_
