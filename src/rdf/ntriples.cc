#include "rdf/ntriples.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <vector>

#include "util/strings.h"
#include "util/thread_pool.h"

namespace kbqa::rdf {

namespace {

std::string EscapeLiteral(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// Parses `digits` hex characters of `line` starting at `*pos`; advances
/// `*pos` past them. Returns nullopt on a short or non-hex sequence.
std::optional<uint32_t> ReadHexDigits(const std::string& line, size_t* pos,
                                      int digits) {
  uint32_t value = 0;
  for (int d = 0; d < digits; ++d) {
    if (*pos >= line.size()) return std::nullopt;
    const char c = line[*pos];
    uint32_t nibble;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<uint32_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      nibble = static_cast<uint32_t>(c - 'A' + 10);
    } else {
      return std::nullopt;
    }
    value = (value << 4) | nibble;
    ++*pos;
  }
  return value;
}

/// Appends the UTF-8 encoding of `cp`. False for surrogate code points and
/// anything beyond U+10FFFF (not Unicode scalar values).
bool AppendUtf8(uint32_t cp, std::string* out) {
  if ((cp >= 0xD800 && cp <= 0xDFFF) || cp > 0x10FFFF) return false;
  if (cp < 0x80) {
    *out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    *out += static_cast<char>(0xC0 | (cp >> 6));
    *out += static_cast<char>(0x80 | (cp & 0x3F));
  } else if (cp < 0x10000) {
    *out += static_cast<char>(0xE0 | (cp >> 12));
    *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    *out += static_cast<char>(0x80 | (cp & 0x3F));
  } else {
    *out += static_cast<char>(0xF0 | (cp >> 18));
    *out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
    *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    *out += static_cast<char>(0x80 | (cp & 0x3F));
  }
  return true;
}

/// Reads an angle-bracketed term starting at `pos`; advances `pos` past it.
Result<std::string> ReadIri(const std::string& line, size_t* pos) {
  if (*pos >= line.size() || line[*pos] != '<') {
    return Status::InvalidArgument("expected '<' at column " +
                                   std::to_string(*pos));
  }
  size_t close = line.find('>', *pos + 1);
  if (close == std::string::npos) {
    return Status::InvalidArgument("unterminated IRI");
  }
  std::string iri = line.substr(*pos + 1, close - *pos - 1);
  if (iri.empty()) return Status::InvalidArgument("empty IRI");
  *pos = close + 1;
  return iri;
}

/// Reads a quoted literal with escapes starting at `pos`.
Result<std::string> ReadLiteral(const std::string& line, size_t* pos) {
  std::string out;
  for (size_t i = *pos + 1; i < line.size(); ++i) {
    char c = line[i];
    if (c == '\\') {
      if (i + 1 >= line.size()) {
        return Status::InvalidArgument("dangling escape");
      }
      char next = line[++i];
      switch (next) {
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case 'u':
        case 'U': {
          // \uXXXX / \UXXXXXXXX numeric escapes (N-Triples spec UCHAR),
          // decoded to UTF-8 bytes.
          size_t hex_pos = i + 1;
          auto cp = ReadHexDigits(line, &hex_pos, next == 'u' ? 4 : 8);
          if (!cp || !AppendUtf8(*cp, &out)) {
            return Status::InvalidArgument(
                std::string("bad numeric escape \\") + next);
          }
          i = hex_pos - 1;  // The loop increment steps past the last digit.
          break;
        }
        default:
          return Status::InvalidArgument(std::string("bad escape \\") + next);
      }
    } else if (c == '"') {
      *pos = i + 1;
      return out;
    } else {
      out += c;
    }
  }
  return Status::InvalidArgument("unterminated literal");
}

void SkipSpace(const std::string& line, size_t* pos) {
  while (*pos < line.size() &&
         std::isspace(static_cast<unsigned char>(line[*pos]))) {
    ++*pos;
  }
}

}  // namespace

Result<NTriple> ParseNTripleLine(const std::string& line) {
  NTriple triple;
  size_t pos = 0;
  SkipSpace(line, &pos);

  auto subject = ReadIri(line, &pos);
  if (!subject.ok()) return subject.status();
  triple.subject = std::move(subject).value();
  SkipSpace(line, &pos);

  auto predicate = ReadIri(line, &pos);
  if (!predicate.ok()) return predicate.status();
  triple.predicate = std::move(predicate).value();
  SkipSpace(line, &pos);

  if (pos >= line.size()) return Status::InvalidArgument("missing object");
  if (line[pos] == '"') {
    auto literal = ReadLiteral(line, &pos);
    if (!literal.ok()) return literal.status();
    triple.object = std::move(literal).value();
    triple.object_is_literal = true;
  } else {
    auto object = ReadIri(line, &pos);
    if (!object.ok()) return object.status();
    triple.object = std::move(object).value();
  }
  SkipSpace(line, &pos);
  if (pos >= line.size() || line[pos] != '.') {
    return Status::InvalidArgument("missing terminating '.'");
  }
  ++pos;
  SkipSpace(line, &pos);
  if (pos != line.size()) {
    return Status::InvalidArgument("trailing content after '.'");
  }
  return triple;
}

std::string FormatNTripleLine(const NTriple& triple) {
  std::string out = "<" + triple.subject + "> <" + triple.predicate + "> ";
  if (triple.object_is_literal) {
    out += "\"" + EscapeLiteral(triple.object) + "\"";
  } else {
    out += "<" + triple.object + ">";
  }
  out += " .";
  return out;
}

Status ExportNTriples(const KnowledgeBase& kb, const std::string& path) {
  if (!kb.frozen()) {
    return Status::FailedPrecondition("ExportNTriples requires Freeze()");
  }
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out << "# exported by kbqa rdf::ExportNTriples — " << kb.num_triples()
      << " triples\n";
  for (TermId s = 0; s < kb.num_nodes(); ++s) {
    if (kb.IsLiteral(s)) continue;
    for (const auto& [p, o] : kb.Out(s)) {
      NTriple triple;
      triple.subject = kb.NodeString(s);
      triple.predicate = kb.PredicateString(p);
      triple.object = kb.NodeString(o);
      triple.object_is_literal = kb.IsLiteral(o);
      out << FormatNTripleLine(triple) << '\n';
    }
  }
  out.flush();
  if (!out) return Status::IoError("short write: " + path);
  return Status::Ok();
}

Result<KnowledgeBase> ImportNTriples(const std::string& path,
                                     const std::string& name_predicate,
                                     int num_threads) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);
  KnowledgeBase kb;
  ThreadPool pool(num_threads);

  // Lines are read in blocks, parsed in parallel (each shard writes only
  // its own disjoint slots of `parsed`), then interned serially in file
  // order — dictionary ids never depend on the thread count.
  constexpr size_t kBlockLines = 4096;
  constexpr size_t kShards = 32;
  struct ParseError {
    size_t line_index;  // within the current block
    std::string message;
  };
  std::vector<std::string> block;
  block.reserve(kBlockLines);
  std::vector<std::optional<NTriple>> parsed;
  std::string line;
  size_t lines_before_block = 0;
  for (;;) {
    block.clear();
    while (block.size() < kBlockLines && std::getline(in, line)) {
      block.push_back(std::move(line));
    }
    if (block.empty()) break;
    parsed.assign(block.size(), std::nullopt);
    auto error = ParallelReduce(
        pool, block.size(), kShards, std::optional<ParseError>{},
        [&](size_t /*shard*/, size_t begin,
            size_t end) -> std::optional<ParseError> {
          for (size_t i = begin; i < end; ++i) {
            std::string_view trimmed = Trim(block[i]);
            if (trimmed.empty() || trimmed[0] == '#') continue;
            auto triple = ParseNTripleLine(block[i]);
            if (!triple.ok()) {
              return ParseError{i, triple.status().message()};
            }
            parsed[i] = std::move(triple).value();
          }
          return std::nullopt;
        },
        [](std::optional<ParseError>& acc, std::optional<ParseError>&& part) {
          // Shards cover contiguous line ranges in order, so the first
          // error in shard order is the first error in file order.
          if (!acc && part) acc = std::move(part);
        });
    if (error) {
      return Status::InvalidArgument(
          path + ":" + std::to_string(lines_before_block + error->line_index +
                                      1) +
          ": " + error->message);
    }
    for (std::optional<NTriple>& triple : parsed) {
      if (!triple) continue;
      kb.AddTriple(triple->subject, triple->predicate, triple->object,
                   triple->object_is_literal);
    }
    lines_before_block += block.size();
  }
  auto name_pred = kb.LookupPredicate(name_predicate);
  if (name_pred) kb.SetNamePredicate(*name_pred);
  kb.Freeze(num_threads);
  return kb;
}

}  // namespace kbqa::rdf
