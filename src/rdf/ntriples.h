#ifndef KBQA_RDF_NTRIPLES_H_
#define KBQA_RDF_NTRIPLES_H_

#include <string>

#include "rdf/knowledge_base.h"
#include "util/status.h"

namespace kbqa::rdf {

/// N-Triples-style text interchange for the knowledge base, so real RDF
/// dumps (DBpedia extracts etc.) can be loaded and generated worlds can be
/// inspected with standard text tools.
///
/// Dialect: one triple per line,
///   <subject-iri> <predicate> "literal object" .
///   <subject-iri> <predicate> <object-iri> .
/// '#'-prefixed lines and blank lines are skipped. Literals support the
/// escapes \" \\ \n \r \t plus the numeric \uXXXX / \UXXXXXXXX forms
/// (decoded to UTF-8 bytes, so escaped entity names tokenize and
/// case-fold exactly like their raw UTF-8 forms — see nlp/tokenizer.h).
/// IRIs are free-form strings without whitespace or
/// angle brackets (the library's node strings are not required to be true
/// IRIs).

/// Writes a frozen KB as N-Triples text.
[[nodiscard]] Status ExportNTriples(const KnowledgeBase& kb, const std::string& path);

/// Parses an N-Triples file into a fresh, frozen knowledge base.
/// `name_predicate` (default "name") is declared as the KB's name
/// predicate when it occurs in the data. Lines are parsed in parallel
/// blocks on `num_threads` workers and committed serially in file order,
/// so the resulting id assignment (and the reported error for a bad file)
/// is identical for any thread count.
[[nodiscard]] Result<KnowledgeBase> ImportNTriples(const std::string& path,
                                     const std::string& name_predicate = "name",
                                     int num_threads = 1);

/// Single-line parse/format helpers (exposed for tests and tooling).
struct NTriple {
  std::string subject;
  std::string predicate;
  std::string object;
  bool object_is_literal = false;
};
[[nodiscard]] Result<NTriple> ParseNTripleLine(const std::string& line);
std::string FormatNTripleLine(const NTriple& triple);

}  // namespace kbqa::rdf

#endif  // KBQA_RDF_NTRIPLES_H_
