#include "rdf/query.h"

#include <algorithm>
#include <cassert>
#include <cctype>

#include "util/strings.h"

namespace kbqa::rdf {

namespace {

/// Splits the body of a WHERE clause into whitespace-separated tokens,
/// keeping double-quoted literals (which may contain spaces) as single
/// tokens without the quotes.
Result<std::vector<std::string>> TokenizeBody(std::string_view body) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < body.size()) {
    while (i < body.size() && std::isspace(static_cast<unsigned char>(body[i]))) {
      ++i;
    }
    if (i >= body.size()) break;
    if (body[i] == '"') {
      size_t close = body.find('"', i + 1);
      if (close == std::string_view::npos) {
        return Status::InvalidArgument("unterminated quoted literal");
      }
      tokens.emplace_back(body.substr(i + 1, close - i - 1));
      i = close + 1;
    } else {
      size_t start = i;
      while (i < body.size() &&
             !std::isspace(static_cast<unsigned char>(body[i]))) {
        ++i;
      }
      tokens.emplace_back(body.substr(start, i - start));
    }
  }
  return tokens;
}

PatternTerm MakeTerm(const std::string& token) {
  if (!token.empty() && token[0] == '?') {
    return PatternTerm{true, token.substr(1)};
  }
  return PatternTerm{false, token};
}

std::string TermToString(const PatternTerm& term) {
  if (term.is_variable) return "?" + term.text;
  if (term.text.find(' ') != std::string::npos) return '"' + term.text + '"';
  return term.text;
}

/// Binding environment during evaluation.
using Bindings = std::unordered_map<std::string, TermId>;

/// Resolves a pattern term under current bindings. Returns true and sets
/// `out` when the term is concrete (bound variable or constant found in the
/// dictionary); `known` is false when a constant is absent from the KB
/// (query yields no rows through this pattern).
bool ResolveTerm(const KnowledgeBase& kb, const PatternTerm& term,
                 const Bindings& bindings, TermId* out, bool* known) {
  *known = true;
  if (term.is_variable) {
    auto it = bindings.find(term.text);
    if (it == bindings.end()) return false;
    *out = it->second;
    return true;
  }
  auto id = kb.LookupNode(term.text);
  if (!id) {
    *known = false;
    return true;  // concrete but unknown -> zero matches
  }
  *out = *id;
  return true;
}

/// Recursive nested-loop join over `patterns[index..]`.
void Evaluate(const KnowledgeBase& kb,
              const std::vector<TriplePattern>& patterns, size_t index,
              Bindings& bindings, const Query& query,
              std::vector<QueryRow>* rows, QueryStats* stats) {
  if (index == patterns.size()) {
    QueryRow row;
    row.reserve(query.select.size());
    for (const std::string& var : query.select) {
      auto it = bindings.find(var);
      row.push_back(it == bindings.end() ? kInvalidTerm : it->second);
    }
    rows->push_back(std::move(row));
    ++stats->bindings_produced;
    return;
  }

  const TriplePattern& pattern = patterns[index];
  ++stats->patterns_evaluated;

  auto pred = kb.LookupPredicate(pattern.predicate);
  if (!pred) return;  // unknown predicate: no matches

  TermId s = kInvalidTerm, o = kInvalidTerm;
  bool s_known = true, o_known = true;
  bool s_bound = ResolveTerm(kb, pattern.subject, bindings, &s, &s_known);
  bool o_bound = ResolveTerm(kb, pattern.object, bindings, &o, &o_known);
  if (!s_known || !o_known) return;

  auto bind_and_recurse = [&](const std::string& var, TermId value) {
    bindings[var] = value;
    Evaluate(kb, patterns, index + 1, bindings, query, rows, stats);
    bindings.erase(var);
  };

  if (s_bound && o_bound) {
    ++stats->index_lookups;
    if (kb.HasTriple(s, *pred, o)) {
      Evaluate(kb, patterns, index + 1, bindings, query, rows, stats);
    }
  } else if (s_bound) {
    ++stats->index_lookups;
    for (const auto& po : kb.ObjectsRange(s, *pred)) {
      bind_and_recurse(pattern.object.text, po.o);
    }
  } else if (o_bound) {
    ++stats->index_lookups;
    // In-CSR ranges are sorted by predicate, so the matching subjects are
    // one contiguous sub-range instead of a filtered scan of all in-edges.
    for (const auto& ps : kb.SubjectsRange(o, *pred)) {
      bind_and_recurse(pattern.subject.text, ps.o);
    }
  } else {
    // Neither side bound: full scan over subjects (the planner tries to
    // avoid ordering patterns this way).
    ++stats->full_scans;
    const bool same_variable =
        pattern.subject.is_variable && pattern.object.is_variable &&
        pattern.subject.text == pattern.object.text;
    for (TermId node = 0; node < kb.num_nodes(); ++node) {
      if (kb.IsLiteral(node)) continue;
      auto range = kb.ObjectsRange(node, *pred);
      if (range.empty()) continue;
      if (same_variable) {
        // Self-loop pattern "?x p ?x": one variable, one equality
        // constraint — only reflexive edges match.
        for (const auto& po : range) {
          if (po.o == node) {
            bind_and_recurse(pattern.subject.text, node);
            break;
          }
        }
        continue;
      }
      bindings[pattern.subject.text] = node;
      for (const auto& po : range) {
        bind_and_recurse(pattern.object.text, po.o);
      }
      bindings.erase(pattern.subject.text);
    }
  }
}

/// Greedy planner: repeatedly pick the pattern with the most terms bound
/// (constants or already-planned variables); ties broken by original order.
std::vector<TriplePattern> PlanPatterns(
    const std::vector<TriplePattern>& where) {
  std::vector<TriplePattern> planned;
  std::vector<bool> used(where.size(), false);
  std::unordered_map<std::string, bool> bound_vars;

  auto boundness = [&](const TriplePattern& p) {
    int score = 0;
    if (!p.subject.is_variable || bound_vars.count(p.subject.text)) score += 2;
    if (!p.object.is_variable || bound_vars.count(p.object.text)) score += 1;
    return score;
  };

  for (size_t step = 0; step < where.size(); ++step) {
    int best_score = -1;
    size_t best = 0;
    for (size_t i = 0; i < where.size(); ++i) {
      if (used[i]) continue;
      int score = boundness(where[i]);
      if (score > best_score) {
        best_score = score;
        best = i;
      }
    }
    used[best] = true;
    planned.push_back(where[best]);
    if (where[best].subject.is_variable) {
      bound_vars[where[best].subject.text] = true;
    }
    if (where[best].object.is_variable) {
      bound_vars[where[best].object.text] = true;
    }
  }
  return planned;
}

}  // namespace

Result<Query> ParseQuery(const std::string& text) {
  size_t select_pos = text.find("SELECT");
  size_t where_pos = text.find("WHERE");
  if (select_pos == std::string::npos || where_pos == std::string::npos ||
      where_pos < select_pos) {
    return Status::InvalidArgument("expected 'SELECT ... WHERE { ... }'");
  }
  size_t open = text.find('{', where_pos);
  size_t close = text.rfind('}');
  if (open == std::string::npos || close == std::string::npos ||
      close < open) {
    return Status::InvalidArgument("WHERE clause must be braced");
  }

  Query query;
  for (const std::string& tok : SplitWhitespace(
           text.substr(select_pos + 6, where_pos - select_pos - 6))) {
    if (tok.empty() || tok[0] != '?') {
      return Status::InvalidArgument("SELECT terms must be variables: " + tok);
    }
    query.select.push_back(tok.substr(1));
  }
  if (query.select.empty()) {
    return Status::InvalidArgument("SELECT needs at least one variable");
  }

  auto tokens = TokenizeBody(text.substr(open + 1, close - open - 1));
  if (!tokens.ok()) return tokens.status();

  std::vector<std::string> current;
  auto flush = [&]() -> Status {
    if (current.empty()) return Status::Ok();
    if (current.size() != 3) {
      return Status::InvalidArgument(
          "each pattern needs exactly 3 terms, got " +
          std::to_string(current.size()));
    }
    if (current[1][0] == '?') {
      return Status::InvalidArgument("predicate variables are unsupported");
    }
    query.where.push_back(TriplePattern{MakeTerm(current[0]), current[1],
                                        MakeTerm(current[2])});
    current.clear();
    return Status::Ok();
  };

  for (const std::string& tok : tokens.value()) {
    if (tok == ".") {
      KBQA_RETURN_IF_ERROR(flush());
    } else {
      current.push_back(tok);
    }
  }
  KBQA_RETURN_IF_ERROR(flush());
  if (query.where.empty()) {
    return Status::InvalidArgument("WHERE clause has no patterns");
  }
  return query;
}

std::string QueryToString(const Query& query) {
  std::string out = "SELECT";
  for (const std::string& var : query.select) out += " ?" + var;
  out += " WHERE {";
  for (size_t i = 0; i < query.where.size(); ++i) {
    if (i > 0) out += " .";
    const TriplePattern& p = query.where[i];
    out += " " + TermToString(p.subject) + " " + p.predicate + " " +
           TermToString(p.object);
  }
  out += " }";
  return out;
}

Result<std::vector<QueryRow>> ExecuteQuery(const KnowledgeBase& kb,
                                           const Query& query,
                                           QueryStats* stats) {
  if (!kb.frozen()) {
    return Status::FailedPrecondition("ExecuteQuery requires a frozen KB");
  }
  if (query.select.empty() || query.where.empty()) {
    return Status::InvalidArgument("query needs SELECT and WHERE parts");
  }
  QueryStats local_stats;
  if (stats == nullptr) stats = &local_stats;

  std::vector<TriplePattern> planned = PlanPatterns(query.where);
  std::vector<QueryRow> rows;
  Bindings bindings;
  Evaluate(kb, planned, 0, bindings, query, &rows, stats);

  // Deterministic output order + duplicate elimination (set semantics).
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  return rows;
}

Query BuildPathQuery(const KnowledgeBase& kb, TermId e,
                     const std::vector<PredId>& path) {
  assert(!path.empty());
  Query query;
  query.select = {"v"};
  PatternTerm subject{false, kb.NodeString(e)};
  for (size_t i = 0; i < path.size(); ++i) {
    bool last = (i + 1 == path.size());
    PatternTerm object{true, last ? std::string("v")
                                  : "x" + std::to_string(i + 1)};
    query.where.push_back(
        TriplePattern{subject, kb.PredicateString(path[i]), object});
    subject = object;
  }
  return query;
}

}  // namespace kbqa::rdf
