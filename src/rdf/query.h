#ifndef KBQA_RDF_QUERY_H_
#define KBQA_RDF_QUERY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/knowledge_base.h"
#include "util/status.h"

namespace kbqa::rdf {

/// A term in a triple pattern: either a variable ("?x") or a bound node
/// (entity IRI or quoted literal).
struct PatternTerm {
  bool is_variable = false;
  /// Variable name without '?', or the node's string form.
  std::string text;

  friend bool operator==(const PatternTerm&, const PatternTerm&) = default;
};

/// One `s p o` pattern. The predicate is always bound by name — KBQA's
/// structured queries never need predicate variables, and fixing this keeps
/// evaluation index-friendly.
struct TriplePattern {
  PatternTerm subject;
  std::string predicate;
  PatternTerm object;

  friend bool operator==(const TriplePattern&, const TriplePattern&) =
      default;
};

/// A conjunctive SELECT query over the triple store.
struct Query {
  std::vector<std::string> select;  // variable names, no '?'
  std::vector<TriplePattern> where;
};

/// One result row: values of the SELECT variables, in SELECT order.
using QueryRow = std::vector<TermId>;

/// Evaluation statistics (exposed for the planner tests and benchmarks).
struct QueryStats {
  size_t patterns_evaluated = 0;
  size_t bindings_produced = 0;
  size_t index_lookups = 0;
  size_t full_scans = 0;
};

/// Parses the SPARQL-like surface syntax KBQA emits:
///
///   SELECT ?wife WHERE { person/a marriage ?m . ?m person ?p .
///                        ?p name ?wife }
///
/// Terms are whitespace-separated; literals with spaces are double-quoted
/// ("barack obama"); patterns are separated by '.'. Case-sensitive keywords
/// SELECT / WHERE.
[[nodiscard]] Result<Query> ParseQuery(const std::string& text);

/// Serializes a query back to the surface syntax (stable round-trip).
std::string QueryToString(const Query& query);

/// Evaluates `query` against a frozen knowledge base by nested-loop join
/// with greedy most-bound-first pattern ordering: patterns whose subject or
/// object is already bound run on the adjacency indexes; a pattern with
/// neither side bound falls back to a full predicate scan.
///
/// Unknown node names yield an empty result (not an error) — the usual
/// SPARQL semantics. Unknown predicates likewise.
Result<std::vector<QueryRow>> ExecuteQuery(const KnowledgeBase& kb,
                                           const Query& query,
                                           QueryStats* stats = nullptr);

/// Builds the structured query for a BFQ answer: entity `e` followed
/// through predicate path `path` to the answer variable ?v — the query
/// KBQA "maps the question to" (§1).
Query BuildPathQuery(const KnowledgeBase& kb, TermId e,
                     const std::vector<PredId>& path);

}  // namespace kbqa::rdf

#endif  // KBQA_RDF_QUERY_H_
