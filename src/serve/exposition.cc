#include "serve/exposition.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <utility>
#include <vector>

#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/wide_event.h"
#include "util/memory_budget.h"

namespace kbqa::serve {

namespace {

constexpr size_t kMaxRequestBytes = 4096;

std::string KvLine(const char* key, const std::string& value) {
  std::string out = key;
  out += ": ";
  out += value;
  out += '\n';
  return out;
}

/// Splits "path?query" and returns the value of `key` in the query string
/// ("" when absent). Queries here are simple k=v&k=v lists.
std::string QueryParam(const std::string& path_and_query,
                       const std::string& key) {
  const size_t qmark = path_and_query.find('?');
  if (qmark == std::string::npos) return "";
  std::string query = path_and_query.substr(qmark + 1);
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::string pair = query.substr(pos, amp - pos);
    const size_t eq = pair.find('=');
    if (eq != std::string::npos && pair.substr(0, eq) == key) {
      return pair.substr(eq + 1);
    }
    pos = amp + 1;
  }
  return "";
}

std::string RenderIndex() {
  return "kbqa exposition endpoints:\n"
         "  /metricsz        metrics registry (text; ?format=json)\n"
         "  /statusz         build info, uptime, memory gauges\n"
         "  /eventz          recent wide events as JSONL (?n=K)\n"
         "  /slo             SLO burn-rate evaluation (JSON)\n";
}

std::string RenderMetricsz(const std::string& path_and_query) {
  if (QueryParam(path_and_query, "format") == "json") {
    return obs::MetricsRegistry::Global().Snapshot().ToJson();
  }
  std::ostringstream os;
  obs::RenderMetricsTable(obs::MetricsRegistry::Global().Snapshot(), os);
  return os.str();
}

uint64_t StartSteadyNs() {
  static const uint64_t kStart = obs::NowSteadyNs();
  return kStart;
}

std::string RenderStatusz(const ExpositionOptions& options) {
  std::string out;
  out += KvLine("build.compiler", __VERSION__);
#ifdef NDEBUG
  out += KvLine("build.mode", "release");
#else
  out += KvLine("build.mode", "debug");
#endif
  out += KvLine("obs.compiled_in", obs::kCompiledIn ? "true" : "false");
  out += KvLine("obs.enabled", obs::Enabled() ? "true" : "false");
  out += KvLine("pid", std::to_string(getpid()));
  const uint64_t uptime_ns = obs::NowSteadyNs() - StartSteadyNs();
  out += KvLine("uptime_s", std::to_string(uptime_ns / 1'000'000'000ull));
  out += KvLine("process.resident_bytes",
                std::to_string(util::ProcessResidentBytes()));
  out += KvLine("wide_events.recorded",
                std::to_string(obs::WideEvents::TotalRecorded()));
  out += KvLine("wide_events.dropped",
                std::to_string(obs::WideEvents::Dropped()));
  out += KvLine("wide_events.sample_period",
                std::to_string(obs::WideEvents::SamplePeriod()));
  // Memory-budget gauges (mem.*), straight from the registry so /statusz
  // shows the budget split next to live residency.
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::Global().Snapshot();
  for (const auto& g : snap.gauges) {
    if (g.name.rfind("mem.", 0) != 0) continue;
    out += KvLine(g.name.c_str(),
                  std::to_string(static_cast<uint64_t>(g.value)));
  }
  if (options.statusz_extra) options.statusz_extra(&out);
  return out;
}

std::string RenderEventz(const std::string& path_and_query) {
  size_t n = 100;
  const std::string n_param = QueryParam(path_and_query, "n");
  if (!n_param.empty()) {
    n = static_cast<size_t>(std::strtoull(n_param.c_str(), nullptr, 10));
    if (n == 0) n = 1;
    if (n > obs::WideEvents::kRingCapacity * 4) {
      n = obs::WideEvents::kRingCapacity * 4;
    }
  }
  std::string out;
  for (const obs::WideEvent& event : obs::WideEvents::Recent(n)) {
    out += event.ToJsonLine();
    out += '\n';
  }
  return out;
}

std::string RenderSlo(const obs::SloMonitor& slo) {
  const obs::SloEvaluation eval = slo.PublishGauges(obs::NowSteadyNs());
  std::ostringstream os;
  os << "{\"availability_target\":" << slo.spec().availability_target
     << ",\"latency_threshold_ns\":" << slo.spec().latency_threshold_ns
     << ",\"short_window_s\":" << slo.spec().short_window_s
     << ",\"long_window_s\":" << slo.spec().long_window_s
     << ",\"burn_rate_threshold\":" << slo.spec().burn_rate_threshold
     << ",\"short_burn_rate\":" << eval.short_burn_rate
     << ",\"long_burn_rate\":" << eval.long_burn_rate
     << ",\"short_good\":" << eval.short_good
     << ",\"short_bad\":" << eval.short_bad
     << ",\"long_good\":" << eval.long_good
     << ",\"long_bad\":" << eval.long_bad
     << ",\"good_total\":" << slo.TotalGood()
     << ",\"bad_total\":" << slo.TotalBad()
     << ",\"firing\":" << (eval.firing ? "true" : "false") << "}";
  return os.str();
}

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

std::string ExpositionServer::HandlePath(const ExpositionOptions& options,
                                         const std::string& path_and_query,
                                         int* status_out,
                                         std::string* content_type_out) {
  const size_t qmark = path_and_query.find('?');
  const std::string path = qmark == std::string::npos
                               ? path_and_query
                               : path_and_query.substr(0, qmark);
  *status_out = 200;
  *content_type_out = "text/plain; charset=utf-8";
  if (path == "/" || path == "/index" || path.empty()) {
    return RenderIndex();
  }
  if (path == "/metricsz") {
    if (QueryParam(path_and_query, "format") == "json") {
      *content_type_out = "application/json";
    }
    return RenderMetricsz(path_and_query);
  }
  if (path == "/statusz") {
    return RenderStatusz(options);
  }
  if (path == "/eventz") {
    *content_type_out = "application/jsonl";
    return RenderEventz(path_and_query);
  }
  if (path == "/slo") {
    if (options.slo == nullptr) {
      *status_out = 404;
      return "no SLO monitor attached\n";
    }
    *content_type_out = "application/json";
    return RenderSlo(*options.slo);
  }
  *status_out = 404;
  return "not found; see / for endpoints\n";
}

std::string ExpositionServer::ParseRequestPath(const std::string& request) {
  const size_t line_end = request.find_first_of("\r\n");
  const std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  if (line.rfind("GET ", 0) != 0) return "/";
  const size_t path_start = 4;
  const size_t path_end = line.find(' ', path_start);
  return line.substr(path_start, path_end == std::string::npos
                                     ? std::string::npos
                                     : path_end - path_start);
}

Result<std::unique_ptr<ExpositionServer>> ExpositionServer::Start(
    const ExpositionOptions& options) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Unavailable("exposition: socket() failed");
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options.port));
  if (::inet_pton(AF_INET, options.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return Status::InvalidArgument("exposition: bad bind address " +
                                   options.bind_address);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::Unavailable("exposition: bind(" + options.bind_address +
                               ":" + std::to_string(options.port) +
                               ") failed: " + std::strerror(errno));
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    return Status::Unavailable("exposition: listen() failed");
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  int port = options.port;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) ==
      0) {
    port = ntohs(bound.sin_port);
  }
  StartSteadyNs();  // pin the uptime epoch to server start
  return std::unique_ptr<ExpositionServer>(
      new ExpositionServer(options, fd, port));  // NOLINT(kbqa-naked-new)
}

ExpositionServer::ExpositionServer(const ExpositionOptions& options,
                                   int listen_fd, int port)
    : options_(options), listen_fd_(listen_fd), port_(port) {
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

ExpositionServer::~ExpositionServer() {
  stopping_.store(true, std::memory_order_release);
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
}

void ExpositionServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) return;
      if (errno == EINTR) continue;
      return;  // listener broken; nothing useful left to do
    }
    ServeConnection(fd);
    ::close(fd);
  }
}

void ExpositionServer::ServeConnection(int fd) {
  std::string request;
  char buf[1024];
  while (request.size() < kMaxRequestBytes &&
         request.find("\r\n\r\n") == std::string::npos &&
         request.find("\n\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    request.append(buf, static_cast<size_t>(n));
    // A bare "GET /path\n" (HTTP/0.9 style, what a raw-socket test or
    // netcat sends) has no header block; one line is a full request.
    if (request.find('\n') != std::string::npos) break;
  }
  const std::string path = ParseRequestPath(request);
  int status = 200;
  std::string content_type;
  const std::string body = HandlePath(options_, path, &status, &content_type);
  std::string response = "HTTP/1.0 ";
  response += status == 200 ? "200 OK" : "404 Not Found";
  response += "\r\nContent-Type: " + content_type;
  response += "\r\nContent-Length: " + std::to_string(body.size());
  response += "\r\nConnection: close\r\n\r\n";
  response += body;
  SendAll(fd, response);
  requests_served_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace kbqa::serve
