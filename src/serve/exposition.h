#ifndef KBQA_SERVE_EXPOSITION_H_
#define KBQA_SERVE_EXPOSITION_H_

/// Pull-based observability exposition (DESIGN.md §8): a tiny blocking
/// HTTP/1.0 listener over POSIX sockets serving
///
///   /metricsz   global metrics registry (text tables; ?format=json for
///               the MetricsSnapshot JSON)
///   /statusz    build info, uptime, process RSS, mem.* budget gauges,
///               wide-event sink totals
///   /eventz     recent wide events as JSONL (?n=K, newest last)
///   /slo        SLO burn-rate evaluation as JSON (404 when no monitor
///               is attached)
///
/// One accept thread handles connections serially — every handler renders
/// from lock-free snapshots in microseconds, so a scrape cannot stall the
/// serving path, and the serving path never blocks on the scraper. Lives
/// in src/serve (not src/obs) because it needs util's Status/Result
/// machinery and kbqa_util itself links against kbqa_obs — obs cannot
/// link util symbols without a static library cycle.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "obs/slo.h"
#include "util/status.h"

namespace kbqa::serve {

struct ExpositionOptions {
  /// Loopback by default: this is an operator endpoint, not a public API.
  std::string bind_address = "127.0.0.1";
  /// 0 binds an ephemeral port; read the outcome from port().
  int port = 0;
  /// Optional SLO monitor behind /slo; gauges are refreshed per scrape.
  const obs::SloMonitor* slo = nullptr;
  /// Optional extra key/value lines appended to /statusz (the example
  /// server reports engine/world facts through this).
  std::function<void(std::string*)> statusz_extra;
};

class ExpositionServer {
 public:
  /// Binds, listens, and starts the accept thread. Returns kUnavailable
  /// when the port cannot be bound.
  static Result<std::unique_ptr<ExpositionServer>> Start(
      const ExpositionOptions& options);

  /// Stops the listener and joins the accept thread.
  ~ExpositionServer();

  ExpositionServer(const ExpositionServer&) = delete;
  ExpositionServer& operator=(const ExpositionServer&) = delete;

  /// The bound port (the ephemeral pick when options.port was 0).
  int port() const { return port_; }
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

  /// Routes one request path (with optional query string) to its handler
  /// and returns the response body; used directly by tests and by the
  /// socket loop. `status_out` gets the HTTP status code (200/404),
  /// `content_type_out` the MIME type.
  static std::string HandlePath(const ExpositionOptions& options,
                                const std::string& path_and_query,
                                int* status_out,
                                std::string* content_type_out);

  /// Extracts the request path from a raw request blob: the first line's
  /// "GET <path> ..." form, tolerating HTTP/0.9 one-liners, missing
  /// versions, and truncated reads. Returns "/" when no path can be
  /// extracted. Pure — the byte-facing half of the request parser, split
  /// out so tests and the fuzz harness drive it without a socket.
  static std::string ParseRequestPath(const std::string& request);

 private:
  ExpositionServer(const ExpositionOptions& options, int listen_fd, int port);

  void AcceptLoop();
  void ServeConnection(int fd);

  ExpositionOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> requests_served_{0};
  std::thread accept_thread_;
};

}  // namespace kbqa::serve

#endif  // KBQA_SERVE_EXPOSITION_H_
