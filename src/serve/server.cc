#include "serve/server.h"

#include <algorithm>
#include <optional>
#include <utility>
#include <vector>

#include "obs/obs.h"

namespace kbqa::serve {

namespace {

uint64_t NanosBetween(std::chrono::steady_clock::time_point from,
                      std::chrono::steady_clock::time_point to) {
  if (to <= from) return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
          .count());
}

/// Steady time point -> the absolute-ns time base the wide-event layer
/// uses (same clock, so stage sums and server sums stay comparable).
uint64_t ToNs(std::chrono::steady_clock::time_point tp) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          tp.time_since_epoch())
          .count());
}

/// Remaining deadline budget (possibly negative) at `at_ns`; 0 when the
/// request carries no deadline.
int64_t BudgetNsAt(
    const std::optional<std::chrono::steady_clock::time_point>& deadline,
    uint64_t at_ns) {
  if (!deadline) return 0;
  return static_cast<int64_t>(ToNs(*deadline)) - static_cast<int64_t>(at_ns);
}

/// Common wide-event header shared by every terminal outcome.
obs::WideEvent BaseEvent(const obs::RequestContext& ctx,
                         obs::WideOutcome outcome, bool has_deadline,
                         size_t question_bytes) {
  obs::WideEvent event;
  event.trace_id = ctx.trace_id;
  event.admit_ns = ctx.admit_ns;
  event.outcome = outcome;
  event.has_deadline = has_deadline;
  event.question_bytes = static_cast<uint32_t>(question_bytes);
  return event;
}

ServingOptions Sanitize(ServingOptions options) {
  if (options.num_workers < 1) options.num_workers = 1;
  if (options.max_queue_depth < 1) options.max_queue_depth = 1;
  if (options.max_batch_size < 1) options.max_batch_size = 1;
  if (options.max_inflight_batches == 0) {
    options.max_inflight_batches = static_cast<size_t>(options.num_workers);
  }
  return options;
}

}  // namespace

Server::Server(Handler handler, const ServingOptions& options)
    : handler_(std::move(handler)),
      options_(Sanitize(options)),
      // num_workers dedicated workers: the +1 "caller" slot of the pool
      // belongs to the batcher, which only ever uses the async Submit path
      // and never drains shards itself.
      pool_(options_.num_workers + 1),
      batcher_([this] { BatcherLoop(); }) {}

std::unique_ptr<Server> Server::ForEngine(const core::OnlineInference* engine,
                                          const ServingOptions& options) {
  return std::make_unique<Server>(
      [engine](const std::string& question,
               const core::AnswerOptions& answer_options) {
        return engine->AnswerCached(question, answer_options);
      },
      options);
}

std::unique_ptr<Server> Server::ForLiveEngine(
    const core::LiveKbqaEngine* engine, const ServingOptions& options) {
  return std::make_unique<Server>(
      [engine](const std::string& question,
               const core::AnswerOptions& answer_options) {
        return engine->AnswerCached(question, answer_options);
      },
      options);
}

Server::~Server() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  queue_cv_.NotifyAll();
  // The batcher sheds whatever is still queued, then exits; ~pool_ waits
  // for every dispatched batch (and its completion callbacks) to retire.
  batcher_.join();
}

Status Server::Submit(std::string question, const core::AnswerOptions& options,
                      Callback done) {
  submitted_.Add(1);
  KBQA_COUNTER_ADD("online.serve.submitted", 1);
  Request request;
  request.question = std::move(question);
  request.options = options;
  request.done = std::move(done);
  request.enqueue_time = std::chrono::steady_clock::now();
  if (!request.options.deadline && options_.default_timeout) {
    // The implicit budget starts now: time spent queued is spent budget,
    // so a request that languishes is shed instead of served late.
    request.options.deadline = request.enqueue_time + *options_.default_timeout;
  }
  request.charge_bytes = request.question.size() + sizeof(Request);
  // The wide-event sampling decision is fixed at admission so every layer
  // downstream sees a consistent answer, and so rejections are sampled at
  // the same rate as served requests.
  if (obs::WideEvents::Sample()) {
    request.ctx.sampled = true;
    request.ctx.trace_id = obs::WideEvents::NextTraceId();
    request.ctx.admit_ns = ToNs(request.enqueue_time);
  }
  {
    MutexLock lock(mu_);
    if (stopping_) {
      rejected_.Add(1);
      KBQA_COUNTER_ADD("online.serve.rejected", 1);
      RecordRejected(request);
      return Status::Unavailable("server shutting down");
    }
    if (queue_.size() >= options_.max_queue_depth ||
        (options_.max_queue_bytes != 0 &&
         queue_bytes_ + request.charge_bytes > options_.max_queue_bytes)) {
      rejected_.Add(1);
      KBQA_COUNTER_ADD("online.serve.rejected", 1);
      RecordRejected(request);
      return Status::Unavailable("serving queue full");
    }
    queue_bytes_ += request.charge_bytes;
    queue_.push_back(std::move(request));
    KBQA_GAUGE_SET("online.serve.queue_depth", queue_.size());
  }
  queue_cv_.NotifyOne();
  return Status::Ok();
}

ServeResponse Server::Answer(const std::string& question,
                             const core::AnswerOptions& options) {
  struct Waiter {
    Mutex mu;
    CondVar cv;
    bool ready = false;
    ServeResponse response;
  };
  auto waiter = std::make_shared<Waiter>();
  Status admitted = Submit(question, options, [waiter](ServeResponse r) {
    MutexLock lock(waiter->mu);
    waiter->response = std::move(r);
    waiter->ready = true;
    waiter->cv.NotifyAll();
  });
  if (!admitted.ok()) {
    ServeResponse response;
    response.result.status = std::move(admitted);
    return response;
  }
  MutexLock lock(waiter->mu);
  while (!waiter->ready) waiter->cv.Wait(waiter->mu);
  return std::move(waiter->response);
}

ServingStats Server::stats() const {
  ServingStats stats;
  stats.submitted = submitted_.Value();
  stats.rejected = rejected_.Value();
  stats.completed = completed_.Value();
  stats.shed_expired = shed_expired_.Value();
  stats.shed_shutdown = shed_shutdown_.Value();
  stats.batches = batches_.Value();
  {
    MutexLock lock(mu_);
    stats.queue_depth = queue_.size();
  }
  return stats;
}

void Server::RecordRejected(const Request& request) {
  const uint64_t now_ns = obs::NowSteadyNs();
  if (options_.slo != nullptr) {
    options_.slo->Record(/*good=*/false, now_ns);
  }
  if (!request.ctx.sampled) return;
  obs::WideEvent event =
      BaseEvent(request.ctx, obs::WideOutcome::kRejected,
                request.options.deadline.has_value(), request.question.size());
  event.total_ns =
      now_ns > event.admit_ns ? now_ns - event.admit_ns : 0;
  event.deadline_budget_ns = BudgetNsAt(request.options.deadline, now_ns);
  obs::WideEvents::Record(event);
}

void Server::CompleteShed(Request* request, Status status,
                          obs::WideOutcome outcome) {
  ServeResponse response;
  response.result.status = std::move(status);
  const auto now = std::chrono::steady_clock::now();
  response.queue_ns = NanosBetween(request->enqueue_time, now);
  const uint64_t now_ns = ToNs(now);
  if (options_.slo != nullptr) {
    options_.slo->Record(/*good=*/false, now_ns);
  }
  if (request->ctx.sampled) {
    // A shed request never entered the pipeline: its whole life was queue
    // wait, and it carries zero stage records by construction.
    obs::WideEvent event = BaseEvent(request->ctx, outcome,
                                     request->options.deadline.has_value(),
                                     request->question.size());
    event.queue_wait_ns = response.queue_ns;
    event.total_ns = response.queue_ns;
    event.deadline_budget_ns = BudgetNsAt(request->options.deadline, now_ns);
    obs::WideEvents::Record(event);
  }
  request->done(std::move(response));
}

void Server::BatcherLoop() {
  for (;;) {
    std::vector<Request> batch;
    {
      MutexLock lock(mu_);
      while (!stopping_ && queue_.empty()) queue_cv_.Wait(mu_);
      if (stopping_) break;
      // Coalesce: close the batch at max_batch_size requests, or when the
      // oldest has waited max_batch_wait — the classic size-or-time pair.
      const auto close_at =
          queue_.front().enqueue_time + options_.max_batch_wait;
      while (!stopping_ && queue_.size() < options_.max_batch_size &&
             std::chrono::steady_clock::now() < close_at) {
        queue_cv_.WaitUntil(mu_, close_at);
      }
      const size_t take = std::min(queue_.size(), options_.max_batch_size);
      batch.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        queue_bytes_ -= queue_.front().charge_bytes;
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      KBQA_GAUGE_SET("online.serve.queue_depth", queue_.size());
    }
    Dispatch(std::move(batch));
  }
  // Shutdown: complete whatever is still queued without serving it, so
  // every accepted callback fires exactly once.
  std::deque<Request> leftover;
  {
    MutexLock lock(mu_);
    leftover.swap(queue_);
    queue_bytes_ = 0;
    KBQA_GAUGE_SET("online.serve.queue_depth", 0);
  }
  for (Request& request : leftover) {
    shed_shutdown_.Add(1);
    KBQA_COUNTER_ADD("online.serve.shed_shutdown", 1);
    CompleteShed(&request, Status::Unavailable("server shutting down"),
                 obs::WideOutcome::kShedShutdown);
  }
}

void Server::Dispatch(std::vector<Request> batch) {
  // Acquire an in-flight slot, shedding along the way: a request whose
  // deadline lapses — whether it already lapsed in the queue or lapses
  // while this batch stalls behind a saturated pool — never reaches the
  // handler and never enters template matching. The slot wait is bounded
  // by the earliest pending deadline so sheds happen when the deadline
  // passes, not when the stall ends.
  for (;;) {
    // Shed pass. Outside mu_: the batch is private to the batcher thread
    // here, and shed callbacks may re-enter Submit.
    const auto now = std::chrono::steady_clock::now();
    size_t kept = 0;
    for (size_t i = 0; i < batch.size(); ++i) {
      Request& request = batch[i];
      if (request.options.deadline && *request.options.deadline <= now) {
        shed_expired_.Add(1);
        KBQA_COUNTER_ADD("online.serve.shed_expired", 1);
        CompleteShed(&request,
                     Status::DeadlineExceeded("deadline expired in queue"),
                     obs::WideOutcome::kShedExpired);
      } else {
        if (kept != i) batch[kept] = std::move(request);
        ++kept;
      }
    }
    batch.resize(kept);
    if (batch.empty()) return;

    std::optional<std::chrono::steady_clock::time_point> earliest;
    for (const Request& request : batch) {
      if (request.options.deadline &&
          (!earliest || *request.options.deadline < *earliest)) {
        earliest = request.options.deadline;
      }
    }

    // Bound the number of unfinished batches in the pool: past the cap,
    // requests wait in the admission-controlled queue (visible to
    // backpressure) instead of in an invisible pool backlog.
    bool acquired = false;
    {
      MutexLock lock(mu_);
      while (inflight_batches_ >= options_.max_inflight_batches) {
        if (earliest.has_value()) {
          // Timeout: a deadline lapsed while stalled — rerun the shed
          // pass.
          if (!inflight_cv_.WaitUntil(mu_, *earliest)) break;
        } else {
          inflight_cv_.Wait(mu_);
        }
      }
      if (inflight_batches_ < options_.max_inflight_batches) {
        ++inflight_batches_;
        acquired = true;
      }
    }
    if (acquired) break;
  }

  batches_.Add(1);
  KBQA_COUNTER_ADD("online.serve.batches", 1);
  KBQA_HISTOGRAM_RECORD("online.serve.batch_size", batch.size());

  struct BatchState {
    std::vector<Request> requests;
    std::chrono::steady_clock::time_point dispatch_time;
  };
  auto state = std::make_shared<BatchState>();
  state->requests = std::move(batch);
  state->dispatch_time = std::chrono::steady_clock::now();

  const size_t num_shards =
      std::min(state->requests.size(),
               static_cast<size_t>(options_.num_workers));
  pool_.Submit(
      num_shards,
      [this, state, num_shards](size_t shard) {
        const ShardRange range =
            ShardOf(state->requests.size(), shard, num_shards);
        for (size_t i = range.begin; i < range.end; ++i) {
          Request& request = state->requests[i];
          const auto start = std::chrono::steady_clock::now();
          if (request.ctx.sampled) {
            // Anchor the stage clock at the service-start reading the
            // server already took: stage intervals then live strictly
            // inside [start, end), so their sum can never exceed the
            // service_ns measured from the same readings.
            request.ctx.StartClockAt(ToNs(start));
            request.options.request_context = &request.ctx;
          }
          ServeResponse response;
          response.queue_ns =
              NanosBetween(request.enqueue_time, state->dispatch_time);
          response.batch_size = state->requests.size();
          response.result = handler_(request.question, request.options);
          const auto end = std::chrono::steady_clock::now();
          response.service_ns = NanosBetween(start, end);
          completed_.Add(1);
          KBQA_COUNTER_ADD("online.serve.completed", 1);
          KBQA_HISTOGRAM_RECORD("online.serve.queue_wait_ns",
                                response.queue_ns);
          KBQA_HISTOGRAM_RECORD("online.serve.service_ns",
                                response.service_ns);
          KBQA_HISTOGRAM_RECORD("online.serve.latency_ns",
                                response.queue_ns + response.service_ns);
          const Status& st = response.result.status;
          if (options_.slo != nullptr) {
            options_.slo->RecordRequest(
                st.ok(), NanosBetween(request.enqueue_time, end), ToNs(end));
          }
          if (request.ctx.sampled) {
            obs::WideOutcome outcome;
            if (st.ok()) {
              outcome = response.result.answered
                            ? obs::WideOutcome::kAnswered
                            : obs::WideOutcome::kUnanswered;
            } else if (st.code() == StatusCode::kDeadlineExceeded) {
              outcome = obs::WideOutcome::kDeadlineExceeded;
            } else {
              outcome = obs::WideOutcome::kError;
            }
            obs::WideEvent event =
                BaseEvent(request.ctx, outcome,
                          request.options.deadline.has_value(),
                          request.question.size());
            event.batch_size =
                static_cast<uint32_t>(state->requests.size());
            event.queue_wait_ns = response.queue_ns;
            event.batch_wait_ns =
                NanosBetween(state->dispatch_time, start);
            event.service_ns = response.service_ns;
            event.total_ns = NanosBetween(request.enqueue_time, end);
            // Budget at the decision point: what remained when the batch
            // was handed to the pool (the moment shedding last looked).
            event.deadline_budget_ns = BudgetNsAt(
                request.options.deadline, ToNs(state->dispatch_time));
            event.StampFrom(request.ctx);
            obs::WideEvents::Record(event);
          }
          request.done(std::move(response));
        }
      },
      [this] {
        {
          MutexLock lock(mu_);
          --inflight_batches_;
        }
        inflight_cv_.NotifyOne();
      });
}

}  // namespace kbqa::serve
