#ifndef KBQA_SERVE_SERVER_H_
#define KBQA_SERVE_SERVER_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>

#include "core/live_engine.h"
#include "core/online.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/wide_event.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace kbqa::serve {

/// Knobs of the in-process serving front door. Defaults are a sane
/// low-latency configuration; the load harness sweeps them.
struct ServingOptions {
  /// Answering worker threads (the batch-execution parallelism). The
  /// batcher thread is separate and never answers questions itself.
  int num_workers = 1;
  /// Admission control: a Submit that would make the queue deeper than
  /// this is rejected with kUnavailable (backpressure to the caller
  /// instead of unbounded memory + doomed-to-expire latency).
  size_t max_queue_depth = 1024;
  /// Admission control on queued request payload bytes (question text +
  /// per-request overhead). 0 = no byte limit.
  uint64_t max_queue_bytes = 0;
  /// The batcher closes a batch at this many requests...
  size_t max_batch_size = 32;
  /// ...or once the oldest queued request has waited this long, whichever
  /// comes first. 0 means "never wait": every wakeup takes whatever is
  /// queued right now.
  std::chrono::microseconds max_batch_wait{200};
  /// Applied at admission to requests that carry no deadline of their own:
  /// deadline = arrival + default_timeout. Queue wait therefore counts
  /// against the budget — a request that expires while queued is shed
  /// without ever entering the answer pipeline. nullopt = no implicit
  /// deadline.
  std::optional<std::chrono::nanoseconds> default_timeout;
  /// Batches allowed in flight in the worker pool at once; the batcher
  /// stalls (leaving requests queued, where admission control sees them)
  /// once this many are unfinished. 0 = num_workers.
  size_t max_inflight_batches = 0;
  /// Optional SLO burn-rate monitor (must outlive the server). Every
  /// terminal outcome — answered, error, rejected, shed — is recorded as
  /// good/bad against its spec, independent of wide-event sampling.
  obs::SloMonitor* slo = nullptr;
};

/// The outcome of one served request, delivered to its callback.
struct ServeResponse {
  core::AnswerResult result;
  /// Admission to batch dispatch (for shed requests: admission to shed).
  uint64_t queue_ns = 0;
  /// Dispatch to completion inside the worker (0 for shed requests).
  uint64_t service_ns = 0;
  /// Size of the coalesced batch this request rode in (0 if shed).
  size_t batch_size = 0;
};

/// Point-in-time accounting. submitted == rejected + completed +
/// shed_expired + shed_shutdown + (still queued or in flight).
struct ServingStats {
  uint64_t submitted = 0;
  uint64_t rejected = 0;       // admission refusals (kUnavailable)
  uint64_t completed = 0;      // went through the answer pipeline
  uint64_t shed_expired = 0;   // deadline passed while queued
  uint64_t shed_shutdown = 0;  // queued at destruction (kUnavailable)
  uint64_t batches = 0;        // batches dispatched to the pool
  uint64_t queue_depth = 0;    // current
};

/// In-process async serving front door over the KBQA online engine: a
/// bounded MPMC request queue with admission control, a batcher that
/// coalesces queued requests under (max_batch_size, max_batch_wait), and
/// worker threads (util/thread_pool) that execute batches concurrently —
/// the batcher dispatches batch k+1 while k is still running, via the
/// pool's async Submit + completion notification.
///
/// Request lifecycle:
///   Submit -> [bounded queue] -> batcher -> {shed if expired}
///          -> worker pool -> handler(question, options) -> callback
///
/// The callback of every *accepted* request is invoked exactly once, on a
/// worker thread (or on the batcher/destructor thread for shed requests).
/// A rejected Submit returns kUnavailable and never invokes the callback.
/// Destruction stops admission, sheds still-queued requests with
/// kUnavailable, waits for in-flight batches, then joins all threads.
///
/// Thread safety: Submit/Answer/stats are safe from any thread.
class Server {
 public:
  /// The unit of work a batch is made of. The engine adapter is
  /// OnlineInference::AnswerCached; tests substitute instrumented or
  /// deliberately slow handlers to pin down queueing behavior.
  using Handler =
      std::function<core::AnswerResult(const std::string& question,
                                       const core::AnswerOptions& options)>;
  using Callback = std::function<void(ServeResponse)>;

  Server(Handler handler, const ServingOptions& options);
  /// Fronts a trained online engine (which must outlive the server):
  /// every request goes through AnswerCached, so the opt-in answer memo
  /// and per-request deadlines compose with batching.
  static std::unique_ptr<Server> ForEngine(
      const core::OnlineInference* engine, const ServingOptions& options);
  /// Fronts a live-mutation engine (DESIGN.md §10): identical serving
  /// semantics, but every request routes through the engine's current
  /// epoch state, so snapshot swaps land between requests without
  /// draining the server.
  static std::unique_ptr<Server> ForLiveEngine(
      const core::LiveKbqaEngine* engine, const ServingOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Asynchronous entry point. Accepts the request into the queue and
  /// returns Ok, or rejects with kUnavailable (queue past its depth/byte
  /// bound, or server shutting down) without ever invoking `done`.
  /// `options.deadline` (or ServingOptions::default_timeout) is measured
  /// against wall time from this call on — queue wait spends the budget.
  [[nodiscard]] Status Submit(std::string question,
                              const core::AnswerOptions& options,
                              Callback done);
  [[nodiscard]] Status Submit(std::string question, Callback done) {
    return Submit(std::move(question), core::AnswerOptions{},
                  std::move(done));
  }

  /// Blocking convenience wrapper: Submit + wait. A rejection comes back
  /// as a ServeResponse whose result.status is the kUnavailable status.
  ServeResponse Answer(const std::string& question,
                       const core::AnswerOptions& options = {});

  ServingStats stats() const;
  const ServingOptions& options() const { return options_; }

 private:
  struct Request {
    std::string question;
    core::AnswerOptions options;
    Callback done;
    std::chrono::steady_clock::time_point enqueue_time;
    uint64_t charge_bytes = 0;
    /// Request-scoped telemetry (DESIGN.md §8): the sampling decision and
    /// trace id are fixed at admission; the context then travels by value
    /// with the request and is stamped by every layer it crosses. Exactly
    /// one wide event is emitted per terminal outcome.
    obs::RequestContext ctx;
  };

  void BatcherLoop();
  /// Completes a request without entering the pipeline (expired in queue
  /// or shutdown shed), emitting its terminal wide event and SLO record.
  void CompleteShed(Request* request, Status status,
                    obs::WideOutcome outcome);
  void Dispatch(std::vector<Request> batch);
  /// Terminal accounting for an admission-rejected request (never queued,
  /// callback never invoked — but still exactly one wide event).
  void RecordRejected(const Request& request);

  const Handler handler_;
  const ServingOptions options_;

  mutable Mutex mu_;
  CondVar queue_cv_;     // batcher waits for arrivals / stop
  CondVar inflight_cv_;  // batcher waits for an in-flight batch slot
  std::deque<Request> queue_ GUARDED_BY(mu_);
  uint64_t queue_bytes_ GUARDED_BY(mu_) = 0;
  size_t inflight_batches_ GUARDED_BY(mu_) = 0;
  bool stopping_ GUARDED_BY(mu_) = false;

  // Per-instance accounting (sharded relaxed atomics; the global
  // online.serve.* registry metrics mirror these when obs is enabled).
  obs::ShardedCounter submitted_;
  obs::ShardedCounter rejected_;
  obs::ShardedCounter completed_;
  obs::ShardedCounter shed_expired_;
  obs::ShardedCounter shed_shutdown_;
  obs::ShardedCounter batches_;

  // Declared after every member its jobs and completion callbacks touch
  // (handler_, mu_, inflight_cv_, the counters): ~pool_ drains in-flight
  // batches, so it must run before those members are destroyed.
  ThreadPool pool_;
  std::thread batcher_;
};

}  // namespace kbqa::serve

#endif  // KBQA_SERVE_SERVER_H_
