#include "taxonomy/taxonomy.h"

#include <algorithm>
#include <cassert>

#include "util/strings.h"

namespace kbqa::taxonomy {

namespace {

void NormalizeAndSort(std::vector<ScoredCategory>& cats) {
  double total = 0;
  for (const auto& sc : cats) total += sc.probability;
  if (total > 0) {
    for (auto& sc : cats) sc.probability /= total;
  }
  std::sort(cats.begin(), cats.end(),
            [](const ScoredCategory& a, const ScoredCategory& b) {
              if (a.probability != b.probability) {
                return a.probability > b.probability;
              }
              return a.category < b.category;
            });
}

}  // namespace

CategoryId Taxonomy::AddCategory(std::string_view name) {
  CategoryId id = names_.Intern(name);
  if (id >= affinities_.size()) affinities_.resize(id + 1);
  return id;
}

void Taxonomy::AddEntityCategory(rdf::TermId entity, CategoryId category,
                                 double weight) {
  assert(category < names_.size());
  assert(weight > 0);
  auto& cats = entity_categories_[entity];
  for (auto& [c, w] : cats) {
    if (c == category) {
      w += weight;
      return;
    }
  }
  cats.emplace_back(category, weight);
}

void Taxonomy::AddContextAffinity(CategoryId category, std::string_view word,
                                  double affinity) {
  assert(category < affinities_.size());
  assert(affinity >= 0);
  affinities_[category][ToLower(word)] += affinity;
}

std::vector<ScoredCategory> Taxonomy::CategoriesOf(rdf::TermId entity) const {
  std::vector<ScoredCategory> out;
  auto it = entity_categories_.find(entity);
  if (it == entity_categories_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [c, w] : it->second) out.push_back({c, w});
  NormalizeAndSort(out);
  return out;
}

std::vector<ScoredCategory> Taxonomy::Conceptualize(
    rdf::TermId entity, std::span<const std::string> context_tokens) const {
  std::vector<ScoredCategory> out = CategoriesOf(entity);
  if (out.size() <= 1 || context_tokens.empty()) return out;

  for (auto& sc : out) {
    const auto& affinity_map = affinities_[sc.category];
    double boost = 1.0;
    for (const std::string& raw : context_tokens) {
      auto hit = affinity_map.find(ToLower(raw));
      if (hit != affinity_map.end()) boost *= 1.0 + hit->second;
    }
    sc.probability *= boost;
  }
  NormalizeAndSort(out);
  return out;
}

std::vector<rdf::TermId> Taxonomy::EntitiesWithCategory(
    CategoryId category) const {
  std::vector<rdf::TermId> out;
  for (const auto& [entity, cats] : entity_categories_) {
    for (const auto& [c, w] : cats) {
      (void)w;
      if (c == category) {
        out.push_back(entity);
        break;
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace kbqa::taxonomy
