#ifndef KBQA_TAXONOMY_TAXONOMY_H_
#define KBQA_TAXONOMY_TAXONOMY_H_

#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "rdf/dictionary.h"

namespace kbqa::taxonomy {

/// Dense category identifier ("$city", "$person", ...).
using CategoryId = uint32_t;
inline constexpr CategoryId kInvalidCategory =
    std::numeric_limits<CategoryId>::max();

/// A category with its conceptualization probability.
struct ScoredCategory {
  CategoryId category;
  double probability;

  friend bool operator==(const ScoredCategory&, const ScoredCategory&) =
      default;
};

/// Concept taxonomy — the substrate standing in for Probase [32].
///
/// Stores (a) the category system, (b) per-entity category priors P(c|e),
/// and (c) a context model: affinities between categories and context words
/// that implement *context-aware conceptualization* [25]: P(c|q,e) ∝
/// P(c|e) · Π_w (1 + affinity(c, w)) over the question's non-entity tokens.
/// This is what disambiguates "apple" to $company in "what is the
/// headquarter of apple?" — "headquarter" carries a $company affinity.
class Taxonomy {
 public:
  Taxonomy() = default;
  Taxonomy(const Taxonomy&) = delete;
  Taxonomy& operator=(const Taxonomy&) = delete;
  Taxonomy(Taxonomy&&) = default;
  Taxonomy& operator=(Taxonomy&&) = default;

  /// Interns a category by display name (convention: leading '$').
  CategoryId AddCategory(std::string_view name);

  /// Registers `weight` of evidence that `entity` belongs to `category`.
  /// P(c|e) is the normalized weight vector. Accumulates on repeat calls.
  void AddEntityCategory(rdf::TermId entity, CategoryId category,
                         double weight);

  /// Registers a context-word affinity for `category` (non-negative).
  /// Words are matched lowercase-exact against question tokens.
  void AddContextAffinity(CategoryId category, std::string_view word,
                          double affinity);

  /// P(c|e): the entity's categories with normalized prior probabilities,
  /// sorted by descending probability (ties broken by CategoryId).
  std::vector<ScoredCategory> CategoriesOf(rdf::TermId entity) const;

  /// Context-aware conceptualization P(c|q,e): priors reweighted by the
  /// context tokens (the question minus the entity mention), normalized,
  /// sorted descending. Falls back to CategoriesOf when no token matches.
  std::vector<ScoredCategory> Conceptualize(
      rdf::TermId entity, std::span<const std::string> context_tokens) const;

  const std::string& CategoryName(CategoryId id) const {
    return names_.GetString(id);
  }
  std::optional<CategoryId> LookupCategory(std::string_view name) const {
    return names_.Lookup(name);
  }
  size_t num_categories() const { return names_.size(); }

  /// True when the entity has at least one category.
  bool HasCategories(rdf::TermId entity) const {
    return entity_categories_.count(entity) > 0;
  }

  /// All entities carrying `category` (any weight), sorted by id. Linear in
  /// the taxonomy size; used by the question-variant solver's per-category
  /// scans, not by the online BFQ path.
  std::vector<rdf::TermId> EntitiesWithCategory(CategoryId category) const;

 private:
  rdf::Dictionary names_;
  std::unordered_map<rdf::TermId, std::vector<std::pair<CategoryId, double>>>
      entity_categories_;
  // affinities_[category][word] = affinity weight.
  std::vector<std::unordered_map<std::string, double>> affinities_;
};

}  // namespace kbqa::taxonomy

#endif  // KBQA_TAXONOMY_TAXONOMY_H_
