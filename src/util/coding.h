#ifndef KBQA_UTIL_CODING_H_
#define KBQA_UTIL_CODING_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace kbqa::util {

/// Byte-oriented integer and string codecs shared by the snapshot formats
/// (rdf snapshot v3, compressed expanded-KB blocks).
///
/// Conventions:
///  - Encoders append to a `std::string*` byte sink and cannot fail.
///  - Decoders take `[p, limit)` byte ranges, never read past `limit`, and
///    report malformed input (truncation, varint overflow, impossible
///    lengths) by returning nullptr / false with `*out` unspecified. They
///    never allocate proportionally to a corrupt length field before
///    validating it against the remaining input, so a bit-flipped file
///    yields a clean decode error rather than a bad_alloc.

// ---------------------------------------------------------------- varint --

/// LEB128 unsigned varint: 7 value bits per byte, high bit = continuation.
inline void PutVarint64(std::string* dst, uint64_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  dst->push_back(static_cast<char>(v));
}

inline void PutVarint32(std::string* dst, uint32_t v) {
  PutVarint64(dst, v);
}

/// Decodes one varint from [p, limit). Returns the byte past the varint,
/// or nullptr on truncation or overflow (more than 10 bytes / value bits
/// beyond 64).
inline const uint8_t* GetVarint64(const uint8_t* p, const uint8_t* limit,
                                  uint64_t* value) {
  uint64_t result = 0;
  for (int shift = 0; shift < 64 && p < limit; shift += 7) {
    const uint8_t byte = *p++;
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      // Reject non-canonical high bits that shifted out of range.
      if (shift == 63 && (byte & 0x7E) != 0) return nullptr;
      *value = result;
      return p;
    }
  }
  return nullptr;  // ran off the buffer or past 64 bits
}

inline const uint8_t* GetVarint32(const uint8_t* p, const uint8_t* limit,
                                  uint32_t* value) {
  uint64_t wide = 0;
  const uint8_t* q = GetVarint64(p, limit, &wide);
  if (q == nullptr || wide > UINT32_MAX) return nullptr;
  *value = static_cast<uint32_t>(wide);
  return q;
}

// ---------------------------------------------------------------- zigzag --

/// Maps signed to unsigned so small-magnitude negatives stay short varints.
constexpr uint64_t ZigZagEncode64(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

constexpr int64_t ZigZagDecode64(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

// ------------------------------------------------------------- fixed-width --

inline void PutFixed64(std::string* dst, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    dst->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

inline const uint8_t* GetFixed64(const uint8_t* p, const uint8_t* limit,
                                 uint64_t* value) {
  if (limit - p < 8) return nullptr;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  *value = v;
  return p + 8;
}

// ------------------------------------------------------------- delta runs --

/// Encodes a non-decreasing u32 sequence as: varint count, varint first
/// value, then varint deltas. Empty sequences encode as a bare zero count.
inline void AppendDeltaRun32(std::string* dst, const uint32_t* values,
                             size_t n) {
  PutVarint64(dst, n);
  for (size_t i = 0; i < n; ++i) {
    PutVarint32(dst, i == 0 ? values[0] : values[i] - values[i - 1]);
  }
}

/// Decodes a run written by AppendDeltaRun32, appending to `*out`.
/// Fails on truncation, on a count larger than the remaining bytes could
/// possibly encode (1 byte minimum per value), or on delta overflow past
/// UINT32_MAX — all markers of corruption.
inline bool DecodeDeltaRun32(const uint8_t** p, const uint8_t* limit,
                             std::vector<uint32_t>* out) {
  uint64_t n = 0;
  const uint8_t* q = GetVarint64(*p, limit, &n);
  if (q == nullptr || n > static_cast<uint64_t>(limit - q)) return false;
  out->reserve(out->size() + static_cast<size_t>(n));
  uint64_t prev = 0;
  for (uint64_t i = 0; i < n; ++i) {
    uint32_t delta = 0;
    q = GetVarint32(q, limit, &delta);
    if (q == nullptr) return false;
    prev = (i == 0) ? delta : prev + delta;
    if (prev > UINT32_MAX) return false;
    out->push_back(static_cast<uint32_t>(prev));
  }
  *p = q;
  return true;
}

/// u64 variant (CSR offset arrays). Same contract as the u32 run.
inline void AppendDeltaRun64(std::string* dst, const uint64_t* values,
                             size_t n) {
  PutVarint64(dst, n);
  for (size_t i = 0; i < n; ++i) {
    PutVarint64(dst, i == 0 ? values[0] : values[i] - values[i - 1]);
  }
}

inline bool DecodeDeltaRun64(const uint8_t** p, const uint8_t* limit,
                             std::vector<uint64_t>* out) {
  uint64_t n = 0;
  const uint8_t* q = GetVarint64(*p, limit, &n);
  if (q == nullptr || n > static_cast<uint64_t>(limit - q)) return false;
  out->reserve(out->size() + static_cast<size_t>(n));
  uint64_t prev = 0;
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t delta = 0;
    q = GetVarint64(q, limit, &delta);
    if (q == nullptr) return false;
    const uint64_t next = (i == 0) ? delta : prev + delta;
    if (i != 0 && next < prev) return false;  // wrapped: corrupt
    prev = next;
    out->push_back(prev);
  }
  *p = q;
  return true;
}

// ------------------------------------------------------------ bit packing --

/// Bits needed to represent `max_value` (0 for a value of 0).
constexpr int BitWidth32(uint32_t max_value) {
  int bits = 0;
  while (max_value != 0) {
    ++bits;
    max_value >>= 1;
  }
  return bits;
}

/// Packs `n` values of `bits` bits each (LSB-first within a little-endian
/// bit stream) into ceil(n*bits/8) bytes. `bits == 0` emits nothing (all
/// values are zero). Values must fit in `bits` bits.
inline void AppendBitPacked(std::string* dst, const uint32_t* values,
                            size_t n, int bits) {
  if (bits == 0) return;
  uint64_t acc = 0;
  int acc_bits = 0;
  for (size_t i = 0; i < n; ++i) {
    acc |= static_cast<uint64_t>(values[i]) << acc_bits;
    acc_bits += bits;
    while (acc_bits >= 8) {
      dst->push_back(static_cast<char>(acc & 0xFF));
      acc >>= 8;
      acc_bits -= 8;
    }
  }
  if (acc_bits > 0) dst->push_back(static_cast<char>(acc & 0xFF));
}

/// Decodes `n` bit-packed values of width `bits`, appending to `*out`.
/// Fails when the remaining input is shorter than ceil(n*bits/8) bytes.
inline bool DecodeBitPacked(const uint8_t** p, const uint8_t* limit, size_t n,
                            int bits, std::vector<uint32_t>* out) {
  if (bits < 0 || bits > 32) return false;
  if (bits == 0) {
    out->insert(out->end(), n, 0);
    return true;
  }
  const uint64_t need_bytes = (static_cast<uint64_t>(n) * bits + 7) / 8;
  if (need_bytes > static_cast<uint64_t>(limit - *p)) return false;
  const uint8_t* q = *p;
  uint64_t acc = 0;
  int acc_bits = 0;
  const uint32_t mask =
      bits == 32 ? UINT32_MAX : ((uint32_t{1} << bits) - 1);
  out->reserve(out->size() + n);
  for (size_t i = 0; i < n; ++i) {
    while (acc_bits < bits) {
      acc |= static_cast<uint64_t>(*q++) << acc_bits;
      acc_bits += 8;
    }
    out->push_back(static_cast<uint32_t>(acc & mask));
    acc >>= bits;
    acc_bits -= bits;
  }
  *p = *p + need_bytes;
  return true;
}

// ----------------------------------------------------------- front coding --

/// Appends `s` encoded against the previous string in the block: varint
/// shared-prefix length, varint suffix length, suffix bytes. The first
/// string of a block encodes against an empty `prev`.
inline void AppendFrontCoded(std::string* dst, std::string_view prev,
                             std::string_view s) {
  size_t shared = 0;
  const size_t bound = prev.size() < s.size() ? prev.size() : s.size();
  while (shared < bound && prev[shared] == s[shared]) ++shared;
  PutVarint64(dst, shared);
  PutVarint64(dst, s.size() - shared);
  dst->append(s.data() + shared, s.size() - shared);
}

/// Decodes one front-coded string against `prev` into `*out`. Fails when
/// the shared length exceeds `prev` or the suffix runs past `limit`.
inline bool DecodeFrontCoded(const uint8_t** p, const uint8_t* limit,
                             const std::string& prev, std::string* out) {
  uint64_t shared = 0, suffix = 0;
  const uint8_t* q = GetVarint64(*p, limit, &shared);
  if (q == nullptr) return false;
  q = GetVarint64(q, limit, &suffix);
  if (q == nullptr) return false;
  if (shared > prev.size()) return false;
  if (suffix > static_cast<uint64_t>(limit - q)) return false;
  out->assign(prev, 0, static_cast<size_t>(shared));
  out->append(reinterpret_cast<const char*>(q), static_cast<size_t>(suffix));
  *p = q + suffix;
  return true;
}

// -------------------------------------------------------------- checksums --

/// FNV-1a 64-bit hash — the block checksum of the v3 snapshot formats.
/// Not cryptographic; catches the truncation / bit-flip corruption class.
inline uint64_t Fnv1a64(const void* data, size_t n) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace kbqa::util

#endif  // KBQA_UTIL_CODING_H_
