#ifndef KBQA_UTIL_DISTRIBUTIONS_H_
#define KBQA_UTIL_DISTRIBUTIONS_H_

#include <cassert>
#include <cmath>
#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace kbqa {

/// Zipf sampler with a precomputed CDF. O(n) construction, O(log n) per
/// sample. Use when drawing many samples from the same (n, s) distribution —
/// e.g. entity popularity in the synthetic world generator.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s) : cdf_(n) {
    assert(n > 0);
    double acc = 0;
    for (size_t i = 0; i < n; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = acc;
    }
    for (double& c : cdf_) c /= acc;
  }

  /// Draws an index in [0, n).
  size_t Sample(Rng& rng) const {
    double r = rng.UniformDouble();
    size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < r) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

/// Discrete sampler over arbitrary non-negative weights with a precomputed
/// CDF. O(log n) per sample.
class DiscreteSampler {
 public:
  explicit DiscreteSampler(const std::vector<double>& weights)
      : cdf_(weights.size()) {
    assert(!weights.empty());
    double acc = 0;
    for (size_t i = 0; i < weights.size(); ++i) {
      assert(weights[i] >= 0);
      acc += weights[i];
      cdf_[i] = acc;
    }
    assert(acc > 0);
    for (double& c : cdf_) c /= acc;
  }

  size_t Sample(Rng& rng) const {
    double r = rng.UniformDouble();
    size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < r) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace kbqa

#endif  // KBQA_UTIL_DISTRIBUTIONS_H_
