#ifndef KBQA_UTIL_LRU_CACHE_H_
#define KBQA_UTIL_LRU_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace kbqa {

/// Memory-budgeted, sharded LRU cache.
///
/// The key space is hash-partitioned over N independent shards (N rounded
/// up to a power of two), each guarded by its own mutex and holding its own
/// recency list, so concurrent lookups on different shards never contend.
/// Every entry is byte-accounted as `sizeof(Key) + payload_bytes` (the
/// caller states the payload size at insert time).
///
/// The budget is enforced *globally*, not per shard: an atomic byte total
/// is reserved before an entry is admitted, and when the reservation does
/// not fit the inserter evicts LRU tails starting from its own shard and
/// borrowing round-robin from siblings. A key-skewed workload can therefore
/// fill the entire budget from one hot shard instead of thrashing that
/// shard's 1/N slice while the others sit empty. Eviction order is LRU
/// within a shard and approximately LRU across shards. A budget of 0 means
/// unbounded: nothing is ever evicted and the cache degenerates to a
/// sharded memo table.
///
/// Accounting invariant: shard byte counters are only incremented after a
/// successful global reservation and decremented before the global counter
/// is released, so `GetStats().bytes <= budget_bytes()` holds at every
/// instant, including mid-insert under concurrency.
///
/// Lookups are copy-out: `Get` copies the stored value into the caller's
/// buffer under the shard lock. Returning references would pin entries
/// against eviction (or dangle after one); copying keeps the locking
/// trivial and the eviction policy exact. Values are expected to be small
/// (e.g. the per-(entity, path) value vectors of the online engine).
///
/// Thread safety: all methods are safe to call concurrently. Eviction
/// never holds two shard locks at once, so borrowing cannot deadlock.
template <typename Key, typename Value>
class ShardedLruCache {
 public:
  struct Stats {
    uint64_t entries = 0;
    uint64_t bytes = 0;      // summed entry charges currently resident
    uint64_t evictions = 0;  // entries dropped to make room since creation
  };

  /// `budget_bytes == 0` means unbounded. `num_shards` is rounded up to a
  /// power of two (minimum 1).
  explicit ShardedLruCache(uint64_t budget_bytes, size_t num_shards = 16)
      : budget_bytes_(budget_bytes) {
    size_t shards = 1;
    while (shards < num_shards) shards <<= 1;
    shards_ = std::vector<Shard>(shards);
  }

  /// Copies the value for `key` into `*out` and promotes the entry to
  /// most-recently-used. Returns false (leaving `*out` untouched) when the
  /// key is absent.
  bool Get(const Key& key, Value* out) {
    Shard& shard = ShardFor(key);
    MutexLock lock(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) return false;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    *out = it->second->value;
    return true;
  }

  /// Inserts `value` under `key`, charging `sizeof(Key) + payload_bytes`
  /// against the global budget and evicting least-recently-used entries —
  /// from this key's shard first, then borrowing from sibling shards — as
  /// needed; returns how many entries were evicted. If the key is already
  /// present its value is REPLACED and the books are re-charged by the
  /// size delta (the new reservation is kept, the old entry's charge is
  /// released), so a same-key insert with a different-sized value leaves
  /// the accounting exact. An entry whose charge alone exceeds the whole
  /// budget is not cached at all.
  uint64_t Insert(const Key& key, Value value, uint64_t payload_bytes) {
    const uint64_t charge = sizeof(Key) + payload_bytes;
    const size_t home = ShardIndexFor(key);
    uint64_t evicted = 0;
    if (budget_bytes_ != 0) {
      if (charge > budget_bytes_) return 0;
      // Reserve the charge against the global total before touching the
      // shard. Every pass either wins the CAS, evicts a victim, or learns
      // the budget is fully held by in-flight reservations and gives up
      // (a cache insert is best-effort). A replacement therefore briefly
      // holds old + new charge; the old charge is released under the
      // shard lock below. The eviction loop may evict this very key —
      // that is fine, the insert then lands as a fresh entry.
      while (true) {
        uint64_t current = total_bytes_.load(std::memory_order_relaxed);
        if (current + charge <= budget_bytes_) {
          if (total_bytes_.compare_exchange_weak(
                  current, current + charge, std::memory_order_relaxed)) {
            break;
          }
          continue;  // lost the race; re-read
        }
        if (!EvictOne(home)) return evicted;
        ++evicted;
      }
    }
    Shard& shard = shards_[home];
    MutexLock lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      // Replace in place: promote, swap the value, re-book the charge
      // delta. Shard bytes move before the global release so the
      // "reserved >= committed" invariant holds throughout.
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      Entry& entry = *it->second;
      const uint64_t old_charge = entry.charge;
      entry.value = std::move(value);
      entry.charge = charge;
      shard.bytes += charge;
      shard.bytes -= old_charge;
      if (budget_bytes_ != 0) {
        total_bytes_.fetch_sub(old_charge, std::memory_order_relaxed);
      }
      return evicted;
    }
    shard.lru.push_front(Entry{key, std::move(value), charge});
    shard.index.emplace(key, shard.lru.begin());
    shard.bytes += charge;
    return evicted;
  }

  /// Removes `key` if present, releasing its charge from the shard books
  /// and the global reservation. Returns true when an entry was removed.
  bool Erase(const Key& key) {
    Shard& shard = ShardFor(key);
    MutexLock lock(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) return false;
    const uint64_t charge = it->second->charge;
    shard.bytes -= charge;
    shard.lru.erase(it->second);
    shard.index.erase(it);
    if (budget_bytes_ != 0) {
      total_bytes_.fetch_sub(charge, std::memory_order_relaxed);
    }
    return true;
  }

  /// Drops every entry, returning the books (shard and global) to zero.
  /// Entries are released shard by shard — a concurrent insert may land in
  /// an already-cleared shard and survive; Clear makes no atomicity claim
  /// across shards. Cleared entries do not count as evictions.
  void Clear() {
    for (Shard& shard : shards_) {
      MutexLock lock(shard.mu);
      const uint64_t released = shard.bytes;
      shard.lru.clear();
      shard.index.clear();
      shard.bytes = 0;
      if (budget_bytes_ != 0 && released != 0) {
        total_bytes_.fetch_sub(released, std::memory_order_relaxed);
      }
    }
  }

  /// Merged accounting across shards. `entries`/`bytes` are a point-in-time
  /// view; `evictions` is monotone.
  Stats GetStats() const {
    Stats stats;
    for (const Shard& shard : shards_) {
      MutexLock lock(shard.mu);
      stats.entries += shard.index.size();
      stats.bytes += shard.bytes;
      stats.evictions += shard.evictions;
    }
    return stats;
  }

  uint64_t budget_bytes() const { return budget_bytes_; }
  size_t num_shards() const { return shards_.size(); }

  /// Bytes currently reserved against the budget: committed entries plus
  /// in-flight insert reservations. Quiescent, this equals GetStats().bytes
  /// exactly — the accounting-regression tests assert both return to zero
  /// after insert/replace/erase storms. Always 0 when unbounded.
  uint64_t reserved_bytes() const {
    return total_bytes_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    Key key;
    Value value;
    uint64_t charge = 0;
  };

  struct Shard {
    mutable Mutex mu;
    /// Front = most recently used. std::list keeps iterators stable across
    /// splice, so the index maps keys straight to list nodes.
    std::list<Entry> lru GUARDED_BY(mu);
    std::unordered_map<Key, typename std::list<Entry>::iterator> index
        GUARDED_BY(mu);
    uint64_t bytes GUARDED_BY(mu) = 0;
    uint64_t evictions GUARDED_BY(mu) = 0;
  };

  size_t ShardIndexFor(const Key& key) const {
    // std::hash of an integer key is commonly the identity; mix so shard
    // selection doesn't alias with any structure in the key encoding.
    uint64_t h = static_cast<uint64_t>(std::hash<Key>{}(key));
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return static_cast<size_t>(h & (shards_.size() - 1));
  }

  Shard& ShardFor(const Key& key) { return shards_[ShardIndexFor(key)]; }

  /// Evicts one LRU tail, preferring `home` and then borrowing round-robin
  /// from sibling shards, taking one shard lock at a time. Returns false
  /// when every shard is empty (nothing left to evict).
  bool EvictOne(size_t home) {
    const size_t n = shards_.size();
    for (size_t i = 0; i < n; ++i) {
      Shard& shard = shards_[(home + i) & (n - 1)];
      MutexLock lock(shard.mu);
      if (shard.lru.empty()) continue;
      Entry& victim = shard.lru.back();
      shard.bytes -= victim.charge;
      const uint64_t charge = victim.charge;
      shard.index.erase(victim.key);
      shard.lru.pop_back();
      ++shard.evictions;
      total_bytes_.fetch_sub(charge, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  uint64_t budget_bytes_ = 0;
  /// Bytes reserved against the budget: committed shard bytes plus any
  /// in-flight insert reservations. Always >= GetStats().bytes.
  std::atomic<uint64_t> total_bytes_{0};
  std::vector<Shard> shards_;
};

}  // namespace kbqa

#endif  // KBQA_UTIL_LRU_CACHE_H_
