#include "util/memory_budget.h"

#include <unistd.h>

#include <cstdio>
#include <string>
#include <utility>

#include "obs/metrics.h"

namespace kbqa::util {

MemoryBudget::MemoryBudget(uint64_t total_bytes,
                           std::vector<Component> components)
    : total_bytes_(total_bytes), components_(std::move(components)) {
  double weight_sum = 0;
  for (const Component& c : components_) {
    if (c.weight > 0) weight_sum += c.weight;
  }
  slices_.resize(components_.size(), 0);
  if (total_bytes_ == 0 || weight_sum <= 0) return;
  for (size_t i = 0; i < components_.size(); ++i) {
    const double w = components_[i].weight > 0 ? components_[i].weight : 0;
    slices_[i] = static_cast<uint64_t>(
        static_cast<double>(total_bytes_) * (w / weight_sum));
  }
}

uint64_t MemoryBudget::BudgetFor(std::string_view name) const {
  for (size_t i = 0; i < components_.size(); ++i) {
    if (components_[i].name == name) return slices_[i];
  }
  return 0;
}

void MemoryBudget::Publish(std::string_view name, uint64_t bytes) {
  std::string gauge = "mem.";
  gauge.append(name);
  gauge += ".bytes";
  obs::MetricsRegistry::Global().GetGauge(gauge)->Set(
      static_cast<double>(bytes));
}

void MemoryBudget::PublishBudgets() const {
  obs::MetricsRegistry::Global()
      .GetGauge("mem.budget.bytes")
      ->Set(static_cast<double>(total_bytes_));
  for (size_t i = 0; i < components_.size(); ++i) {
    std::string gauge = "mem.";
    gauge.append(components_[i].name);
    gauge += ".budget_bytes";
    obs::MetricsRegistry::Global().GetGauge(gauge)->Set(
        static_cast<double>(slices_[i]));
  }
}

uint64_t ProcessResidentBytes() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long size_pages = 0;     // NOLINT(runtime/int)
  unsigned long long resident_pages = 0; // NOLINT(runtime/int)
  const int matched =
      std::fscanf(f, "%llu %llu", &size_pages, &resident_pages);
  std::fclose(f);
  if (matched != 2) return 0;
  const long page = sysconf(_SC_PAGESIZE);  // NOLINT(runtime/int)
  if (page <= 0) return 0;
  return resident_pages * static_cast<uint64_t>(page);
}

}  // namespace kbqa::util
