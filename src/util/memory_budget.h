#ifndef KBQA_UTIL_MEMORY_BUDGET_H_
#define KBQA_UTIL_MEMORY_BUDGET_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace kbqa::util {

/// Arbitrates one process-level byte budget across named memory consumers
/// (value cache, answer cache, decoded expanded-KB blocks, ...).
///
/// Construction takes the total budget plus a weighted component list; each
/// component's slice is `total * weight / sum(weights)`, computed once —
/// the arbiter is a static split, not a runtime reclaimer. A total of 0
/// means "unbudgeted": every component slice is 0, which downstream code
/// (ShardedLruCache, the paged expanded-KB reader) interprets as
/// unbounded, matching the pre-budget behavior.
///
/// `Publish` exports per-component usage through the global metrics
/// registry as `mem.<component>.bytes` gauges, alongside
/// `mem.<component>.budget_bytes` and the process-wide `mem.budget.bytes`,
/// so a metrics snapshot shows both the split and the live residency.
class MemoryBudget {
 public:
  struct Component {
    std::string name;
    double weight = 1.0;
  };

  MemoryBudget(uint64_t total_bytes, std::vector<Component> components);

  uint64_t total_bytes() const { return total_bytes_; }

  /// The byte slice assigned to `name`; 0 when the total is 0 (unbudgeted)
  /// or the component is unknown.
  uint64_t BudgetFor(std::string_view name) const;

  /// Sets `mem.<name>.bytes` in the global metrics registry to `bytes`.
  /// Unknown names publish too — callers may account one-off consumers —
  /// but get no budget gauge.
  static void Publish(std::string_view name, uint64_t bytes);

  /// Publishes `mem.budget.bytes` and each `mem.<component>.budget_bytes`.
  /// Call once after construction (and again if re-created with new knobs).
  void PublishBudgets() const;

 private:
  uint64_t total_bytes_ = 0;
  std::vector<Component> components_;
  std::vector<uint64_t> slices_;  // parallel to components_
};

/// Current process resident-set size in bytes (Linux /proc/self/statm;
/// 0 where unavailable). Ground truth the mem.* accounting gauges are
/// compared against on /statusz.
uint64_t ProcessResidentBytes();

}  // namespace kbqa::util

#endif  // KBQA_UTIL_MEMORY_BUDGET_H_
