#ifndef KBQA_UTIL_MUTEX_H_
#define KBQA_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace kbqa {

/// std::mutex wrapped as a Clang thread-safety *capability*, so members can
/// be declared `GUARDED_BY(mu_)` and the analysis proves every access holds
/// the lock. The lowercase lock/unlock/try_lock names keep the type a
/// standard Lockable: std::lock_guard<Mutex>, std::unique_lock<Mutex>, and
/// CondVar below all work with it. On GCC the annotations vanish and this
/// is a zero-cost shim over std::mutex.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII lock over Mutex, annotated as a scoped capability: constructing it
/// tells the analysis the mutex is held until end of scope. Direct
/// replacement for std::lock_guard<std::mutex> at annotated call sites.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with Mutex. Wait takes the mutex the caller
/// already holds (REQUIRES tells the analysis so); callers loop on their
/// predicate around Wait — the predicate then lives in the annotated
/// caller's body where guarded reads are checked, instead of inside an
/// unannotatable lambda handed to std::condition_variable::wait.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu` and blocks; reacquires `mu` before
  /// returning. Spurious wakeups happen — always loop on the predicate.
  void Wait(Mutex& mu) REQUIRES(mu) { cv_.wait(mu); }

  /// As Wait, but gives up once `deadline` passes. Returns false on
  /// timeout, true on a notification (or spurious wakeup) — either way the
  /// caller re-checks its predicate, so the return value only distinguishes
  /// "the clock ran out" for callers pacing work (e.g. a batcher's
  /// max-wait window).
  bool WaitUntil(Mutex& mu,
                 std::chrono::steady_clock::time_point deadline) REQUIRES(mu) {
    return cv_.wait_until(mu, deadline) != std::cv_status::timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  /// condition_variable_any works with any Lockable (our Mutex directly) —
  /// slightly heavier than std::condition_variable but it keeps the
  /// capability type in the signature the analysis checks.
  std::condition_variable_any cv_;
};

}  // namespace kbqa

#endif  // KBQA_UTIL_MUTEX_H_
