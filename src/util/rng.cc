#include "util/rng.h"

#include <cmath>

namespace kbqa {

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0;
  for (double w : weights) {
    assert(w >= 0);
    total += w;
  }
  assert(total > 0);
  double r = UniformDouble() * total;
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;  // Floating-point slack lands on the last item.
}

size_t Rng::Zipf(size_t n, double s) {
  assert(n > 0);
  assert(s > 0);
  // Harmonic normalization; n is generator-scale (<= ~1e6) so a scan is fine.
  double h = 0;
  for (size_t i = 1; i <= n; ++i) h += 1.0 / std::pow(static_cast<double>(i), s);
  double r = UniformDouble() * h;
  double acc = 0;
  for (size_t i = 1; i <= n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i), s);
    if (r < acc) return i - 1;
  }
  return n - 1;
}

}  // namespace kbqa
