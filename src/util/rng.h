#ifndef KBQA_UTIL_RNG_H_
#define KBQA_UTIL_RNG_H_

#include <cassert>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace kbqa {

/// SplitMix64 — used to seed Xoshiro and for cheap stateless mixing.
/// Reference: Vigna, http://prng.di.unimi.it/splitmix64.c
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Deterministic PRNG (xoshiro256**). All randomness in the repository flows
/// through seeded instances of this class so every experiment is reproducible
/// bit-for-bit. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the four lanes from SplitMix64(seed).
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    uint64_t sm = seed;
    for (auto& lane : s_) lane = SplitMix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }

  result_type operator()() { return Next(); }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  uint64_t Uniform(uint64_t bound) {
    assert(bound > 0);
    __uint128_t m = static_cast<__uint128_t>(Next()) * bound;
    uint64_t low = static_cast<uint64_t>(m);
    if (low < bound) {
      uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
      while (low < threshold) {
        m = static_cast<__uint128_t>(Next()) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Weights must be non-negative with a positive sum.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Zipf-distributed value in [0, n) with exponent `s` (s > 0). Uses the
  /// inverse-CDF over precomputable harmonic mass done by linear scan —
  /// adequate for generator-scale n.
  size_t Zipf(size_t n, double s);

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = Uniform(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Returns a child RNG derived deterministically from this one and `salt`.
  /// Use to give each generation subsystem an independent stream.
  Rng Fork(uint64_t salt) {
    uint64_t s = Next() ^ (salt * 0x9E3779B97F4A7C15ULL);
    return Rng(s);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

/// Zipfian generator over ranks [0, n) with exponent `theta` (0 < theta,
/// theta != 1 handled too): rank 0 is the most popular item. Uses the
/// Gray et al. / YCSB closed-form inverse transform, so construction is
/// O(n) (one zeta(n, theta) accumulation) and every Sample is O(1) — no
/// per-sample CDF scan or binary search, which matters when a load
/// generator draws a sample per simulated request. The same (n, theta,
/// draw sequence) always yields the same ranks.
class ZipfianGenerator {
 public:
  ZipfianGenerator(size_t n, double theta)
      : n_(n), theta_(theta), zeta_(Zeta(n, theta)) {
    assert(n > 0);
    assert(theta > 0);
    assert(theta != 1.0);  // the closed form needs 1/(1-theta)
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - Zeta(2, theta) / zeta_);
  }

  /// Draws a rank in [0, n): rank 0 carries the most probability mass.
  size_t Sample(Rng& rng) const {
    const double u = rng.UniformDouble();
    const double uz = u * zeta_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    const size_t rank = static_cast<size_t>(
        static_cast<double>(n_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return rank >= n_ ? n_ - 1 : rank;
  }

  size_t size() const { return n_; }

  /// Generalized harmonic number H_{n,theta} = sum_{i=1..n} 1/i^theta.
  static double Zeta(size_t n, double theta) {
    double sum = 0;
    for (size_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }

 private:
  size_t n_;
  double theta_;
  double zeta_;
  double alpha_ = 0;
  double eta_ = 0;
};

/// TPC-C's non-uniform random function (clause 2.1.6): composes two
/// uniform draws with a bitwise OR and a run-constant offset `c`, yielding
/// a skewed-but-spread distribution over [x, y] — the standard way a
/// driven benchmark picks "hot" rows without a precomputed table.
/// `a` must be one less than a power of two (255/1023/8191 in TPC-C).
inline uint64_t NURand(Rng& rng, uint64_t a, uint64_t x, uint64_t y,
                       uint64_t c) {
  assert(x <= y);
  const uint64_t range = y - x + 1;
  const uint64_t lead = rng.Uniform(a + 1);
  const uint64_t body = x + rng.Uniform(range);
  return (((lead | body) + c) % range) + x;
}

}  // namespace kbqa

#endif  // KBQA_UTIL_RNG_H_
