#ifndef KBQA_UTIL_RNG_H_
#define KBQA_UTIL_RNG_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace kbqa {

/// SplitMix64 — used to seed Xoshiro and for cheap stateless mixing.
/// Reference: Vigna, http://prng.di.unimi.it/splitmix64.c
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Deterministic PRNG (xoshiro256**). All randomness in the repository flows
/// through seeded instances of this class so every experiment is reproducible
/// bit-for-bit. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the four lanes from SplitMix64(seed).
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    uint64_t sm = seed;
    for (auto& lane : s_) lane = SplitMix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }

  result_type operator()() { return Next(); }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  uint64_t Uniform(uint64_t bound) {
    assert(bound > 0);
    __uint128_t m = static_cast<__uint128_t>(Next()) * bound;
    uint64_t low = static_cast<uint64_t>(m);
    if (low < bound) {
      uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
      while (low < threshold) {
        m = static_cast<__uint128_t>(Next()) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Weights must be non-negative with a positive sum.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Zipf-distributed value in [0, n) with exponent `s` (s > 0). Uses the
  /// inverse-CDF over precomputable harmonic mass done by linear scan —
  /// adequate for generator-scale n.
  size_t Zipf(size_t n, double s);

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = Uniform(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Returns a child RNG derived deterministically from this one and `salt`.
  /// Use to give each generation subsystem an independent stream.
  Rng Fork(uint64_t salt) {
    uint64_t s = Next() ^ (salt * 0x9E3779B97F4A7C15ULL);
    return Rng(s);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

}  // namespace kbqa

#endif  // KBQA_UTIL_RNG_H_
