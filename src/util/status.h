#ifndef KBQA_UTIL_STATUS_H_
#define KBQA_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace kbqa {

/// Error taxonomy for fallible library operations. Exceptions never cross
/// library boundaries; every fallible public call returns a `Status` or a
/// `Result<T>`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  kIoError,
  kCorruption,
  kDeadlineExceeded,
  kUnavailable,
};

/// Returns a stable, human-readable name for a status code ("NotFound", ...).
const char* StatusCodeToString(StatusCode code);

/// RocksDB-style status object. Cheap to copy in the OK case (no message
/// allocated); carries a code and a free-form message otherwise.
///
/// `[[nodiscard]]` on the class makes silently dropping any returned
/// Status a compile error (-Werror=unused-result): an ignored import or
/// serialize failure is a latent corruption bug, not a style nit. The only
/// sanctioned escape hatch is a `(void)` cast carrying a comment that
/// justifies why the failure is genuinely irrelevant at that site.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Minimal StatusOr: either a value or a non-OK status. Access to `value()`
/// on an error Result is a programming error (asserted in debug builds).
/// `[[nodiscard]]` like Status: a dropped Result discards both the value
/// and the error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value: `return my_value;`.
  Result(T value) : status_(Status::Ok()), value_(std::move(value)) {}
  /// Implicit construction from an error status: `return Status::NotFound(..)`.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the contained value or `fallback` when in the error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace kbqa

/// Propagates a non-OK status to the caller, RocksDB-style.
#define KBQA_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::kbqa::Status _kbqa_status = (expr);     \
    if (!_kbqa_status.ok()) return _kbqa_status; \
  } while (0)

#endif  // KBQA_UTIL_STATUS_H_
