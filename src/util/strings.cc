#include "util/strings.h"

#include <cctype>

namespace kbqa {

std::vector<std::string> Split(std::string_view text, char sep,
                               bool skip_empty) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      if (i > start || !skip_empty) out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces, std::string_view sep) {
  return JoinRange(pieces, 0, pieces.size(), sep);
}

std::string JoinRange(const std::vector<std::string>& pieces, size_t begin,
                      size_t end, std::string_view sep) {
  std::string out;
  for (size_t i = begin; i < end && i < pieces.size(); ++i) {
    if (i > begin) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t b = 0, e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool Contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

std::string ReplaceAll(std::string_view text, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(text);
  std::string out;
  size_t pos = 0;
  while (true) {
    size_t hit = text.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(text.substr(pos));
      return out;
    }
    out.append(text.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
}

bool IsNumber(std::string_view text) {
  if (text.empty()) return false;
  for (char c : text) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

long long ParseNonNegativeInt(std::string_view text) {
  if (!IsNumber(text) || text.size() > 18) return -1;
  long long v = 0;
  for (char c : text) v = v * 10 + (c - '0');
  return v;
}

uint64_t HashString(std::string_view text) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : text) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace kbqa
