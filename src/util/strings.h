#ifndef KBQA_UTIL_STRINGS_H_
#define KBQA_UTIL_STRINGS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace kbqa {

/// Splits `text` on `sep`; consecutive separators yield empty pieces unless
/// `skip_empty` is set.
std::vector<std::string> Split(std::string_view text, char sep,
                               bool skip_empty = false);

/// Splits on ASCII whitespace runs; never yields empty pieces.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Joins `pieces` with `sep`.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);
/// Joins the range [begin, end) of `pieces` with `sep`.
std::string JoinRange(const std::vector<std::string>& pieces, size_t begin,
                      size_t end, std::string_view sep);

/// ASCII-lowercases a copy of `text`.
std::string ToLower(std::string_view text);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// True when `needle` occurs in `haystack`.
bool Contains(std::string_view haystack, std::string_view needle);

/// Replaces all occurrences of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view text, std::string_view from,
                       std::string_view to);

/// True when every character is an ASCII digit (and text is non-empty).
bool IsNumber(std::string_view text);

/// Parses a non-negative integer; returns -1 on malformed input.
long long ParseNonNegativeInt(std::string_view text);

/// 64-bit FNV-1a hash of `text`. Stable across platforms; used for
/// dictionary bucketing and deterministic tie-breaking.
uint64_t HashString(std::string_view text);

/// Combines two 64-bit hashes (boost::hash_combine-style, 64-bit constants).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

}  // namespace kbqa

#endif  // KBQA_UTIL_STRINGS_H_
