#include "util/table_printer.h"

#include <cassert>
#include <cstdio>

namespace kbqa {

void TablePrinter::SetHeader(std::vector<std::string> header) {
  assert(rows_.empty());
  header_ = std::move(header);
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Num(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string TablePrinter::Int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      for (size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
      os << " | ";
    }
    os << '\n';
  };

  os << '\n' << title_ << '\n';
  size_t total = 1;
  for (size_t w : widths) total += w + 3;
  os << std::string(total, '-') << '\n';
  print_row(header_);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
  os << std::string(total, '-') << '\n';
}

}  // namespace kbqa
