#ifndef KBQA_UTIL_TABLE_PRINTER_H_
#define KBQA_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace kbqa {

/// Aligned plain-text table writer used by the benchmark harness to print
/// rows in the shape of the paper's tables. Columns are sized to content;
/// numeric formatting is the caller's responsibility (pass strings).
class TablePrinter {
 public:
  /// `title` is printed above the table, e.g. "Table 7: Results on QALD-5".
  explicit TablePrinter(std::string title) : title_(std::move(title)) {}

  /// Sets the header row. Must be called before AddRow.
  void SetHeader(std::vector<std::string> header);

  /// Appends a data row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Formats a double with `digits` decimal places.
  static std::string Num(double v, int digits = 2);
  /// Formats an integer.
  static std::string Int(long long v);

  /// Renders the table to `os`.
  void Print(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace kbqa

#endif  // KBQA_UTIL_TABLE_PRINTER_H_
