#ifndef KBQA_UTIL_THREAD_ANNOTATIONS_H_
#define KBQA_UTIL_THREAD_ANNOTATIONS_H_

/// Clang thread-safety-analysis attribute macros (Abseil-style spellings).
///
/// Under Clang these expand to the `thread_safety` attributes checked by
/// `-Wthread-safety` (the CI static-analysis job builds with
/// `-Werror=thread-safety`); under GCC and every other compiler they are
/// no-ops, so annotated code builds everywhere. Use them to declare which
/// mutex guards which member (`GUARDED_BY`), which capability a function
/// needs on entry (`REQUIRES` / the legacy `EXCLUSIVE_LOCKS_REQUIRED`
/// spelling), and which functions acquire or release locks — the analysis
/// then proves at compile time that every guarded access holds the right
/// lock. See util/mutex.h for the annotated Mutex/MutexLock/CondVar
/// primitives the annotations are written against.

#if defined(__clang__) && defined(__has_attribute)
#define KBQA_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define KBQA_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op outside Clang
#endif

/// Declares a type to be a capability ("mutex"-like). Required on lock
/// types so REQUIRES/ACQUIRE arguments type-check.
#define CAPABILITY(x) KBQA_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Declares an RAII type whose constructor acquires and destructor
/// releases a capability (see MutexLock).
#define SCOPED_CAPABILITY KBQA_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Data member `x` may only be read or written while holding the named
/// capability.
#define GUARDED_BY(x) KBQA_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointer member: the *pointee* is guarded by the named capability.
#define PT_GUARDED_BY(x) KBQA_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Lock-ordering declarations (deadlock detection).
#define ACQUIRED_BEFORE(...) \
  KBQA_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  KBQA_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

/// The function may only be called while holding the named capabilities
/// exclusively (they are not acquired or released by the call).
#define REQUIRES(...) \
  KBQA_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  KBQA_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/// Legacy spellings of REQUIRES/REQUIRES_SHARED, kept because much
/// existing annotation literature (and the issue tracker) uses them.
#define EXCLUSIVE_LOCKS_REQUIRED(...) \
  KBQA_THREAD_ANNOTATION_ATTRIBUTE(exclusive_locks_required(__VA_ARGS__))
#define SHARED_LOCKS_REQUIRED(...) \
  KBQA_THREAD_ANNOTATION_ATTRIBUTE(shared_locks_required(__VA_ARGS__))

/// The function acquires / releases the named capability.
#define ACQUIRE(...) \
  KBQA_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  KBQA_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) \
  KBQA_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  KBQA_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

/// The function attempts the acquisition; the first argument is the return
/// value meaning "acquired".
#define TRY_ACQUIRE(...) \
  KBQA_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  KBQA_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_shared_capability(__VA_ARGS__))

/// The function must NOT be called while holding the named capability
/// (it acquires it itself; prevents self-deadlock).
#define EXCLUDES(...) \
  KBQA_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Asserts (at runtime) that the capability is held; teaches the analysis
/// about externally guaranteed locking.
#define ASSERT_CAPABILITY(x) \
  KBQA_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  KBQA_THREAD_ANNOTATION_ATTRIBUTE(assert_shared_capability(x))

/// The function returns a reference to the named capability.
#define RETURN_CAPABILITY(x) KBQA_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Opts a function out of the analysis entirely. Every use must carry a
/// comment justifying why the analysis cannot see the invariant.
#define NO_THREAD_SAFETY_ANALYSIS \
  KBQA_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // KBQA_UTIL_THREAD_ANNOTATIONS_H_
