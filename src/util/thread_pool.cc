#include "util/thread_pool.h"

#include "obs/obs.h"
#include "util/mutex.h"

namespace kbqa {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(static_cast<size_t>(num_threads - 1));
  for (int i = 0; i < num_threads - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_ready_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  for (;;) {
    {
      MutexLock lock(mu_);
      while (!shutdown_ &&
             (job_ == nullptr || generation_ == seen_generation)) {
        work_ready_.Wait(mu_);
      }
      if (shutdown_) return;
      seen_generation = generation_;
    }
    DrainShards();
  }
}

void ThreadPool::DrainShards() {
  for (;;) {
    size_t shard;
    const std::function<void(size_t)>* job;
    {
      MutexLock lock(mu_);
      if (job_ == nullptr || next_shard_ >= num_shards_) return;
      shard = next_shard_++;
      ++shards_in_flight_;
      job = job_;
    }
    {
      KBQA_TRACE_SPAN("thread_pool.task");
      (*job)(shard);
    }
    KBQA_COUNTER_ADD("thread_pool.tasks", 1);
    {
      MutexLock lock(mu_);
      --shards_in_flight_;
      if (next_shard_ >= num_shards_ && shards_in_flight_ == 0) {
        job_done_.NotifyAll();
      }
    }
  }
}

void ThreadPool::RunShards(size_t num_shards,
                           const std::function<void(size_t)>& fn) {
  if (num_shards == 0) return;
  // Queue depth is a high-water gauge: the shard count of the job being
  // submitted (drained to 0 by completion below).
  KBQA_GAUGE_SET("thread_pool.queue_depth", num_shards);
  KBQA_COUNTER_ADD("thread_pool.jobs", 1);
  if (workers_.empty()) {
    // Single-threaded pool: run inline, no synchronization.
    for (size_t shard = 0; shard < num_shards; ++shard) {
      KBQA_TRACE_SPAN("thread_pool.task");
      fn(shard);
    }
    KBQA_COUNTER_ADD("thread_pool.tasks", num_shards);
    KBQA_GAUGE_SET("thread_pool.queue_depth", 0);
    return;
  }
  {
    MutexLock lock(mu_);
    job_ = &fn;
    next_shard_ = 0;
    num_shards_ = num_shards;
    ++generation_;
  }
  work_ready_.NotifyAll();
  DrainShards();  // The caller is a worker too.
  {
    MutexLock lock(mu_);
    while (!(next_shard_ >= num_shards_ && shards_in_flight_ == 0)) {
      job_done_.Wait(mu_);
    }
    job_ = nullptr;
  }
  KBQA_GAUGE_SET("thread_pool.queue_depth", 0);
}

}  // namespace kbqa
