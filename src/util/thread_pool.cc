#include "util/thread_pool.h"

#include <algorithm>

#include "obs/obs.h"
#include "util/mutex.h"

namespace kbqa {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(static_cast<size_t>(num_threads - 1));
  for (int i = 0; i < num_threads - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    // Drain before shutdown: Submit jobs may still be in flight (the
    // serving teardown path), and their completion callbacks must run.
    while (jobs_outstanding_ > 0) job_done_.Wait(mu_);
    shutdown_ = true;
  }
  work_ready_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && queue_.empty()) {
        work_ready_.Wait(mu_);
      }
      // The destructor only sets shutdown_ once every job is done, so an
      // empty queue here means nothing is left to drain.
      if (shutdown_) return;
      job = queue_.front();
    }
    DrainJob(job);
  }
}

void ThreadPool::DrainJob(const std::shared_ptr<Job>& job) {
  for (;;) {
    size_t shard;
    {
      MutexLock lock(mu_);
      if (job->next_shard >= job->num_shards) return;
      shard = job->next_shard++;
      ++job->in_flight;
      if (job->next_shard >= job->num_shards) {
        // Last shard claimed: unqueue the job so other threads move on to
        // the next one (it keeps running via this scope's shared_ptr).
        auto it = std::find(queue_.begin(), queue_.end(), job);
        if (it != queue_.end()) queue_.erase(it);
      }
    }
    {
      KBQA_TRACE_SPAN("thread_pool.task");
      (*job->fn)(shard);
    }
    KBQA_COUNTER_ADD("thread_pool.tasks", 1);
    bool last = false;
    {
      MutexLock lock(mu_);
      --job->in_flight;
      if (job->next_shard >= job->num_shards && job->in_flight == 0) {
        job->done = true;
        --jobs_outstanding_;
        last = true;
      }
    }
    if (last) {
      // Completion notification, outside the lock: the callback may take
      // its own locks (the serving layer's in-flight accounting does).
      if (job->on_done) job->on_done();
      job_done_.NotifyAll();
    }
  }
}

void ThreadPool::RunShards(size_t num_shards,
                           const std::function<void(size_t)>& fn) {
  if (num_shards == 0) return;
  // Queue depth is a high-water gauge: the shard count of the job being
  // submitted (drained to 0 by completion below).
  KBQA_GAUGE_SET("thread_pool.queue_depth", num_shards);
  KBQA_COUNTER_ADD("thread_pool.jobs", 1);
  if (workers_.empty()) {
    // Single-threaded pool: run inline, no synchronization.
    for (size_t shard = 0; shard < num_shards; ++shard) {
      KBQA_TRACE_SPAN("thread_pool.task");
      fn(shard);
    }
    KBQA_COUNTER_ADD("thread_pool.tasks", num_shards);
    KBQA_GAUGE_SET("thread_pool.queue_depth", 0);
    return;
  }
  auto job = std::make_shared<Job>();
  job->fn = &fn;  // Alive for the duration: this call blocks on the job.
  job->num_shards = num_shards;
  {
    MutexLock lock(mu_);
    ++jobs_outstanding_;
    queue_.push_back(job);
  }
  work_ready_.NotifyAll();
  DrainJob(job);  // The caller is a worker too.
  {
    MutexLock lock(mu_);
    while (!job->done) job_done_.Wait(mu_);
  }
  KBQA_GAUGE_SET("thread_pool.queue_depth", 0);
}

void ThreadPool::Submit(size_t num_shards, std::function<void(size_t)> fn,
                        std::function<void()> on_done) {
  if (num_shards == 0) {
    if (on_done) on_done();
    return;
  }
  KBQA_COUNTER_ADD("thread_pool.jobs", 1);
  if (workers_.empty()) {
    // No workers to hand off to: run the whole job (and its completion)
    // inline so a 1-thread serving configuration still drains its queue.
    for (size_t shard = 0; shard < num_shards; ++shard) {
      KBQA_TRACE_SPAN("thread_pool.task");
      fn(shard);
    }
    KBQA_COUNTER_ADD("thread_pool.tasks", num_shards);
    if (on_done) on_done();
    return;
  }
  auto job = std::make_shared<Job>();
  job->owned_fn = std::move(fn);
  job->fn = &job->owned_fn;
  job->on_done = std::move(on_done);
  job->num_shards = num_shards;
  {
    MutexLock lock(mu_);
    ++jobs_outstanding_;
    queue_.push_back(job);
  }
  work_ready_.NotifyAll();
}

}  // namespace kbqa
