#ifndef KBQA_UTIL_THREAD_POOL_H_
#define KBQA_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace kbqa {

/// A fixed-size worker pool for the shared-memory parallelism layer.
///
/// Work is expressed as *jobs* of statically sharded tasks. Jobs queue
/// FIFO and workers cooperatively drain the front job, so several jobs can
/// be in flight at once (the serving batcher dispatches batch k+1 while
/// batch k is still running). Two submission modes:
///
///  - RunShards: synchronous — the caller participates as a worker and
///    blocks until its job completes (the offline/EM entry point).
///  - Submit: asynchronous — fire-and-forget with a completion callback
///    invoked by the worker that retires the job's last shard (the online
///    serving entry point).
///
/// Determinism contract (unchanged from the single-job pool): work is
/// always a *fixed* number of statically sharded tasks (independent of the
/// thread count), each shard writes only shard-local state, and shard
/// results are merged in shard order by the caller (see ParallelFor /
/// ParallelReduce below). Which thread runs which shard is therefore
/// unobservable — results are bit-identical with 1, 2, or N threads.
///
/// Shard callables must not throw; the pool has no recovery path and
/// terminates on an escaped exception (same policy as std::thread).
class ThreadPool {
 public:
  /// Creates `num_threads - 1` workers (the caller participates in every
  /// RunShards call, so one thread means "no workers, run inline").
  /// Values < 1 are clamped to 1.
  explicit ThreadPool(int num_threads);
  /// Blocks until every submitted job has completed (and its completion
  /// callback returned), then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(shard) for every shard in [0, num_shards), distributing
  /// shards across the workers plus the calling thread. Blocks until all
  /// shards complete. Safe to call repeatedly and from several threads at
  /// once (jobs queue FIFO); not reentrant from inside a shard.
  void RunShards(size_t num_shards, const std::function<void(size_t)>& fn);

  /// Enqueues a job of `num_shards` shards and returns immediately: the
  /// calling thread never runs a shard. `on_done` (may be empty) fires on
  /// the worker that retires the last shard — the completion notification
  /// an async caller chains its own bookkeeping onto. On a pool with no
  /// workers the job runs inline here (completion included) so a 1-thread
  /// configuration still makes progress. The pool keeps `fn`/`on_done`
  /// alive until the job retires.
  void Submit(size_t num_shards, std::function<void(size_t)> fn,
              std::function<void()> on_done);

 private:
  /// One queued job. `fn` points at the caller's callable for RunShards
  /// (alive across the blocking call) or at `owned_fn` for Submit.
  struct Job {
    std::function<void(size_t)> owned_fn;
    const std::function<void(size_t)>* fn = nullptr;
    std::function<void()> on_done;
    size_t next_shard = 0;
    size_t num_shards = 0;
    size_t in_flight = 0;
    bool done = false;
  };

  void WorkerLoop();
  /// Claims and runs shards of `job` until none remain to hand out. The
  /// thread that retires the last shard marks the job done, runs its
  /// completion callback, and signals job_done_.
  void DrainJob(const std::shared_ptr<Job>& job);

  std::vector<std::thread> workers_;

  Mutex mu_;
  CondVar work_ready_;
  CondVar job_done_;
  /// Jobs that still have unclaimed shards, FIFO. A job leaves the queue
  /// the moment its last shard is claimed (it may still be running).
  std::deque<std::shared_ptr<Job>> queue_ GUARDED_BY(mu_);
  /// Jobs submitted but not yet done — what the destructor waits on.
  size_t jobs_outstanding_ GUARDED_BY(mu_) = 0;
  bool shutdown_ GUARDED_BY(mu_) = false;
};

/// Half-open index range of one static shard.
struct ShardRange {
  size_t begin = 0;
  size_t end = 0;
};

/// The range of shard `shard` (of `num_shards`) over `n` items: contiguous
/// blocks, the first `n % num_shards` blocks one item longer. Purely
/// arithmetic — the same (n, num_shards) always yields the same split.
inline ShardRange ShardOf(size_t n, size_t shard, size_t num_shards) {
  const size_t base = n / num_shards;
  const size_t extra = n % num_shards;
  ShardRange r;
  r.begin = shard * base + (shard < extra ? shard : extra);
  r.end = r.begin + base + (shard < extra ? 1 : 0);
  return r;
}

/// Runs fn(shard, begin, end) for every shard of a fixed static split of
/// [0, n). `fn` must only touch shard-local state.
template <typename Fn>
void ParallelFor(ThreadPool& pool, size_t n, size_t num_shards, Fn&& fn) {
  if (n == 0) return;
  if (num_shards > n) num_shards = n;
  pool.RunShards(num_shards, [&](size_t shard) {
    ShardRange r = ShardOf(n, shard, num_shards);
    fn(shard, r.begin, r.end);
  });
}

/// Map-reduce over a fixed static split of [0, n): `map(shard, begin,
/// end)` produces one partial result per shard; partials are merged into
/// `acc` strictly in shard order via `merge(acc, std::move(partial))`.
/// Because the shard count is fixed by the caller (not derived from the
/// thread count), the merged result is bit-identical for any pool size.
template <typename Acc, typename MapFn, typename MergeFn>
Acc ParallelReduce(ThreadPool& pool, size_t n, size_t num_shards, Acc acc,
                   MapFn&& map, MergeFn&& merge) {
  if (n == 0) return acc;
  if (num_shards > n) num_shards = n;
  using Partial = decltype(map(size_t{0}, size_t{0}, size_t{0}));
  std::vector<Partial> partials(num_shards);
  pool.RunShards(num_shards, [&](size_t shard) {
    ShardRange r = ShardOf(n, shard, num_shards);
    partials[shard] = map(shard, r.begin, r.end);
  });
  for (size_t shard = 0; shard < num_shards; ++shard) {
    merge(acc, std::move(partials[shard]));
  }
  return acc;
}

}  // namespace kbqa

#endif  // KBQA_UTIL_THREAD_POOL_H_
