#ifndef KBQA_UTIL_TIMER_H_
#define KBQA_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace kbqa {

/// Monotonic wall-clock stopwatch for coarse pipeline timing (offline
/// training phases, per-question latency in effectiveness benches).
/// Fine-grained latency numbers use google-benchmark instead.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction / last Reset.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  uint64_t ElapsedMicros() const {
    return static_cast<uint64_t>(ElapsedSeconds() * 1e6);
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace kbqa

#endif  // KBQA_UTIL_TIMER_H_
